#!/usr/bin/env python3
"""CI guard for the metric inventory.

Diffs the metric names a live daemon actually serves (its /metrics.json
page) against the committed inventory in scripts/metric_inventory.txt,
in BOTH directions:

  * a name in the inventory but missing from the live scrape means an
    instrument was dropped or renamed — dashboards and alert rules
    silently go dark;
  * a live name missing from the inventory means an instrument shipped
    without being declared — it has no documentation row and nothing
    pins it against the next accidental rename.

Either direction fails the build.  This replaces the hand-maintained
grep list that used to live inline in ci.yml, which could only catch
the first kind of drift and had to be edited in lockstep with every
new metric.  After adding a metric, regenerate the inventory:

    curl -s localhost:PORT/metrics.json | \
        scripts/check_metric_inventory.py - scripts/metric_inventory.txt --update

and commit the result alongside its docs/observability.md row.

Input: the /metrics.json object ({"counters": {...}, "gauges": {...},
"histograms": {...}}), from a file or stdin ("-").  The inventory file
is one "name kind" pair per line, sorted, '#' comments allowed.

Exit status: 0 on an exact match (or after --update), 1 on drift,
2 on usage errors.  Dependency-free (stdlib json only).
"""

import argparse
import json
import sys

KINDS = ("counters", "gauges", "histograms")


def live_metrics(path):
    """-> {name: kind} from a /metrics.json dump."""
    try:
        if path == "-":
            page = json.load(sys.stdin)
        else:
            with open(path, encoding="utf-8") as handle:
                page = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"::error::cannot read metrics page {path}: {error}")
        sys.exit(2)
    if not isinstance(page, dict):
        print(f"::error::{path}: expected a JSON object")
        sys.exit(2)
    metrics = {}
    for kind in KINDS:
        section = page.get(kind, {})
        if not isinstance(section, dict):
            print(f"::error::{path}: '{kind}' is not an object")
            sys.exit(2)
        for name in section:
            metrics[name] = kind
    if not metrics:
        print(f"::error::{path}: no metrics at all — is the daemon up?")
        sys.exit(2)
    return metrics


def read_inventory(path):
    """-> {name: kind} from the committed inventory file."""
    inventory = {}
    try:
        with open(path, encoding="utf-8") as handle:
            for number, raw in enumerate(handle, 1):
                line = raw.split("#", 1)[0].strip()
                if not line:
                    continue
                parts = line.split()
                if len(parts) != 2 or parts[1] not in KINDS:
                    print(f"::error::{path}:{number}: expected 'name kind' "
                          f"with kind in {'/'.join(KINDS)}, got '{raw.rstrip()}'")
                    sys.exit(2)
                if parts[0] in inventory:
                    print(f"::error::{path}:{number}: duplicate entry "
                          f"'{parts[0]}'")
                    sys.exit(2)
                inventory[parts[0]] = parts[1]
    except OSError as error:
        print(f"::error::cannot read inventory {path}: {error}")
        sys.exit(2)
    return inventory


def write_inventory(path, metrics):
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(
            "# Metric inventory: every metric a live reputation_server\n"
            "# daemon serves, one 'name kind' per line, sorted by name.\n"
            "# CI diffs this against a running daemon's /metrics.json\n"
            "# (scripts/check_metric_inventory.py); regenerate with\n"
            "# --update after adding or removing an instrument, and give\n"
            "# new metrics a row in docs/observability.md.\n")
        for name in sorted(metrics):
            handle.write(f"{name} {metrics[name]}\n")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("metrics_json",
                        help="/metrics.json dump, or - for stdin")
    parser.add_argument("inventory", help="committed inventory file")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the inventory from the live scrape "
                             "instead of diffing")
    args = parser.parse_args()

    live = live_metrics(args.metrics_json)
    if args.update:
        write_inventory(args.inventory, live)
        print(f"wrote {len(live)} metrics to {args.inventory}")
        return 0

    inventory = read_inventory(args.inventory)
    ok = True
    for name in sorted(set(inventory) - set(live)):
        print(f"::error::metric '{name}' ({inventory[name]}) is in "
              f"{args.inventory} but missing from the live scrape — "
              f"dropped or renamed instrument?")
        ok = False
    for name in sorted(set(live) - set(inventory)):
        print(f"::error::live metric '{name}' ({live[name]}) is not in "
              f"{args.inventory} — regenerate with --update and document it")
        ok = False
    for name in sorted(set(live) & set(inventory)):
        if live[name] != inventory[name]:
            print(f"::error::metric '{name}' is a {live[name]} live but a "
                  f"{inventory[name]} in {args.inventory}")
            ok = False
    if ok:
        print(f"metric inventory OK: {len(live)} metrics match "
              f"{args.inventory}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
