#!/usr/bin/env python3
"""CI validator for crash black-box dumps.

Reads the file a crashed `reputation_server --blackbox=PATH` left
behind and checks every frame against the schema documented in
docs/observability.md ("Flight recorder & black-box"):

  * every line is one JSON object with a known "type"
    (snapshot / health / trace / crash) and exactly the keys that
    frame type documents — the emitter and the docs must move together;
  * snapshot frames carry monotonically increasing sequence numbers,
    counters as {value, delta} pairs with delta <= value growth,
    gauges as integers, histograms with finite interval quantiles;
  * health frames carry the five named signals with boolean
    evaluated/firing and a non-empty detail per signal;
  * trace frames wrap one decision-record object (deep validation is
    scripts/validate_traces.py's job);
  * with --expect-crash: the final line is exactly one crash frame
    whose signal number matches its name — the dump must prove the
    handler ran, not just that staging worked.

A zero-byte file is a CLEAN-SHUTDOWN marker (disarm truncates), which
is only acceptable without --expect-crash.

Exit status: 0 on success, 1 on validation failure, 2 on usage errors.
Dependency-free (stdlib json only).
"""

import argparse
import json
import math
import sys

SIGNAL_NAMES = {11: "SIGSEGV", 6: "SIGABRT", 7: "SIGBUS", 10: "SIGBUS"}

SNAPSHOT_KEYS = {"type", "seq", "wall_time", "uptime", "interval",
                 "counters", "gauges", "histograms"}
HISTOGRAM_KEYS = {"count", "interval_count", "interval_sum",
                  "p50", "p95", "p99"}
HEALTH_KEYS = {"type", "seq", "wall_time", "uptime", "healthy", "signals"}
SIGNAL_KEYS = {"name", "evaluated", "firing", "value", "threshold", "detail"}
EXPECTED_SIGNALS = ["assess_p99", "calibration_hits", "refmodel_hits",
                    "ingest", "heartbeat"]
CRASH_KEYS = {"type", "signal", "name"}


class Failure(Exception):
    pass


def require(condition, line_number, message):
    if not condition:
        raise Failure(f"line {line_number}: {message}")


def check_number(value, line_number, what, minimum=None):
    require(isinstance(value, (int, float)) and not isinstance(value, bool),
            line_number, f"{what} is not a number")
    require(math.isfinite(float(value)), line_number, f"{what} is not finite")
    if minimum is not None:
        require(float(value) >= minimum, line_number,
                f"{what} = {value} below {minimum}")


def check_snapshot(frame, line_number, last_seq):
    require(set(frame) == SNAPSHOT_KEYS, line_number,
            f"snapshot keys {sorted(frame)} != {sorted(SNAPSHOT_KEYS)}")
    require(isinstance(frame["seq"], int) and frame["seq"] > 0,
            line_number, "snapshot seq must be a positive integer")
    if last_seq is not None:
        require(frame["seq"] > last_seq, line_number,
                f"snapshot seq {frame['seq']} not above previous {last_seq}")
    check_number(frame["wall_time"], line_number, "wall_time", minimum=0.0)
    check_number(frame["uptime"], line_number, "uptime", minimum=0.0)
    check_number(frame["interval"], line_number, "interval", minimum=0.0)
    for section in ("counters", "gauges", "histograms"):
        require(isinstance(frame[section], dict), line_number,
                f"{section} is not an object")
    for name, point in frame["counters"].items():
        require(isinstance(point, dict) and set(point) == {"value", "delta"},
                line_number, f"counter {name} is not a value/delta pair")
        for key in ("value", "delta"):
            require(isinstance(point[key], int) and point[key] >= 0,
                    line_number, f"counter {name}.{key} not a non-negative int")
        require(point["delta"] <= point["value"], line_number,
                f"counter {name} delta {point['delta']} exceeds "
                f"cumulative {point['value']}")
    for name, level in frame["gauges"].items():
        require(isinstance(level, int) and not isinstance(level, bool),
                line_number, f"gauge {name} is not an integer level")
    for name, hist in frame["histograms"].items():
        require(isinstance(hist, dict) and set(hist) == HISTOGRAM_KEYS,
                line_number, f"histogram {name} keys {sorted(hist)}")
        for key in ("count", "interval_count"):
            require(isinstance(hist[key], int) and hist[key] >= 0,
                    line_number, f"histogram {name}.{key}")
        require(hist["interval_count"] <= hist["count"], line_number,
                f"histogram {name} interval_count exceeds count")
        for key in ("interval_sum", "p50", "p95", "p99"):
            check_number(hist[key], line_number, f"histogram {name}.{key}",
                         minimum=0.0)
    return frame["seq"]


def check_health(frame, line_number):
    require(set(frame) == HEALTH_KEYS, line_number,
            f"health keys {sorted(frame)} != {sorted(HEALTH_KEYS)}")
    require(isinstance(frame["healthy"], bool), line_number,
            "healthy is not a bool")
    require(isinstance(frame["signals"], list), line_number,
            "signals is not a list")
    names = []
    firing = 0
    for signal in frame["signals"]:
        require(isinstance(signal, dict) and set(signal) == SIGNAL_KEYS,
                line_number, f"signal keys {sorted(signal)}")
        for key in ("evaluated", "firing"):
            require(isinstance(signal[key], bool), line_number,
                    f"signal {signal.get('name')}.{key} is not a bool")
        require(not (signal["firing"] and not signal["evaluated"]),
                line_number,
                f"signal {signal['name']} fires without being evaluated")
        check_number(signal["value"], line_number,
                     f"signal {signal['name']}.value")
        check_number(signal["threshold"], line_number,
                     f"signal {signal['name']}.threshold")
        require(isinstance(signal["detail"], str) and signal["detail"],
                line_number, f"signal {signal['name']} has an empty detail")
        names.append(signal["name"])
        firing += signal["firing"]
    require(names == EXPECTED_SIGNALS, line_number,
            f"signal names {names} != {EXPECTED_SIGNALS}")
    require(frame["healthy"] == (firing == 0), line_number,
            f"healthy={frame['healthy']} inconsistent with "
            f"{firing} firing signals")


def check_trace(frame, line_number):
    require(set(frame) == {"type", "record"}, line_number,
            f"trace keys {sorted(frame)}")
    record = frame["record"]
    require(isinstance(record, dict), line_number, "record is not an object")
    for key in ("trace_id", "server", "verdict"):
        require(key in record, line_number, f"record lacks '{key}'")


def check_crash(frame, line_number):
    require(set(frame) == CRASH_KEYS, line_number,
            f"crash keys {sorted(frame)} != {sorted(CRASH_KEYS)}")
    require(isinstance(frame["signal"], int), line_number,
            "crash signal is not an integer")
    expected = SIGNAL_NAMES.get(frame["signal"])
    require(expected is not None, line_number,
            f"crash signal {frame['signal']} is not one the black-box arms")
    require(frame["name"] == expected, line_number,
            f"crash name '{frame['name']}' does not match signal "
            f"{frame['signal']} ({expected})")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("dump", help="black-box dump file")
    parser.add_argument("--expect-crash", action="store_true",
                        help="require a final crash frame (the process was "
                             "killed, not drained)")
    args = parser.parse_args()

    try:
        with open(args.dump, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as error:
        print(f"::error::cannot read {args.dump}: {error}")
        return 2

    if not lines:
        if args.expect_crash:
            print(f"::error::{args.dump} is empty (clean-shutdown marker) "
                  f"but a crash dump was expected")
            return 1
        print(f"{args.dump}: clean-shutdown marker (empty) — OK")
        return 0

    counts = {"snapshot": 0, "health": 0, "trace": 0, "crash": 0}
    last_seq = None
    try:
        for line_number, line in enumerate(lines, 1):
            try:
                frame = json.loads(line)
            except json.JSONDecodeError as error:
                raise Failure(f"line {line_number}: not JSON ({error})")
            require(isinstance(frame, dict), line_number, "not an object")
            kind = frame.get("type")
            require(kind in counts, line_number,
                    f"unknown frame type {kind!r}")
            counts[kind] += 1
            if kind == "snapshot":
                last_seq = check_snapshot(frame, line_number, last_seq)
            elif kind == "health":
                check_health(frame, line_number)
            elif kind == "trace":
                check_trace(frame, line_number)
            else:
                check_crash(frame, line_number)
                require(line_number == len(lines), line_number,
                        "crash frame is not the final line")
        require(counts["snapshot"] >= 1, len(lines),
                "dump holds no snapshot frames")
        require(counts["crash"] <= 1, len(lines),
                f"{counts['crash']} crash frames (at most one handler runs)")
        if args.expect_crash:
            require(counts["crash"] == 1, len(lines),
                    "no crash frame — the signal handler never ran")
    except Failure as failure:
        print(f"::error::{args.dump}: {failure}")
        return 1

    print(f"{args.dump}: OK — {counts['snapshot']} snapshots, "
          f"{counts['health']} health, {counts['trace']} traces, "
          f"{counts['crash']} crash")
    return 0


if __name__ == "__main__":
    sys.exit(main())
