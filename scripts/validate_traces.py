#!/usr/bin/env python3
"""CI validator for decision-trace JSONL dumps.

Reads the stdout of `reputation_server --trace-dump` (or any file of
obs::to_jsonl lines, possibly interleaved with other output), checks
every decision record against the schema documented in
docs/observability.md, and fails loudly on drift:

  * required keys present with the right types and sane values
    (distances finite and within the L1 range, p-hat a probability,
    windows consistent with the suffix length);
  * no unknown top-level keys — the emitter and the docs must move
    together;
  * epsilon consistent with the calibration grid: within one record two
    stages that quantize to the same calibrator key (windows, m, p-hat
    bucket) must report the identical threshold.  (The scope is one
    record because the Bonferroni correction gives every ladder its own
    per-stage confidence; within a ladder it is constant.);
  * optionally (--expect-server N) at least one record flags entity N
    with failing-stage evidence, which is what the demo workload
    promises.

Exit status: 0 on success, 1 on any validation failure, 2 on usage
errors.  Dependency-free (stdlib json only).
"""

import argparse
import json
import math
import sys

# Must mirror stats::CalibratorConfig::p_grid and Calibrator::make_key.
P_GRID = 256

REQUIRED_KEYS = {
    "trace_id": int,
    "source": str,
    "server": int,
    "wall_time": float,
    "verdict": str,
    "mode": str,
    "collusion_resilient": bool,
    "window_size": int,
    "history_length": int,
    "p_hat": float,
    "min_margin": float,
    "stages": list,
    "spans": list,
}
OPTIONAL_KEYS = {"transition", "trust", "failed", "reorder", "runs"}

STAGE_KEYS = {
    "suffix_length": int,
    "windows": int,
    "p_hat": float,
    "distance": float,
    "epsilon": float,
    "sufficient": bool,
    "passed": bool,
}

SOURCES = {"two_phase", "online_screener"}
VERDICTS = {"suspicious", "assessed", "insufficient-history", "clear", "insufficient"}
MODES = {"none", "single", "multi"}
TRANSITIONS = {"flagged", "recovered"}
SPAN_NAMES = {
    "phase1/screen", "phase1/ladder", "phase1/stage", "phase1/runs",
    "reorder", "phase2/trust", "calibrate/compute",
}


def p_bucket(p_hat: float) -> int:
    """stats::Calibrator::make_key's p-hat quantization."""
    bucket = round(p_hat * P_GRID)
    if bucket == 0 and p_hat > 0.0:
        bucket = 1
    if bucket == P_GRID and p_hat < 1.0:
        bucket = P_GRID - 1
    return bucket


class Validator:
    def __init__(self):
        self.errors = []
        self.grid_keys = set()  # distinct calibration keys, for the summary

    def error(self, line_no, message):
        self.errors.append(f"line {line_no}: {message}")

    def check_typed(self, line_no, obj, keys, what):
        ok = True
        for key, kind in keys.items():
            if key not in obj:
                self.error(line_no, f"{what} missing required key '{key}'")
                ok = False
                continue
            value = obj[key]
            if kind is float:
                good = isinstance(value, (int, float)) and not isinstance(value, bool)
            elif kind is int:
                good = isinstance(value, int) and not isinstance(value, bool)
            else:
                good = isinstance(value, kind)
            if not good:
                self.error(line_no, f"{what} key '{key}' has type "
                                    f"{type(value).__name__}, wanted {kind.__name__}")
                ok = False
        return ok

    def check_stage(self, line_no, stage, what, window_size, grid):
        if not isinstance(stage, dict):
            self.error(line_no, f"{what} is not an object")
            return
        if not self.check_typed(line_no, stage, STAGE_KEYS, what):
            return
        unknown = set(stage) - set(STAGE_KEYS)
        if unknown:
            self.error(line_no, f"{what} has unknown keys {sorted(unknown)}")
        for key in ("p_hat", "distance", "epsilon"):
            if not math.isfinite(stage[key]):
                self.error(line_no, f"{what} {key} is not finite")
                return
        if not 0.0 <= stage["p_hat"] <= 1.0:
            self.error(line_no, f"{what} p_hat {stage['p_hat']} outside [0, 1]")
        # L1 distance between two probability distributions is in [0, 2].
        if not 0.0 <= stage["distance"] <= 2.0:
            self.error(line_no, f"{what} distance {stage['distance']} outside [0, 2]")
        if not 0.0 <= stage["epsilon"] <= 2.0:
            self.error(line_no, f"{what} epsilon {stage['epsilon']} outside [0, 2]")
        if window_size > 0 and stage["windows"] != stage["suffix_length"] // window_size:
            self.error(line_no, f"{what} windows {stage['windows']} inconsistent with "
                                f"suffix_length {stage['suffix_length']} and m {window_size}")
        if not stage["sufficient"] and not stage["passed"]:
            self.error(line_no, f"{what} failed despite insufficient evidence")
        # Calibration-grid consistency: stages of ONE record quantizing
        # to the same calibrator key ran at the same confidence, so they
        # must see the identical (bitwise) threshold.
        if stage["sufficient"]:
            key = (window_size, stage["windows"], p_bucket(stage["p_hat"]))
            self.grid_keys.add(key)
            seen = grid.get(key)
            if seen is None:
                grid[key] = (stage["epsilon"], what)
            elif seen[0] != stage["epsilon"]:
                self.error(line_no, f"{what} epsilon {stage['epsilon']} disagrees with "
                                    f"{seen[1]} ({seen[0]}) for calibration key "
                                    f"(m={key[0]}, windows={key[1]}, bucket={key[2]})")

    def check_record(self, line_no, record):
        if not self.check_typed(line_no, record, REQUIRED_KEYS, "record"):
            return
        unknown = set(record) - set(REQUIRED_KEYS) - OPTIONAL_KEYS
        if unknown:
            self.error(line_no, f"record has unknown keys {sorted(unknown)} "
                                f"(schema drift — update docs/observability.md "
                                f"and this validator together)")
        if record["trace_id"] < 1:
            self.error(line_no, "trace_id must be >= 1")
        if record["source"] not in SOURCES:
            self.error(line_no, f"unknown source '{record['source']}'")
        if record["verdict"] not in VERDICTS:
            self.error(line_no, f"unknown verdict '{record['verdict']}'")
        if record["mode"] not in MODES:
            self.error(line_no, f"unknown mode '{record['mode']}'")
        if not math.isfinite(record["wall_time"]) or record["wall_time"] <= 0:
            self.error(line_no, "wall_time must be a positive epoch timestamp")
        if not math.isfinite(record["min_margin"]):
            self.error(line_no, "min_margin is not finite")
        if not 0.0 <= record["p_hat"] <= 1.0:
            self.error(line_no, f"p_hat {record['p_hat']} outside [0, 1]")
        if "transition" in record and record["transition"] not in TRANSITIONS:
            self.error(line_no, f"unknown transition '{record['transition']}'")
        if "trust" in record:
            trust = record["trust"]
            if not isinstance(trust, (int, float)) or not 0.0 <= trust <= 1.0:
                self.error(line_no, f"trust {trust} outside [0, 1]")

        m = record["window_size"]
        grid = {}
        for i, stage in enumerate(record["stages"]):
            self.check_stage(line_no, stage, f"stages[{i}]", m, grid)
        lengths = [s.get("suffix_length", 0) for s in record["stages"]
                   if isinstance(s, dict)]
        if lengths != sorted(lengths):
            self.error(line_no, "stages are not ordered shortest suffix first")

        if "failed" in record:
            self.check_stage(line_no, record["failed"], "failed", m, grid)
            failed = record["failed"]
            if isinstance(failed, dict) and set(STAGE_KEYS) <= set(failed):
                if failed["passed"]:
                    self.error(line_no, "failed stage claims passed=true")
                if not failed["distance"] > failed["epsilon"]:
                    self.error(line_no, f"failed stage distance {failed['distance']} "
                                        f"does not exceed epsilon {failed['epsilon']}")

        if "reorder" in record:
            self.check_typed(line_no, record["reorder"],
                             {"issuers": int, "largest_group": int,
                              "displaced_fraction": float}, "reorder")
        if "runs" in record:
            self.check_typed(line_no, record["runs"],
                             {"passed": bool, "z": float, "z_threshold": float},
                             "runs")

        for i, span in enumerate(record["spans"]):
            what = f"spans[{i}]"
            if not self.check_typed(line_no, span,
                                    {"name": str, "depth": int, "start": float,
                                     "duration": float}, what):
                continue
            if span["name"] not in SPAN_NAMES:
                self.error(line_no, f"{what} unknown span name '{span['name']}'")
            if span["depth"] < 0 or span["start"] < 0 or span["duration"] < 0:
                self.error(line_no, f"{what} has negative depth/start/duration")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", help="trace dump (JSONL, other lines skipped)")
    parser.add_argument("--expect-server", type=int, default=None,
                        help="require a suspicious record with failing-stage "
                             "evidence for this entity")
    args = parser.parse_args()

    validator = Validator()
    records = 0
    expected_seen = False
    try:
        with open(args.path, encoding="utf-8") as handle:
            for line_no, line in enumerate(handle, start=1):
                line = line.strip()
                if not line.startswith("{"):
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError:
                    continue  # the workload's own JSON (metrics dump)
                if not isinstance(obj, dict) or "trace_id" not in obj:
                    continue
                records += 1
                validator.check_record(line_no, obj)
                if (args.expect_server is not None
                        and obj.get("server") == args.expect_server
                        and obj.get("verdict") == "suspicious"
                        and "failed" in obj):
                    expected_seen = True
    except OSError as exc:
        print(f"validate_traces: cannot read {args.path}: {exc}", file=sys.stderr)
        return 2

    if records == 0:
        validator.errors.append("no decision records found in the dump")
    if args.expect_server is not None and not expected_seen:
        validator.errors.append(
            f"no suspicious record with failing-stage evidence for "
            f"server {args.expect_server}")

    for message in validator.errors:
        print(f"validate_traces: {message}", file=sys.stderr)
    if validator.errors:
        print(f"validate_traces: FAILED ({len(validator.errors)} problem(s) "
              f"across {records} records)", file=sys.stderr)
        return 1
    print(f"validate_traces: OK ({records} records, "
          f"{len(validator.grid_keys)} calibration keys)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
