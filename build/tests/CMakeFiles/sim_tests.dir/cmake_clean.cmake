file(REMOVE_RECURSE
  "CMakeFiles/sim_tests.dir/sim/attack_cost_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/attack_cost_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/clients_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/clients_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/collusion_cost_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/collusion_cost_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/detection_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/detection_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/economics_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/economics_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/generators_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/generators_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/gossip_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/gossip_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/market_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/market_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/overlay_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/overlay_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/p2p_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/p2p_test.cpp.o.d"
  "sim_tests"
  "sim_tests.pdb"
  "sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
