
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/attack_cost_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/attack_cost_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/attack_cost_test.cpp.o.d"
  "/root/repo/tests/sim/clients_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/clients_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/clients_test.cpp.o.d"
  "/root/repo/tests/sim/collusion_cost_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/collusion_cost_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/collusion_cost_test.cpp.o.d"
  "/root/repo/tests/sim/detection_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/detection_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/detection_test.cpp.o.d"
  "/root/repo/tests/sim/economics_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/economics_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/economics_test.cpp.o.d"
  "/root/repo/tests/sim/generators_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/generators_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/generators_test.cpp.o.d"
  "/root/repo/tests/sim/gossip_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/gossip_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/gossip_test.cpp.o.d"
  "/root/repo/tests/sim/market_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/market_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/market_test.cpp.o.d"
  "/root/repo/tests/sim/overlay_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/overlay_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/overlay_test.cpp.o.d"
  "/root/repo/tests/sim/p2p_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/p2p_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/p2p_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hpr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hpr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/repsys/CMakeFiles/hpr_repsys.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hpr_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
