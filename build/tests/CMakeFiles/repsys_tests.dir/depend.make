# Empty dependencies file for repsys_tests.
# This may be replaced when dependencies are built.
