file(REMOVE_RECURSE
  "CMakeFiles/repsys_tests.dir/repsys/credibility_test.cpp.o"
  "CMakeFiles/repsys_tests.dir/repsys/credibility_test.cpp.o.d"
  "CMakeFiles/repsys_tests.dir/repsys/eigentrust_test.cpp.o"
  "CMakeFiles/repsys_tests.dir/repsys/eigentrust_test.cpp.o.d"
  "CMakeFiles/repsys_tests.dir/repsys/evidential_test.cpp.o"
  "CMakeFiles/repsys_tests.dir/repsys/evidential_test.cpp.o.d"
  "CMakeFiles/repsys_tests.dir/repsys/history_test.cpp.o"
  "CMakeFiles/repsys_tests.dir/repsys/history_test.cpp.o.d"
  "CMakeFiles/repsys_tests.dir/repsys/htrust_test.cpp.o"
  "CMakeFiles/repsys_tests.dir/repsys/htrust_test.cpp.o.d"
  "CMakeFiles/repsys_tests.dir/repsys/io_test.cpp.o"
  "CMakeFiles/repsys_tests.dir/repsys/io_test.cpp.o.d"
  "CMakeFiles/repsys_tests.dir/repsys/store_test.cpp.o"
  "CMakeFiles/repsys_tests.dir/repsys/store_test.cpp.o.d"
  "CMakeFiles/repsys_tests.dir/repsys/trust_test.cpp.o"
  "CMakeFiles/repsys_tests.dir/repsys/trust_test.cpp.o.d"
  "CMakeFiles/repsys_tests.dir/repsys/types_test.cpp.o"
  "CMakeFiles/repsys_tests.dir/repsys/types_test.cpp.o.d"
  "repsys_tests"
  "repsys_tests.pdb"
  "repsys_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repsys_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
