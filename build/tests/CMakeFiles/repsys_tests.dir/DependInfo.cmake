
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/repsys/credibility_test.cpp" "tests/CMakeFiles/repsys_tests.dir/repsys/credibility_test.cpp.o" "gcc" "tests/CMakeFiles/repsys_tests.dir/repsys/credibility_test.cpp.o.d"
  "/root/repo/tests/repsys/eigentrust_test.cpp" "tests/CMakeFiles/repsys_tests.dir/repsys/eigentrust_test.cpp.o" "gcc" "tests/CMakeFiles/repsys_tests.dir/repsys/eigentrust_test.cpp.o.d"
  "/root/repo/tests/repsys/evidential_test.cpp" "tests/CMakeFiles/repsys_tests.dir/repsys/evidential_test.cpp.o" "gcc" "tests/CMakeFiles/repsys_tests.dir/repsys/evidential_test.cpp.o.d"
  "/root/repo/tests/repsys/history_test.cpp" "tests/CMakeFiles/repsys_tests.dir/repsys/history_test.cpp.o" "gcc" "tests/CMakeFiles/repsys_tests.dir/repsys/history_test.cpp.o.d"
  "/root/repo/tests/repsys/htrust_test.cpp" "tests/CMakeFiles/repsys_tests.dir/repsys/htrust_test.cpp.o" "gcc" "tests/CMakeFiles/repsys_tests.dir/repsys/htrust_test.cpp.o.d"
  "/root/repo/tests/repsys/io_test.cpp" "tests/CMakeFiles/repsys_tests.dir/repsys/io_test.cpp.o" "gcc" "tests/CMakeFiles/repsys_tests.dir/repsys/io_test.cpp.o.d"
  "/root/repo/tests/repsys/store_test.cpp" "tests/CMakeFiles/repsys_tests.dir/repsys/store_test.cpp.o" "gcc" "tests/CMakeFiles/repsys_tests.dir/repsys/store_test.cpp.o.d"
  "/root/repo/tests/repsys/trust_test.cpp" "tests/CMakeFiles/repsys_tests.dir/repsys/trust_test.cpp.o" "gcc" "tests/CMakeFiles/repsys_tests.dir/repsys/trust_test.cpp.o.d"
  "/root/repo/tests/repsys/types_test.cpp" "tests/CMakeFiles/repsys_tests.dir/repsys/types_test.cpp.o" "gcc" "tests/CMakeFiles/repsys_tests.dir/repsys/types_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hpr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hpr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/repsys/CMakeFiles/hpr_repsys.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hpr_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
