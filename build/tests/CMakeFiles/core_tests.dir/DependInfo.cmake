
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/behavior_test_test.cpp" "tests/CMakeFiles/core_tests.dir/core/behavior_test_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/behavior_test_test.cpp.o.d"
  "/root/repo/tests/core/category_test.cpp" "tests/CMakeFiles/core_tests.dir/core/category_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/category_test.cpp.o.d"
  "/root/repo/tests/core/changepoint_test.cpp" "tests/CMakeFiles/core_tests.dir/core/changepoint_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/changepoint_test.cpp.o.d"
  "/root/repo/tests/core/collusion_test.cpp" "tests/CMakeFiles/core_tests.dir/core/collusion_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/collusion_test.cpp.o.d"
  "/root/repo/tests/core/multi_test_test.cpp" "tests/CMakeFiles/core_tests.dir/core/multi_test_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/multi_test_test.cpp.o.d"
  "/root/repo/tests/core/multidim_test.cpp" "tests/CMakeFiles/core_tests.dir/core/multidim_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/multidim_test.cpp.o.d"
  "/root/repo/tests/core/multinomial_test_test.cpp" "tests/CMakeFiles/core_tests.dir/core/multinomial_test_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/multinomial_test_test.cpp.o.d"
  "/root/repo/tests/core/online_test.cpp" "tests/CMakeFiles/core_tests.dir/core/online_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/online_test.cpp.o.d"
  "/root/repo/tests/core/report_test.cpp" "tests/CMakeFiles/core_tests.dir/core/report_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/report_test.cpp.o.d"
  "/root/repo/tests/core/runs_test_test.cpp" "tests/CMakeFiles/core_tests.dir/core/runs_test_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/runs_test_test.cpp.o.d"
  "/root/repo/tests/core/temporal_test.cpp" "tests/CMakeFiles/core_tests.dir/core/temporal_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/temporal_test.cpp.o.d"
  "/root/repo/tests/core/two_phase_test.cpp" "tests/CMakeFiles/core_tests.dir/core/two_phase_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/two_phase_test.cpp.o.d"
  "/root/repo/tests/core/window_stats_test.cpp" "tests/CMakeFiles/core_tests.dir/core/window_stats_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/window_stats_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hpr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hpr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/repsys/CMakeFiles/hpr_repsys.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hpr_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
