file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/behavior_test_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/behavior_test_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/category_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/category_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/changepoint_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/changepoint_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/collusion_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/collusion_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/multi_test_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/multi_test_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/multidim_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/multidim_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/multinomial_test_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/multinomial_test_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/online_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/online_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/report_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/report_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/runs_test_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/runs_test_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/temporal_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/temporal_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/two_phase_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/two_phase_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/window_stats_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/window_stats_test.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
