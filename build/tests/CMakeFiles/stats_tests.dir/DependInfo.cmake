
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/stats/beta_test.cpp" "tests/CMakeFiles/stats_tests.dir/stats/beta_test.cpp.o" "gcc" "tests/CMakeFiles/stats_tests.dir/stats/beta_test.cpp.o.d"
  "/root/repo/tests/stats/binomial_test.cpp" "tests/CMakeFiles/stats_tests.dir/stats/binomial_test.cpp.o" "gcc" "tests/CMakeFiles/stats_tests.dir/stats/binomial_test.cpp.o.d"
  "/root/repo/tests/stats/bounds_test.cpp" "tests/CMakeFiles/stats_tests.dir/stats/bounds_test.cpp.o" "gcc" "tests/CMakeFiles/stats_tests.dir/stats/bounds_test.cpp.o.d"
  "/root/repo/tests/stats/calibrate_test.cpp" "tests/CMakeFiles/stats_tests.dir/stats/calibrate_test.cpp.o" "gcc" "tests/CMakeFiles/stats_tests.dir/stats/calibrate_test.cpp.o.d"
  "/root/repo/tests/stats/distance_test.cpp" "tests/CMakeFiles/stats_tests.dir/stats/distance_test.cpp.o" "gcc" "tests/CMakeFiles/stats_tests.dir/stats/distance_test.cpp.o.d"
  "/root/repo/tests/stats/empirical_test.cpp" "tests/CMakeFiles/stats_tests.dir/stats/empirical_test.cpp.o" "gcc" "tests/CMakeFiles/stats_tests.dir/stats/empirical_test.cpp.o.d"
  "/root/repo/tests/stats/moments_test.cpp" "tests/CMakeFiles/stats_tests.dir/stats/moments_test.cpp.o" "gcc" "tests/CMakeFiles/stats_tests.dir/stats/moments_test.cpp.o.d"
  "/root/repo/tests/stats/multinomial_test.cpp" "tests/CMakeFiles/stats_tests.dir/stats/multinomial_test.cpp.o" "gcc" "tests/CMakeFiles/stats_tests.dir/stats/multinomial_test.cpp.o.d"
  "/root/repo/tests/stats/normal_test.cpp" "tests/CMakeFiles/stats_tests.dir/stats/normal_test.cpp.o" "gcc" "tests/CMakeFiles/stats_tests.dir/stats/normal_test.cpp.o.d"
  "/root/repo/tests/stats/rng_test.cpp" "tests/CMakeFiles/stats_tests.dir/stats/rng_test.cpp.o" "gcc" "tests/CMakeFiles/stats_tests.dir/stats/rng_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hpr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hpr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/repsys/CMakeFiles/hpr_repsys.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hpr_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
