file(REMOVE_RECURSE
  "../examples/auction_marketplace"
  "../examples/auction_marketplace.pdb"
  "CMakeFiles/auction_marketplace.dir/auction_marketplace.cpp.o"
  "CMakeFiles/auction_marketplace.dir/auction_marketplace.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auction_marketplace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
