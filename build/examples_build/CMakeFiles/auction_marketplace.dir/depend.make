# Empty dependencies file for auction_marketplace.
# This may be replaced when dependencies are built.
