file(REMOVE_RECURSE
  "../examples/hpr_calibrate"
  "../examples/hpr_calibrate.pdb"
  "CMakeFiles/hpr_calibrate.dir/hpr_calibrate.cpp.o"
  "CMakeFiles/hpr_calibrate.dir/hpr_calibrate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpr_calibrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
