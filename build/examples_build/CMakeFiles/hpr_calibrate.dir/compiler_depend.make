# Empty compiler generated dependencies file for hpr_calibrate.
# This may be replaced when dependencies are built.
