file(REMOVE_RECURSE
  "../examples/reputation_server"
  "../examples/reputation_server.pdb"
  "CMakeFiles/reputation_server.dir/reputation_server.cpp.o"
  "CMakeFiles/reputation_server.dir/reputation_server.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reputation_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
