# Empty compiler generated dependencies file for reputation_server.
# This may be replaced when dependencies are built.
