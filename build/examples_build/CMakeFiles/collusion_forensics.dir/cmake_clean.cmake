file(REMOVE_RECURSE
  "../examples/collusion_forensics"
  "../examples/collusion_forensics.pdb"
  "CMakeFiles/collusion_forensics.dir/collusion_forensics.cpp.o"
  "CMakeFiles/collusion_forensics.dir/collusion_forensics.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collusion_forensics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
