file(REMOVE_RECURSE
  "../examples/p2p_filesharing"
  "../examples/p2p_filesharing.pdb"
  "CMakeFiles/p2p_filesharing.dir/p2p_filesharing.cpp.o"
  "CMakeFiles/p2p_filesharing.dir/p2p_filesharing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_filesharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
