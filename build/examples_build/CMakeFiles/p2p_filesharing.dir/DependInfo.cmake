
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/p2p_filesharing.cpp" "examples_build/CMakeFiles/p2p_filesharing.dir/p2p_filesharing.cpp.o" "gcc" "examples_build/CMakeFiles/p2p_filesharing.dir/p2p_filesharing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hpr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hpr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/repsys/CMakeFiles/hpr_repsys.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hpr_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
