# Empty dependencies file for p2p_filesharing.
# This may be replaced when dependencies are built.
