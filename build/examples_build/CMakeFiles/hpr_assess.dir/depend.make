# Empty dependencies file for hpr_assess.
# This may be replaced when dependencies are built.
