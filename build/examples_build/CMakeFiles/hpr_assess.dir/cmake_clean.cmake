file(REMOVE_RECURSE
  "../examples/hpr_assess"
  "../examples/hpr_assess.pdb"
  "CMakeFiles/hpr_assess.dir/hpr_assess.cpp.o"
  "CMakeFiles/hpr_assess.dir/hpr_assess.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpr_assess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
