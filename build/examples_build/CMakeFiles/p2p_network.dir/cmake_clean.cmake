file(REMOVE_RECURSE
  "../examples/p2p_network"
  "../examples/p2p_network.pdb"
  "CMakeFiles/p2p_network.dir/p2p_network.cpp.o"
  "CMakeFiles/p2p_network.dir/p2p_network.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
