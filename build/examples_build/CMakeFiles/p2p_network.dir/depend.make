# Empty dependencies file for p2p_network.
# This may be replaced when dependencies are built.
