file(REMOVE_RECURSE
  "CMakeFiles/hpr_repsys.dir/credibility.cpp.o"
  "CMakeFiles/hpr_repsys.dir/credibility.cpp.o.d"
  "CMakeFiles/hpr_repsys.dir/eigentrust.cpp.o"
  "CMakeFiles/hpr_repsys.dir/eigentrust.cpp.o.d"
  "CMakeFiles/hpr_repsys.dir/evidential.cpp.o"
  "CMakeFiles/hpr_repsys.dir/evidential.cpp.o.d"
  "CMakeFiles/hpr_repsys.dir/history.cpp.o"
  "CMakeFiles/hpr_repsys.dir/history.cpp.o.d"
  "CMakeFiles/hpr_repsys.dir/htrust.cpp.o"
  "CMakeFiles/hpr_repsys.dir/htrust.cpp.o.d"
  "CMakeFiles/hpr_repsys.dir/io.cpp.o"
  "CMakeFiles/hpr_repsys.dir/io.cpp.o.d"
  "CMakeFiles/hpr_repsys.dir/store.cpp.o"
  "CMakeFiles/hpr_repsys.dir/store.cpp.o.d"
  "CMakeFiles/hpr_repsys.dir/trust.cpp.o"
  "CMakeFiles/hpr_repsys.dir/trust.cpp.o.d"
  "CMakeFiles/hpr_repsys.dir/types.cpp.o"
  "CMakeFiles/hpr_repsys.dir/types.cpp.o.d"
  "libhpr_repsys.a"
  "libhpr_repsys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpr_repsys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
