# Empty dependencies file for hpr_repsys.
# This may be replaced when dependencies are built.
