file(REMOVE_RECURSE
  "libhpr_repsys.a"
)
