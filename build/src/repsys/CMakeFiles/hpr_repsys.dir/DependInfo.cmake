
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/repsys/credibility.cpp" "src/repsys/CMakeFiles/hpr_repsys.dir/credibility.cpp.o" "gcc" "src/repsys/CMakeFiles/hpr_repsys.dir/credibility.cpp.o.d"
  "/root/repo/src/repsys/eigentrust.cpp" "src/repsys/CMakeFiles/hpr_repsys.dir/eigentrust.cpp.o" "gcc" "src/repsys/CMakeFiles/hpr_repsys.dir/eigentrust.cpp.o.d"
  "/root/repo/src/repsys/evidential.cpp" "src/repsys/CMakeFiles/hpr_repsys.dir/evidential.cpp.o" "gcc" "src/repsys/CMakeFiles/hpr_repsys.dir/evidential.cpp.o.d"
  "/root/repo/src/repsys/history.cpp" "src/repsys/CMakeFiles/hpr_repsys.dir/history.cpp.o" "gcc" "src/repsys/CMakeFiles/hpr_repsys.dir/history.cpp.o.d"
  "/root/repo/src/repsys/htrust.cpp" "src/repsys/CMakeFiles/hpr_repsys.dir/htrust.cpp.o" "gcc" "src/repsys/CMakeFiles/hpr_repsys.dir/htrust.cpp.o.d"
  "/root/repo/src/repsys/io.cpp" "src/repsys/CMakeFiles/hpr_repsys.dir/io.cpp.o" "gcc" "src/repsys/CMakeFiles/hpr_repsys.dir/io.cpp.o.d"
  "/root/repo/src/repsys/store.cpp" "src/repsys/CMakeFiles/hpr_repsys.dir/store.cpp.o" "gcc" "src/repsys/CMakeFiles/hpr_repsys.dir/store.cpp.o.d"
  "/root/repo/src/repsys/trust.cpp" "src/repsys/CMakeFiles/hpr_repsys.dir/trust.cpp.o" "gcc" "src/repsys/CMakeFiles/hpr_repsys.dir/trust.cpp.o.d"
  "/root/repo/src/repsys/types.cpp" "src/repsys/CMakeFiles/hpr_repsys.dir/types.cpp.o" "gcc" "src/repsys/CMakeFiles/hpr_repsys.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/hpr_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
