file(REMOVE_RECURSE
  "libhpr_core.a"
)
