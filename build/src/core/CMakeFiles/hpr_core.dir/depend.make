# Empty dependencies file for hpr_core.
# This may be replaced when dependencies are built.
