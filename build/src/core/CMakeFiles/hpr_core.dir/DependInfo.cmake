
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/behavior_test.cpp" "src/core/CMakeFiles/hpr_core.dir/behavior_test.cpp.o" "gcc" "src/core/CMakeFiles/hpr_core.dir/behavior_test.cpp.o.d"
  "/root/repo/src/core/category.cpp" "src/core/CMakeFiles/hpr_core.dir/category.cpp.o" "gcc" "src/core/CMakeFiles/hpr_core.dir/category.cpp.o.d"
  "/root/repo/src/core/changepoint.cpp" "src/core/CMakeFiles/hpr_core.dir/changepoint.cpp.o" "gcc" "src/core/CMakeFiles/hpr_core.dir/changepoint.cpp.o.d"
  "/root/repo/src/core/collusion.cpp" "src/core/CMakeFiles/hpr_core.dir/collusion.cpp.o" "gcc" "src/core/CMakeFiles/hpr_core.dir/collusion.cpp.o.d"
  "/root/repo/src/core/multi_test.cpp" "src/core/CMakeFiles/hpr_core.dir/multi_test.cpp.o" "gcc" "src/core/CMakeFiles/hpr_core.dir/multi_test.cpp.o.d"
  "/root/repo/src/core/multidim.cpp" "src/core/CMakeFiles/hpr_core.dir/multidim.cpp.o" "gcc" "src/core/CMakeFiles/hpr_core.dir/multidim.cpp.o.d"
  "/root/repo/src/core/multinomial_test.cpp" "src/core/CMakeFiles/hpr_core.dir/multinomial_test.cpp.o" "gcc" "src/core/CMakeFiles/hpr_core.dir/multinomial_test.cpp.o.d"
  "/root/repo/src/core/online.cpp" "src/core/CMakeFiles/hpr_core.dir/online.cpp.o" "gcc" "src/core/CMakeFiles/hpr_core.dir/online.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/hpr_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/hpr_core.dir/report.cpp.o.d"
  "/root/repo/src/core/runs_test.cpp" "src/core/CMakeFiles/hpr_core.dir/runs_test.cpp.o" "gcc" "src/core/CMakeFiles/hpr_core.dir/runs_test.cpp.o.d"
  "/root/repo/src/core/temporal.cpp" "src/core/CMakeFiles/hpr_core.dir/temporal.cpp.o" "gcc" "src/core/CMakeFiles/hpr_core.dir/temporal.cpp.o.d"
  "/root/repo/src/core/two_phase.cpp" "src/core/CMakeFiles/hpr_core.dir/two_phase.cpp.o" "gcc" "src/core/CMakeFiles/hpr_core.dir/two_phase.cpp.o.d"
  "/root/repo/src/core/window_stats.cpp" "src/core/CMakeFiles/hpr_core.dir/window_stats.cpp.o" "gcc" "src/core/CMakeFiles/hpr_core.dir/window_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/hpr_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/repsys/CMakeFiles/hpr_repsys.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
