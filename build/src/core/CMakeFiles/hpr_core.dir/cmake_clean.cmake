file(REMOVE_RECURSE
  "CMakeFiles/hpr_core.dir/behavior_test.cpp.o"
  "CMakeFiles/hpr_core.dir/behavior_test.cpp.o.d"
  "CMakeFiles/hpr_core.dir/category.cpp.o"
  "CMakeFiles/hpr_core.dir/category.cpp.o.d"
  "CMakeFiles/hpr_core.dir/changepoint.cpp.o"
  "CMakeFiles/hpr_core.dir/changepoint.cpp.o.d"
  "CMakeFiles/hpr_core.dir/collusion.cpp.o"
  "CMakeFiles/hpr_core.dir/collusion.cpp.o.d"
  "CMakeFiles/hpr_core.dir/multi_test.cpp.o"
  "CMakeFiles/hpr_core.dir/multi_test.cpp.o.d"
  "CMakeFiles/hpr_core.dir/multidim.cpp.o"
  "CMakeFiles/hpr_core.dir/multidim.cpp.o.d"
  "CMakeFiles/hpr_core.dir/multinomial_test.cpp.o"
  "CMakeFiles/hpr_core.dir/multinomial_test.cpp.o.d"
  "CMakeFiles/hpr_core.dir/online.cpp.o"
  "CMakeFiles/hpr_core.dir/online.cpp.o.d"
  "CMakeFiles/hpr_core.dir/report.cpp.o"
  "CMakeFiles/hpr_core.dir/report.cpp.o.d"
  "CMakeFiles/hpr_core.dir/runs_test.cpp.o"
  "CMakeFiles/hpr_core.dir/runs_test.cpp.o.d"
  "CMakeFiles/hpr_core.dir/temporal.cpp.o"
  "CMakeFiles/hpr_core.dir/temporal.cpp.o.d"
  "CMakeFiles/hpr_core.dir/two_phase.cpp.o"
  "CMakeFiles/hpr_core.dir/two_phase.cpp.o.d"
  "CMakeFiles/hpr_core.dir/window_stats.cpp.o"
  "CMakeFiles/hpr_core.dir/window_stats.cpp.o.d"
  "libhpr_core.a"
  "libhpr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
