# Empty dependencies file for hpr_stats.
# This may be replaced when dependencies are built.
