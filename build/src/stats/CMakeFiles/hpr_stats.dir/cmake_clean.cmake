file(REMOVE_RECURSE
  "CMakeFiles/hpr_stats.dir/beta.cpp.o"
  "CMakeFiles/hpr_stats.dir/beta.cpp.o.d"
  "CMakeFiles/hpr_stats.dir/binomial.cpp.o"
  "CMakeFiles/hpr_stats.dir/binomial.cpp.o.d"
  "CMakeFiles/hpr_stats.dir/bounds.cpp.o"
  "CMakeFiles/hpr_stats.dir/bounds.cpp.o.d"
  "CMakeFiles/hpr_stats.dir/calibrate.cpp.o"
  "CMakeFiles/hpr_stats.dir/calibrate.cpp.o.d"
  "CMakeFiles/hpr_stats.dir/distance.cpp.o"
  "CMakeFiles/hpr_stats.dir/distance.cpp.o.d"
  "CMakeFiles/hpr_stats.dir/empirical.cpp.o"
  "CMakeFiles/hpr_stats.dir/empirical.cpp.o.d"
  "CMakeFiles/hpr_stats.dir/moments.cpp.o"
  "CMakeFiles/hpr_stats.dir/moments.cpp.o.d"
  "CMakeFiles/hpr_stats.dir/multinomial.cpp.o"
  "CMakeFiles/hpr_stats.dir/multinomial.cpp.o.d"
  "CMakeFiles/hpr_stats.dir/normal.cpp.o"
  "CMakeFiles/hpr_stats.dir/normal.cpp.o.d"
  "CMakeFiles/hpr_stats.dir/rng.cpp.o"
  "CMakeFiles/hpr_stats.dir/rng.cpp.o.d"
  "libhpr_stats.a"
  "libhpr_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpr_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
