file(REMOVE_RECURSE
  "libhpr_stats.a"
)
