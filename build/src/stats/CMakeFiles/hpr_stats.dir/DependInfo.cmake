
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/beta.cpp" "src/stats/CMakeFiles/hpr_stats.dir/beta.cpp.o" "gcc" "src/stats/CMakeFiles/hpr_stats.dir/beta.cpp.o.d"
  "/root/repo/src/stats/binomial.cpp" "src/stats/CMakeFiles/hpr_stats.dir/binomial.cpp.o" "gcc" "src/stats/CMakeFiles/hpr_stats.dir/binomial.cpp.o.d"
  "/root/repo/src/stats/bounds.cpp" "src/stats/CMakeFiles/hpr_stats.dir/bounds.cpp.o" "gcc" "src/stats/CMakeFiles/hpr_stats.dir/bounds.cpp.o.d"
  "/root/repo/src/stats/calibrate.cpp" "src/stats/CMakeFiles/hpr_stats.dir/calibrate.cpp.o" "gcc" "src/stats/CMakeFiles/hpr_stats.dir/calibrate.cpp.o.d"
  "/root/repo/src/stats/distance.cpp" "src/stats/CMakeFiles/hpr_stats.dir/distance.cpp.o" "gcc" "src/stats/CMakeFiles/hpr_stats.dir/distance.cpp.o.d"
  "/root/repo/src/stats/empirical.cpp" "src/stats/CMakeFiles/hpr_stats.dir/empirical.cpp.o" "gcc" "src/stats/CMakeFiles/hpr_stats.dir/empirical.cpp.o.d"
  "/root/repo/src/stats/moments.cpp" "src/stats/CMakeFiles/hpr_stats.dir/moments.cpp.o" "gcc" "src/stats/CMakeFiles/hpr_stats.dir/moments.cpp.o.d"
  "/root/repo/src/stats/multinomial.cpp" "src/stats/CMakeFiles/hpr_stats.dir/multinomial.cpp.o" "gcc" "src/stats/CMakeFiles/hpr_stats.dir/multinomial.cpp.o.d"
  "/root/repo/src/stats/normal.cpp" "src/stats/CMakeFiles/hpr_stats.dir/normal.cpp.o" "gcc" "src/stats/CMakeFiles/hpr_stats.dir/normal.cpp.o.d"
  "/root/repo/src/stats/rng.cpp" "src/stats/CMakeFiles/hpr_stats.dir/rng.cpp.o" "gcc" "src/stats/CMakeFiles/hpr_stats.dir/rng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
