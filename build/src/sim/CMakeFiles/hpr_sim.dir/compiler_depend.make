# Empty compiler generated dependencies file for hpr_sim.
# This may be replaced when dependencies are built.
