file(REMOVE_RECURSE
  "CMakeFiles/hpr_sim.dir/attack_cost.cpp.o"
  "CMakeFiles/hpr_sim.dir/attack_cost.cpp.o.d"
  "CMakeFiles/hpr_sim.dir/clients.cpp.o"
  "CMakeFiles/hpr_sim.dir/clients.cpp.o.d"
  "CMakeFiles/hpr_sim.dir/collusion_cost.cpp.o"
  "CMakeFiles/hpr_sim.dir/collusion_cost.cpp.o.d"
  "CMakeFiles/hpr_sim.dir/detection.cpp.o"
  "CMakeFiles/hpr_sim.dir/detection.cpp.o.d"
  "CMakeFiles/hpr_sim.dir/economics.cpp.o"
  "CMakeFiles/hpr_sim.dir/economics.cpp.o.d"
  "CMakeFiles/hpr_sim.dir/generators.cpp.o"
  "CMakeFiles/hpr_sim.dir/generators.cpp.o.d"
  "CMakeFiles/hpr_sim.dir/gossip.cpp.o"
  "CMakeFiles/hpr_sim.dir/gossip.cpp.o.d"
  "CMakeFiles/hpr_sim.dir/market.cpp.o"
  "CMakeFiles/hpr_sim.dir/market.cpp.o.d"
  "CMakeFiles/hpr_sim.dir/overlay.cpp.o"
  "CMakeFiles/hpr_sim.dir/overlay.cpp.o.d"
  "CMakeFiles/hpr_sim.dir/p2p.cpp.o"
  "CMakeFiles/hpr_sim.dir/p2p.cpp.o.d"
  "libhpr_sim.a"
  "libhpr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
