
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/attack_cost.cpp" "src/sim/CMakeFiles/hpr_sim.dir/attack_cost.cpp.o" "gcc" "src/sim/CMakeFiles/hpr_sim.dir/attack_cost.cpp.o.d"
  "/root/repo/src/sim/clients.cpp" "src/sim/CMakeFiles/hpr_sim.dir/clients.cpp.o" "gcc" "src/sim/CMakeFiles/hpr_sim.dir/clients.cpp.o.d"
  "/root/repo/src/sim/collusion_cost.cpp" "src/sim/CMakeFiles/hpr_sim.dir/collusion_cost.cpp.o" "gcc" "src/sim/CMakeFiles/hpr_sim.dir/collusion_cost.cpp.o.d"
  "/root/repo/src/sim/detection.cpp" "src/sim/CMakeFiles/hpr_sim.dir/detection.cpp.o" "gcc" "src/sim/CMakeFiles/hpr_sim.dir/detection.cpp.o.d"
  "/root/repo/src/sim/economics.cpp" "src/sim/CMakeFiles/hpr_sim.dir/economics.cpp.o" "gcc" "src/sim/CMakeFiles/hpr_sim.dir/economics.cpp.o.d"
  "/root/repo/src/sim/generators.cpp" "src/sim/CMakeFiles/hpr_sim.dir/generators.cpp.o" "gcc" "src/sim/CMakeFiles/hpr_sim.dir/generators.cpp.o.d"
  "/root/repo/src/sim/gossip.cpp" "src/sim/CMakeFiles/hpr_sim.dir/gossip.cpp.o" "gcc" "src/sim/CMakeFiles/hpr_sim.dir/gossip.cpp.o.d"
  "/root/repo/src/sim/market.cpp" "src/sim/CMakeFiles/hpr_sim.dir/market.cpp.o" "gcc" "src/sim/CMakeFiles/hpr_sim.dir/market.cpp.o.d"
  "/root/repo/src/sim/overlay.cpp" "src/sim/CMakeFiles/hpr_sim.dir/overlay.cpp.o" "gcc" "src/sim/CMakeFiles/hpr_sim.dir/overlay.cpp.o.d"
  "/root/repo/src/sim/p2p.cpp" "src/sim/CMakeFiles/hpr_sim.dir/p2p.cpp.o" "gcc" "src/sim/CMakeFiles/hpr_sim.dir/p2p.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hpr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/repsys/CMakeFiles/hpr_repsys.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hpr_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
