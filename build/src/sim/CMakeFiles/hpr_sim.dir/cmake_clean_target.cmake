file(REMOVE_RECURSE
  "libhpr_sim.a"
)
