file(REMOVE_RECURSE
  "../bench/ablation_runs_test"
  "../bench/ablation_runs_test.pdb"
  "CMakeFiles/ablation_runs_test.dir/ablation_runs_test.cpp.o"
  "CMakeFiles/ablation_runs_test.dir/ablation_runs_test.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_runs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
