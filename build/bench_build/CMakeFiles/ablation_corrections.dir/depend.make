# Empty dependencies file for ablation_corrections.
# This may be replaced when dependencies are built.
