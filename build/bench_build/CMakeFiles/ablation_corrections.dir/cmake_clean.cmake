file(REMOVE_RECURSE
  "../bench/ablation_corrections"
  "../bench/ablation_corrections.pdb"
  "CMakeFiles/ablation_corrections.dir/ablation_corrections.cpp.o"
  "CMakeFiles/ablation_corrections.dir/ablation_corrections.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_corrections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
