# Empty dependencies file for fig7_detection_rate.
# This may be replaced when dependencies are built.
