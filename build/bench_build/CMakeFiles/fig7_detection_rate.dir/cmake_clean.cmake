file(REMOVE_RECURSE
  "../bench/fig7_detection_rate"
  "../bench/fig7_detection_rate.pdb"
  "CMakeFiles/fig7_detection_rate.dir/fig7_detection_rate.cpp.o"
  "CMakeFiles/fig7_detection_rate.dir/fig7_detection_rate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_detection_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
