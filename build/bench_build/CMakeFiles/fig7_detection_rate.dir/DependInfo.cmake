
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig7_detection_rate.cpp" "bench_build/CMakeFiles/fig7_detection_rate.dir/fig7_detection_rate.cpp.o" "gcc" "bench_build/CMakeFiles/fig7_detection_rate.dir/fig7_detection_rate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hpr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hpr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/repsys/CMakeFiles/hpr_repsys.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hpr_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
