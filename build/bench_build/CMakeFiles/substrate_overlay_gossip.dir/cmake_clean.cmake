file(REMOVE_RECURSE
  "../bench/substrate_overlay_gossip"
  "../bench/substrate_overlay_gossip.pdb"
  "CMakeFiles/substrate_overlay_gossip.dir/substrate_overlay_gossip.cpp.o"
  "CMakeFiles/substrate_overlay_gossip.dir/substrate_overlay_gossip.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/substrate_overlay_gossip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
