# Empty dependencies file for substrate_overlay_gossip.
# This may be replaced when dependencies are built.
