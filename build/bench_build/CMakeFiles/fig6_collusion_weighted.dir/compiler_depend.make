# Empty compiler generated dependencies file for fig6_collusion_weighted.
# This may be replaced when dependencies are built.
