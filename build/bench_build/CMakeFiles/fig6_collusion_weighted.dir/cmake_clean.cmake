file(REMOVE_RECURSE
  "../bench/fig6_collusion_weighted"
  "../bench/fig6_collusion_weighted.pdb"
  "CMakeFiles/fig6_collusion_weighted.dir/fig6_collusion_weighted.cpp.o"
  "CMakeFiles/fig6_collusion_weighted.dir/fig6_collusion_weighted.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_collusion_weighted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
