file(REMOVE_RECURSE
  "../bench/fig8_distribution_distance"
  "../bench/fig8_distribution_distance.pdb"
  "CMakeFiles/fig8_distribution_distance.dir/fig8_distribution_distance.cpp.o"
  "CMakeFiles/fig8_distribution_distance.dir/fig8_distribution_distance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_distribution_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
