file(REMOVE_RECURSE
  "../bench/fig4_cost_weighted"
  "../bench/fig4_cost_weighted.pdb"
  "CMakeFiles/fig4_cost_weighted.dir/fig4_cost_weighted.cpp.o"
  "CMakeFiles/fig4_cost_weighted.dir/fig4_cost_weighted.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_cost_weighted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
