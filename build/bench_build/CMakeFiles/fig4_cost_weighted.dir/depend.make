# Empty dependencies file for fig4_cost_weighted.
# This may be replaced when dependencies are built.
