# Empty compiler generated dependencies file for fig9_running_time.
# This may be replaced when dependencies are built.
