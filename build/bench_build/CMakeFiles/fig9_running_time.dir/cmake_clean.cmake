file(REMOVE_RECURSE
  "../bench/fig9_running_time"
  "../bench/fig9_running_time.pdb"
  "CMakeFiles/fig9_running_time.dir/fig9_running_time.cpp.o"
  "CMakeFiles/fig9_running_time.dir/fig9_running_time.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_running_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
