# Empty compiler generated dependencies file for whitewash_policy.
# This may be replaced when dependencies are built.
