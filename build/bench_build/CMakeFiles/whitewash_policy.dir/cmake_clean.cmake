file(REMOVE_RECURSE
  "../bench/whitewash_policy"
  "../bench/whitewash_policy.pdb"
  "CMakeFiles/whitewash_policy.dir/whitewash_policy.cpp.o"
  "CMakeFiles/whitewash_policy.dir/whitewash_policy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whitewash_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
