file(REMOVE_RECURSE
  "../bench/ablation_partial_feedback"
  "../bench/ablation_partial_feedback.pdb"
  "CMakeFiles/ablation_partial_feedback.dir/ablation_partial_feedback.cpp.o"
  "CMakeFiles/ablation_partial_feedback.dir/ablation_partial_feedback.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_partial_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
