# Empty dependencies file for ablation_partial_feedback.
# This may be replaced when dependencies are built.
