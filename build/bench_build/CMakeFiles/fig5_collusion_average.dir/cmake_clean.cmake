file(REMOVE_RECURSE
  "../bench/fig5_collusion_average"
  "../bench/fig5_collusion_average.pdb"
  "CMakeFiles/fig5_collusion_average.dir/fig5_collusion_average.cpp.o"
  "CMakeFiles/fig5_collusion_average.dir/fig5_collusion_average.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_collusion_average.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
