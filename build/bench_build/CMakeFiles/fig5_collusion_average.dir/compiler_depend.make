# Empty compiler generated dependencies file for fig5_collusion_average.
# This may be replaced when dependencies are built.
