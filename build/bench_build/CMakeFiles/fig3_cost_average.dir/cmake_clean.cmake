file(REMOVE_RECURSE
  "../bench/fig3_cost_average"
  "../bench/fig3_cost_average.pdb"
  "CMakeFiles/fig3_cost_average.dir/fig3_cost_average.cpp.o"
  "CMakeFiles/fig3_cost_average.dir/fig3_cost_average.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_cost_average.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
