# Empty compiler generated dependencies file for fig3_cost_average.
# This may be replaced when dependencies are built.
