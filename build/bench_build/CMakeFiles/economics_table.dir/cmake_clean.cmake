file(REMOVE_RECURSE
  "../bench/economics_table"
  "../bench/economics_table.pdb"
  "CMakeFiles/economics_table.dir/economics_table.cpp.o"
  "CMakeFiles/economics_table.dir/economics_table.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/economics_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
