# Empty dependencies file for economics_table.
# This may be replaced when dependencies are built.
