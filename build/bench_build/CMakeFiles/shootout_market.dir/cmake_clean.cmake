file(REMOVE_RECURSE
  "../bench/shootout_market"
  "../bench/shootout_market.pdb"
  "CMakeFiles/shootout_market.dir/shootout_market.cpp.o"
  "CMakeFiles/shootout_market.dir/shootout_market.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shootout_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
