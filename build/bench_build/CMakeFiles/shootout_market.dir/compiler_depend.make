# Empty compiler generated dependencies file for shootout_market.
# This may be replaced when dependencies are built.
