file(REMOVE_RECURSE
  "../bench/ablation_distance_kind"
  "../bench/ablation_distance_kind.pdb"
  "CMakeFiles/ablation_distance_kind.dir/ablation_distance_kind.cpp.o"
  "CMakeFiles/ablation_distance_kind.dir/ablation_distance_kind.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_distance_kind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
