# Empty compiler generated dependencies file for ablation_distance_kind.
# This may be replaced when dependencies are built.
