// Heavier randomized property tests cutting across modules.  Each suite
// fuzzes an invariant the library's correctness argument leans on, under
// parameter sweeps (TEST_P) and seeded randomness so failures reproduce.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <tuple>

#include "hpr.h"

namespace hpr {
namespace {

std::shared_ptr<stats::Calibrator> shared_cal() {
    static auto cal = core::make_calibrator(core::BehaviorTestConfig{});
    return cal;
}

// ---------------------------------------------------------------------------
// Invariant 1: incremental multi-testing == naive multi-testing, across
// window sizes, steps, distance kinds and the Bonferroni correction.

using MultiEquivParam = std::tuple<std::uint32_t /*window*/, std::size_t /*step*/,
                                   bool /*bonferroni*/, stats::DistanceKind>;

class MultiTestEquivalence : public ::testing::TestWithParam<MultiEquivParam> {};

TEST_P(MultiTestEquivalence, IncrementalEqualsNaiveFuzz) {
    const auto [window, step, bonferroni, kind] = GetParam();
    core::MultiTestConfig config;
    config.base.window_size = window;
    config.base.distance = kind;
    config.step = step;
    config.bonferroni = bonferroni;
    config.collect_details = true;
    config.stop_on_failure = false;
    const core::MultiTest tester{config};

    stats::Rng rng{window * 1000 + step + (bonferroni ? 7 : 0)};
    for (int trial = 0; trial < 8; ++trial) {
        const auto n = static_cast<std::size_t>(
            3 * window + rng.uniform_int(std::uint64_t{600}));
        const double p = 0.4 + 0.6 * rng.uniform();
        auto outcomes = sim::honest_outcomes(n, p, rng);
        if (trial % 2 == 1) {
            outcomes.insert(outcomes.end(), window + 5, std::uint8_t{0});
        }
        const std::span<const std::uint8_t> view{outcomes};
        const auto fast = tester.test(view);
        const auto slow = tester.test_naive(view);
        ASSERT_EQ(fast.passed, slow.passed) << "trial " << trial;
        ASSERT_EQ(fast.stages_run, slow.stages_run);
        ASSERT_EQ(fast.failed_suffix_length, slow.failed_suffix_length);
        ASSERT_EQ(fast.details.size(), slow.details.size());
        for (std::size_t s = 0; s < fast.details.size(); ++s) {
            ASSERT_DOUBLE_EQ(fast.details[s].distance, slow.details[s].distance);
            ASSERT_DOUBLE_EQ(fast.details[s].threshold, slow.details[s].threshold);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MultiTestEquivalence,
    ::testing::Values(
        MultiEquivParam{10, 0, false, stats::DistanceKind::kL1},
        MultiEquivParam{10, 0, true, stats::DistanceKind::kL1},
        MultiEquivParam{10, 50, false, stats::DistanceKind::kL1},
        MultiEquivParam{5, 0, false, stats::DistanceKind::kL1},
        MultiEquivParam{20, 40, true, stats::DistanceKind::kL1},
        MultiEquivParam{10, 0, false, stats::DistanceKind::kKolmogorovSmirnov},
        MultiEquivParam{10, 30, true, stats::DistanceKind::kL2}));

// ---------------------------------------------------------------------------
// Invariant 2: issuer re-ordering matches a straightforward reference
// implementation exactly.

std::vector<repsys::Feedback> reference_reorder(
    std::span<const repsys::Feedback> feedbacks) {
    struct Group {
        std::size_t first = 0;
        std::vector<repsys::Feedback> members;
    };
    std::map<repsys::EntityId, Group> groups;
    for (std::size_t i = 0; i < feedbacks.size(); ++i) {
        auto [it, inserted] = groups.try_emplace(feedbacks[i].client);
        if (inserted) it->second.first = i;
        it->second.members.push_back(feedbacks[i]);
    }
    std::vector<const Group*> ordered;
    for (const auto& [client, group] : groups) ordered.push_back(&group);
    std::sort(ordered.begin(), ordered.end(), [](const Group* a, const Group* b) {
        if (a->members.size() != b->members.size()) {
            return a->members.size() > b->members.size();
        }
        return a->first < b->first;
    });
    std::vector<repsys::Feedback> out;
    for (const Group* g : ordered) {
        out.insert(out.end(), g->members.begin(), g->members.end());
    }
    return out;
}

TEST(ReorderProperty, MatchesReferenceImplementationFuzz) {
    stats::Rng rng{2001};
    for (int trial = 0; trial < 40; ++trial) {
        std::vector<repsys::Feedback> feedbacks;
        const auto n = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{400}));
        const auto clients = 1 + rng.uniform_int(std::uint64_t{25});
        for (std::size_t i = 0; i < n; ++i) {
            feedbacks.push_back(repsys::Feedback{
                static_cast<repsys::Timestamp>(i + 1), 1,
                static_cast<repsys::EntityId>(rng.uniform_int(clients)),
                rng.bernoulli(0.8) ? repsys::Rating::kPositive
                                   : repsys::Rating::kNegative});
        }
        ASSERT_EQ(core::reorder_by_issuer(feedbacks), reference_reorder(feedbacks))
            << "trial " << trial;
    }
}

// ---------------------------------------------------------------------------
// Invariant 3: the calibrated threshold is monotone in confidence and in
// the window count, for arbitrary keys.

TEST(CalibratorProperty, ThresholdMonotoneInConfidenceFuzz) {
    auto cal = shared_cal();
    stats::Rng rng{2002};
    for (int trial = 0; trial < 15; ++trial) {
        const auto windows = 3 + rng.uniform_int(std::uint64_t{300});
        const std::uint32_t m = 5 + static_cast<std::uint32_t>(
                                        rng.uniform_int(std::uint64_t{20}));
        const double p = 0.5 + 0.5 * rng.uniform();
        double last = 0.0;
        for (const double confidence : {0.5, 0.8, 0.9, 0.95, 0.99}) {
            const double eps = cal->threshold(windows, m, p, confidence);
            ASSERT_GE(eps + 1e-15, last)
                << "windows=" << windows << " m=" << m << " p=" << p;
            last = eps;
        }
    }
}

TEST(CalibratorProperty, ThresholdWeaklyDecreasingInWindowsFuzz) {
    auto cal = shared_cal();
    stats::Rng rng{2003};
    for (int trial = 0; trial < 10; ++trial) {
        const double p = 0.6 + 0.35 * rng.uniform();
        double last = 10.0;
        for (std::size_t windows = 4; windows <= 2048; windows *= 4) {
            const double eps = cal->threshold(windows, 10, p);
            ASSERT_LE(eps, last + 0.05) << "p=" << p << " windows=" << windows;
            last = eps;
        }
    }
}

// ---------------------------------------------------------------------------
// Invariant 4: binomial survival equals the regularized incomplete beta
// (the classic identity linking the two distributions).

TEST(CrossModuleProperty, BinomialSurvivalMatchesIncompleteBeta) {
    stats::Rng rng{2004};
    for (int trial = 0; trial < 30; ++trial) {
        const std::uint32_t n = 1 + static_cast<std::uint32_t>(
                                        rng.uniform_int(std::uint64_t{40}));
        const double p = 0.05 + 0.9 * rng.uniform();
        const std::uint32_t k = 1 + static_cast<std::uint32_t>(
                                        rng.uniform_int(std::uint64_t{n}));
        const stats::Binomial binomial{n, p};
        const double via_beta =
            stats::reg_incomplete_beta(k, static_cast<double>(n - k) + 1.0, p);
        ASSERT_NEAR(binomial.survival(k), via_beta, 1e-9)
            << "n=" << n << " k=" << k << " p=" << p;
    }
}

// ---------------------------------------------------------------------------
// Invariant 4b: screening through the shared reference-model cache is
// bit-identical to fresh per-stage model construction — the property the
// whole assessment fast path rests on (stats/reference_cache.h).  The
// cache is deliberately tiny so the fuzz also crosses eviction churn, and
// the trials include all-good histories, whose distance to B(m, 1) must
// be exactly 0 under either path.

TEST(ReferenceCacheProperty, CachedScreeningBitIdenticalToUncachedFuzz) {
    core::MultiTestConfig cached_config;
    cached_config.stop_on_failure = false;
    cached_config.collect_details = true;
    cached_config.base.reference_cache =
        std::make_shared<stats::ReferenceModelCache>(32);
    core::MultiTestConfig uncached_config = cached_config;
    uncached_config.base.use_reference_cache = false;
    uncached_config.base.reference_cache = nullptr;
    const core::MultiTest cached{cached_config, shared_cal()};
    const core::MultiTest uncached{uncached_config, shared_cal()};

    stats::Rng rng{2045};
    for (int trial = 0; trial < 24; ++trial) {
        const auto n =
            static_cast<std::size_t>(30 + rng.uniform_int(std::uint64_t{800}));
        std::vector<std::uint8_t> outcomes;
        if (trial % 6 == 5) {
            outcomes.assign(n, std::uint8_t{1});  // degenerate p̂ = 1 exactly
        } else {
            const double p = 0.3 + 0.7 * rng.uniform();
            outcomes = sim::honest_outcomes(n, p, rng);
            if (trial % 3 == 2) {
                outcomes.insert(outcomes.end(), 25, std::uint8_t{0});
            }
        }
        const std::span<const std::uint8_t> view{outcomes};
        const auto fast = cached.test(view);
        const auto fresh = uncached.test(view);
        ASSERT_EQ(fast.passed, fresh.passed) << "trial " << trial;
        ASSERT_EQ(fast.sufficient, fresh.sufficient);
        ASSERT_EQ(fast.stages_run, fresh.stages_run);
        ASSERT_EQ(fast.failed_suffix_length, fresh.failed_suffix_length);
        ASSERT_EQ(fast.min_margin, fresh.min_margin);  // exact, not NEAR
        ASSERT_EQ(fast.details.size(), fresh.details.size());
        for (std::size_t s = 0; s < fast.details.size(); ++s) {
            ASSERT_EQ(fast.details[s].distance, fresh.details[s].distance)
                << "trial " << trial << " stage " << s;
            ASSERT_EQ(fast.details[s].threshold, fresh.details[s].threshold);
            ASSERT_EQ(fast.details[s].p_hat, fresh.details[s].p_hat);
            ASSERT_EQ(fast.details[s].passed, fresh.details[s].passed);
        }
    }
    const auto stats = cached_config.base.reference_cache->stats();
    EXPECT_GT(stats.hits, 0u);
    EXPECT_GT(stats.evictions, 0u);  // the fuzz really crossed eviction churn
}

// ---------------------------------------------------------------------------
// Invariant 5: WindowStats bookkeeping is exact against the raw sequence.

TEST(WindowStatsProperty, TotalsMatchRawSequenceFuzz) {
    stats::Rng rng{2005};
    for (int trial = 0; trial < 30; ++trial) {
        const auto n = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{1000}));
        const std::uint32_t m = 1 + static_cast<std::uint32_t>(
                                        rng.uniform_int(std::uint64_t{30}));
        const auto outcomes = sim::honest_outcomes(n, 0.5 + 0.5 * rng.uniform(), rng);
        const auto ws =
            core::compute_window_stats(std::span<const std::uint8_t>{outcomes}, m);
        ASSERT_EQ(ws.windows(), n / m);
        ASSERT_EQ(ws.transactions_used, (n / m) * m);
        std::uint64_t direct = 0;
        for (std::size_t i = n - ws.transactions_used; i < n; ++i) {
            direct += outcomes[i];
        }
        ASSERT_EQ(ws.good_total, direct);
        std::uint64_t from_windows = 0;
        for (const auto g : ws.good_counts) {
            ASSERT_LE(g, m);
            from_windows += g;
        }
        ASSERT_EQ(from_windows, direct);
    }
}

// ---------------------------------------------------------------------------
// Invariant 6: EmpiricalDistribution under random add/remove equals a
// batch rebuild of the surviving multiset.

TEST(EmpiricalProperty, AddRemoveMatchesBatchFuzz) {
    stats::Rng rng{2006};
    for (int trial = 0; trial < 20; ++trial) {
        stats::EmpiricalDistribution live{10};
        std::vector<std::uint32_t> surviving;
        for (int op = 0; op < 500; ++op) {
            if (!surviving.empty() && rng.bernoulli(0.4)) {
                const auto pick = rng.uniform_int(surviving.size());
                live.remove(surviving[pick]);
                surviving.erase(surviving.begin() + static_cast<std::ptrdiff_t>(pick));
            } else {
                const auto value =
                    static_cast<std::uint32_t>(rng.uniform_int(std::uint64_t{11}));
                live.add(value);
                surviving.push_back(value);
            }
        }
        const stats::EmpiricalDistribution batch{10, surviving};
        ASSERT_EQ(live.count_table(), batch.count_table());
        ASSERT_EQ(live.value_sum(), batch.value_sum());
        ASSERT_NEAR(live.variance(), batch.variance(), 1e-9);
    }
}

// ---------------------------------------------------------------------------
// Invariant 7: the two-phase assessor's published pieces are coherent —
// screen() matches assess().screening, and acceptable() is exactly
// "not suspicious and trust above threshold".

TEST(TwoPhaseProperty, AssessmentPiecesAreCoherentFuzz) {
    core::TwoPhaseConfig config;
    config.mode = core::ScreeningMode::kMulti;
    const core::TwoPhaseAssessor assessor{
        config,
        std::shared_ptr<const repsys::TrustFunction>{
            repsys::make_trust_function("average")},
        shared_cal()};
    stats::Rng rng{2007};
    for (int trial = 0; trial < 25; ++trial) {
        repsys::TransactionHistory history;
        const auto n = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{700}));
        const double p = rng.uniform();
        for (std::size_t i = 0; i < n; ++i) {
            history.append(1, static_cast<repsys::EntityId>(2 + i % 17),
                           rng.bernoulli(p) ? repsys::Rating::kPositive
                                            : repsys::Rating::kNegative);
        }
        const auto assessment = assessor.assess(history);
        const auto screening = assessor.screen(history.view());
        ASSERT_EQ(assessment.screening.passed, screening.passed);
        ASSERT_EQ(assessment.screening.stages_run, screening.stages_run);
        ASSERT_EQ(assessment.trust.has_value(), screening.passed);
        if (assessment.trust) {
            ASSERT_NEAR(*assessment.trust, history.good_ratio(), 1e-12);
        }
        for (const double threshold : {0.1, 0.5, 0.9}) {
            const bool expected = screening.passed && assessment.trust &&
                                  *assessment.trust >= threshold;
            ASSERT_EQ(assessment.acceptable(threshold), expected);
        }
    }
}

// ---------------------------------------------------------------------------
// Invariant 8: overlay lookups return exactly what was published, for
// random servers and interleavings, as long as replicas survive.

TEST(OverlayProperty, LookupReturnsPublishedFuzz) {
    stats::Rng rng{2008};
    for (int trial = 0; trial < 10; ++trial) {
        sim::OverlayConfig config;
        config.nodes = 16 + rng.uniform_int(std::uint64_t{100});
        config.replication = 1 + rng.uniform_int(std::uint64_t{3});
        config.seed = 100 + trial;
        sim::FeedbackOverlay overlay{config};
        std::map<repsys::EntityId, std::vector<repsys::Feedback>> expected;
        for (int i = 1; i <= 300; ++i) {
            const auto server =
                static_cast<repsys::EntityId>(1 + rng.uniform_int(std::uint64_t{20}));
            const repsys::Feedback f{static_cast<repsys::Timestamp>(i), server,
                                     static_cast<repsys::EntityId>(500 + i),
                                     rng.bernoulli(0.8)
                                         ? repsys::Rating::kPositive
                                         : repsys::Rating::kNegative};
            overlay.publish(f);
            expected[server].push_back(f);
        }
        for (const auto& [server, feedbacks] : expected) {
            ASSERT_EQ(overlay.lookup(server), feedbacks)
                << "trial " << trial << " server " << server;
        }
    }
}

// ---------------------------------------------------------------------------
// Invariant 9: the streaming screener's final evaluation equals the batch
// multi-test on window-aligned streams, across configurations.

class OnlineBatchParity
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::size_t, bool>> {};

TEST_P(OnlineBatchParity, FinalEvaluationMatchesBatchFuzz) {
    const auto [window, step, bonferroni] = GetParam();
    core::MultiTestConfig config;
    config.base.window_size = window;
    config.step = step;
    config.bonferroni = bonferroni;
    config.stop_on_failure = false;
    const core::MultiTest batch{config, shared_cal()};

    core::OnlineScreenerConfig streaming;
    streaming.test = config;

    stats::Rng rng{static_cast<std::uint64_t>(window) * 31 + step};
    for (int trial = 0; trial < 6; ++trial) {
        const std::size_t windows_count = 4 + rng.uniform_int(std::uint64_t{60});
        const auto outcomes =
            sim::honest_outcomes(windows_count * window, 0.55 + 0.45 * rng.uniform(),
                                 rng);
        core::OnlineScreener screener{streaming, shared_cal()};
        for (const auto o : outcomes) screener.observe(o != 0);
        const auto batch_result =
            batch.test(std::span<const std::uint8_t>{outcomes});
        ASSERT_EQ(screener.last_evaluation_passed(), batch_result.passed)
            << "window=" << window << " step=" << step << " trial=" << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, OnlineBatchParity,
                         ::testing::Values(std::make_tuple(10u, std::size_t{0}, false),
                                           std::make_tuple(10u, std::size_t{0}, true),
                                           std::make_tuple(5u, std::size_t{15}, false),
                                           std::make_tuple(20u, std::size_t{0}, false)));

// ---------------------------------------------------------------------------
// Invariant 9b: FeedbackStore round-trips through save/load and eviction
// under random operation sequences.

TEST(StoreProperty, SaveLoadEvictFuzz) {
    stats::Rng rng{2009};
    for (int trial = 0; trial < 6; ++trial) {
        repsys::FeedbackStore store;
        repsys::Timestamp t = 1;
        for (int i = 0; i < 400; ++i) {
            store.submit(repsys::Feedback{
                t++, static_cast<repsys::EntityId>(1 + rng.uniform_int(std::uint64_t{6})),
                static_cast<repsys::EntityId>(100 + rng.uniform_int(std::uint64_t{30})),
                rng.bernoulli(0.85) ? repsys::Rating::kPositive
                                    : repsys::Rating::kNegative});
        }
        const auto dir = (std::filesystem::temp_directory_path() /
                          ("hpr_store_fuzz_" + std::to_string(trial)))
                             .string();
        store.save(dir);
        const repsys::FeedbackStore loaded = repsys::FeedbackStore::load(dir);
        std::filesystem::remove_all(dir);
        ASSERT_EQ(loaded.size(), store.size());
        for (const auto server : store.servers()) {
            ASSERT_EQ(loaded.history(server).feedbacks(),
                      store.history(server).feedbacks());
        }
        // Eviction preserves exactly the at-or-after-cutoff suffix.
        repsys::FeedbackStore evicted = loaded;
        const repsys::Timestamp cutoff =
            1 + static_cast<repsys::Timestamp>(rng.uniform_int(std::uint64_t{400}));
        const std::size_t removed = evicted.evict_before(cutoff);
        std::size_t expected_removed = 0;
        for (const auto server : loaded.servers()) {
            for (const auto& f : loaded.history(server).feedbacks()) {
                if (f.time < cutoff) ++expected_removed;
            }
        }
        ASSERT_EQ(removed, expected_removed);
        ASSERT_EQ(evicted.size(), loaded.size() - expected_removed);
    }
}

// ---------------------------------------------------------------------------
// Invariant 10: trust accumulators equal whole-history evaluation at every
// prefix, for every registered trust function, under random streams.

TEST(TrustProperty, AccumulatorPrefixConsistencyFuzz) {
    stats::Rng rng{2010};
    for (const char* spec : {"average", "weighted:0.3", "beta", "decay:0.95", "trustguard"}) {
        const auto trust = repsys::make_trust_function(spec);
        for (int trial = 0; trial < 5; ++trial) {
            repsys::TransactionHistory history;
            auto acc = trust->make_accumulator();
            const double p = rng.uniform();
            for (int i = 0; i < 200; ++i) {
                const bool good = rng.bernoulli(p);
                history.append(1, 2, good ? repsys::Rating::kPositive
                                          : repsys::Rating::kNegative);
                acc->update(good);
                ASSERT_NEAR(acc->value(), trust->evaluate(history), 1e-12)
                    << spec << " step " << i;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Invariant 11: parallel batch assessment over the sharded store equals
// the seed sequential path — one TwoPhaseAssessor walking history(id)
// server by server — for random tapes, shard counts and thread counts.

TEST(ServingProperty, BatchAssessorEqualsSequentialLoopFuzz) {
    const auto trust = std::shared_ptr<const repsys::TrustFunction>{
        repsys::make_trust_function("beta")};
    stats::Rng rng{2011};
    for (int trial = 0; trial < 5; ++trial) {
        const std::size_t shard_count = 1 + rng.uniform_int(std::uint64_t{31});
        const std::size_t threads = 1 + rng.uniform_int(std::uint64_t{8});

        repsys::FeedbackStore store{shard_count};
        std::vector<repsys::Feedback> batch;
        for (repsys::EntityId server = 1; server <= 10; ++server) {
            const auto length = rng.uniform_int(std::uint64_t{500});
            const double p = 0.3 + 0.7 * rng.uniform();
            for (std::size_t i = 0; i < length; ++i) {
                batch.push_back(repsys::Feedback{
                    static_cast<repsys::Timestamp>(i + 1), server,
                    static_cast<repsys::EntityId>(200 + rng.uniform_int(std::uint64_t{19})),
                    rng.bernoulli(p) ? repsys::Rating::kPositive
                                     : repsys::Rating::kNegative});
            }
        }
        store.submit(batch);

        core::TwoPhaseConfig config;
        config.mode = core::ScreeningMode::kMulti;
        config.test.bonferroni = trial % 2 == 0;
        config.test.collect_details = true;
        const core::TwoPhaseAssessor sequential{config, trust, shared_cal()};
        serve::BatchAssessorConfig batch_config;
        batch_config.assessment = config;
        batch_config.threads = threads;
        const serve::BatchAssessor parallel{batch_config, trust, shared_cal()};

        const auto results = parallel.assess_all(store);
        const auto servers = store.servers();
        ASSERT_EQ(results.size(), servers.size());
        for (std::size_t i = 0; i < servers.size(); ++i) {
            ASSERT_EQ(results[i].server, servers[i]);
            const auto& got = results[i].assessment;
            const auto want = sequential.assess(store.history(servers[i]));
            ASSERT_EQ(got.verdict, want.verdict)
                << "trial " << trial << " server " << servers[i]
                << " shards=" << shard_count << " threads=" << threads;
            ASSERT_EQ(got.trust.has_value(), want.trust.has_value());
            if (want.trust) {
                ASSERT_DOUBLE_EQ(*got.trust, *want.trust);
            }
            ASSERT_EQ(got.screening.passed, want.screening.passed);
            ASSERT_EQ(got.screening.stages_run, want.screening.stages_run);
            ASSERT_EQ(got.screening.failed_suffix_length,
                      want.screening.failed_suffix_length);
            ASSERT_EQ(got.screening.details.size(), want.screening.details.size());
            for (std::size_t s = 0; s < want.screening.details.size(); ++s) {
                ASSERT_DOUBLE_EQ(got.screening.details[s].distance,
                                 want.screening.details[s].distance);
                ASSERT_DOUBLE_EQ(got.screening.details[s].threshold,
                                 want.screening.details[s].threshold);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Invariant 12: the horizon-bounded screener is a pure optimization.
// (a) While the stream still fits max_windows, every observable of the
// bounded screener equals the unbounded screener's after every single
// observe.  (b) Once the ring has wrapped, each evaluation must equal
// batch MultiTest over exactly the newest horizon*m outcomes — bounding
// changes what is retained, never what the retained suffix decides.

TEST(OnlineHorizonProperty, BoundedEqualsUnboundedWithinHorizonFuzz) {
    stats::Rng rng{2012};
    for (int trial = 0; trial < 8; ++trial) {
        core::OnlineScreenerConfig bounded_config;
        bounded_config.test.bonferroni = trial % 2 == 0;
        bounded_config.max_windows =
            bounded_config.test.base.min_windows + rng.uniform_int(std::uint64_t{20});
        core::OnlineScreenerConfig unbounded_config = bounded_config;
        unbounded_config.max_windows = 0;
        core::OnlineScreener bounded{bounded_config, shared_cal()};
        core::OnlineScreener unbounded{unbounded_config, shared_cal()};
        const double p = 0.4 + 0.6 * rng.uniform();
        const std::size_t horizon_tx =
            bounded_config.max_windows * bounded_config.test.base.window_size;
        for (std::size_t i = 0; i < horizon_tx; ++i) {
            const bool good = rng.bernoulli(p);
            bounded.observe(good);
            unbounded.observe(good);
            ASSERT_EQ(bounded.state(), unbounded.state())
                << "trial " << trial << " tx " << i;
            ASSERT_EQ(bounded.p_hat(), unbounded.p_hat())
                << "trial " << trial << " tx " << i;
            ASSERT_EQ(bounded.last_evaluation_passed(),
                      unbounded.last_evaluation_passed())
                << "trial " << trial << " tx " << i;
            ASSERT_EQ(bounded.evaluations(), unbounded.evaluations());
            ASSERT_EQ(bounded.retained_windows(), unbounded.retained_windows());
        }
    }
}

TEST(OnlineHorizonProperty, RetainedSuffixEqualsBatchMultiTestPastWrapFuzz) {
    stats::Rng rng{2013};
    for (int trial = 0; trial < 6; ++trial) {
        core::OnlineScreenerConfig config;
        config.test.bonferroni = trial % 2 == 0;
        config.max_windows = 4 + rng.uniform_int(std::uint64_t{12});
        const std::uint32_t m = config.test.base.window_size;
        const std::size_t horizon_tx = config.max_windows * m;
        core::OnlineScreener screener{config, shared_cal()};
        const core::MultiTest oracle{config.test, shared_cal()};
        // Mid-stream behavior flips keep failing ladders in the sample.
        const double p_early = 0.5 + 0.5 * rng.uniform();
        const double p_late = 0.3 + 0.7 * rng.uniform();
        std::vector<std::uint8_t> tape;
        const std::size_t total_tx = 3 * horizon_tx;
        for (std::size_t i = 0; i < total_tx; ++i) {
            tape.push_back(rng.bernoulli(i < total_tx / 2 ? p_early : p_late) ? 1
                                                                              : 0);
        }
        for (std::size_t i = 0; i < total_tx; ++i) {
            screener.observe(tape[i] != 0);
            if ((i + 1) % m != 0 || i + 1 < horizon_tx) continue;
            ASSERT_EQ(screener.retained_windows(), config.max_windows);
            const auto batch = oracle.test(std::span<const std::uint8_t>{
                tape.data() + (i + 1 - horizon_tx), horizon_tx});
            ASSERT_EQ(screener.last_evaluation_passed(), batch.passed)
                << "trial " << trial << " tx " << i + 1 << " horizon "
                << config.max_windows;
        }
    }
}

}  // namespace
}  // namespace hpr
