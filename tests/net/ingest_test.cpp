// The write half of the serving layer (net/ingest.h): gate admission
// arithmetic (watermarks, overflow, release accounting), the strict
// body parser, the /ingest and /assess handlers against a live store +
// screener bank, and full HTTP round trips through the epoll front-end
// including 429 shedding with Retry-After.

#include "net/ingest.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/endpoints.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "obs/introspection.h"
#include "repsys/store.h"
#include "repsys/trust.h"
#include "serve/batch_assessor.h"

namespace hpr::net {
namespace {

serve::BatchAssessor make_assessor() {
    serve::BatchAssessorConfig config;
    config.threads = 2;
    return serve::BatchAssessor{
        config,
        std::shared_ptr<const repsys::TrustFunction>{
            repsys::make_trust_function("beta")}};
}

// ---------------------------------------------------------------------------
// IngestGate

TEST(IngestGate, EstimateIsWorstCaseRecordsPerByte) {
    // "1 1 1\n" is 6 bytes: a 60-byte body could carry 10 such records.
    EXPECT_EQ(IngestGate::estimate_records(0), 1u);
    EXPECT_EQ(IngestGate::estimate_records(5), 1u);
    EXPECT_EQ(IngestGate::estimate_records(6), 2u);
    EXPECT_EQ(IngestGate::estimate_records(60), 11u);
}

TEST(IngestGate, AdmitsUntilTheBudgetAndReleasesExactly) {
    IngestGate gate{{.pending_budget = 100,
                     .soft_watermark = 1.0,
                     .hard_watermark = 1.0}};
    EXPECT_TRUE(gate.try_admit(60));
    EXPECT_EQ(gate.pending(), 60u);
    EXPECT_TRUE(gate.try_admit(40));
    EXPECT_EQ(gate.pending(), 100u);
    EXPECT_FALSE(gate.try_admit(1));  // full
    EXPECT_EQ(gate.shed_overflow(), 1u);
    gate.release(40);
    EXPECT_EQ(gate.pending(), 60u);
    EXPECT_TRUE(gate.try_admit(1));
    gate.release(61);
    gate.release(0);
    EXPECT_EQ(gate.pending(), 0u);
    EXPECT_EQ(gate.admitted(), 3u);
    EXPECT_EQ(gate.admitted_records(), 101u);
    EXPECT_EQ(gate.released_records(), 101u);
}

TEST(IngestGate, SoftWatermarkShedsOnlyLargeRequests) {
    IngestGate gate{{.pending_budget = 1000,
                     .soft_watermark = 0.5,
                     .hard_watermark = 0.9,
                     .large_request_records = 10}};
    ASSERT_TRUE(gate.try_admit(500));  // lands exactly at the soft mark
    // In the soft zone: small passes, large is shed.
    EXPECT_TRUE(gate.try_admit(10));
    EXPECT_FALSE(gate.try_admit(11));
    EXPECT_EQ(gate.shed_soft(), 1u);
    EXPECT_EQ(gate.pending(), 510u);
}

TEST(IngestGate, HardWatermarkShedsEverything) {
    IngestGate gate{{.pending_budget = 1000,
                     .soft_watermark = 0.5,
                     .hard_watermark = 0.9,
                     .large_request_records = 10}};
    ASSERT_TRUE(gate.try_admit(500));
    ASSERT_TRUE(gate.try_admit(10));  // soft zone, small: admitted
    ASSERT_TRUE(gate.try_admit(10));
    // ... climb into the hard zone with admissible small requests.
    while (gate.pending() < gate.hard_records()) {
        ASSERT_TRUE(gate.try_admit(10)) << gate.pending();
    }
    EXPECT_FALSE(gate.try_admit(1));  // even a tiny request is shed now
    EXPECT_GE(gate.shed_hard(), 1u);
}

TEST(IngestGate, OverflowIsShedEvenBelowTheWatermarks) {
    IngestGate gate{{.pending_budget = 100,
                     .soft_watermark = 1.0,
                     .hard_watermark = 1.0}};
    EXPECT_FALSE(gate.try_admit(101));  // empty gate, request bigger than budget
    EXPECT_EQ(gate.shed_overflow(), 1u);
    EXPECT_EQ(gate.pending(), 0u);
}

TEST(IngestGate, DegenerateConfigIsClamped) {
    IngestGate gate{{.pending_budget = 0,
                     .soft_watermark = 2.0,
                     .hard_watermark = -1.0,
                     .retry_after_seconds = 0}};
    EXPECT_EQ(gate.config().pending_budget, 1u);
    EXPECT_LE(gate.config().soft_watermark, 1.0);
    EXPECT_GE(gate.config().hard_watermark, gate.config().soft_watermark);
    EXPECT_GE(gate.retry_after_seconds(), 1);
}

// ---------------------------------------------------------------------------
// parse_ingest_body

TEST(IngestParser, ParsesWellFormedBatches) {
    std::vector<repsys::Feedback> feedbacks;
    std::string error;
    ASSERT_TRUE(
        parse_ingest_body("7 100 1\n7 101 0\n8 -5 2\n", feedbacks, error))
        << error;
    ASSERT_EQ(feedbacks.size(), 3u);
    EXPECT_EQ(feedbacks[0].server, 7u);
    EXPECT_EQ(feedbacks[0].time, 100);
    EXPECT_EQ(feedbacks[0].rating, repsys::Rating::kPositive);
    EXPECT_EQ(feedbacks[1].rating, repsys::Rating::kNegative);
    EXPECT_EQ(feedbacks[2].server, 8u);
    EXPECT_EQ(feedbacks[2].time, -5);
    EXPECT_EQ(feedbacks[2].rating, repsys::Rating::kNeutral);
    EXPECT_EQ(feedbacks[2].client, 0u);  // the wire carries no issuer
}

TEST(IngestParser, AcceptsAFinalUnterminatedLine) {
    std::vector<repsys::Feedback> feedbacks;
    std::string error;
    ASSERT_TRUE(parse_ingest_body("7 1 1\n7 2 1", feedbacks, error)) << error;
    EXPECT_EQ(feedbacks.size(), 2u);
}

TEST(IngestParser, RejectsEveryMalformationWithItsLineNumber) {
    const struct {
        const char* body;
        std::size_t line;
    } cases[] = {
        {"", 0},                      // empty batch (no line to blame)
        {"7 1 1\n\n7 2 1\n", 2},      // blank line
        {"7 1 1\r\n", 1},             // CRLF line ending
        {"7 1\n", 1},                 // too few fields
        {"7 1 1 9\n", 1},             // too many fields
        {"x 1 1\n", 1},               // non-numeric server
        {"7 y 1\n", 1},               // non-numeric timestamp
        {"7 1 z\n", 1},               // non-numeric outcome
        {"7 1 3\n", 1},               // outcome out of range
        {"-7 1 1\n", 1},              // negative server id
        {"4294967296 1 1\n", 1},      // server id beyond uint32
        {"7 1 1\n7 2 1\n7 3 7\n", 3}, // failure deep in the batch
    };
    for (const auto& test_case : cases) {
        std::vector<repsys::Feedback> feedbacks;
        std::string error;
        EXPECT_FALSE(parse_ingest_body(test_case.body, feedbacks, error))
            << '"' << test_case.body << '"';
        if (test_case.line != 0) {
            EXPECT_NE(
                error.find("line " + std::to_string(test_case.line) + ":"),
                std::string::npos)
                << '"' << test_case.body << "\" -> " << error;
        }
    }
}

// ---------------------------------------------------------------------------
// IngestService handlers (no HTTP server involved)

TEST(IngestService, AcceptedBatchLandsInStoreAndScreenerBank) {
    repsys::FeedbackStore store;
    auto assessor = make_assessor();
    IngestService service{store, assessor};

    HttpRequest request;
    request.method = "POST";
    request.path = "/ingest";
    request.body = "42 1 1\n42 2 1\n42 3 0\n";
    const HttpResponse response = service.handle_ingest(request);
    EXPECT_EQ(response.status, 200);
    EXPECT_EQ(response.body, "accepted=3\n");
    EXPECT_EQ(store.size(), 3u);
    EXPECT_EQ(store.history_length(42).value_or(0), 3u);
    EXPECT_EQ(assessor.tracked_streams(), 1u);  // observe() ran per record
    EXPECT_EQ(service.accepted_requests(), 1u);
    EXPECT_EQ(service.accepted_records(), 3u);
}

TEST(IngestService, MalformedLineRejects400AndMutatesNothing) {
    repsys::FeedbackStore store;
    auto assessor = make_assessor();
    IngestService service{store, assessor};

    HttpRequest request;
    request.method = "POST";
    request.body = "42 1 1\n42 2 bogus\n";
    const HttpResponse response = service.handle_ingest(request);
    EXPECT_EQ(response.status, 400);
    EXPECT_NE(response.body.find("line 2"), std::string::npos);
    EXPECT_EQ(store.size(), 0u);
    EXPECT_EQ(assessor.tracked_streams(), 0u);
    EXPECT_EQ(service.rejected_requests(), 1u);
}

TEST(IngestService, OutOfOrderTimestampRejectsTheWholeBatchWithItsLine) {
    repsys::FeedbackStore store;
    auto assessor = make_assessor();
    IngestService service{store, assessor};

    // Pre-existing history for server 9 up to t=100.
    store.submit(repsys::Feedback{100, 9, 1, repsys::Rating::kPositive});

    HttpRequest request;
    request.method = "POST";
    // Line 1 targets another server (valid), line 2 regresses server 9.
    request.body = "8 1 1\n9 50 1\n";
    const HttpResponse response = service.handle_ingest(request);
    EXPECT_EQ(response.status, 400);
    EXPECT_NE(response.body.find("line 2"), std::string::npos);
    // All-or-nothing: the valid line 1 must NOT have landed.
    EXPECT_FALSE(store.contains(8));
    EXPECT_EQ(store.size(), 1u);
}

TEST(IngestService, RecordCapDraws413) {
    repsys::FeedbackStore store;
    auto assessor = make_assessor();
    IngestService service{store, assessor, {.max_records_per_request = 2}};

    HttpRequest request;
    request.method = "POST";
    request.body = "1 1 1\n1 2 1\n1 3 1\n";
    const HttpResponse response = service.handle_ingest(request);
    EXPECT_EQ(response.status, 413);
    EXPECT_EQ(store.size(), 0u);
}

TEST(IngestService, AssessPageAnswersVerdictsAndErrors) {
    repsys::FeedbackStore store;
    auto assessor = make_assessor();
    IngestService service{store, assessor};

    // A consistent history long enough for a full assessment.
    std::string body;
    for (int t = 1; t <= 200; ++t) {
        body += "5 " + std::to_string(t) + " " + (t % 10 == 0 ? "0" : "1") +
                "\n";
    }
    HttpRequest request;
    request.method = "POST";
    request.body = body;
    ASSERT_EQ(service.handle_ingest(request).status, 200);

    obs::IntrospectionRequest ok{"/assess", "server=5"};
    const obs::IntrospectionPage page = service.assess_page(ok);
    EXPECT_EQ(page.status, 200);
    EXPECT_NE(page.body.find("server 5"), std::string::npos);
    EXPECT_NE(page.body.find("verdict "), std::string::npos);
    EXPECT_NE(page.body.find("history_length 200"), std::string::npos);

    obs::IntrospectionRequest missing{"/assess", ""};
    EXPECT_EQ(service.assess_page(missing).status, 400);
    obs::IntrospectionRequest garbage{"/assess", "server=banana"};
    EXPECT_EQ(service.assess_page(garbage).status, 400);
    obs::IntrospectionRequest unknown{"/assess", "server=777"};
    EXPECT_EQ(service.assess_page(unknown).status, 404);
}

TEST(IngestService, StatsPageReportsGateAndServiceCounters) {
    repsys::FeedbackStore store;
    auto assessor = make_assessor();
    IngestServiceConfig config;
    config.gate.pending_budget = 512;
    IngestService service{store, assessor, config};

    HttpRequest request;
    request.method = "POST";
    request.body = "3 1 1\n";
    ASSERT_EQ(service.handle_ingest(request).status, 200);

    obs::IntrospectionRequest stats_request{"/ingest/stats", ""};
    const obs::IntrospectionPage page = service.stats_page(stats_request);
    EXPECT_EQ(page.status, 200);
    EXPECT_NE(page.body.find("budget_records 512"), std::string::npos);
    EXPECT_NE(page.body.find("accepted_requests 1"), std::string::npos);
    EXPECT_NE(page.body.find("accepted_records 1"), std::string::npos);
    EXPECT_NE(page.body.find("pending_records 0"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Full HTTP round trips (server + gate + service)

struct WiredDaemon {
    repsys::FeedbackStore store;
    serve::BatchAssessor assessor = make_assessor();
    obs::IntrospectionTree tree;
    std::unique_ptr<IngestService> service;
    std::unique_ptr<HttpServer> server;

    explicit WiredDaemon(IngestServiceConfig config = {}) {
        service = std::make_unique<IngestService>(store, assessor, config);
        net::IntrospectionSources sources;
        sources.store = &store;
        sources.assessor = &assessor;
        register_introspection(tree, sources);
        register_ingest(tree, *service);
        HttpServerConfig http;
        http.ingest_gate = &service->gate();
        server = std::make_unique<HttpServer>(
            http, make_http_handler(tree, service.get()));
        server->start();
    }
    ~WiredDaemon() { server->stop(); }
    [[nodiscard]] std::uint16_t port() const { return server->port(); }
};

TEST(IngestHttp, PostIngestThenAssessRoundTrip) {
    WiredDaemon daemon;
    const auto posted = http_post("127.0.0.1", daemon.port(), "/ingest",
                                  "11 1 1\n11 2 1\n12 1 0\n");
    ASSERT_TRUE(posted.has_value());
    EXPECT_EQ(posted->status, 200);
    EXPECT_EQ(posted->body, "accepted=3\n");

    const auto assessed =
        http_get("127.0.0.1", daemon.port(), "/assess?server=11");
    ASSERT_TRUE(assessed.has_value());
    EXPECT_EQ(assessed->status, 200);
    EXPECT_NE(assessed->body.find("history_length 2"), std::string::npos);

    const auto stats = http_get("127.0.0.1", daemon.port(), "/ingest/stats");
    ASSERT_TRUE(stats.has_value());
    EXPECT_NE(stats->body.find("accepted_records 3"), std::string::npos);
    EXPECT_NE(stats->body.find("pending_records 0"), std::string::npos);
}

TEST(IngestHttp, BadBatchOverHttpDraws400WithLineNumber) {
    WiredDaemon daemon;
    const auto posted = http_post("127.0.0.1", daemon.port(), "/ingest",
                                  "11 1 1\nnot a record\n");
    ASSERT_TRUE(posted.has_value());
    EXPECT_EQ(posted->status, 400);
    EXPECT_NE(posted->body.find("line 2"), std::string::npos);
    EXPECT_EQ(daemon.store.size(), 0u);
}

TEST(IngestHttp, PostToUnknownPathDraws404) {
    WiredDaemon daemon;
    const auto posted =
        http_post("127.0.0.1", daemon.port(), "/metrics", "1 1 1\n");
    ASSERT_TRUE(posted.has_value());
    EXPECT_EQ(posted->status, 404);
}

TEST(IngestHttp, BurstPastTheGateBudgetDraws429WithRetryAfter) {
    IngestServiceConfig config;
    config.gate.pending_budget = 64;  // one small request's estimate fits
    config.gate.retry_after_seconds = 3;
    WiredDaemon daemon{config};

    // A body whose estimate (bytes/6+1) clearly exceeds 64 records.
    std::string big;
    for (int t = 1; t <= 200; ++t) {
        big += "21 " + std::to_string(t) + " 1\n";
    }
    const auto shed = http_post("127.0.0.1", daemon.port(), "/ingest", big);
    ASSERT_TRUE(shed.has_value());
    EXPECT_EQ(shed->status, 429);
    ASSERT_TRUE(shed->header("Retry-After").has_value());
    EXPECT_EQ(*shed->header("Retry-After"), "3");
    EXPECT_EQ(daemon.store.size(), 0u);
    EXPECT_EQ(daemon.service->gate().shed_total(), 1u);
    EXPECT_EQ(daemon.server->shed_requests(), 1u);

    // The gate sheds, it does not wedge: a small batch still lands.
    const auto small =
        http_post("127.0.0.1", daemon.port(), "/ingest", "21 1 1\n");
    ASSERT_TRUE(small.has_value());
    EXPECT_EQ(small->status, 200);
    EXPECT_EQ(daemon.service->gate().pending(), 0u);
}

TEST(IngestHttp, GateChargeIsReleasedWhenTheClientAbandonsMidBody) {
    IngestServiceConfig config;
    config.gate.pending_budget = 4096;
    WiredDaemon daemon{config};

    {
        // Declare a large body, send a fragment, vanish.
        const auto raw = http_exchange(
            "127.0.0.1", daemon.port(),
            "POST /ingest HTTP/1.1\r\nHost: h\r\nContent-Length: 6000\r\n\r\n"
            "13 1 1\n",
            5.0, /*shutdown_write=*/true);
        ASSERT_TRUE(raw.has_value());
        // Half-close with an incomplete body draws the best-effort 400.
        EXPECT_NE(raw->find("400"), std::string::npos);
    }
    // The admission charge must have been returned: pending is zero and
    // a full-budget request is admissible again.
    for (int i = 0; i < 100 && daemon.service->gate().pending() != 0; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds{10});
    }
    EXPECT_EQ(daemon.service->gate().pending(), 0u);
    EXPECT_EQ(daemon.service->gate().released_records(),
              daemon.service->gate().admitted_records());
}

}  // namespace
}  // namespace hpr::net
