// The epoll HTTP front-end (net/http_server.h): request/response round
// trips, every rejection path (400 malformed, 405 method, 431 oversized,
// 408 slow-loris, 503 admission control), the POST body state machine
// (411/501/400/413/408 and split-body reassembly), graceful drain, and
// the per-instance counters each path maintains.

#include "net/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "net/http_client.h"

namespace hpr::net {
namespace {

HttpHandler echo_handler() {
    return [](const HttpRequest& request) {
        HttpResponse response;
        response.body = request.method + " path=" + request.path +
                        " query=" + request.query + "\n";
        if (const auto agent = request.header("User-Agent")) {
            response.body += "agent=" + *agent + "\n";
        }
        return response;
    };
}

/// A raw TCP connection held open without sending anything — the
/// admission-control and slow-loris counterpart of a real client.
class HeldConnection {
public:
    explicit HeldConnection(std::uint16_t port) {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        sockaddr_in address{};
        address.sin_family = AF_INET;
        address.sin_port = htons(port);
        ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
        connected_ = ::connect(fd_, reinterpret_cast<const sockaddr*>(&address),
                               sizeof address) == 0;
    }
    ~HeldConnection() {
        if (fd_ >= 0) ::close(fd_);
    }
    [[nodiscard]] bool connected() const { return connected_; }
    void send_bytes(const std::string& bytes) const {
        (void)::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    }
    /// Read the server's response until it closes (bounded by a 5s
    /// receive timeout per read).
    [[nodiscard]] std::string read_to_eof() const {
        timeval tv{5, 0};
        ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
        std::string out;
        char buffer[4096];
        for (;;) {
            const ssize_t n = ::recv(fd_, buffer, sizeof buffer, 0);
            if (n <= 0) break;
            out.append(buffer, static_cast<std::size_t>(n));
        }
        return out;
    }

private:
    int fd_ = -1;
    bool connected_ = false;
};

TEST(HttpServer, RejectsNullHandler) {
    EXPECT_THROW(HttpServer({}, nullptr), std::invalid_argument);
}

TEST(HttpServer, ServesGetWithQueryAndHeaders) {
    HttpServer server{{}, echo_handler()};
    server.start();
    ASSERT_GT(server.port(), 0);

    const auto result = http_get("127.0.0.1", server.port(), "/a/b?x=1&y=2");
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->status, 200);
    EXPECT_EQ(result->body, "GET path=/a/b query=x=1&y=2\n");
    ASSERT_TRUE(result->header("Content-Type").has_value());
    EXPECT_EQ(*result->header("content-type"), "text/plain; charset=utf-8");
    ASSERT_TRUE(result->header("Content-Length").has_value());
    EXPECT_EQ(std::stoul(*result->header("Content-Length")),
              result->body.size());
    EXPECT_EQ(*result->header("Connection"), "close");

    server.stop();
    EXPECT_EQ(server.requests_served(), 1u);
    EXPECT_GT(server.bytes_sent(), result->body.size());
}

TEST(HttpServer, HeadSuppressesTheBodyButKeepsContentLength) {
    HttpServer server{{}, echo_handler()};
    server.start();
    const auto raw = http_exchange(
        "127.0.0.1", server.port(),
        "HEAD /x HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n");
    ASSERT_TRUE(raw.has_value());
    EXPECT_NE(raw->find("HTTP/1.1 200 OK\r\n"), std::string::npos);
    const std::string expected_body = "HEAD path=/x query=\n";
    EXPECT_NE(raw->find("Content-Length: " +
                        std::to_string(expected_body.size())),
              std::string::npos);
    // Headers only: the exchange ends exactly at the blank line.
    EXPECT_EQ(raw->substr(raw->size() - 4), "\r\n\r\n");
    EXPECT_EQ(raw->find(expected_body), std::string::npos);
}

TEST(HttpServer, HandlerExceptionsBecome500) {
    HttpServer server{{}, [](const HttpRequest&) -> HttpResponse {
                          throw std::runtime_error("scrape handler died");
                      }};
    server.start();
    const auto result = http_get("127.0.0.1", server.port(), "/");
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->status, 500);
    EXPECT_NE(result->body.find("scrape handler died"), std::string::npos);
}

TEST(HttpServer, MalformedRequestLinesDraw400) {
    HttpServer server{{}, echo_handler()};
    server.start();
    for (const char* junk :
         {"GARBAGE\r\n\r\n", "GET\r\n\r\n", "GET  HTTP/1.1\r\n\r\n",
          "GET /x SPDY/9\r\n\r\n", "GET relative HTTP/1.1\r\n\r\n",
          "GET /x HTTP/1.1 extra\r\n\r\n"}) {
        const auto raw = http_exchange("127.0.0.1", server.port(), junk);
        ASSERT_TRUE(raw.has_value()) << junk;
        EXPECT_NE(raw->find("HTTP/1.1 400 Bad Request"), std::string::npos)
            << junk;
    }
    server.stop();
    EXPECT_EQ(server.malformed_requests(), 6u);
    EXPECT_EQ(server.requests_served(), 6u);  // error pages are responses too
}

TEST(HttpServer, UnsupportedMethodsDraw405) {
    HttpServer server{{}, echo_handler()};
    server.start();
    for (const char* method : {"PUT", "DELETE", "PATCH"}) {
        const auto raw = http_exchange(
            "127.0.0.1", server.port(),
            std::string{method} +
                " /submit HTTP/1.1\r\nHost: h\r\nContent-Length: 0\r\n\r\n");
        ASSERT_TRUE(raw.has_value()) << method;
        EXPECT_NE(raw->find("HTTP/1.1 405 Method Not Allowed"),
                  std::string::npos)
            << method;
    }
    server.stop();
    EXPECT_EQ(server.malformed_requests(), 3u);
}

TEST(HttpServer, PostDeliversItsBodyToTheHandler) {
    HttpServer server{{}, [](const HttpRequest& request) {
                          HttpResponse response;
                          response.body = request.method + " got " +
                                          std::to_string(request.body.size()) +
                                          " bytes: " + request.body;
                          return response;
                      }};
    server.start();
    const auto result =
        http_post("127.0.0.1", server.port(), "/ingest", "1 2 3\n4 5 6\n");
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->status, 200);
    EXPECT_EQ(result->body, "POST got 12 bytes: 1 2 3\n4 5 6\n");
    server.stop();
    EXPECT_EQ(server.requests_served(), 1u);
}

TEST(HttpServer, PostBodySplitAcrossWritesIsReassembled) {
    HttpServer server{{}, [](const HttpRequest& request) {
                          HttpResponse response;
                          response.body = request.body;
                          return response;
                      }};
    server.start();
    HeldConnection client{server.port()};
    ASSERT_TRUE(client.connected());
    // Headers, then the body in three separate writes with pauses: the
    // server must wait for the full declared length before dispatching.
    client.send_bytes("POST /in HTTP/1.1\r\nHost: h\r\nContent-Length: 9\r\n\r\n");
    std::this_thread::sleep_for(std::chrono::milliseconds{30});
    client.send_bytes("abc");
    std::this_thread::sleep_for(std::chrono::milliseconds{30});
    client.send_bytes("def");
    std::this_thread::sleep_for(std::chrono::milliseconds{30});
    client.send_bytes("ghi");
    const std::string raw = client.read_to_eof();
    EXPECT_NE(raw.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(raw.find("abcdefghi"), std::string::npos);
    server.stop();
    EXPECT_EQ(server.requests_served(), 1u);
}

TEST(HttpServer, PostWithoutContentLengthDraws411) {
    HttpServer server{{}, echo_handler()};
    server.start();
    const auto raw =
        http_exchange("127.0.0.1", server.port(),
                      "POST /ingest HTTP/1.1\r\nHost: h\r\n\r\n", 5.0, true);
    ASSERT_TRUE(raw.has_value());
    EXPECT_NE(raw->find("HTTP/1.1 411 Length Required"), std::string::npos);
    server.stop();
    EXPECT_EQ(server.malformed_requests(), 1u);
}

TEST(HttpServer, TransferEncodingDraws501) {
    HttpServer server{{}, echo_handler()};
    server.start();
    const auto raw = http_exchange(
        "127.0.0.1", server.port(),
        "POST /ingest HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: chunked\r\n\r\n",
        5.0, true);
    ASSERT_TRUE(raw.has_value());
    EXPECT_NE(raw->find("HTTP/1.1 501 Not Implemented"), std::string::npos);
    server.stop();
}

TEST(HttpServer, GarbageContentLengthDraws400) {
    HttpServer server{{}, echo_handler()};
    server.start();
    for (const char* bad : {"abc", "-5", "1e3", "18446744073709551616", ""}) {
        const auto raw = http_exchange(
            "127.0.0.1", server.port(),
            "POST /ingest HTTP/1.1\r\nHost: h\r\nContent-Length: " +
                std::string{bad} + "\r\n\r\n",
            5.0, true);
        ASSERT_TRUE(raw.has_value()) << bad;
        EXPECT_NE(raw->find("HTTP/1.1 400 Bad Request"), std::string::npos)
            << bad;
    }
    server.stop();
}

TEST(HttpServer, OversizedDeclaredBodyDraws413BeforeTheBodyArrives) {
    HttpServerConfig config;
    config.max_body_bytes = 1024;
    HttpServer server{config, echo_handler()};
    server.start();
    // Only the headers are sent: the refusal must come from the declared
    // length alone, before any body byte exists.
    const auto raw = http_exchange(
        "127.0.0.1", server.port(),
        "POST /ingest HTTP/1.1\r\nHost: h\r\nContent-Length: 2048\r\n\r\n", 5.0,
        true);
    ASSERT_TRUE(raw.has_value());
    EXPECT_NE(raw->find("HTTP/1.1 413 Payload Too Large"), std::string::npos);
    server.stop();
    EXPECT_EQ(server.oversized_requests(), 1u);
    EXPECT_EQ(server.requests_served(), 0u);  // never dispatched
}

TEST(HttpServer, GetAdvertisingABodyDraws400) {
    HttpServer server{{}, echo_handler()};
    server.start();
    const auto raw = http_exchange(
        "127.0.0.1", server.port(),
        "GET /x HTTP/1.1\r\nHost: h\r\nContent-Length: 5\r\n\r\nhello", 5.0,
        true);
    ASSERT_TRUE(raw.has_value());
    EXPECT_NE(raw->find("HTTP/1.1 400 Bad Request"), std::string::npos);
    server.stop();
}

TEST(HttpServer, StalledBodyDraws408) {
    HttpServerConfig config;
    config.request_timeout_seconds = 0.2;
    HttpServer server{config, echo_handler()};
    server.start();
    // Complete headers, half the declared body, then silence.
    const auto raw = http_exchange(
        "127.0.0.1", server.port(),
        "POST /ingest HTTP/1.1\r\nHost: h\r\nContent-Length: 10\r\n\r\nhal",
        5.0);
    ASSERT_TRUE(raw.has_value());
    if (!raw->empty()) {
        EXPECT_NE(raw->find("HTTP/1.1 408 Request Timeout"), std::string::npos);
    }
    server.stop();
    EXPECT_EQ(server.timed_out_connections(), 1u);
    EXPECT_EQ(server.requests_served(), 0u);
}

TEST(HttpServer, EofBeforeACompleteRequestDrawsBestEffort400) {
    HttpServer server{{}, echo_handler()};
    server.start();
    // Truncated mid-body, then half-close: the server answers instead of
    // silently dropping the connection.
    const auto raw = http_exchange(
        "127.0.0.1", server.port(),
        "POST /ingest HTTP/1.1\r\nHost: h\r\nContent-Length: 10\r\n\r\nhal",
        5.0, true);
    ASSERT_TRUE(raw.has_value());
    EXPECT_NE(raw->find("HTTP/1.1 400 Bad Request"), std::string::npos);
    EXPECT_NE(raw->find("incomplete request"), std::string::npos);
    server.stop();
}

TEST(HttpServer, ExtraHeadersAreEmitted) {
    HttpServer server{{}, [](const HttpRequest&) {
                          HttpResponse response;
                          response.extra_headers.emplace_back("Retry-After",
                                                              "7");
                          response.extra_headers.emplace_back("X-Custom",
                                                              "yes");
                          return response;
                      }};
    server.start();
    const auto result = http_get("127.0.0.1", server.port(), "/");
    ASSERT_TRUE(result.has_value());
    ASSERT_TRUE(result->header("Retry-After").has_value());
    EXPECT_EQ(*result->header("Retry-After"), "7");
    EXPECT_EQ(*result->header("X-Custom"), "yes");
    server.stop();
}

TEST(HttpServer, OversizedHeadersDraw431) {
    HttpServerConfig config;
    config.max_request_bytes = 256;
    HttpServer server{config, echo_handler()};
    server.start();
    std::string request = "GET / HTTP/1.1\r\nX-Pad: ";
    request.append(1024, 'a');
    request += "\r\n\r\n";
    const auto raw = http_exchange("127.0.0.1", server.port(), request);
    ASSERT_TRUE(raw.has_value());
    EXPECT_NE(raw->find("HTTP/1.1 431 "), std::string::npos);
    server.stop();
    EXPECT_EQ(server.malformed_requests(), 1u);
}

TEST(HttpServer, SlowLorisDrawsBestEffort408AndCloses) {
    HttpServerConfig config;
    config.request_timeout_seconds = 0.2;
    HttpServer server{config, echo_handler()};
    server.start();

    // Half a request line, then silence: the deadline must fire.
    const auto raw = http_exchange("127.0.0.1", server.port(),
                                   "GET /slow HTTP/1.1\r\nX-Par", 5.0);
    ASSERT_TRUE(raw.has_value());  // server closed (possibly after a 408)
    if (!raw->empty()) {
        EXPECT_NE(raw->find("HTTP/1.1 408 Request Timeout"), std::string::npos);
    }
    server.stop();
    EXPECT_EQ(server.timed_out_connections(), 1u);
    EXPECT_EQ(server.requests_served(), 0u);
}

TEST(HttpServer, AdmissionControlAnswers503BeyondTheBound) {
    HttpServerConfig config;
    config.max_connections = 1;
    HttpServer server{{config}, echo_handler()};
    server.start();

    HeldConnection hog{server.port()};
    ASSERT_TRUE(hog.connected());
    // Give the event loop a moment to accept the hog.
    for (int i = 0; i < 100 && server.rejected_connections() == 0; ++i) {
        const auto result = http_get("127.0.0.1", server.port(), "/", 1.0);
        if (result && result->status == 503) break;
        std::this_thread::sleep_for(std::chrono::milliseconds{5});
    }
    const auto rejected = http_get("127.0.0.1", server.port(), "/", 1.0);
    ASSERT_TRUE(rejected.has_value());
    EXPECT_EQ(rejected->status, 503);
    EXPECT_GE(server.rejected_connections(), 1u);
}

TEST(HttpServer, ConnectionSlotIsReleasedAfterTheHogCloses) {
    HttpServerConfig config;
    config.max_connections = 1;
    config.request_timeout_seconds = 0.3;
    HttpServer server{config, echo_handler()};
    server.start();
    {
        HeldConnection hog{server.port()};
        ASSERT_TRUE(hog.connected());
        std::this_thread::sleep_for(std::chrono::milliseconds{50});
    }
    // The hog is gone (or will be reaped by its deadline); the slot must
    // come back.
    for (int i = 0; i < 100; ++i) {
        const auto result = http_get("127.0.0.1", server.port(), "/ok", 1.0);
        if (result && result->status == 200) {
            SUCCEED();
            return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds{10});
    }
    FAIL() << "slot was never released";
}

TEST(HttpServer, StopDrainsAndStopsAccepting) {
    HttpServer server{{}, echo_handler()};
    server.start();
    const std::uint16_t port = server.port();
    ASSERT_TRUE(http_get("127.0.0.1", port, "/pre").has_value());

    server.stop();
    EXPECT_FALSE(server.running());
    EXPECT_FALSE(http_get("127.0.0.1", port, "/post", 0.5).has_value());

    // stop() is idempotent; a stopped server can be started again.
    server.stop();
    server.start();
    const auto again = http_get("127.0.0.1", server.port(), "/again");
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->status, 200);
    server.stop();
}

}  // namespace
}  // namespace hpr::net
