// End-to-end equivalence of the two ingest paths: the same feedback
// stream pushed (a) over HTTP through POST /ingest and (b) directly via
// FeedbackStore::ingest_batch + BatchAssessor::observe must leave
// bit-identical stores, bit-identical screener-bank state, and render
// character-identical /assess verdicts.  The wire protocol is transport,
// not semantics — any divergence here means the network path changed
// what the paper's assessor computes.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "net/endpoints.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "net/ingest.h"
#include "obs/introspection.h"
#include "repsys/store.h"
#include "repsys/trust.h"
#include "serve/batch_assessor.h"

namespace hpr::net {
namespace {

serve::BatchAssessor make_assessor() {
    serve::BatchAssessorConfig config;
    config.threads = 2;
    return serve::BatchAssessor{
        config,
        std::shared_ptr<const repsys::TrustFunction>{
            repsys::make_trust_function("beta")}};
}

/// A deterministic community: honest servers, one behavior-flipper (the
/// planted dishonest player), one newcomer with too little history.
std::vector<repsys::Feedback> community_stream() {
    std::vector<repsys::Feedback> stream;
    std::mt19937_64 rng{2008};
    std::bernoulli_distribution honest{0.9};
    repsys::Timestamp now = 0;
    // 400 rounds of interleaved transactions.
    for (int round = 0; round < 400; ++round) {
        for (repsys::EntityId server : {1u, 2u, 3u}) {
            ++now;
            bool good;
            if (server == 3) {
                // The flipper: honest for 250 rounds, then sour.
                good = round < 250 ? honest(rng) : !honest(rng);
            } else {
                good = honest(rng);
            }
            stream.push_back(repsys::Feedback{
                now, server, 0,
                good ? repsys::Rating::kPositive : repsys::Rating::kNegative});
        }
        if (round < 5) {
            ++now;
            stream.push_back(
                repsys::Feedback{now, 9, 0, repsys::Rating::kPositive});
        }
    }
    return stream;
}

std::string to_wire(const std::vector<repsys::Feedback>& batch) {
    std::string body;
    for (const repsys::Feedback& f : batch) {
        int outcome = 1;
        if (f.rating == repsys::Rating::kNegative) outcome = 0;
        if (f.rating == repsys::Rating::kNeutral) outcome = 2;
        body += std::to_string(f.server) + ' ' + std::to_string(f.time) +
                ' ' + std::to_string(outcome) + '\n';
    }
    return body;
}

TEST(IngestEquivalence, HttpAndDirectIngestConverge) {
    // Path A: full network stack.
    repsys::FeedbackStore http_store;
    auto http_assessor = make_assessor();
    IngestService http_service{http_store, http_assessor};
    obs::IntrospectionTree tree;
    register_ingest(tree, http_service);
    HttpServerConfig http_config;
    http_config.ingest_gate = &http_service.gate();
    HttpServer server{http_config, make_http_handler(tree, &http_service)};
    server.start();

    // Path B: direct library calls, no sockets anywhere.
    repsys::FeedbackStore direct_store;
    auto direct_assessor = make_assessor();
    IngestService direct_service{direct_store, direct_assessor};

    const std::vector<repsys::Feedback> stream = community_stream();
    // Same batch boundaries on both paths (an awkward prime size so
    // batches straddle rounds and servers).
    constexpr std::size_t kBatch = 37;
    for (std::size_t start = 0; start < stream.size(); start += kBatch) {
        const std::vector<repsys::Feedback> batch(
            stream.begin() + static_cast<std::ptrdiff_t>(start),
            stream.begin() + static_cast<std::ptrdiff_t>(
                                 std::min(start + kBatch, stream.size())));
        const auto posted = http_post("127.0.0.1", server.port(), "/ingest",
                                      to_wire(batch));
        ASSERT_TRUE(posted.has_value()) << "batch at " << start;
        ASSERT_EQ(posted->status, 200) << posted->body;

        direct_store.ingest_batch(batch);
        for (const repsys::Feedback& f : batch) direct_assessor.observe(f);
    }

    // Stores: same population, bit-identical per-server logs.
    ASSERT_EQ(http_store.servers(), direct_store.servers());
    ASSERT_EQ(http_store.size(), direct_store.size());
    for (const repsys::EntityId id : direct_store.servers()) {
        EXPECT_EQ(http_store.history_snapshot(id).feedbacks(),
                  direct_store.history_snapshot(id).feedbacks())
            << "server " << id;
    }

    // Screener banks: identical standing state, stream by stream.
    ASSERT_EQ(http_assessor.tracked_streams(),
              direct_assessor.tracked_streams());
    for (const repsys::EntityId id : direct_store.servers()) {
        const auto http_info = http_assessor.stream_info(id);
        const auto direct_info = direct_assessor.stream_info(id);
        ASSERT_EQ(http_info.has_value(), direct_info.has_value())
            << "server " << id;
        if (!http_info) continue;
        EXPECT_EQ(http_info->state, direct_info->state) << "server " << id;
        EXPECT_EQ(http_info->transactions, direct_info->transactions);
        EXPECT_EQ(http_info->windows, direct_info->windows);
        EXPECT_EQ(http_info->retained_windows, direct_info->retained_windows);
        EXPECT_EQ(http_info->evaluations, direct_info->evaluations);
        EXPECT_EQ(http_info->failing_streak, direct_info->failing_streak);
        EXPECT_EQ(http_info->passing_streak, direct_info->passing_streak);
        EXPECT_EQ(http_info->p_hat, direct_info->p_hat) << "server " << id;
    }

    // Rendered verdicts: the page served over HTTP equals the page the
    // direct service renders, character for character.
    bool saw_suspicious = false;
    for (const repsys::EntityId id : direct_store.servers()) {
        const std::string query = "server=" + std::to_string(id);
        const auto fetched = http_get("127.0.0.1", server.port(),
                                      "/assess?" + query);
        ASSERT_TRUE(fetched.has_value()) << "server " << id;
        const obs::IntrospectionPage local = direct_service.assess_page(
            obs::IntrospectionRequest{"/assess", query});
        EXPECT_EQ(fetched->status, local.status) << "server " << id;
        EXPECT_EQ(fetched->body, local.body) << "server " << id;
        if (local.body.find("verdict suspicious") != std::string::npos) {
            saw_suspicious = true;
        }
    }
    // The planted flipper must be caught — on both paths, since the
    // bodies above already compared equal.
    EXPECT_TRUE(saw_suspicious);

    server.stop();
}

TEST(IngestEquivalence, RejectedBatchesPerturbNeitherPath) {
    repsys::FeedbackStore http_store;
    auto http_assessor = make_assessor();
    IngestService http_service{http_store, http_assessor};
    obs::IntrospectionTree tree;
    register_ingest(tree, http_service);
    HttpServerConfig http_config;
    http_config.ingest_gate = &http_service.gate();
    HttpServer server{http_config, make_http_handler(tree, &http_service)};
    server.start();

    repsys::FeedbackStore direct_store;
    auto direct_assessor = make_assessor();

    // Seed both with the same valid history...
    const std::string good = "4 1 1\n4 2 0\n4 3 1\n";
    ASSERT_EQ(http_post("127.0.0.1", server.port(), "/ingest", good)->status,
              200);
    std::vector<repsys::Feedback> parsed;
    std::string error;
    ASSERT_TRUE(parse_ingest_body(good, parsed, error));
    direct_store.ingest_batch(parsed);
    for (const repsys::Feedback& f : parsed) direct_assessor.observe(f);

    // ...then throw the same inadmissible batch at both.
    const std::string stale = "4 10 1\n4 2 1\n";
    const auto posted =
        http_post("127.0.0.1", server.port(), "/ingest", stale);
    ASSERT_TRUE(posted.has_value());
    EXPECT_EQ(posted->status, 400);
    std::vector<repsys::Feedback> stale_parsed;
    ASSERT_TRUE(parse_ingest_body(stale, stale_parsed, error));
    EXPECT_THROW(direct_store.ingest_batch(stale_parsed),
                 repsys::BatchRejected);

    // Both paths still agree, bit for bit.
    EXPECT_EQ(http_store.history_snapshot(4).feedbacks(),
              direct_store.history_snapshot(4).feedbacks());
    EXPECT_EQ(http_store.size(), direct_store.size());

    server.stop();
}

}  // namespace
}  // namespace hpr::net
