// Error paths of the scraping client (net/http_client.h): connection
// refused, bodies truncated mid-transfer, responses larger than the
// caller's bound, and header-only replies.  The well-behaved round
// trips are covered by http_server_test.cpp; here the far side is a
// canned-bytes socket that can misbehave on purpose.

#include "net/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <string>
#include <thread>

namespace hpr::net {
namespace {

/// Listens on an ephemeral port, accepts exactly one connection, writes
/// `reply` verbatim and closes — a server that answers whatever the
/// test wants, including lies about Content-Length.
class CannedServer {
public:
    explicit CannedServer(std::string reply) : reply_(std::move(reply)) {
        listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        sockaddr_in address{};
        address.sin_family = AF_INET;
        address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        address.sin_port = 0;
        EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
                         sizeof address),
                  0);
        EXPECT_EQ(::listen(listen_fd_, 1), 0);
        socklen_t length = sizeof address;
        EXPECT_EQ(::getsockname(listen_fd_,
                                reinterpret_cast<sockaddr*>(&address), &length),
                  0);
        port_ = ntohs(address.sin_port);
        acceptor_ = std::thread([this] {
            const int client = ::accept(listen_fd_, nullptr, nullptr);
            if (client < 0) return;
            // Drain the request first so the client's send cannot fail.
            char sink[4096];
            ssize_t n;
            do {
                n = ::recv(client, sink, sizeof sink, 0);
            } while (n > 0 && std::string_view(sink, static_cast<std::size_t>(n))
                                      .find("\r\n\r\n") == std::string_view::npos);
            std::size_t written = 0;
            while (written < reply_.size()) {
                const ssize_t sent = ::send(client, reply_.data() + written,
                                            reply_.size() - written, MSG_NOSIGNAL);
                if (sent <= 0) break;
                written += static_cast<std::size_t>(sent);
            }
            ::close(client);
        });
    }

    ~CannedServer() {
        if (acceptor_.joinable()) acceptor_.join();
        if (listen_fd_ >= 0) ::close(listen_fd_);
    }

    [[nodiscard]] std::uint16_t port() const { return port_; }

private:
    std::string reply_;
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::thread acceptor_;
};

/// An ephemeral port with nothing listening behind it: bind, read the
/// port number, close — the canonical connection-refused target.
std::uint16_t dead_port() {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&address),
                     sizeof address),
              0);
    socklen_t length = sizeof address;
    EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&address), &length),
              0);
    const std::uint16_t port = ntohs(address.sin_port);
    ::close(fd);
    return port;
}

TEST(HttpClient, ConnectionRefusedIsNullopt) {
    const auto result = http_get("127.0.0.1", dead_port(), "/metrics", 1.0);
    EXPECT_FALSE(result.has_value());
}

TEST(HttpClient, ExchangeConnectionRefusedIsNullopt) {
    EXPECT_FALSE(http_exchange("127.0.0.1", dead_port(), "GET / HTTP/1.1\r\n\r\n",
                               1.0)
                     .has_value());
}

TEST(HttpClient, UnparseableAddressIsNullopt) {
    EXPECT_FALSE(http_get("not-an-ipv4-literal", 80, "/", 1.0).has_value());
}

TEST(HttpClient, CompleteBodyMatchingContentLengthSucceeds) {
    CannedServer server{
        "HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello"};
    const auto result = http_get("127.0.0.1", server.port(), "/", 2.0);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->status, 200);
    EXPECT_EQ(result->body, "hello");
}

TEST(HttpClient, BodyShorterThanContentLengthIsNullopt) {
    // The server dies after 5 of the promised 100 bytes; treating the
    // stub as a complete fetch would hand back truncated evidence.
    CannedServer server{
        "HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\nhello"};
    EXPECT_FALSE(http_get("127.0.0.1", server.port(), "/", 2.0).has_value());
}

TEST(HttpClient, GarbageContentLengthIsNullopt) {
    CannedServer server{
        "HTTP/1.1 200 OK\r\nContent-Length: banana\r\n\r\nhello"};
    EXPECT_FALSE(http_get("127.0.0.1", server.port(), "/", 2.0).has_value());
}

TEST(HttpClient, BodyLargerThanLimitIsNullopt) {
    const std::string body(4096, 'x');
    CannedServer server{"HTTP/1.1 200 OK\r\nContent-Length: " +
                        std::to_string(body.size()) + "\r\n\r\n" + body};
    EXPECT_FALSE(
        http_get("127.0.0.1", server.port(), "/", 2.0, /*max_body_bytes=*/1024)
            .has_value());
}

TEST(HttpClient, BodyAtLimitSucceeds) {
    const std::string body(1024, 'x');
    CannedServer server{"HTTP/1.1 200 OK\r\nContent-Length: " +
                        std::to_string(body.size()) + "\r\n\r\n" + body};
    const auto result =
        http_get("127.0.0.1", server.port(), "/", 2.0, /*max_body_bytes=*/1024);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->body.size(), 1024u);
}

TEST(HttpClient, ExchangeOversizedResponseIsNullopt) {
    CannedServer server{std::string(8192, 'y')};
    EXPECT_FALSE(http_exchange("127.0.0.1", server.port(),
                               "GET / HTTP/1.1\r\n\r\n", 2.0, false,
                               /*max_response_bytes=*/1024)
                     .has_value());
}

TEST(HttpClient, HeaderOnlyReplyWithoutContentLengthIsEmptySuccess) {
    CannedServer server{"HTTP/1.1 204 No Content\r\nX-Probe: 1\r\n\r\n"};
    const auto result = http_get("127.0.0.1", server.port(), "/", 2.0);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->status, 204);
    EXPECT_TRUE(result->body.empty());
    ASSERT_TRUE(result->header("X-Probe").has_value());
    EXPECT_EQ(*result->header("x-probe"), "1");
}

TEST(HttpClient, HeaderOnlyReplyWithZeroContentLengthIsEmptySuccess) {
    CannedServer server{"HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n"};
    const auto result = http_get("127.0.0.1", server.port(), "/", 2.0);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->status, 200);
    EXPECT_TRUE(result->body.empty());
}

TEST(HttpClient, ReplyWithoutHeaderTerminatorIsNullopt) {
    CannedServer server{"HTTP/1.1 200 OK\r\nContent-Length: 5"};
    EXPECT_FALSE(http_get("127.0.0.1", server.port(), "/", 2.0).has_value());
}

/// Accepts a connection and then does whatever `behave` says — the
/// hanging/trickling counterpart of CannedServer.
class MisbehavingServer {
public:
    explicit MisbehavingServer(std::function<void(int client)> behave) {
        listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        sockaddr_in address{};
        address.sin_family = AF_INET;
        address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        address.sin_port = 0;
        EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
                         sizeof address),
                  0);
        EXPECT_EQ(::listen(listen_fd_, 1), 0);
        socklen_t length = sizeof address;
        EXPECT_EQ(::getsockname(listen_fd_,
                                reinterpret_cast<sockaddr*>(&address), &length),
                  0);
        port_ = ntohs(address.sin_port);
        acceptor_ = std::thread([this, behave = std::move(behave)] {
            const int client = ::accept(listen_fd_, nullptr, nullptr);
            if (client < 0) return;
            behave(client);
            ::close(client);
        });
    }

    ~MisbehavingServer() {
        stop_.store(true, std::memory_order_release);
        // Unblock accept() if no client ever arrived.
        ::shutdown(listen_fd_, SHUT_RDWR);
        if (acceptor_.joinable()) acceptor_.join();
        if (listen_fd_ >= 0) ::close(listen_fd_);
    }

    [[nodiscard]] std::uint16_t port() const { return port_; }
    [[nodiscard]] bool stopping() const {
        return stop_.load(std::memory_order_acquire);
    }

private:
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> stop_{false};
    std::thread acceptor_;
};

TEST(HttpClient, HangingServerFailsWithinTheDeadline) {
    // Accepts, reads the request, then never sends a byte: the fetch
    // must fail within its timeout instead of blocking forever — the
    // `trace_query --url` hang this deadline exists to prevent.
    MisbehavingServer server{[](int client) {
        char sink[4096];
        while (::recv(client, sink, sizeof sink, 0) > 0) {}
    }};
    const auto start = std::chrono::steady_clock::now();
    const auto result = http_get("127.0.0.1", server.port(), "/", 0.5);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_FALSE(result.has_value());
    EXPECT_LT(elapsed, 5.0);
}

TEST(HttpClient, TricklingServerCannotExtendTheDeadline) {
    // Sends one byte per 100ms forever.  Each recv succeeds inside its
    // socket timeout, so only an overall wall-clock deadline can stop
    // this fetch.
    MisbehavingServer* handle = nullptr;
    MisbehavingServer server{[&handle](int client) {
        for (int i = 0; i < 600; ++i) {
            if (handle != nullptr && handle->stopping()) break;
            if (::send(client, "x", 1, MSG_NOSIGNAL) <= 0) break;
            std::this_thread::sleep_for(std::chrono::milliseconds{100});
        }
    }};
    handle = &server;
    const auto start = std::chrono::steady_clock::now();
    const auto result = http_get("127.0.0.1", server.port(), "/", 1.0);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_FALSE(result.has_value());
    EXPECT_LT(elapsed, 10.0);
}

TEST(HttpClient, PostRoundTripCarriesTheBody) {
    // CannedServer drains until the header terminator, which for a small
    // POST swallows the body in the same read — it then answers.
    CannedServer server{"HTTP/1.1 200 OK\r\nContent-Length: 12\r\n\r\naccepted=42\n"};
    const auto result =
        http_post("127.0.0.1", server.port(), "/ingest", "1 2 3\n", 2.0);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->status, 200);
    EXPECT_EQ(result->body, "accepted=42\n");
}

TEST(HttpClient, PostConnectionRefusedIsNullopt) {
    EXPECT_FALSE(
        http_post("127.0.0.1", dead_port(), "/ingest", "1 2 3\n", 1.0)
            .has_value());
}

}  // namespace
}  // namespace hpr::net
