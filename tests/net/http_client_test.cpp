// Error paths of the scraping client (net/http_client.h): connection
// refused, bodies truncated mid-transfer, responses larger than the
// caller's bound, and header-only replies.  The well-behaved round
// trips are covered by http_server_test.cpp; here the far side is a
// canned-bytes socket that can misbehave on purpose.

#include "net/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <string>
#include <thread>

namespace hpr::net {
namespace {

/// Listens on an ephemeral port, accepts exactly one connection, writes
/// `reply` verbatim and closes — a server that answers whatever the
/// test wants, including lies about Content-Length.
class CannedServer {
public:
    explicit CannedServer(std::string reply) : reply_(std::move(reply)) {
        listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        sockaddr_in address{};
        address.sin_family = AF_INET;
        address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        address.sin_port = 0;
        EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
                         sizeof address),
                  0);
        EXPECT_EQ(::listen(listen_fd_, 1), 0);
        socklen_t length = sizeof address;
        EXPECT_EQ(::getsockname(listen_fd_,
                                reinterpret_cast<sockaddr*>(&address), &length),
                  0);
        port_ = ntohs(address.sin_port);
        acceptor_ = std::thread([this] {
            const int client = ::accept(listen_fd_, nullptr, nullptr);
            if (client < 0) return;
            // Drain the request first so the client's send cannot fail.
            char sink[4096];
            ssize_t n;
            do {
                n = ::recv(client, sink, sizeof sink, 0);
            } while (n > 0 && std::string_view(sink, static_cast<std::size_t>(n))
                                      .find("\r\n\r\n") == std::string_view::npos);
            std::size_t written = 0;
            while (written < reply_.size()) {
                const ssize_t sent = ::send(client, reply_.data() + written,
                                            reply_.size() - written, MSG_NOSIGNAL);
                if (sent <= 0) break;
                written += static_cast<std::size_t>(sent);
            }
            ::close(client);
        });
    }

    ~CannedServer() {
        if (acceptor_.joinable()) acceptor_.join();
        if (listen_fd_ >= 0) ::close(listen_fd_);
    }

    [[nodiscard]] std::uint16_t port() const { return port_; }

private:
    std::string reply_;
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::thread acceptor_;
};

/// An ephemeral port with nothing listening behind it: bind, read the
/// port number, close — the canonical connection-refused target.
std::uint16_t dead_port() {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&address),
                     sizeof address),
              0);
    socklen_t length = sizeof address;
    EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&address), &length),
              0);
    const std::uint16_t port = ntohs(address.sin_port);
    ::close(fd);
    return port;
}

TEST(HttpClient, ConnectionRefusedIsNullopt) {
    const auto result = http_get("127.0.0.1", dead_port(), "/metrics", 1.0);
    EXPECT_FALSE(result.has_value());
}

TEST(HttpClient, ExchangeConnectionRefusedIsNullopt) {
    EXPECT_FALSE(http_exchange("127.0.0.1", dead_port(), "GET / HTTP/1.1\r\n\r\n",
                               1.0)
                     .has_value());
}

TEST(HttpClient, UnparseableAddressIsNullopt) {
    EXPECT_FALSE(http_get("not-an-ipv4-literal", 80, "/", 1.0).has_value());
}

TEST(HttpClient, CompleteBodyMatchingContentLengthSucceeds) {
    CannedServer server{
        "HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello"};
    const auto result = http_get("127.0.0.1", server.port(), "/", 2.0);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->status, 200);
    EXPECT_EQ(result->body, "hello");
}

TEST(HttpClient, BodyShorterThanContentLengthIsNullopt) {
    // The server dies after 5 of the promised 100 bytes; treating the
    // stub as a complete fetch would hand back truncated evidence.
    CannedServer server{
        "HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\nhello"};
    EXPECT_FALSE(http_get("127.0.0.1", server.port(), "/", 2.0).has_value());
}

TEST(HttpClient, GarbageContentLengthIsNullopt) {
    CannedServer server{
        "HTTP/1.1 200 OK\r\nContent-Length: banana\r\n\r\nhello"};
    EXPECT_FALSE(http_get("127.0.0.1", server.port(), "/", 2.0).has_value());
}

TEST(HttpClient, BodyLargerThanLimitIsNullopt) {
    const std::string body(4096, 'x');
    CannedServer server{"HTTP/1.1 200 OK\r\nContent-Length: " +
                        std::to_string(body.size()) + "\r\n\r\n" + body};
    EXPECT_FALSE(
        http_get("127.0.0.1", server.port(), "/", 2.0, /*max_body_bytes=*/1024)
            .has_value());
}

TEST(HttpClient, BodyAtLimitSucceeds) {
    const std::string body(1024, 'x');
    CannedServer server{"HTTP/1.1 200 OK\r\nContent-Length: " +
                        std::to_string(body.size()) + "\r\n\r\n" + body};
    const auto result =
        http_get("127.0.0.1", server.port(), "/", 2.0, /*max_body_bytes=*/1024);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->body.size(), 1024u);
}

TEST(HttpClient, ExchangeOversizedResponseIsNullopt) {
    CannedServer server{std::string(8192, 'y')};
    EXPECT_FALSE(http_exchange("127.0.0.1", server.port(),
                               "GET / HTTP/1.1\r\n\r\n", 2.0, false,
                               /*max_response_bytes=*/1024)
                     .has_value());
}

TEST(HttpClient, HeaderOnlyReplyWithoutContentLengthIsEmptySuccess) {
    CannedServer server{"HTTP/1.1 204 No Content\r\nX-Probe: 1\r\n\r\n"};
    const auto result = http_get("127.0.0.1", server.port(), "/", 2.0);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->status, 204);
    EXPECT_TRUE(result->body.empty());
    ASSERT_TRUE(result->header("X-Probe").has_value());
    EXPECT_EQ(*result->header("x-probe"), "1");
}

TEST(HttpClient, HeaderOnlyReplyWithZeroContentLengthIsEmptySuccess) {
    CannedServer server{"HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n"};
    const auto result = http_get("127.0.0.1", server.port(), "/", 2.0);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->status, 200);
    EXPECT_TRUE(result->body.empty());
}

TEST(HttpClient, ReplyWithoutHeaderTerminatorIsNullopt) {
    CannedServer server{"HTTP/1.1 200 OK\r\nContent-Length: 5"};
    EXPECT_FALSE(http_get("127.0.0.1", server.port(), "/", 2.0).has_value());
}

}  // namespace
}  // namespace hpr::net
