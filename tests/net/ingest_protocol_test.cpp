// Protocol property suite for the ingest write path: start from valid
// request bodies and mutate them — truncation, CRLF smeared across TCP
// reads, huge lines, non-numeric fields, duplicate and out-of-order
// timestamps, random byte damage — then assert the two invariants that
// make the endpoint safe to expose:
//
//  1. every reply is a well-formed HTTP/1.1 response with a known
//     status, whatever bytes arrived;
//  2. the store mutates exactly on 200 (by the accepted count) and is
//     byte-identical to its pre-request state on any error.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/endpoints.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "net/ingest.h"
#include "repsys/store.h"
#include "repsys/trust.h"
#include "serve/batch_assessor.h"

namespace hpr::net {
namespace {

/// Full store contents, server by server — the "byte-identical" oracle.
using StoreImage =
    std::vector<std::pair<repsys::EntityId, std::vector<repsys::Feedback>>>;

StoreImage image_of(const repsys::FeedbackStore& store) {
    StoreImage image;
    for (const repsys::EntityId server : store.servers()) {
        image.emplace_back(server,
                           store.history_snapshot(server).feedbacks());
    }
    return image;
}

struct ProtocolDaemon {
    repsys::FeedbackStore store;
    serve::BatchAssessor assessor{
        [] {
            serve::BatchAssessorConfig config;
            config.threads = 2;
            return config;
        }(),
        std::shared_ptr<const repsys::TrustFunction>{
            repsys::make_trust_function("beta")}};
    obs::IntrospectionTree tree;
    std::unique_ptr<IngestService> service;
    std::unique_ptr<HttpServer> server;

    ProtocolDaemon() {
        service = std::make_unique<IngestService>(store, assessor);
        register_ingest(tree, *service);
        HttpServerConfig http;
        http.ingest_gate = &service->gate();
        server = std::make_unique<HttpServer>(
            http, make_http_handler(tree, service.get()));
        server->start();
    }
    ~ProtocolDaemon() { server->stop(); }
    [[nodiscard]] std::uint16_t port() const { return server->port(); }
};

std::string ingest_request(const std::string& body,
                           std::size_t declared_length) {
    return "POST /ingest HTTP/1.1\r\nHost: t\r\nContent-Length: " +
           std::to_string(declared_length) + "\r\n\r\n" + body;
}

std::string ingest_request(const std::string& body) {
    return ingest_request(body, body.size());
}

/// The response is structurally HTTP: status line, header block, and a
/// recognized status code.  Returns the parsed status.
int require_well_formed(const std::string& response) {
    EXPECT_EQ(response.rfind("HTTP/1.1 ", 0), 0u) << response;
    EXPECT_NE(response.find("\r\n\r\n"), std::string::npos) << response;
    const int status = std::stoi(response.substr(9, 3));
    const bool known = status == 200 || status == 400 || status == 404 ||
                       status == 408 || status == 411 || status == 413 ||
                       status == 429 || status == 431 || status == 501;
    EXPECT_TRUE(known) << "unexpected status in: " << response;
    return status;
}

/// Open a socket, write the fragments with pauses between them
/// (optionally half-closing after the last), read to EOF.
std::string send_fragments(std::uint16_t port,
                           const std::vector<std::string>& fragments,
                           bool shutdown_write = false) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    address.sin_port = htons(port);
    EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                        sizeof address),
              0);
    timeval timeout{5, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
    for (std::size_t i = 0; i < fragments.size(); ++i) {
        const std::string& fragment = fragments[i];
        std::size_t written = 0;
        while (written < fragment.size()) {
            const ssize_t sent =
                ::send(fd, fragment.data() + written,
                       fragment.size() - written, MSG_NOSIGNAL);
            if (sent <= 0) break;
            written += static_cast<std::size_t>(sent);
        }
        if (i + 1 < fragments.size()) {
            std::this_thread::sleep_for(std::chrono::milliseconds{20});
        }
    }
    if (shutdown_write) ::shutdown(fd, SHUT_WR);
    std::string response;
    char buffer[4096];
    ssize_t n;
    while ((n = ::recv(fd, buffer, sizeof buffer, 0)) > 0) {
        response.append(buffer, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return response;
}

std::string valid_body(repsys::EntityId server, int first_time, int lines) {
    std::string body;
    for (int i = 0; i < lines; ++i) {
        body += std::to_string(server) + ' ' +
                std::to_string(first_time + i) + ' ' +
                (i % 4 == 0 ? "0" : "1") + '\n';
    }
    return body;
}

TEST(IngestProtocol, ValidBodyIsTheBaseline) {
    ProtocolDaemon daemon;
    const std::string response = send_fragments(
        daemon.port(), {ingest_request(valid_body(50, 1, 8))});
    EXPECT_EQ(require_well_formed(response), 200);
    EXPECT_NE(response.find("accepted=8"), std::string::npos);
    EXPECT_EQ(daemon.store.size(), 8u);
}

TEST(IngestProtocol, EveryTruncationOfAValidBodyLeavesTheStoreUntouched) {
    ProtocolDaemon daemon;
    const std::string body = valid_body(51, 1, 8);
    const StoreImage before = image_of(daemon.store);
    // Declare the full length, deliver a strict prefix, half-close: the
    // server must answer (408 on timeout or best-effort 400 on EOF) and
    // must not apply a partial batch.
    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{1}, std::size_t{7}, body.size() / 2,
          body.size() - 1}) {
        const std::string response = send_fragments(
            daemon.port(), {ingest_request(body.substr(0, keep), body.size())},
            /*shutdown_write=*/true);
        const int status = require_well_formed(response);
        EXPECT_NE(status, 200) << "truncated to " << keep;
        EXPECT_EQ(image_of(daemon.store), before) << "truncated to " << keep;
    }
}

TEST(IngestProtocol, HeaderCrlfSplitAcrossReadsStillParses) {
    ProtocolDaemon daemon;
    // Cut the request at every CR and LF of the header block: the parser
    // must reassemble regardless of how the kernel frames the reads.  A
    // fresh server id per cut keeps every batch independently admissible.
    const std::size_t probe_cuts =
        ingest_request(valid_body(200, 1, 4)).find("\r\n\r\n") + 4;
    std::size_t submitted = 0;
    for (std::size_t cut = 0; cut < probe_cuts; ++cut) {
        const std::string request = ingest_request(
            valid_body(static_cast<repsys::EntityId>(200 + cut), 1, 4));
        const char at = request[cut];
        if (at != '\r' && at != '\n') continue;
        const std::string response = send_fragments(
            daemon.port(),
            {request.substr(0, cut), request.substr(cut)});
        EXPECT_EQ(require_well_formed(response), 200) << "cut at " << cut;
        ++submitted;
    }
    EXPECT_GT(submitted, 4u);
    EXPECT_EQ(daemon.store.size(), submitted * 4);
}

TEST(IngestProtocol, BodySplitMidCrlfIsStillRejectedAsCr) {
    ProtocolDaemon daemon;
    // A CRLF-terminated record line is illegal however it arrives; here
    // the CR and LF land in different reads.
    const std::string body = "53 1 1\r\n";
    const std::string request = ingest_request(body);
    const std::size_t cr = request.find("53 1 1\r") + 7;  // just past the CR
    const std::string response = send_fragments(
        daemon.port(), {request.substr(0, cr), request.substr(cr)});
    EXPECT_EQ(require_well_formed(response), 400);
    EXPECT_NE(response.find("carriage return"), std::string::npos);
    EXPECT_EQ(daemon.store.size(), 0u);
}

TEST(IngestProtocol, HugeSingleLineIsRejectedNotBuffered) {
    ProtocolDaemon daemon;
    const StoreImage before = image_of(daemon.store);
    std::string line(100000, '7');  // one absurd numeric field
    line += " 1 1\n";
    const std::string response =
        send_fragments(daemon.port(), {ingest_request(line)});
    EXPECT_EQ(require_well_formed(response), 400);
    EXPECT_NE(response.find("line 1"), std::string::npos);
    EXPECT_EQ(image_of(daemon.store), before);
}

TEST(IngestProtocol, NonNumericFieldMutationsAllDraw400) {
    ProtocolDaemon daemon;
    const StoreImage before = image_of(daemon.store);
    const std::string garbage[] = {"x", "1x", "0x10", "1.5", "+1", " ", ""};
    int mutations = 0;
    for (int field = 0; field < 3; ++field) {
        for (const std::string& value : garbage) {
            std::string fields[] = {"54", "1", "1"};
            fields[field] = value;
            const std::string body =
                fields[0] + ' ' + fields[1] + ' ' + fields[2] + "\n54 2 1\n";
            const std::string response =
                send_fragments(daemon.port(), {ingest_request(body)});
            EXPECT_EQ(require_well_formed(response), 400) << body;
            EXPECT_NE(response.find("line 1"), std::string::npos) << body;
            ++mutations;
        }
    }
    EXPECT_EQ(mutations, 21);
    EXPECT_EQ(image_of(daemon.store), before);
}

TEST(IngestProtocol, DuplicateTimestampsAreLegalOutOfOrderIsNot) {
    ProtocolDaemon daemon;
    // Duplicates: logical clocks may tie, the store accepts equal times.
    const std::string dup = send_fragments(
        daemon.port(), {ingest_request("55 7 1\n55 7 0\n55 7 1\n")});
    EXPECT_EQ(require_well_formed(dup), 200);
    EXPECT_EQ(daemon.store.history_length(55).value_or(0), 3u);

    // Regression within the batch: rejected, naming the line, batch dead.
    const StoreImage before = image_of(daemon.store);
    const std::string regress = send_fragments(
        daemon.port(), {ingest_request("55 8 1\n55 6 1\n")});
    EXPECT_EQ(require_well_formed(regress), 400);
    EXPECT_NE(regress.find("line 2"), std::string::npos);
    EXPECT_EQ(image_of(daemon.store), before);

    // Regression against resident history (t=7 already recorded).
    const std::string stale =
        send_fragments(daemon.port(), {ingest_request("55 3 1\n")});
    EXPECT_EQ(require_well_formed(stale), 400);
    EXPECT_NE(stale.find("line 1"), std::string::npos);
    EXPECT_EQ(image_of(daemon.store), before);
}

TEST(IngestProtocol, RandomByteDamageNeverBreaksTheInvariants) {
    ProtocolDaemon daemon;
    std::mt19937_64 rng{0x1ce57u};  // deterministic: failures reproduce
    int accepted = 0;
    int rejected = 0;
    for (int round = 0; round < 60; ++round) {
        // Fresh server id and era per round so an *unmutated* body is
        // always admissible — only the damage can make it fail.
        std::string body =
            valid_body(static_cast<repsys::EntityId>(100 + round), 1, 6);
        const int damage = static_cast<int>(rng() % 4);
        for (int hit = 0; hit <= damage; ++hit) {
            const std::size_t at = rng() % body.size();
            switch (rng() % 3) {
                case 0:  // overwrite with a printable byte or separator
                    body[at] = static_cast<char>("0123456789 \nabc:-"
                                                 [rng() % 17]);
                    break;
                case 1:  // delete
                    body.erase(at, 1);
                    break;
                default:  // duplicate a byte
                    body.insert(at, 1, body[at]);
                    break;
            }
            if (body.empty()) body = "1";
        }
        const std::size_t size_before = daemon.store.size();
        const StoreImage before = image_of(daemon.store);
        const std::string response =
            send_fragments(daemon.port(), {ingest_request(body)});
        const int status = require_well_formed(response);
        if (status == 200) {
            // Growth must match the advertised accepted count exactly.
            const std::size_t mark = response.find("accepted=");
            ASSERT_NE(mark, std::string::npos) << response;
            const std::size_t count = static_cast<std::size_t>(
                std::stoul(response.substr(mark + 9)));
            EXPECT_EQ(daemon.store.size(), size_before + count) << body;
            ++accepted;
        } else {
            EXPECT_EQ(image_of(daemon.store), before) << '"' << body << '"';
            ++rejected;
        }
    }
    // The sweep must genuinely exercise both sides of the invariant.
    EXPECT_GT(accepted, 0);
    EXPECT_GT(rejected, 0);
    // Nothing leaked from shed/errored requests.
    EXPECT_EQ(daemon.service->gate().pending(), 0u);
}

TEST(IngestProtocol, PipelinedGarbageAfterAValidRequestIsIgnored) {
    ProtocolDaemon daemon;
    // The server is one-request-per-connection: trailing junk beyond the
    // declared body must not be interpreted as a second request.
    const std::string body = valid_body(60, 1, 2);
    const std::string response = send_fragments(
        daemon.port(),
        {ingest_request(body) + "GET /nonsense HTTP/1.1\r\n\r\n"});
    EXPECT_EQ(require_well_formed(response), 200);
    EXPECT_EQ(daemon.store.size(), 2u);
}

}  // namespace
}  // namespace hpr::net
