// The introspection endpoint wiring (net/endpoints.h): every page the
// daemon serves, rendered straight off live subsystem state — plus the
// byte-equality contract between /metrics and obs::to_prometheus, and
// the HTTP adapter that carries tree pages over the wire.

#include "net/endpoints.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/two_phase.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "obs/export.h"
#include "obs/introspection.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "repsys/store.h"
#include "repsys/trust.h"
#include "stats/rng.h"

namespace hpr::net {
namespace {

std::shared_ptr<stats::Calibrator> shared_cal() {
    static auto cal = core::make_calibrator(core::BehaviorTestConfig{});
    return cal;
}

/// A daemon-shaped fixture: a populated store, an incremental assessor
/// that has observed every feedback, a tracer with ring records, and a
/// registry — everything IntrospectionSources can point at.
struct Fixture {
    repsys::FeedbackStore store{4};
    serve::BatchAssessor assessor;
    obs::Registry registry;
    obs::Tracer tracer;
    obs::IntrospectionTree tree;

    Fixture()
        : assessor{[] {
                       serve::BatchAssessorConfig config;
                       config.threads = 1;
                       config.incremental = true;
                       return config;
                   }(),
                   std::shared_ptr<const repsys::TrustFunction>{
                       repsys::make_trust_function("beta")},
                   shared_cal()} {
        std::vector<repsys::Feedback> batch;
        for (const repsys::EntityId server : {7u, 11u}) {
            stats::Rng rng{1000 + server};
            for (std::size_t i = 0; i < 120; ++i) {
                batch.push_back(repsys::Feedback{
                    static_cast<repsys::Timestamp>(i + 1), server,
                    static_cast<repsys::EntityId>(900 + i % 5),
                    rng.bernoulli(0.95) ? repsys::Rating::kPositive
                                        : repsys::Rating::kNegative});
            }
        }
        store.submit(batch);
        for (const repsys::Feedback& feedback : batch) {
            assessor.observe(feedback);
        }
        IntrospectionSources sources;
        sources.registry = &registry;
        sources.tracer = &tracer;
        sources.store = &store;
        sources.assessor = &assessor;
        sources.calibrator = shared_cal();
        register_introspection(tree, sources);
    }
};

obs::DecisionRecord record_for(std::uint64_t trace_id, std::uint64_t server) {
    obs::DecisionRecord record;
    record.trace_id = trace_id;
    record.source = "online_screener";
    record.server = server;
    record.verdict = "clear";
    return record;
}

TEST(Endpoints, HealthzAndRootListing) {
    Fixture fixture;
    const auto& tree = fixture.tree;
    const auto health = tree.get("/healthz");
    EXPECT_EQ(health.status, 200);
    EXPECT_EQ(health.body, "ok\n");

    const auto root = tree.get("/");
    EXPECT_EQ(root.status, 200);
    for (const char* path : {"/healthz", "/metrics", "/metrics.json",
                             "/traces", "/store", "/servers", "/calibration"}) {
        EXPECT_NE(root.body.find(path), std::string::npos) << path;
    }
}

TEST(Endpoints, MetricsPageByteEqualsThePrometheusExport) {
    Fixture fixture;
    fixture.registry.counter("endpoint_test_total", "h").increment(42);
    const auto& tree = fixture.tree;

    const auto page = tree.get("/metrics");
    EXPECT_EQ(page.status, 200);
    EXPECT_EQ(page.content_type, "text/plain; version=0.0.4; charset=utf-8");
    // The handler publishes uptime then renders; nothing mutates the
    // quiescent registry between renders, so a second render is
    // byte-identical.
    EXPECT_EQ(page.body, obs::to_prometheus(fixture.registry));
    EXPECT_NE(page.body.find("endpoint_test_total 42"), std::string::npos);
    EXPECT_NE(page.body.find("hpr_uptime_seconds"), std::string::npos);
}

TEST(Endpoints, MetricsJsonIsServed) {
    Fixture fixture;
    fixture.registry.counter("endpoint_json_total", "h").increment(7);
    const auto& tree = fixture.tree;
    const auto page = tree.get("/metrics.json");
    EXPECT_EQ(page.status, 200);
    EXPECT_EQ(page.content_type, "application/json");
    EXPECT_EQ(page.body.front(), '{');
    EXPECT_NE(page.body.find("\"endpoint_json_total\""), std::string::npos);
}

TEST(Endpoints, TracesFilterByCountAndServer) {
    Fixture fixture;
    for (std::uint64_t i = 1; i <= 5; ++i) {
        fixture.tracer.ring().push(record_for(i, i % 2 == 0 ? 7 : 11));
    }
    const auto& tree = fixture.tree;

    const auto all = tree.get("/traces");
    EXPECT_EQ(all.status, 200);
    EXPECT_EQ(all.content_type, "application/x-ndjson");
    std::size_t lines = 0;
    std::istringstream stream{all.body};
    for (std::string line; std::getline(stream, line);) {
        obs::DecisionRecord parsed;
        ASSERT_TRUE(obs::from_jsonl(line, parsed)) << line;
        ++lines;
    }
    EXPECT_EQ(lines, 5u);

    // ?n keeps the NEWEST records.
    const auto newest = tree.get("/traces?n=2");
    EXPECT_NE(newest.body.find("\"trace_id\":4"), std::string::npos);
    EXPECT_NE(newest.body.find("\"trace_id\":5"), std::string::npos);
    EXPECT_EQ(newest.body.find("\"trace_id\":3"), std::string::npos);

    const auto filtered = tree.get("/traces?server=7");
    EXPECT_NE(filtered.body.find("\"server\":7"), std::string::npos);
    EXPECT_EQ(filtered.body.find("\"server\":11"), std::string::npos);

    // The snapshot is non-destructive: scraping left the ring intact.
    EXPECT_EQ(fixture.tracer.ring().size(), 5u);

    EXPECT_EQ(tree.get("/traces?n=bogus").status, 400);
    EXPECT_EQ(tree.get("/traces?server=-1").status, 400);
}

TEST(Endpoints, StorePageSumsShardOccupancy) {
    Fixture fixture;
    const auto page = fixture.tree.get("/store");
    EXPECT_EQ(page.status, 200);
    EXPECT_NE(page.body.find("# shards=4 servers=2 feedbacks=240"),
              std::string::npos);
    EXPECT_NE(page.body.find("shard=0 "), std::string::npos);
    EXPECT_NE(page.body.find("shard=3 "), std::string::npos);
}

TEST(Endpoints, ServersIndexListsLiveScreenerState) {
    Fixture fixture;
    const auto& tree = fixture.tree;
    const auto index = tree.get("/servers");
    EXPECT_EQ(index.status, 200);
    EXPECT_NE(index.body.find("# servers=2 feedbacks=240 streams=2"),
              std::string::npos);
    EXPECT_NE(index.body.find("7 history=120 screener="), std::string::npos);
    EXPECT_NE(index.body.find("11 history=120 screener="), std::string::npos);

    const auto limited = tree.get("/servers?limit=1");
    // Header plus exactly one row.
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(limited.body.begin(), limited.body.end(), '\n')),
              2u);
    EXPECT_EQ(tree.get("/servers?limit=x").status, 400);
}

TEST(Endpoints, ServerDetailPageAndUnknownIds) {
    Fixture fixture;
    const auto& tree = fixture.tree;
    const auto detail = tree.get("/servers/7");
    EXPECT_EQ(detail.status, 200);
    EXPECT_NE(detail.body.find("server 7\n"), std::string::npos);
    EXPECT_NE(detail.body.find("history_length 120\n"), std::string::npos);
    EXPECT_NE(detail.body.find("store_shard "), std::string::npos);
    EXPECT_NE(detail.body.find("screener_state "), std::string::npos);
    EXPECT_NE(detail.body.find("transactions 120\n"), std::string::npos);
    EXPECT_NE(detail.body.find("p_hat "), std::string::npos);

    EXPECT_EQ(tree.get("/servers/9999").status, 404);
    EXPECT_EQ(tree.get("/servers/notanumber").status, 404);
}

TEST(Endpoints, CalibrationPageReportsCacheStatistics) {
    Fixture fixture;
    const auto page = fixture.tree.get("/calibration");
    EXPECT_EQ(page.status, 200);
    for (const char* key :
         {"hits ", "misses ", "single_flight_joins ", "in_flight ",
          "cache_entries "}) {
        EXPECT_NE(page.body.find(key), std::string::npos) << key;
    }
}

TEST(Endpoints, AbsentSourcesSkipTheirEndpoints) {
    obs::Registry registry;
    obs::IntrospectionTree tree;
    IntrospectionSources sources;
    sources.registry = &registry;  // everything else left null
    register_introspection(tree, sources);

    EXPECT_EQ(tree.get("/metrics").status, 200);
    EXPECT_EQ(tree.get("/traces").status, 404);
    EXPECT_EQ(tree.get("/store").status, 404);
    EXPECT_EQ(tree.get("/servers").status, 404);
    EXPECT_EQ(tree.get("/calibration").status, 404);
}

TEST(Endpoints, HttpHandlerCarriesPagesOverTheWire) {
    Fixture fixture;
    const auto& tree = fixture.tree;
    HttpServer server{{}, make_http_handler(tree)};
    server.start();

    const auto health = http_get("127.0.0.1", server.port(), "/healthz");
    ASSERT_TRUE(health.has_value());
    EXPECT_EQ(health->status, 200);
    EXPECT_EQ(health->body, "ok\n");

    const auto metrics = http_get("127.0.0.1", server.port(), "/metrics");
    ASSERT_TRUE(metrics.has_value());
    EXPECT_EQ(metrics->status, 200);
    EXPECT_EQ(*metrics->header("Content-Type"),
              "text/plain; version=0.0.4; charset=utf-8");

    // Page status codes pass through the adapter, queries included.
    const auto missing = http_get("127.0.0.1", server.port(), "/nope");
    ASSERT_TRUE(missing.has_value());
    EXPECT_EQ(missing->status, 404);
    const auto bad = http_get("127.0.0.1", server.port(), "/traces?n=x");
    ASSERT_TRUE(bad.has_value());
    EXPECT_EQ(bad->status, 400);
    const auto detail = http_get("127.0.0.1", server.port(), "/servers/7");
    ASSERT_TRUE(detail.has_value());
    EXPECT_EQ(detail->status, 200);
    EXPECT_NE(detail->body.find("server 7\n"), std::string::npos);
}

}  // namespace
}  // namespace hpr::net
