// Unit tests for push-sum gossip aggregation (sim/gossip.h).

#include "sim/gossip.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hpr::sim {
namespace {

std::vector<double> ramp(std::size_t n) {
    std::vector<double> values(n);
    for (std::size_t i = 0; i < n; ++i) values[i] = static_cast<double>(i);
    return values;
}

TEST(Gossip, RejectsDegenerateInput) {
    EXPECT_THROW(GossipNetwork(std::vector<double>{}, GossipConfig{}), std::invalid_argument);
    EXPECT_THROW(GossipNetwork({1.0, 2.0}, {1.0}, GossipConfig{}), std::invalid_argument);
    EXPECT_THROW(GossipNetwork({1.0}, {-1.0}, GossipConfig{}), std::invalid_argument);
    EXPECT_THROW(GossipNetwork({1.0}, {0.0}, GossipConfig{}), std::invalid_argument);
    GossipConfig bad;
    bad.tolerance = 0.0;
    EXPECT_THROW(GossipNetwork({1.0}, bad), std::invalid_argument);
}

TEST(Gossip, TrueAverageOfRamp) {
    const GossipNetwork network{ramp(11)};
    EXPECT_NEAR(network.true_average(), 5.0, 1e-12);
}

TEST(Gossip, SingleNodeIsAlreadyConverged) {
    GossipNetwork network{{0.7}};
    EXPECT_EQ(network.run(), 0u);
    EXPECT_TRUE(network.converged());
    EXPECT_NEAR(network.estimate(0), 0.7, 1e-12);
}

TEST(Gossip, ConvergesToGlobalAverage) {
    GossipNetwork network{ramp(50)};
    const std::size_t rounds = network.run();
    EXPECT_TRUE(network.converged());
    EXPECT_GT(rounds, 0u);
    EXPECT_LT(network.max_error(), 1e-6);
    for (std::size_t i = 0; i < network.size(); ++i) {
        EXPECT_NEAR(network.estimate(i), network.true_average(), 1e-6) << i;
    }
}

TEST(Gossip, EstimatesStayInConvexHullOfInputs) {
    // Push-sum estimates are weighted averages of initial values, so they
    // can never leave the [min, max] envelope of the inputs.
    GossipNetwork network{ramp(20)};
    for (int round = 0; round < 50; ++round) {
        network.step();
        for (std::size_t i = 0; i < network.size(); ++i) {
            ASSERT_GE(network.estimate(i), -1e-9);
            ASSERT_LE(network.estimate(i), 19.0 + 1e-9);
        }
    }
}

TEST(Gossip, SpreadShrinksMonotonically) {
    GossipNetwork network{ramp(64)};
    double last_spread = network.spread();
    // Spread is not strictly monotone round-by-round, but over blocks of
    // rounds it must contract.
    for (int block = 0; block < 5; ++block) {
        for (int i = 0; i < 10; ++i) network.step();
        const double s = network.spread();
        EXPECT_LT(s, last_spread);
        last_spread = s;
    }
}

TEST(Gossip, ConvergenceIsFast) {
    // Push-sum converges exponentially: even 256 nodes settle to 1e-9
    // spread within a few hundred rounds.
    GossipNetwork network{ramp(256)};
    const std::size_t rounds = network.run();
    EXPECT_TRUE(network.converged());
    EXPECT_LT(rounds, 400u);
}

TEST(Gossip, TighterToleranceNeedsMoreRounds) {
    GossipConfig loose;
    loose.tolerance = 1e-3;
    GossipConfig tight;
    tight.tolerance = 1e-12;
    GossipNetwork a{ramp(64), loose, 5};
    GossipNetwork b{ramp(64), tight, 5};
    EXPECT_LT(a.run(), b.run());
}

TEST(Gossip, DeterministicPerSeed) {
    GossipNetwork a{ramp(32), {}, 77};
    GossipNetwork b{ramp(32), {}, 77};
    a.step();
    b.step();
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_DOUBLE_EQ(a.estimate(i), b.estimate(i));
    }
}

TEST(Gossip, FailedNodesFreeze) {
    GossipNetwork network{ramp(16)};
    network.fail_node(3);
    network.fail_node(3);  // idempotent
    EXPECT_EQ(network.live_nodes(), 15u);
    const double frozen = network.estimate(3);
    for (int i = 0; i < 20; ++i) network.step();
    EXPECT_EQ(network.estimate(3), frozen);
}

TEST(Gossip, LiveNodesStillAgreeAfterFailure) {
    // Mass held by the failed node is lost, so live estimates converge to
    // a common value that may be offset from the true average — bounded
    // by the failed node's share.
    GossipNetwork network{ramp(40)};
    for (int i = 0; i < 5; ++i) network.step();
    network.fail_node(0);
    (void)network.run();
    EXPECT_TRUE(network.converged());
    EXPECT_LT(network.spread(), 1e-6);
    EXPECT_LT(network.max_error(), 2.0);  // bounded residual offset
}

TEST(Gossip, EstimateIndexChecked) {
    GossipNetwork network{ramp(4)};
    EXPECT_THROW((void)network.estimate(4), std::out_of_range);
    EXPECT_THROW(network.fail_node(17), std::out_of_range);
}

TEST(Gossip, WeightedConsensusIsShardSizeAware) {
    // Peer 0 saw 90 transactions (81 good), peer 1 saw 10 (2 good): the
    // weighted consensus must be 83/100, not the unweighted mean of the
    // two local ratios.
    GossipNetwork network{{81.0, 2.0}, {90.0, 10.0}, GossipConfig{}};
    EXPECT_NEAR(network.true_average(), 0.83, 1e-12);
    (void)network.run();
    ASSERT_TRUE(network.converged());
    EXPECT_NEAR(network.estimate(0), 0.83, 1e-6);
    EXPECT_NEAR(network.estimate(1), 0.83, 1e-6);
}

TEST(Gossip, ZeroWeightPeersJoinTheConsensus) {
    // A peer with an empty shard contributes nothing but still learns the
    // consensus value.
    GossipNetwork network{{10.0, 0.0, 0.0}, {20.0, 0.0, 0.0}, GossipConfig{}};
    (void)network.run();
    ASSERT_TRUE(network.converged());
    for (std::size_t i = 0; i < network.size(); ++i) {
        EXPECT_NEAR(network.estimate(i), 0.5, 1e-6) << i;
    }
}

TEST(Gossip, ReputationShardScenario) {
    // The paper's use case: 30 peers each hold the good-ratio of their
    // local feedback shard for one server; gossip agrees on the global
    // ratio without a central server.
    std::vector<double> shard_ratios;
    stats::Rng rng{123};
    for (int i = 0; i < 30; ++i) shard_ratios.push_back(0.85 + 0.1 * rng.uniform());
    GossipNetwork network{shard_ratios};
    (void)network.run();
    ASSERT_TRUE(network.converged());
    EXPECT_NEAR(network.estimate(7), network.true_average(), 1e-8);
    EXPECT_GT(network.true_average(), 0.85);
    EXPECT_LT(network.true_average(), 0.95);
}

}  // namespace
}  // namespace hpr::sim
