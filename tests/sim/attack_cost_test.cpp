// Tests for the attack-cost experiment (sim/attack_cost.h) — paper §5.1.
// These are the qualitative claims behind Figs. 3 and 4.

#include "sim/attack_cost.h"

#include <gtest/gtest.h>

namespace hpr::sim {
namespace {

std::shared_ptr<stats::Calibrator> shared_cal() {
    static auto cal = core::make_calibrator(core::BehaviorTestConfig{});
    return cal;
}

AttackCostConfig base_config() {
    AttackCostConfig config;
    config.seed = 111;
    config.max_attack_steps = 30000;
    return config;
}

TEST(AttackCost, LargePrepDefeatsPlainAverage) {
    // The hibernating attack of Fig. 3: with >= 600 prepared transactions
    // at trust 0.95, all 20 attacks land back-to-back at zero cost.
    auto config = base_config();
    config.prep_size = 800;
    config.screening = core::ScreeningMode::kNone;
    config.trust_spec = "average";
    const auto result = run_attack_cost(config, shared_cal());
    EXPECT_TRUE(result.reached_target);
    EXPECT_EQ(result.good_transactions, 0u);
    EXPECT_GE(result.final_trust, 0.9);
}

TEST(AttackCost, SmallPrepForcesGoodsEvenWithoutScreening) {
    // Fig. 3 at prep 100: roughly 9 goods per bad in steady state.
    auto config = base_config();
    config.prep_size = 100;
    config.screening = core::ScreeningMode::kNone;
    const auto series = run_attack_cost_trials(config, 5, shared_cal());
    EXPECT_EQ(series.unreached_runs, 0u);
    EXPECT_GT(series.cost.mean(), 50.0);
}

TEST(AttackCost, MultiTestingImposesCostIndependentOfPrep) {
    // The headline Fig. 3 result: Scheme 2 keeps the attack expensive no
    // matter how long the preparation phase was.
    auto config = base_config();
    config.screening = core::ScreeningMode::kMulti;
    config.prep_size = 800;
    const auto large_prep = run_attack_cost_trials(config, 5, shared_cal());
    EXPECT_EQ(large_prep.unreached_runs, 0u);
    EXPECT_GT(large_prep.cost.mean(), 20.0);

    config.prep_size = 400;
    const auto mid_prep = run_attack_cost_trials(config, 5, shared_cal());
    // Costs stay in the same band (no collapse to zero at large prep).
    EXPECT_GT(mid_prep.cost.mean(), 20.0);
}

TEST(AttackCost, SchemeOrderingAtLargePrep) {
    // At large prep: cost(None) <= cost(Single) <= cost(Multi) up to noise.
    auto config = base_config();
    config.prep_size = 800;

    config.screening = core::ScreeningMode::kNone;
    const double none = run_attack_cost_trials(config, 5, shared_cal()).cost.mean();
    config.screening = core::ScreeningMode::kSingle;
    const double single = run_attack_cost_trials(config, 5, shared_cal()).cost.mean();
    config.screening = core::ScreeningMode::kMulti;
    const double multi = run_attack_cost_trials(config, 5, shared_cal()).cost.mean();

    EXPECT_LE(none, single + 1.0);
    EXPECT_LT(single, multi);
    EXPECT_LT(none, multi);
}

TEST(AttackCost, WeightedFunctionForcesSteadyCost) {
    // Fig. 4: the EWMA alone forces ~2-3 goods per bad regardless of prep.
    auto config = base_config();
    config.trust_spec = "weighted:0.5";
    config.screening = core::ScreeningMode::kNone;
    for (const std::size_t prep : {100u, 800u}) {
        config.prep_size = prep;
        const auto series = run_attack_cost_trials(config, 5, shared_cal());
        EXPECT_EQ(series.unreached_runs, 0u);
        EXPECT_GT(series.cost.mean(), 30.0) << "prep " << prep;
        EXPECT_LT(series.cost.mean(), 90.0) << "prep " << prep;
    }
}

TEST(AttackCost, WeightedNeverAllowsConsecutiveBads) {
    // With lambda = 0.5 and threshold 0.9, one bad drops the EWMA below
    // 0.9, so the next transaction can never be another attack (§5.1).
    auto config = base_config();
    config.trust_spec = "weighted:0.5";
    config.screening = core::ScreeningMode::kNone;
    config.prep_size = 300;
    const auto result = run_attack_cost(config, shared_cal());
    ASSERT_TRUE(result.reached_target);
    // 20 attacks need at least 2 goods between consecutive ones.
    EXPECT_GE(result.good_transactions, 19u * 2u);
}

TEST(AttackCost, AttackStepsEqualGoodsPlusBads) {
    auto config = base_config();
    config.prep_size = 200;
    config.screening = core::ScreeningMode::kMulti;
    const auto result = run_attack_cost(config, shared_cal());
    EXPECT_EQ(result.attack_steps,
              result.good_transactions + result.attacks_completed);
}

TEST(AttackCost, DeterministicPerSeed) {
    auto config = base_config();
    config.prep_size = 300;
    config.screening = core::ScreeningMode::kSingle;
    const auto a = run_attack_cost(config, shared_cal());
    const auto b = run_attack_cost(config, shared_cal());
    EXPECT_EQ(a.good_transactions, b.good_transactions);
    EXPECT_EQ(a.attack_steps, b.attack_steps);
    EXPECT_EQ(a.final_trust, b.final_trust);
}

TEST(AttackCost, TargetAttacksHonored) {
    auto config = base_config();
    config.prep_size = 400;
    config.target_attacks = 7;
    config.screening = core::ScreeningMode::kMulti;
    const auto result = run_attack_cost(config, shared_cal());
    EXPECT_TRUE(result.reached_target);
    EXPECT_EQ(result.attacks_completed, 7u);
}

TEST(AttackCost, StepCapMarksUnreached) {
    auto config = base_config();
    config.prep_size = 400;
    config.max_attack_steps = 3;  // cannot land 20 attacks in 3 steps
    config.screening = core::ScreeningMode::kMulti;
    const auto result = run_attack_cost(config, shared_cal());
    EXPECT_FALSE(result.reached_target);
    EXPECT_EQ(result.attack_steps, 3u);
}

TEST(AttackCost, TrialsAggregateSeeds) {
    auto config = base_config();
    config.prep_size = 200;
    config.screening = core::ScreeningMode::kNone;
    const auto series = run_attack_cost_trials(config, 8, shared_cal());
    EXPECT_EQ(series.cost.count(), 8u);
    // Different seeds should produce at least two distinct costs.
    EXPECT_GT(series.cost.max(), series.cost.min());
}

}  // namespace
}  // namespace hpr::sim
