// Integration tests for the decentralized reputation system (sim/p2p.h).

#include "sim/p2p.h"

#include <gtest/gtest.h>

#include "sim/generators.h"

namespace hpr::sim {
namespace {

std::shared_ptr<stats::Calibrator> shared_cal() {
    static auto cal = core::make_calibrator(core::BehaviorTestConfig{});
    return cal;
}

void publish_history(DecentralizedReputationSystem& system,
                     const repsys::TransactionHistory& history) {
    for (const auto& f : history.feedbacks()) system.record(f);
}

TEST(P2P, RejectsBadConfig) {
    P2PConfig bad;
    bad.retrieval_fraction = 0.0;
    EXPECT_THROW(DecentralizedReputationSystem{bad}, std::invalid_argument);
    bad = {};
    bad.retrieval_fraction = 1.5;
    EXPECT_THROW(DecentralizedReputationSystem{bad}, std::invalid_argument);
    bad = {};
    bad.trust_spec = "no-such-fn";
    EXPECT_THROW(DecentralizedReputationSystem{bad}, std::invalid_argument);
}

TEST(P2P, HonestServerAssessedFromOverlay) {
    DecentralizedReputationSystem system{{}, shared_cal()};
    stats::Rng rng{7001};
    publish_history(system, honest_history(500, 0.93, rng, /*server=*/7));
    const auto assessment = system.assess(7);
    ASSERT_EQ(assessment.verdict, core::Verdict::kAssessed);
    EXPECT_NEAR(*assessment.trust, 0.93, 0.05);
    EXPECT_GT(system.last_hops(), 0u);
}

TEST(P2P, AttackerFlaggedFromOverlayData) {
    DecentralizedReputationSystem system{{}, shared_cal()};
    stats::Rng rng{7002};
    publish_history(system, hibernating_history(500, 30, 0.95, rng, /*server=*/8));
    EXPECT_EQ(system.assess(8).verdict, core::Verdict::kSuspicious);
}

TEST(P2P, UnknownServerIsInsufficient) {
    DecentralizedReputationSystem system{{}, shared_cal()};
    const auto assessment = system.assess(999);
    EXPECT_EQ(assessment.verdict, core::Verdict::kInsufficientHistory);
}

TEST(P2P, PartialRetrievalStillScreens) {
    P2PConfig config;
    config.retrieval_fraction = 0.5;
    DecentralizedReputationSystem system{config, shared_cal()};
    stats::Rng rng{7003};
    publish_history(system, honest_history(1200, 0.92, rng, /*server=*/9));
    const auto assessment = system.assess(9);
    ASSERT_NE(assessment.verdict, core::Verdict::kSuspicious);
    ASSERT_TRUE(assessment.trust.has_value());
    EXPECT_NEAR(*assessment.trust, 0.92, 0.06);
}

TEST(P2P, SurvivesReplicaFailures) {
    P2PConfig config;
    config.overlay.nodes = 32;
    config.overlay.replication = 3;
    DecentralizedReputationSystem system{config, shared_cal()};
    stats::Rng rng{7004};
    publish_history(system, honest_history(400, 0.9, rng, /*server=*/5));
    // Kill one loaded node; the log must still be assessable.
    const auto loads = system.overlay().load();
    for (std::size_t i = 0; i < loads.size(); ++i) {
        if (loads[i] > 0) {
            system.fail_node(i);
            break;
        }
    }
    EXPECT_EQ(system.assess(5).verdict, core::Verdict::kAssessed);
}

TEST(P2P, GossipConsensusMatchesExactRatio) {
    DecentralizedReputationSystem system{{}, shared_cal()};
    stats::Rng rng{7005};
    publish_history(system, honest_history(900, 0.88, rng, /*server=*/6));
    const auto consensus = system.gossip_trust(6, 25);
    EXPECT_TRUE(consensus.converged);
    EXPECT_GT(consensus.rounds, 0u);
    EXPECT_NEAR(consensus.value, consensus.exact, 1e-6);
    EXPECT_NEAR(consensus.exact, 0.88, 0.05);
}

TEST(P2P, GossipTrustArgumentChecks) {
    DecentralizedReputationSystem system{{}, shared_cal()};
    EXPECT_THROW((void)system.gossip_trust(1, 0), std::invalid_argument);
    EXPECT_THROW((void)system.gossip_trust(123, 5), std::invalid_argument);
}

TEST(P2P, SinglePeerGossipIsExact) {
    DecentralizedReputationSystem system{{}, shared_cal()};
    stats::Rng rng{7006};
    publish_history(system, honest_history(300, 0.8, rng, /*server=*/4));
    const auto consensus = system.gossip_trust(4, 1);
    EXPECT_NEAR(consensus.value, consensus.exact, 1e-12);
    EXPECT_TRUE(consensus.converged);
}

}  // namespace
}  // namespace hpr::sim
