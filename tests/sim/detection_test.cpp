// Tests for the detection-rate experiment (sim/detection.h) — paper §5.3,
// the qualitative claims behind Fig. 7.

#include "sim/detection.h"

#include <gtest/gtest.h>

namespace hpr::sim {
namespace {

std::shared_ptr<stats::Calibrator> shared_cal() {
    static auto cal = core::make_calibrator(core::BehaviorTestConfig{});
    return cal;
}

DetectionConfig config_for(std::size_t attack_window, std::size_t trials = 60) {
    DetectionConfig config;
    config.attack_window = attack_window;
    config.trials = trials;
    config.seed = 311;
    return config;
}

TEST(Detection, TightAttackWindowIsAlwaysCaught) {
    // N = 10: exactly one bad per window — a rigid, underdispersed
    // pattern that the distribution test nails.
    EXPECT_GT(detection_rate(config_for(10), shared_cal()), 0.95);
}

TEST(Detection, RateDecreasesWithAttackWindow) {
    // Fig. 7: detection decays monotonically (up to noise) in N.
    const double at10 = detection_rate(config_for(10), shared_cal());
    const double at20 = detection_rate(config_for(20), shared_cal());
    const double at40 = detection_rate(config_for(40), shared_cal());
    const double at80 = detection_rate(config_for(80), shared_cal());
    EXPECT_GE(at10 + 0.05, at20);
    EXPECT_GE(at20 + 0.05, at40);
    EXPECT_GE(at40 + 0.10, at80);
    EXPECT_GT(at10, at80);
}

TEST(Detection, LargeWindowApproachesFalsePositiveFloor) {
    const double at80 = detection_rate(config_for(80), shared_cal());
    EXPECT_LT(at80, 0.5);
}

TEST(Detection, ZeroTrialsGiveZeroRate) {
    auto config = config_for(10);
    config.trials = 0;
    EXPECT_EQ(detection_rate(config, shared_cal()), 0.0);
}

TEST(Detection, SingleTestDetectsLessThanMulti) {
    auto config = config_for(40);
    config.use_multi = true;
    const double multi = detection_rate(config, shared_cal());
    config.use_multi = false;
    const double single = detection_rate(config, shared_cal());
    EXPECT_LE(single, multi + 0.05);
}

TEST(Detection, DeterministicPerSeed) {
    const auto config = config_for(20);
    EXPECT_EQ(detection_rate(config, shared_cal()),
              detection_rate(config, shared_cal()));
}

TEST(Detection, FalsePositiveRateIsLow) {
    // Honest Bernoulli histories should rarely be flagged.  The multi-test
    // runs ~40 dependent stages, so its family-wise rate sits above the
    // single-test 5% but must stay well below attack detection rates.
    auto config = config_for(10, /*trials=*/100);
    const double fp = false_positive_rate(0.9, config, shared_cal());
    EXPECT_LT(fp, 0.4);
    config.use_multi = false;
    const double fp_single = false_positive_rate(0.9, config, shared_cal());
    EXPECT_LT(fp_single, 0.1);
}

TEST(Detection, BonferroniCutsFalsePositivesKeepsDetection) {
    auto plain = config_for(10, /*trials=*/100);
    auto corrected = plain;
    corrected.test.bonferroni = true;

    const double fp_plain = false_positive_rate(0.9, plain, shared_cal());
    const double fp_corrected = false_positive_rate(0.9, corrected, shared_cal());
    EXPECT_LE(fp_corrected, fp_plain);
    EXPECT_LT(fp_corrected, 0.1);

    // The rigid N = 10 periodic attack is still caught.
    EXPECT_GT(detection_rate(corrected, shared_cal()), 0.9);
}

TEST(Detection, FalsePositiveWellBelowDetection) {
    auto config = config_for(20, /*trials=*/100);
    const double detection = detection_rate(config, shared_cal());
    const double fp = false_positive_rate(0.9, config, shared_cal());
    EXPECT_GT(detection, fp + 0.3);
}

}  // namespace
}  // namespace hpr::sim
