// Unit tests for workload generators (sim/generators.h).

#include "sim/generators.h"

#include <gtest/gtest.h>

#include <set>

namespace hpr::sim {
namespace {

TEST(Generators, HonestOutcomesLengthAndRatio) {
    stats::Rng rng{81};
    const auto outcomes = honest_outcomes(10000, 0.9, rng);
    ASSERT_EQ(outcomes.size(), 10000u);
    std::size_t good = 0;
    for (auto o : outcomes) good += o;
    EXPECT_NEAR(static_cast<double>(good) / 10000.0, 0.9, 0.02);
}

TEST(Generators, HonestOutcomesRejectsBadP) {
    stats::Rng rng{82};
    EXPECT_THROW((void)honest_outcomes(10, -0.1, rng), std::invalid_argument);
    EXPECT_THROW((void)honest_outcomes(10, 1.1, rng), std::invalid_argument);
}

TEST(Generators, HonestOutcomesDeterministicPerSeed) {
    stats::Rng a{83};
    stats::Rng b{83};
    EXPECT_EQ(honest_outcomes(500, 0.8, a), honest_outcomes(500, 0.8, b));
}

TEST(Generators, PeriodicOutcomesExactPerBlockBadCount) {
    stats::Rng rng{84};
    const std::size_t window = 20;
    const auto outcomes = periodic_outcomes(400, window, 0.1, rng);
    ASSERT_EQ(outcomes.size(), 400u);
    for (std::size_t block = 0; block < 400; block += window) {
        std::size_t bads = 0;
        for (std::size_t i = block; i < block + window; ++i) {
            if (outcomes[i] == 0) ++bads;
        }
        EXPECT_EQ(bads, 2u) << "block at " << block;
    }
}

TEST(Generators, PeriodicOutcomesTrailingPartialBlockStaysGood) {
    stats::Rng rng{85};
    const auto outcomes = periodic_outcomes(25, 10, 0.1, rng);
    for (std::size_t i = 20; i < 25; ++i) EXPECT_EQ(outcomes[i], 1u);
}

TEST(Generators, PeriodicOutcomesPositionsVaryAcrossBlocks) {
    stats::Rng rng{86};
    const auto outcomes = periodic_outcomes(800, 10, 0.1, rng);
    // With one random bad position per 10-block, at least two different
    // positions must appear across 80 blocks.
    std::set<std::size_t> positions;
    for (std::size_t block = 0; block < 800; block += 10) {
        for (std::size_t i = 0; i < 10; ++i) {
            if (outcomes[block + i] == 0) positions.insert(i);
        }
    }
    EXPECT_GT(positions.size(), 3u);
}

TEST(Generators, PeriodicOutcomesRejectsBadArguments) {
    stats::Rng rng{87};
    EXPECT_THROW((void)periodic_outcomes(100, 0, 0.1, rng), std::invalid_argument);
    EXPECT_THROW((void)periodic_outcomes(100, 10, 1.5, rng), std::invalid_argument);
}

TEST(Generators, HonestHistoryFieldsArePopulated) {
    stats::Rng rng{88};
    const auto history = honest_history(120, 0.9, rng, /*server=*/9);
    ASSERT_EQ(history.size(), 120u);
    EXPECT_EQ(history[0].server, 9u);
    EXPECT_EQ(history[0].time, 1);
    EXPECT_EQ(history[119].time, 120);
    EXPECT_GT(history.distinct_clients(), 1u);
}

TEST(Generators, ClientIdSchemeCycles) {
    const ClientIdScheme scheme{200, 5};
    EXPECT_EQ(scheme.client_for(0), 200u);
    EXPECT_EQ(scheme.client_for(4), 204u);
    EXPECT_EQ(scheme.client_for(5), 200u);
}

TEST(Generators, HibernatingHistoryShape) {
    stats::Rng rng{89};
    const auto history = hibernating_history(200, 30, 0.95, rng);
    ASSERT_EQ(history.size(), 230u);
    // The attack tail is all bad.
    for (std::size_t i = 200; i < 230; ++i) {
        EXPECT_FALSE(history[i].good()) << i;
    }
    EXPECT_NEAR(static_cast<double>(history.good_count(0, 200)) / 200.0, 0.95, 0.06);
}

TEST(Generators, CheatAndRunEndsWithOneBad) {
    stats::Rng rng{90};
    const auto history = cheat_and_run_history(50, 1.0, rng);
    ASSERT_EQ(history.size(), 51u);
    EXPECT_FALSE(history[50].good());
    EXPECT_EQ(history.good_count(), 50u);
}

TEST(Generators, DriftingOutcomesInterpolate) {
    stats::Rng rng{92};
    const auto outcomes = drifting_outcomes(20000, 1.0, 0.0, rng);
    ASSERT_EQ(outcomes.size(), 20000u);
    std::size_t first_half_good = 0;
    std::size_t second_half_good = 0;
    for (std::size_t i = 0; i < 10000; ++i) first_half_good += outcomes[i];
    for (std::size_t i = 10000; i < 20000; ++i) second_half_good += outcomes[i];
    // First half averages p ~ 0.75, second ~ 0.25.
    EXPECT_NEAR(static_cast<double>(first_half_good) / 10000.0, 0.75, 0.03);
    EXPECT_NEAR(static_cast<double>(second_half_good) / 10000.0, 0.25, 0.03);
    EXPECT_THROW((void)drifting_outcomes(10, -0.1, 0.5, rng), std::invalid_argument);
    EXPECT_THROW((void)drifting_outcomes(10, 0.5, 1.5, rng), std::invalid_argument);
}

TEST(Generators, DriftingDegenerateEndpoints) {
    stats::Rng rng{93};
    const auto constant = drifting_outcomes(500, 0.9, 0.9, rng);
    std::size_t good = 0;
    for (const auto o : constant) good += o;
    EXPECT_NEAR(static_cast<double>(good) / 500.0, 0.9, 0.06);
    EXPECT_TRUE(drifting_outcomes(0, 0.5, 0.9, rng).empty());
    const auto single = drifting_outcomes(1, 1.0, 0.0, rng);
    ASSERT_EQ(single.size(), 1u);
    EXPECT_EQ(single[0], 1u);  // t = 0 at n = 1: uses p_start
}

TEST(Generators, PeriodicHistoryMatchesOutcomes) {
    stats::Rng a{91};
    stats::Rng b{91};
    const auto history = periodic_attack_history(200, 10, 0.1, a);
    const auto outcomes = periodic_outcomes(200, 10, 0.1, b);
    ASSERT_EQ(history.size(), outcomes.size());
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        EXPECT_EQ(history[i].good(), outcomes[i] != 0) << i;
    }
}

}  // namespace
}  // namespace hpr::sim
