// Unit tests for the client-arrival model (sim/clients.h) — paper §5.2.

#include "sim/clients.h"

#include <gtest/gtest.h>

namespace hpr::sim {
namespace {

TEST(ClientPool, RejectsEmptyPool) {
    EXPECT_THROW(ClientPool(0, 10), std::invalid_argument);
}

TEST(ClientPool, IdRangeAndContains) {
    const ClientPool pool{5, 100};
    EXPECT_EQ(pool.size(), 5u);
    EXPECT_EQ(pool.first_id(), 100u);
    EXPECT_EQ(pool.last_id(), 104u);
    EXPECT_TRUE(pool.contains(100));
    EXPECT_TRUE(pool.contains(104));
    EXPECT_FALSE(pool.contains(99));
    EXPECT_FALSE(pool.contains(105));
}

TEST(ClientPool, AllClientsStartNew) {
    const ClientPool pool{3, 1};
    for (repsys::EntityId c = 1; c <= 3; ++c) {
        EXPECT_EQ(pool.state(c), ClientPool::State::kNew);
    }
}

TEST(ClientPool, RecordUpdatesState) {
    ClientPool pool{3, 1};
    pool.record(2, true);
    EXPECT_EQ(pool.state(2), ClientPool::State::kLastGood);
    pool.record(2, false);
    EXPECT_EQ(pool.state(2), ClientPool::State::kLastBad);
    EXPECT_EQ(pool.state(1), ClientPool::State::kNew);
    EXPECT_EQ(pool.satisfied_clients(), 0u);
    pool.record(3, true);
    EXPECT_EQ(pool.satisfied_clients(), 1u);
}

TEST(ClientPool, RecordAndStateRejectForeignIds) {
    ClientPool pool{3, 1};
    EXPECT_THROW(pool.record(7, true), std::out_of_range);
    EXPECT_THROW((void)pool.state(0), std::out_of_range);
}

TEST(ClientPool, ZeroReputationMeansNoArrivals) {
    const ClientPool pool{50, 1};
    stats::Rng rng{101};
    EXPECT_TRUE(pool.arrivals(0.0, rng).empty());
}

TEST(ClientPool, ArrivalFrequencyMatchesParams) {
    // With reputation p the arrival rates must approximate a_i * p.
    const ClientArrivalParams params{0.5, 0.9, 0.2};
    ClientPool pool{300, 1, params};
    for (repsys::EntityId c = 1; c <= 100; ++c) pool.record(c, true);
    for (repsys::EntityId c = 101; c <= 200; ++c) pool.record(c, false);
    // Clients 201..300 stay new.

    stats::Rng rng{102};
    const double reputation = 0.8;
    double good_arrivals = 0;
    double bad_arrivals = 0;
    double new_arrivals = 0;
    constexpr int kRounds = 2000;
    for (int round = 0; round < kRounds; ++round) {
        for (const repsys::EntityId c : pool.arrivals(reputation, rng)) {
            if (c <= 100) {
                ++good_arrivals;
            } else if (c <= 200) {
                ++bad_arrivals;
            } else {
                ++new_arrivals;
            }
        }
    }
    const double denom = 100.0 * kRounds;
    EXPECT_NEAR(good_arrivals / denom, params.a_good * reputation, 0.02);
    EXPECT_NEAR(bad_arrivals / denom, params.a_bad * reputation, 0.02);
    EXPECT_NEAR(new_arrivals / denom, params.a_new * reputation, 0.02);
}

TEST(ClientPool, ReputationAboveOneIsClamped) {
    const ClientArrivalParams params{1.0, 1.0, 1.0};
    const ClientPool pool{20, 1, params};
    stats::Rng rng{103};
    // a_i * clamp(rep) = 1.0: every client arrives every round.
    EXPECT_EQ(pool.arrivals(5.0, rng).size(), 20u);
}

TEST(ClientPool, ArrivalsAreSortedUnique) {
    const ClientPool pool{100, 50};
    stats::Rng rng{104};
    const auto arrivals = pool.arrivals(0.9, rng);
    for (std::size_t i = 1; i < arrivals.size(); ++i) {
        ASSERT_LT(arrivals[i - 1], arrivals[i]);
    }
}

}  // namespace
}  // namespace hpr::sim
