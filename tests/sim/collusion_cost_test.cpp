// Tests for the collusion attack-cost experiment (sim/collusion_cost.h) —
// paper §5.2, the qualitative claims behind Figs. 5 and 6.

#include "sim/collusion_cost.h"

#include <gtest/gtest.h>

namespace hpr::sim {
namespace {

std::shared_ptr<stats::Calibrator> shared_cal() {
    static auto cal = core::make_calibrator(core::BehaviorTestConfig{});
    return cal;
}

CollusionCostConfig base_config() {
    CollusionCostConfig config;
    config.seed = 211;
    config.max_attack_steps = 30000;
    return config;
}

TEST(CollusionCost, RejectsDegenerateColluderCounts) {
    auto config = base_config();
    config.n_colluders = 0;
    EXPECT_THROW((void)run_collusion_cost(config, shared_cal()),
                 std::invalid_argument);
    config.n_colluders = config.n_clients;
    EXPECT_THROW((void)run_collusion_cost(config, shared_cal()),
                 std::invalid_argument);
}

TEST(CollusionCost, WithoutTestingColludersPayEverything) {
    // The paper's headline §5.2 observation: with no behavior testing the
    // attacker needs zero genuine good services — fake feedback suffices.
    auto config = base_config();
    config.screening = core::ScreeningMode::kNone;
    for (const std::size_t prep : {100u, 400u, 800u}) {
        config.prep_size = prep;
        const auto result = run_collusion_cost(config, shared_cal());
        EXPECT_TRUE(result.reached_target) << "prep " << prep;
        EXPECT_EQ(result.genuine_goods, 0u) << "prep " << prep;
    }
}

TEST(CollusionCost, ResilientTestingForcesGenuineService) {
    auto config = base_config();
    config.screening = core::ScreeningMode::kMulti;
    config.prep_size = 400;
    const auto series = run_collusion_cost_trials(config, 4, shared_cal());
    EXPECT_EQ(series.unreached_runs, 0u);
    EXPECT_GT(series.cost.mean(), 20.0);
}

TEST(CollusionCost, MultiTestingCostStableAcrossPrepSizes) {
    auto config = base_config();
    config.screening = core::ScreeningMode::kMulti;
    config.prep_size = 100;
    const double small = run_collusion_cost_trials(config, 4, shared_cal()).cost.mean();
    config.prep_size = 800;
    const double large = run_collusion_cost_trials(config, 4, shared_cal()).cost.mean();
    // Fig. 5: multi-testing keeps cost roughly flat; in particular a long
    // prep must not collapse the cost toward zero.
    EXPECT_GT(large, 0.4 * small);
    EXPECT_GT(large, 20.0);
}

TEST(CollusionCost, SingleTestingDegradesWithLongPrep) {
    // Fig. 5: Scheme 1's cost falls substantially as the preparation
    // history grows (hibernating weakness).
    auto config = base_config();
    config.screening = core::ScreeningMode::kSingle;
    config.prep_size = 100;
    const double small = run_collusion_cost_trials(config, 4, shared_cal()).cost.mean();
    config.prep_size = 800;
    const double large = run_collusion_cost_trials(config, 4, shared_cal()).cost.mean();
    EXPECT_LT(large, small);
}

TEST(CollusionCost, ScreeningGrowsSupporterBase) {
    // §4 intuition: to pass the re-ordered test the attacker must serve
    // clients beyond its 5 colluders, expanding the supporter base.
    auto config = base_config();
    config.prep_size = 400;
    config.screening = core::ScreeningMode::kNone;
    const auto unscreened = run_collusion_cost(config, shared_cal());
    config.screening = core::ScreeningMode::kMulti;
    const auto screened = run_collusion_cost(config, shared_cal());
    EXPECT_GT(screened.supporter_base, unscreened.supporter_base);
    EXPECT_GT(screened.supporter_base, config.n_colluders);
}

TEST(CollusionCost, WeightedTrustAlsoConstrained) {
    auto config = base_config();
    config.trust_spec = "weighted:0.5";
    config.screening = core::ScreeningMode::kNone;
    config.prep_size = 400;
    const auto baseline = run_collusion_cost(config, shared_cal());
    EXPECT_EQ(baseline.genuine_goods, 0u);
    EXPECT_GT(baseline.fake_positives, 0u);

    config.screening = core::ScreeningMode::kMulti;
    const auto screened = run_collusion_cost(config, shared_cal());
    EXPECT_GT(screened.genuine_goods, 20u);
}

TEST(CollusionCost, DeterministicPerSeed) {
    auto config = base_config();
    config.prep_size = 200;
    config.screening = core::ScreeningMode::kMulti;
    const auto a = run_collusion_cost(config, shared_cal());
    const auto b = run_collusion_cost(config, shared_cal());
    EXPECT_EQ(a.genuine_goods, b.genuine_goods);
    EXPECT_EQ(a.fake_positives, b.fake_positives);
    EXPECT_EQ(a.attack_steps, b.attack_steps);
}

TEST(CollusionCost, ReachesExactTargetAttackCount) {
    auto config = base_config();
    config.prep_size = 300;
    config.target_attacks = 9;
    config.screening = core::ScreeningMode::kMulti;
    const auto result = run_collusion_cost(config, shared_cal());
    EXPECT_TRUE(result.reached_target);
    EXPECT_EQ(result.attacks_completed, 9u);
}

TEST(CollusionCost, TrialsAggregate) {
    auto config = base_config();
    config.prep_size = 200;
    config.screening = core::ScreeningMode::kMulti;
    const auto series = run_collusion_cost_trials(config, 6, shared_cal());
    EXPECT_EQ(series.cost.count(), 6u);
    EXPECT_EQ(series.fakes.count(), 6u);
}

}  // namespace
}  // namespace hpr::sim
