// Unit tests for the structured-overlay feedback directory
// (sim/overlay.h).

#include "sim/overlay.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <span>

#include "core/behavior_test.h"
#include "stats/rng.h"

namespace hpr::sim {
namespace {

repsys::Feedback fb(repsys::Timestamp t, repsys::EntityId server,
                    repsys::EntityId client, bool good) {
    return repsys::Feedback{t, server, client,
                            good ? repsys::Rating::kPositive
                                 : repsys::Rating::kNegative};
}

TEST(Overlay, RejectsDegenerateConfig) {
    OverlayConfig bad;
    bad.nodes = 0;
    EXPECT_THROW(FeedbackOverlay{bad}, std::invalid_argument);
    bad = {};
    bad.replication = 0;
    EXPECT_THROW(FeedbackOverlay{bad}, std::invalid_argument);
    bad = {};
    bad.nodes = 2;
    bad.replication = 3;
    EXPECT_THROW(FeedbackOverlay{bad}, std::invalid_argument);
}

TEST(Overlay, PublishLookupRoundTrip) {
    FeedbackOverlay overlay;
    std::vector<repsys::Feedback> published;
    for (int i = 1; i <= 50; ++i) {
        published.push_back(fb(i, 42, static_cast<repsys::EntityId>(100 + i), i % 5 != 0));
        EXPECT_EQ(overlay.publish(published.back()), 3u);
    }
    EXPECT_EQ(overlay.lookup(42), published);
    EXPECT_TRUE(overlay.lookup(999).empty());
}

TEST(Overlay, MultipleServersAreIndependent) {
    FeedbackOverlay overlay;
    overlay.publish(fb(1, 1, 10, true));
    overlay.publish(fb(1, 2, 10, false));
    ASSERT_EQ(overlay.lookup(1).size(), 1u);
    ASSERT_EQ(overlay.lookup(2).size(), 1u);
    EXPECT_TRUE(overlay.lookup(1)[0].good());
    EXPECT_FALSE(overlay.lookup(2)[0].good());
}

TEST(Overlay, PublishRejectsTimeRegressionPerServer) {
    FeedbackOverlay overlay;
    overlay.publish(fb(5, 1, 10, true));
    EXPECT_THROW(overlay.publish(fb(4, 1, 11, true)), std::invalid_argument);
    overlay.publish(fb(1, 2, 10, true));  // another server: independent clock
}

TEST(Overlay, SurvivesFewerFailuresThanReplication) {
    OverlayConfig config;
    config.nodes = 32;
    config.replication = 3;
    FeedbackOverlay overlay{config};
    for (int i = 1; i <= 20; ++i) {
        overlay.publish(fb(i, 7, static_cast<repsys::EntityId>(200 + i), true));
    }
    // Kill two of the three replicas (find them via the load vector).
    const auto loads = overlay.load();
    std::size_t killed = 0;
    for (std::size_t i = 0; i < loads.size() && killed < 2; ++i) {
        if (loads[i] > 0) {
            overlay.fail_node(i);
            ++killed;
        }
    }
    ASSERT_EQ(killed, 2u);
    EXPECT_EQ(overlay.lookup(7).size(), 20u);
}

TEST(Overlay, LosesDataWhenAllReplicasFail) {
    OverlayConfig config;
    config.nodes = 16;
    config.replication = 2;
    FeedbackOverlay overlay{config};
    overlay.publish(fb(1, 7, 100, true));
    std::size_t killed = 0;
    const auto loads = overlay.load();
    for (std::size_t i = 0; i < loads.size(); ++i) {
        if (loads[i] > 0) {
            overlay.fail_node(i);
            ++killed;
        }
    }
    ASSERT_EQ(killed, 2u);
    EXPECT_TRUE(overlay.lookup(7).empty());
    EXPECT_EQ(overlay.live_nodes(), 14u);
}

TEST(Overlay, NewPublishesLandOnSurvivors) {
    OverlayConfig config;
    config.nodes = 16;
    config.replication = 2;
    FeedbackOverlay overlay{config};
    overlay.publish(fb(1, 7, 100, true));
    const auto loads = overlay.load();
    for (std::size_t i = 0; i < loads.size(); ++i) {
        if (loads[i] > 0) overlay.fail_node(i);
    }
    // Re-publishing after total replica loss works and is retrievable.
    overlay.publish(fb(2, 7, 101, false));
    ASSERT_EQ(overlay.lookup(7).size(), 1u);
    EXPECT_EQ(overlay.lookup(7)[0].time, 2);
}

TEST(Overlay, RoutingHopsAreLogarithmic) {
    for (const std::size_t n : {16u, 64u, 256u, 1024u}) {
        OverlayConfig config;
        config.nodes = n;
        config.replication = 1;
        FeedbackOverlay overlay{config};
        stats::Rng rng{n};
        std::size_t worst = 0;
        for (int i = 0; i < 200; ++i) {
            (void)overlay.lookup(static_cast<repsys::EntityId>(rng()));
            worst = std::max(worst, overlay.last_hops());
        }
        // Greedy finger routing halves the remaining distance per hop.
        const auto bound = static_cast<std::size_t>(
            2.0 * std::log2(static_cast<double>(n)) + 4.0);
        EXPECT_LE(worst, bound) << "n=" << n;
    }
}

TEST(Overlay, LoadIsSpreadAcrossNodes) {
    OverlayConfig config;
    config.nodes = 64;
    config.replication = 1;
    FeedbackOverlay overlay{config};
    // 300 distinct servers, one feedback each.
    for (repsys::EntityId s = 1; s <= 300; ++s) {
        overlay.publish(fb(1, s, 1000 + s, true));
    }
    const auto loads = overlay.load();
    const std::size_t total = std::accumulate(loads.begin(), loads.end(), std::size_t{0});
    EXPECT_EQ(total, 300u);
    std::size_t busiest = 0;
    std::size_t occupied = 0;
    for (const std::size_t l : loads) {
        busiest = std::max(busiest, l);
        if (l > 0) ++occupied;
    }
    // Random ring placement is uneven but no node should hold a quarter
    // of everything, and a good fraction of nodes hold something.
    EXPECT_LT(busiest, 75u);
    EXPECT_GT(occupied, 16u);
}

TEST(Overlay, AnchorIsDeterministic) {
    const FeedbackOverlay a;
    const FeedbackOverlay b;
    EXPECT_EQ(a.anchor_of(42), b.anchor_of(42));
    EXPECT_NE(a.anchor_of(42), a.anchor_of(43));
}

TEST(Overlay, FailNodeIndexChecked) {
    FeedbackOverlay overlay;
    EXPECT_THROW(overlay.fail_node(10000), std::out_of_range);
}

TEST(Overlay, EndToEndWithBehaviorTesting) {
    // The full §2 story: feedbacks live in the overlay, a client fetches a
    // server's log and screens it.
    FeedbackOverlay overlay;
    stats::Rng rng{77};
    for (int i = 1; i <= 400; ++i) {
        overlay.publish(fb(i, 5, static_cast<repsys::EntityId>(100 + i % 30),
                           rng.bernoulli(0.92)));
    }
    const auto log = overlay.lookup(5);
    ASSERT_EQ(log.size(), 400u);
    const core::BehaviorTest tester;
    EXPECT_TRUE(tester.test(std::span<const repsys::Feedback>{log}).sufficient);
}

}  // namespace
}  // namespace hpr::sim
