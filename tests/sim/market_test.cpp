// Integration-style tests for the marketplace simulation (sim/market.h).

#include "sim/market.h"

#include <gtest/gtest.h>

namespace hpr::sim {
namespace {

std::shared_ptr<stats::Calibrator> shared_cal() {
    static auto cal = core::make_calibrator(core::BehaviorTestConfig{});
    return cal;
}

std::shared_ptr<const core::TwoPhaseAssessor> make_assessor(core::ScreeningMode mode) {
    core::TwoPhaseConfig config;
    config.mode = mode;
    // Marketplace clients assess servers hundreds of times on growing
    // histories; the family-wise correction keeps honest servers from
    // being ostracized by screening noise.
    config.test.bonferroni = true;
    return std::make_shared<const core::TwoPhaseAssessor>(
        config,
        std::shared_ptr<const repsys::TrustFunction>{
            repsys::make_trust_function("average")},
        shared_cal());
}

TEST(Strategy, HonestProbabilities) {
    stats::Rng rng{401};
    HonestStrategy always{1.0};
    HonestStrategy never{0.0};
    repsys::TransactionHistory h;
    EXPECT_TRUE(always.serve_well(0, h, rng));
    EXPECT_FALSE(never.serve_well(0, h, rng));
    EXPECT_THROW(HonestStrategy{1.5}, std::invalid_argument);
    EXPECT_NE(always.name().find("honest"), std::string::npos);
}

TEST(Strategy, PeriodicSchedule) {
    stats::Rng rng{402};
    PeriodicStrategy strategy{10, 2};
    repsys::TransactionHistory h;
    // First two of each block of 10 are bad.
    EXPECT_FALSE(strategy.serve_well(0, h, rng));
    EXPECT_FALSE(strategy.serve_well(1, h, rng));
    EXPECT_TRUE(strategy.serve_well(2, h, rng));
    EXPECT_FALSE(strategy.serve_well(10, h, rng));
    EXPECT_TRUE(strategy.serve_well(19, h, rng));
    EXPECT_THROW(PeriodicStrategy(0, 0), std::invalid_argument);
    EXPECT_THROW(PeriodicStrategy(5, 6), std::invalid_argument);
}

TEST(Strategy, HibernatingFlipsAfterPrep) {
    stats::Rng rng{403};
    HibernatingStrategy strategy{5, 1.0};
    repsys::TransactionHistory h;
    for (std::size_t i = 0; i < 5; ++i) EXPECT_TRUE(strategy.serve_well(i, h, rng));
    for (std::size_t i = 5; i < 10; ++i) EXPECT_FALSE(strategy.serve_well(i, h, rng));
}

TEST(Marketplace, RejectsNullArguments) {
    EXPECT_THROW(Marketplace(MarketConfig{}, nullptr), std::invalid_argument);
    Marketplace market{MarketConfig{}, make_assessor(core::ScreeningMode::kNone)};
    EXPECT_THROW(market.add_server(nullptr), std::invalid_argument);
    EXPECT_THROW(market.run(), std::logic_error);
}

TEST(Marketplace, HonestOnlyMarketServesEveryone) {
    MarketConfig config;
    config.steps = 300;
    config.trust_threshold = 0.8;
    Marketplace market{config, make_assessor(core::ScreeningMode::kMulti)};
    market.add_server(std::make_unique<HonestStrategy>(0.95));
    market.add_server(std::make_unique<HonestStrategy>(0.97));
    market.run();
    const auto reports = market.report();
    ASSERT_EQ(reports.size(), 2u);
    std::size_t total_tx = 0;
    for (const auto& [id, report] : reports) {
        EXPECT_FALSE(report.suspicious) << report.strategy;
        EXPECT_GT(report.final_trust, 0.85);
        total_tx += report.transactions;
    }
    // Bootstrap (2 * 60) plus served steps.
    EXPECT_EQ(total_tx, 2u * config.bootstrap_per_server + config.steps -
                            market.unserved_requests());
}

TEST(Marketplace, ScreeningCutsBadTransactions) {
    // The end-to-end claim of the paper: with behavior testing in the
    // loop, clients suffer fewer bad transactions from adaptive attackers
    // than with a plain trust function.
    const auto run_market = [&](core::ScreeningMode mode) {
        MarketConfig config;
        config.steps = 600;
        config.trust_threshold = 0.85;
        config.seed = 404;
        Marketplace market{config, make_assessor(mode)};
        market.add_server(std::make_unique<HonestStrategy>(0.95));
        market.add_server(std::make_unique<HonestStrategy>(0.93));
        // Hibernating attacker flips right after bootstrap.
        market.add_server(std::make_unique<HibernatingStrategy>(60, 0.96));
        market.run();
        return market.total_bad_suffered();
    };
    const std::size_t without = run_market(core::ScreeningMode::kNone);
    const std::size_t with_multi = run_market(core::ScreeningMode::kMulti);
    EXPECT_LT(with_multi, without);
}

TEST(Marketplace, SuspiciousServerStopsGettingPicked) {
    MarketConfig config;
    config.steps = 400;
    config.trust_threshold = 0.85;
    // A long bootstrap keeps the attacker's average trust above the
    // threshold through its attack burst, so the veto that stops it must
    // come from screening, not from the trust value.
    config.bootstrap_per_server = 200;
    config.seed = 405;
    Marketplace market{config, make_assessor(core::ScreeningMode::kMulti)};
    const auto honest_id = market.add_server(std::make_unique<HonestStrategy>(0.95));
    const auto attacker_id =
        market.add_server(std::make_unique<HibernatingStrategy>(200, 0.96));
    market.run();
    const auto reports = market.report();
    const auto& attacker = reports.at(attacker_id);
    const auto& honest = reports.at(honest_id);
    // Once the attacker turns, screening rejects it while the honest
    // server keeps transacting.
    EXPECT_GT(attacker.rejected_screen, 0u);
    EXPECT_GT(honest.transactions, attacker.transactions);
}

TEST(Marketplace, HistoryAccessorAndBounds) {
    MarketConfig config;
    config.steps = 50;
    Marketplace market{config, make_assessor(core::ScreeningMode::kNone)};
    const auto id = market.add_server(std::make_unique<HonestStrategy>(0.9));
    market.run();
    EXPECT_GE(market.history_of(id).size(), config.bootstrap_per_server);
    EXPECT_THROW((void)market.history_of(999), std::out_of_range);
}

TEST(Marketplace, ExplorationServesVetoedServers) {
    // With exploration, even a server every assessor rejects still gets
    // occasional traffic (and with it, the chance to clear its record).
    const auto run_with = [&](double exploration) {
        MarketConfig config;
        config.steps = 800;
        config.trust_threshold = 0.99;  // nobody passes the threshold
        config.exploration = exploration;
        config.bootstrap_per_server = 40;
        config.seed = 408;
        Marketplace market{config, make_assessor(core::ScreeningMode::kNone)};
        const auto id = market.add_server(std::make_unique<HonestStrategy>(0.9));
        market.run();
        return market.history_of(id).size();
    };
    const std::size_t without = run_with(0.0);
    const std::size_t with = run_with(0.1);
    EXPECT_EQ(without, 40u);  // bootstrap only; every request unserved
    EXPECT_GT(with, 60u);     // explorers kept transacting
}

TEST(Marketplace, ExplorationZeroMatchesLegacyBehavior) {
    MarketConfig config;
    config.steps = 300;
    config.seed = 409;
    ASSERT_EQ(config.exploration, 0.0);  // default stays off
    Marketplace market{config, make_assessor(core::ScreeningMode::kNone)};
    market.add_server(std::make_unique<HonestStrategy>(0.95));
    market.run();
    EXPECT_GT(market.history_of(1).size(), config.bootstrap_per_server);
}

TEST(Strategy, StrategicAttackerUsesTheDefense) {
    const auto assessor = make_assessor(core::ScreeningMode::kMulti);
    StrategicStrategy strategy{assessor, 0.85};
    EXPECT_THROW(StrategicStrategy(nullptr, 0.9), std::invalid_argument);
    stats::Rng rng{412};

    // On an empty history the victim would not accept (prior 0.5 < 0.85):
    // the strategic attacker serves well instead.
    repsys::TransactionHistory history;
    EXPECT_TRUE(strategy.serve_well(0, history, rng));
    EXPECT_EQ(strategy.attacks_landed(), 0u);

    // With a long honest record and headroom, it cheats.
    for (int i = 0; i < 400; ++i) {
        history.append(1, static_cast<repsys::EntityId>(100 + i % 20),
                       rng.bernoulli(0.95) ? repsys::Rating::kPositive
                                           : repsys::Rating::kNegative);
    }
    int cheats = 0;
    for (int i = 0; i < 40; ++i) {
        const bool good = strategy.serve_well(history.size(), history, rng);
        history.append(1, static_cast<repsys::EntityId>(200 + i),
                       good ? repsys::Rating::kPositive : repsys::Rating::kNegative);
        if (!good) {
            ++cheats;
            // The defining property: a cheat never leaves the history in a
            // state the defense it consulted would flag.
            ASSERT_TRUE(assessor->screen(history.view()).passed) << "step " << i;
        }
    }
    EXPECT_GT(cheats, 0);
    EXPECT_EQ(strategy.attacks_landed(), static_cast<std::size_t>(cheats));
}

TEST(Marketplace, StrategicAttackerConvergesToThresholdRate) {
    // Against the average trust function the informed attacker's
    // steady-state bad rate is pinned at ~(1 - threshold): it cheats the
    // moment the ratio allows and never beyond.  This is the "forced to
    // behave like an honest player" equilibrium of §5 — screening can
    // only push the rate further down, never up.
    const auto bad_ratio = [&](core::ScreeningMode mode) {
        const auto assessor = make_assessor(mode);
        MarketConfig config;
        config.steps = 600;
        config.trust_threshold = 0.85;
        config.bootstrap_per_server = 150;
        config.seed = 413;
        Marketplace market{config, assessor};
        market.add_server(std::make_unique<HonestStrategy>(0.95));
        const auto id = market.add_server(
            std::make_unique<StrategicStrategy>(assessor, 0.85));
        market.run();
        const auto report = market.report().at(id);
        return static_cast<double>(report.bad_served) /
               static_cast<double>(report.transactions);
    };
    const double unscreened = bad_ratio(core::ScreeningMode::kNone);
    EXPECT_GT(unscreened, 0.10);
    EXPECT_LT(unscreened, 0.16);  // ~= 1 - 0.85 plus rounding slack
    const double screened = bad_ratio(core::ScreeningMode::kMulti);
    EXPECT_LT(screened, unscreened + 0.02);
}

TEST(Strategy, WhitewashCyclesIdentities) {
    WhitewashStrategy strategy{5, 2, 1.0};
    stats::Rng rng{410};
    repsys::TransactionHistory h;
    // Honest for 5 transactions, bad for the next 2, then reset.
    for (std::size_t i = 0; i < 5; ++i) EXPECT_TRUE(strategy.serve_well(i, h, rng));
    EXPECT_FALSE(strategy.serve_well(5, h, rng));
    for (int i = 0; i < 6; ++i) h.append(1, 2, repsys::Rating::kPositive);
    EXPECT_FALSE(strategy.reset_identity(h));  // budget not spent yet
    h.append(1, 2, repsys::Rating::kNegative);
    EXPECT_TRUE(strategy.reset_identity(h));   // 7 = prep + attacks
    EXPECT_EQ(strategy.identities_used(), 1u);
    EXPECT_THROW(WhitewashStrategy(5, 0, 1.0), std::invalid_argument);
}

TEST(Marketplace, WhitewasherEvadesScreeningButNotNewcomerPolicy) {
    const auto run_with = [&](NewcomerPolicy policy) {
        MarketConfig config;
        config.steps = 600;
        config.trust_threshold = 0.85;
        config.bootstrap_per_server = 40;
        config.newcomer_policy = policy;
        // Without explorers a reset identity would never transact at all;
        // with them, fresh identities can rebuild — if clients let them.
        config.exploration = 0.1;
        config.seed = 411;
        Marketplace market{config, make_assessor(core::ScreeningMode::kMulti)};
        market.add_server(std::make_unique<HonestStrategy>(0.95));
        // Short con: 35 honest transactions, 5 cheats, new identity —
        // never enough history for screening to bite.
        const auto ww_id =
            market.add_server(std::make_unique<WhitewashStrategy>(35, 5, 0.96));
        market.run();
        return std::make_pair(market.report().at(ww_id).bad_served,
                              market.report().at(ww_id));
    };
    const auto [bad_lenient, report_lenient] = run_with(NewcomerPolicy::kTrustValue);
    const auto [bad_strict, report_strict] = run_with(NewcomerPolicy::kReject);
    // Lenient clients keep feeding fresh identities; the strict policy
    // starves them (they only see exploration-free bootstrap traffic).
    EXPECT_GT(report_lenient.identity_resets, 0u);
    EXPECT_LT(bad_strict, bad_lenient);
    EXPECT_GT(report_strict.rejected_newcomer, 0u);
}

TEST(Marketplace, DeterministicPerSeed) {
    const auto run_once = [&] {
        MarketConfig config;
        config.steps = 200;
        config.seed = 406;
        Marketplace market{config, make_assessor(core::ScreeningMode::kMulti)};
        market.add_server(std::make_unique<HonestStrategy>(0.9));
        market.add_server(std::make_unique<PeriodicStrategy>(10, 1));
        market.run();
        return market.total_bad_suffered();
    };
    EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace hpr::sim
