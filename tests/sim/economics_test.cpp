// Unit tests for attack economics (sim/economics.h).

#include "sim/economics.h"

#include <gtest/gtest.h>

#include <limits>

namespace hpr::sim {
namespace {

TEST(Economics, CampaignProfitArithmetic) {
    AttackEconomics e;
    e.join_cost = 5.0;
    e.good_service_cost = 2.0;
    e.fake_feedback_cost = 0.5;
    e.attack_gain = 10.0;
    // 3 attacks, 4 goods, 2 fakes: 30 - 8 - 1 - 5 = 16.
    EXPECT_NEAR(campaign_profit(e, 3, 4, 2), 16.0, 1e-12);
    EXPECT_NEAR(campaign_profit(e, 0, 0, 0), -5.0, 1e-12);
}

TEST(Economics, CheatAndRunIsOneAttack) {
    AttackEconomics e;
    e.join_cost = 1.0;
    e.good_service_cost = 1.0;
    e.attack_gain = 10.0;
    EXPECT_NEAR(cheat_and_run_profit(e, 4), 10.0 - 4.0 - 1.0, 1e-12);
}

TEST(Economics, DeterrentJoinCostNeutralizesProfit) {
    AttackEconomics e;
    e.good_service_cost = 1.0;
    e.attack_gain = 10.0;
    const double deterrent = deterrent_join_cost(e, 4);
    EXPECT_NEAR(deterrent, 6.0, 1e-12);
    e.join_cost = deterrent;
    EXPECT_LE(cheat_and_run_profit(e, 4), 0.0);
}

TEST(Economics, DeterrentIsZeroWhenPrepAlreadyTooExpensive) {
    AttackEconomics e;
    e.good_service_cost = 3.0;
    e.attack_gain = 10.0;
    EXPECT_EQ(deterrent_join_cost(e, 5), 0.0);  // 15 > 10: never profitable
}

TEST(Economics, BreakEvenAttackCount) {
    AttackEconomics e;
    e.join_cost = 5.0;
    e.good_service_cost = 1.0;
    e.attack_gain = 10.0;
    // Expenses 45 + 5 = 50 -> 5 attacks break even.
    EXPECT_EQ(break_even_attacks(e, 45), 5u);
    EXPECT_EQ(break_even_attacks(e, 0), 1u);  // join cost alone
    e.join_cost = 0.0;
    EXPECT_EQ(break_even_attacks(e, 0), 0u);
}

TEST(Economics, BreakEvenNeverWithoutGain) {
    AttackEconomics e;
    e.attack_gain = 0.0;
    EXPECT_EQ(break_even_attacks(e, 10),
              std::numeric_limits<std::size_t>::max());
}

TEST(Economics, DefenseRaisesBreakEvenPoint) {
    // The economic meaning of Figs. 3-6: screening multiplies the goods an
    // attacker must fund, pushing the break-even attack count up.
    AttackEconomics e;
    e.good_service_cost = 1.0;
    e.attack_gain = 3.0;
    const std::size_t undefended = break_even_attacks(e, 0);
    const std::size_t scheme1 = break_even_attacks(e, 18);   // measured Fig. 3 scale
    const std::size_t scheme2 = break_even_attacks(e, 50);
    EXPECT_LT(undefended, scheme1);
    EXPECT_LT(scheme1, scheme2);
    EXPECT_GE(scheme2, 17u);  // 50/3 rounded up
}

}  // namespace
}  // namespace hpr::sim
