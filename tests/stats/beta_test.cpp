// Unit tests for the Beta distribution (stats/beta.h).

#include "stats/beta.h"

#include "stats/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

namespace hpr::stats {
namespace {

TEST(LogBeta, KnownValues) {
    // B(1, 1) = 1, B(2, 3) = 1/12, B(0.5, 0.5) = pi.
    EXPECT_NEAR(std::exp(log_beta(1.0, 1.0)), 1.0, 1e-12);
    EXPECT_NEAR(std::exp(log_beta(2.0, 3.0)), 1.0 / 12.0, 1e-12);
    EXPECT_NEAR(std::exp(log_beta(0.5, 0.5)), M_PI, 1e-9);
}

TEST(RegIncompleteBeta, Boundaries) {
    EXPECT_EQ(reg_incomplete_beta(2.0, 3.0, 0.0), 0.0);
    EXPECT_EQ(reg_incomplete_beta(2.0, 3.0, 1.0), 1.0);
    EXPECT_EQ(reg_incomplete_beta(2.0, 3.0, -0.5), 0.0);
    EXPECT_EQ(reg_incomplete_beta(2.0, 3.0, 1.5), 1.0);
}

TEST(RegIncompleteBeta, UniformSpecialCase) {
    // I_x(1, 1) = x.
    for (double x : {0.1, 0.25, 0.5, 0.75, 0.9}) {
        EXPECT_NEAR(reg_incomplete_beta(1.0, 1.0, x), x, 1e-12);
    }
}

TEST(RegIncompleteBeta, SymmetryRelation) {
    // I_x(a, b) = 1 - I_{1-x}(b, a).
    for (double x : {0.05, 0.3, 0.5, 0.8, 0.95}) {
        EXPECT_NEAR(reg_incomplete_beta(2.5, 4.0, x),
                    1.0 - reg_incomplete_beta(4.0, 2.5, 1.0 - x), 1e-10);
    }
}

TEST(RegIncompleteBeta, BinomialIdentity) {
    // P(Bin(n, p) >= k) = I_p(k, n - k + 1).
    const double p = 0.6;
    const int n = 10;
    const int k = 7;
    double tail = 0.0;
    for (int j = k; j <= n; ++j) {
        tail += std::exp(std::lgamma(n + 1.0) - std::lgamma(j + 1.0) -
                         std::lgamma(n - j + 1.0)) *
                std::pow(p, j) * std::pow(1 - p, n - j);
    }
    EXPECT_NEAR(reg_incomplete_beta(k, n - k + 1.0, p), tail, 1e-10);
}

TEST(Beta, RejectsNonPositiveShapes) {
    EXPECT_THROW(Beta(0.0, 1.0), std::invalid_argument);
    EXPECT_THROW(Beta(1.0, -2.0), std::invalid_argument);
}

TEST(Beta, MeanAndVariance) {
    const Beta b{3.0, 7.0};
    EXPECT_NEAR(b.mean(), 0.3, 1e-12);
    EXPECT_NEAR(b.variance(), 3.0 * 7.0 / (100.0 * 11.0), 1e-12);
}

TEST(Beta, PdfIntegratesToOne) {
    const Beta b{2.5, 4.5};
    // Simpson's rule over [0, 1].
    constexpr int kIntervals = 2000;
    double integral = 0.0;
    const double h = 1.0 / kIntervals;
    for (int i = 0; i < kIntervals; ++i) {
        const double x0 = i * h;
        const double x1 = x0 + h;
        integral += (b.pdf(x0) + 4.0 * b.pdf(0.5 * (x0 + x1)) + b.pdf(x1)) * h / 6.0;
    }
    EXPECT_NEAR(integral, 1.0, 1e-6);
}

TEST(Beta, PdfOutsideSupportIsZero) {
    const Beta b{2.0, 2.0};
    EXPECT_EQ(b.pdf(-0.1), 0.0);
    EXPECT_EQ(b.pdf(1.1), 0.0);
}

class BetaQuantileProperty
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(BetaQuantileProperty, QuantileInvertsCdf) {
    const auto [a, b_param] = GetParam();
    const Beta b{a, b_param};
    for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
        const double x = b.quantile(q);
        EXPECT_NEAR(b.cdf(x), q, 1e-9) << "a=" << a << " b=" << b_param << " q=" << q;
    }
    EXPECT_EQ(b.quantile(0.0), 0.0);
    EXPECT_EQ(b.quantile(1.0), 1.0);
}

TEST_P(BetaQuantileProperty, CdfIsMonotone) {
    const auto [a, b_param] = GetParam();
    const Beta b{a, b_param};
    double prev = 0.0;
    for (int i = 1; i <= 20; ++i) {
        const double x = i / 20.0;
        const double c = b.cdf(x);
        EXPECT_GE(c + 1e-12, prev);
        prev = c;
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BetaQuantileProperty,
                         ::testing::Values(std::make_tuple(1.0, 1.0),
                                           std::make_tuple(2.0, 5.0),
                                           std::make_tuple(5.0, 2.0),
                                           std::make_tuple(0.5, 0.5),
                                           std::make_tuple(20.0, 3.0)));

TEST(Beta, QuantileRejectsOutOfRange) {
    const Beta b{2.0, 2.0};
    EXPECT_THROW((void)b.quantile(-0.1), std::invalid_argument);
    EXPECT_THROW((void)b.quantile(1.1), std::invalid_argument);
}

TEST(ClopperPearson, RejectsBadArguments) {
    EXPECT_THROW((void)clopper_pearson(1, 0), std::invalid_argument);
    EXPECT_THROW((void)clopper_pearson(5, 4), std::invalid_argument);
    EXPECT_THROW((void)clopper_pearson(1, 10, 0.0), std::invalid_argument);
    EXPECT_THROW((void)clopper_pearson(1, 10, 1.0), std::invalid_argument);
}

TEST(ClopperPearson, DegenerateCounts) {
    const Interval none = clopper_pearson(0, 20);
    EXPECT_EQ(none.lower, 0.0);
    EXPECT_GT(none.upper, 0.0);
    EXPECT_LT(none.upper, 0.35);
    const Interval all = clopper_pearson(20, 20);
    EXPECT_EQ(all.upper, 1.0);
    EXPECT_GT(all.lower, 0.65);
}

TEST(ClopperPearson, KnownTextbookValue) {
    // 8 successes in 10 trials at 95%: [0.4439, 0.9748] (standard tables).
    const Interval i = clopper_pearson(8, 10);
    EXPECT_NEAR(i.lower, 0.4439, 5e-4);
    EXPECT_NEAR(i.upper, 0.9748, 5e-4);
    EXPECT_TRUE(i.contains(0.8));
}

TEST(ClopperPearson, IntervalShrinksWithSampleSize) {
    const Interval small = clopper_pearson(9, 10);
    const Interval large = clopper_pearson(900, 1000);
    EXPECT_LT(large.width(), small.width());
    EXPECT_TRUE(large.contains(0.9));
}

TEST(ClopperPearson, HigherConfidenceWidens) {
    const Interval at90 = clopper_pearson(45, 50, 0.90);
    const Interval at99 = clopper_pearson(45, 50, 0.99);
    EXPECT_LT(at90.width(), at99.width());
    EXPECT_LE(at99.lower, at90.lower);
    EXPECT_GE(at99.upper, at90.upper);
}

TEST(ClopperPearson, EmpiricalCoverageIsConservative) {
    // Exact interval: coverage must be >= nominal for any p.
    Rng rng{222};
    const double p = 0.9;
    constexpr int kTrials = 400;
    int covered = 0;
    for (int t = 0; t < kTrials; ++t) {
        std::uint64_t successes = 0;
        constexpr std::uint64_t n = 60;
        for (std::uint64_t i = 0; i < n; ++i) {
            if (rng.bernoulli(p)) ++successes;
        }
        if (clopper_pearson(successes, n).contains(p)) ++covered;
    }
    EXPECT_GE(static_cast<double>(covered) / kTrials, 0.93);
}

TEST(Beta, PosteriorMeanMatchesBetaTrustSemantics) {
    // Beta reputation: g positive, b negative -> Beta(g+1, b+1).
    const Beta posterior{95.0 + 1.0, 5.0 + 1.0};
    EXPECT_NEAR(posterior.mean(), 96.0 / 102.0, 1e-12);
}

}  // namespace
}  // namespace hpr::stats
