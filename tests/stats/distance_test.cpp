// Unit tests for distribution distances (stats/distance.h).

#include "stats/distance.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace hpr::stats {
namespace {

const std::vector<double> kUniform4{0.25, 0.25, 0.25, 0.25};
const std::vector<double> kPoint4{1.0, 0.0, 0.0, 0.0};

TEST(Distance, ToStringNames) {
    EXPECT_STREQ(to_string(DistanceKind::kL1), "L1");
    EXPECT_STREQ(to_string(DistanceKind::kL2), "L2");
    EXPECT_STREQ(to_string(DistanceKind::kTotalVariation), "TV");
    EXPECT_STREQ(to_string(DistanceKind::kChiSquare), "ChiSquare");
    EXPECT_STREQ(to_string(DistanceKind::kKolmogorovSmirnov), "KS");
}

TEST(Distance, IdenticalDistributionsAreAtZero) {
    for (auto kind : {DistanceKind::kL1, DistanceKind::kL2,
                      DistanceKind::kTotalVariation, DistanceKind::kChiSquare,
                      DistanceKind::kKolmogorovSmirnov}) {
        EXPECT_EQ(distance(kUniform4, kUniform4, kind), 0.0)
            << to_string(kind);
    }
}

TEST(Distance, LengthMismatchThrows) {
    const std::vector<double> three{0.5, 0.25, 0.25};
    EXPECT_THROW((void)distance(kUniform4, three, DistanceKind::kL1),
                 std::invalid_argument);
}

TEST(Distance, KnownL1Value) {
    // |1 - .25| + 3 * |.25| = 1.5
    EXPECT_NEAR(distance(kPoint4, kUniform4, DistanceKind::kL1), 1.5, 1e-12);
}

TEST(Distance, KnownL2Value) {
    EXPECT_NEAR(distance(kPoint4, kUniform4, DistanceKind::kL2),
                std::sqrt(0.75 * 0.75 + 3 * 0.0625), 1e-12);
}

TEST(Distance, TotalVariationIsHalfL1) {
    EXPECT_NEAR(distance(kPoint4, kUniform4, DistanceKind::kTotalVariation),
                0.5 * distance(kPoint4, kUniform4, DistanceKind::kL1), 1e-12);
}

TEST(Distance, KnownKsValue) {
    // CDFs: point (1,1,1,1), uniform (.25,.5,.75,1) -> max gap .75.
    EXPECT_NEAR(distance(kPoint4, kUniform4, DistanceKind::kKolmogorovSmirnov),
                0.75, 1e-12);
}

TEST(Distance, ChiSquarePenalizesImpossibleOutcomes) {
    const std::vector<double> impossible{0.5, 0.5, 0.0};
    const std::vector<double> reference{0.5, 0.0, 0.5};
    EXPECT_GT(distance(impossible, reference, DistanceKind::kChiSquare), 1e6);
}

TEST(Distance, SymmetricKinds) {
    const std::vector<double> a{0.7, 0.2, 0.1};
    const std::vector<double> b{0.3, 0.3, 0.4};
    for (auto kind : {DistanceKind::kL1, DistanceKind::kL2,
                      DistanceKind::kTotalVariation,
                      DistanceKind::kKolmogorovSmirnov}) {
        EXPECT_NEAR(distance(a, b, kind), distance(b, a, kind), 1e-12)
            << to_string(kind);
    }
}

TEST(Distance, L1BoundedByTwo) {
    EXPECT_LE(distance(kPoint4, std::vector<double>{0.0, 0.0, 0.0, 1.0},
                       DistanceKind::kL1),
              2.0 + 1e-12);
}

TEST(Distance, EmpiricalL1MatchesPmfTablePath) {
    const EmpiricalDistribution empirical{3, {0, 0, 1, 3}};
    const std::vector<double> reference{0.25, 0.25, 0.25, 0.25};
    const double fast = l1_distance(empirical, reference);
    const double generic = distance(empirical.pmf_table(), reference,
                                    DistanceKind::kL1);
    EXPECT_NEAR(fast, generic, 1e-12);
}

TEST(Distance, EmpiricalSupportMismatchThrows) {
    const EmpiricalDistribution empirical{3, {0, 1}};
    const std::vector<double> reference{0.5, 0.5};
    EXPECT_THROW((void)l1_distance(empirical, reference), std::invalid_argument);
}

TEST(Distance, EmptyEmpiricalHasMaximalL1) {
    const EmpiricalDistribution empty{3};
    const std::vector<double> reference{0.25, 0.25, 0.25, 0.25};
    EXPECT_EQ(l1_distance(empty, reference), 2.0);
}

TEST(Distance, AgainstBinomialReference) {
    const Binomial b{3, 0.5};
    // Empirical exactly matching the binomial pmf in proportions 1:3:3:1.
    const EmpiricalDistribution empirical{3, {0, 1, 1, 1, 2, 2, 2, 3}};
    EXPECT_NEAR(distance(empirical, b, DistanceKind::kL1), 0.0, 1e-12);
}

TEST(Distance, GenericEmpiricalOverloadUsesKind) {
    const EmpiricalDistribution empirical{2, {0, 2}};
    const std::vector<double> reference{0.5, 0.0, 0.5};
    EXPECT_NEAR(distance(empirical, reference, DistanceKind::kKolmogorovSmirnov),
                0.0, 1e-12);
    EXPECT_NEAR(distance(empirical, reference, DistanceKind::kL1), 0.0, 1e-12);
}

}  // namespace
}  // namespace hpr::stats
