// Unit tests for concentration bounds (stats/bounds.h) — the explicit
// form of the paper's Lemma 3.1.

#include "stats/bounds.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/rng.h"

namespace hpr::stats {
namespace {

TEST(Bounds, HoeffdingRejectsBadArguments) {
    EXPECT_THROW((void)hoeffding_bound(0, 0.1), std::invalid_argument);
    EXPECT_THROW((void)hoeffding_bound(10, 0.0), std::invalid_argument);
    EXPECT_THROW((void)hoeffding_bound(10, -0.5), std::invalid_argument);
}

TEST(Bounds, HoeffdingKnownValueAndClamp) {
    // 2 exp(-2 * 100 * 0.1^2) = 2 exp(-2) ~= 0.2707.
    EXPECT_NEAR(hoeffding_bound(100, 0.1), 2.0 * std::exp(-2.0), 1e-12);
    // Tiny n / epsilon: the probability bound is clamped at 1.
    EXPECT_EQ(hoeffding_bound(1, 0.01), 1.0);
}

TEST(Bounds, HoeffdingDecreasesInNAndEpsilon) {
    EXPECT_GT(hoeffding_bound(100, 0.05), hoeffding_bound(1000, 0.05));
    EXPECT_GT(hoeffding_bound(1000, 0.02), hoeffding_bound(1000, 0.05));
}

TEST(Bounds, Lemma31MinHistorySatisfiesTheBound) {
    for (const double epsilon : {0.01, 0.05, 0.1}) {
        for (const double delta : {0.01, 0.05, 0.2}) {
            const std::uint64_t n = lemma31_min_history(epsilon, delta);
            EXPECT_LE(hoeffding_bound(n, epsilon), delta + 1e-12)
                << "eps=" << epsilon << " delta=" << delta;
            if (n > 1) {
                EXPECT_GT(hoeffding_bound(n - 1, epsilon), delta - 1e-9);
            }
        }
    }
}

TEST(Bounds, Lemma31KnownValue) {
    // ln(2/0.05) / (2 * 0.05^2) = ln(40)/0.005 ~= 737.8 -> 738.
    EXPECT_EQ(lemma31_min_history(0.05, 0.05), 738u);
    EXPECT_THROW((void)lemma31_min_history(0.0, 0.05), std::invalid_argument);
    EXPECT_THROW((void)lemma31_min_history(0.1, 0.0), std::invalid_argument);
    EXPECT_THROW((void)lemma31_min_history(0.1, 1.0), std::invalid_argument);
}

TEST(Bounds, EmpiricalDeviationRateIsWithinTheBound) {
    // Monte-Carlo check of the lemma: with n = lemma31_min_history(eps,
    // delta) Bernoulli trials, |p̂ - p| >= eps happens less often than
    // delta (usually far less; Hoeffding is loose).
    constexpr double kEpsilon = 0.05;
    constexpr double kDelta = 0.1;
    const std::uint64_t n = lemma31_min_history(kEpsilon, kDelta);
    Rng rng{321};
    constexpr int kTrials = 300;
    int deviations = 0;
    for (int t = 0; t < kTrials; ++t) {
        const double p = 0.9;
        std::uint64_t good = 0;
        for (std::uint64_t i = 0; i < n; ++i) {
            if (rng.bernoulli(p)) ++good;
        }
        const double p_hat = static_cast<double>(good) / static_cast<double>(n);
        if (std::fabs(p_hat - p) >= kEpsilon) ++deviations;
    }
    EXPECT_LT(static_cast<double>(deviations) / kTrials, kDelta);
}

}  // namespace
}  // namespace hpr::stats
