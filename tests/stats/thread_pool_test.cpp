// Unit tests for the worker pool behind parallel calibration
// (stats/thread_pool.h).

#include "stats/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace hpr::stats {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
    ThreadPool pool{3};
    EXPECT_EQ(pool.workers(), 3u);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
    ThreadPool pool{0};
    EXPECT_EQ(pool.workers(), 0u);
    std::vector<int> hits(64, 0);
    pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i] = 1; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 64);
}

TEST(ThreadPool, EmptyLoopIsANoop) {
    ThreadPool pool{2};
    pool.parallel_for(0, [](std::size_t) { FAIL() << "body must not run"; });
}

TEST(ThreadPool, PropagatesFirstException) {
    ThreadPool pool{2};
    std::atomic<int> ran{0};
    EXPECT_THROW(pool.parallel_for(100,
                                   [&](std::size_t i) {
                                       ++ran;
                                       if (i == 3) throw std::runtime_error("boom");
                                   }),
                 std::runtime_error);
    // Remaining indices are abandoned once poisoned, so not all 100 ran
    // (the thrower itself did).
    EXPECT_GE(ran.load(), 1);
    // The pool survives a failed job and keeps serving.
    std::atomic<int> after{0};
    pool.parallel_for(10, [&](std::size_t) { ++after; });
    EXPECT_EQ(after.load(), 10);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
    // precalibrate fans keys across the pool and each key fans its
    // replication chunks across the SAME pool; the caller-participates
    // design must make progress even when every worker is occupied.
    ThreadPool pool{2};
    std::atomic<int> leaves{0};
    pool.parallel_for(8, [&](std::size_t) {
        pool.parallel_for(8, [&](std::size_t) { ++leaves; });
    });
    EXPECT_EQ(leaves.load(), 64);
}

TEST(ThreadPool, ConcurrentJobsFromManyThreads) {
    ThreadPool pool{3};
    std::atomic<int> total{0};
    std::vector<std::thread> callers;
    callers.reserve(4);
    for (int t = 0; t < 4; ++t) {
        callers.emplace_back([&] {
            for (int round = 0; round < 5; ++round) {
                pool.parallel_for(50, [&](std::size_t) { ++total; });
            }
        });
    }
    for (auto& caller : callers) caller.join();
    EXPECT_EQ(total.load(), 4 * 5 * 50);
}

}  // namespace
}  // namespace hpr::stats
