// Unit tests for the shared reference-model cache
// (stats/reference_cache.h): exact-rational keying, bit-identity with
// fresh construction, the LRU capacity bound, and the stats snapshot.

#include "stats/reference_cache.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

namespace hpr::stats {
namespace {

TEST(ReferenceModelCache, RejectsGoodAboveTotal) {
    ReferenceModelCache cache;
    EXPECT_THROW((void)cache.reference(10, 11, 10), std::invalid_argument);
}

TEST(ReferenceModelCache, EmptyHistoryIsDegenerateZero) {
    ReferenceModelCache cache;
    const auto model = cache.reference(10, 0, 0);
    ASSERT_NE(model, nullptr);
    EXPECT_EQ(model->p(), 0.0);
    EXPECT_EQ(model->pmf(0), 1.0);
}

TEST(ReferenceModelCache, ExactRationalKeyingCollapsesEquivalentFractions) {
    ReferenceModelCache cache;
    // 2/4, 1/2 and 500/1000 are the same rational: one construction, and
    // every caller shares the identical model object.
    const auto a = cache.reference(10, 2, 4);
    const auto b = cache.reference(10, 1, 2);
    const auto c = cache.reference(10, 500, 1000);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(a.get(), c.get());
    const auto stats = cache.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 2u);
    EXPECT_EQ(stats.entries, 1u);
}

TEST(ReferenceModelCache, DistinctWindowSizesAreDistinctKeys) {
    ReferenceModelCache cache;
    const auto a = cache.reference(10, 1, 2);
    const auto b = cache.reference(20, 1, 2);
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(a->n(), 10u);
    EXPECT_EQ(b->n(), 20u);
    EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(ReferenceModelCache, BitIdenticalToFreshConstruction) {
    ReferenceModelCache cache;
    const struct {
        std::uint32_t m;
        std::uint64_t good, total;
    } cases[] = {
        {10, 37, 40},   {10, 40, 40},  {10, 0, 40},  {10, 271, 400},
        {20, 333, 360}, {5, 999, 1000}, {10, 1, 3},   {10, 123456789, 987654321},
    };
    for (const auto& c : cases) {
        const auto cached = cache.reference(c.m, c.good, c.total);
        const Binomial fresh{
            c.m, static_cast<double>(c.good) / static_cast<double>(c.total)};
        // The guarantee is bit-identity, so compare with exact equality.
        ASSERT_EQ(cached->p(), fresh.p()) << c.good << "/" << c.total;
        const auto& lhs = cached->pmf_table();
        const auto& rhs = fresh.pmf_table();
        ASSERT_EQ(lhs.size(), rhs.size());
        for (std::size_t k = 0; k < lhs.size(); ++k) {
            ASSERT_EQ(lhs[k], rhs[k]) << "pmf[" << k << "] of " << c.good << "/"
                                      << c.total;
        }
        for (std::uint32_t k = 0; k <= c.m; ++k) {
            ASSERT_EQ(cached->cdf(k), fresh.cdf(k));
            ASSERT_EQ(cached->survival(k), fresh.survival(k));
        }
    }
}

TEST(ReferenceModelCache, CapacityBoundHoldsUnderThrash) {
    ReferenceModelCache cache{8};
    EXPECT_EQ(cache.capacity(), 8u);
    for (std::uint64_t good = 0; good <= 100; ++good) {
        (void)cache.reference(10, good, 101);  // 101 is prime: no collapsing
    }
    const auto stats = cache.stats();
    EXPECT_LE(stats.entries, 8u);
    EXPECT_EQ(stats.misses, 101u);
    EXPECT_EQ(stats.misses - stats.entries, stats.evictions);
}

TEST(ReferenceModelCache, RecentlyUsedSurvivesEviction) {
    ReferenceModelCache cache{8};
    const auto pinned = cache.reference(10, 1, 101);
    for (std::uint64_t good = 2; good <= 8; ++good) {
        (void)cache.reference(10, good, 101);  // fill to capacity
    }
    (void)cache.reference(10, 1, 101);  // touch: now the most recent entry
    const auto before = cache.stats();
    (void)cache.reference(10, 9, 101);  // overflow triggers eviction
    EXPECT_GE(cache.stats().evictions, 1u);
    const auto again = cache.reference(10, 1, 101);
    EXPECT_EQ(again.get(), pinned.get());  // survived: still the same entry
    EXPECT_EQ(cache.stats().hits, before.hits + 1);
}

TEST(ReferenceModelCache, EvictedModelsOutliveTheirSlot) {
    ReferenceModelCache cache{2};
    const auto model = cache.reference(10, 1, 101);
    for (std::uint64_t good = 2; good <= 20; ++good) {
        (void)cache.reference(10, good, 101);
    }
    // The handle taken before eviction still reads correctly.
    EXPECT_EQ(model->n(), 10u);
    EXPECT_EQ(model->p(), 1.0 / 101.0);
}

TEST(ReferenceModelCache, ClearDropsEntriesButKeepsHandles) {
    ReferenceModelCache cache;
    const auto model = cache.reference(10, 9, 10);
    cache.clear();
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(model->p(), 0.9);
    (void)cache.reference(10, 9, 10);
    EXPECT_EQ(cache.stats().misses, 2u);  // re-fetch after clear is cold
}

TEST(ReferenceModelCache, StatsLookupsAddUp) {
    ReferenceModelCache cache{16};
    std::size_t lookups = 0;
    for (int round = 0; round < 3; ++round) {
        for (std::uint64_t good = 0; good <= 10; ++good) {
            (void)cache.reference(10, good, 11);
            ++lookups;
        }
    }
    const auto stats = cache.stats();
    EXPECT_EQ(stats.hits + stats.misses + stats.single_flight_joins, lookups);
    EXPECT_EQ(stats.in_flight, 0u);
}

TEST(ReferenceModelCache, ProcessWideIsASingleton) {
    EXPECT_EQ(&ReferenceModelCache::process_wide(),
              &ReferenceModelCache::process_wide());
}

}  // namespace
}  // namespace hpr::stats
