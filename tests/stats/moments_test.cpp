// Unit tests for RunningMoments (stats/moments.h).

#include "stats/moments.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace hpr::stats {
namespace {

TEST(RunningMoments, EmptyStateIsNeutral) {
    const RunningMoments m;
    EXPECT_EQ(m.count(), 0u);
    EXPECT_EQ(m.mean(), 0.0);
    EXPECT_EQ(m.variance(), 0.0);
    EXPECT_EQ(m.std_error(), 0.0);
}

TEST(RunningMoments, SingleValue) {
    RunningMoments m;
    m.add(3.5);
    EXPECT_EQ(m.count(), 1u);
    EXPECT_EQ(m.mean(), 3.5);
    EXPECT_EQ(m.variance(), 0.0);
    EXPECT_EQ(m.min(), 3.5);
    EXPECT_EQ(m.max(), 3.5);
}

TEST(RunningMoments, MatchesDirectComputation) {
    const std::vector<double> values{1.0, 4.0, 4.0, 6.0, 10.0, -2.0};
    RunningMoments m;
    for (double v : values) m.add(v);

    double mean = 0.0;
    for (double v : values) mean += v;
    mean /= static_cast<double>(values.size());
    double var = 0.0;
    for (double v : values) var += (v - mean) * (v - mean);
    var /= static_cast<double>(values.size() - 1);

    EXPECT_NEAR(m.mean(), mean, 1e-12);
    EXPECT_NEAR(m.variance(), var, 1e-12);
    EXPECT_NEAR(m.stddev(), std::sqrt(var), 1e-12);
    EXPECT_EQ(m.min(), -2.0);
    EXPECT_EQ(m.max(), 10.0);
}

TEST(RunningMoments, StdErrorShrinksWithSamples) {
    RunningMoments few;
    RunningMoments many;
    for (int i = 0; i < 10; ++i) few.add(i % 2 == 0 ? 1.0 : -1.0);
    for (int i = 0; i < 1000; ++i) many.add(i % 2 == 0 ? 1.0 : -1.0);
    EXPECT_GT(few.std_error(), many.std_error());
}

TEST(RunningMoments, CiHalfWidthScalesWithZ) {
    RunningMoments m;
    for (int i = 0; i < 100; ++i) m.add(static_cast<double>(i));
    EXPECT_NEAR(m.ci_half_width(1.96), 1.96 * m.std_error(), 1e-12);
    EXPECT_NEAR(m.ci_half_width(2.58), 2.58 * m.std_error(), 1e-12);
}

TEST(RunningMoments, MergeEqualsSequential) {
    const std::vector<double> first{1.0, 2.0, 3.0};
    const std::vector<double> second{10.0, 20.0, 30.0, 40.0};

    RunningMoments a;
    for (double v : first) a.add(v);
    RunningMoments b;
    for (double v : second) b.add(v);
    a.merge(b);

    RunningMoments sequential;
    for (double v : first) sequential.add(v);
    for (double v : second) sequential.add(v);

    EXPECT_EQ(a.count(), sequential.count());
    EXPECT_NEAR(a.mean(), sequential.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), sequential.variance(), 1e-10);
    EXPECT_EQ(a.min(), sequential.min());
    EXPECT_EQ(a.max(), sequential.max());
}

TEST(RunningMoments, MergeWithEmptySides) {
    RunningMoments filled;
    filled.add(1.0);
    filled.add(2.0);

    RunningMoments empty;
    RunningMoments copy = filled;
    copy.merge(empty);
    EXPECT_EQ(copy.count(), 2u);
    EXPECT_NEAR(copy.mean(), 1.5, 1e-12);

    RunningMoments other;
    other.merge(filled);
    EXPECT_EQ(other.count(), 2u);
    EXPECT_NEAR(other.mean(), 1.5, 1e-12);
}

TEST(RunningMoments, NumericallyStableOnLargeOffsets) {
    RunningMoments m;
    for (int i = 0; i < 1000; ++i) m.add(1e9 + (i % 2 == 0 ? 1.0 : -1.0));
    EXPECT_NEAR(m.mean(), 1e9, 1e-3);
    EXPECT_NEAR(m.variance(), 1.001, 0.01);  // ~1 for the +-1 alternation
}

}  // namespace
}  // namespace hpr::stats
