// Unit tests for the deterministic RNG (stats/rng.h).

#include "stats/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace hpr::stats {
namespace {

TEST(Rng, SameSeedSameStream) {
    Rng a{123};
    Rng b{123};
    for (int i = 0; i < 1000; ++i) {
        ASSERT_EQ(a(), b());
    }
}

TEST(Rng, DifferentSeedsDifferentStreams) {
    Rng a{1};
    Rng b{2};
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a() == b()) ++equal;
    }
    EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsStream) {
    Rng rng{77};
    std::vector<std::uint64_t> first;
    for (int i = 0; i < 16; ++i) first.push_back(rng());
    rng.reseed(77);
    for (int i = 0; i < 16; ++i) {
        ASSERT_EQ(rng(), first[static_cast<std::size_t>(i)]);
    }
}

TEST(Rng, UniformInUnitInterval) {
    Rng rng{5};
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf) {
    Rng rng{6};
    double sum = 0.0;
    constexpr int kSamples = 100000;
    for (int i = 0; i < kSamples; ++i) sum += rng.uniform();
    EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(Rng, UniformRange) {
    Rng rng{7};
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntWithinBound) {
    Rng rng{8};
    for (int i = 0; i < 10000; ++i) {
        ASSERT_LT(rng.uniform_int(17), 17u);
    }
}

TEST(Rng, UniformIntZeroBoundReturnsZero) {
    Rng rng{9};
    EXPECT_EQ(rng.uniform_int(std::uint64_t{0}), 0u);
}

TEST(Rng, UniformIntCoversAllResidues) {
    Rng rng{10};
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(std::uint64_t{7}));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntInclusiveRange) {
    Rng rng{11};
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::int64_t v = rng.uniform_int(std::int64_t{-2}, std::int64_t{2});
        ASSERT_GE(v, -2);
        ASSERT_LE(v, 2);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
    Rng rng{12};
    constexpr int kSamples = 100000;
    int hits = 0;
    for (int i = 0; i < kSamples; ++i) {
        if (rng.bernoulli(0.3)) ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(Rng, BernoulliDegenerate) {
    Rng rng{13};
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, NormalMoments) {
    Rng rng{14};
    constexpr int kSamples = 200000;
    double sum = 0.0;
    double sum_sq = 0.0;
    for (int i = 0; i < kSamples; ++i) {
        const double z = rng.normal();
        sum += z;
        sum_sq += z * z;
    }
    EXPECT_NEAR(sum / kSamples, 0.0, 0.02);
    EXPECT_NEAR(sum_sq / kSamples, 1.0, 0.03);
}

TEST(Rng, ShuffleIsPermutation) {
    Rng rng{15};
    std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    std::vector<int> shuffled = values;
    rng.shuffle(shuffled);
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, values);
}

TEST(Rng, ShuffleChangesOrderEventually) {
    Rng rng{16};
    std::vector<int> values(50);
    for (int i = 0; i < 50; ++i) values[static_cast<std::size_t>(i)] = i;
    std::vector<int> shuffled = values;
    rng.shuffle(shuffled);
    EXPECT_NE(shuffled, values);
}

TEST(Rng, SplitProducesIndependentStream) {
    Rng parent{17};
    Rng child = parent.split();
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (parent() == child()) ++equal;
    }
    EXPECT_LT(equal, 3);
}

TEST(Rng, SplitMix64IsDeterministic) {
    std::uint64_t s1 = 42;
    std::uint64_t s2 = 42;
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
    EXPECT_EQ(s1, s2);
    EXPECT_NE(splitmix64(s1), splitmix64(s2) + 1);  // states advanced in sync
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
    static_assert(std::uniform_random_bit_generator<Rng>);
    EXPECT_EQ(Rng::min(), 0u);
    EXPECT_EQ(Rng::max(), std::numeric_limits<std::uint64_t>::max());
}

}  // namespace
}  // namespace hpr::stats
