// Unit tests for the multinomial distribution (stats/multinomial.h).

#include "stats/multinomial.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace hpr::stats {
namespace {

TEST(Multinomial, RejectsBadProbabilities) {
    EXPECT_THROW(Multinomial(5, {}), std::invalid_argument);
    EXPECT_THROW(Multinomial(5, {0.5, -0.1, 0.6}), std::invalid_argument);
    EXPECT_THROW(Multinomial(5, {0.5, 0.2}), std::invalid_argument);  // sums to 0.7
}

TEST(Multinomial, AcceptsNormalizedProbabilities) {
    const Multinomial m{4, {0.2, 0.3, 0.5}};
    EXPECT_EQ(m.categories(), 3u);
    EXPECT_EQ(m.n(), 4u);
}

TEST(Multinomial, KnownPmf) {
    // Mult(3, {1/3,1/3,1/3}) at (1,1,1): 3!/(1!1!1!) * (1/3)^3 = 6/27.
    const Multinomial m{3, {1.0 / 3, 1.0 / 3, 1.0 / 3}};
    EXPECT_NEAR(m.pmf({1, 1, 1}), 6.0 / 27.0, 1e-12);
    EXPECT_NEAR(m.pmf({3, 0, 0}), 1.0 / 27.0, 1e-12);
}

TEST(Multinomial, PmfZeroWhenCountsDoNotSumToN) {
    const Multinomial m{3, {0.5, 0.5}};
    EXPECT_EQ(m.pmf({1, 1}), 0.0);
    EXPECT_TRUE(std::isinf(m.log_pmf({1, 1})));
}

TEST(Multinomial, PmfRejectsWrongCategoryCount) {
    const Multinomial m{3, {0.5, 0.5}};
    EXPECT_THROW((void)m.pmf({1, 1, 1}), std::invalid_argument);
}

TEST(Multinomial, PmfSumsToOneOverSupport) {
    const Multinomial m{4, {0.2, 0.3, 0.5}};
    double total = 0.0;
    for (std::uint32_t a = 0; a <= 4; ++a) {
        for (std::uint32_t b = 0; a + b <= 4; ++b) {
            const std::uint32_t c = 4 - a - b;
            total += m.pmf({a, b, c});
        }
    }
    EXPECT_NEAR(total, 1.0, 1e-10);
}

TEST(Multinomial, MarginalIsBinomial) {
    const Multinomial m{10, {0.2, 0.3, 0.5}};
    const Binomial marginal = m.marginal(1);
    EXPECT_EQ(marginal.n(), 10u);
    EXPECT_NEAR(marginal.p(), 0.3, 1e-12);
    EXPECT_THROW((void)m.marginal(3), std::invalid_argument);
}

TEST(Multinomial, SampleCountsSumToN) {
    const Multinomial m{12, {0.1, 0.6, 0.3}};
    Rng rng{42};
    for (int i = 0; i < 200; ++i) {
        const auto counts = m.sample(rng);
        ASSERT_EQ(counts.size(), 3u);
        EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0u), 12u);
    }
}

TEST(Multinomial, SampleMeansMatchProbabilities) {
    const Multinomial m{10, {0.2, 0.3, 0.5}};
    Rng rng{43};
    constexpr int kSamples = 20000;
    std::vector<double> sums(3, 0.0);
    for (int i = 0; i < kSamples; ++i) {
        const auto counts = m.sample(rng);
        for (std::size_t j = 0; j < 3; ++j) sums[j] += counts[j];
    }
    for (std::size_t j = 0; j < 3; ++j) {
        EXPECT_NEAR(sums[j] / kSamples, 10.0 * m.probabilities()[j], 0.1) << "j=" << j;
    }
}

TEST(Multinomial, BinaryCaseMatchesBinomial) {
    const Multinomial m{10, {0.9, 0.1}};
    const Binomial b{10, 0.9};
    for (std::uint32_t k = 0; k <= 10; ++k) {
        EXPECT_NEAR(m.pmf({k, 10 - k}), b.pmf(k), 1e-10) << "k=" << k;
    }
}

TEST(Multinomial, ZeroProbabilityCategory) {
    const Multinomial m{5, {0.5, 0.5, 0.0}};
    EXPECT_EQ(m.pmf({2, 3, 0}), std::exp(m.log_pmf({2, 3, 0})));
    EXPECT_EQ(m.pmf({2, 2, 1}), 0.0);
    Rng rng{44};
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(m.sample(rng)[2], 0u);
    }
}

}  // namespace
}  // namespace hpr::stats
