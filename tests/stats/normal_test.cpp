// Unit tests for the standard normal helpers (stats/normal.h).

#include "stats/normal.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hpr::stats {
namespace {

TEST(Normal, CdfKnownValues) {
    EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(normal_cdf(1.0), 0.841344746068543, 1e-12);
    EXPECT_NEAR(normal_cdf(-1.0), 1.0 - 0.841344746068543, 1e-12);
    EXPECT_NEAR(normal_cdf(1.959963984540054), 0.975, 1e-9);
    EXPECT_NEAR(normal_cdf(-6.0), 9.865876450377018e-10, 1e-15);
}

TEST(Normal, CdfIsMonotone) {
    double last = 0.0;
    for (double x = -6.0; x <= 6.0; x += 0.05) {
        const double c = normal_cdf(x);
        ASSERT_GE(c, last);
        last = c;
    }
}

TEST(Normal, QuantileKnownValues) {
    EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
    EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-8);
    EXPECT_NEAR(normal_quantile(0.025), -1.959963984540054, 1e-8);
    EXPECT_NEAR(normal_quantile(0.995), 2.5758293035489004, 1e-8);
    EXPECT_NEAR(normal_quantile(0.841344746068543), 1.0, 1e-8);
}

TEST(Normal, QuantileInvertsCdf) {
    for (double p = 0.001; p < 0.9995; p += 0.013) {
        EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-9) << "p=" << p;
    }
    // Deep tails.
    for (double p : {1e-6, 1e-4, 1.0 - 1e-4, 1.0 - 1e-6}) {
        EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-9) << "p=" << p;
    }
}

TEST(Normal, QuantileRejectsBoundaries) {
    EXPECT_THROW((void)normal_quantile(0.0), std::invalid_argument);
    EXPECT_THROW((void)normal_quantile(1.0), std::invalid_argument);
    EXPECT_THROW((void)normal_quantile(-0.2), std::invalid_argument);
}

TEST(Normal, QuantileIsOddAroundHalf) {
    for (double p : {0.6, 0.75, 0.9, 0.99}) {
        EXPECT_NEAR(normal_quantile(p), -normal_quantile(1.0 - p), 1e-9);
    }
}

}  // namespace
}  // namespace hpr::stats
