// Unit and property tests for the binomial distribution (stats/binomial.h).

#include "stats/binomial.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

namespace hpr::stats {
namespace {

TEST(LogChoose, KnownValues) {
    EXPECT_NEAR(std::exp(log_choose(5, 2)), 10.0, 1e-9);
    EXPECT_NEAR(std::exp(log_choose(10, 0)), 1.0, 1e-9);
    EXPECT_NEAR(std::exp(log_choose(10, 10)), 1.0, 1e-9);
    EXPECT_NEAR(std::exp(log_choose(52, 5)), 2598960.0, 1e-3);
}

TEST(LogChoose, OutOfRangeIsMinusInfinity) {
    EXPECT_TRUE(std::isinf(log_choose(3, 4)));
    EXPECT_LT(log_choose(3, 4), 0.0);
}

TEST(Binomial, RejectsInvalidP) {
    EXPECT_THROW(Binomial(10, -0.1), std::invalid_argument);
    EXPECT_THROW(Binomial(10, 1.1), std::invalid_argument);
    EXPECT_THROW(Binomial(10, std::nan("")), std::invalid_argument);
}

TEST(Binomial, KnownPmfValues) {
    const Binomial fair_coin{2, 0.5};
    EXPECT_NEAR(fair_coin.pmf(0), 0.25, 1e-12);
    EXPECT_NEAR(fair_coin.pmf(1), 0.5, 1e-12);
    EXPECT_NEAR(fair_coin.pmf(2), 0.25, 1e-12);

    const Binomial b{10, 0.9};
    EXPECT_NEAR(b.pmf(10), std::pow(0.9, 10), 1e-10);
    EXPECT_NEAR(b.pmf(9), 10 * std::pow(0.9, 9) * 0.1, 1e-10);
}

TEST(Binomial, PmfBeyondSupportIsZero) {
    const Binomial b{5, 0.3};
    EXPECT_EQ(b.pmf(6), 0.0);
    EXPECT_EQ(b.pmf(1000), 0.0);
}

TEST(Binomial, DegenerateP0) {
    const Binomial b{8, 0.0};
    EXPECT_EQ(b.pmf(0), 1.0);
    for (std::uint32_t k = 1; k <= 8; ++k) EXPECT_EQ(b.pmf(k), 0.0);
    EXPECT_EQ(b.cdf(0), 1.0);
    EXPECT_EQ(b.mean(), 0.0);
}

TEST(Binomial, DegenerateP1) {
    const Binomial b{8, 1.0};
    EXPECT_EQ(b.pmf(8), 1.0);
    for (std::uint32_t k = 0; k < 8; ++k) EXPECT_EQ(b.pmf(k), 0.0);
    EXPECT_EQ(b.mean(), 8.0);
    EXPECT_EQ(b.variance(), 0.0);
}

TEST(Binomial, LogPmfMatchesPmf) {
    const Binomial b{20, 0.37};
    for (std::uint32_t k = 0; k <= 20; ++k) {
        EXPECT_NEAR(std::exp(b.log_pmf(k)), b.pmf(k), 1e-9) << "k=" << k;
    }
}

TEST(Binomial, QuantileIsInverseOfCdf) {
    const Binomial b{30, 0.6};
    for (std::uint32_t k = 0; k <= 30; ++k) {
        const double q = b.cdf(k);
        EXPECT_LE(b.quantile(q), k);
        EXPECT_GE(b.cdf(b.quantile(q)), q - 1e-12);
    }
    EXPECT_EQ(b.quantile(0.0), 0u);
    EXPECT_EQ(b.quantile(1.0), 30u);
}

TEST(Binomial, QuantileRejectsOutOfRange) {
    const Binomial b{4, 0.4};
    EXPECT_THROW((void)b.quantile(-0.01), std::invalid_argument);
    EXPECT_THROW((void)b.quantile(1.01), std::invalid_argument);
}

TEST(Binomial, SurvivalComplementsCdf) {
    const Binomial b{12, 0.45};
    EXPECT_EQ(b.survival(0), 1.0);
    for (std::uint32_t k = 1; k <= 12; ++k) {
        EXPECT_NEAR(b.survival(k), 1.0 - b.cdf(k - 1), 1e-12);
    }
}

TEST(Binomial, PmfTableHasFullSupport) {
    const Binomial b{10, 0.9};
    EXPECT_EQ(b.pmf_table().size(), 11u);
}

TEST(Binomial, SurvivalDeepTailsMatchLogPmfSummation) {
    // Regression for catastrophic cancellation: the 1 - cdf(k-1) form is
    // pure rounding noise once the upper tail drops below ~1e-16, because
    // the cdf has already rounded to 1.  The dedicated upper-tail table
    // must instead agree with a summation of exp(log_pmf) terms — each
    // computed in log space, so accurate at any magnitude — to relative
    // precision, for every k of an n = 100 distribution.
    for (const double p : {0.5, 0.9, 0.05}) {
        const Binomial b{100, p};
        for (std::uint32_t k = 0; k <= 100; ++k) {
            double reference = 0.0;
            for (std::uint32_t j = 100; j + 1 > k; --j) {
                reference += std::exp(b.log_pmf(j));  // smallest terms first
            }
            ASSERT_NEAR(b.survival(k), reference, 1e-12 * reference)
                << "n=100 p=" << p << " k=" << k;
        }
    }
}

TEST(Binomial, SurvivalResolvesTailsTheCdfComplementCannot) {
    // The motivating case: P(X >= 95 | n=100, p=0.5) ~ 2e-18.  The
    // complement form returns exactly 0 (the cdf is 1 to machine
    // precision); the tail table keeps the mass to its own scale.
    const Binomial b{100, 0.5};
    EXPECT_EQ(1.0 - b.cdf(94), 0.0);
    EXPECT_GT(b.survival(95), 0.0);
    // Spot value cross-checked in exact arithmetic:
    // sum_{k=95}^{100} C(100,k) / 2^100 = 79375496 / 2^100 = 6.2616...e-23.
    EXPECT_NEAR(b.survival(95), 6.2616e-23, 0.001e-23);
}

TEST(Binomial, SurvivalIsMonotoneNonIncreasing) {
    const Binomial b{100, 0.7};
    for (std::uint32_t k = 1; k <= 100; ++k) {
        ASSERT_LE(b.survival(k), b.survival(k - 1)) << "k=" << k;
    }
    EXPECT_EQ(b.survival(0), 1.0);
    EXPECT_EQ(b.survival(101), 0.0);
}

class BinomialProperty : public ::testing::TestWithParam<std::tuple<std::uint32_t, double>> {};

TEST_P(BinomialProperty, PmfSumsToOne) {
    const auto [n, p] = GetParam();
    const Binomial b{n, p};
    double total = 0.0;
    for (std::uint32_t k = 0; k <= n; ++k) total += b.pmf(k);
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_P(BinomialProperty, CdfIsMonotone) {
    const auto [n, p] = GetParam();
    const Binomial b{n, p};
    double prev = 0.0;
    for (std::uint32_t k = 0; k <= n; ++k) {
        EXPECT_GE(b.cdf(k) + 1e-15, prev);
        prev = b.cdf(k);
    }
    EXPECT_NEAR(b.cdf(n), 1.0, 1e-12);
}

TEST_P(BinomialProperty, MomentsMatchFormula) {
    const auto [n, p] = GetParam();
    const Binomial b{n, p};
    double mean = 0.0;
    double second = 0.0;
    for (std::uint32_t k = 0; k <= n; ++k) {
        mean += k * b.pmf(k);
        second += static_cast<double>(k) * k * b.pmf(k);
    }
    EXPECT_NEAR(mean, b.mean(), 1e-7);
    EXPECT_NEAR(second - mean * mean, b.variance(), 1e-6);
}

TEST_P(BinomialProperty, SampleMeanConverges) {
    const auto [n, p] = GetParam();
    const Binomial b{n, p};
    Rng rng{99};
    constexpr std::size_t kSamples = 20000;
    double sum = 0.0;
    for (std::size_t i = 0; i < kSamples; ++i) {
        const std::uint32_t x = b.sample(rng);
        ASSERT_LE(x, n);
        sum += x;
    }
    const double tolerance = 4.0 * std::sqrt(b.variance() / kSamples) + 1e-9;
    EXPECT_NEAR(sum / kSamples, b.mean(), tolerance);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BinomialProperty,
    ::testing::Values(std::make_tuple(1u, 0.5), std::make_tuple(10u, 0.9),
                      std::make_tuple(10u, 0.95), std::make_tuple(20u, 0.1),
                      std::make_tuple(50u, 0.62), std::make_tuple(100u, 0.99),
                      std::make_tuple(10u, 0.0), std::make_tuple(10u, 1.0)));

TEST(Binomial, BulkSamplingMatchesCount) {
    const Binomial b{10, 0.7};
    Rng rng{7};
    const auto samples = b.sample(rng, 1234);
    EXPECT_EQ(samples.size(), 1234u);
}

TEST(Binomial, SamplingChiSquareAgainstPmf) {
    // Goodness-of-fit of the sampler against the pmf for B(10, 0.9), the
    // workhorse distribution of the paper's experiments.
    const Binomial b{10, 0.9};
    Rng rng{123};
    constexpr std::size_t kSamples = 50000;
    std::vector<std::size_t> counts(11, 0);
    for (std::size_t i = 0; i < kSamples; ++i) ++counts[b.sample(rng)];
    double chi_sq = 0.0;
    int dof = 0;
    for (std::uint32_t k = 0; k <= 10; ++k) {
        const double expected = kSamples * b.pmf(k);
        if (expected < 5.0) continue;  // merge tiny cells out of the test
        ++dof;
        const double diff = static_cast<double>(counts[k]) - expected;
        chi_sq += diff * diff / expected;
    }
    // 99.9th percentile of chi-square with <= 10 dof is < 30.
    EXPECT_LT(chi_sq, 30.0) << "dof=" << dof;
}

}  // namespace
}  // namespace hpr::stats
