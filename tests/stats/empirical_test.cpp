// Unit tests for EmpiricalDistribution (stats/empirical.h).

#include "stats/empirical.h"

#include <gtest/gtest.h>

#include "stats/rng.h"

#include <vector>

namespace hpr::stats {
namespace {

TEST(Empirical, StartsEmpty) {
    const EmpiricalDistribution d{10};
    EXPECT_TRUE(d.empty());
    EXPECT_EQ(d.size(), 0u);
    EXPECT_EQ(d.max_value(), 10u);
    EXPECT_EQ(d.pmf(3), 0.0);
    EXPECT_EQ(d.mean(), 0.0);
}

TEST(Empirical, BuildFromSamples) {
    const EmpiricalDistribution d{5, {1, 1, 2, 5, 0}};
    EXPECT_EQ(d.size(), 5u);
    EXPECT_EQ(d.count(1), 2u);
    EXPECT_EQ(d.count(2), 1u);
    EXPECT_EQ(d.count(3), 0u);
    EXPECT_NEAR(d.pmf(1), 0.4, 1e-12);
    EXPECT_EQ(d.value_sum(), 9u);
    EXPECT_NEAR(d.mean(), 1.8, 1e-12);
}

TEST(Empirical, RejectsSamplesBeyondSupport) {
    EmpiricalDistribution d{3};
    EXPECT_THROW(d.add(4), std::invalid_argument);
    EXPECT_THROW((EmpiricalDistribution{3, {1, 4}}), std::invalid_argument);
}

TEST(Empirical, AddRemoveRoundTrip) {
    EmpiricalDistribution d{10};
    d.add(4);
    d.add(7);
    d.add(4);
    d.remove(4);
    EXPECT_EQ(d.size(), 2u);
    EXPECT_EQ(d.count(4), 1u);
    EXPECT_EQ(d.value_sum(), 11u);
}

TEST(Empirical, RemoveUnrecordedThrows) {
    EmpiricalDistribution d{10};
    d.add(2);
    EXPECT_THROW(d.remove(3), std::logic_error);
    d.remove(2);
    EXPECT_THROW(d.remove(2), std::logic_error);
}

TEST(Empirical, CountBeyondSupportIsZero) {
    EmpiricalDistribution d{3};
    d.add(1);
    EXPECT_EQ(d.count(100), 0u);
    EXPECT_EQ(d.pmf(100), 0.0);
}

TEST(Empirical, PmfTableSumsToOne) {
    EmpiricalDistribution d{6, {0, 1, 1, 3, 6, 6, 6}};
    const auto table = d.pmf_table();
    ASSERT_EQ(table.size(), 7u);
    double total = 0.0;
    for (double v : table) total += v;
    EXPECT_NEAR(total, 1.0, 1e-12);
    EXPECT_NEAR(table[6], 3.0 / 7.0, 1e-12);
}

TEST(Empirical, VarianceMatchesDirectComputation) {
    const std::vector<std::uint32_t> samples{2, 4, 4, 4, 5, 5, 7, 9};
    const EmpiricalDistribution d{10, samples};
    double mean = 0.0;
    for (auto s : samples) mean += s;
    mean /= static_cast<double>(samples.size());
    double var = 0.0;
    for (auto s : samples) var += (s - mean) * (s - mean);
    var /= static_cast<double>(samples.size() - 1);
    EXPECT_NEAR(d.variance(), var, 1e-12);
    EXPECT_NEAR(d.mean(), mean, 1e-12);
}

TEST(Empirical, VarianceOfTinySamplesIsZero) {
    EmpiricalDistribution d{5};
    EXPECT_EQ(d.variance(), 0.0);
    d.add(3);
    EXPECT_EQ(d.variance(), 0.0);
}

TEST(Empirical, MergeCombinesCounts) {
    EmpiricalDistribution a{4, {0, 1, 2}};
    const EmpiricalDistribution b{4, {2, 3, 4, 4}};
    a.merge(b);
    EXPECT_EQ(a.size(), 7u);
    EXPECT_EQ(a.count(2), 2u);
    EXPECT_EQ(a.count(4), 2u);
    EXPECT_EQ(a.value_sum(), 0u + 1 + 2 + 2 + 3 + 4 + 4);
}

TEST(Empirical, MergeRejectsSupportMismatch) {
    EmpiricalDistribution a{4};
    const EmpiricalDistribution b{5};
    EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(Empirical, ClearResetsEverything) {
    EmpiricalDistribution d{4, {1, 2, 3}};
    d.clear();
    EXPECT_TRUE(d.empty());
    EXPECT_EQ(d.value_sum(), 0u);
    EXPECT_EQ(d.count(2), 0u);
    EXPECT_EQ(d.max_value(), 4u);  // support survives clear()
    d.add(4);                      // still usable
    EXPECT_EQ(d.size(), 1u);
}

TEST(Empirical, IncrementalEqualsBatch) {
    // Property behind the O(n) multi-test: incrementally built stats match
    // a batch build over the same samples.
    std::vector<std::uint32_t> samples;
    Rng rng{5};
    for (int i = 0; i < 500; ++i) {
        samples.push_back(static_cast<std::uint32_t>(rng.uniform_int(std::uint64_t{11})));
    }
    const EmpiricalDistribution batch{10, samples};
    EmpiricalDistribution incremental{10};
    for (auto s : samples) incremental.add(s);
    EXPECT_EQ(incremental.count_table(), batch.count_table());
    EXPECT_EQ(incremental.value_sum(), batch.value_sum());
    EXPECT_NEAR(incremental.variance(), batch.variance(), 1e-12);
}

}  // namespace
}  // namespace hpr::stats
