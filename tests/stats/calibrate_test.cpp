// Unit tests for Monte-Carlo threshold calibration (stats/calibrate.h).

#include "stats/calibrate.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

namespace hpr::stats {
namespace {

TEST(EmpiricalQuantile, KnownValues) {
    std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
    EXPECT_NEAR(empirical_quantile(v, 0.0), 1.0, 1e-12);
    EXPECT_NEAR(empirical_quantile(v, 1.0), 5.0, 1e-12);
    EXPECT_NEAR(empirical_quantile(v, 0.5), 3.0, 1e-12);
    EXPECT_NEAR(empirical_quantile(v, 0.25), 2.0, 1e-12);
    EXPECT_NEAR(empirical_quantile(v, 0.125), 1.5, 1e-12);  // interpolated
}

TEST(EmpiricalQuantile, SingleElement) {
    EXPECT_EQ(empirical_quantile({7.0}, 0.3), 7.0);
}

TEST(EmpiricalQuantile, UnsortedInputIsHandled) {
    EXPECT_NEAR(empirical_quantile({5.0, 1.0, 3.0, 2.0, 4.0}, 0.5), 3.0, 1e-12);
}

TEST(EmpiricalQuantile, Rejections) {
    EXPECT_THROW((void)empirical_quantile({}, 0.5), std::invalid_argument);
    EXPECT_THROW((void)empirical_quantile({1.0}, -0.1), std::invalid_argument);
    EXPECT_THROW((void)empirical_quantile({1.0}, 1.1), std::invalid_argument);
}

TEST(Calibrator, RejectsBadConfig) {
    CalibrationConfig bad;
    bad.confidence = 0.0;
    EXPECT_THROW(Calibrator{bad}, std::invalid_argument);
    bad = {};
    bad.replications = 0;
    EXPECT_THROW(Calibrator{bad}, std::invalid_argument);
    bad = {};
    bad.p_grid = 0;
    EXPECT_THROW(Calibrator{bad}, std::invalid_argument);
    bad = {};
    bad.windows_cap = 0;
    EXPECT_THROW(Calibrator{bad}, std::invalid_argument);
    bad = {};
    bad.windows_grid_ratio = 0.9;
    EXPECT_THROW(Calibrator{bad}, std::invalid_argument);
}

TEST(Calibrator, RejectsBadArguments) {
    Calibrator cal;
    EXPECT_THROW((void)cal.threshold(0, 10, 0.9), std::invalid_argument);
    EXPECT_THROW((void)cal.threshold(5, 0, 0.9), std::invalid_argument);
    EXPECT_THROW((void)cal.threshold(5, 10, -0.1), std::invalid_argument);
    EXPECT_THROW((void)cal.threshold(5, 10, 1.5), std::invalid_argument);
}

TEST(Calibrator, ThresholdIsPositiveAndBounded) {
    Calibrator cal;
    const double eps = cal.threshold(40, 10, 0.9);
    EXPECT_GT(eps, 0.0);
    EXPECT_LE(eps, 2.0);  // L1 distance between pmfs is at most 2
}

TEST(Calibrator, ThresholdDeterministicAcrossInstances) {
    Calibrator a;
    Calibrator b;
    EXPECT_EQ(a.threshold(40, 10, 0.9), b.threshold(40, 10, 0.9));
}

TEST(Calibrator, ThresholdIndependentOfCallOrder) {
    Calibrator a;
    Calibrator b;
    const double a_first = a.threshold(40, 10, 0.9);
    (void)b.threshold(8, 10, 0.5);
    (void)b.threshold(100, 20, 0.95);
    EXPECT_EQ(b.threshold(40, 10, 0.9), a_first);
}

TEST(Calibrator, ThresholdDecreasesWithMoreWindows) {
    // With more window samples the empirical distribution concentrates on
    // the true pmf, so the 95%-quantile of the null distance shrinks.
    Calibrator cal;
    const double eps_small = cal.threshold(5, 10, 0.9);
    const double eps_mid = cal.threshold(40, 10, 0.9);
    const double eps_large = cal.threshold(400, 10, 0.9);
    EXPECT_GT(eps_small, eps_mid);
    EXPECT_GT(eps_mid, eps_large);
}

TEST(Calibrator, HigherConfidenceGivesHigherThreshold) {
    CalibrationConfig c90;
    c90.confidence = 0.90;
    CalibrationConfig c99;
    c99.confidence = 0.99;
    Calibrator cal90{c90};
    Calibrator cal99{c99};
    EXPECT_LT(cal90.threshold(40, 10, 0.9), cal99.threshold(40, 10, 0.9));
}

TEST(Calibrator, CacheGrowsOncePerKey) {
    Calibrator cal;
    EXPECT_EQ(cal.cache_size(), 0u);
    (void)cal.threshold(40, 10, 0.9);
    EXPECT_EQ(cal.cache_size(), 1u);
    (void)cal.threshold(40, 10, 0.9);
    EXPECT_EQ(cal.cache_size(), 1u);
    // Same p bucket (grid 256): 0.9 and 0.9001 quantize identically.
    (void)cal.threshold(40, 10, 0.9001);
    EXPECT_EQ(cal.cache_size(), 1u);
    // Same window-count bucket on the geometric grid.
    (void)cal.threshold(cal.effective_windows(40), 10, 0.9);
    EXPECT_EQ(cal.cache_size(), 1u);
    // A clearly different window count lands on a new grid point.
    (void)cal.threshold(400, 10, 0.9);
    EXPECT_EQ(cal.cache_size(), 2u);
    cal.clear_cache();
    EXPECT_EQ(cal.cache_size(), 0u);
}

TEST(Calibrator, EffectiveWindowsGridIsMonotoneAndConservative) {
    Calibrator cal;
    std::size_t prev = 0;
    for (std::size_t k = 1; k <= 3000; k += 7) {
        const std::size_t bucket = cal.effective_windows(k);
        ASSERT_LE(bucket, std::min(k, cal.config().windows_cap));  // rounds down
        ASSERT_GE(bucket, prev);                                   // monotone
        // Never more than ~grid-ratio below the requested k (pre-cap).
        if (k <= cal.config().windows_cap) {
            ASSERT_GE(static_cast<double>(bucket) * cal.config().windows_grid_ratio *
                          1.01,
                      static_cast<double>(k));
        }
        prev = bucket;
    }
}

TEST(Calibrator, ExactModeWithUnitGridRatio) {
    CalibrationConfig config;
    config.windows_grid_ratio = 1.0;
    Calibrator cal{config};
    EXPECT_EQ(cal.effective_windows(41), 41u);
    (void)cal.threshold(40, 10, 0.9);
    (void)cal.threshold(41, 10, 0.9);
    EXPECT_EQ(cal.cache_size(), 2u);
}

TEST(Calibrator, ExplicitConfidenceReusesNullSample) {
    Calibrator cal;
    const double at95 = cal.threshold(40, 10, 0.9, 0.95);
    const double at99 = cal.threshold(40, 10, 0.9, 0.99);
    EXPECT_LT(at95, at99);
    EXPECT_EQ(cal.cache_size(), 1u);  // one null sample serves both
    EXPECT_THROW((void)cal.threshold(40, 10, 0.9, 0.0), std::invalid_argument);
    EXPECT_THROW((void)cal.threshold(40, 10, 0.9, 1.0), std::invalid_argument);
}

TEST(SortedQuantile, MatchesEmpiricalQuantile) {
    const std::vector<double> sorted{1.0, 2.0, 3.0, 4.0, 5.0};
    for (double q : {0.0, 0.25, 0.5, 0.77, 1.0}) {
        EXPECT_NEAR(sorted_quantile(sorted, q), empirical_quantile(sorted, q), 1e-12);
    }
    EXPECT_THROW((void)sorted_quantile({}, 0.5), std::invalid_argument);
}

TEST(Calibrator, WindowsCapSharesThreshold) {
    CalibrationConfig config;
    config.windows_cap = 64;
    Calibrator cal{config};
    const double at_cap = cal.threshold(64, 10, 0.9);
    EXPECT_EQ(cal.threshold(100000, 10, 0.9), at_cap);
    EXPECT_EQ(cal.cache_size(), 1u);
}

TEST(Calibrator, NullDistancesAreSortedAndQuantileConsistent) {
    Calibrator cal;
    const auto distances = cal.null_distances(40, 10, 0.9);
    ASSERT_EQ(distances.size(), cal.config().replications);
    for (std::size_t i = 1; i < distances.size(); ++i) {
        ASSERT_LE(distances[i - 1], distances[i]);
    }
    const double eps = cal.threshold(40, 10, 0.9);
    // The threshold is the 95%-quantile of exactly this sample.
    EXPECT_NEAR(eps, empirical_quantile(distances, cal.config().confidence), 1e-12);
}

TEST(Calibrator, DegenerateP1HasZeroNullDistance) {
    Calibrator cal;
    // With p = 1 every window is all-good: the sampled empirical pmf is
    // exactly the reference point mass, so the threshold is 0.
    EXPECT_EQ(cal.threshold(40, 10, 1.0), 0.0);
    EXPECT_EQ(cal.threshold(40, 10, 0.0), 0.0);
}

TEST(Calibrator, NearDegeneratePNeverRoundsToZeroThreshold) {
    // Regression: p̂ = 0.999 used to quantize onto the p = 1 bucket whose
    // threshold is exactly 0, condemning any history with one old bad
    // transaction to fail forever.  Non-degenerate p̂ must clamp to the
    // nearest interior bucket instead.
    Calibrator cal;
    EXPECT_GT(cal.threshold(40, 10, 0.9999), 0.0);
    EXPECT_GT(cal.threshold(40, 10, 0.0001), 0.0);
    EXPECT_EQ(cal.threshold(40, 10, 0.9999), cal.threshold(40, 10, 255.0 / 256.0));
}

TEST(Calibrator, SaveLoadRoundTrip) {
    const auto path =
        (std::filesystem::temp_directory_path() / "hpr_calibration.cache").string();
    Calibrator source;
    const double eps_a = source.threshold(40, 10, 0.9);
    const double eps_b = source.threshold(100, 20, 0.95);
    source.save_cache(path);

    Calibrator restored;
    restored.load_cache(path);
    EXPECT_EQ(restored.cache_size(), source.cache_size());
    EXPECT_EQ(restored.threshold(40, 10, 0.9), eps_a);
    EXPECT_EQ(restored.threshold(100, 20, 0.95), eps_b);
    // Confidence flexibility survives persistence (full null samples).
    EXPECT_EQ(restored.threshold(40, 10, 0.9, 0.5), source.threshold(40, 10, 0.9, 0.5));
    std::remove(path.c_str());
}

TEST(Calibrator, LoadRejectsMismatchedConfig) {
    const auto path =
        (std::filesystem::temp_directory_path() / "hpr_calibration_mismatch.cache")
            .string();
    Calibrator source;
    (void)source.threshold(40, 10, 0.9);
    source.save_cache(path);

    CalibrationConfig other;
    other.replications = 500;
    Calibrator incompatible{other};
    EXPECT_THROW(incompatible.load_cache(path), std::runtime_error);
    std::remove(path.c_str());
}

TEST(Calibrator, LoadRejectsCorruptFiles) {
    const auto path =
        (std::filesystem::temp_directory_path() / "hpr_calibration_bad.cache").string();
    {
        std::ofstream out{path};
        out << "not a calibration cache\n";
    }
    Calibrator cal;
    EXPECT_THROW(cal.load_cache(path), std::runtime_error);
    std::remove(path.c_str());
    EXPECT_THROW(cal.load_cache("/nonexistent/cache"), std::runtime_error);
}

TEST(Calibrator, ConcurrentThresholdQueriesAreSafe) {
    // The calibrator advertises thread safety; hammer one instance from
    // several threads over an overlapping key set and check every thread
    // saw the same values a fresh calibrator computes serially.
    Calibrator shared;
    Calibrator reference;
    constexpr int kThreads = 6;
    constexpr int kQueries = 40;
    std::vector<std::vector<double>> seen(kThreads);
    {
        std::vector<std::thread> threads;
        threads.reserve(kThreads);
        for (int t = 0; t < kThreads; ++t) {
            threads.emplace_back([&, t] {
                for (int q = 0; q < kQueries; ++q) {
                    const std::size_t windows = 4 + (q % 7) * 10;
                    const double p = 0.8 + 0.02 * (q % 5);
                    seen[static_cast<std::size_t>(t)].push_back(
                        shared.threshold(windows, 10, p));
                }
            });
        }
        for (auto& thread : threads) thread.join();
    }
    for (int t = 0; t < kThreads; ++t) {
        for (int q = 0; q < kQueries; ++q) {
            const std::size_t windows = 4 + (q % 7) * 10;
            const double p = 0.8 + 0.02 * (q % 5);
            ASSERT_EQ(seen[static_cast<std::size_t>(t)][static_cast<std::size_t>(q)],
                      reference.threshold(windows, 10, p))
                << "thread " << t << " query " << q;
        }
    }
}

TEST(Calibrator, SingleFlightColdKeyComputesOnce) {
    // Regression for the check-then-act race in null_for: two threads
    // missing the same key both used to run the full Monte-Carlo
    // computation.  Hammer one cold key from many threads and demand
    // exactly one compute_null execution.
    constexpr int kThreads = 12;
    CalibrationConfig config;
    config.windows_grid_ratio = 1.0;
    config.threads = 1;  // serial chunks: isolates the dedup mechanism
    Calibrator cal{config};
    ASSERT_EQ(cal.compute_count(), 0u);
    std::vector<double> results(kThreads, -1.0);
    {
        std::vector<std::thread> threads;
        threads.reserve(kThreads);
        for (int t = 0; t < kThreads; ++t) {
            threads.emplace_back([&cal, &results, t] {
                results[static_cast<std::size_t>(t)] = cal.threshold(500, 10, 0.9);
            });
        }
        for (auto& thread : threads) thread.join();
    }
    EXPECT_EQ(cal.compute_count(), 1u);
    EXPECT_EQ(cal.cache_size(), 1u);
    for (const double r : results) EXPECT_EQ(r, results.front());

    // The stats() snapshot tells the same story without poking internals:
    // one miss did the work, the other eleven lookups either joined the
    // flight or hit the cache just after the leader published, and
    // nothing is left in flight.
    const CalibratorStats stats = cal.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits + stats.single_flight_joins,
              static_cast<std::size_t>(kThreads) - 1u);
    EXPECT_EQ(stats.in_flight, 0u);
    EXPECT_EQ(stats.cache_entries, 1u);
}

TEST(Calibrator, ParallelMatchesSerialBitIdentical) {
    // The chunk-seeded scheme must make the sorted null sample a pure
    // function of the key — 1, 2, and 8 worker threads all produce the
    // bit-identical vector, hence bit-identical thresholds.
    const auto run = [](std::size_t threads) {
        CalibrationConfig config;
        config.threads = threads;
        return Calibrator{config};
    };
    Calibrator serial = run(1);
    Calibrator two = run(2);
    Calibrator eight = run(8);
    const struct {
        std::size_t windows;
        std::uint32_t m;
        double p;
    } keys[] = {{5, 10, 0.9}, {40, 10, 0.9}, {40, 20, 0.75}, {400, 10, 0.95},
                {2048, 10, 0.5}};
    for (const auto& key : keys) {
        const auto& base = serial.null_distances(key.windows, key.m, key.p);
        ASSERT_EQ(base, two.null_distances(key.windows, key.m, key.p))
            << "2 threads diverged at k=" << key.windows;
        ASSERT_EQ(base, eight.null_distances(key.windows, key.m, key.p))
            << "8 threads diverged at k=" << key.windows;
        EXPECT_EQ(serial.threshold(key.windows, key.m, key.p),
                  two.threshold(key.windows, key.m, key.p));
        EXPECT_EQ(serial.threshold(key.windows, key.m, key.p),
                  eight.threshold(key.windows, key.m, key.p));
    }
}

TEST(Calibrator, ParallelMatchesSerialAcrossTheFig9Grid) {
    // The full key grid the fig9 bench warms (every geometric window
    // bucket up to the cap, p̂ buckets over [0.85, 0.95]) at 1 vs 4
    // worker threads; reduced replications keep the sweep fast without
    // changing the seeding scheme under test.
    CalibrationConfig config;
    config.replications = 64;
    config.threads = 1;
    Calibrator serial{config};
    config.threads = 4;
    Calibrator parallel{config};

    std::size_t keys_checked = 0;
    for (std::size_t k = 1; k <= serial.config().windows_cap;) {
        const std::size_t bucket = serial.effective_windows(k);
        for (int b = 218; b <= 243; ++b) {  // p̂ buckets covering [0.85, 0.95]
            const double p = b / 256.0;
            ASSERT_EQ(serial.null_distances(bucket, 10, p),
                      parallel.null_distances(bucket, 10, p))
                << "k=" << bucket << " p=" << p;
            ASSERT_EQ(serial.threshold(bucket, 10, p), parallel.threshold(bucket, 10, p));
            ++keys_checked;
        }
        std::size_t next = k + 1;
        while (next <= serial.config().windows_cap &&
               serial.effective_windows(next) == bucket) {
            ++next;
        }
        k = next;
    }
    EXPECT_GT(keys_checked, 500u);
    EXPECT_EQ(serial.cache_size(), parallel.cache_size());
}

TEST(Calibrator, ThreadsResolveToAtLeastOne) {
    Calibrator auto_threads;  // config threads = 0
    EXPECT_GE(auto_threads.threads(), 1u);
    CalibrationConfig config;
    config.threads = 3;
    EXPECT_EQ(Calibrator{config}.threads(), 3u);
}

TEST(Calibrator, PrecalibrateWarmsTheGrid) {
    CalibrationConfig config;
    config.threads = 2;
    Calibrator cal{config};
    const std::vector<std::size_t> windows{5, 40, 400};
    const std::vector<std::uint32_t> sizes{10};
    const std::vector<double> p_hats{0.85, 0.9, 0.95};
    const std::size_t computed = cal.precalibrate(windows, sizes, p_hats);
    EXPECT_EQ(computed, cal.cache_size());
    EXPECT_EQ(computed, cal.compute_count());
    EXPECT_GT(computed, 0u);
    // Every grid point now answers from cache: no further Monte-Carlo.
    for (const auto k : windows) {
        for (const auto p : p_hats) {
            (void)cal.threshold(k, 10, p);
        }
    }
    EXPECT_EQ(cal.compute_count(), computed);
    // Re-warming the same grid is free.
    EXPECT_EQ(cal.precalibrate(windows, sizes, p_hats), 0u);
    // And the values equal an unwarmed serial calibrator's.
    Calibrator reference;
    EXPECT_EQ(cal.threshold(40, 10, 0.9), reference.threshold(40, 10, 0.9));
}

TEST(Calibrator, PrecalibrateValidatesArguments) {
    Calibrator cal;
    EXPECT_THROW((void)cal.precalibrate({0}, {10}, {0.9}), std::invalid_argument);
    EXPECT_THROW((void)cal.precalibrate({5}, {0}, {0.9}), std::invalid_argument);
    EXPECT_THROW((void)cal.precalibrate({5}, {10}, {1.5}), std::invalid_argument);
    EXPECT_EQ(cal.cache_size(), 0u);
}

TEST(Calibrator, PrecalibrateComposesWithSaveLoad) {
    const auto path =
        (std::filesystem::temp_directory_path() / "hpr_precalibrate.cache").string();
    CalibrationConfig config;
    config.threads = 2;
    Calibrator warm{config};
    (void)warm.precalibrate({5, 40}, {10}, {0.9, 0.95});
    warm.save_cache(path);

    Calibrator served{config};
    served.load_cache(path);
    EXPECT_EQ(served.cache_size(), warm.cache_size());
    EXPECT_EQ(served.threshold(40, 10, 0.9), warm.threshold(40, 10, 0.9));
    EXPECT_EQ(served.compute_count(), 0u);  // never ran Monte-Carlo
    std::remove(path.c_str());
}

namespace {

/// Write a single-key cache file that matches `cal`'s header but carries a
/// hand-edited key, returning the path.
std::string write_cache_with_key(Calibrator& cal, const std::string& key_text) {
    const auto path =
        (std::filesystem::temp_directory_path() / "hpr_cal_badkey.cache").string();
    const auto donor =
        (std::filesystem::temp_directory_path() / "hpr_cal_donor.cache").string();
    (void)cal.threshold(5, 10, 0.9);
    cal.save_cache(donor);
    std::ifstream in{donor};
    std::string header;
    std::string body;
    std::getline(in, header);
    std::getline(in, body);
    const auto colon = body.find(':');
    std::ofstream out{path};
    out << header << '\n' << key_text << body.substr(colon) << '\n';
    std::remove(donor.c_str());
    return path;
}

}  // namespace

TEST(Calibrator, LoadRejectsInvalidKeysWithLineNumbers) {
    // A corrupt or hand-edited file must not poison lookups: zero fields,
    // off-grid window counts, and out-of-range p buckets are all rejected,
    // and the error names the offending line.
    const struct {
        const char* key_text;
        const char* reason;
    } cases[] = {
        {"0 10 230", "windows == 0"},
        {"5 0 230", "m == 0"},
        {"15 10 230", "off the geometric window grid"},  // grid: ...14, 16...
        {"4096 10 230", "beyond windows_cap"},
        {"5 10 999", "p bucket beyond p_grid"},
    };
    for (const auto& test_case : cases) {
        Calibrator donor;
        const auto path = write_cache_with_key(donor, test_case.key_text);
        Calibrator cal;
        try {
            cal.load_cache(path);
            FAIL() << "accepted " << test_case.reason;
        } catch (const std::runtime_error& error) {
            EXPECT_NE(std::string{error.what()}.find("line 2"), std::string::npos)
                << "no line number for " << test_case.reason << ": " << error.what();
        }
        EXPECT_EQ(cal.cache_size(), 0u) << test_case.reason;
        std::remove(path.c_str());
    }
}

TEST(Calibrator, LoadRejectsDuplicateKeys) {
    const auto path =
        (std::filesystem::temp_directory_path() / "hpr_cal_dup.cache").string();
    Calibrator donor;
    (void)donor.threshold(5, 10, 0.9);
    donor.save_cache(path);
    {
        // Append a copy of the only body line: same key twice.
        std::ifstream in{path};
        std::string header;
        std::string body;
        std::getline(in, header);
        std::getline(in, body);
        in.close();
        std::ofstream out{path, std::ios::app};
        out << body << '\n';
    }
    Calibrator cal;
    try {
        cal.load_cache(path);
        FAIL() << "accepted a duplicate key";
    } catch (const std::runtime_error& error) {
        EXPECT_NE(std::string{error.what()}.find("line 3"), std::string::npos)
            << error.what();
    }
    std::remove(path.c_str());
}

TEST(Calibrator, LoadRejectsTruncatedSamples) {
    Calibrator donor;
    const auto path =
        (std::filesystem::temp_directory_path() / "hpr_cal_trunc.cache").string();
    (void)donor.threshold(5, 10, 0.9);
    donor.save_cache(path);
    {
        std::ifstream in{path};
        std::string header;
        std::string body;
        std::getline(in, header);
        std::getline(in, body);
        in.close();
        // Drop the last sample: the replication count no longer matches.
        body = body.substr(0, body.rfind(' '));
        std::ofstream out{path};
        out << header << '\n' << body << '\n';
    }
    Calibrator cal;
    EXPECT_THROW(cal.load_cache(path), std::runtime_error);
    std::remove(path.c_str());
}

TEST(Calibrator, DistanceKindIsRespected) {
    CalibrationConfig ks;
    ks.kind = DistanceKind::kKolmogorovSmirnov;
    Calibrator cal_ks{ks};
    Calibrator cal_l1;
    // KS distance <= TV = L1/2, so the calibrated thresholds must differ.
    EXPECT_LT(cal_ks.threshold(40, 10, 0.9), cal_l1.threshold(40, 10, 0.9));
}

}  // namespace
}  // namespace hpr::stats
