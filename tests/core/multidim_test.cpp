// Unit tests for multi-dimensional feedback testing (core/multidim.h).

#include "core/multidim.h"

#include <gtest/gtest.h>

#include "stats/rng.h"

namespace hpr::core {
namespace {

std::shared_ptr<stats::Calibrator> shared_cal() {
    static auto cal = make_calibrator(BehaviorTestConfig{});
    return cal;
}

constexpr repsys::Rating kGood = repsys::Rating::kPositive;
constexpr repsys::Rating kBad = repsys::Rating::kNegative;

DimensionalFeedback df(repsys::Timestamp t, std::vector<repsys::Rating> ratings) {
    return DimensionalFeedback{t, 1, 2, std::move(ratings)};
}

MultiDimensionalTest marketplace_test() {
    return MultiDimensionalTest{{"quality", "delivery", "price"},
                                MultiTestConfig{}, shared_cal()};
}

TEST(MultiDim, RejectsBadDimensionLists) {
    EXPECT_THROW(MultiDimensionalTest({}, {}, shared_cal()), std::invalid_argument);
    EXPECT_THROW(MultiDimensionalTest({"a", "b", "a"}, {}, shared_cal()),
                 std::invalid_argument);
}

TEST(MultiDim, RejectsMisalignedRatings) {
    const auto tester = marketplace_test();
    const std::vector<DimensionalFeedback> feedbacks{df(1, {kGood, kGood})};
    EXPECT_THROW((void)tester.test(feedbacks), std::invalid_argument);
}

TEST(MultiDim, ShortHistoryInsufficient) {
    const auto tester = marketplace_test();
    std::vector<DimensionalFeedback> feedbacks;
    for (int i = 0; i < 20; ++i) feedbacks.push_back(df(i + 1, {kGood, kGood, kGood}));
    const auto result = tester.test(feedbacks);
    EXPECT_FALSE(result.sufficient);
    EXPECT_TRUE(result.passed);
}

TEST(MultiDim, HonestOnAllDimensionsPasses) {
    const auto tester = marketplace_test();
    stats::Rng rng{1101};
    std::vector<DimensionalFeedback> feedbacks;
    for (int i = 0; i < 500; ++i) {
        feedbacks.push_back(df(i + 1, {rng.bernoulli(0.92) ? kGood : kBad,
                                       rng.bernoulli(0.88) ? kGood : kBad,
                                       rng.bernoulli(0.95) ? kGood : kBad}));
    }
    const auto result = tester.test(feedbacks);
    ASSERT_TRUE(result.sufficient);
    EXPECT_TRUE(result.passed)
        << ::testing::PrintToString(result.failed_dimensions());
    EXPECT_EQ(result.per_dimension.size(), 3u);
}

TEST(MultiDim, SingleDimensionManipulationIsLocalized) {
    // Great delivery/price, but the quality dimension hides a hibernating
    // attack: only "quality" must fail.
    const auto tester = marketplace_test();
    stats::Rng rng{1102};
    std::vector<DimensionalFeedback> feedbacks;
    for (int i = 0; i < 500; ++i) {
        const bool attack_phase = i >= 470;
        feedbacks.push_back(df(i + 1, {attack_phase ? kBad
                                                    : (rng.bernoulli(0.95) ? kGood : kBad),
                                       rng.bernoulli(0.9) ? kGood : kBad,
                                       rng.bernoulli(0.9) ? kGood : kBad}));
    }
    const auto result = tester.test(feedbacks);
    EXPECT_FALSE(result.passed);
    const auto failed = result.failed_dimensions();
    ASSERT_EQ(failed.size(), 1u);
    EXPECT_EQ(failed[0], "quality");
}

TEST(MultiDim, TestDimensionByName) {
    const auto tester = marketplace_test();
    stats::Rng rng{1103};
    std::vector<DimensionalFeedback> feedbacks;
    for (int i = 0; i < 400; ++i) {
        feedbacks.push_back(df(i + 1, {rng.bernoulli(0.9) ? kGood : kBad,
                                       kGood, kGood}));
    }
    EXPECT_TRUE(tester.test_dimension(feedbacks, "delivery").passed);
    EXPECT_TRUE(tester.test_dimension(feedbacks, "quality").sufficient);
    EXPECT_THROW((void)tester.test_dimension(feedbacks, "speed"),
                 std::invalid_argument);
}

TEST(MultiDim, NeutralRatingsCountAsNotGood) {
    MultiTestConfig config;
    config.collect_details = true;
    config.stop_on_failure = false;
    const auto tester = MultiDimensionalTest{{"only"}, config, shared_cal()};
    stats::Rng rng{1104};
    std::vector<DimensionalFeedback> feedbacks;
    for (int i = 0; i < 400; ++i) {
        const double u = rng.uniform();
        const repsys::Rating r = u < 0.9 ? kGood
                                 : u < 0.95 ? repsys::Rating::kNeutral
                                            : kBad;
        feedbacks.push_back(df(i + 1, {r}));
    }
    const auto result = tester.test(feedbacks);
    ASSERT_TRUE(result.sufficient);
    // p̂ over the full history must treat neutral as not-good: ~0.9, not
    // ~0.95 (which it would be if neutral counted as good).
    const auto& stages = result.per_dimension.at("only").details;
    ASSERT_FALSE(stages.empty());
    EXPECT_NEAR(stages.back().p_hat, 0.9, 0.04);
}

TEST(MultiDim, AgreesWithScalarMultiTestOnOneDimension) {
    const MultiDimensionalTest tester{{"d"}, MultiTestConfig{}, shared_cal()};
    const MultiTest scalar{{}, shared_cal()};
    stats::Rng rng{1105};
    std::vector<DimensionalFeedback> feedbacks;
    std::vector<std::uint8_t> outcomes;
    for (int i = 0; i < 437; ++i) {
        const bool good = rng.bernoulli(0.9);
        feedbacks.push_back(df(i + 1, {good ? kGood : kBad}));
        outcomes.push_back(good ? 1 : 0);
    }
    const auto dimensional = tester.test(feedbacks);
    const auto direct = scalar.test(std::span<const std::uint8_t>{outcomes});
    EXPECT_EQ(dimensional.passed, direct.passed);
    EXPECT_EQ(dimensional.per_dimension.at("d").stages_run, direct.stages_run);
    EXPECT_DOUBLE_EQ(dimensional.per_dimension.at("d").min_margin,
                     direct.min_margin);
}

}  // namespace
}  // namespace hpr::core
