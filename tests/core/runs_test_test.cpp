// Unit tests for the Wald-Wolfowitz runs test (core/runs_test.h).

#include "core/runs_test.h"

#include <gtest/gtest.h>

#include "core/behavior_test.h"
#include "sim/generators.h"

namespace hpr::core {
namespace {

std::vector<std::uint8_t> pattern(const std::string& bits) {
    std::vector<std::uint8_t> out;
    for (const char c : bits) out.push_back(c == '1' ? 1 : 0);
    return out;
}

TEST(RunsTest, RejectsBadConfig) {
    RunsTestConfig bad;
    bad.confidence = 1.0;
    EXPECT_THROW(RunsTest{bad}, std::invalid_argument);
    bad = {};
    bad.min_each = 1;
    EXPECT_THROW(RunsTest{bad}, std::invalid_argument);
}

TEST(RunsTest, CountsRunsCorrectly) {
    RunsTestConfig config;
    config.min_each = 2;
    const RunsTest tester{config};
    // 1100011 -> runs: 11, 000, 11 = 3.
    const auto result = tester.test(std::span<const std::uint8_t>{pattern("1100011")});
    EXPECT_EQ(result.runs, 3u);
    EXPECT_EQ(result.good, 4u);
    EXPECT_EQ(result.bad, 3u);
}

TEST(RunsTest, OneSidedHistoriesAreInsufficient) {
    const RunsTest tester;
    const std::vector<std::uint8_t> all_good(200, 1);
    const auto result = tester.test(std::span<const std::uint8_t>{all_good});
    EXPECT_FALSE(result.sufficient);
    EXPECT_TRUE(result.passed);
    const std::vector<std::uint8_t> empty;
    EXPECT_TRUE(tester.test(std::span<const std::uint8_t>{empty}).passed);
}

TEST(RunsTest, HonestStreamsMostlyPass) {
    const RunsTest tester;
    stats::Rng rng{5001};
    int failures = 0;
    constexpr int kTrials = 300;
    for (int t = 0; t < kTrials; ++t) {
        const auto outcomes = sim::honest_outcomes(600, 0.8, rng);
        if (!tester.test(std::span<const std::uint8_t>{outcomes}).passed) ++failures;
    }
    // Asymptotically a 5% two-sided test.
    EXPECT_LT(failures, kTrials / 10);
    EXPECT_GT(failures, 0);  // but it is a real test, not a rubber stamp
}

TEST(RunsTest, StrictAlternationHasTooManyRuns) {
    const RunsTest tester;
    std::vector<std::uint8_t> alternating;
    for (int i = 0; i < 200; ++i) alternating.push_back(i % 2 == 0 ? 1 : 0);
    const auto result = tester.test(std::span<const std::uint8_t>{alternating});
    ASSERT_TRUE(result.sufficient);
    EXPECT_FALSE(result.passed);
    EXPECT_GT(result.z, 0.0);          // over-alternating
    EXPECT_FALSE(result.clustered());
    EXPECT_EQ(result.runs, 200u);
}

TEST(RunsTest, BurstsHaveTooFewRuns) {
    // 300 goods then 40 bads then 300 goods: 3 runs where ~66 expected.
    const RunsTest tester;
    std::vector<std::uint8_t> bursty(300, 1);
    bursty.insert(bursty.end(), 40, std::uint8_t{0});
    bursty.insert(bursty.end(), 300, std::uint8_t{1});
    const auto result = tester.test(std::span<const std::uint8_t>{bursty});
    ASSERT_TRUE(result.sufficient);
    EXPECT_FALSE(result.passed);
    EXPECT_LT(result.z, 0.0);
    EXPECT_TRUE(result.clustered());
    EXPECT_EQ(result.runs, 3u);
    EXPECT_GT(result.expected_runs, 30.0);
}

TEST(RunsTest, DetectsHibernatingTail) {
    const RunsTest tester;
    stats::Rng rng{5002};
    int detected = 0;
    constexpr int kTrials = 40;
    for (int t = 0; t < kTrials; ++t) {
        auto outcomes = sim::honest_outcomes(500, 0.9, rng);
        outcomes.insert(outcomes.end(), 30, std::uint8_t{0});
        if (!tester.test(std::span<const std::uint8_t>{outcomes}).passed) ++detected;
    }
    EXPECT_GT(detected, kTrials * 3 / 4);
}

TEST(RunsTest, BothScreensCatchTightPeriodicAttacks) {
    // Exactly one bad per 10 transactions: the window test sees the
    // underdispersed counts (point mass at 9); the runs test sees the
    // over-regular spacing (isolated bads mean ~20% more runs than an
    // exchangeable stream, z > 0).  Tight periodicity cannot hide from
    // either statistic.
    const RunsTest runs_tester;
    const BehaviorTest window_tester;
    stats::Rng rng{5003};
    int runs_detected = 0;
    int window_detected = 0;
    constexpr int kTrials = 40;
    for (int t = 0; t < kTrials; ++t) {
        const auto outcomes = sim::periodic_outcomes(800, 10, 0.1, rng);
        const std::span<const std::uint8_t> view{outcomes};
        const auto runs_result = runs_tester.test(view);
        if (!runs_result.passed) {
            ++runs_detected;
            EXPECT_GT(runs_result.z, 0.0);  // over-alternating direction
        }
        if (!window_tester.test(view).passed) ++window_detected;
    }
    EXPECT_GT(window_detected, kTrials * 3 / 4);
    EXPECT_GT(runs_detected, kTrials * 3 / 4);
}

TEST(RunsTest, BlindToWindowCountAnomaliesWithHonestSpacing) {
    // The complementarity direction that does hold: shuffle a rigid
    // "exactly one bad per window" pattern *within each pair of windows*
    // so spacing stays honest-ish while per-window counts... still rigid.
    // Simpler and airtight: an exchangeable stream (honest) passes the
    // runs test even when a *global* property (here: an engineered exact
    // 10% bad count) would be distribution-relevant.  The runs test
    // conditions on counts, so it cannot see count engineering at all.
    const RunsTest tester;
    stats::Rng rng{5006};
    int flagged = 0;
    constexpr int kTrials = 60;
    for (int t = 0; t < kTrials; ++t) {
        // Exactly 80 bads in 800, positions fully random: count-engineered
        // (binomial would have variance in the count) but exchangeable.
        std::vector<std::uint8_t> outcomes(800, 1);
        std::vector<std::size_t> order(800);
        for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
        rng.shuffle(order);
        for (int b = 0; b < 80; ++b) outcomes[order[static_cast<std::size_t>(b)]] = 0;
        if (!tester.test(std::span<const std::uint8_t>{outcomes}).passed) ++flagged;
    }
    // Fully exchangeable by construction: flags stay at the nominal rate.
    EXPECT_LT(flagged, kTrials / 6);
}

TEST(RunsTest, ConfidenceControlsStrictness) {
    RunsTestConfig strict;
    strict.confidence = 0.99;
    const RunsTest at95;
    const RunsTest at99{strict};
    stats::Rng rng{5004};
    int flips = 0;
    for (int t = 0; t < 200; ++t) {
        const auto outcomes = sim::honest_outcomes(400, 0.8, rng);
        const std::span<const std::uint8_t> view{outcomes};
        const bool pass95 = at95.test(view).passed;
        const bool pass99 = at99.test(view).passed;
        // 99% can only be more permissive.
        ASSERT_TRUE(!pass95 || pass99);
        if (pass99 && !pass95) ++flips;
    }
    EXPECT_GT(flips, 0);
}

TEST(RunsTest, FeedbackOverloadAgrees) {
    const RunsTest tester;
    stats::Rng rng{5005};
    const auto history = sim::honest_history(400, 0.85, rng);
    std::vector<std::uint8_t> outcomes;
    for (const auto& f : history.feedbacks()) outcomes.push_back(f.good() ? 1 : 0);
    const auto a = tester.test(history.view());
    const auto b = tester.test(std::span<const std::uint8_t>{outcomes});
    EXPECT_EQ(a.runs, b.runs);
    EXPECT_EQ(a.passed, b.passed);
    EXPECT_DOUBLE_EQ(a.z, b.z);
}

}  // namespace
}  // namespace hpr::core
