// Unit tests for collusion-resilient behavior testing (core/collusion.h) —
// paper §4.

#include "core/collusion.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "sim/generators.h"

namespace hpr::core {
namespace {

std::shared_ptr<stats::Calibrator> shared_cal() {
    static auto cal = make_calibrator(BehaviorTestConfig{});
    return cal;
}

repsys::Feedback fb(repsys::Timestamp t, repsys::EntityId client, bool good) {
    return repsys::Feedback{t, 1, client,
                            good ? repsys::Rating::kPositive
                                 : repsys::Rating::kNegative};
}

TEST(ReorderByIssuer, EmptyInput) {
    EXPECT_TRUE(reorder_by_issuer({}).empty());
}

TEST(ReorderByIssuer, IsAPermutation) {
    stats::Rng rng{41};
    std::vector<repsys::Feedback> feedbacks;
    for (int i = 0; i < 300; ++i) {
        feedbacks.push_back(fb(i + 1,
                               static_cast<repsys::EntityId>(rng.uniform_int(std::uint64_t{12})),
                               rng.bernoulli(0.8)));
    }
    auto reordered = reorder_by_issuer(feedbacks);
    ASSERT_EQ(reordered.size(), feedbacks.size());
    auto key = [](const repsys::Feedback& f) {
        return std::make_tuple(f.time, f.server, f.client, f.rating);
    };
    std::vector<std::tuple<repsys::Timestamp, repsys::EntityId, repsys::EntityId,
                           repsys::Rating>>
        a, b;
    for (const auto& f : feedbacks) a.push_back(key(f));
    for (const auto& f : reordered) b.push_back(key(f));
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
}

TEST(ReorderByIssuer, GroupsAreContiguousAndSortedBySize) {
    // Clients: 7 has 3 feedbacks, 8 has 2, 9 has 1.
    const std::vector<repsys::Feedback> feedbacks{
        fb(1, 9, true),  fb(2, 7, true), fb(3, 8, false),
        fb(4, 7, false), fb(5, 8, true), fb(6, 7, true)};
    const auto reordered = reorder_by_issuer(feedbacks);
    std::vector<repsys::EntityId> clients;
    for (const auto& f : reordered) clients.push_back(f.client);
    EXPECT_EQ(clients, (std::vector<repsys::EntityId>{7, 7, 7, 8, 8, 9}));
}

TEST(ReorderByIssuer, WithinGroupTimeOrderPreserved) {
    const std::vector<repsys::Feedback> feedbacks{
        fb(1, 5, true), fb(2, 6, false), fb(3, 5, false), fb(4, 5, true)};
    const auto reordered = reorder_by_issuer(feedbacks);
    // Group 5 first (3 feedbacks) in time order 1, 3, 4; then group 6.
    ASSERT_EQ(reordered.size(), 4u);
    EXPECT_EQ(reordered[0].time, 1);
    EXPECT_EQ(reordered[1].time, 3);
    EXPECT_EQ(reordered[2].time, 4);
    EXPECT_EQ(reordered[3].client, 6u);
}

TEST(ReorderByIssuer, TiesBrokenByFirstAppearance) {
    const std::vector<repsys::Feedback> feedbacks{
        fb(1, 30, true), fb(2, 20, true), fb(3, 30, true), fb(4, 20, true)};
    const auto reordered = reorder_by_issuer(feedbacks);
    // Both groups have size 2; client 30 appeared first.
    EXPECT_EQ(reordered[0].client, 30u);
    EXPECT_EQ(reordered[2].client, 20u);
}

TEST(ReorderByIssuer, ReorderIsIdempotent) {
    stats::Rng rng{42};
    std::vector<repsys::Feedback> feedbacks;
    for (int i = 0; i < 200; ++i) {
        feedbacks.push_back(fb(i + 1,
                               static_cast<repsys::EntityId>(rng.uniform_int(std::uint64_t{8})),
                               rng.bernoulli(0.9)));
    }
    const auto once = reorder_by_issuer(feedbacks);
    // Re-ordering an already-grouped sequence re-sorts groups by the same
    // size key; sizes are unchanged, and within groups order is kept, so
    // the client sequence must be identical.
    const auto twice = reorder_by_issuer(once);
    std::vector<repsys::EntityId> c_once, c_twice;
    for (const auto& f : once) c_once.push_back(f.client);
    for (const auto& f : twice) c_twice.push_back(f.client);
    EXPECT_EQ(c_once, c_twice);
}

TEST(CollusionResilientTest, HonestServerWithDiverseClientsPasses) {
    const CollusionResilientTest tester{{}, shared_cal()};
    stats::Rng rng{43};
    int failures = 0;
    constexpr int kTrials = 60;
    for (int t = 0; t < kTrials; ++t) {
        // Honest server, many clients, uniform service quality.
        std::vector<repsys::Feedback> feedbacks;
        for (int i = 0; i < 400; ++i) {
            feedbacks.push_back(fb(i + 1,
                                   static_cast<repsys::EntityId>(rng.uniform_int(std::uint64_t{60})),
                                   rng.bernoulli(0.92)));
        }
        if (!tester.test_single(feedbacks).passed) ++failures;
    }
    EXPECT_LT(failures, kTrials / 6);
}

TEST(CollusionResilientTest, ColluderBoostedAttackerFails) {
    // Attacker: 5 colluders file all-positive feedback; victims (many
    // distinct clients) receive mostly bad service.  Time-ordered the
    // history looks statistically fine; issuer-reordered it does not.
    const CollusionResilientTest tester{{}, shared_cal()};
    stats::Rng rng{44};
    int detected = 0;
    constexpr int kTrials = 30;
    for (int t = 0; t < kTrials; ++t) {
        std::vector<repsys::Feedback> feedbacks;
        repsys::Timestamp time = 1;
        repsys::EntityId next_victim = 100;
        for (int i = 0; i < 400; ++i) {
            if (i % 10 == 0) {
                // One cheat per ten transactions, each on a fresh victim.
                feedbacks.push_back(fb(time++, next_victim++, false));
            } else {
                // Colluders cover with fake positives.
                feedbacks.push_back(fb(
                    time++, static_cast<repsys::EntityId>(2 + (i % 5)), true));
            }
        }
        if (!tester.test_multi(feedbacks).passed) ++detected;
    }
    EXPECT_GT(detected, kTrials * 3 / 4);
}

TEST(CollusionResilientTest, SingleAndMultiAgreeOnObviousCases) {
    const CollusionResilientTest tester{{}, shared_cal()};
    // All-good from many clients: consistent under any ordering.
    std::vector<repsys::Feedback> good;
    for (int i = 0; i < 300; ++i) {
        good.push_back(fb(i + 1, static_cast<repsys::EntityId>(i % 40), true));
    }
    EXPECT_TRUE(tester.test_single(good).passed);
    EXPECT_TRUE(tester.test_multi(good).passed);
}

TEST(CollusionResilientTest, ShortHistoryInsufficient) {
    const CollusionResilientTest tester{{}, shared_cal()};
    const std::vector<repsys::Feedback> tiny{fb(1, 2, true), fb(2, 3, true)};
    const auto single = tester.test_single(tiny);
    EXPECT_FALSE(single.sufficient);
    EXPECT_TRUE(single.passed);
    const auto multi = tester.test_multi(tiny);
    EXPECT_FALSE(multi.sufficient);
    EXPECT_TRUE(multi.passed);
}

}  // namespace
}  // namespace hpr::core
