// Unit tests for multinomial behavior testing (core/multinomial_test.h) —
// paper §3.1 multi-value feedback extension.

#include "core/multinomial_test.h"

#include <gtest/gtest.h>

#include "stats/multinomial.h"
#include "stats/rng.h"

namespace hpr::core {
namespace {

std::shared_ptr<stats::Calibrator> shared_cal() {
    static auto cal = make_calibrator(BehaviorTestConfig{});
    return cal;
}

repsys::Rating draw_rating(stats::Rng& rng, double p_pos, double p_neu) {
    const double u = rng.uniform();
    if (u < p_pos) return repsys::Rating::kPositive;
    if (u < p_pos + p_neu) return repsys::Rating::kNeutral;
    return repsys::Rating::kNegative;
}

std::vector<repsys::Feedback> trinary_history(std::size_t n, double p_pos,
                                              double p_neu, stats::Rng& rng) {
    std::vector<repsys::Feedback> feedbacks;
    for (std::size_t i = 0; i < n; ++i) {
        feedbacks.push_back(repsys::Feedback{static_cast<repsys::Timestamp>(i + 1), 1,
                                             static_cast<repsys::EntityId>(2 + i % 30),
                                             draw_rating(rng, p_pos, p_neu)});
    }
    return feedbacks;
}

TEST(MultinomialBehavior, ShortHistoryInsufficient) {
    const MultinomialBehaviorTest tester{{}, shared_cal()};
    stats::Rng rng{71};
    const auto result = tester.test(trinary_history(25, 0.8, 0.15, rng));
    EXPECT_FALSE(result.sufficient);
    EXPECT_TRUE(result.passed);
}

TEST(MultinomialBehavior, HonestTrinaryFeedbackPasses) {
    const MultinomialBehaviorTest tester{{}, shared_cal()};
    stats::Rng rng{72};
    int failures = 0;
    constexpr int kTrials = 40;
    for (int t = 0; t < kTrials; ++t) {
        if (!tester.test(trinary_history(500, 0.8, 0.15, rng)).passed) ++failures;
    }
    // Three marginal tests per history: allow a higher — but still
    // bounded — family-wise false-positive rate.
    EXPECT_LT(failures, kTrials / 4);
}

TEST(MultinomialBehavior, EstimatesCategoryProbabilities) {
    const MultinomialBehaviorTest tester{{}, shared_cal()};
    stats::Rng rng{73};
    const auto result = tester.test(trinary_history(2000, 0.8, 0.15, rng));
    ASSERT_TRUE(result.sufficient);
    ASSERT_EQ(result.p_hat.size(), 3u);
    EXPECT_NEAR(result.p_hat[static_cast<std::size_t>(repsys::Rating::kPositive)],
                0.8, 0.05);
    EXPECT_NEAR(result.p_hat[static_cast<std::size_t>(repsys::Rating::kNeutral)],
                0.15, 0.05);
    EXPECT_NEAR(result.p_hat[static_cast<std::size_t>(repsys::Rating::kNegative)],
                0.05, 0.05);
}

TEST(MultinomialBehavior, DetectsRegimeShiftInNeutrals) {
    // First half mostly positive, second half mostly neutral: each window
    // is pure, so per-category counts are bimodal — inconsistent with one
    // multinomial.
    const MultinomialBehaviorTest tester{{}, shared_cal()};
    stats::Rng rng{74};
    std::vector<repsys::Feedback> feedbacks;
    for (std::size_t i = 0; i < 600; ++i) {
        const bool first_half = i < 300;
        feedbacks.push_back(repsys::Feedback{
            static_cast<repsys::Timestamp>(i + 1), 1,
            static_cast<repsys::EntityId>(2 + i % 30),
            draw_rating(rng, first_half ? 0.95 : 0.05, first_half ? 0.03 : 0.92)});
    }
    const auto result = tester.test(feedbacks);
    EXPECT_FALSE(result.passed);
}

TEST(MultinomialBehavior, DetectsBurstOfNegatives) {
    const MultinomialBehaviorTest tester{{}, shared_cal()};
    stats::Rng rng{75};
    auto feedbacks = trinary_history(500, 0.85, 0.12, rng);
    for (int i = 0; i < 30; ++i) {
        feedbacks.push_back(repsys::Feedback{
            static_cast<repsys::Timestamp>(1000 + i), 1,
            static_cast<repsys::EntityId>(2 + i % 30), repsys::Rating::kNegative});
    }
    EXPECT_FALSE(tester.test(feedbacks).passed);
}

TEST(MultinomialBehavior, BinaryHistoryMatchesBinaryTest) {
    // With no neutral ratings, the positive-category test is exactly the
    // binary behavior test.
    BehaviorTestConfig config;
    const MultinomialBehaviorTest trinary{config, shared_cal()};
    const BehaviorTest binary{config, shared_cal()};
    stats::Rng rng{76};
    std::vector<repsys::Feedback> feedbacks;
    for (std::size_t i = 0; i < 400; ++i) {
        feedbacks.push_back(repsys::Feedback{
            static_cast<repsys::Timestamp>(i + 1), 1, 2,
            rng.bernoulli(0.9) ? repsys::Rating::kPositive
                               : repsys::Rating::kNegative});
    }
    const auto multi_result = trinary.test(feedbacks);
    const auto binary_result = binary.test(std::span<const repsys::Feedback>{feedbacks});
    ASSERT_TRUE(multi_result.sufficient);
    const auto& positive = multi_result.per_category[static_cast<std::size_t>(
        repsys::Rating::kPositive)];
    EXPECT_DOUBLE_EQ(positive.distance, binary_result.distance);
    EXPECT_DOUBLE_EQ(positive.p_hat, binary_result.p_hat);
    EXPECT_EQ(positive.passed, binary_result.passed);
}

}  // namespace
}  // namespace hpr::core
