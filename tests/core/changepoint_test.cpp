// Unit tests for change-point detection and drift-tolerant testing
// (core/changepoint.h).

#include "core/changepoint.h"

#include <gtest/gtest.h>

#include "sim/generators.h"

namespace hpr::core {
namespace {

std::shared_ptr<stats::Calibrator> shared_cal() {
    static auto cal = make_calibrator(BehaviorTestConfig{});
    return cal;
}

std::vector<std::uint8_t> two_regime(std::size_t n1, double p1, std::size_t n2,
                                     double p2, stats::Rng& rng) {
    auto outcomes = sim::honest_outcomes(n1, p1, rng);
    const auto second = sim::honest_outcomes(n2, p2, rng);
    outcomes.insert(outcomes.end(), second.begin(), second.end());
    return outcomes;
}

TEST(ChangePointDetector, RejectsBadConfig) {
    ChangePointConfig bad;
    bad.window_size = 0;
    EXPECT_THROW(ChangePointDetector{bad}, std::invalid_argument);
    bad = {};
    bad.min_segment_windows = 0;
    EXPECT_THROW(ChangePointDetector{bad}, std::invalid_argument);
    bad = {};
    bad.penalty_factor = -1.0;
    EXPECT_THROW(ChangePointDetector{bad}, std::invalid_argument);
}

TEST(ChangePointDetector, StationaryStreamHasOneSegment) {
    const ChangePointDetector detector;
    stats::Rng rng{911};
    int spurious = 0;
    for (int trial = 0; trial < 30; ++trial) {
        const auto outcomes = sim::honest_outcomes(600, 0.9, rng);
        const auto segments =
            detector.segment(std::span<const std::uint8_t>{outcomes});
        ASSERT_GE(segments.size(), 1u);
        if (segments.size() > 1) ++spurious;
    }
    EXPECT_LE(spurious, 3);
}

TEST(ChangePointDetector, FindsAnObviousShift) {
    const ChangePointDetector detector;
    stats::Rng rng{912};
    const auto outcomes = two_regime(400, 0.95, 400, 0.6, rng);
    const auto change_points =
        detector.detect(std::span<const std::uint8_t>{outcomes});
    ASSERT_EQ(change_points.size(), 1u);
    // The shift is at window 40; allow a couple of windows of slack.
    EXPECT_NEAR(static_cast<double>(change_points[0].window_index), 40.0, 3.0);
    EXPECT_GT(change_points[0].p_before, change_points[0].p_after);
    EXPECT_GT(change_points[0].gain, 0.0);
}

TEST(ChangePointDetector, SegmentsPartitionTheWindows) {
    const ChangePointDetector detector;
    stats::Rng rng{913};
    const auto outcomes = two_regime(300, 0.95, 300, 0.7, rng);
    const auto segments = detector.segment(std::span<const std::uint8_t>{outcomes});
    ASSERT_GE(segments.size(), 2u);
    EXPECT_EQ(segments.front().begin_window, 0u);
    EXPECT_EQ(segments.back().end_window, 60u);
    for (std::size_t i = 1; i < segments.size(); ++i) {
        EXPECT_EQ(segments[i].begin_window, segments[i - 1].end_window);
    }
    for (const Segment& s : segments) {
        EXPECT_GE(s.windows(), detector.config().min_segment_windows);
        EXPECT_GE(s.p, 0.0);
        EXPECT_LE(s.p, 1.0);
    }
}

TEST(ChangePointDetector, FindsMultipleShifts) {
    const ChangePointDetector detector;
    stats::Rng rng{914};
    auto outcomes = two_regime(300, 0.95, 300, 0.55, rng);
    const auto third = sim::honest_outcomes(300, 0.9, rng);
    outcomes.insert(outcomes.end(), third.begin(), third.end());
    const auto change_points =
        detector.detect(std::span<const std::uint8_t>{outcomes});
    EXPECT_EQ(change_points.size(), 2u);
    // Ascending order by construction.
    for (std::size_t i = 1; i < change_points.size(); ++i) {
        EXPECT_LT(change_points[i - 1].window_index, change_points[i].window_index);
    }
}

TEST(ChangePointDetector, ShortHistoryHasNoSplits) {
    const ChangePointDetector detector;
    const std::vector<std::uint32_t> counts{9, 10, 8, 9, 2};  // < 2*min_segment
    EXPECT_TRUE(detector.segment_windows(counts).size() == 1 ||
                detector.segment_windows(counts).empty());
    const std::vector<std::uint32_t> empty;
    EXPECT_TRUE(detector.segment_windows(empty).empty());
}

TEST(ChangePointDetector, MaxChangePointsCaps) {
    ChangePointConfig config;
    config.max_change_points = 1;
    const ChangePointDetector detector{config};
    stats::Rng rng{915};
    auto outcomes = two_regime(300, 0.95, 300, 0.5, rng);
    const auto third = sim::honest_outcomes(300, 0.9, rng);
    outcomes.insert(outcomes.end(), third.begin(), third.end());
    EXPECT_LE(detector.detect(std::span<const std::uint8_t>{outcomes}).size(), 1u);
}

TEST(ChangePointDetector, HigherPenaltyFindsFewerSplits) {
    ChangePointConfig strict;
    strict.penalty_factor = 50.0;
    const ChangePointDetector lenient;
    const ChangePointDetector conservative{strict};
    stats::Rng rng{916};
    const auto outcomes = two_regime(300, 0.95, 300, 0.8, rng);
    const std::span<const std::uint8_t> view{outcomes};
    EXPECT_GE(lenient.detect(view).size(), conservative.detect(view).size());
}

TEST(AdaptiveBehaviorTest, HonestDriftPassesWhereStaticTestFails) {
    // An honest provider whose uncontrollable quality dropped 0.95 -> 0.75
    // mid-history: the pooled static test flags the mixture, the adaptive
    // test segments it and passes both regimes.
    const BehaviorTest static_test{{}, shared_cal()};
    const AdaptiveBehaviorTest adaptive{{}, {}, shared_cal()};
    stats::Rng rng{917};
    int static_flags = 0;
    int adaptive_flags = 0;
    constexpr int kTrials = 20;
    for (int t = 0; t < kTrials; ++t) {
        const auto outcomes = two_regime(400, 0.95, 400, 0.75, rng);
        const std::span<const std::uint8_t> view{outcomes};
        if (!static_test.test(view).passed) ++static_flags;
        const auto result = adaptive.test(view);
        if (!result.passed) ++adaptive_flags;
    }
    EXPECT_GT(static_flags, kTrials / 2);
    EXPECT_LT(adaptive_flags, kTrials / 3);
}

TEST(AdaptiveBehaviorTest, RigidManipulationStillFails) {
    // One bad per window, rigidly: no amount of segmentation makes a point
    // mass look binomial.
    const AdaptiveBehaviorTest adaptive{{}, {}, shared_cal()};
    std::vector<std::uint8_t> rigid;
    for (int w = 0; w < 60; ++w) {
        rigid.push_back(0);
        for (int i = 0; i < 9; ++i) rigid.push_back(1);
    }
    const auto result = adaptive.test(std::span<const std::uint8_t>{rigid});
    ASSERT_TRUE(result.sufficient);
    EXPECT_FALSE(result.passed);
    EXPECT_LT(result.first_failed(), result.per_segment.size());
}

TEST(AdaptiveBehaviorTest, ShortHistoryInsufficient) {
    const AdaptiveBehaviorTest adaptive{{}, {}, shared_cal()};
    const std::vector<std::uint8_t> outcomes(25, 1);
    const auto result = adaptive.test(std::span<const std::uint8_t>{outcomes});
    EXPECT_FALSE(result.sufficient);
    EXPECT_TRUE(result.passed);
    EXPECT_TRUE(result.segments.empty());
}

TEST(AdaptiveBehaviorTest, ReportsSegmentsAlignedWithResults) {
    const AdaptiveBehaviorTest adaptive{{}, {}, shared_cal()};
    stats::Rng rng{918};
    const auto outcomes = two_regime(300, 0.95, 300, 0.6, rng);
    const auto result = adaptive.test(std::span<const std::uint8_t>{outcomes});
    ASSERT_TRUE(result.sufficient);
    EXPECT_EQ(result.segments.size(), result.per_segment.size());
    ASSERT_GE(result.segments.size(), 2u);
    EXPECT_GT(result.segments.front().p, result.segments.back().p);
}

TEST(AdaptiveBehaviorTest, FeedbackOverloadAgrees) {
    stats::Rng rng{919};
    const auto history = sim::honest_history(400, 0.9, rng);
    std::vector<std::uint8_t> outcomes;
    for (const auto& f : history.feedbacks()) outcomes.push_back(f.good() ? 1 : 0);
    const AdaptiveBehaviorTest adaptive{{}, {}, shared_cal()};
    EXPECT_EQ(adaptive.test(history.view()).passed,
              adaptive.test(std::span<const std::uint8_t>{outcomes}).passed);
}

}  // namespace
}  // namespace hpr::core
