// Unit tests for window statistics (core/window_stats.h).

#include "core/window_stats.h"

#include <gtest/gtest.h>

#include "stats/rng.h"

namespace hpr::core {
namespace {

std::vector<repsys::Feedback> feedbacks_from(const std::vector<int>& outcomes) {
    std::vector<repsys::Feedback> fs;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        fs.push_back(repsys::Feedback{
            static_cast<repsys::Timestamp>(i + 1), 1, 2,
            outcomes[i] != 0 ? repsys::Rating::kPositive : repsys::Rating::kNegative});
    }
    return fs;
}

TEST(WindowStats, RejectsZeroWindowSize) {
    const auto fs = feedbacks_from({1, 1, 1});
    EXPECT_THROW((void)compute_window_stats(std::span<const repsys::Feedback>{fs}, 0),
                 std::invalid_argument);
}

TEST(WindowStats, ExactMultipleUsesAllTransactions) {
    const auto fs = feedbacks_from({1, 1, 0, 1, 0, 0});
    const WindowStats ws =
        compute_window_stats(std::span<const repsys::Feedback>{fs}, 3);
    EXPECT_EQ(ws.windows(), 2u);
    EXPECT_EQ(ws.transactions_used, 6u);
    // Newest window first: (1,0,0) -> 1 good; older window (1,1,0) -> 2.
    ASSERT_EQ(ws.good_counts.size(), 2u);
    EXPECT_EQ(ws.good_counts[0], 1u);
    EXPECT_EQ(ws.good_counts[1], 2u);
    EXPECT_EQ(ws.good_total, 3u);
    EXPECT_NEAR(ws.p_hat(), 0.5, 1e-12);
}

TEST(WindowStats, OldestRemainderIsIgnored) {
    // 7 transactions, window 3: the oldest one (index 0) is dropped.
    const auto fs = feedbacks_from({0, 1, 1, 1, 0, 1, 1});
    const WindowStats ws =
        compute_window_stats(std::span<const repsys::Feedback>{fs}, 3);
    EXPECT_EQ(ws.windows(), 2u);
    EXPECT_EQ(ws.transactions_used, 6u);
    // Newest window (0,1,1) -> 2 goods; then (1,1,1)... wait: windows cover
    // indices [4,7) -> (0,1,1) = 2 and [1,4) -> (1,1,1) = 3.
    EXPECT_EQ(ws.good_counts[0], 2u);
    EXPECT_EQ(ws.good_counts[1], 3u);
}

TEST(WindowStats, TooShortHistoryHasNoWindows) {
    const auto fs = feedbacks_from({1, 1});
    const WindowStats ws =
        compute_window_stats(std::span<const repsys::Feedback>{fs}, 3);
    EXPECT_EQ(ws.windows(), 0u);
    EXPECT_EQ(ws.transactions_used, 0u);
    EXPECT_EQ(ws.p_hat(), 0.0);
}

TEST(WindowStats, EmptyInput) {
    const std::vector<repsys::Feedback> none;
    const WindowStats ws =
        compute_window_stats(std::span<const repsys::Feedback>{none}, 10);
    EXPECT_EQ(ws.windows(), 0u);
}

TEST(WindowStats, DistributionMatchesCounts) {
    const auto fs = feedbacks_from({1, 1, 0, 1, 1, 1, 0, 0, 1});
    const WindowStats ws =
        compute_window_stats(std::span<const repsys::Feedback>{fs}, 3);
    const auto dist = ws.distribution();
    EXPECT_EQ(dist.size(), ws.windows());
    EXPECT_EQ(dist.value_sum(), ws.good_total);
    EXPECT_EQ(dist.max_value(), 3u);
}

TEST(WindowStats, OutcomeOverloadMatchesFeedbackOverload) {
    stats::Rng rng{9};
    std::vector<int> raw;
    std::vector<std::uint8_t> outcomes;
    for (int i = 0; i < 137; ++i) {
        const int good = rng.bernoulli(0.8) ? 1 : 0;
        raw.push_back(good);
        outcomes.push_back(static_cast<std::uint8_t>(good));
    }
    const auto fs = feedbacks_from(raw);
    const WindowStats from_feedback =
        compute_window_stats(std::span<const repsys::Feedback>{fs}, 10);
    const WindowStats from_outcomes =
        compute_window_stats(std::span<const std::uint8_t>{outcomes}, 10);
    EXPECT_EQ(from_feedback.good_counts, from_outcomes.good_counts);
    EXPECT_EQ(from_feedback.good_total, from_outcomes.good_total);
}

TEST(WindowStats, PHatEqualsGoodRatioOfUsedSuffix) {
    stats::Rng rng{10};
    std::vector<std::uint8_t> outcomes;
    for (int i = 0; i < 1003; ++i) outcomes.push_back(rng.bernoulli(0.93) ? 1 : 0);
    const WindowStats ws =
        compute_window_stats(std::span<const std::uint8_t>{outcomes}, 10);
    std::size_t good = 0;
    for (std::size_t i = 3; i < outcomes.size(); ++i) good += outcomes[i];
    EXPECT_NEAR(ws.p_hat(), static_cast<double>(good) / 1000.0, 1e-12);
}

TEST(WindowStats, SuffixSharesNewestWindows) {
    // Key property behind O(n) multi-testing: the suffix of length L
    // contains exactly the newest floor(L/m) windows of the full sequence.
    stats::Rng rng{11};
    std::vector<std::uint8_t> outcomes;
    for (int i = 0; i < 257; ++i) outcomes.push_back(rng.bernoulli(0.7) ? 1 : 0);
    const std::span<const std::uint8_t> all{outcomes};
    const WindowStats full = compute_window_stats(all, 10);
    for (std::size_t suffix_len : {30u, 100u, 200u, 250u}) {
        const WindowStats suffix =
            compute_window_stats(all.subspan(all.size() - suffix_len, suffix_len), 10);
        ASSERT_EQ(suffix.windows(), suffix_len / 10);
        for (std::size_t w = 0; w < suffix.windows(); ++w) {
            ASSERT_EQ(suffix.good_counts[w], full.good_counts[w])
                << "suffix " << suffix_len << " window " << w;
        }
    }
}

}  // namespace
}  // namespace hpr::core
