// Unit tests for temporal categorizers (core/temporal.h).

#include "core/temporal.h"

#include <gtest/gtest.h>

#include "stats/rng.h"

namespace hpr::core {
namespace {

repsys::Feedback at(repsys::Timestamp time, bool good = true) {
    return repsys::Feedback{time, 1, 2,
                            good ? repsys::Rating::kPositive
                                 : repsys::Rating::kNegative};
}

TEST(Temporal, HourOfDay) {
    EXPECT_EQ(hour_of_day(0), 0);
    EXPECT_EQ(hour_of_day(kSecondsPerHour), 1);
    EXPECT_EQ(hour_of_day(23 * kSecondsPerHour + 59), 23);
    EXPECT_EQ(hour_of_day(kSecondsPerDay), 0);
    EXPECT_EQ(hour_of_day(-1), 23);  // pre-epoch wraps
}

TEST(Temporal, DayOfWeek) {
    EXPECT_EQ(day_of_week(0), 0);                       // Monday 00:00
    EXPECT_EQ(day_of_week(4 * kSecondsPerDay), 4);      // Friday
    EXPECT_EQ(day_of_week(5 * kSecondsPerDay), 5);      // Saturday
    EXPECT_EQ(day_of_week(kSecondsPerWeek), 0);         // wraps to Monday
    EXPECT_EQ(day_of_week(-kSecondsPerDay), 6);         // Sunday before epoch
}

TEST(Temporal, WeekdayWeekendCategorizer) {
    const auto categorize = weekday_weekend_categorizer();
    EXPECT_EQ(categorize(at(2 * kSecondsPerDay)), "weekday");   // Wednesday
    EXPECT_EQ(categorize(at(5 * kSecondsPerDay)), "weekend");   // Saturday
    EXPECT_EQ(categorize(at(6 * kSecondsPerDay + 100)), "weekend");
}

TEST(Temporal, BusinessHoursCategorizer) {
    const auto categorize = business_hours_categorizer(9, 17);
    EXPECT_EQ(categorize(at(10 * kSecondsPerHour)), "business");   // Mon 10:00
    EXPECT_EQ(categorize(at(8 * kSecondsPerHour)), "off-hours");   // Mon 08:00
    EXPECT_EQ(categorize(at(17 * kSecondsPerHour)), "off-hours");  // Mon 17:00
    // Saturday 10:00 is off-hours even inside the hour range.
    EXPECT_EQ(categorize(at(5 * kSecondsPerDay + 10 * kSecondsPerHour)),
              "off-hours");
    EXPECT_THROW((void)business_hours_categorizer(17, 9), std::invalid_argument);
    EXPECT_THROW((void)business_hours_categorizer(-1, 9), std::invalid_argument);
}

TEST(Temporal, TimeSliceCategorizer) {
    const auto categorize = time_slice_categorizer(100);
    EXPECT_EQ(categorize(at(0)), "epoch-0");
    EXPECT_EQ(categorize(at(99)), "epoch-0");
    EXPECT_EQ(categorize(at(100)), "epoch-1");
    EXPECT_EQ(categorize(at(250)), "epoch-2");
    EXPECT_EQ(categorize(at(-1)), "epoch--1");
    EXPECT_THROW((void)time_slice_categorizer(0), std::invalid_argument);
}

TEST(Temporal, WeekdayWeekendScreeningScenario) {
    // Paper §3.1's example end-to-end: a file-sharing server is solid on
    // weekdays (p=0.95) and congested on weekends (p=0.6).  Pooled
    // screening flags the mixture; per-time-category screening passes.
    stats::Rng rng{1001};
    std::vector<repsys::Feedback> feedbacks;
    repsys::Timestamp time = 0;
    for (int i = 0; i < 1400; ++i) {
        time += kSecondsPerHour;  // one transaction per hour for ~8 weeks
        const bool weekend = day_of_week(time) >= 5;
        feedbacks.push_back(at(time, rng.bernoulli(weekend ? 0.6 : 0.95)));
    }
    const auto cal = make_calibrator({});
    const MultiTest pooled{{}, cal};
    EXPECT_FALSE(pooled.test(std::span<const repsys::Feedback>{feedbacks}).passed);

    const CategoryTest by_time{MultiTestConfig{}, weekday_weekend_categorizer(), cal};
    const auto result = by_time.test(feedbacks);
    ASSERT_EQ(result.per_category.size(), 2u);
    EXPECT_TRUE(result.all_passed())
        << ::testing::PrintToString(result.failed_categories());
}

}  // namespace
}  // namespace hpr::core
