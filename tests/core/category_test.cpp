// Unit tests for category-partitioned behavior testing (core/category.h) —
// paper §4 closing discussion (the North-America/Africa example).

#include "core/category.h"

#include <gtest/gtest.h>

#include "stats/rng.h"

namespace hpr::core {
namespace {

std::shared_ptr<stats::Calibrator> shared_cal() {
    static auto cal = make_calibrator(BehaviorTestConfig{});
    return cal;
}

// Clients below 50 are "NA", the rest "AF".
std::string region_of(const repsys::Feedback& f) {
    return f.client < 50 ? "NA" : "AF";
}

repsys::Feedback fb(repsys::Timestamp t, repsys::EntityId client, bool good) {
    return repsys::Feedback{t, 1, client,
                            good ? repsys::Rating::kPositive
                                 : repsys::Rating::kNegative};
}

// Regions arrive in alternating blocks of 20 transactions (think
// time-of-day traffic patterns), so the pooled window statistics really
// mix two binomials instead of collapsing to one Bernoulli stream.
std::vector<repsys::Feedback> two_region_history(std::size_t n, double p_na,
                                                 double p_af, stats::Rng& rng) {
    std::vector<repsys::Feedback> feedbacks;
    for (std::size_t i = 0; i < n; ++i) {
        const bool na = (i / 20) % 2 == 0;
        const auto client = static_cast<repsys::EntityId>(
            na ? rng.uniform_int(std::uint64_t{50})
               : 50 + rng.uniform_int(std::uint64_t{50}));
        feedbacks.push_back(fb(static_cast<repsys::Timestamp>(i + 1), client,
                               rng.bernoulli(na ? p_na : p_af)));
    }
    return feedbacks;
}

TEST(PartitionByCategory, SplitsAndPreservesOrder) {
    const std::vector<repsys::Feedback> feedbacks{
        fb(1, 10, true), fb(2, 60, false), fb(3, 11, true), fb(4, 61, true)};
    const auto partitions = partition_by_category(feedbacks, region_of);
    ASSERT_EQ(partitions.size(), 2u);
    ASSERT_EQ(partitions.at("NA").size(), 2u);
    ASSERT_EQ(partitions.at("AF").size(), 2u);
    EXPECT_EQ(partitions.at("NA")[0].time, 1);
    EXPECT_EQ(partitions.at("NA")[1].time, 3);
    EXPECT_EQ(partitions.at("AF")[0].time, 2);
}

TEST(PartitionByCategory, NullCategorizerThrows) {
    EXPECT_THROW((void)partition_by_category({}, Categorizer{}),
                 std::invalid_argument);
}

TEST(CategoryTest, NullCategorizerThrows) {
    EXPECT_THROW(CategoryTest(MultiTestConfig{}, Categorizer{}),
                 std::invalid_argument);
}

TEST(CategoryTest, MixedQualityFailsPooledButPassesPerCategory) {
    // The paper's motivating case: uniform 0.95 quality to NA, 0.55 to AF.
    // Pooled, the bimodal mixture is far from one binomial; per category,
    // each region is honestly consistent.
    stats::Rng rng{61};
    const auto feedbacks = two_region_history(1200, 0.95, 0.55, rng);

    const MultiTest pooled{{}, shared_cal()};
    EXPECT_FALSE(pooled.test(std::span<const repsys::Feedback>{feedbacks}).passed);

    const CategoryTest per_region{MultiTestConfig{}, region_of, shared_cal()};
    const auto result = per_region.test(feedbacks);
    ASSERT_EQ(result.per_category.size(), 2u);
    EXPECT_TRUE(result.all_passed())
        << "failed: " << ::testing::PrintToString(result.failed_categories());
}

TEST(CategoryTest, DetectsAttackWithinOneCategory) {
    // Honest toward AF, hibernating-attack tail toward NA.
    stats::Rng rng{62};
    std::vector<repsys::Feedback> feedbacks = two_region_history(800, 0.95, 0.95, rng);
    for (int i = 0; i < 30; ++i) {
        feedbacks.push_back(fb(static_cast<repsys::Timestamp>(2000 + i),
                               static_cast<repsys::EntityId>(i % 50), false));
    }
    const CategoryTest per_region{MultiTestConfig{}, region_of, shared_cal()};
    const auto result = per_region.test(feedbacks);
    EXPECT_FALSE(result.all_passed());
    const auto failed = result.failed_categories();
    ASSERT_EQ(failed.size(), 1u);
    EXPECT_EQ(failed[0], "NA");
}

TEST(CategoryTest, TestCategoryFiltersCorrectly) {
    stats::Rng rng{63};
    const auto feedbacks = two_region_history(1000, 0.95, 0.55, rng);
    const CategoryTest per_region{MultiTestConfig{}, region_of, shared_cal()};
    const auto na = per_region.test_category(feedbacks, "NA");
    const auto af = per_region.test_category(feedbacks, "AF");
    EXPECT_TRUE(na.passed);
    EXPECT_TRUE(af.passed);
    // A label with no feedbacks is insufficient, not failing.
    const auto none = per_region.test_category(feedbacks, "EU");
    EXPECT_FALSE(none.sufficient);
    EXPECT_TRUE(none.passed);
}

}  // namespace
}  // namespace hpr::core
