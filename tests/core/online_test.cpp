// Unit tests for the streaming screener (core/online.h).

#include "core/online.h"

#include <gtest/gtest.h>

#include "core/multi_test.h"
#include "sim/generators.h"

namespace hpr::core {
namespace {

std::shared_ptr<stats::Calibrator> shared_cal() {
    static auto cal = make_calibrator(BehaviorTestConfig{});
    return cal;
}

TEST(OnlineScreener, RejectsZeroPatienceOrRecovery) {
    OnlineScreenerConfig config;
    config.patience = 0;
    EXPECT_THROW(OnlineScreener{config}, std::invalid_argument);
    config = {};
    config.recovery = 0;
    EXPECT_THROW(OnlineScreener{config}, std::invalid_argument);
}

TEST(OnlineScreener, StartsInsufficient) {
    OnlineScreener screener{{}, shared_cal()};
    EXPECT_EQ(screener.state(), StreamState::kInsufficient);
    EXPECT_EQ(screener.transactions(), 0u);
    EXPECT_EQ(screener.windows(), 0u);
    EXPECT_TRUE(screener.last_evaluation_passed());
    for (int i = 0; i < 29; ++i) screener.observe(true);
    // 2 complete windows < min_windows(3): still insufficient, 0 evals.
    EXPECT_EQ(screener.state(), StreamState::kInsufficient);
    EXPECT_EQ(screener.evaluations(), 0u);
    EXPECT_EQ(screener.windows(), 2u);
}

TEST(OnlineScreener, HonestStreamStaysClear) {
    OnlineScreenerConfig config;
    config.test.bonferroni = true;
    OnlineScreener screener{config, shared_cal()};
    stats::Rng rng{901};
    for (int i = 0; i < 1000; ++i) screener.observe(rng.bernoulli(0.93));
    EXPECT_EQ(screener.state(), StreamState::kClear);
    EXPECT_EQ(screener.transactions(), 1000u);
    EXPECT_EQ(screener.windows(), 100u);
    EXPECT_EQ(screener.evaluations(), 98u);  // one per window from the 3rd on
    EXPECT_NEAR(screener.p_hat(), 0.93, 0.05);
}

TEST(OnlineScreener, BurstAttackFlipsToSuspicious) {
    OnlineScreener screener{{}, shared_cal()};
    stats::Rng rng{902};
    for (int i = 0; i < 600; ++i) screener.observe(rng.bernoulli(0.95));
    ASSERT_EQ(screener.state(), StreamState::kClear);
    std::size_t bads_until_flag = 0;
    while (screener.state() != StreamState::kSuspicious && bads_until_flag < 100) {
        screener.observe(false);
        ++bads_until_flag;
    }
    EXPECT_EQ(screener.state(), StreamState::kSuspicious);
    // The paper's goal: bound how many bads slip through a short period.
    EXPECT_LE(bads_until_flag, 40u);
}

TEST(OnlineScreener, PatienceDelaysFlagging) {
    OnlineScreenerConfig eager;
    eager.patience = 1;
    OnlineScreenerConfig tolerant;
    tolerant.patience = 4;

    const auto bads_to_flag = [&](const OnlineScreenerConfig& config) {
        OnlineScreener screener{config, shared_cal()};
        stats::Rng rng{903};
        for (int i = 0; i < 600; ++i) screener.observe(rng.bernoulli(0.95));
        std::size_t bads = 0;
        while (screener.state() != StreamState::kSuspicious && bads < 200) {
            screener.observe(false);
            ++bads;
        }
        return bads;
    };
    EXPECT_LT(bads_to_flag(eager), bads_to_flag(tolerant));
}

TEST(OnlineScreener, RecoveryClearsAfterSustainedPassing) {
    OnlineScreenerConfig config;
    config.recovery = 2;
    OnlineScreener screener{config, shared_cal()};
    stats::Rng rng{904};
    for (int i = 0; i < 400; ++i) screener.observe(rng.bernoulli(0.95));
    for (int i = 0; i < 30; ++i) screener.observe(false);
    ASSERT_EQ(screener.state(), StreamState::kSuspicious);
    // Resume good service; eventually the suffix ladder passes again and,
    // after `recovery` consecutive passing evaluations, the state clears.
    int goods = 0;
    while (screener.state() == StreamState::kSuspicious && goods < 30000) {
        screener.observe(rng.bernoulli(0.95));
        ++goods;
    }
    EXPECT_EQ(screener.state(), StreamState::kClear);
    EXPECT_GT(goods, 50);  // recovery is deliberately slow
}

TEST(OnlineScreener, MatchesBatchVerdictOnAlignedStreams) {
    // With windows aligned (stream length a multiple of m) the streaming
    // evaluation and the batch multi-test see identical window counts, so
    // the final evaluation verdict must match the batch verdict.
    MultiTestConfig batch_config;
    batch_config.stop_on_failure = false;
    const MultiTest batch{batch_config, shared_cal()};
    stats::Rng rng{905};
    for (int trial = 0; trial < 10; ++trial) {
        const auto outcomes = sim::honest_outcomes(500, 0.9, rng);
        OnlineScreener screener{{}, shared_cal()};
        for (const auto o : outcomes) screener.observe(o != 0);
        const auto batch_result =
            batch.test(std::span<const std::uint8_t>{outcomes});
        ASSERT_EQ(screener.last_evaluation_passed(), batch_result.passed)
            << "trial " << trial;
    }
}

TEST(OnlineScreener, FeedbackOverloadObservesGoodness) {
    OnlineScreener screener{{}, shared_cal()};
    screener.observe(repsys::Feedback{1, 1, 2, repsys::Rating::kPositive});
    screener.observe(repsys::Feedback{2, 1, 2, repsys::Rating::kNegative});
    EXPECT_EQ(screener.transactions(), 2u);
}

TEST(OnlineScreener, LargerWindowConfigs) {
    OnlineScreenerConfig config;
    config.test.base.window_size = 25;
    OnlineScreener screener{config, shared_cal()};
    stats::Rng rng{907};
    for (int i = 0; i < 1000; ++i) screener.observe(rng.bernoulli(0.9));
    EXPECT_EQ(screener.windows(), 40u);
    EXPECT_EQ(screener.transactions(), 1000u);
    EXPECT_NE(screener.state(), StreamState::kInsufficient);
}

TEST(OnlineScreener, PHatTracksStream) {
    OnlineScreener screener{{}, shared_cal()};
    for (int i = 0; i < 100; ++i) screener.observe(i % 10 != 0);  // 90% good
    EXPECT_NEAR(screener.p_hat(), 0.9, 1e-12);
    OnlineScreener empty{{}, shared_cal()};
    EXPECT_EQ(empty.p_hat(), 0.0);
}

TEST(OnlineScreener, StreakAccountingIsConsistent) {
    OnlineScreener screener{{}, shared_cal()};
    stats::Rng rng{906};
    for (int i = 0; i < 800; ++i) {
        screener.observe(rng.bernoulli(0.9));
        // Exactly one of the streaks is always zero.
        ASSERT_TRUE(screener.failing_streak() == 0 || screener.passing_streak() == 0);
    }
}

}  // namespace
}  // namespace hpr::core
