// Unit tests for the streaming screener (core/online.h).

#include "core/online.h"

#include <gtest/gtest.h>

#include "core/multi_test.h"
#include "sim/generators.h"

namespace hpr::core {
namespace {

std::shared_ptr<stats::Calibrator> shared_cal() {
    static auto cal = make_calibrator(BehaviorTestConfig{});
    return cal;
}

TEST(OnlineScreener, RejectsZeroPatienceOrRecovery) {
    OnlineScreenerConfig config;
    config.patience = 0;
    EXPECT_THROW(OnlineScreener{config}, std::invalid_argument);
    config = {};
    config.recovery = 0;
    EXPECT_THROW(OnlineScreener{config}, std::invalid_argument);
}

TEST(OnlineScreener, StartsInsufficient) {
    OnlineScreener screener{{}, shared_cal()};
    EXPECT_EQ(screener.state(), StreamState::kInsufficient);
    EXPECT_EQ(screener.transactions(), 0u);
    EXPECT_EQ(screener.windows(), 0u);
    EXPECT_TRUE(screener.last_evaluation_passed());
    for (int i = 0; i < 29; ++i) screener.observe(true);
    // 2 complete windows < min_windows(3): still insufficient, 0 evals.
    EXPECT_EQ(screener.state(), StreamState::kInsufficient);
    EXPECT_EQ(screener.evaluations(), 0u);
    EXPECT_EQ(screener.windows(), 2u);
}

TEST(OnlineScreener, HonestStreamStaysClear) {
    OnlineScreenerConfig config;
    config.test.bonferroni = true;
    OnlineScreener screener{config, shared_cal()};
    stats::Rng rng{901};
    for (int i = 0; i < 1000; ++i) screener.observe(rng.bernoulli(0.93));
    EXPECT_EQ(screener.state(), StreamState::kClear);
    EXPECT_EQ(screener.transactions(), 1000u);
    EXPECT_EQ(screener.windows(), 100u);
    EXPECT_EQ(screener.evaluations(), 98u);  // one per window from the 3rd on
    EXPECT_NEAR(screener.p_hat(), 0.93, 0.05);
}

TEST(OnlineScreener, BurstAttackFlipsToSuspicious) {
    OnlineScreener screener{{}, shared_cal()};
    stats::Rng rng{902};
    for (int i = 0; i < 600; ++i) screener.observe(rng.bernoulli(0.95));
    ASSERT_EQ(screener.state(), StreamState::kClear);
    std::size_t bads_until_flag = 0;
    while (screener.state() != StreamState::kSuspicious && bads_until_flag < 100) {
        screener.observe(false);
        ++bads_until_flag;
    }
    EXPECT_EQ(screener.state(), StreamState::kSuspicious);
    // The paper's goal: bound how many bads slip through a short period.
    EXPECT_LE(bads_until_flag, 40u);
}

TEST(OnlineScreener, PatienceDelaysFlagging) {
    OnlineScreenerConfig eager;
    eager.patience = 1;
    OnlineScreenerConfig tolerant;
    tolerant.patience = 4;

    const auto bads_to_flag = [&](const OnlineScreenerConfig& config) {
        OnlineScreener screener{config, shared_cal()};
        stats::Rng rng{903};
        for (int i = 0; i < 600; ++i) screener.observe(rng.bernoulli(0.95));
        std::size_t bads = 0;
        while (screener.state() != StreamState::kSuspicious && bads < 200) {
            screener.observe(false);
            ++bads;
        }
        return bads;
    };
    EXPECT_LT(bads_to_flag(eager), bads_to_flag(tolerant));
}

TEST(OnlineScreener, RecoveryClearsAfterSustainedPassing) {
    OnlineScreenerConfig config;
    config.recovery = 2;
    OnlineScreener screener{config, shared_cal()};
    stats::Rng rng{904};
    for (int i = 0; i < 400; ++i) screener.observe(rng.bernoulli(0.95));
    for (int i = 0; i < 30; ++i) screener.observe(false);
    ASSERT_EQ(screener.state(), StreamState::kSuspicious);
    // Resume good service; eventually the suffix ladder passes again and,
    // after `recovery` consecutive passing evaluations, the state clears.
    int goods = 0;
    while (screener.state() == StreamState::kSuspicious && goods < 30000) {
        screener.observe(rng.bernoulli(0.95));
        ++goods;
    }
    EXPECT_EQ(screener.state(), StreamState::kClear);
    EXPECT_GT(goods, 50);  // recovery is deliberately slow
}

TEST(OnlineScreener, MatchesBatchVerdictOnAlignedStreams) {
    // With windows aligned (stream length a multiple of m) the streaming
    // evaluation and the batch multi-test see identical window counts, so
    // the final evaluation verdict must match the batch verdict.
    MultiTestConfig batch_config;
    batch_config.stop_on_failure = false;
    const MultiTest batch{batch_config, shared_cal()};
    stats::Rng rng{905};
    for (int trial = 0; trial < 10; ++trial) {
        const auto outcomes = sim::honest_outcomes(500, 0.9, rng);
        OnlineScreener screener{{}, shared_cal()};
        for (const auto o : outcomes) screener.observe(o != 0);
        const auto batch_result =
            batch.test(std::span<const std::uint8_t>{outcomes});
        ASSERT_EQ(screener.last_evaluation_passed(), batch_result.passed)
            << "trial " << trial;
    }
}

TEST(OnlineScreener, FeedbackOverloadObservesGoodness) {
    OnlineScreener screener{{}, shared_cal()};
    screener.observe(repsys::Feedback{1, 1, 2, repsys::Rating::kPositive});
    screener.observe(repsys::Feedback{2, 1, 2, repsys::Rating::kNegative});
    EXPECT_EQ(screener.transactions(), 2u);
}

TEST(OnlineScreener, LargerWindowConfigs) {
    OnlineScreenerConfig config;
    config.test.base.window_size = 25;
    OnlineScreener screener{config, shared_cal()};
    stats::Rng rng{907};
    for (int i = 0; i < 1000; ++i) screener.observe(rng.bernoulli(0.9));
    EXPECT_EQ(screener.windows(), 40u);
    EXPECT_EQ(screener.transactions(), 1000u);
    EXPECT_NE(screener.state(), StreamState::kInsufficient);
}

TEST(OnlineScreener, PHatTracksStream) {
    OnlineScreener screener{{}, shared_cal()};
    for (int i = 0; i < 100; ++i) screener.observe(i % 10 != 0);  // 90% good
    EXPECT_NEAR(screener.p_hat(), 0.9, 1e-12);
    OnlineScreener empty{{}, shared_cal()};
    EXPECT_EQ(empty.p_hat(), 0.0);
}

TEST(OnlineScreener, HorizonValidation) {
    OnlineScreenerConfig config;
    config.max_windows = 2;  // below min_windows(3): never evaluable
    EXPECT_THROW(OnlineScreener{config}, std::invalid_argument);
    config.max_windows = config.test.base.min_windows;  // smallest legal horizon
    EXPECT_NO_THROW((OnlineScreener{config, shared_cal()}));
    config.max_windows = 0;  // unbounded stays allowed
    EXPECT_NO_THROW((OnlineScreener{config, shared_cal()}));
}

TEST(OnlineScreener, RingWrapsAtExactlyMaxWindows) {
    OnlineScreenerConfig config;
    config.max_windows = 4;
    OnlineScreener screener{config, shared_cal()};
    const std::uint32_t m = config.test.base.window_size;
    // First window all-bad, then all-good: once the ring wraps the bad
    // window must fall out of every running total.
    for (std::uint32_t i = 0; i < m; ++i) screener.observe(false);
    for (std::uint32_t i = 0; i < 3 * m; ++i) screener.observe(true);
    EXPECT_EQ(screener.windows(), 4u);
    EXPECT_EQ(screener.retained_windows(), 4u);
    EXPECT_NEAR(screener.p_hat(), 0.75, 1e-12);  // 3m good / 4m retained
    for (std::uint32_t i = 0; i < m; ++i) screener.observe(true);
    // Fifth window: lifetime count advances, retention stays capped, and
    // the all-bad window no longer taints p-hat.
    EXPECT_EQ(screener.windows(), 5u);
    EXPECT_EQ(screener.retained_windows(), 4u);
    EXPECT_NEAR(screener.p_hat(), 1.0, 1e-12);
}

TEST(OnlineScreener, BoundedMatchesUnboundedWithinHorizon) {
    OnlineScreenerConfig bounded_config;
    bounded_config.max_windows = 12;
    OnlineScreenerConfig unbounded_config;
    OnlineScreener bounded{bounded_config, shared_cal()};
    OnlineScreener unbounded{unbounded_config, shared_cal()};
    stats::Rng rng{908};
    const std::size_t horizon_tx =
        bounded_config.max_windows * bounded_config.test.base.window_size;
    for (std::size_t i = 0; i < horizon_tx; ++i) {
        const bool good = rng.bernoulli(0.8);
        bounded.observe(good);
        unbounded.observe(good);
        ASSERT_EQ(bounded.state(), unbounded.state()) << "tx " << i;
        ASSERT_EQ(bounded.p_hat(), unbounded.p_hat()) << "tx " << i;
        ASSERT_EQ(bounded.last_evaluation_passed(),
                  unbounded.last_evaluation_passed())
            << "tx " << i;
    }
}

TEST(OnlineScreener, BoundedMemoryIsConstantForLife) {
    OnlineScreenerConfig config;
    config.max_windows = 8;
    OnlineScreener screener{config, shared_cal()};
    const std::size_t at_birth = screener.memory_bytes();
    stats::Rng rng{909};
    for (int i = 0; i < 2000; ++i) screener.observe(rng.bernoulli(0.9));
    EXPECT_EQ(screener.memory_bytes(), at_birth);
    EXPECT_EQ(screener.horizon(), 8u);

    OnlineScreener unbounded{{}, shared_cal()};
    const std::size_t unbounded_birth = unbounded.memory_bytes();
    stats::Rng rng2{910};
    for (int i = 0; i < 2000; ++i) unbounded.observe(rng2.bernoulli(0.9));
    EXPECT_GT(unbounded.memory_bytes(), unbounded_birth);
}

// Pins the documented hysteresis contract (see online.h): from
// kInsufficient the first *passing* evaluation establishes kClear
// immediately, while flagging a never-judged stream still requires
// `patience` consecutive failures.
TEST(OnlineScreener, HysteresisAsymmetryFromInsufficient) {
    // Passing side: three all-good windows -> first evaluation passes ->
    // kClear at once, no recovery streak required.
    OnlineScreener passing{{}, shared_cal()};
    const std::uint32_t m = passing.config().test.base.window_size;
    for (std::uint32_t i = 0; i < 3 * m; ++i) passing.observe(true);
    EXPECT_EQ(passing.evaluations(), 1u);
    EXPECT_EQ(passing.state(), StreamState::kClear);

    // Failing side: alternating all-good / all-bad windows are wildly
    // inconsistent with a Binomial(m, p-hat) player, so every evaluation
    // fails — yet the flag must wait for `patience` of them.
    OnlineScreenerConfig config;
    config.patience = 2;
    OnlineScreener failing{config, shared_cal()};
    for (std::uint32_t i = 0; i < 3 * m; ++i) failing.observe(i / m % 2 == 0);
    ASSERT_EQ(failing.evaluations(), 1u);
    ASSERT_FALSE(failing.last_evaluation_passed());
    EXPECT_EQ(failing.state(), StreamState::kInsufficient)
        << "one failing evaluation must not flag from kInsufficient";
    for (std::uint32_t i = 0; i < m; ++i) failing.observe(false);  // window 4: all-bad
    ASSERT_EQ(failing.evaluations(), 2u);
    EXPECT_EQ(failing.state(), StreamState::kSuspicious)
        << "patience(2) consecutive failures flag from kInsufficient";
}

TEST(OnlineScreener, StreakAccountingIsConsistent) {
    OnlineScreener screener{{}, shared_cal()};
    stats::Rng rng{906};
    for (int i = 0; i < 800; ++i) {
        screener.observe(rng.bernoulli(0.9));
        // Exactly one of the streaks is always zero.
        ASSERT_TRUE(screener.failing_streak() == 0 || screener.passing_streak() == 0);
    }
}

}  // namespace
}  // namespace hpr::core
