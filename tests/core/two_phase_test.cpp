// Unit tests for the two-phase assessor (core/two_phase.h) —
// paper Figs. 1 and 2.

#include "core/two_phase.h"

#include <gtest/gtest.h>

#include "sim/generators.h"

namespace hpr::core {
namespace {

std::shared_ptr<stats::Calibrator> shared_cal() {
    static auto cal = make_calibrator(BehaviorTestConfig{});
    return cal;
}

std::shared_ptr<const repsys::TrustFunction> average() {
    return std::shared_ptr<const repsys::TrustFunction>{
        repsys::make_trust_function("average")};
}

TwoPhaseAssessor make_assessor(ScreeningMode mode, bool collusion = false) {
    TwoPhaseConfig config;
    config.mode = mode;
    config.collusion_resilient = collusion;
    return TwoPhaseAssessor{config, average(), shared_cal()};
}

TEST(TwoPhase, RejectsNullTrustFunction) {
    EXPECT_THROW(TwoPhaseAssessor(TwoPhaseConfig{}, nullptr), std::invalid_argument);
}

TEST(TwoPhase, ToStringCoverage) {
    EXPECT_STREQ(to_string(ScreeningMode::kNone), "none");
    EXPECT_STREQ(to_string(ScreeningMode::kSingle), "single");
    EXPECT_STREQ(to_string(ScreeningMode::kMulti), "multi");
    EXPECT_STREQ(to_string(Verdict::kSuspicious), "suspicious");
    EXPECT_STREQ(to_string(Verdict::kAssessed), "assessed");
    EXPECT_STREQ(to_string(Verdict::kInsufficientHistory), "insufficient-history");
}

TEST(TwoPhase, HonestServerIsAssessedWithCorrectTrust) {
    const auto assessor = make_assessor(ScreeningMode::kMulti);
    stats::Rng rng{51};
    const auto history = sim::honest_history(600, 0.95, rng);
    const Assessment a = assessor.assess(history);
    ASSERT_EQ(a.verdict, Verdict::kAssessed);
    ASSERT_TRUE(a.trust.has_value());
    EXPECT_NEAR(*a.trust, history.good_ratio(), 1e-12);
    EXPECT_TRUE(a.acceptable(0.9));
}

TEST(TwoPhase, SuspiciousServerGetsNoTrustValue) {
    const auto assessor = make_assessor(ScreeningMode::kMulti);
    stats::Rng rng{52};
    // Hibernating attacker caught mid-attack.
    const auto history = sim::hibernating_history(500, 25, 0.95, rng);
    const Assessment a = assessor.assess(history);
    EXPECT_EQ(a.verdict, Verdict::kSuspicious);
    EXPECT_FALSE(a.trust.has_value());
    EXPECT_FALSE(a.acceptable(0.0));
    EXPECT_FALSE(a.screening.passed);
}

TEST(TwoPhase, NoScreeningModeNeverFlagsAnyone) {
    const auto assessor = make_assessor(ScreeningMode::kNone);
    stats::Rng rng{53};
    const auto history = sim::hibernating_history(500, 25, 0.95, rng);
    const Assessment a = assessor.assess(history);
    EXPECT_EQ(a.verdict, Verdict::kAssessed);
    ASSERT_TRUE(a.trust.has_value());
    // The hibernating attacker sails through at high trust — the failure
    // mode the paper's two-phase approach exists to prevent.
    EXPECT_GT(*a.trust, 0.85);
}

TEST(TwoPhase, ShortHistoryIsInsufficientButScored) {
    const auto assessor = make_assessor(ScreeningMode::kMulti);
    repsys::TransactionHistory history;
    for (int i = 0; i < 12; ++i) history.append(1, 2, repsys::Rating::kPositive);
    const Assessment a = assessor.assess(history);
    EXPECT_EQ(a.verdict, Verdict::kInsufficientHistory);
    ASSERT_TRUE(a.trust.has_value());
    EXPECT_EQ(*a.trust, 1.0);
}

TEST(TwoPhase, AcceptHonorsThreshold) {
    // Bonferroni-corrected screening keeps the honest false-positive rate
    // low so this test exercises the threshold logic, not screening noise.
    TwoPhaseConfig config;
    config.mode = ScreeningMode::kMulti;
    config.test.bonferroni = true;
    const TwoPhaseAssessor assessor{config, average(), shared_cal()};
    stats::Rng rng{54};
    const auto history = sim::honest_history(600, 0.85, rng);
    ASSERT_NE(assessor.assess(history).verdict, Verdict::kSuspicious);
    EXPECT_TRUE(assessor.accept(history, 0.7));
    EXPECT_FALSE(assessor.accept(history, 0.95));
}

TEST(TwoPhase, SingleModeWrapsSingleTest) {
    const auto assessor = make_assessor(ScreeningMode::kSingle);
    stats::Rng rng{55};
    const auto honest = sim::honest_history(400, 0.9, rng);
    const auto screening = assessor.screen(honest.view());
    EXPECT_TRUE(screening.sufficient);
    EXPECT_EQ(screening.stages_run, 1u);

    // Rigid periodic pattern fails the single test too.
    std::vector<std::uint8_t> rigid;
    for (int w = 0; w < 40; ++w) {
        rigid.push_back(0);
        for (int i = 0; i < 9; ++i) rigid.push_back(1);
    }
    repsys::TransactionHistory rigid_history;
    for (const auto o : rigid) {
        rigid_history.append(1, 2, o != 0 ? repsys::Rating::kPositive
                                          : repsys::Rating::kNegative);
    }
    const auto failed = assessor.screen(rigid_history.view());
    EXPECT_FALSE(failed.passed);
    ASSERT_TRUE(failed.failure.has_value());
    ASSERT_TRUE(failed.failed_suffix_length.has_value());
}

TEST(TwoPhase, CollusionResilientModeCatchesColluders) {
    const auto plain = make_assessor(ScreeningMode::kMulti, false);
    const auto resilient = make_assessor(ScreeningMode::kMulti, true);
    // Colluder-covered attacker: fakes from 5 clients, cheats on a fresh
    // victim with probability 0.1 per transaction (an honest-looking
    // Bernoulli stream in time order).
    stats::Rng rng{58};
    repsys::TransactionHistory history;
    repsys::EntityId victim = 100;
    for (int i = 0; i < 400; ++i) {
        if (rng.bernoulli(0.1)) {
            history.append(1, victim++, repsys::Rating::kNegative);
        } else {
            history.append(1, static_cast<repsys::EntityId>(2 + i % 5),
                           repsys::Rating::kPositive);
        }
    }
    // Time-ordered, the pattern is a clean 10%-bad binomial: plain
    // screening passes.  Issuer-reordered it fails.
    EXPECT_TRUE(plain.screen(history.view()).passed);
    EXPECT_FALSE(resilient.screen(history.view()).passed);
    const Assessment a = resilient.assess(history);
    EXPECT_EQ(a.verdict, Verdict::kSuspicious);
}

TEST(TwoPhase, RunsTestScreenIsOffByDefault) {
    TwoPhaseConfig config;
    EXPECT_FALSE(config.require_runs_test);
    const TwoPhaseAssessor assessor{config, average(), shared_cal()};
    stats::Rng rng{59};
    const auto assessment = assessor.assess(sim::honest_history(400, 0.9, rng));
    EXPECT_FALSE(assessment.runs.has_value());
}

TEST(TwoPhase, RunsTestScreenCatchesWhatDilutedWindowTestMisses) {
    // A 20-bad burst at the end of a 4000-transaction history dilutes to
    // nothing in the single whole-history window test, but the burst's
    // run structure (one giant bad run) is flagrant.
    TwoPhaseConfig window_only;
    window_only.mode = ScreeningMode::kSingle;
    TwoPhaseConfig with_runs = window_only;
    with_runs.require_runs_test = true;
    const TwoPhaseAssessor plain{window_only, average(), shared_cal()};
    const TwoPhaseAssessor strict{with_runs, average(), shared_cal()};

    stats::Rng rng{60};
    int window_caught = 0;
    int runs_caught = 0;
    constexpr int kTrials = 20;
    for (int t = 0; t < kTrials; ++t) {
        const auto history = sim::hibernating_history(4000, 20, 0.95, rng);
        if (plain.assess(history).verdict == Verdict::kSuspicious) ++window_caught;
        const auto assessment = strict.assess(history);
        if (assessment.verdict == Verdict::kSuspicious) ++runs_caught;
    }
    EXPECT_GT(runs_caught, window_caught);
    EXPECT_GT(runs_caught, kTrials / 2);
}

TEST(TwoPhase, RunsTestScreenKeepsHonestAcceptance) {
    TwoPhaseConfig config;
    config.require_runs_test = true;
    const TwoPhaseAssessor assessor{config, average(), shared_cal()};
    stats::Rng rng{61};
    int flagged = 0;
    constexpr int kTrials = 30;
    for (int t = 0; t < kTrials; ++t) {
        const auto history = sim::honest_history(600, 0.9, rng);
        const auto assessment = assessor.assess(history);
        if (assessment.verdict == Verdict::kSuspicious) ++flagged;
        if (assessment.verdict == Verdict::kAssessed) {
            ASSERT_TRUE(assessment.runs.has_value());
            EXPECT_TRUE(assessment.runs->passed);
        }
    }
    EXPECT_LT(flagged, kTrials / 3);
}

TEST(TwoPhase, RunsTestAppliesToReorderedSequenceUnderCollusionMode) {
    // Colluder blocks in the issuer-reordered sequence are giant runs:
    // the supplementary screen reinforces the §4 transform.
    TwoPhaseConfig config;
    config.mode = ScreeningMode::kSingle;
    config.collusion_resilient = true;
    config.require_runs_test = true;
    const TwoPhaseAssessor assessor{config, average(), shared_cal()};
    stats::Rng rng{62};
    repsys::TransactionHistory history;
    repsys::EntityId victim = 300;
    for (int i = 0; i < 400; ++i) {
        if (rng.bernoulli(0.1)) {
            history.append(1, victim++, repsys::Rating::kNegative);
        } else {
            history.append(1, static_cast<repsys::EntityId>(2 + i % 5),
                           repsys::Rating::kPositive);
        }
    }
    const auto assessment = assessor.assess(history);
    EXPECT_EQ(assessment.verdict, Verdict::kSuspicious);
}

TEST(TwoPhase, TrustFunctionIsPluggable) {
    TwoPhaseConfig config;
    config.mode = ScreeningMode::kMulti;
    const TwoPhaseAssessor weighted{
        config,
        std::shared_ptr<const repsys::TrustFunction>{
            repsys::make_trust_function("weighted:0.5")},
        shared_cal()};
    stats::Rng rng{56};
    const auto history = sim::honest_history(600, 0.95, rng);
    const Assessment a = weighted.assess(history);
    ASSERT_TRUE(a.trust.has_value());
    // The EWMA is dominated by the last few outcomes, so unlike the plain
    // average it can sit well below 0.95 — but never outside [0, 1].
    EXPECT_GE(*a.trust, 0.0);
    EXPECT_LE(*a.trust, 1.0);
    EXPECT_EQ(weighted.trust_function().name(), "weighted(0.5)");
}

TEST(TwoPhase, SharedCalibratorIsExposed) {
    const auto cal = shared_cal();
    TwoPhaseConfig config;
    const TwoPhaseAssessor assessor{config, average(), cal};
    EXPECT_EQ(assessor.calibrator().get(), cal.get());
}

TEST(TwoPhase, AssessSpanOverloadMatchesHistoryOverload) {
    const auto assessor = make_assessor(ScreeningMode::kMulti);
    stats::Rng rng{57};
    const auto history = sim::honest_history(500, 0.9, rng);
    const Assessment from_history = assessor.assess(history);
    const Assessment from_span = assessor.assess(history.view());
    EXPECT_EQ(from_history.verdict, from_span.verdict);
    EXPECT_EQ(from_history.trust, from_span.trust);
}

}  // namespace
}  // namespace hpr::core
