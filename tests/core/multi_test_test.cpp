// Unit and property tests for multi-testing (core/multi_test.h) —
// paper §3.3 and the O(n) optimization of §5.5.

#include "core/multi_test.h"

#include <gtest/gtest.h>

#include "sim/generators.h"

namespace hpr::core {
namespace {

std::shared_ptr<stats::Calibrator> shared_cal() {
    static auto cal = make_calibrator(BehaviorTestConfig{});
    return cal;
}

TEST(MultiTestConfigTest, EffectiveStepDefaultsAndAligns) {
    MultiTestConfig config;
    EXPECT_EQ(config.effective_step(), 20u);  // 2 * window_size
    config.step = 15;                         // rounded up to multiple of 10
    EXPECT_EQ(config.effective_step(), 20u);
    config.step = 30;
    EXPECT_EQ(config.effective_step(), 30u);
    config.base.window_size = 7;
    config.step = 0;
    EXPECT_EQ(config.effective_step(), 14u);
}

TEST(MultiTest, ShortHistoryIsInsufficient) {
    const MultiTest mt{{}, shared_cal()};
    const std::vector<std::uint8_t> outcomes(25, 1);
    const auto result = mt.test(std::span<const std::uint8_t>{outcomes});
    EXPECT_FALSE(result.sufficient);
    EXPECT_TRUE(result.passed);
    EXPECT_EQ(result.stages_run, 0u);
}

TEST(MultiTest, StageCountMatchesFormula) {
    MultiTestConfig config;
    config.collect_details = true;
    config.stop_on_failure = false;
    const MultiTest mt{config, shared_cal()};
    const std::vector<std::uint8_t> outcomes(200, 1);
    const auto result = mt.test(std::span<const std::uint8_t>{outcomes});
    // Suffix lengths 200, 180, ..., 40, 20... but >= min_windows*10 = 30,
    // so 200 down to 40: (200-30)/20 + 1 = 9 stages.
    EXPECT_EQ(result.stages_run, 9u);
    EXPECT_EQ(result.details.size(), 9u);
}

TEST(MultiTest, HonestHistoriesMostlyPass) {
    const MultiTest mt{{}, shared_cal()};
    stats::Rng rng{21};
    int failures = 0;
    constexpr int kTrials = 100;
    for (int t = 0; t < kTrials; ++t) {
        const auto outcomes = sim::honest_outcomes(600, 0.9, rng);
        if (!mt.test(std::span<const std::uint8_t>{outcomes}).passed) ++failures;
    }
    // Multiple testing inflates the false-positive rate above the
    // single-test 5%, but it must stay moderate.
    EXPECT_LT(failures, kTrials / 4);
}

TEST(MultiTest, DetectsHibernatingAttackThatSingleTestMisses) {
    // A long honest prefix dilutes a burst of bads in the whole-history
    // test, but the short suffixes expose it (the very motivation of §3.3).
    BehaviorTestConfig base;
    const BehaviorTest single{base, shared_cal()};
    const MultiTest mt{{}, shared_cal()};
    stats::Rng rng{22};
    int single_detected = 0;
    int multi_detected = 0;
    constexpr int kTrials = 40;
    for (int t = 0; t < kTrials; ++t) {
        auto outcomes = sim::honest_outcomes(4000, 0.95, rng);
        outcomes.insert(outcomes.end(), 20, std::uint8_t{0});
        const std::span<const std::uint8_t> view{outcomes};
        if (!single.test(view).passed) ++single_detected;
        if (!mt.test(view).passed) ++multi_detected;
    }
    EXPECT_GT(multi_detected, single_detected);
    EXPECT_GT(multi_detected, kTrials * 3 / 4);
}

TEST(MultiTest, IncrementalEqualsNaive) {
    // The O(n) incremental implementation must agree with the O(n^2)
    // reference bit-for-bit on every verdict and statistic.
    MultiTestConfig config;
    config.collect_details = true;
    config.stop_on_failure = false;
    const MultiTest mt{config, shared_cal()};
    stats::Rng rng{23};
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<std::uint8_t> outcomes;
        const auto n = static_cast<std::size_t>(31 + rng.uniform_int(std::uint64_t{500}));
        const double p = 0.5 + 0.5 * rng.uniform();
        outcomes = sim::honest_outcomes(n, p, rng);
        if (trial % 3 == 0) {  // sprinkle attack bursts
            outcomes.insert(outcomes.end(), 15, std::uint8_t{0});
        }
        const std::span<const std::uint8_t> view{outcomes};
        const auto fast = mt.test(view);
        const auto slow = mt.test_naive(view);
        ASSERT_EQ(fast.passed, slow.passed) << "trial " << trial;
        ASSERT_EQ(fast.stages_run, slow.stages_run);
        ASSERT_EQ(fast.details.size(), slow.details.size());
        for (std::size_t s = 0; s < fast.details.size(); ++s) {
            ASSERT_EQ(fast.details[s].passed, slow.details[s].passed);
            ASSERT_DOUBLE_EQ(fast.details[s].distance, slow.details[s].distance);
            ASSERT_DOUBLE_EQ(fast.details[s].threshold, slow.details[s].threshold);
            ASSERT_DOUBLE_EQ(fast.details[s].p_hat, slow.details[s].p_hat);
            ASSERT_EQ(fast.details[s].windows, slow.details[s].windows);
        }
        ASSERT_EQ(fast.failed_suffix_length, slow.failed_suffix_length);
        ASSERT_DOUBLE_EQ(fast.min_margin, slow.min_margin);
    }
}

TEST(MultiTest, IncrementalEqualsNaiveOnFeedbacks) {
    const MultiTest mt{{}, shared_cal()};
    stats::Rng rng{24};
    const auto history = sim::honest_history(457, 0.88, rng);
    const auto fast = mt.test(history.view());
    const auto slow = mt.test_naive(history.view());
    EXPECT_EQ(fast.passed, slow.passed);
    EXPECT_EQ(fast.stages_run, slow.stages_run);
    EXPECT_DOUBLE_EQ(fast.min_margin, slow.min_margin);
}

TEST(MultiTest, StopOnFailureShortensRun) {
    MultiTestConfig stopping;
    stopping.stop_on_failure = true;
    MultiTestConfig full;
    full.stop_on_failure = false;
    const MultiTest mt_stop{stopping, shared_cal()};
    const MultiTest mt_full{full, shared_cal()};

    stats::Rng rng{25};
    auto outcomes = sim::honest_outcomes(400, 0.95, rng);
    outcomes.insert(outcomes.end(), 25, std::uint8_t{0});
    const std::span<const std::uint8_t> view{outcomes};
    const auto stopped = mt_stop.test(view);
    const auto complete = mt_full.test(view);
    ASSERT_FALSE(stopped.passed);
    ASSERT_FALSE(complete.passed);
    EXPECT_LE(stopped.stages_run, complete.stages_run);
    EXPECT_EQ(stopped.failed_suffix_length, complete.failed_suffix_length);
}

TEST(MultiTest, FailedSuffixLengthIsShortestFailing) {
    MultiTestConfig config;
    config.collect_details = true;
    config.stop_on_failure = false;
    const MultiTest mt{config, shared_cal()};
    stats::Rng rng{26};
    auto outcomes = sim::honest_outcomes(300, 0.95, rng);
    outcomes.insert(outcomes.end(), 25, std::uint8_t{0});
    const auto result = mt.test(std::span<const std::uint8_t>{outcomes});
    ASSERT_FALSE(result.passed);
    ASSERT_TRUE(result.failed_suffix_length.has_value());
    ASSERT_TRUE(result.failure.has_value());
    EXPECT_FALSE(result.failure->passed);
    // Stages run shortest-first; the recorded failure must be the first
    // (shortest) failing suffix.
    std::size_t first_failing_stage = result.details.size();
    for (std::size_t s = 0; s < result.details.size(); ++s) {
        if (!result.details[s].passed) {
            first_failing_stage = s;
            break;
        }
    }
    ASSERT_LT(first_failing_stage, result.details.size());
    const std::size_t n = outcomes.size();
    const std::size_t stages = result.stages_run;
    const std::size_t expected_len =
        n - (stages - 1 - first_failing_stage) * mt.config().step;
    EXPECT_EQ(*result.failed_suffix_length, expected_len);
}

TEST(MultiTest, MinMarginReflectsTightestStage) {
    MultiTestConfig config;
    config.collect_details = true;
    config.stop_on_failure = false;
    const MultiTest mt{config, shared_cal()};
    stats::Rng rng{27};
    const auto outcomes = sim::honest_outcomes(500, 0.9, rng);
    const auto result = mt.test(std::span<const std::uint8_t>{outcomes});
    double expected = std::numeric_limits<double>::infinity();
    for (const auto& d : result.details) expected = std::min(expected, d.margin());
    EXPECT_DOUBLE_EQ(result.min_margin, expected);
}

TEST(MultiTest, CustomStepRespected) {
    MultiTestConfig config;
    config.step = 50;
    config.collect_details = true;
    config.stop_on_failure = false;
    const MultiTest mt{config, shared_cal()};
    const std::vector<std::uint8_t> outcomes(230, 1);
    const auto result = mt.test(std::span<const std::uint8_t>{outcomes});
    // Suffixes 230, 180, 130, 80, 30: 5 stages (>= 30 transactions each).
    EXPECT_EQ(result.stages_run, 5u);
}

TEST(MultiTest, AllGoodLongHistoryPasses) {
    const MultiTest mt{{}, shared_cal()};
    const std::vector<std::uint8_t> outcomes(1000, 1);
    EXPECT_TRUE(mt.test(std::span<const std::uint8_t>{outcomes}).passed);
}

}  // namespace
}  // namespace hpr::core
