// Unit tests for the human-readable report rendering (core/report.h).

#include "core/report.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/generators.h"

namespace hpr::core {
namespace {

std::shared_ptr<stats::Calibrator> shared_cal() {
    static auto cal = make_calibrator(BehaviorTestConfig{});
    return cal;
}

TEST(Report, SingleResultPass) {
    BehaviorTestResult result;
    result.sufficient = true;
    result.passed = true;
    result.distance = 0.1023;
    result.threshold = 0.2411;
    result.p_hat = 0.932;
    result.windows = 40;
    const std::string text = describe(result);
    EXPECT_NE(text.find("PASS"), std::string::npos);
    EXPECT_NE(text.find("0.1023"), std::string::npos);
    EXPECT_NE(text.find("<="), std::string::npos);
    EXPECT_NE(text.find("40 windows"), std::string::npos);
}

TEST(Report, SingleResultFailUsesStrictComparator) {
    BehaviorTestResult result;
    result.sufficient = true;
    result.passed = false;
    result.distance = 0.9;
    result.threshold = 0.2;
    const std::string text = describe(result);
    EXPECT_NE(text.find("FAIL"), std::string::npos);
    EXPECT_NE(text.find(" > "), std::string::npos);
    EXPECT_EQ(text.find("<="), std::string::npos);
}

TEST(Report, SingleResultInsufficient) {
    BehaviorTestResult result;
    result.sufficient = false;
    result.windows = 2;
    const std::string text = describe(result);
    EXPECT_NE(text.find("INSUFFICIENT"), std::string::npos);
    EXPECT_NE(text.find("2 complete window"), std::string::npos);
}

TEST(Report, MultiResultListsStages) {
    MultiTestConfig config;
    config.collect_details = true;
    config.stop_on_failure = false;
    const MultiTest tester{config, shared_cal()};
    stats::Rng rng{3001};
    const auto outcomes = sim::honest_outcomes(200, 0.9, rng);
    const auto result = tester.test(std::span<const std::uint8_t>{outcomes});
    const std::string text = describe(result);
    EXPECT_NE(text.find("suffix stage(s)"), std::string::npos);
    EXPECT_NE(text.find("stage 0:"), std::string::npos);
    // One line per stage plus the header.
    const auto lines = std::count(text.begin(), text.end(), '\n');
    EXPECT_EQ(static_cast<std::size_t>(lines), result.details.size() + 1);
}

TEST(Report, MultiResultFailureNamesSuffix) {
    const MultiTest tester{{}, shared_cal()};
    stats::Rng rng{3002};
    auto outcomes = sim::honest_outcomes(400, 0.95, rng);
    outcomes.insert(outcomes.end(), 30, std::uint8_t{0});
    const auto result = tester.test(std::span<const std::uint8_t>{outcomes});
    ASSERT_FALSE(result.passed);
    const std::string text = describe(result);
    EXPECT_NE(text.find("FAIL"), std::string::npos);
    EXPECT_NE(text.find("shortest failing suffix"), std::string::npos);
}

TEST(Report, AssessmentVariants) {
    core::TwoPhaseConfig config;
    const TwoPhaseAssessor assessor{
        config,
        std::shared_ptr<const repsys::TrustFunction>{
            repsys::make_trust_function("average")},
        shared_cal()};
    // The uncorrected suffix ladder has a ~10% family-wise false-alarm
    // rate by design, so the fixture seed must give an honest draw that
    // passes screening; 3003 became a false alarm when calibration moved
    // to chunk-seeded (thread-count-independent) null streams.
    stats::Rng rng{3004};

    const auto honest = assessor.assess(sim::honest_history(500, 0.93, rng));
    const std::string ok = describe(honest);
    EXPECT_NE(ok.find("assessed"), std::string::npos);
    EXPECT_NE(ok.find("trust: 0.9"), std::string::npos);

    const auto attacker =
        assessor.assess(sim::hibernating_history(500, 30, 0.95, rng));
    const std::string bad = describe(attacker);
    EXPECT_NE(bad.find("suspicious"), std::string::npos);
    EXPECT_NE(bad.find("withheld"), std::string::npos);

    const auto newcomer = assessor.assess(sim::honest_history(12, 0.9, rng));
    const std::string young = describe(newcomer);
    EXPECT_NE(young.find("insufficient-history"), std::string::npos);
    EXPECT_NE(young.find("UNSCREENED"), std::string::npos);
}

TEST(Report, AdaptiveResultListsRegimes) {
    const AdaptiveBehaviorTest adaptive{{}, {}, shared_cal()};
    stats::Rng rng{3004};
    auto outcomes = sim::honest_outcomes(300, 0.95, rng);
    const auto tail = sim::honest_outcomes(300, 0.6, rng);
    outcomes.insert(outcomes.end(), tail.begin(), tail.end());
    const auto result = adaptive.test(std::span<const std::uint8_t>{outcomes});
    const std::string text = describe(result);
    EXPECT_NE(text.find("regime(s)"), std::string::npos);
    EXPECT_NE(text.find("regime 0"), std::string::npos);
    EXPECT_NE(text.find("windows ["), std::string::npos);
}

TEST(Report, AdaptiveInsufficient) {
    const AdaptiveBehaviorTest adaptive{{}, {}, shared_cal()};
    const std::vector<std::uint8_t> outcomes(10, 1);
    const std::string text =
        describe(adaptive.test(std::span<const std::uint8_t>{outcomes}));
    EXPECT_NE(text.find("INSUFFICIENT"), std::string::npos);
}

}  // namespace
}  // namespace hpr::core
