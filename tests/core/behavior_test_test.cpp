// Unit and statistical tests for the single behavior test
// (core/behavior_test.h) — paper §3.2.

#include "core/behavior_test.h"

#include <gtest/gtest.h>

#include "sim/generators.h"

namespace hpr::core {
namespace {

std::shared_ptr<stats::Calibrator> shared_cal() {
    static auto cal = make_calibrator(BehaviorTestConfig{});
    return cal;
}

TEST(BehaviorTest, RejectsDegenerateConfig) {
    BehaviorTestConfig config;
    config.window_size = 0;
    EXPECT_THROW(BehaviorTest{config}, std::invalid_argument);
    config = {};
    config.min_windows = 0;
    EXPECT_THROW(BehaviorTest{config}, std::invalid_argument);
}

TEST(BehaviorTest, ShortHistoryIsInsufficientButPasses) {
    const BehaviorTest bt{{}, shared_cal()};
    stats::Rng rng{1};
    const auto outcomes = sim::honest_outcomes(25, 0.9, rng);  // 2 windows < 3
    const auto result = bt.test(std::span<const std::uint8_t>{outcomes});
    EXPECT_FALSE(result.sufficient);
    EXPECT_TRUE(result.passed);
    EXPECT_EQ(result.windows, 2u);
}

TEST(BehaviorTest, HonestHistoriesMostlyPass) {
    const BehaviorTest bt{{}, shared_cal()};
    stats::Rng rng{2};
    int failures = 0;
    constexpr int kTrials = 200;
    for (int t = 0; t < kTrials; ++t) {
        const auto outcomes = sim::honest_outcomes(500, 0.9, rng);
        const auto result = bt.test(std::span<const std::uint8_t>{outcomes});
        ASSERT_TRUE(result.sufficient);
        if (!result.passed) ++failures;
    }
    // Calibrated at 95% confidence; estimating p̂ makes the test
    // conservative, so failures should stay clearly below 10%.
    EXPECT_LT(failures, kTrials / 10);
}

TEST(BehaviorTest, HonestPassRateAcrossTrustValues) {
    const BehaviorTest bt{{}, shared_cal()};
    for (double p : {0.5, 0.7, 0.8, 0.95, 0.99}) {
        stats::Rng rng{static_cast<std::uint64_t>(p * 1000)};
        int failures = 0;
        for (int t = 0; t < 60; ++t) {
            const auto outcomes = sim::honest_outcomes(400, p, rng);
            if (!bt.test(std::span<const std::uint8_t>{outcomes}).passed) ++failures;
        }
        EXPECT_LT(failures, 10) << "p=" << p;
    }
}

TEST(BehaviorTest, AllGoodHistoryPassesWithZeroDistance) {
    const BehaviorTest bt{{}, shared_cal()};
    const std::vector<std::uint8_t> outcomes(200, 1);
    const auto result = bt.test(std::span<const std::uint8_t>{outcomes});
    EXPECT_TRUE(result.passed);
    EXPECT_NEAR(result.distance, 0.0, 1e-12);
    EXPECT_NEAR(result.p_hat, 1.0, 1e-12);
}

TEST(BehaviorTest, AllBadHistoryPassesAsConsistentlyBad) {
    // A consistently terrible server is *consistent*: screening passes,
    // and it is phase 2 (the trust function) that rejects it.
    const BehaviorTest bt{{}, shared_cal()};
    const std::vector<std::uint8_t> outcomes(200, 0);
    const auto result = bt.test(std::span<const std::uint8_t>{outcomes});
    EXPECT_TRUE(result.passed);
    EXPECT_NEAR(result.p_hat, 0.0, 1e-12);
}

TEST(BehaviorTest, RigidAlternationIsDetected) {
    // Exactly one bad per window (the N = 10 periodic attack of §5.3):
    // the empirical distribution is a point mass at m-1, which is far
    // from B(10, 0.9) in L1.
    const BehaviorTest bt{{}, shared_cal()};
    std::vector<std::uint8_t> outcomes;
    for (int w = 0; w < 40; ++w) {
        outcomes.push_back(0);
        for (int i = 0; i < 9; ++i) outcomes.push_back(1);
    }
    const auto result = bt.test(std::span<const std::uint8_t>{outcomes});
    EXPECT_FALSE(result.passed);
    EXPECT_GT(result.distance, result.threshold);
}

TEST(BehaviorTest, BurstOfBadsIsDetected) {
    // Honest prefix then 30 consecutive bads: hibernating-attack tail.
    const BehaviorTest bt{{}, shared_cal()};
    stats::Rng rng{3};
    auto outcomes = sim::honest_outcomes(300, 0.95, rng);
    outcomes.insert(outcomes.end(), 30, std::uint8_t{0});
    const auto result = bt.test(std::span<const std::uint8_t>{outcomes});
    EXPECT_FALSE(result.passed);
}

TEST(BehaviorTest, ResultFieldsAreCoherent) {
    const BehaviorTest bt{{}, shared_cal()};
    stats::Rng rng{4};
    const auto outcomes = sim::honest_outcomes(437, 0.9, rng);
    const auto result = bt.test(std::span<const std::uint8_t>{outcomes});
    EXPECT_EQ(result.windows, 43u);
    EXPECT_EQ(result.transactions_used, 430u);
    EXPECT_GE(result.p_hat, 0.0);
    EXPECT_LE(result.p_hat, 1.0);
    EXPECT_NEAR(result.margin(), result.threshold - result.distance, 1e-15);
}

TEST(BehaviorTest, DeterministicForSameInput) {
    const BehaviorTest bt{{}, shared_cal()};
    stats::Rng rng{5};
    const auto outcomes = sim::honest_outcomes(400, 0.9, rng);
    const auto a = bt.test(std::span<const std::uint8_t>{outcomes});
    const auto b = bt.test(std::span<const std::uint8_t>{outcomes});
    EXPECT_EQ(a.passed, b.passed);
    EXPECT_EQ(a.distance, b.distance);
    EXPECT_EQ(a.threshold, b.threshold);
}

TEST(BehaviorTest, FeedbackAndOutcomeOverloadsAgree) {
    stats::Rng rng{6};
    const BehaviorTest bt{{}, shared_cal()};
    const auto history = sim::honest_history(400, 0.9, rng);
    std::vector<std::uint8_t> outcomes;
    for (const auto& f : history.feedbacks()) outcomes.push_back(f.good() ? 1 : 0);
    const auto from_history = bt.test(history.view());
    const auto from_outcomes = bt.test(std::span<const std::uint8_t>{outcomes});
    EXPECT_EQ(from_history.passed, from_outcomes.passed);
    EXPECT_EQ(from_history.distance, from_outcomes.distance);
}

TEST(BehaviorTest, WindowSizeMismatchThrows) {
    const BehaviorTest bt{{}, shared_cal()};
    WindowStats ws;
    ws.window_size = 20;
    EXPECT_THROW((void)bt.test(ws), std::invalid_argument);
    const stats::EmpiricalDistribution wrong_support{20};
    EXPECT_THROW((void)bt.test(wrong_support), std::invalid_argument);
}

TEST(BehaviorTest, LargerWindowConfigWorks) {
    BehaviorTestConfig config;
    config.window_size = 25;
    const BehaviorTest bt{config};
    stats::Rng rng{7};
    const auto outcomes = sim::honest_outcomes(1000, 0.9, rng);
    const auto result = bt.test(std::span<const std::uint8_t>{outcomes});
    EXPECT_TRUE(result.sufficient);
    EXPECT_EQ(result.windows, 40u);
}

class BehaviorTestDistanceKinds
    : public ::testing::TestWithParam<stats::DistanceKind> {};

TEST_P(BehaviorTestDistanceKinds, HonestPassesAttackFails) {
    BehaviorTestConfig config;
    config.distance = GetParam();
    const BehaviorTest bt{config};
    stats::Rng rng{8};

    int honest_failures = 0;
    for (int t = 0; t < 30; ++t) {
        const auto honest = sim::honest_outcomes(500, 0.9, rng);
        if (!bt.test(std::span<const std::uint8_t>{honest}).passed) ++honest_failures;
    }
    EXPECT_LE(honest_failures, 5) << stats::to_string(GetParam());

    // Rigid one-bad-per-window attack.
    std::vector<std::uint8_t> attack;
    for (int w = 0; w < 50; ++w) {
        attack.push_back(0);
        for (int i = 0; i < 9; ++i) attack.push_back(1);
    }
    EXPECT_FALSE(bt.test(std::span<const std::uint8_t>{attack}).passed)
        << stats::to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sweep, BehaviorTestDistanceKinds,
                         ::testing::Values(stats::DistanceKind::kL1,
                                           stats::DistanceKind::kL2,
                                           stats::DistanceKind::kTotalVariation,
                                           stats::DistanceKind::kKolmogorovSmirnov));

TEST(WarmCalibration, CoversEveryKeyScreeningCanHit) {
    // After warming for histories up to 300 transactions with p̂ in
    // [0.7, 1.0], screening such histories must trigger zero additional
    // Monte-Carlo runs.
    BehaviorTestConfig config;
    config.replications = 200;  // keep the grid sweep cheap
    config.calibration_threads = 2;
    const auto cal = make_calibrator(config);
    const std::size_t warmed = warm_calibration(*cal, 10, 300 / 10, 0.7, 1.0);
    EXPECT_GT(warmed, 0u);
    EXPECT_EQ(cal->compute_count(), warmed);

    const BehaviorTest bt{config, cal};
    stats::Rng rng{77};
    for (const double p : {0.85, 0.9, 0.97}) {
        for (const std::size_t n : {40u, 200u, 300u}) {
            const auto outcomes = sim::honest_outcomes(n, p, rng);
            (void)bt.test(std::span<const std::uint8_t>{outcomes});
        }
    }
    EXPECT_EQ(cal->compute_count(), warmed) << "screening hit a cold key";
}

TEST(WarmCalibration, RejectsBadArguments) {
    const auto cal = make_calibrator(BehaviorTestConfig{});
    EXPECT_THROW((void)warm_calibration(*cal, 0, 10, 0.5, 1.0),
                 std::invalid_argument);
    EXPECT_THROW((void)warm_calibration(*cal, 10, 10, 0.9, 0.5),
                 std::invalid_argument);
    EXPECT_THROW((void)warm_calibration(*cal, 10, 10, -0.1, 0.5),
                 std::invalid_argument);
}

}  // namespace
}  // namespace hpr::core
