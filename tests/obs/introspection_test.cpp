// obs::IntrospectionTree: path validation, exact vs subtree resolution,
// query parsing, automatic directory listings, and failure rendering
// (404 for unknown paths, 500 for throwing handlers).

#include "obs/introspection.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace hpr::obs {
namespace {

IntrospectionHandler echo(const std::string& tag) {
    return [tag](const IntrospectionRequest& request) {
        IntrospectionPage page;
        page.body = tag + " path=" + request.path + " query=" + request.query;
        return page;
    };
}

TEST(IntrospectionRequest, ParsesQueryParameters) {
    IntrospectionRequest request;
    request.query = "n=12&server=7&flag&empty=";
    ASSERT_TRUE(request.param("n").has_value());
    EXPECT_EQ(*request.param("n"), "12");
    EXPECT_EQ(*request.param("server"), "7");
    EXPECT_EQ(*request.param("flag"), "");   // bare key
    EXPECT_EQ(*request.param("empty"), "");  // key=
    EXPECT_FALSE(request.param("absent").has_value());
    EXPECT_FALSE(request.param("erver").has_value());  // no substring match
}

TEST(IntrospectionTree, RejectsMalformedAndDuplicatePaths) {
    IntrospectionTree tree;
    EXPECT_THROW(tree.add("metrics", "t", "s", echo("x")),
                 std::invalid_argument);  // missing leading '/'
    EXPECT_THROW(tree.add("/metrics/", "t", "s", echo("x")),
                 std::invalid_argument);  // trailing slash
    EXPECT_THROW(tree.add("/a//b", "t", "s", echo("x")), std::invalid_argument);
    EXPECT_THROW(tree.add("/a b", "t", "s", echo("x")), std::invalid_argument);
    EXPECT_THROW(tree.add("/a?b", "t", "s", echo("x")), std::invalid_argument);
    EXPECT_THROW(tree.add("/ok", "t", "s", nullptr), std::invalid_argument);

    tree.add("/ok", "t", "s", echo("x"));
    EXPECT_THROW(tree.add("/ok", "t", "s", echo("y")), std::invalid_argument);
    EXPECT_THROW(tree.add_prefix("/ok", "t", "s", echo("y")),
                 std::invalid_argument);
    EXPECT_EQ(tree.size(), 1u);
}

TEST(IntrospectionTree, ResolvesExactNodesWithQueries) {
    IntrospectionTree tree;
    tree.add("/metrics", "text/plain", "metrics", echo("metrics"));

    const IntrospectionPage page = tree.get("/metrics?n=3");
    EXPECT_EQ(page.status, 200);
    EXPECT_EQ(page.body, "metrics path=/metrics query=n=3");

    // Trailing slashes normalize onto the exact node.
    EXPECT_EQ(tree.get("/metrics/").status, 200);
    EXPECT_EQ(tree.get("/metrics/?n=3").body,
              "metrics path=/metrics query=n=3");
}

TEST(IntrospectionTree, SubtreeNodeOwnsDescendantsDeepestWins) {
    IntrospectionTree tree;
    tree.add_prefix("/servers", "text/plain", "index", echo("servers"));
    tree.add("/servers/special", "text/plain", "pinned", echo("special"));

    EXPECT_EQ(tree.get("/servers").body, "servers path=/servers query=");
    EXPECT_EQ(tree.get("/servers/17").body, "servers path=/servers/17 query=");
    EXPECT_EQ(tree.get("/servers/17/deep?x=1").body,
              "servers path=/servers/17/deep query=x=1");
    // The exact node shadows the enclosing subtree.
    EXPECT_EQ(tree.get("/servers/special").body,
              "special path=/servers/special query=");
    // An exact node does NOT own descendants.
    EXPECT_EQ(tree.get("/servers/special/deeper").body,
              "servers path=/servers/special/deeper query=");
}

TEST(IntrospectionTree, ListsDirectoriesAndWholeTreeAtRoot) {
    IntrospectionTree tree;
    tree.add("/metrics", "text/plain", "prometheus text", echo("m"));
    tree.add("/debug/store", "text/plain", "store occupancy", echo("s"));
    tree.add_prefix("/debug/servers", "text/plain", "server pages", echo("v"));

    const IntrospectionPage root = tree.get("/");
    EXPECT_EQ(root.status, 200);
    EXPECT_NE(root.body.find("/metrics"), std::string::npos);
    EXPECT_NE(root.body.find("/debug/store"), std::string::npos);
    EXPECT_NE(root.body.find("/debug/servers/..."), std::string::npos);
    EXPECT_NE(root.body.find("prometheus text"), std::string::npos);

    const IntrospectionPage debug = tree.get("/debug");
    EXPECT_EQ(debug.status, 200);
    EXPECT_NE(debug.body.find("/debug/store"), std::string::npos);
    EXPECT_EQ(debug.body.find("/metrics"), std::string::npos);
}

TEST(IntrospectionTree, UnknownPathsRender404) {
    IntrospectionTree tree;
    tree.add("/metrics", "text/plain", "m", echo("m"));
    EXPECT_EQ(tree.get("/nope").status, 404);
    EXPECT_EQ(tree.get("/metricsish").status, 404);  // no prefix bleed
    EXPECT_EQ(tree.get("bogus").status, 404);        // malformed target
}

TEST(IntrospectionTree, ThrowingHandlerRendersA500Page) {
    IntrospectionTree tree;
    tree.add("/boom", "text/plain", "throws", [](const IntrospectionRequest&) {
        throw std::runtime_error("handler exploded");
        return IntrospectionPage{};  // unreachable
    });
    const IntrospectionPage page = tree.get("/boom");
    EXPECT_EQ(page.status, 500);
    EXPECT_NE(page.body.find("handler exploded"), std::string::npos);
}

TEST(IntrospectionTree, NodesEnumerateInPathOrder) {
    IntrospectionTree tree;
    tree.add("/z", "t", "last", echo("z"));
    tree.add_prefix("/a", "t", "first", echo("a"));
    const auto nodes = tree.nodes();
    ASSERT_EQ(nodes.size(), 2u);
    EXPECT_EQ(nodes[0].path, "/a");
    EXPECT_TRUE(nodes[0].subtree);
    EXPECT_EQ(nodes[1].path, "/z");
    EXPECT_FALSE(nodes[1].subtree);
}

}  // namespace
}  // namespace hpr::obs
