// The health watchdog (obs/watchdog.h): each signal's firing logic
// driven by deterministic sample_now() ticks on a private registry —
// latency regression against a trailing baseline, cache hit-rate
// collapse, ingest stall, heartbeat lag — plus the gauges it publishes
// and the black-box payload it assembles.

#include "obs/watchdog.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "obs/flightrecorder.h"
#include "obs/trace.h"

namespace hpr::obs {
namespace {

/// Small windows so a test can cross every threshold in a handful of
/// deterministic ticks.
WatchdogConfig tiny_config() {
    WatchdogConfig config;
    config.assess_metric = "test_assess_seconds";
    config.baseline_window = 4;
    config.recent_window = 2;
    config.p99_regression_ratio = 2.0;
    config.min_latency_samples = 4;
    config.min_hit_rate = 0.5;
    config.min_cache_lookups = 10;
    config.ingest_stall_intervals = 3;
    config.heartbeat_lag_budget_seconds = 0.25;
    return config;
}

const HealthSignal& signal_named(const HealthVerdict& verdict,
                                 std::string_view name) {
    for (const HealthSignal& signal : verdict.signals) {
        if (signal.name == name) return signal;
    }
    ADD_FAILURE() << "no signal named " << name;
    static const HealthSignal missing;
    return missing;
}

TEST(Watchdog, RejectsBadConfig) {
    Registry registry;
    WatchdogConfig config = tiny_config();
    config.baseline_window = 0;
    EXPECT_THROW(Watchdog(config, registry), std::invalid_argument);
    config = tiny_config();
    config.recent_window = 0;
    EXPECT_THROW(Watchdog(config, registry), std::invalid_argument);
    config = tiny_config();
    config.p99_regression_ratio = 1.0;
    EXPECT_THROW(Watchdog(config, registry), std::invalid_argument);
    config = tiny_config();
    config.ingest_stall_intervals = 0;
    EXPECT_THROW(Watchdog(config, registry), std::invalid_argument);
    config = tiny_config();
    config.heartbeat_lag_budget_seconds = 0.0;
    EXPECT_THROW(Watchdog(config, registry), std::invalid_argument);
}

TEST(Watchdog, HealthyWithNoDataAndNothingJudged) {
    Registry registry;
    FlightRecorder recorder{{}, registry};
    Watchdog watchdog{tiny_config(), registry};

    // Before any evaluation the retained verdict is the benign default.
    EXPECT_TRUE(watchdog.last_verdict().healthy);
    EXPECT_EQ(watchdog.last_verdict().sequence, 0u);

    recorder.sample_now();
    const HealthVerdict verdict = watchdog.evaluate(recorder);
    EXPECT_TRUE(verdict.healthy);
    EXPECT_EQ(verdict.sequence, 1u);
    ASSERT_EQ(verdict.signals.size(), 5u);
    for (const HealthSignal& signal : verdict.signals) {
        EXPECT_FALSE(signal.evaluated) << signal.name;
        EXPECT_FALSE(signal.firing) << signal.name;
        EXPECT_NE(signal.detail.find("not judged"), std::string::npos)
            << signal.name;
    }
    EXPECT_EQ(watchdog.evaluations(), 1u);
    EXPECT_EQ(registry.gauge("hpr_health_ok", "").value(), 1);
    EXPECT_EQ(registry.gauge("hpr_health_assess_p99_ratio_percent", "").value(),
              -1);
}

TEST(Watchdog, AssessP99RegressionFires) {
    Registry registry;
    Histogram& assess = registry.histogram("test_assess_seconds", "test",
                                           {0.001, 0.01, 0.1, 1.0});
    FlightRecorder recorder{{}, registry};
    Watchdog watchdog{tiny_config(), registry};

    recorder.sample_now();  // seed tick: interval stats start at tick 2
    // Five fast intervals: enough for >= 3 qualified baseline intervals
    // once the newest two become the recent window.
    for (int tick = 0; tick < 5; ++tick) {
        for (int i = 0; i < 20; ++i) assess.observe(0.0005);
        recorder.sample_now();
    }
    HealthVerdict verdict = watchdog.evaluate(recorder);
    // All qualified intervals are fast: evaluated, near-1 ratio, quiet.
    {
        const HealthSignal& signal = signal_named(verdict, "assess_p99");
        EXPECT_TRUE(signal.evaluated);
        EXPECT_FALSE(signal.firing);
        EXPECT_NEAR(signal.value, 1.0, 0.2);
    }

    // Two slow recent intervals: two orders of magnitude regression.
    for (int tick = 0; tick < 2; ++tick) {
        for (int i = 0; i < 20; ++i) assess.observe(0.05);
        recorder.sample_now();
    }
    verdict = watchdog.evaluate(recorder);
    const HealthSignal& signal = signal_named(verdict, "assess_p99");
    EXPECT_TRUE(signal.evaluated);
    EXPECT_TRUE(signal.firing);
    EXPECT_GT(signal.value, 2.0);
    EXPECT_FALSE(verdict.healthy);
    EXPECT_EQ(registry.gauge("hpr_health_ok", "").value(), 0);
    EXPECT_GE(registry.gauge("hpr_health_signals_firing", "").value(), 1);
    EXPECT_GT(registry.gauge("hpr_health_assess_p99_ratio_percent", "").value(),
              200);
}

TEST(Watchdog, SparseIntervalsDoNotQualifyForLatencyJudgement) {
    Registry registry;
    Histogram& assess = registry.histogram("test_assess_seconds", "test",
                                           {0.001, 0.01, 0.1, 1.0});
    FlightRecorder recorder{{}, registry};
    Watchdog watchdog{tiny_config(), registry};

    recorder.sample_now();
    // Each interval sees 2 observations < min_latency_samples (4): a
    // two-request window has no meaningful p99, however slow it looks.
    for (int tick = 0; tick < 6; ++tick) {
        assess.observe(0.5);
        assess.observe(0.5);
        recorder.sample_now();
    }
    const HealthVerdict verdict = watchdog.evaluate(recorder);
    const HealthSignal& signal = signal_named(verdict, "assess_p99");
    EXPECT_FALSE(signal.evaluated);
    EXPECT_FALSE(signal.firing);
    EXPECT_TRUE(verdict.healthy);
}

TEST(Watchdog, CacheHitRateCollapseFires) {
    Registry registry;
    Counter& hits = registry.counter("hpr_calibration_cache_hits_total", "");
    Counter& misses =
        registry.counter("hpr_calibration_cache_misses_total", "");
    // Registered up front: a counter's first-ever snapshot has delta 0,
    // so a late registration would hide its first window of traffic.
    Counter& refmodel_hits =
        registry.counter("hpr_refmodel_cache_hits_total", "");
    registry.counter("hpr_refmodel_cache_misses_total", "");
    FlightRecorder recorder{{}, registry};
    Watchdog watchdog{tiny_config(), registry};

    recorder.sample_now();
    // Idle window: 4 lookups < min_cache_lookups (10) - not judged.
    hits.increment(2);
    misses.increment(2);
    recorder.sample_now();
    HealthVerdict verdict = watchdog.evaluate(recorder);
    EXPECT_FALSE(signal_named(verdict, "calibration_hits").evaluated);
    EXPECT_EQ(
        registry.gauge("hpr_health_calibration_hit_rate_percent", "").value(),
        -1);

    // Busy window with 10% hit rate: judged and firing.
    hits.increment(2);
    misses.increment(18);
    recorder.sample_now();
    verdict = watchdog.evaluate(recorder);
    const HealthSignal& signal = signal_named(verdict, "calibration_hits");
    EXPECT_TRUE(signal.evaluated);
    EXPECT_TRUE(signal.firing);
    EXPECT_FALSE(verdict.healthy);
    // Window rate: (2+2)/(4+20) = 16.7% (recent_window covers both ticks).
    EXPECT_LT(signal.value, 0.5);
    EXPECT_EQ(
        registry.gauge("hpr_health_calibration_hit_rate_percent", "").value(),
        17);

    // Healthy refmodel traffic leaves the sibling signal quiet.
    refmodel_hits.increment(50);
    recorder.sample_now();
    verdict = watchdog.evaluate(recorder);
    const HealthSignal& refmodel = signal_named(verdict, "refmodel_hits");
    EXPECT_TRUE(refmodel.evaluated);
    EXPECT_FALSE(refmodel.firing);
    EXPECT_EQ(refmodel.value, 1.0);
}

TEST(Watchdog, IngestStallCountsOnlyAfterFirstMovement) {
    Registry registry;
    Counter& ingest = registry.counter("hpr_store_ingest_total", "");
    FlightRecorder recorder{{}, registry};
    Watchdog watchdog{tiny_config(), registry};  // stall at 3 flat intervals

    // Flat from birth: a daemon that never had a feed is not stalled.
    for (int tick = 0; tick < 5; ++tick) {
        recorder.sample_now();
        const HealthVerdict verdict = watchdog.evaluate(recorder);
        EXPECT_FALSE(signal_named(verdict, "ingest").evaluated);
    }

    // Ingest moves once...
    ingest.increment(100);
    recorder.sample_now();
    HealthVerdict verdict = watchdog.evaluate(recorder);
    EXPECT_TRUE(signal_named(verdict, "ingest").evaluated);
    EXPECT_FALSE(signal_named(verdict, "ingest").firing);

    // ...then the feed dies: fires on the third consecutive flat interval.
    for (int flat = 1; flat <= 3; ++flat) {
        recorder.sample_now();
        verdict = watchdog.evaluate(recorder);
        EXPECT_EQ(signal_named(verdict, "ingest").value,
                  static_cast<double>(flat));
        EXPECT_EQ(signal_named(verdict, "ingest").firing, flat >= 3) << flat;
    }
    EXPECT_FALSE(verdict.healthy);
    EXPECT_EQ(registry.gauge("hpr_health_ingest_flat_intervals", "").value(), 3);

    // Recovery resets the stall count immediately.
    ingest.increment(1);
    recorder.sample_now();
    verdict = watchdog.evaluate(recorder);
    EXPECT_FALSE(signal_named(verdict, "ingest").firing);
    EXPECT_EQ(signal_named(verdict, "ingest").value, 0.0);
}

TEST(Watchdog, HeartbeatLagJudgedThroughProbe) {
    Registry registry;
    FlightRecorder recorder{{}, registry};
    Watchdog watchdog{tiny_config(), registry};  // budget 0.25s

    recorder.sample_now();
    // No probe installed.
    HealthVerdict verdict = watchdog.evaluate(recorder);
    EXPECT_FALSE(signal_named(verdict, "heartbeat").evaluated);
    EXPECT_EQ(registry.gauge("hpr_health_heartbeat_lag_micros", "").value(),
              -1);

    // Probe with no measurement yet (negative lag).
    watchdog.set_heartbeat_probe([] { return -1.0; });
    recorder.sample_now();
    verdict = watchdog.evaluate(recorder);
    EXPECT_FALSE(signal_named(verdict, "heartbeat").evaluated);

    // Responsive loop.
    watchdog.set_heartbeat_probe([] { return 0.002; });
    recorder.sample_now();
    verdict = watchdog.evaluate(recorder);
    EXPECT_TRUE(signal_named(verdict, "heartbeat").evaluated);
    EXPECT_FALSE(signal_named(verdict, "heartbeat").firing);
    EXPECT_EQ(registry.gauge("hpr_health_heartbeat_lag_micros", "").value(),
              2000);

    // Wedged loop.
    watchdog.set_heartbeat_probe([] { return 0.5; });
    recorder.sample_now();
    verdict = watchdog.evaluate(recorder);
    EXPECT_TRUE(signal_named(verdict, "heartbeat").firing);
    EXPECT_FALSE(verdict.healthy);
}

TEST(Watchdog, HealthFrameIsOneJsonObject) {
    Registry registry;
    FlightRecorder recorder{{}, registry};
    Watchdog watchdog{tiny_config(), registry};
    recorder.sample_now();
    const std::string frame = to_frame(watchdog.evaluate(recorder));

    EXPECT_EQ(frame.find("{\"type\":\"health\",\"seq\":1,"), 0u);
    EXPECT_NE(frame.find("\"healthy\":true"), std::string::npos);
    EXPECT_NE(frame.find("\"name\":\"assess_p99\""), std::string::npos);
    EXPECT_NE(frame.find("\"name\":\"heartbeat\""), std::string::npos);
    EXPECT_EQ(frame.find('\n'), std::string::npos);
}

TEST(Watchdog, RenderBlackboxAssemblesAllFrameTypes) {
    Registry registry;
    registry.counter("test_bb_total", "").increment(1);
    FlightRecorder recorder{{}, registry};
    Watchdog watchdog{tiny_config(), registry};
    Tracer tracer;
    DecisionRecord record;
    record.server = 42;
    tracer.ring().push(std::move(record));

    recorder.sample_now();
    recorder.sample_now();
    watchdog.evaluate(recorder);

    const std::string payload =
        render_blackbox(recorder, &watchdog, &tracer, 1, 8);
    // snapshot_n = 1: only the newest snapshot, then health, then traces.
    EXPECT_EQ(payload.find("{\"type\":\"snapshot\",\"seq\":2,"), 0u);
    EXPECT_EQ(payload.find("\"seq\":1,"), std::string::npos);
    EXPECT_NE(payload.find("{\"type\":\"health\","), std::string::npos);
    EXPECT_NE(payload.find("{\"type\":\"trace\",\"record\":"),
              std::string::npos);
    EXPECT_EQ(payload.back(), '\n');
}

}  // namespace
}  // namespace hpr::obs
