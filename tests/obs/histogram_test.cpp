// Histogram correctness: percentile readout against a sorted-sample
// reference, inclusive bucket-boundary placement, empty readout, and
// multi-threaded recording with value conservation.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <thread>
#include <vector>

#include "stats/rng.h"

namespace hpr::obs {
namespace {

/// Index of the bucket (inclusive upper bounds; bounds.size() = overflow)
/// a value lands in — mirrors the recording rule.
std::size_t bucket_index(const std::vector<double>& bounds, double value) {
    for (std::size_t b = 0; b < bounds.size(); ++b) {
        if (value <= bounds[b]) return b;
    }
    return bounds.size();
}

/// The rank-based reference quantile the histogram estimate approximates:
/// the ceil(q*n)-th smallest sample.
double sorted_reference(std::vector<double> samples, double q) {
    std::sort(samples.begin(), samples.end());
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(samples.size())));
    return samples[std::max<std::size_t>(rank, 1) - 1];
}

TEST(Histogram, QuantilesTrackSortedReferenceOnUniformSamples) {
    // Fine linear buckets over the sample range: the interpolated estimate
    // must land within one bucket width of the exact sorted-sample rank.
    std::vector<double> bounds;
    for (int b = 1; b <= 50; ++b) bounds.push_back(0.02 * b);
    Histogram hist{bounds};

    stats::Rng rng{2024};
    std::vector<double> samples;
    samples.reserve(20000);
    for (int i = 0; i < 20000; ++i) {
        const double v = rng.uniform();
        samples.push_back(v);
        hist.observe(v);
    }

    const HistogramSnapshot snap = hist.snapshot();
    for (const double q : {0.5, 0.9, 0.95, 0.99}) {
        const double ref = sorted_reference(samples, q);
        EXPECT_NEAR(snap.quantile(q), ref, 0.02 + 1e-12)
            << "quantile " << q;
    }
}

TEST(Histogram, QuantilesLandInTheReferenceBucketOnExponentialSamples) {
    // Geometric latency buckets + a skewed distribution: the estimate and
    // the sorted-sample reference use the same rank, so they must resolve
    // to the same bucket, and the estimate stays inside that bucket.
    Histogram hist{default_latency_buckets()};
    const std::vector<double>& bounds = hist.bounds();

    stats::Rng rng{77};
    std::vector<double> samples;
    samples.reserve(20000);
    for (int i = 0; i < 20000; ++i) {
        // Exponential with mean 50 ms — spans several bucket decades.
        const double v = -0.05 * std::log(1.0 - rng.uniform());
        samples.push_back(v);
        hist.observe(v);
    }

    const HistogramSnapshot snap = hist.snapshot();
    for (const double q : {0.5, 0.9, 0.95, 0.99}) {
        const double ref = sorted_reference(samples, q);
        const double est = snap.quantile(q);
        const std::size_t bucket = bucket_index(bounds, ref);
        ASSERT_LT(bucket, bounds.size()) << "test samples must stay finite";
        const double lower = bucket == 0 ? 0.0 : bounds[bucket - 1];
        EXPECT_GE(est, lower) << "quantile " << q;
        EXPECT_LE(est, bounds[bucket]) << "quantile " << q;
    }
}

TEST(Histogram, BucketBoundariesAreInclusiveUpperBounds) {
    Histogram hist{{1.0, 2.0, 3.0}};
    hist.observe(0.5);  // -> bucket 0
    hist.observe(1.0);  // boundary: still bucket 0 (le semantics)
    hist.observe(1.5);  // -> bucket 1
    hist.observe(2.0);  // boundary: bucket 1
    hist.observe(3.0);  // boundary: bucket 2
    hist.observe(3.5);  // above the last bound -> overflow

    const HistogramSnapshot snap = hist.snapshot();
    ASSERT_EQ(snap.counts.size(), 4u);
    EXPECT_EQ(snap.counts[0], 2u);
    EXPECT_EQ(snap.counts[1], 2u);
    EXPECT_EQ(snap.counts[2], 1u);
    EXPECT_EQ(snap.counts[3], 1u);
    EXPECT_EQ(snap.count, 6u);
    EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 1.5 + 2.0 + 3.0 + 3.5);
}

TEST(Histogram, OverflowQuantileClampsToLargestFiniteBound) {
    Histogram hist{{1.0, 2.0}};
    hist.observe(10.0);
    hist.observe(20.0);
    EXPECT_DOUBLE_EQ(hist.snapshot().quantile(0.99), 2.0);
}

TEST(Histogram, EmptyReadout) {
    const Histogram hist{{1.0, 2.0}};
    const HistogramSnapshot snap = hist.snapshot();
    EXPECT_EQ(snap.count, 0u);
    EXPECT_DOUBLE_EQ(snap.sum, 0.0);
    EXPECT_DOUBLE_EQ(snap.mean(), 0.0);
    EXPECT_DOUBLE_EQ(snap.quantile(0.5), 0.0);
    for (const auto c : snap.counts) EXPECT_EQ(c, 0u);
}

TEST(Histogram, QuantileRejectsOutOfRangeProbability) {
    Histogram hist{{1.0}};
    hist.observe(0.5);
    const HistogramSnapshot snap = hist.snapshot();
    EXPECT_THROW((void)snap.quantile(-0.01), std::invalid_argument);
    EXPECT_THROW((void)snap.quantile(1.01), std::invalid_argument);
}

TEST(Histogram, RejectsMalformedBounds) {
    EXPECT_THROW(Histogram{std::vector<double>{}}, std::invalid_argument);
    EXPECT_THROW((Histogram{{1.0, 1.0}}), std::invalid_argument);
    EXPECT_THROW((Histogram{{2.0, 1.0}}), std::invalid_argument);
    EXPECT_THROW((Histogram{{-1.0, 1.0}}), std::invalid_argument);
}

TEST(Histogram, ConcurrentRecordingConservesEveryObservation) {
    // 8 threads, each recording 5000 observations cycling over 8 exactly
    // representable values: afterwards nothing may be lost or double
    // counted — total count, per-bucket counts and the sum must all equal
    // the arithmetic of what was recorded.
    constexpr int kThreads = 8;
    constexpr int kPerThread = 5000;
    Histogram hist{{0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0}};

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&hist] {
            for (int i = 0; i < kPerThread; ++i) {
                hist.observe(0.25 * ((i % 8) + 1));
            }
        });
    }
    for (auto& thread : threads) thread.join();

    const HistogramSnapshot snap = hist.snapshot();
    EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads * kPerThread));
    std::uint64_t bucket_total = 0;
    for (std::size_t b = 0; b < snap.counts.size(); ++b) {
        bucket_total += snap.counts[b];
        if (b < 8) {
            // 5000 % 8 == 0: every value hits its bucket exactly
            // kPerThread / 8 times per thread.
            EXPECT_EQ(snap.counts[b],
                      static_cast<std::uint64_t>(kThreads * kPerThread / 8))
                << "bucket " << b;
        } else {
            EXPECT_EQ(snap.counts[b], 0u) << "bucket " << b;
        }
    }
    EXPECT_EQ(bucket_total, snap.count);
    // Per thread: 625 of each value 0.25..2.0 sums to 625 * 0.25 * 36,
    // exactly representable in binary floating point.
    EXPECT_DOUBLE_EQ(snap.sum, kThreads * 625 * 0.25 * 36);
}

}  // namespace
}  // namespace hpr::obs
