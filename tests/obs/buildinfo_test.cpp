// Build-identity instrumentation: the hpr_build_info info-metric (the
// Prometheus constant-1 gauge whose labels carry the identity) and the
// hpr_uptime_seconds gauge.

#include "obs/buildinfo.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "obs/export.h"
#include "obs/metrics.h"

namespace hpr::obs {
namespace {

TEST(BuildInfo, IdentityStringsAreNonEmptyAndStable) {
    const std::string version = build_version();
    const std::string compiler = build_compiler();
    EXPECT_FALSE(version.empty());
    EXPECT_FALSE(compiler.empty());
    EXPECT_EQ(version, build_version());
    EXPECT_EQ(compiler, build_compiler());
}

TEST(BuildInfo, RegistersConstantOneInfoMetricWithLabels) {
    Registry registry;
    register_build_identity(registry);

    const std::string text = to_prometheus(registry);
    EXPECT_NE(text.find("# TYPE hpr_build_info gauge"), std::string::npos);
    EXPECT_NE(text.find(std::string{"hpr_build_info{version=\""} +
                        build_version() + "\""),
              std::string::npos);
    EXPECT_NE(text.find(std::string{"compiler=\""} + build_compiler() + "\""),
              std::string::npos);
    EXPECT_NE(text.find("} 1\n"), std::string::npos);

    // Idempotent: registering again must not duplicate or throw.
    register_build_identity(registry);
    EXPECT_EQ(to_prometheus(registry), text);
}

TEST(BuildInfo, UptimeIsNonNegativeAndMonotone) {
    const double before = uptime_seconds();
    EXPECT_GE(before, 0.0);
    EXPECT_GE(uptime_seconds(), before);

    Registry registry;
    publish_uptime(registry);
    const std::string text = to_prometheus(registry);
    EXPECT_NE(text.find("# TYPE hpr_uptime_seconds gauge"), std::string::npos);
    EXPECT_NE(text.find("hpr_uptime_seconds "), std::string::npos);
}

TEST(BuildInfo, UptimeRefreshesOnEveryScrape) {
    // Provider-backed: the gauge must move between two spaced registry
    // visits without anyone calling publish_uptime() again.  A frozen
    // uptime (the value from the last explicit publish) once shipped —
    // this pins the fix.  The 1.1s gap guarantees the whole-second
    // floor crosses at least one boundary.
    Registry registry;
    publish_uptime(registry);
    Gauge& uptime = registry.gauge("hpr_uptime_seconds", "");

    registry.visit([](const Registry::Entry&) {});
    const std::int64_t first = uptime.value();
    EXPECT_GE(first, 0);

    std::this_thread::sleep_for(std::chrono::milliseconds(1100));
    registry.visit([](const Registry::Entry&) {});
    const std::int64_t second = uptime.value();
    EXPECT_GT(second, first);
}

TEST(RegistryLabels, LabeledGaugeRendersPrometheusAndJson) {
    Registry registry;
    Gauge& gauge = registry.gauge("labeled_info", "an info metric",
                                  {{"version", "1.2.3"}, {"arch", "x86_64"}});
    gauge.set(1);
    registry.gauge("plain_gauge", "no labels").set(7);

    const std::string text = to_prometheus(registry);
    EXPECT_NE(text.find("labeled_info{version=\"1.2.3\",arch=\"x86_64\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("plain_gauge 7"), std::string::npos);

    const std::string json = to_json(registry);
    EXPECT_NE(json.find("\"labels\""), std::string::npos);
    EXPECT_NE(json.find("\"version\":\"1.2.3\""), std::string::npos);
}

TEST(RegistryLabels, LabelValuesAreEscapedInTheExposition) {
    Registry registry;
    registry.gauge("tricky", "escaping",
                   {{"path", "a\\b"}, {"note", "line1\nline2\"q\""}});
    const std::string text = to_prometheus(registry);
    EXPECT_NE(text.find("path=\"a\\\\b\""), std::string::npos);
    EXPECT_NE(text.find("note=\"line1\\nline2\\\"q\\\"\""), std::string::npos);
}

TEST(RegistryLabels, InvalidLabelKeysThrow) {
    Registry registry;
    EXPECT_THROW(registry.gauge("bad_labels", "h", {{"1bad", "v"}}),
                 std::invalid_argument);
    EXPECT_THROW(registry.gauge("bad_labels2", "h", {{"has space", "v"}}),
                 std::invalid_argument);
}

TEST(RegistryLabels, FirstRegistrationFixesTheLabels) {
    Registry registry;
    Gauge& first = registry.gauge("sticky", "h", {{"k", "v1"}});
    Gauge& second = registry.gauge("sticky", "h", {{"k", "v2"}});
    EXPECT_EQ(&first, &second);  // same slot: labels from the first call win
    const std::string text = to_prometheus(registry);
    EXPECT_NE(text.find("sticky{k=\"v1\"}"), std::string::npos);
    EXPECT_EQ(text.find("v2"), std::string::npos);
}

}  // namespace
}  // namespace hpr::obs
