// The flight recorder (obs/flightrecorder.h): deterministic tick
// semantics on a private registry (counter deltas, gauge levels,
// interval histogram quantiles), ring eviction, series queries, the
// sampler thread, and the crash black-box — including a death test
// that kills the process with SIGSEGV and validates the recovered dump.

#include "obs/flightrecorder.h"

#include <csignal>
#include <cstdio>
#include <unistd.h>

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "obs/watchdog.h"

namespace hpr::obs {
namespace {

const MetricPoint* find(const RecorderSnapshot& snapshot,
                        std::string_view name) {
    for (const auto& [metric, point] : snapshot.points) {
        if (metric == name) return &point;
    }
    return nullptr;
}

TEST(FlightRecorder, RejectsBadConfig) {
    Registry registry;
    EXPECT_THROW(FlightRecorder({.interval_seconds = 0.0}, registry),
                 std::invalid_argument);
    EXPECT_THROW(FlightRecorder({.interval_seconds = -1.0}, registry),
                 std::invalid_argument);
    EXPECT_THROW(FlightRecorder({.capacity = 0}, registry),
                 std::invalid_argument);
}

TEST(FlightRecorder, CounterDeltasAcrossTicks) {
    Registry registry;
    Counter& requests = registry.counter("test_requests_total", "test");
    requests.increment(10);

    FlightRecorder recorder{{}, registry};
    const RecorderSnapshot first = recorder.sample_now();
    const MetricPoint* point = find(first, "test_requests_total");
    ASSERT_NE(point, nullptr);
    EXPECT_EQ(point->kind, MetricKind::kCounter);
    EXPECT_EQ(point->value, 10u);
    // First sight: no previous sample to diff against.
    EXPECT_EQ(point->delta, 0u);
    EXPECT_EQ(first.sequence, 1u);

    requests.increment(7);
    const RecorderSnapshot second = recorder.sample_now();
    point = find(second, "test_requests_total");
    ASSERT_NE(point, nullptr);
    EXPECT_EQ(point->value, 17u);
    EXPECT_EQ(point->delta, 7u);
    EXPECT_EQ(second.sequence, 2u);
    EXPECT_GE(second.interval_seconds, 0.0);
}

TEST(FlightRecorder, GaugeLevelsAreInstantaneous) {
    Registry registry;
    Gauge& depth = registry.gauge("test_queue_depth", "test");
    depth.set(42);
    FlightRecorder recorder{{}, registry};
    const MetricPoint* point = find(recorder.sample_now(), "test_queue_depth");
    ASSERT_NE(point, nullptr);
    EXPECT_EQ(point->kind, MetricKind::kGauge);
    EXPECT_EQ(point->level, 42);

    depth.set(-3);
    point = find(recorder.sample_now(), "test_queue_depth");
    ASSERT_NE(point, nullptr);
    EXPECT_EQ(point->level, -3);
}

TEST(FlightRecorder, HistogramIntervalQuantilesUseBucketDeltas) {
    Registry registry;
    Histogram& latency = registry.histogram("test_latency_seconds", "test",
                                            {0.001, 0.01, 0.1, 1.0});
    FlightRecorder recorder{{}, registry};

    // Interval 1: 100 fast observations.
    for (int i = 0; i < 100; ++i) latency.observe(0.0005);
    const RecorderSnapshot fast = recorder.sample_now();
    const MetricPoint* point = find(fast, "test_latency_seconds");
    ASSERT_NE(point, nullptr);
    EXPECT_EQ(point->kind, MetricKind::kHistogram);
    EXPECT_EQ(point->count, 100u);
    // First sight: interval stats need a previous sample.
    EXPECT_EQ(point->interval_count, 0u);

    // Interval 2: 100 slow observations.  The cumulative histogram now
    // mixes both populations, but the interval p99 must reflect only
    // the slow ones — that is the recorder's whole reason to exist.
    for (int i = 0; i < 100; ++i) latency.observe(0.05);
    const RecorderSnapshot slow = recorder.sample_now();
    point = find(slow, "test_latency_seconds");
    ASSERT_NE(point, nullptr);
    EXPECT_EQ(point->count, 200u);
    EXPECT_EQ(point->interval_count, 100u);
    EXPECT_NEAR(point->interval_sum, 5.0, 1e-9);
    // All interval observations landed in the (0.01, 0.1] bucket.
    EXPECT_GT(point->p50, 0.01);
    EXPECT_LE(point->p99, 0.1);
    EXPECT_GT(point->p99, 0.01);

    // Interval 3: quiet — quantiles report zero, not stale values.
    const RecorderSnapshot quiet = recorder.sample_now();
    point = find(quiet, "test_latency_seconds");
    ASSERT_NE(point, nullptr);
    EXPECT_EQ(point->interval_count, 0u);
    EXPECT_EQ(point->p99, 0.0);
}

TEST(FlightRecorder, RingEvictsOldestFirst) {
    Registry registry;
    registry.counter("test_events_total", "test");
    FlightRecorder recorder{{.capacity = 4}, registry};
    for (int i = 0; i < 7; ++i) recorder.sample_now();

    EXPECT_EQ(recorder.size(), 4u);
    EXPECT_EQ(recorder.samples_taken(), 7u);
    const std::vector<RecorderSnapshot> retained = recorder.snapshots();
    ASSERT_EQ(retained.size(), 4u);
    for (std::size_t i = 0; i < retained.size(); ++i) {
        EXPECT_EQ(retained[i].sequence, 4 + i);  // 4, 5, 6, 7 oldest-first
    }
    EXPECT_EQ(recorder.snapshots(2).size(), 2u);
    EXPECT_EQ(recorder.snapshots(2).front().sequence, 6u);
}

TEST(FlightRecorder, SeriesSkipsSnapshotsBeforeRegistration) {
    Registry registry;
    registry.counter("test_early_total", "test");
    FlightRecorder recorder{{}, registry};
    recorder.sample_now();
    recorder.sample_now();

    // Registered between ticks: appears only from the third snapshot on.
    registry.counter("test_late_total", "test").increment(3);
    recorder.sample_now();

    EXPECT_EQ(recorder.series("test_early_total").size(), 3u);
    const std::vector<SeriesPoint> late = recorder.series("test_late_total");
    ASSERT_EQ(late.size(), 1u);
    EXPECT_EQ(late.front().sequence, 3u);
    EXPECT_EQ(late.front().point.value, 3u);
    EXPECT_TRUE(recorder.series("test_never_registered").empty());

    const auto names = recorder.metric_names();
    ASSERT_FALSE(names.empty());
    EXPECT_TRUE(std::is_sorted(
        names.begin(), names.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; }));
}

TEST(FlightRecorder, SamplerThreadTicksAndStops) {
    Registry registry;
    registry.counter("test_bg_total", "test");
    FlightRecorder recorder{{.interval_seconds = 0.01, .capacity = 64},
                            registry};
    std::uint64_t hook_calls = 0;
    recorder.set_on_sample(
        [&hook_calls](const FlightRecorder&, const RecorderSnapshot&) {
            ++hook_calls;
        });
    recorder.start();
    EXPECT_TRUE(recorder.running());
    EXPECT_THROW(recorder.start(), std::runtime_error);
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    recorder.stop();
    EXPECT_FALSE(recorder.running());
    const std::uint64_t taken = recorder.samples_taken();
    EXPECT_GE(taken, 2u);  // one immediate tick + at least one interval
    EXPECT_EQ(hook_calls, taken);
    recorder.stop();  // idempotent
}

TEST(FlightRecorder, SnapshotFrameIsOneJsonObject) {
    Registry registry;
    registry.counter("test_c_total", "test").increment(2);
    registry.gauge("test_g", "test").set(5);
    registry.histogram("test_h_seconds", "test", {0.1, 1.0}).observe(0.05);
    FlightRecorder recorder{{}, registry};
    const std::string frame = to_frame(recorder.sample_now());

    EXPECT_EQ(frame.find("{\"type\":\"snapshot\",\"seq\":1,"), 0u);
    EXPECT_NE(frame.find("\"counters\":{"), std::string::npos);
    EXPECT_NE(frame.find("\"test_c_total\":{\"value\":2,\"delta\":0}"),
              std::string::npos);
    EXPECT_NE(frame.find("\"gauges\":{"), std::string::npos);
    EXPECT_NE(frame.find("\"test_g\":5"), std::string::npos);
    EXPECT_NE(frame.find("\"histograms\":{"), std::string::npos);
    EXPECT_NE(frame.find("\"test_h_seconds\":{\"count\":1,"), std::string::npos);
    EXPECT_EQ(frame.find('\n'), std::string::npos);
    EXPECT_EQ(frame.back(), '}');
}

std::string read_file(const std::string& path) {
    std::ifstream in{path, std::ios::binary};
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

TEST(BlackBox, PublishStagesAndDisarmTruncates) {
    const std::string path =
        testing::TempDir() + "blackbox_clean_" + std::to_string(::getpid());
    BlackBox& box = BlackBox::instance();
    ASSERT_TRUE(box.arm(path, 4096));
    EXPECT_TRUE(box.armed());

    box.publish("{\"type\":\"snapshot\",\"seq\":1}\n");
    EXPECT_EQ(box.staged_bytes(), 28u);
    box.publish("{\"type\":\"snapshot\",\"seq\":2}\n{\"type\":\"health\"}\n");
    EXPECT_EQ(box.publishes(), 2u);

    // Clean shutdown: no crash happened, the dump must say so by being
    // empty rather than holding the last staged (healthy) payload.
    box.disarm();
    EXPECT_FALSE(box.armed());
    EXPECT_TRUE(read_file(path).empty());
    box.disarm();  // idempotent
    std::remove(path.c_str());
}

TEST(BlackBox, ArmFailsOnUnwritablePath) {
    EXPECT_FALSE(
        BlackBox::instance().arm("/nonexistent-dir/never/blackbox.dump"));
    EXPECT_FALSE(BlackBox::instance().armed());
}

/// Death-test child body: stage real recorder output, then die.  A free
/// function because commas in braced initializers confuse the
/// EXPECT_EXIT macro's argument parsing.
void crash_with_staged_payload(const std::string& path, int signal) {
    Registry registry;
    registry.counter("test_doomed_total", "doomed").increment(9);
    FlightRecorder recorder{{}, registry};
    recorder.sample_now();
    recorder.sample_now();
    BlackBox& box = BlackBox::instance();
    if (!box.arm(path, 1 << 16)) _exit(7);
    box.publish(render_blackbox(recorder, nullptr, nullptr));
    std::raise(signal);
}

TEST(BlackBoxDeathTest, SigsegvDumpsStagedFramesAndCrashFrame) {
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    const std::string path =
        testing::TempDir() + "blackbox_crash_dump";

    EXPECT_EXIT(crash_with_staged_payload(path, SIGSEGV),
                testing::KilledBySignal(SIGSEGV), "");

    // The parent performs the post-mortem the runbook describes: the
    // dump must hold the staged snapshots plus the crash frame.
    const std::string dump = read_file(path);
    ASSERT_FALSE(dump.empty());
    EXPECT_NE(dump.find("\"type\":\"snapshot\""), std::string::npos);
    EXPECT_NE(dump.find("\"test_doomed_total\":{\"value\":9"),
              std::string::npos);
    EXPECT_NE(dump.find("{\"type\":\"crash\",\"signal\":11,\"name\":\"SIGSEGV\"}"),
              std::string::npos);
    EXPECT_EQ(dump.back(), '\n');
    std::remove(path.c_str());
}

void abort_with_health_frame(const std::string& path) {
    BlackBox& box = BlackBox::instance();
    if (!box.arm(path, 1 << 16)) _exit(7);
    box.publish("{\"type\":\"health\",\"healthy\":true}\n");
    std::abort();
}

TEST(BlackBoxDeathTest, SigabrtIsAlsoCaught) {
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    const std::string path =
        testing::TempDir() + "blackbox_abort_dump";

    EXPECT_EXIT(abort_with_health_frame(path),
                testing::KilledBySignal(SIGABRT), "");

    const std::string dump = read_file(path);
    EXPECT_NE(dump.find("{\"type\":\"health\",\"healthy\":true}"),
              std::string::npos);
    EXPECT_NE(dump.find("{\"type\":\"crash\",\"signal\":6,\"name\":\"SIGABRT\"}"),
              std::string::npos);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace hpr::obs
