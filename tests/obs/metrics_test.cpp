// Registry, counter/gauge primitives, the global kill switch, the RAII
// timing helpers and both exporters — plus one end-to-end check that the
// library's instrumentation sites actually record into default_registry().

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "core/two_phase.h"
#include "obs/export.h"
#include "obs/timer.h"
#include "repsys/store.h"
#include "repsys/trust.h"
#include "sim/generators.h"
#include "stats/rng.h"

namespace hpr::obs {
namespace {

/// The kill switch is process-global state; every test that flips it must
/// leave it on for the rest of the suite.
struct EnabledGuard {
    ~EnabledGuard() { set_enabled(true); }
};

TEST(Counter, IncrementsAndResets) {
    Counter counter;
    EXPECT_EQ(counter.value(), 0u);
    counter.increment();
    counter.increment(41);
    EXPECT_EQ(counter.value(), 42u);
    counter.reset();
    EXPECT_EQ(counter.value(), 0u);
}

TEST(Gauge, SetAddSubAndRunningMax) {
    Gauge gauge;
    gauge.set(7);
    EXPECT_EQ(gauge.value(), 7);
    gauge.add(3);
    gauge.sub(5);
    EXPECT_EQ(gauge.value(), 5);
    gauge.set(-2);
    EXPECT_EQ(gauge.value(), -2);

    gauge.reset();
    gauge.set_max(10);
    gauge.set_max(4);  // lower: must not move the high-water mark
    EXPECT_EQ(gauge.value(), 10);
    gauge.set_max(15);
    EXPECT_EQ(gauge.value(), 15);
}

TEST(KillSwitch, DisabledRecordingIsANoOp) {
    const EnabledGuard guard;
    Counter counter;
    Gauge gauge;
    Histogram hist{{1.0}};

    set_enabled(false);
    EXPECT_FALSE(enabled());
    counter.increment();
    gauge.set(5);
    gauge.add(3);
    gauge.set_max(9);
    hist.observe(0.5);
    EXPECT_EQ(counter.value(), 0u);
    EXPECT_EQ(gauge.value(), 0);
    EXPECT_EQ(hist.count(), 0u);

    set_enabled(true);
    EXPECT_TRUE(enabled());
    counter.increment();
    hist.observe(0.5);
    EXPECT_EQ(counter.value(), 1u);
    EXPECT_EQ(hist.count(), 1u);
}

TEST(KillSwitch, ResetWorksWhileDisabled) {
    const EnabledGuard guard;
    Gauge gauge;
    gauge.set(5);
    set_enabled(false);
    gauge.reset();  // reset epochs must apply even when recording is off
    EXPECT_EQ(gauge.value(), 0);
}

TEST(Registry, SameNameReturnsSameMetric) {
    Registry registry;
    Counter& a = registry.counter("requests_total", "first registration");
    Counter& b = registry.counter("requests_total", "ignored on re-registration");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(registry.size(), 1u);
    EXPECT_TRUE(registry.contains("requests_total"));
    EXPECT_FALSE(registry.contains("absent"));
}

TEST(Registry, KindMismatchThrows) {
    Registry registry;
    (void)registry.counter("metric_a");
    EXPECT_THROW((void)registry.gauge("metric_a"), std::invalid_argument);
    EXPECT_THROW((void)registry.histogram("metric_a"), std::invalid_argument);
    (void)registry.gauge("metric_b");
    EXPECT_THROW((void)registry.counter("metric_b"), std::invalid_argument);
}

TEST(Registry, RejectsInvalidNames) {
    Registry registry;
    EXPECT_THROW((void)registry.counter(""), std::invalid_argument);
    EXPECT_THROW((void)registry.counter("9starts_with_digit"), std::invalid_argument);
    EXPECT_THROW((void)registry.counter("has-dash"), std::invalid_argument);
    EXPECT_THROW((void)registry.counter("has space"), std::invalid_argument);
    (void)registry.counter("_leading_underscore_ok");
    (void)registry.counter("mixedCase_09_ok");
}

TEST(Registry, HistogramBoundsAreFixedAtFirstRegistration) {
    Registry registry;
    Histogram& custom = registry.histogram("lat_seconds", "", {0.1, 0.2});
    EXPECT_EQ(custom.bounds(), (std::vector<double>{0.1, 0.2}));
    Histogram& again = registry.histogram("lat_seconds", "", {9.0});
    EXPECT_EQ(&custom, &again);
    EXPECT_EQ(again.bounds(), (std::vector<double>{0.1, 0.2}));

    Histogram& defaulted = registry.histogram("lat2_seconds");
    EXPECT_EQ(defaulted.bounds(), default_latency_buckets());
}

TEST(Registry, VisitsInNameOrderWithStableAddresses) {
    Registry registry;
    Counter& c = registry.counter("b_total", "counts");
    Gauge& g = registry.gauge("a_level", "levels");
    Histogram& h = registry.histogram("c_seconds", "spans");

    std::vector<std::string> names;
    registry.visit([&](const Registry::Entry& entry) {
        names.push_back(entry.name);
        switch (entry.kind) {
            case MetricKind::kCounter: EXPECT_EQ(entry.counter, &c); break;
            case MetricKind::kGauge: EXPECT_EQ(entry.gauge, &g); break;
            case MetricKind::kHistogram: EXPECT_EQ(entry.histogram, &h); break;
        }
    });
    EXPECT_EQ(names, (std::vector<std::string>{"a_level", "b_total", "c_seconds"}));
}

TEST(Registry, ResetValuesZerosEverythingButKeepsRegistrations) {
    Registry registry;
    Counter& c = registry.counter("c_total");
    Gauge& g = registry.gauge("g_level");
    Histogram& h = registry.histogram("h_seconds", "", {1.0});
    c.increment(3);
    g.set(9);
    h.observe(0.5);

    registry.reset_values();
    EXPECT_EQ(registry.size(), 3u);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(ScopedTimer, RecordsExactlyOneSpan) {
    Histogram hist{{10.0}};
    {
        ScopedTimer span{hist};
    }
    EXPECT_EQ(hist.count(), 1u);
    EXPECT_GE(hist.sum(), 0.0);
}

TEST(ScopedTimer, StopIsIdempotentAndCancelDropsTheSpan) {
    Histogram hist{{10.0}};
    {
        ScopedTimer span{hist};
        span.stop();
        span.stop();  // second stop and the destructor must not re-record
    }
    EXPECT_EQ(hist.count(), 1u);
    {
        ScopedTimer span{hist};
        span.cancel();
    }
    EXPECT_EQ(hist.count(), 1u);
}

TEST(ScopedTimer, DisabledAtConstructionNeverRecords) {
    const EnabledGuard guard;
    Histogram hist{{10.0}};
    set_enabled(false);
    {
        ScopedTimer span{hist};
        // Re-enabling mid-span must not resurrect it: the decision is
        // taken at construction, so the span stays free of clock reads.
        set_enabled(true);
    }
    EXPECT_EQ(hist.count(), 0u);
}

TEST(Stopwatch, MeasuresNonNegativeMonotoneTime) {
    Stopwatch watch;
    const double first = watch.seconds();
    EXPECT_GE(first, 0.0);
    EXPECT_GE(watch.seconds(), first);
    watch.restart();
    EXPECT_GE(watch.seconds(), 0.0);
}

TEST(Exporters, PrometheusTextCarriesTypesValuesAndCumulativeBuckets) {
    Registry registry;
    registry.counter("x_requests_total", "served requests").increment(3);
    registry.gauge("x_queue_depth").set(-2);
    Histogram& h = registry.histogram("x_lat_seconds", "span", {1.0, 2.0});
    h.observe(0.5);
    h.observe(1.5);
    h.observe(9.0);

    const std::string text = to_prometheus(registry);
    EXPECT_NE(text.find("# HELP x_requests_total served requests\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE x_requests_total counter\n"), std::string::npos);
    EXPECT_NE(text.find("x_requests_total 3\n"), std::string::npos);
    EXPECT_NE(text.find("# TYPE x_queue_depth gauge\n"), std::string::npos);
    EXPECT_NE(text.find("x_queue_depth -2\n"), std::string::npos);
    EXPECT_NE(text.find("# TYPE x_lat_seconds histogram\n"), std::string::npos);
    EXPECT_NE(text.find("x_lat_seconds_bucket{le=\"1\"} 1\n"), std::string::npos);
    EXPECT_NE(text.find("x_lat_seconds_bucket{le=\"2\"} 2\n"), std::string::npos);
    EXPECT_NE(text.find("x_lat_seconds_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
    EXPECT_NE(text.find("x_lat_seconds_sum 11\n"), std::string::npos);
    EXPECT_NE(text.find("x_lat_seconds_count 3\n"), std::string::npos);
    // A gauge with no help string must not emit a dangling HELP line.
    EXPECT_EQ(text.find("# HELP x_queue_depth"), std::string::npos);
}

TEST(Registry, ResetForTestsClearsProcessGlobalCarryOver) {
    Registry registry;
    Counter& c = registry.counter("rft_total");
    Gauge& g = registry.gauge("rft_level");
    Histogram& h = registry.histogram("rft_seconds", "", {1.0});
    c.increment(11);
    g.set(-3);
    h.observe(0.25);

    registry.reset_for_tests();
    EXPECT_EQ(registry.size(), 3u) << "registrations must survive the reset";
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
    c.increment();  // the same metric objects keep recording afterwards
    EXPECT_EQ(c.value(), 1u);
}

TEST(Exporters, EscapePrometheusNeutralizesNewlinesAndBackslashes) {
    EXPECT_EQ(escape_prometheus("plain_name"), "plain_name");
    EXPECT_EQ(escape_prometheus("evil\nname"), "evil\\nname");
    EXPECT_EQ(escape_prometheus("back\\slash"), "back\\\\slash");
    EXPECT_EQ(escape_prometheus("a\nb\\c\n"), "a\\nb\\\\c\\n");
    EXPECT_EQ(escape_prometheus(""), "");
}

TEST(Exporters, EscapeJsonHandlesQuotesAndControlCharacters) {
    EXPECT_EQ(escape_json("plain"), "plain");
    EXPECT_EQ(escape_json("say \"hi\""), "say \\\"hi\\\"");
    EXPECT_EQ(escape_json("tab\there"), "tab\\there");
    EXPECT_EQ(escape_json(std::string{"nul\x01" "byte"}), "nul\\u0001byte");
    EXPECT_EQ(escape_json("line\nbreak\r"), "line\\nbreak\\r");
}

TEST(Exporters, PrometheusEscapesHelpTextDefensively) {
    // Registry rejects invalid metric *names*, so in practice the attack
    // surface is the free-form help string: an embedded newline would
    // otherwise inject arbitrary exposition lines into a scrape.
    Registry registry;
    registry
        .counter("esc_total",
                 "line one\ninjected_metric 999\nwith back\\slash")
        .increment(5);

    const std::string text = to_prometheus(registry);
    EXPECT_NE(text.find("# HELP esc_total line one\\ninjected_metric 999\\n"
                        "with back\\\\slash\n"),
              std::string::npos);
    // The injected sample line must NOT appear at line start anywhere.
    EXPECT_EQ(text.find("\ninjected_metric 999"), std::string::npos);
    EXPECT_NE(text.find("esc_total 5\n"), std::string::npos);
}

TEST(Exporters, JsonCarriesSectionsAndPrecomputedPercentiles) {
    Registry registry;
    registry.counter("j_total").increment(7);
    registry.gauge("j_level").set(4);
    Histogram& h = registry.histogram("j_seconds", "", {1.0, 2.0});
    for (int i = 0; i < 100; ++i) h.observe(0.5);

    const std::string json = to_json(registry);
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_NE(json.find("\"j_total\":7"), std::string::npos);
    EXPECT_NE(json.find("\"j_level\":4"), std::string::npos);
    EXPECT_NE(json.find("\"count\":100"), std::string::npos);
    // 100 identical 0.5s observations: p50 interpolates inside (0, 1].
    EXPECT_NE(json.find("\"p50\":0.5"), std::string::npos);
    EXPECT_NE(json.find("\"p50\""), std::string::npos);
    EXPECT_NE(json.find("\"p95\""), std::string::npos);
    EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(DefaultRegistry, LibraryInstrumentationRecordsIntoIt) {
    // End-to-end wiring: driving the store and the assessor must move the
    // process-wide metrics.  Deltas, not absolute values — other tests in
    // this binary (and the components themselves) share the registry.
    Registry& registry = default_registry();

    stats::Rng rng{11};
    const auto history = sim::honest_history(60, 0.9, rng);

    Counter& ingest = registry.counter("hpr_store_ingest_total");
    const std::uint64_t ingest_before = ingest.value();
    repsys::FeedbackStore store;
    for (const auto& feedback : history.feedbacks()) store.submit(feedback);
    EXPECT_EQ(ingest.value(), ingest_before + history.size());

    Counter& assessments = registry.counter("hpr_assessments_total");
    Histogram& phase1 = registry.histogram("hpr_assess_phase1_seconds");
    const std::uint64_t assessments_before = assessments.value();
    const std::uint64_t phase1_before = phase1.count();
    const core::TwoPhaseAssessor assessor{
        core::TwoPhaseConfig{},
        std::shared_ptr<const repsys::TrustFunction>{
            repsys::make_trust_function("beta")}};
    const auto assessment = assessor.assess(history.view());
    EXPECT_EQ(assessments.value(), assessments_before + 1);
    EXPECT_EQ(phase1.count(), phase1_before + 1);

    // The verdict counter that fired must be the one matching the verdict.
    const char* verdict_metric = nullptr;
    switch (assessment.verdict) {
        case core::Verdict::kSuspicious:
            verdict_metric = "hpr_assessments_suspicious_total";
            break;
        case core::Verdict::kAssessed:
            verdict_metric = "hpr_assessments_assessed_total";
            break;
        case core::Verdict::kInsufficientHistory:
            verdict_metric = "hpr_assessments_insufficient_total";
            break;
    }
    ASSERT_NE(verdict_metric, nullptr);
    EXPECT_GE(registry.counter(verdict_metric).value(), 1u);
}

}  // namespace
}  // namespace hpr::obs
