// Decision tracing: the ring buffer's conservation and eviction
// semantics, deterministic sampling, JSONL round-trips, and the
// end-to-end contract — a flagged server's DecisionRecord carries the
// failing suffix length, L1 distance and calibrated ε, verified here
// against values recomputed independently of the assessor's ladder.

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/collusion.h"
#include "core/online.h"
#include "core/two_phase.h"
#include "obs/metrics.h"
#include "repsys/trust.h"
#include "sim/generators.h"
#include "stats/binomial.h"
#include "stats/distance.h"
#include "stats/empirical.h"
#include "stats/rng.h"

namespace hpr::obs {
namespace {

/// Tracing rides process-global state (the obs kill switch and the
/// default tracer); every integration test scopes both: tracer on at
/// sample rate 1, ring drained on entry and exit, everything restored to
/// the quiet default afterwards.
struct TracerGuard {
    TracerGuard() {
        set_enabled(true);
        default_tracer().set_sample_rate(1.0);
        default_tracer().set_span_stages(false);
        default_tracer().set_enabled(true);
        (void)default_tracer().ring().drain();
    }
    ~TracerGuard() {
        (void)default_tracer().ring().drain();
        default_tracer().set_enabled(false);
        set_enabled(true);
    }
};

DecisionRecord make_record(std::uint64_t id) {
    DecisionRecord record;
    record.trace_id = id;
    record.source = "two_phase";
    record.server = id % 7;
    record.verdict = "assessed";
    return record;
}

TEST(TraceRing, RejectsZeroCapacity) {
    EXPECT_THROW(TraceRing{0}, std::invalid_argument);
}

TEST(TraceRing, WrapAroundEvictsOldestInOrder) {
    TraceRing ring{4};
    for (std::uint64_t id = 1; id <= 10; ++id) ring.push(make_record(id));
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.pushed(), 10u);
    EXPECT_EQ(ring.evicted(), 6u);

    const auto drained = ring.drain();
    ASSERT_EQ(drained.size(), 4u);
    for (std::size_t i = 0; i < drained.size(); ++i) {
        EXPECT_EQ(drained[i].trace_id, 7u + i);  // oldest survivor first
    }
    EXPECT_EQ(ring.size(), 0u);
    EXPECT_TRUE(ring.drain().empty());
    EXPECT_EQ(ring.pushed(), 10u) << "drain must not touch lifetime totals";
}

TEST(TraceRing, SnapshotIsNonDestructiveAndOldestFirst) {
    TraceRing ring{4};
    for (std::uint64_t id = 1; id <= 6; ++id) ring.push(make_record(id));

    const auto first = ring.snapshot();
    ASSERT_EQ(first.size(), 4u);
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].trace_id, 3u + i);  // oldest retained first
    }
    EXPECT_EQ(ring.size(), 4u) << "snapshot must not consume records";

    // A repeated scrape sees the same retained set...
    const auto second = ring.snapshot();
    ASSERT_EQ(second.size(), first.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(second[i].trace_id, first[i].trace_id);
    }

    // ...and a later forensics drain still gets everything.
    const auto drained = ring.drain();
    ASSERT_EQ(drained.size(), 4u);
    EXPECT_EQ(drained.front().trace_id, 3u);
    EXPECT_TRUE(ring.snapshot().empty());
}

TEST(TraceRing, ConcurrentRecordAndDrainConservesRecords) {
    constexpr std::size_t kThreads = 8;
    constexpr std::uint64_t kPerThread = 500;
    TraceRing ring{64};

    std::atomic<std::size_t> drained_count{0};
    std::set<std::uint64_t> drained_ids;
    std::atomic<bool> stop{false};
    std::thread drainer{[&] {
        while (!stop.load(std::memory_order_acquire)) {
            for (auto& record : ring.drain()) {
                drained_ids.insert(record.trace_id);
                drained_count.fetch_add(1, std::memory_order_relaxed);
            }
        }
    }};

    std::vector<std::thread> producers;
    for (std::size_t t = 0; t < kThreads; ++t) {
        producers.emplace_back([&ring, t] {
            for (std::uint64_t i = 0; i < kPerThread; ++i) {
                ring.push(make_record(t * kPerThread + i + 1));
            }
        });
    }
    for (auto& thread : producers) thread.join();
    stop.store(true, std::memory_order_release);
    drainer.join();
    for (auto& record : ring.drain()) {
        drained_ids.insert(record.trace_id);
        drained_count.fetch_add(1, std::memory_order_relaxed);
    }

    // Conservation: every push either survived to a drain or was counted
    // as evicted — no loss, no duplication.
    EXPECT_EQ(ring.pushed(), kThreads * kPerThread);
    EXPECT_EQ(drained_count.load() + ring.evicted(), ring.pushed());
    EXPECT_EQ(drained_ids.size(), drained_count.load())
        << "a record was drained twice";
}

TEST(Tracer, SamplingIsDeterministicUnderAFixedSeed) {
    TracerConfig config;
    config.seed = 12345;
    config.sample_rate = 0.37;
    const Tracer a{config};
    const Tracer b{config};

    std::size_t kept = 0;
    for (std::uint64_t id = 1; id <= 1000; ++id) {
        EXPECT_EQ(a.sampled(id), b.sampled(id)) << "id " << id;
        if (a.sampled(id)) ++kept;
    }
    // The decision is a pure hash of (seed, id): the keep fraction must
    // land near the rate (binomial, σ ≈ 0.015 at n=1000).
    EXPECT_NEAR(static_cast<double>(kept) / 1000.0, 0.37, 0.08);

    TracerConfig other = config;
    other.seed = 54321;
    const Tracer c{other};
    std::size_t agreements = 0;
    for (std::uint64_t id = 1; id <= 1000; ++id) {
        if (a.sampled(id) == c.sampled(id)) ++agreements;
    }
    EXPECT_LT(agreements, 1000u) << "seed must matter";
}

TEST(Tracer, RateEndpointsKeepAllOrNothing) {
    TracerConfig config;
    config.sample_rate = 1.0;
    const Tracer all{config};
    config.sample_rate = 0.0;
    const Tracer none{config};
    for (std::uint64_t id = 1; id <= 200; ++id) {
        EXPECT_TRUE(all.sampled(id));
        EXPECT_FALSE(none.sampled(id));
    }
    EXPECT_DOUBLE_EQ(all.sample_rate(), 1.0);
    EXPECT_DOUBLE_EQ(none.sample_rate(), 0.0);
}

TEST(Jsonl, RoundTripsAFullyPopulatedRecord) {
    DecisionRecord record;
    record.trace_id = 987654321;
    record.source = "two_phase";
    record.server = 42;
    record.wall_time = 1754486400.123456;
    record.verdict = "suspicious";
    record.transition = "flagged";
    record.trust = 0.87654321;
    record.mode = "multi";
    record.collusion_resilient = true;
    record.window_size = 10;
    record.history_length = 800;
    record.p_hat = 0.7125;
    record.min_margin = -0.0625;
    record.failed = StageEvidence{200, 20, 0.71, 0.3333333333333333, 0.25, true, false};
    record.reorder = ReorderSummary{true, 60, 31, 0.9875};
    record.runs = RunsEvidence{true, false, -2.5, 1.959963984540054};
    record.stages = {StageEvidence{30, 3, 0.9, 0.1, 0.4, true, true},
                     StageEvidence{200, 20, 0.71, 0.3333333333333333, 0.25, true, false}};
    record.spans = {SpanRecord{"phase1/ladder", 1, 0.0001, 0.0005},
                    SpanRecord{"phase1/screen", 0, 0.0, 0.001}};

    const std::string line = to_jsonl(record);
    EXPECT_EQ(line.find('\n'), std::string::npos) << "JSONL must be one line";

    DecisionRecord parsed;
    ASSERT_TRUE(from_jsonl(line, parsed));
    EXPECT_EQ(parsed.trace_id, record.trace_id);
    EXPECT_EQ(parsed.source, record.source);
    EXPECT_EQ(parsed.server, record.server);
    EXPECT_DOUBLE_EQ(parsed.wall_time, record.wall_time);
    EXPECT_EQ(parsed.verdict, record.verdict);
    EXPECT_EQ(parsed.transition, record.transition);
    ASSERT_TRUE(parsed.trust.has_value());
    EXPECT_DOUBLE_EQ(*parsed.trust, *record.trust);
    EXPECT_EQ(parsed.mode, record.mode);
    EXPECT_EQ(parsed.collusion_resilient, record.collusion_resilient);
    EXPECT_EQ(parsed.window_size, record.window_size);
    EXPECT_EQ(parsed.history_length, record.history_length);
    EXPECT_DOUBLE_EQ(parsed.p_hat, record.p_hat);
    EXPECT_DOUBLE_EQ(parsed.min_margin, record.min_margin);
    ASSERT_TRUE(parsed.failed.has_value());
    EXPECT_EQ(*parsed.failed, *record.failed);
    EXPECT_EQ(parsed.reorder, record.reorder);
    EXPECT_EQ(parsed.runs, record.runs);
    EXPECT_EQ(parsed.stages, record.stages);
    EXPECT_EQ(parsed.spans, record.spans);
}

TEST(Jsonl, OmitsAbsentOptionalSections) {
    DecisionRecord record;
    record.trace_id = 1;
    record.source = "online_screener";
    record.verdict = "clear";
    const std::string line = to_jsonl(record);
    EXPECT_EQ(line.find("\"trust\""), std::string::npos);
    EXPECT_EQ(line.find("\"failed\""), std::string::npos);
    EXPECT_EQ(line.find("\"reorder\""), std::string::npos);
    EXPECT_EQ(line.find("\"runs\""), std::string::npos);
    EXPECT_EQ(line.find("\"transition\""), std::string::npos);

    DecisionRecord parsed;
    ASSERT_TRUE(from_jsonl(line, parsed));
    EXPECT_FALSE(parsed.trust.has_value());
    EXPECT_FALSE(parsed.failed.has_value());
    EXPECT_FALSE(parsed.reorder.applied);
    EXPECT_FALSE(parsed.runs.evaluated);
    EXPECT_TRUE(parsed.transition.empty());
}

TEST(Jsonl, EscapesEmbeddedQuotesAndControls) {
    DecisionRecord record;
    record.trace_id = 5;
    record.source = "two_phase";
    record.verdict = "weird\"verdict\nwith\tcontrols";
    DecisionRecord parsed;
    ASSERT_TRUE(from_jsonl(to_jsonl(record), parsed));
    EXPECT_EQ(parsed.verdict, record.verdict);
}

TEST(Jsonl, RejectsMalformedInput) {
    DecisionRecord out;
    EXPECT_FALSE(from_jsonl("", out));
    EXPECT_FALSE(from_jsonl("not json at all", out));
    EXPECT_FALSE(from_jsonl("{\"trace_id\":", out));
    EXPECT_FALSE(from_jsonl("{\"trace_id\":1", out));
    EXPECT_FALSE(from_jsonl("{\"verdict\":\"unterminated}", out));
    EXPECT_FALSE(from_jsonl("{\"trace_id\":1} trailing", out));
    EXPECT_FALSE(from_jsonl("live monitoring after 1000 transactions", out));
}

TEST(Jsonl, SkipsUnknownKeysForForwardCompatibility) {
    DecisionRecord out;
    ASSERT_TRUE(from_jsonl(
        R"({"trace_id":9,"future_key":{"nested":[1,2,{"x":"y"}]},"verdict":"clear"})",
        out));
    EXPECT_EQ(out.trace_id, 9u);
    EXPECT_EQ(out.verdict, "clear");
}

// --- end-to-end: the assessor's audit trail -------------------------------

TEST(DecisionTrace, FlaggedServerRecordMatchesIndependentRecomputation) {
    const TracerGuard guard;

    // The demo workload's attacker shape: honest-looking preparation,
    // then a burst of cheating — the §3 hibernating attack the screening
    // exists to catch.
    stats::Rng rng{2024};
    const auto history = sim::hibernating_history(600, 200, 0.95, rng, /*server=*/4);
    const auto feedbacks = history.view();

    core::TwoPhaseConfig config;
    config.test.base.replications = 400;  // keep cold calibration quick
    const auto calibrator = core::make_calibrator(config.test.base);
    const core::TwoPhaseAssessor assessor{
        config,
        std::shared_ptr<const repsys::TrustFunction>{
            repsys::make_trust_function("beta")},
        calibrator};

    const auto assessment = assessor.assess(feedbacks);
    ASSERT_EQ(assessment.verdict, core::Verdict::kSuspicious);

    const auto records = default_tracer().ring().drain();
    ASSERT_EQ(records.size(), 1u);
    const DecisionRecord& record = records.front();
    EXPECT_EQ(record.source, "two_phase");
    EXPECT_EQ(record.server, 4u);
    EXPECT_EQ(record.verdict, "suspicious");
    EXPECT_EQ(record.mode, "multi");
    EXPECT_EQ(record.window_size, 10u);
    EXPECT_EQ(record.history_length, feedbacks.size());
    EXPECT_FALSE(record.trust.has_value()) << "suspicious servers get no trust";
    EXPECT_EQ(record.stages.size(), static_cast<std::size_t>(
                                        assessment.screening.stages_run));
    ASSERT_TRUE(record.failed.has_value());
    ASSERT_TRUE(assessment.screening.failed_suffix_length.has_value());
    EXPECT_EQ(record.failed->suffix_length,
              *assessment.screening.failed_suffix_length);
    EXPECT_FALSE(record.failed->passed);

    // Recompute the failing stage's evidence from first principles,
    // bypassing MultiTest: window good-counts over the newest-anchored
    // suffix, L1 distance against B(m, p̂), ε from the shared calibrator.
    const std::uint32_t m = config.test.base.window_size;
    const auto suffix_length = static_cast<std::size_t>(record.failed->suffix_length);
    const std::size_t windows = suffix_length / m;
    stats::EmpiricalDistribution counts{m};
    for (std::size_t w = 0; w < windows; ++w) {
        const std::size_t begin = feedbacks.size() - (w + 1) * m;
        std::uint32_t good = 0;
        for (std::size_t i = begin; i < begin + m; ++i) {
            if (feedbacks[i].good()) ++good;
        }
        counts.add(good);
    }
    const double p_hat = static_cast<double>(counts.value_sum()) /
                         static_cast<double>(windows * m);
    const stats::Binomial reference{m, p_hat};
    const double distance =
        stats::distance(counts, reference.pmf_table(), stats::DistanceKind::kL1);
    const double epsilon =
        calibrator->threshold(windows, m, p_hat, config.test.base.confidence);

    EXPECT_EQ(record.failed->windows, windows);
    EXPECT_DOUBLE_EQ(record.failed->p_hat, p_hat);
    EXPECT_DOUBLE_EQ(record.failed->distance, distance);
    EXPECT_DOUBLE_EQ(record.failed->epsilon, epsilon);
    EXPECT_GT(distance, epsilon) << "the failing stage must actually fail";

    // And the record survives a JSONL round trip bit-for-bit.
    DecisionRecord parsed;
    ASSERT_TRUE(from_jsonl(to_jsonl(record), parsed));
    ASSERT_TRUE(parsed.failed.has_value());
    EXPECT_EQ(*parsed.failed, *record.failed);
}

TEST(DecisionTrace, SpansNestUnderTheAssessment) {
    const TracerGuard guard;
    stats::Rng rng{7};
    const auto history = sim::honest_history(300, 0.95, rng, /*server=*/2);

    core::TwoPhaseConfig config;
    config.test.base.replications = 400;
    const core::TwoPhaseAssessor assessor{
        config,
        std::shared_ptr<const repsys::TrustFunction>{
            repsys::make_trust_function("beta")},
        core::make_calibrator(config.test.base)};
    const auto assessment = assessor.assess(history.view());
    ASSERT_EQ(assessment.verdict, core::Verdict::kAssessed);

    const auto records = default_tracer().ring().drain();
    ASSERT_EQ(records.size(), 1u);
    const auto find_span = [&](const std::string& name) -> const SpanRecord* {
        for (const auto& span : records.front().spans) {
            if (span.name == name) return &span;
        }
        return nullptr;
    };
    const SpanRecord* screen = find_span("phase1/screen");
    const SpanRecord* ladder = find_span("phase1/ladder");
    const SpanRecord* trust = find_span("phase2/trust");
    const SpanRecord* calibrate = find_span("calibrate/compute");
    ASSERT_NE(screen, nullptr);
    ASSERT_NE(ladder, nullptr);
    ASSERT_NE(trust, nullptr);
    ASSERT_NE(calibrate, nullptr) << "cold Monte-Carlo runs must be visible";

    EXPECT_EQ(screen->depth, 0u);
    EXPECT_EQ(trust->depth, 0u);
    EXPECT_GT(ladder->depth, screen->depth) << "ladder nests inside screening";
    EXPECT_GE(ladder->start_seconds, screen->start_seconds);
    EXPECT_LE(ladder->duration_seconds, screen->duration_seconds * 1.5 + 1e-3);
    for (const auto& span : records.front().spans) {
        EXPECT_GE(span.duration_seconds, 0.0) << span.name;
        EXPECT_NE(span.name, "phase1/stage")
            << "per-stage spans are off unless span_stages is set";
    }
}

TEST(DecisionTrace, CollusionReorderSummaryIsRecorded) {
    const TracerGuard guard;

    // Ballot-stuffing shape: one dominant issuer plus a fringe.
    std::vector<repsys::Feedback> feedbacks;
    for (std::uint32_t i = 0; i < 120; ++i) {
        feedbacks.push_back(repsys::Feedback{
            static_cast<repsys::Timestamp>(i + 1), /*server=*/9,
            /*client=*/i % 3 == 0 ? 100u : 200u + (i % 5),
            repsys::Rating::kPositive});
    }

    core::TwoPhaseConfig config;
    config.collusion_resilient = true;
    config.test.base.replications = 400;
    const core::TwoPhaseAssessor assessor{
        config,
        std::shared_ptr<const repsys::TrustFunction>{
            repsys::make_trust_function("beta")},
        core::make_calibrator(config.test.base)};
    (void)assessor.assess(std::span<const repsys::Feedback>{feedbacks});

    const auto records = default_tracer().ring().drain();
    ASSERT_EQ(records.size(), 1u);
    const DecisionRecord& record = records.front();
    EXPECT_TRUE(record.collusion_resilient);
    ASSERT_TRUE(record.reorder.applied);
    EXPECT_EQ(record.reorder.issuers, 6u);
    EXPECT_EQ(record.reorder.largest_group, 40u);  // client 100: every 3rd
    EXPECT_GT(record.reorder.displaced_fraction, 0.0);
    EXPECT_LE(record.reorder.displaced_fraction, 1.0);
    const auto* reorder_span = [&]() -> const SpanRecord* {
        for (const auto& span : record.spans) {
            if (span.name == "reorder") return &span;
        }
        return nullptr;
    }();
    EXPECT_NE(reorder_span, nullptr);
}

TEST(DecisionTrace, OnlineScreenerEmitsStreamRecords) {
    const TracerGuard guard;

    core::OnlineScreenerConfig config;
    config.test.base.replications = 400;
    core::OnlineScreener screener{config};
    screener.set_entity(7);
    EXPECT_EQ(screener.entity(), 7u);

    stats::Rng rng{11};
    std::size_t fed = 0;
    while (screener.state() != core::StreamState::kSuspicious && fed < 600) {
        // honest warm-up, then constant cheating until flagged
        screener.observe(fed < 200 && rng.bernoulli(0.95));
        ++fed;
    }
    ASSERT_EQ(screener.state(), core::StreamState::kSuspicious);

    const auto records = default_tracer().ring().drain();
    ASSERT_FALSE(records.empty());
    bool saw_flagged = false;
    for (const auto& record : records) {
        EXPECT_EQ(record.source, "online_screener");
        EXPECT_EQ(record.server, 7u);
        EXPECT_EQ(record.mode, "multi");
        if (record.transition == "flagged") {
            saw_flagged = true;
            EXPECT_EQ(record.verdict, "suspicious");
            ASSERT_TRUE(record.failed.has_value());
            EXPECT_GT(record.failed->distance, record.failed->epsilon);
        }
    }
    EXPECT_TRUE(saw_flagged) << "the flagging evaluation must leave a record";
}

TEST(DecisionTrace, KillSwitchDisablesTracing) {
    const TracerGuard guard;
    set_enabled(false);

    {
        TraceContext context{default_tracer(), 3, "two_phase"};
        EXPECT_FALSE(context.recording());
        EXPECT_EQ(TraceContext::current(), nullptr);
        TraceSpan span{"phase1/screen"};  // must be inert, not crash
    }
    EXPECT_EQ(default_tracer().ring().size(), 0u);

    set_enabled(true);
    {
        TraceContext context{default_tracer(), 3, "two_phase"};
        EXPECT_TRUE(context.recording());
        EXPECT_EQ(TraceContext::current(), &context);
    }
    EXPECT_EQ(default_tracer().ring().size(), 1u);
}

TEST(DecisionTrace, InactiveTracerRecordsNothing) {
    const TracerGuard guard;
    default_tracer().set_enabled(false);
    {
        TraceContext context{default_tracer(), 3, "two_phase"};
        EXPECT_FALSE(context.recording());
        EXPECT_EQ(TraceContext::current(), nullptr);
    }
    EXPECT_EQ(default_tracer().ring().size(), 0u);
}

TEST(DecisionTrace, ContextsNestPerThread) {
    const TracerGuard guard;
    {
        TraceContext outer{default_tracer(), 1, "two_phase"};
        EXPECT_EQ(TraceContext::current(), &outer);
        {
            TraceContext inner{default_tracer(), 2, "online_screener"};
            EXPECT_EQ(TraceContext::current(), &inner);
        }
        EXPECT_EQ(TraceContext::current(), &outer);
    }
    EXPECT_EQ(TraceContext::current(), nullptr);
    const auto records = default_tracer().ring().drain();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].server, 2u) << "inner context commits first";
    EXPECT_EQ(records[1].server, 1u);
}

}  // namespace
}  // namespace hpr::obs
