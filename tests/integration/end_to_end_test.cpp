// End-to-end integration tests exercising the full pipeline:
// workload generation -> CSV persistence -> history -> two-phase
// assessment, plus cross-library consistency checks.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>

#include "hpr.h"

namespace hpr {
namespace {

std::shared_ptr<stats::Calibrator> shared_cal() {
    static auto cal = core::make_calibrator(core::BehaviorTestConfig{});
    return cal;
}

core::TwoPhaseAssessor default_assessor(core::ScreeningMode mode,
                                        const std::string& trust = "average",
                                        bool collusion = false) {
    core::TwoPhaseConfig config;
    config.mode = mode;
    config.collusion_resilient = collusion;
    return core::TwoPhaseAssessor{
        config,
        std::shared_ptr<const repsys::TrustFunction>{
            repsys::make_trust_function(trust)},
        shared_cal()};
}

TEST(EndToEnd, GenerateSaveLoadAssessRoundTrip) {
    stats::Rng rng{501};
    const auto history = sim::honest_history(500, 0.93, rng);
    const auto path =
        (std::filesystem::temp_directory_path() / "hpr_e2e.csv").string();
    repsys::save_csv(path, history);
    const repsys::TransactionHistory loaded = repsys::load_csv(path);
    std::remove(path.c_str());
    ASSERT_EQ(loaded.size(), history.size());

    const auto assessor = default_assessor(core::ScreeningMode::kMulti);
    const core::Assessment direct = assessor.assess(history);
    const core::Assessment from_disk = assessor.assess(loaded);
    EXPECT_EQ(direct.verdict, from_disk.verdict);
    EXPECT_EQ(direct.trust, from_disk.trust);
    EXPECT_EQ(direct.verdict, core::Verdict::kAssessed);
}

TEST(EndToEnd, AttackLifecycleIsCaughtAtTheRightMoment) {
    // An attacker that behaves honestly passes; the moment it launches a
    // hibernating burst it flips to suspicious; trust output disappears.
    stats::Rng rng{502};
    const auto assessor = default_assessor(core::ScreeningMode::kMulti);
    repsys::TransactionHistory history;
    for (int i = 0; i < 400; ++i) {
        history.append(1, static_cast<repsys::EntityId>(100 + i % 40),
                       rng.bernoulli(0.95) ? repsys::Rating::kPositive
                                           : repsys::Rating::kNegative);
    }
    ASSERT_EQ(assessor.assess(history).verdict, core::Verdict::kAssessed);

    int flagged_at = -1;
    for (int i = 0; i < 40; ++i) {
        history.append(1, static_cast<repsys::EntityId>(200 + i),
                       repsys::Rating::kNegative);
        if (assessor.assess(history).verdict == core::Verdict::kSuspicious) {
            flagged_at = i + 1;
            break;
        }
    }
    ASSERT_GT(flagged_at, 0) << "attack was never flagged";
    // The paper's goal: bound the number of bad transactions that evade
    // detection in a short period; a burst must be caught well before 40.
    EXPECT_LE(flagged_at, 30);
}

TEST(EndToEnd, RecoverySlowAfterDetection) {
    // After being flagged, a burst attacker stays suspicious for a while
    // even if it resumes good service (old windows keep failing suffixes).
    stats::Rng rng{503};
    const auto assessor = default_assessor(core::ScreeningMode::kMulti);
    auto history = sim::hibernating_history(400, 25, 0.95, rng);
    ASSERT_EQ(assessor.assess(history).verdict, core::Verdict::kSuspicious);
    int goods_until_clear = 0;
    while (assessor.assess(history).verdict == core::Verdict::kSuspicious &&
           goods_until_clear < 2000) {
        history.append(1, 7, repsys::Rating::kPositive);
        ++goods_until_clear;
    }
    EXPECT_GT(goods_until_clear, 20);
}

TEST(EndToEnd, SharedCalibratorAcrossAssessorsIsConsistent) {
    const auto cal = shared_cal();
    core::TwoPhaseConfig config;
    config.mode = core::ScreeningMode::kMulti;
    const core::TwoPhaseAssessor a{
        config,
        std::shared_ptr<const repsys::TrustFunction>{
            repsys::make_trust_function("average")},
        cal};
    const core::TwoPhaseAssessor b{
        config,
        std::shared_ptr<const repsys::TrustFunction>{
            repsys::make_trust_function("beta")},
        cal};
    stats::Rng rng{504};
    const auto history = sim::honest_history(600, 0.92, rng);
    // Same screening verdict regardless of phase-2 function.
    EXPECT_EQ(a.screen(history.view()).passed, b.screen(history.view()).passed);
    // Different phase-2 trust values (average vs Beta posterior mean).
    const auto assess_a = a.assess(history);
    const auto assess_b = b.assess(history);
    ASSERT_TRUE(assess_a.trust.has_value());
    ASSERT_TRUE(assess_b.trust.has_value());
    EXPECT_NE(*assess_a.trust, *assess_b.trust);
}

TEST(EndToEnd, CheatAndRunIsOutOfScopeByDesign) {
    // §3.1: a single bad transaction after a short honest affiliation is
    // explicitly not preventable by behavior testing — verify the library
    // matches the documented threat model instead of over-claiming.  The
    // claim is statistical: the vast majority of cheat-and-run histories
    // sail through screening.
    stats::Rng rng{505};
    const auto assessor = default_assessor(core::ScreeningMode::kMulti);
    int flagged = 0;
    constexpr int kTrials = 40;
    for (int t = 0; t < kTrials; ++t) {
        const auto history = sim::cheat_and_run_history(120, 0.97, rng);
        if (assessor.assess(history).verdict == core::Verdict::kSuspicious) {
            ++flagged;
        }
    }
    EXPECT_LT(flagged, kTrials / 4);
}

TEST(EndToEnd, CollusionPipelineWithCsv) {
    // Build a colluder-boosted history, persist it, reload it, and verify
    // only the collusion-resilient assessor rejects it.
    stats::Rng rng{506};
    repsys::TransactionHistory history;
    repsys::EntityId victim = 500;
    for (int i = 0; i < 500; ++i) {
        if (rng.bernoulli(0.08)) {
            history.append(1, victim++, repsys::Rating::kNegative);
        } else {
            history.append(1, static_cast<repsys::EntityId>(2 + i % 5),
                           repsys::Rating::kPositive);
        }
    }
    const auto path =
        (std::filesystem::temp_directory_path() / "hpr_e2e_collusion.csv").string();
    repsys::save_csv(path, history);
    const auto loaded = repsys::load_csv(path);
    std::remove(path.c_str());

    const auto plain = default_assessor(core::ScreeningMode::kMulti);
    const auto resilient =
        default_assessor(core::ScreeningMode::kMulti, "average", true);
    EXPECT_EQ(plain.assess(loaded).verdict, core::Verdict::kAssessed);
    EXPECT_EQ(resilient.assess(loaded).verdict, core::Verdict::kSuspicious);
}

TEST(EndToEnd, LongHistoryScreeningIsFast) {
    // §5.5 sanity: screening a 100k-transaction history with the O(n)
    // multi-test completes quickly (well under a second here).
    stats::Rng rng{507};
    const auto outcomes = sim::honest_outcomes(100000, 0.9, rng);
    const core::MultiTest mt{{}, shared_cal()};
    // First run pays the one-time Monte-Carlo calibration; the steady
    // state §5.5 talks about is the warm-cache run.
    (void)mt.test(std::span<const std::uint8_t>{outcomes});
    const auto start = std::chrono::steady_clock::now();
    const auto result = mt.test(std::span<const std::uint8_t>{outcomes});
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_TRUE(result.sufficient);
    EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(),
              2000);
}

TEST(EndToEnd, UmbrellaHeaderExposesEverything) {
    // Compile-time check that hpr.h pulls the whole public API together;
    // touch one symbol per namespace.
    const stats::Binomial b{10, 0.9};
    const repsys::AverageTrust trust;
    const core::BehaviorTestConfig config;
    const sim::ClientArrivalParams params;
    EXPECT_EQ(b.n(), 10u);
    EXPECT_EQ(trust.name(), "average");
    EXPECT_EQ(config.window_size, 10u);
    EXPECT_EQ(params.a_new, 0.5);
}

}  // namespace
}  // namespace hpr
