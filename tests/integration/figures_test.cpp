// Reproduction tests: small-trial versions of the paper's figures,
// asserting the qualitative shapes EXPERIMENTS.md documents.  These are
// the contract between the bench harness and the paper — if a refactor
// breaks an experiment's shape, these fail before anyone re-plots
// anything.

#include <gtest/gtest.h>

#include <chrono>

#include "hpr.h"

namespace hpr {
namespace {

std::shared_ptr<stats::Calibrator> shared_cal() {
    static auto cal = core::make_calibrator(core::BehaviorTestConfig{});
    return cal;
}

double median_cost(core::ScreeningMode mode, const std::string& trust,
                   std::size_t prep, std::size_t trials = 7) {
    sim::AttackCostConfig config;
    config.prep_size = prep;
    config.screening = mode;
    config.trust_spec = trust;
    config.seed = 42000 + prep;
    config.max_attack_steps = 20000;
    return sim::run_attack_cost_trials(config, trials, shared_cal()).median_cost();
}

double collusion_median_cost(core::ScreeningMode mode, std::size_t prep) {
    sim::CollusionCostConfig config;
    config.prep_size = prep;
    config.screening = mode;
    config.seed = 43000 + prep;
    config.max_attack_steps = 20000;
    return sim::run_collusion_cost_trials(config, 5, shared_cal()).median_cost();
}

TEST(Fig3Shape, AverageAloneCollapsesAtLargePrep) {
    EXPECT_GT(median_cost(core::ScreeningMode::kNone, "average", 100), 80.0);
    EXPECT_EQ(median_cost(core::ScreeningMode::kNone, "average", 800), 0.0);
}

TEST(Fig3Shape, Scheme1CostDecaysWithPrep) {
    const double small = median_cost(core::ScreeningMode::kSingle, "average", 100);
    const double large = median_cost(core::ScreeningMode::kSingle, "average", 800);
    EXPECT_LT(large, 0.5 * small);
}

TEST(Fig3Shape, Scheme2CostStaysHighAndDominates) {
    const double at400 = median_cost(core::ScreeningMode::kMulti, "average", 400);
    const double at800 = median_cost(core::ScreeningMode::kMulti, "average", 800);
    EXPECT_GT(at400, 25.0);
    EXPECT_GT(at800, 25.0);
    EXPECT_GT(at800, median_cost(core::ScreeningMode::kNone, "average", 800));
    EXPECT_GT(at800, median_cost(core::ScreeningMode::kSingle, "average", 800));
}

TEST(Fig4Shape, WeightedAloneIsPrepIndependent) {
    const double at100 = median_cost(core::ScreeningMode::kNone, "weighted:0.5", 100);
    const double at800 = median_cost(core::ScreeningMode::kNone, "weighted:0.5", 800);
    // ~2-3 goods per bad for 20 attacks, regardless of preparation.
    EXPECT_NEAR(at100, at800, 6.0);
    EXPECT_GT(at100, 35.0);
    EXPECT_LT(at100, 90.0);
}

TEST(Fig4Shape, Scheme2AddsPremiumOverWeighted) {
    const double plain = median_cost(core::ScreeningMode::kNone, "weighted:0.5", 600);
    const double multi = median_cost(core::ScreeningMode::kMulti, "weighted:0.5", 600);
    EXPECT_GT(multi, plain + 5.0);
}

TEST(Fig5Shape, CollusionMakesUndefendedAttacksFree) {
    EXPECT_EQ(collusion_median_cost(core::ScreeningMode::kNone, 200), 0.0);
    EXPECT_EQ(collusion_median_cost(core::ScreeningMode::kNone, 800), 0.0);
}

TEST(Fig5Shape, ResilientMultiTestingKeepsCollusionExpensive) {
    const double cost = collusion_median_cost(core::ScreeningMode::kMulti, 400);
    EXPECT_GT(cost, 20.0);
}

TEST(Fig7Shape, DetectionDecaysWithAttackWindow) {
    const auto rate = [&](std::size_t window) {
        sim::DetectionConfig config;
        config.attack_window = window;
        config.trials = 80;
        config.seed = 44000 + window;
        return sim::detection_rate(config, shared_cal());
    };
    const double at10 = rate(10);
    const double at80 = rate(80);
    EXPECT_GT(at10, 0.95);
    EXPECT_LT(at80, 0.5);
    EXPECT_GT(at10, at80 + 0.4);
}

TEST(Fig8Shape, ThresholdShrinksAndFlattens) {
    auto cal = shared_cal();
    const double at100 = cal->threshold(10, 10, 0.9);
    const double at1000 = cal->threshold(100, 10, 0.9);
    const double at4000 = cal->threshold(400, 10, 0.9);
    EXPECT_GT(at100, at1000);
    EXPECT_GT(at1000, at4000);
    // Early drop is much steeper than the tail: convergence.
    EXPECT_GT(at100 - at1000, 2.0 * (at1000 - at4000));
}

TEST(Fig9Shape, OptimizedMultiTestScalesLinearly) {
    core::MultiTestConfig config;
    config.stop_on_failure = false;
    const core::MultiTest tester{config, shared_cal()};
    stats::Rng rng{45000};
    const auto small = sim::honest_outcomes(50000, 0.9, rng);
    const auto large = sim::honest_outcomes(200000, 0.9, rng);
    const auto time_of = [&](const std::vector<std::uint8_t>& outcomes) {
        const std::span<const std::uint8_t> view{outcomes};
        (void)tester.test(view);  // warm calibration
        const auto start = std::chrono::steady_clock::now();
        for (int i = 0; i < 3; ++i) (void)tester.test(view);
        return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    };
    const double t_small = time_of(small);
    const double t_large = time_of(large);
    // 4x the input must cost clearly less than the ~16x a quadratic
    // algorithm would; allow generous noise around the expected ~4x.
    EXPECT_LT(t_large, 12.0 * t_small);
}

TEST(Fig9Shape, NaiveMultiTestIsQuadratic) {
    core::MultiTestConfig config;
    config.stop_on_failure = false;
    const core::MultiTest tester{config, shared_cal()};
    stats::Rng rng{45001};
    const auto small = sim::honest_outcomes(10000, 0.9, rng);
    const auto large = sim::honest_outcomes(40000, 0.9, rng);
    const auto time_of = [&](const std::vector<std::uint8_t>& outcomes) {
        const std::span<const std::uint8_t> view{outcomes};
        (void)tester.test(view);  // warm calibration
        const auto start = std::chrono::steady_clock::now();
        (void)tester.test_naive(view);
        return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    };
    const double t_small = time_of(small);
    const double t_large = time_of(large);
    // Quadratic: 4x input => ~16x time.  Require clearly super-linear.
    EXPECT_GT(t_large, 5.0 * t_small);
}

}  // namespace
}  // namespace hpr
