// Unit and property tests for trust functions (repsys/trust.h).

#include "repsys/trust.h"

#include <gtest/gtest.h>

#include "stats/rng.h"

namespace hpr::repsys {
namespace {

TransactionHistory from_outcomes(const std::vector<bool>& outcomes) {
    TransactionHistory h;
    for (bool good : outcomes) {
        h.append(1, 2, good ? Rating::kPositive : Rating::kNegative);
    }
    return h;
}

TEST(AverageTrust, IsGoodRatio) {
    const AverageTrust trust;
    EXPECT_NEAR(trust.evaluate(from_outcomes({true, true, false, true})), 0.75, 1e-12);
    EXPECT_NEAR(trust.evaluate(from_outcomes({false, false})), 0.0, 1e-12);
    EXPECT_NEAR(trust.evaluate(from_outcomes({true})), 1.0, 1e-12);
}

TEST(AverageTrust, EmptyHistoryGivesPrior) {
    EXPECT_EQ(AverageTrust{}.evaluate(TransactionHistory{}), 0.5);
    EXPECT_EQ(AverageTrust{0.2}.evaluate(TransactionHistory{}), 0.2);
}

TEST(AverageTrust, RejectsBadPrior) {
    EXPECT_THROW(AverageTrust{-0.1}, std::invalid_argument);
    EXPECT_THROW(AverageTrust{1.5}, std::invalid_argument);
}

TEST(WeightedTrust, MatchesRecurrence) {
    // R_t = 0.5 f_t + 0.5 R_{t-1}, R_0 = 0.5.
    const WeightedTrust trust{0.5, 0.5};
    // good: 0.75; bad: 0.375; good: 0.6875.
    EXPECT_NEAR(trust.evaluate(from_outcomes({true, false, true})), 0.6875, 1e-12);
}

TEST(WeightedTrust, LambdaOneTracksLastOutcome) {
    const WeightedTrust trust{1.0, 0.5};
    EXPECT_EQ(trust.evaluate(from_outcomes({false, false, true})), 1.0);
    EXPECT_EQ(trust.evaluate(from_outcomes({true, true, false})), 0.0);
}

TEST(WeightedTrust, RejectsBadParameters) {
    EXPECT_THROW(WeightedTrust(0.0), std::invalid_argument);
    EXPECT_THROW(WeightedTrust(1.2), std::invalid_argument);
    EXPECT_THROW(WeightedTrust(0.5, -0.1), std::invalid_argument);
}

TEST(WeightedTrust, RecoveryAfterBadTakesThreeGoods) {
    // The paper's Fig. 4 discussion: with lambda = 0.5 and threshold 0.9,
    // an attacker needs 2-3 goods after each bad to get back above 0.9.
    auto acc = WeightedTrust{0.5, 0.5}.make_accumulator();
    for (int i = 0; i < 20; ++i) acc->update(true);  // converge near 1.0
    ASSERT_GT(acc->value(), 0.99);
    acc->update(false);
    EXPECT_LT(acc->value(), 0.9);
    int goods = 0;
    while (acc->value() < 0.9) {
        acc->update(true);
        ++goods;
    }
    EXPECT_GE(goods, 2);
    EXPECT_LE(goods, 3);
}

TEST(BetaTrust, PosteriorMean) {
    const BetaTrust trust;
    EXPECT_EQ(trust.evaluate(TransactionHistory{}), 0.5);  // (0+1)/(0+2)
    EXPECT_NEAR(trust.evaluate(from_outcomes({true, true, true})), 4.0 / 5.0, 1e-12);
    EXPECT_NEAR(trust.evaluate(from_outcomes({true, false})), 2.0 / 4.0, 1e-12);
}

TEST(DecayTrust, UniformHistoryIsInvariant) {
    const DecayTrust trust{0.9};
    EXPECT_NEAR(trust.evaluate(from_outcomes(std::vector<bool>(50, true))), 1.0, 1e-12);
    EXPECT_NEAR(trust.evaluate(from_outcomes(std::vector<bool>(50, false))), 0.0, 1e-12);
}

TEST(DecayTrust, RecentOutcomesWeighMore) {
    const DecayTrust trust{0.9};
    const double bad_then_good = trust.evaluate(from_outcomes({false, true}));
    const double good_then_bad = trust.evaluate(from_outcomes({true, false}));
    EXPECT_GT(bad_then_good, good_then_bad);
}

TEST(DecayTrust, GammaOneEqualsAverage) {
    const DecayTrust decay{1.0};
    const AverageTrust average;
    const auto history = from_outcomes({true, false, true, true, false, true});
    EXPECT_NEAR(decay.evaluate(history), average.evaluate(history), 1e-12);
}

TEST(DecayTrust, RejectsBadParameters) {
    EXPECT_THROW(DecayTrust(0.0), std::invalid_argument);
    EXPECT_THROW(DecayTrust(1.1), std::invalid_argument);
    EXPECT_THROW(DecayTrust(0.9, 2.0), std::invalid_argument);
}

TEST(TrustGuard, RejectsBadParameters) {
    EXPECT_THROW(TrustGuardTrust(0.5, 0.4, 0.1, 0), std::invalid_argument);
    EXPECT_THROW(TrustGuardTrust(-0.1, 0.4, 0.1, 10), std::invalid_argument);
    EXPECT_THROW(TrustGuardTrust(0.5, -0.4, 0.1, 10), std::invalid_argument);
}

TEST(TrustGuard, SteadyBehaviorScoresLikeItsRate) {
    const TrustGuardTrust trust;  // alpha .5, beta .4, gamma .1, window 10
    const double high = trust.evaluate(from_outcomes(std::vector<bool>(100, true)));
    EXPECT_NEAR(high, 0.9, 1e-9);  // alpha*1 + beta*1 + gamma*0
    const double low = trust.evaluate(from_outcomes(std::vector<bool>(100, false)));
    EXPECT_NEAR(low, 0.0, 1e-9);
}

TEST(TrustGuard, DerivativeTermPunishesSuddenDrops) {
    // Same total goods, different placement: a recent collapse scores
    // below a steady mediocre record — the PID damping at work.
    std::vector<bool> collapse(100, true);
    for (int i = 80; i < 100; ++i) collapse[static_cast<std::size_t>(i)] = false;
    std::vector<bool> steady;
    for (int i = 0; i < 100; ++i) steady.push_back(i % 5 != 0);  // 80% spread out
    const TrustGuardTrust trust;
    EXPECT_LT(trust.evaluate(from_outcomes(collapse)),
              trust.evaluate(from_outcomes(steady)) - 0.2);
}

TEST(TrustGuard, OscillationScoresBelowItsAverage) {
    // The milking pattern TrustGuard targets: build then dump, repeated.
    std::vector<bool> oscillating;
    for (int cycle = 0; cycle < 10; ++cycle) {
        for (int i = 0; i < 9; ++i) oscillating.push_back(true);
        oscillating.push_back(false);
        for (int i = 0; i < 5; ++i) oscillating.push_back(false);
        for (int i = 0; i < 5; ++i) oscillating.push_back(true);
    }
    const TrustGuardTrust trust;
    const double score = trust.evaluate(from_outcomes(oscillating));
    double goods = 0;
    for (const bool b : oscillating) goods += b ? 1.0 : 0.0;
    EXPECT_LT(score, goods / static_cast<double>(oscillating.size()) + 0.05);
}

class TrustFunctionProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(TrustFunctionProperty, ValuesStayInUnitInterval) {
    const auto trust = make_trust_function(GetParam());
    stats::Rng rng{17};
    auto acc = trust->make_accumulator();
    for (int i = 0; i < 1000; ++i) {
        acc->update(rng.bernoulli(0.7));
        ASSERT_GE(acc->value(), 0.0);
        ASSERT_LE(acc->value(), 1.0);
    }
}

TEST_P(TrustFunctionProperty, AccumulatorMatchesEvaluate) {
    const auto trust = make_trust_function(GetParam());
    stats::Rng rng{18};
    TransactionHistory h;
    auto acc = trust->make_accumulator();
    for (int i = 0; i < 300; ++i) {
        const bool good = rng.bernoulli(0.6);
        h.append(1, 2, good ? Rating::kPositive : Rating::kNegative);
        acc->update(good);
        ASSERT_NEAR(acc->value(), trust->evaluate(h), 1e-12) << "step " << i;
    }
}

TEST_P(TrustFunctionProperty, CloneBranchesIndependently) {
    const auto trust = make_trust_function(GetParam());
    auto acc = trust->make_accumulator();
    for (int i = 0; i < 10; ++i) acc->update(true);
    const auto branch = acc->clone();
    const double before = acc->value();
    branch->update(false);
    EXPECT_EQ(acc->value(), before);  // original unchanged
    acc->update(false);
    EXPECT_NEAR(acc->value(), branch->value(), 1e-12);  // same future => same value
}

TEST_P(TrustFunctionProperty, AllGoodConvergesHigh) {
    const auto trust = make_trust_function(GetParam());
    auto acc = trust->make_accumulator();
    for (int i = 0; i < 500; ++i) acc->update(true);
    // TrustGuard's ceiling is alpha + beta = 0.9 by construction; every
    // other function approaches 1.
    EXPECT_GT(acc->value(), 0.85) << trust->name();
}

INSTANTIATE_TEST_SUITE_P(Sweep, TrustFunctionProperty,
                         ::testing::Values("average", "weighted:0.5", "weighted:0.1",
                                           "beta", "decay:0.98", "decay:0.9",
                                           "trustguard"));

TEST(TrustFactory, ParsesSpecs) {
    EXPECT_EQ(make_trust_function("average")->name(), "average");
    EXPECT_NE(make_trust_function("trustguard")->name().find("trustguard"),
              std::string::npos);
    EXPECT_FALSE(known_trust_functions().empty());
    EXPECT_EQ(make_trust_function("beta")->name(), "beta");
    EXPECT_NE(make_trust_function("weighted:0.25")->name().find("0.25"),
              std::string::npos);
    EXPECT_NE(make_trust_function("decay:0.9")->name().find("0.9"),
              std::string::npos);
}

TEST(TrustFactory, RejectsUnknownAndMalformed) {
    EXPECT_THROW((void)make_trust_function("eigentrust"), std::invalid_argument);
    EXPECT_THROW((void)make_trust_function("weighted:abc"), std::invalid_argument);
    EXPECT_THROW((void)make_trust_function(""), std::invalid_argument);
    EXPECT_THROW((void)make_trust_function("weighted:2.0"), std::invalid_argument);
}

}  // namespace
}  // namespace hpr::repsys
