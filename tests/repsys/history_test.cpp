// Unit and property tests for TransactionHistory (repsys/history.h).

#include "repsys/history.h"

#include <gtest/gtest.h>

#include "stats/rng.h"

namespace hpr::repsys {
namespace {

Feedback make(Timestamp t, EntityId client, Rating r) {
    return Feedback{t, 1, client, r};
}

TEST(History, StartsEmpty) {
    const TransactionHistory h;
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h.size(), 0u);
    EXPECT_EQ(h.good_count(), 0u);
    EXPECT_EQ(h.good_ratio(), 0.0);
}

TEST(History, ConstructFromFeedbacks) {
    const TransactionHistory h{{make(1, 10, Rating::kPositive),
                                make(2, 11, Rating::kNegative),
                                make(3, 12, Rating::kPositive)}};
    EXPECT_EQ(h.size(), 3u);
    EXPECT_EQ(h.good_count(), 2u);
    EXPECT_NEAR(h.good_ratio(), 2.0 / 3.0, 1e-12);
}

TEST(History, ConstructorRejectsUnorderedTimestamps) {
    EXPECT_THROW(TransactionHistory({make(5, 1, Rating::kPositive),
                                     make(4, 1, Rating::kPositive)}),
                 std::invalid_argument);
}

TEST(History, AppendRejectsTimeRegression) {
    TransactionHistory h;
    h.append(make(10, 1, Rating::kPositive));
    EXPECT_THROW(h.append(make(9, 1, Rating::kPositive)), std::invalid_argument);
    h.append(make(10, 2, Rating::kNegative));  // equal timestamps are fine
    EXPECT_EQ(h.size(), 2u);
}

TEST(History, AutoTimestampAppend) {
    TransactionHistory h;
    h.append(1, 7, Rating::kPositive);
    h.append(1, 8, Rating::kNegative);
    EXPECT_EQ(h[0].time, 1);
    EXPECT_EQ(h[1].time, 2);
    EXPECT_EQ(h[1].client, 8u);
}

TEST(History, PopBackRollsBackCounts) {
    TransactionHistory h;
    h.append(1, 7, Rating::kPositive);
    h.append(1, 8, Rating::kPositive);
    h.pop_back();
    EXPECT_EQ(h.size(), 1u);
    EXPECT_EQ(h.good_count(), 1u);
    h.pop_back();
    EXPECT_TRUE(h.empty());
    EXPECT_THROW(h.pop_back(), std::logic_error);
}

TEST(History, AppendPopAppendKeepsPrefixConsistent) {
    TransactionHistory h;
    h.append(1, 1, Rating::kPositive);
    h.append(1, 2, Rating::kNegative);
    h.pop_back();
    h.append(1, 3, Rating::kPositive);
    EXPECT_EQ(h.good_count(), 2u);
    EXPECT_EQ(h.good_count(0, 2), 2u);
}

TEST(History, GoodCountRanges) {
    // Pattern: G B G G B
    const TransactionHistory h{{make(1, 1, Rating::kPositive),
                                make(2, 1, Rating::kNegative),
                                make(3, 1, Rating::kPositive),
                                make(4, 1, Rating::kPositive),
                                make(5, 1, Rating::kNegative)}};
    EXPECT_EQ(h.good_count(0, 5), 3u);
    EXPECT_EQ(h.good_count(0, 1), 1u);
    EXPECT_EQ(h.good_count(1, 2), 0u);
    EXPECT_EQ(h.good_count(2, 4), 2u);
    EXPECT_EQ(h.good_count(3, 3), 0u);
}

TEST(History, GoodCountRejectsBadRanges) {
    const TransactionHistory h{{make(1, 1, Rating::kPositive)}};
    EXPECT_THROW((void)h.good_count(0, 2), std::out_of_range);
    EXPECT_THROW((void)h.good_count(1, 0), std::out_of_range);
}

TEST(History, GoodCountMatchesNaiveScan) {
    // Property: prefix-sum range queries equal a direct scan.
    stats::Rng rng{31};
    TransactionHistory h;
    for (int i = 0; i < 500; ++i) {
        h.append(1, static_cast<EntityId>(rng.uniform_int(std::uint64_t{20})),
                 rng.bernoulli(0.8) ? Rating::kPositive : Rating::kNegative);
    }
    for (int trial = 0; trial < 200; ++trial) {
        const auto a = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{501}));
        const auto b = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{501}));
        const std::size_t lo = std::min(a, b);
        const std::size_t hi = std::max(a, b);
        std::size_t direct = 0;
        for (std::size_t i = lo; i < hi; ++i) {
            if (h[i].good()) ++direct;
        }
        ASSERT_EQ(h.good_count(lo, hi), direct) << "[" << lo << ", " << hi << ")";
    }
}

TEST(History, RecentReturnsNewestSuffix) {
    const TransactionHistory h{{make(1, 1, Rating::kPositive),
                                make(2, 2, Rating::kNegative),
                                make(3, 3, Rating::kPositive)}};
    const auto tail = h.recent(2);
    ASSERT_EQ(tail.size(), 2u);
    EXPECT_EQ(tail[0].time, 2);
    EXPECT_EQ(tail[1].time, 3);
    EXPECT_EQ(h.recent(10).size(), 3u);
    EXPECT_EQ(h.recent(0).size(), 0u);
}

TEST(History, DistinctClients) {
    const TransactionHistory h{{make(1, 5, Rating::kPositive),
                                make(2, 5, Rating::kPositive),
                                make(3, 6, Rating::kNegative),
                                make(4, 7, Rating::kPositive)}};
    EXPECT_EQ(h.distinct_clients(), 3u);
}

TEST(History, SupporterBaseCountsLatestPositives) {
    // Client 5: last feedback negative. Client 6: last positive.
    const TransactionHistory h{{make(1, 5, Rating::kPositive),
                                make(2, 6, Rating::kNegative),
                                make(3, 6, Rating::kPositive),
                                make(4, 5, Rating::kNegative)}};
    EXPECT_EQ(h.supporter_base(), 1u);
}

TEST(History, ViewSpansAllFeedbacks) {
    TransactionHistory h;
    h.append(1, 2, Rating::kPositive);
    h.append(1, 3, Rating::kNegative);
    const auto view = h.view();
    ASSERT_EQ(view.size(), 2u);
    EXPECT_EQ(view[0].client, 2u);
    EXPECT_EQ(view[1].client, 3u);
}

}  // namespace
}  // namespace hpr::repsys
