// Unit tests for credibility-weighted trust (repsys/credibility.h).

#include "repsys/credibility.h"

#include <gtest/gtest.h>

namespace hpr::repsys {
namespace {

Feedback fb(Timestamp t, EntityId server, EntityId client, bool good) {
    return Feedback{t, server, client,
                    good ? Rating::kPositive : Rating::kNegative};
}

TEST(Credibility, EvaluateWithUniformCredibilityIsAverage) {
    const std::vector<Feedback> feedbacks{fb(1, 1, 10, true), fb(2, 1, 11, true),
                                          fb(3, 1, 12, false), fb(4, 1, 13, true)};
    const CredibilityConfig config;
    const double trust =
        CredibilityWeightedTrust::evaluate(feedbacks, {}, config);
    EXPECT_NEAR(trust, 0.75, 1e-12);
}

TEST(Credibility, ZeroWeightFallsBackToPrior) {
    const std::vector<Feedback> feedbacks{fb(1, 1, 10, true)};
    std::map<EntityId, double> credibility{{10, 0.0}};
    CredibilityConfig config;
    config.prior = 0.42;
    EXPECT_EQ(CredibilityWeightedTrust::evaluate(feedbacks, credibility, config),
              0.42);
    EXPECT_EQ(CredibilityWeightedTrust::evaluate({}, {}, config), 0.42);
}

TEST(Credibility, DistrustedIssuersCountLess) {
    // Two feedbacks disagree; the trusted issuer's positive dominates.
    const std::vector<Feedback> feedbacks{fb(1, 1, 10, true), fb(2, 1, 11, false)};
    const std::map<EntityId, double> credibility{{10, 0.9}, {11, 0.1}};
    const double trust =
        CredibilityWeightedTrust::evaluate(feedbacks, credibility, {});
    EXPECT_NEAR(trust, 0.9, 1e-12);
}

TEST(Credibility, ComputeRejectsBadConfig) {
    const FeedbackStore store;
    CredibilityConfig bad;
    bad.iterations = 0;
    EXPECT_THROW((void)CredibilityWeightedTrust::compute(store, bad),
                 std::invalid_argument);
    bad = {};
    bad.default_credibility = 1.4;
    EXPECT_THROW((void)CredibilityWeightedTrust::compute(store, bad),
                 std::invalid_argument);
}

TEST(Credibility, FixedPointMatchesAverageWhenIssuersAreNotServers) {
    // When no issuer is itself a rated server, every issuer keeps the
    // default credibility, so the weighted trust equals the plain average.
    FeedbackStore store;
    store.submit({fb(1, 1, 100, true), fb(2, 1, 101, false), fb(3, 1, 102, true),
                  fb(4, 1, 103, true)});
    const auto trust = CredibilityWeightedTrust::compute(store);
    ASSERT_EQ(trust.size(), 1u);
    EXPECT_NEAR(trust.at(1), 0.75, 1e-12);
}

TEST(Credibility, BadlyRatedServersLoseInfluenceAsIssuers) {
    // Server 5 is rated terribly by many independent clients; server 5 (as
    // a client) showers server 1 with positives while good-reputation
    // client-servers 6 and 7 rate server 1 negatively.  After the fixed
    // point, server 1's trust must be dominated by 6/7's negatives.
    FeedbackStore store;
    Timestamp t = 1;
    for (EntityId c = 100; c < 120; ++c) store.submit(fb(t++, 5, c, false));
    for (EntityId c = 100; c < 120; ++c) store.submit(fb(t++, 6, c, true));
    for (EntityId c = 100; c < 120; ++c) store.submit(fb(t++, 7, c, true));
    for (int i = 0; i < 10; ++i) store.submit(fb(t++, 1, 5, true));
    store.submit(fb(t++, 1, 6, false));
    store.submit(fb(t++, 1, 7, false));

    const auto trust = CredibilityWeightedTrust::compute(store);
    EXPECT_LT(trust.at(5), 0.05);
    EXPECT_GT(trust.at(6), 0.95);
    // Plain average of server 1 would be 10/12 = 0.83; credibility
    // weighting flips it below one half.
    EXPECT_LT(trust.at(1), 0.5);
}

TEST(Credibility, MoreIterationsConverge) {
    FeedbackStore store;
    Timestamp t = 1;
    for (EntityId c = 100; c < 110; ++c) store.submit(fb(t++, 2, c, true));
    for (int i = 0; i < 6; ++i) store.submit(fb(t++, 1, 2, i % 2 == 0));
    CredibilityConfig five;
    five.iterations = 5;
    CredibilityConfig six;
    six.iterations = 6;
    const auto a = CredibilityWeightedTrust::compute(store, five);
    const auto b = CredibilityWeightedTrust::compute(store, six);
    for (const auto& [server, value] : a) {
        EXPECT_NEAR(value, b.at(server), 1e-9) << server;
    }
}

}  // namespace
}  // namespace hpr::repsys
