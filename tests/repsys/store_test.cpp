// Unit tests for the feedback storage substrate (repsys/store.h).

#include "repsys/store.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace hpr::repsys {
namespace {

Feedback fb(Timestamp t, EntityId server, EntityId client, bool good) {
    return Feedback{t, server, client,
                    good ? Rating::kPositive : Rating::kNegative};
}

FeedbackStore sample_store() {
    FeedbackStore store;
    store.submit({fb(1, 10, 100, true), fb(2, 10, 101, false), fb(3, 10, 100, true),
                  fb(1, 20, 100, true), fb(5, 20, 102, true)});
    return store;
}

TEST(FeedbackStore, StartsEmpty) {
    const FeedbackStore store;
    EXPECT_EQ(store.size(), 0u);
    EXPECT_EQ(store.server_count(), 0u);
    EXPECT_TRUE(store.servers().empty());
    EXPECT_FALSE(store.contains(1));
}

TEST(FeedbackStore, RoutesByServer) {
    const FeedbackStore store = sample_store();
    EXPECT_EQ(store.size(), 5u);
    EXPECT_EQ(store.server_count(), 2u);
    EXPECT_EQ(store.servers(), (std::vector<EntityId>{10, 20}));
    EXPECT_EQ(store.history(10).size(), 3u);
    EXPECT_EQ(store.history(20).size(), 2u);
    EXPECT_EQ(store.history(10).good_count(), 2u);
}

TEST(FeedbackStore, UnknownServerThrows) {
    const FeedbackStore store = sample_store();
    EXPECT_THROW((void)store.history(99), std::out_of_range);
}

TEST(FeedbackStore, RejectsPerServerTimeRegression) {
    FeedbackStore store;
    store.submit(fb(5, 1, 2, true));
    EXPECT_THROW(store.submit(fb(4, 1, 2, true)), std::invalid_argument);
    // A different server has an independent clock.
    store.submit(fb(1, 2, 2, true));
    EXPECT_EQ(store.size(), 2u);
}

TEST(FeedbackStore, BetweenIsInclusiveAndOrdered) {
    const FeedbackStore store = sample_store();
    const auto range = store.between(10, 2, 3);
    ASSERT_EQ(range.size(), 2u);
    EXPECT_EQ(range[0].time, 2);
    EXPECT_EQ(range[1].time, 3);
    EXPECT_TRUE(store.between(10, 100, 200).empty());
    EXPECT_TRUE(store.between(99, 0, 10).empty());
    // Inverted bounds are an empty range, not undefined behavior.
    EXPECT_TRUE(store.between(10, 3, 1).empty());
}

TEST(FeedbackStore, IssuedByCollectsAcrossServers) {
    const FeedbackStore store = sample_store();
    const auto by_100 = store.issued_by(100);
    ASSERT_EQ(by_100.size(), 3u);
    // Time-ordered; the tie at t=1 broken by server id.
    EXPECT_EQ(by_100[0].time, 1);
    EXPECT_EQ(by_100[0].server, 10u);
    EXPECT_EQ(by_100[1].server, 20u);
    EXPECT_EQ(by_100[2].time, 3);
    EXPECT_TRUE(store.issued_by(999).empty());
}

TEST(FeedbackStore, SampleHistoryIsDeterministicSubset) {
    FeedbackStore store;
    for (int i = 1; i <= 400; ++i) {
        store.submit(fb(i, 1, static_cast<EntityId>(100 + i % 10), i % 7 != 0));
    }
    const auto a = store.sample_history(1, 0.5, 99);
    const auto b = store.sample_history(1, 0.5, 99);
    EXPECT_EQ(a, b);
    EXPECT_GT(a.size(), 120u);
    EXPECT_LT(a.size(), 280u);
    // Order preserved.
    for (std::size_t i = 1; i < a.size(); ++i) ASSERT_LE(a[i - 1].time, a[i].time);
    // Degenerate fractions.
    EXPECT_TRUE(store.sample_history(1, 0.0, 99).empty());
    EXPECT_EQ(store.sample_history(1, 1.0, 99).size(), 400u);
    EXPECT_THROW((void)store.sample_history(1, 1.5, 99), std::invalid_argument);
    EXPECT_TRUE(store.sample_history(123, 0.5, 99).empty());
}

TEST(FeedbackStore, EvictBeforeDropsOldFeedback) {
    FeedbackStore store = sample_store();
    const std::size_t removed = store.evict_before(3);
    EXPECT_EQ(removed, 3u);  // t=1,2 of server 10 and t=1 of server 20
    EXPECT_EQ(store.size(), 2u);
    EXPECT_EQ(store.history(10).size(), 1u);
    EXPECT_EQ(store.history(10)[0].time, 3);
    EXPECT_EQ(store.history(20).size(), 1u);
}

TEST(FeedbackStore, EvictCanForgetServersEntirely) {
    FeedbackStore store = sample_store();
    store.evict_before(100);
    EXPECT_EQ(store.size(), 0u);
    EXPECT_EQ(store.server_count(), 0u);
    EXPECT_FALSE(store.contains(10));
}

TEST(FeedbackStore, EvictReportsForgottenServers) {
    FeedbackStore store{4};
    // Server 1 only has old feedback; 2 has old and new; 3 only new.
    store.submit(Feedback{1, 1, 100, Rating::kPositive});
    store.submit(Feedback{2, 2, 100, Rating::kPositive});
    store.submit(Feedback{9, 2, 100, Rating::kNegative});
    store.submit(Feedback{9, 3, 100, Rating::kPositive});

    // Pre-existing caller contents must survive untouched, with the
    // forgotten ids appended in ascending order after them.
    std::vector<EntityId> forgotten{42};
    EXPECT_EQ(store.evict_before(5, &forgotten), 2u);  // t=1 and t=2
    EXPECT_EQ(forgotten, (std::vector<EntityId>{42, 1}));
    EXPECT_FALSE(store.contains(1));
    EXPECT_TRUE(store.contains(2));

    forgotten.clear();
    EXPECT_EQ(store.evict_before(100, &forgotten), 2u);
    EXPECT_EQ(forgotten, (std::vector<EntityId>{2, 3}));
    EXPECT_EQ(store.server_count(), 0u);

    // Evicting nothing appends nothing; a null out-param stays legal.
    forgotten.clear();
    EXPECT_EQ(store.evict_before(1, &forgotten), 0u);
    EXPECT_TRUE(forgotten.empty());
    EXPECT_EQ(store.evict_before(1, nullptr), 0u);
}

// --- sharding --------------------------------------------------------------

/// First server id in [1, limit] mapping to the given shard, 0 if none.
EntityId server_in_shard(const FeedbackStore& store, std::size_t shard,
                         EntityId avoid = 0) {
    for (EntityId id = 1; id <= 4096; ++id) {
        if (id != avoid && store.shard_of(id) == shard) return id;
    }
    return 0;
}

TEST(FeedbackStoreSharding, ShardOfIsStableAndInRange) {
    const FeedbackStore store{7};
    EXPECT_EQ(store.shard_count(), 7u);
    for (EntityId id = 1; id <= 500; ++id) {
        const std::size_t shard = store.shard_of(id);
        EXPECT_LT(shard, 7u);
        EXPECT_EQ(store.shard_of(id), shard);  // pure function of the id
    }
    // The mix actually spreads: a contiguous id range touches every shard.
    std::vector<bool> hit(7, false);
    for (EntityId id = 1; id <= 500; ++id) hit[store.shard_of(id)] = true;
    for (std::size_t s = 0; s < 7; ++s) EXPECT_TRUE(hit[s]) << "shard " << s;
}

TEST(FeedbackStoreSharding, ZeroShardCountClampsToOne) {
    FeedbackStore store{0};
    EXPECT_EQ(store.shard_count(), 1u);
    store.submit(fb(1, 1, 2, true));
    EXPECT_EQ(store.size(), 1u);
}

TEST(FeedbackStoreSharding, BatchRejectionIsAllOrNothingPerShard) {
    FeedbackStore store{4};
    // Two distinct servers on the same shard: the intra-batch time
    // regression of `bad` must also roll back `good`'s slice.
    const EntityId bad = server_in_shard(store, 2);
    const EntityId good = server_in_shard(store, 2, bad);
    ASSERT_NE(bad, 0u);
    ASSERT_NE(good, 0u);
    EXPECT_THROW(
        store.submit({fb(1, good, 100, true), fb(5, bad, 100, true),
                      fb(3, bad, 101, true)}),
        std::invalid_argument);
    EXPECT_EQ(store.size(), 0u);
    EXPECT_FALSE(store.contains(good));
    EXPECT_FALSE(store.contains(bad));
}

TEST(FeedbackStoreSharding, EarlierShardsStayAppliedOnLaterRejection) {
    FeedbackStore store{4};
    const EntityId bad = server_in_shard(store, 3);
    const EntityId early = server_in_shard(store, 0);
    ASSERT_NE(bad, 0u);
    ASSERT_NE(early, 0u);
    // Shard 0 is processed (and applied) before shard 3 rejects.
    EXPECT_THROW(
        store.submit({fb(1, early, 100, true), fb(5, bad, 100, true),
                      fb(3, bad, 101, true)}),
        std::invalid_argument);
    EXPECT_TRUE(store.contains(early));
    EXPECT_FALSE(store.contains(bad));
    EXPECT_EQ(store.size(), 1u);
}

TEST(FeedbackStoreSharding, BatchRejectsRegressionAgainstResidentLog) {
    FeedbackStore store{4};
    store.submit(fb(10, 1, 100, true));
    EXPECT_THROW(store.submit({fb(9, 1, 100, true)}), std::invalid_argument);
    EXPECT_EQ(store.history(1).size(), 1u);
    // At-or-after the resident tail is fine (equal timestamps allowed).
    store.submit({fb(10, 1, 101, true), fb(11, 1, 102, false)});
    EXPECT_EQ(store.history(1).size(), 3u);
}

TEST(FeedbackStoreSharding, ShardCountDoesNotChangeContents) {
    // The same tape, submitted single-feedback into a 1-shard store and
    // batched into a 7-shard store, must yield bit-identical histories.
    std::vector<Feedback> tape;
    for (int i = 0; i < 200; ++i) {
        tape.push_back(fb(static_cast<Timestamp>(i / 4 + 1),
                          static_cast<EntityId>(1 + i % 9),
                          static_cast<EntityId>(100 + i % 13), i % 5 != 0));
    }
    FeedbackStore sequential{1};
    for (const auto& f : tape) sequential.submit(f);
    FeedbackStore sharded{7};
    sharded.submit(tape);
    ASSERT_EQ(sharded.servers(), sequential.servers());
    ASSERT_EQ(sharded.size(), sequential.size());
    for (const auto server : sequential.servers()) {
        ASSERT_EQ(sharded.history(server).feedbacks(),
                  sequential.history(server).feedbacks());
    }
}

TEST(FeedbackStoreSharding, SnapshotIsIndependentOfLaterWrites) {
    FeedbackStore store{4};
    store.submit({fb(1, 1, 100, true), fb(2, 1, 101, false)});
    const TransactionHistory snapshot = store.history_snapshot(1);
    store.submit(fb(3, 1, 102, true));
    EXPECT_EQ(snapshot.size(), 2u);
    EXPECT_EQ(store.history(1).size(), 3u);
    // The snapshot was the then-current prefix.
    for (std::size_t i = 0; i < snapshot.size(); ++i) {
        EXPECT_EQ(snapshot[i], store.history(1)[i]);
    }
    EXPECT_THROW((void)store.history_snapshot(99), std::out_of_range);
}

TEST(FeedbackStoreSharding, CopyIsDeepAndMovePreservesContents) {
    FeedbackStore original = sample_store();
    FeedbackStore copy = original;
    copy.submit(fb(9, 10, 100, true));
    EXPECT_EQ(copy.history(10).size(), 4u);
    EXPECT_EQ(original.history(10).size(), 3u);  // untouched

    FeedbackStore moved = std::move(original);
    EXPECT_EQ(moved.size(), 5u);
    EXPECT_EQ(moved.servers(), (std::vector<EntityId>{10, 20}));

    FeedbackStore assigned{2};
    assigned = copy;
    EXPECT_EQ(assigned.size(), copy.size());
    EXPECT_EQ(assigned.shard_count(), copy.shard_count());
    assigned = std::move(moved);
    EXPECT_EQ(assigned.size(), 5u);
}

TEST(FeedbackStore, HistoryLengthAnswersWithoutCopying) {
    FeedbackStore store = sample_store();
    ASSERT_TRUE(store.history_length(10).has_value());
    EXPECT_EQ(*store.history_length(10), 3u);
    EXPECT_EQ(*store.history_length(20), 2u);
    EXPECT_FALSE(store.history_length(99).has_value());

    // Eviction that forgets a server flips the answer to nullopt.
    store.evict_before(100);
    EXPECT_FALSE(store.history_length(10).has_value());
}

TEST(FeedbackStore, ShardOccupancySumsToTotals) {
    FeedbackStore store{8};
    for (EntityId server = 1; server <= 40; ++server) {
        for (Timestamp t = 1; t <= server % 5 + 1; ++t) {
            store.submit(fb(t, server, 100, true));
        }
    }
    const auto occupancy = store.shard_occupancy();
    ASSERT_EQ(occupancy.size(), store.shard_count());
    std::size_t servers = 0, feedbacks = 0;
    for (const auto& shard : occupancy) {
        servers += shard.servers;
        feedbacks += shard.feedbacks;
    }
    EXPECT_EQ(servers, store.server_count());
    EXPECT_EQ(feedbacks, store.size());

    // Each server's log must sit on the shard shard_of() names.
    std::vector<std::size_t> expected(store.shard_count(), 0);
    for (const EntityId server : store.servers()) {
        ++expected[store.shard_of(server)];
    }
    for (std::size_t i = 0; i < occupancy.size(); ++i) {
        EXPECT_EQ(occupancy[i].servers, expected[i]) << "shard " << i;
    }
}

TEST(FeedbackStore, SaveLoadRoundTrip) {
    const FeedbackStore store = sample_store();
    const auto dir =
        (std::filesystem::temp_directory_path() / "hpr_store_test").string();
    store.save(dir);
    const FeedbackStore loaded = FeedbackStore::load(dir);
    EXPECT_EQ(loaded.size(), store.size());
    EXPECT_EQ(loaded.servers(), store.servers());
    EXPECT_EQ(loaded.history(10).feedbacks(), store.history(10).feedbacks());
    EXPECT_EQ(loaded.history(20).feedbacks(), store.history(20).feedbacks());
    std::filesystem::remove_all(dir);
}

TEST(FeedbackStore, LoadRejectsMissingDirectory) {
    EXPECT_THROW((void)FeedbackStore::load("/nonexistent/hpr_store"),
                 std::runtime_error);
}

TEST(FeedbackStoreIngestBatch, AppliesAValidBatchAtomically) {
    FeedbackStore store{4};
    store.ingest_batch({fb(1, 10, 0, true), fb(2, 20, 0, false),
                        fb(3, 10, 0, true), fb(1, 30, 0, true)});
    EXPECT_EQ(store.size(), 4u);
    EXPECT_EQ(store.history(10).size(), 2u);
    EXPECT_EQ(store.history(20).size(), 1u);
    EXPECT_EQ(store.history(30).size(), 1u);
}

TEST(FeedbackStoreIngestBatch, RejectionLeavesEveryShardUntouched) {
    FeedbackStore store{4};
    store.submit(fb(5, 10, 0, true));
    // Spread the batch over several servers (hence shards); the offender
    // regresses server 10, which may hash to a LATER shard than some of
    // the valid slices — unlike submit(vector), none of them may land.
    std::vector<Feedback> batch;
    for (EntityId server = 11; server <= 30; ++server) {
        batch.push_back(fb(1, server, 0, true));
    }
    batch.push_back(fb(4, 10, 0, true));  // index 20: precedes t=5
    EXPECT_THROW(store.ingest_batch(batch), BatchRejected);
    EXPECT_EQ(store.size(), 1u);
    EXPECT_EQ(store.server_count(), 1u);
    for (EntityId server = 11; server <= 30; ++server) {
        EXPECT_FALSE(store.contains(server)) << "server " << server;
    }
}

TEST(FeedbackStoreIngestBatch, ReportsTheSmallestOffendingIndex) {
    FeedbackStore store{4};
    std::vector<Feedback> batch{fb(1, 10, 0, true), fb(5, 11, 0, true),
                                fb(3, 11, 0, true),   // index 2 regresses
                                fb(0, 10, 0, false)};  // index 3 regresses too
    try {
        store.ingest_batch(batch);
        FAIL() << "batch should have been rejected";
    } catch (const BatchRejected& rejected) {
        EXPECT_EQ(rejected.index(), 2u);
    }
    EXPECT_EQ(store.size(), 0u);
}

TEST(FeedbackStoreIngestBatch, CountsOrderWithinTheBatchItself) {
    FeedbackStore store{4};
    // Both feedbacks are newer than the (empty) resident log, but the
    // second regresses against the first within the batch.
    EXPECT_THROW(store.ingest_batch({fb(7, 10, 0, true), fb(6, 10, 0, true)}),
                 BatchRejected);
    EXPECT_FALSE(store.contains(10));
    // Equal timestamps are legal (logical clocks may tie).
    store.ingest_batch({fb(7, 10, 0, true), fb(7, 10, 0, false)});
    EXPECT_EQ(store.history(10).size(), 2u);
}

TEST(FeedbackStoreIngestBatch, EmptyBatchIsANoOp) {
    FeedbackStore store{4};
    store.ingest_batch({});
    EXPECT_EQ(store.size(), 0u);
}

TEST(FeedbackStore, LoadIgnoresNonCsvFiles) {
    const auto dir =
        (std::filesystem::temp_directory_path() / "hpr_store_mixed").string();
    sample_store().save(dir);
    {
        std::ofstream junk{std::filesystem::path{dir} / "notes.txt"};
        junk << "not a feedback log\n";
    }
    const FeedbackStore loaded = FeedbackStore::load(dir);
    EXPECT_EQ(loaded.server_count(), 2u);
    std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace hpr::repsys
