// Unit tests for the feedback storage substrate (repsys/store.h).

#include "repsys/store.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace hpr::repsys {
namespace {

Feedback fb(Timestamp t, EntityId server, EntityId client, bool good) {
    return Feedback{t, server, client,
                    good ? Rating::kPositive : Rating::kNegative};
}

FeedbackStore sample_store() {
    FeedbackStore store;
    store.submit({fb(1, 10, 100, true), fb(2, 10, 101, false), fb(3, 10, 100, true),
                  fb(1, 20, 100, true), fb(5, 20, 102, true)});
    return store;
}

TEST(FeedbackStore, StartsEmpty) {
    const FeedbackStore store;
    EXPECT_EQ(store.size(), 0u);
    EXPECT_EQ(store.server_count(), 0u);
    EXPECT_TRUE(store.servers().empty());
    EXPECT_FALSE(store.contains(1));
}

TEST(FeedbackStore, RoutesByServer) {
    const FeedbackStore store = sample_store();
    EXPECT_EQ(store.size(), 5u);
    EXPECT_EQ(store.server_count(), 2u);
    EXPECT_EQ(store.servers(), (std::vector<EntityId>{10, 20}));
    EXPECT_EQ(store.history(10).size(), 3u);
    EXPECT_EQ(store.history(20).size(), 2u);
    EXPECT_EQ(store.history(10).good_count(), 2u);
}

TEST(FeedbackStore, UnknownServerThrows) {
    const FeedbackStore store = sample_store();
    EXPECT_THROW((void)store.history(99), std::out_of_range);
}

TEST(FeedbackStore, RejectsPerServerTimeRegression) {
    FeedbackStore store;
    store.submit(fb(5, 1, 2, true));
    EXPECT_THROW(store.submit(fb(4, 1, 2, true)), std::invalid_argument);
    // A different server has an independent clock.
    store.submit(fb(1, 2, 2, true));
    EXPECT_EQ(store.size(), 2u);
}

TEST(FeedbackStore, BetweenIsInclusiveAndOrdered) {
    const FeedbackStore store = sample_store();
    const auto range = store.between(10, 2, 3);
    ASSERT_EQ(range.size(), 2u);
    EXPECT_EQ(range[0].time, 2);
    EXPECT_EQ(range[1].time, 3);
    EXPECT_TRUE(store.between(10, 100, 200).empty());
    EXPECT_TRUE(store.between(99, 0, 10).empty());
    // Inverted bounds are an empty range, not undefined behavior.
    EXPECT_TRUE(store.between(10, 3, 1).empty());
}

TEST(FeedbackStore, IssuedByCollectsAcrossServers) {
    const FeedbackStore store = sample_store();
    const auto by_100 = store.issued_by(100);
    ASSERT_EQ(by_100.size(), 3u);
    // Time-ordered; the tie at t=1 broken by server id.
    EXPECT_EQ(by_100[0].time, 1);
    EXPECT_EQ(by_100[0].server, 10u);
    EXPECT_EQ(by_100[1].server, 20u);
    EXPECT_EQ(by_100[2].time, 3);
    EXPECT_TRUE(store.issued_by(999).empty());
}

TEST(FeedbackStore, SampleHistoryIsDeterministicSubset) {
    FeedbackStore store;
    for (int i = 1; i <= 400; ++i) {
        store.submit(fb(i, 1, static_cast<EntityId>(100 + i % 10), i % 7 != 0));
    }
    const auto a = store.sample_history(1, 0.5, 99);
    const auto b = store.sample_history(1, 0.5, 99);
    EXPECT_EQ(a, b);
    EXPECT_GT(a.size(), 120u);
    EXPECT_LT(a.size(), 280u);
    // Order preserved.
    for (std::size_t i = 1; i < a.size(); ++i) ASSERT_LE(a[i - 1].time, a[i].time);
    // Degenerate fractions.
    EXPECT_TRUE(store.sample_history(1, 0.0, 99).empty());
    EXPECT_EQ(store.sample_history(1, 1.0, 99).size(), 400u);
    EXPECT_THROW((void)store.sample_history(1, 1.5, 99), std::invalid_argument);
    EXPECT_TRUE(store.sample_history(123, 0.5, 99).empty());
}

TEST(FeedbackStore, EvictBeforeDropsOldFeedback) {
    FeedbackStore store = sample_store();
    const std::size_t removed = store.evict_before(3);
    EXPECT_EQ(removed, 3u);  // t=1,2 of server 10 and t=1 of server 20
    EXPECT_EQ(store.size(), 2u);
    EXPECT_EQ(store.history(10).size(), 1u);
    EXPECT_EQ(store.history(10)[0].time, 3);
    EXPECT_EQ(store.history(20).size(), 1u);
}

TEST(FeedbackStore, EvictCanForgetServersEntirely) {
    FeedbackStore store = sample_store();
    store.evict_before(100);
    EXPECT_EQ(store.size(), 0u);
    EXPECT_EQ(store.server_count(), 0u);
    EXPECT_FALSE(store.contains(10));
}

TEST(FeedbackStore, SaveLoadRoundTrip) {
    const FeedbackStore store = sample_store();
    const auto dir =
        (std::filesystem::temp_directory_path() / "hpr_store_test").string();
    store.save(dir);
    const FeedbackStore loaded = FeedbackStore::load(dir);
    EXPECT_EQ(loaded.size(), store.size());
    EXPECT_EQ(loaded.servers(), store.servers());
    EXPECT_EQ(loaded.history(10).feedbacks(), store.history(10).feedbacks());
    EXPECT_EQ(loaded.history(20).feedbacks(), store.history(20).feedbacks());
    std::filesystem::remove_all(dir);
}

TEST(FeedbackStore, LoadRejectsMissingDirectory) {
    EXPECT_THROW((void)FeedbackStore::load("/nonexistent/hpr_store"),
                 std::runtime_error);
}

TEST(FeedbackStore, LoadIgnoresNonCsvFiles) {
    const auto dir =
        (std::filesystem::temp_directory_path() / "hpr_store_mixed").string();
    sample_store().save(dir);
    {
        std::ofstream junk{std::filesystem::path{dir} / "notes.txt"};
        junk << "not a feedback log\n";
    }
    const FeedbackStore loaded = FeedbackStore::load(dir);
    EXPECT_EQ(loaded.server_count(), 2u);
    std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace hpr::repsys
