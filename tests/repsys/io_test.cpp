// Unit tests for CSV feedback-log persistence (repsys/io.h).

#include "repsys/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace hpr::repsys {
namespace {

std::vector<Feedback> sample_feedbacks() {
    return {Feedback{1, 42, 7, Rating::kPositive},
            Feedback{2, 42, 9, Rating::kNegative},
            Feedback{5, 42, 7, Rating::kNeutral}};
}

TEST(Io, WriteProducesHeaderAndRows) {
    std::ostringstream out;
    write_csv(out, sample_feedbacks());
    EXPECT_EQ(out.str(),
              "time,server,client,rating\n"
              "1,42,7,positive\n"
              "2,42,9,negative\n"
              "5,42,7,neutral\n");
}

TEST(Io, StreamRoundTrip) {
    std::ostringstream out;
    write_csv(out, sample_feedbacks());
    std::istringstream in{out.str()};
    EXPECT_EQ(read_csv(in), sample_feedbacks());
}

TEST(Io, ReadSkipsBlankLinesAndCrlf) {
    std::istringstream in{
        "time,server,client,rating\r\n"
        "\n"
        "1,42,7,positive\r\n"
        "\n"};
    const auto feedbacks = read_csv(in);
    ASSERT_EQ(feedbacks.size(), 1u);
    EXPECT_EQ(feedbacks[0].client, 7u);
}

TEST(Io, ReadRejectsMissingHeader) {
    std::istringstream in{"1,42,7,positive\n"};
    EXPECT_THROW((void)read_csv(in), std::runtime_error);
}

TEST(Io, ReadRejectsWrongFieldCount) {
    std::istringstream in{
        "time,server,client,rating\n"
        "1,42,7\n"};
    EXPECT_THROW((void)read_csv(in), std::runtime_error);
}

TEST(Io, ReadRejectsBadRating) {
    std::istringstream in{
        "time,server,client,rating\n"
        "1,42,7,excellent\n"};
    EXPECT_THROW((void)read_csv(in), std::runtime_error);
}

TEST(Io, ReadRejectsNonNumericFields) {
    std::istringstream in{
        "time,server,client,rating\n"
        "abc,42,7,positive\n"};
    EXPECT_THROW((void)read_csv(in), std::runtime_error);
}

TEST(Io, ErrorsMentionLineNumber) {
    std::istringstream in{
        "time,server,client,rating\n"
        "1,42,7,positive\n"
        "2,42,bad\n"};
    try {
        (void)read_csv(in);
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string{e.what()}.find("line 3"), std::string::npos);
    }
}

TEST(Io, FileRoundTrip) {
    const auto path =
        (std::filesystem::temp_directory_path() / "hpr_io_test.csv").string();
    const TransactionHistory history{sample_feedbacks()};
    save_csv(path, history);
    const TransactionHistory loaded = load_csv(path);
    EXPECT_EQ(loaded.feedbacks(), history.feedbacks());
    std::remove(path.c_str());
}

TEST(Io, LoadMissingFileThrows) {
    EXPECT_THROW((void)load_csv("/nonexistent/dir/nothing.csv"), std::runtime_error);
}

TEST(Io, SaveToUnwritablePathThrows) {
    EXPECT_THROW(save_csv("/nonexistent/dir/file.csv", TransactionHistory{}),
                 std::runtime_error);
}

TEST(Io, LoadRejectsUnorderedTimestamps) {
    const auto path =
        (std::filesystem::temp_directory_path() / "hpr_io_unordered.csv").string();
    {
        std::ofstream out{path};
        out << "time,server,client,rating\n"
            << "5,1,1,positive\n"
            << "3,1,1,positive\n";
    }
    EXPECT_THROW((void)load_csv(path), std::invalid_argument);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace hpr::repsys
