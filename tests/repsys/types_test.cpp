// Unit tests for reputation-system vocabulary types (repsys/types.h).

#include "repsys/types.h"

#include <gtest/gtest.h>

namespace hpr::repsys {
namespace {

TEST(Rating, GoodnessSemantics) {
    EXPECT_TRUE(is_good(Rating::kPositive));
    EXPECT_FALSE(is_good(Rating::kNegative));
    EXPECT_FALSE(is_good(Rating::kNeutral));
}

TEST(Rating, ToStringNames) {
    EXPECT_STREQ(to_string(Rating::kPositive), "positive");
    EXPECT_STREQ(to_string(Rating::kNegative), "negative");
    EXPECT_STREQ(to_string(Rating::kNeutral), "neutral");
}

TEST(Rating, FromStringRoundTrip) {
    for (Rating r : {Rating::kPositive, Rating::kNegative, Rating::kNeutral}) {
        EXPECT_EQ(rating_from_string(to_string(r)), r);
    }
}

TEST(Rating, FromStringRejectsUnknown) {
    EXPECT_THROW((void)rating_from_string("ok"), std::invalid_argument);
    EXPECT_THROW((void)rating_from_string(""), std::invalid_argument);
    EXPECT_THROW((void)rating_from_string("Positive"), std::invalid_argument);
}

TEST(Feedback, GoodDelegatesToRating) {
    Feedback f;
    f.rating = Rating::kPositive;
    EXPECT_TRUE(f.good());
    f.rating = Rating::kNegative;
    EXPECT_FALSE(f.good());
}

TEST(Feedback, EqualityIsFieldwise) {
    const Feedback a{1, 2, 3, Rating::kPositive};
    Feedback b = a;
    EXPECT_EQ(a, b);
    b.time = 9;
    EXPECT_NE(a, b);
    b = a;
    b.rating = Rating::kNegative;
    EXPECT_NE(a, b);
}

}  // namespace
}  // namespace hpr::repsys
