// Unit tests for H-Trust group reputation (repsys/htrust.h).

#include "repsys/htrust.h"

#include <gtest/gtest.h>

namespace hpr::repsys {
namespace {

Feedback fb(Timestamp t, EntityId client, bool good) {
    return Feedback{t, 1, client, good ? Rating::kPositive : Rating::kNegative};
}

TEST(HIndex, KnownValues) {
    EXPECT_EQ(h_index({}), 0u);
    EXPECT_EQ(h_index({0, 0, 0}), 0u);
    EXPECT_EQ(h_index({1}), 1u);
    EXPECT_EQ(h_index({5}), 1u);
    EXPECT_EQ(h_index({3, 3, 3}), 3u);
    EXPECT_EQ(h_index({10, 8, 5, 4, 3}), 4u);
    EXPECT_EQ(h_index({25, 8, 5, 3, 3}), 3u);
}

TEST(HIndex, OrderInvariant) {
    EXPECT_EQ(h_index({1, 9, 2, 8, 3}), h_index({9, 8, 3, 2, 1}));
}

TEST(HTrust, EmptyHistory) {
    const HTrustResult result = h_trust({});
    EXPECT_EQ(result.h, 0u);
    EXPECT_EQ(result.supporters, 0u);
    EXPECT_EQ(result.positives, 0u);
    EXPECT_EQ(result.normalized, 0.0);
}

TEST(HTrust, CountsPerClientPositives) {
    // Client 10: 3 positives; client 11: 2; client 12: 1 positive + 1
    // negative (negatives never count).
    std::vector<Feedback> feedbacks;
    Timestamp t = 1;
    for (int i = 0; i < 3; ++i) feedbacks.push_back(fb(t++, 10, true));
    for (int i = 0; i < 2; ++i) feedbacks.push_back(fb(t++, 11, true));
    feedbacks.push_back(fb(t++, 12, true));
    feedbacks.push_back(fb(t++, 12, false));
    const HTrustResult result = h_trust(feedbacks);
    EXPECT_EQ(result.h, 2u);  // two clients with >= 2 positives
    EXPECT_EQ(result.supporters, 3u);
    EXPECT_EQ(result.positives, 6u);
}

TEST(HTrust, SingleColluderBoundedAtOne) {
    // One colluder files 400 fake positives: H stays at 1.
    std::vector<Feedback> feedbacks;
    for (int i = 0; i < 400; ++i) {
        feedbacks.push_back(fb(i + 1, 5, true));
    }
    const HTrustResult result = h_trust(feedbacks);
    EXPECT_EQ(result.h, 1u);
    EXPECT_LT(result.normalized, 0.1);
}

TEST(HTrust, KColludersBoundedAtK) {
    std::vector<Feedback> feedbacks;
    Timestamp t = 1;
    for (int round = 0; round < 100; ++round) {
        for (EntityId c = 2; c < 7; ++c) feedbacks.push_back(fb(t++, c, true));
    }
    EXPECT_EQ(h_trust(feedbacks).h, 5u);  // 5 colluders cap H at 5
}

TEST(HTrust, BroadSupportScoresHigh) {
    // 20 distinct clients x 20 positives each: H = 20, the ceiling for
    // 400 positives (sqrt(400)) -> normalized 1.
    std::vector<Feedback> feedbacks;
    Timestamp t = 1;
    for (int round = 0; round < 20; ++round) {
        for (EntityId c = 100; c < 120; ++c) feedbacks.push_back(fb(t++, c, true));
    }
    const HTrustResult result = h_trust(feedbacks);
    EXPECT_EQ(result.h, 20u);
    EXPECT_NEAR(result.normalized, 1.0, 1e-12);
}

TEST(HTrust, DiscriminatesColluderFromHonestAtSameVolume) {
    // Same 400 positives: colluder-concentrated vs broadly earned — the
    // volume-based average cannot tell them apart, H-Trust can.
    std::vector<Feedback> concentrated;
    std::vector<Feedback> broad;
    Timestamp t = 1;
    for (int i = 0; i < 400; ++i) {
        concentrated.push_back(fb(t, static_cast<EntityId>(2 + i % 4), true));
        broad.push_back(fb(t, static_cast<EntityId>(100 + i % 40), true));
        ++t;
    }
    const auto h_concentrated = h_trust(concentrated);
    const auto h_broad = h_trust(broad);
    EXPECT_EQ(h_concentrated.positives, h_broad.positives);
    EXPECT_LT(h_concentrated.h, h_broad.h);
    EXPECT_LT(h_concentrated.normalized + 0.25, h_broad.normalized);
}

}  // namespace
}  // namespace hpr::repsys
