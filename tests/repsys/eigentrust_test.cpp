// Unit tests for the EigenTrust baseline (repsys/eigentrust.h).

#include "repsys/eigentrust.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/rng.h"

namespace hpr::repsys {
namespace {

Feedback fb(Timestamp t, EntityId server, EntityId client, bool good) {
    return Feedback{t, server, client,
                    good ? Rating::kPositive : Rating::kNegative};
}

TEST(EigenTrust, RejectsDegenerateInput) {
    EXPECT_THROW((void)EigenTrust::compute({}), std::invalid_argument);
    const std::vector<Feedback> one{fb(1, 1, 2, true)};
    EigenTrustConfig bad;
    bad.teleport = 0.0;
    EXPECT_THROW((void)EigenTrust::compute(one, bad), std::invalid_argument);
    bad = {};
    bad.max_iterations = 0;
    EXPECT_THROW((void)EigenTrust::compute(one, bad), std::invalid_argument);
}

TEST(EigenTrust, ScoresFormADistribution) {
    stats::Rng rng{61};
    std::vector<Feedback> feedbacks;
    for (int i = 0; i < 500; ++i) {
        feedbacks.push_back(fb(i + 1,
                               static_cast<EntityId>(1 + rng.uniform_int(std::uint64_t{8})),
                               static_cast<EntityId>(20 + rng.uniform_int(std::uint64_t{30})),
                               rng.bernoulli(0.8)));
    }
    const auto result = EigenTrust::compute(feedbacks);
    EXPECT_TRUE(result.converged());
    double total = 0.0;
    for (const auto& [id, score] : result.scores()) {
        EXPECT_GE(score, 0.0);
        total += score;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(EigenTrust, GoodServerOutranksBadServer) {
    // 30 clients all rate server 1 positively and server 2 negatively.
    std::vector<Feedback> feedbacks;
    Timestamp t = 1;
    for (EntityId c = 100; c < 130; ++c) {
        feedbacks.push_back(fb(t++, 1, c, true));
        feedbacks.push_back(fb(t++, 2, c, false));
    }
    const auto result = EigenTrust::compute(feedbacks);
    EXPECT_GT(result.score(1), result.score(2));
    // With local trust clamped at zero, the all-negative server earns no
    // endorsement beyond the uniform teleport mass.
    EXPECT_GT(result.score(1), 2.0 * result.score(2));
    const auto ranking = result.ranking();
    EXPECT_EQ(ranking.front(), 1u);
}

TEST(EigenTrust, UnknownEntityScoresZero) {
    const std::vector<Feedback> feedbacks{fb(1, 1, 2, true)};
    const auto result = EigenTrust::compute(feedbacks);
    EXPECT_EQ(result.score(999), 0.0);
}

TEST(EigenTrust, PreTrustedAnchorsConcentrateMass) {
    // Two disconnected endorsement islands: {1 <- 10} and {2 <- 20}.
    const std::vector<Feedback> feedbacks{fb(1, 1, 10, true), fb(2, 2, 20, true)};
    const std::vector<EntityId> anchors{10};
    const auto anchored = EigenTrust::compute(feedbacks, {}, anchors);
    // Teleport lands only on client 10, so island {10, 1} gets all mass.
    EXPECT_GT(anchored.score(1), anchored.score(2));
    EXPECT_NEAR(anchored.score(2) + anchored.score(20), 0.0, 1e-9);
}

TEST(EigenTrust, CollusionCliqueIsDampedByPreTrust) {
    // Honest region: clients 100..119 endorse servers 1..3 (who, acting as
    // clients, endorse each other lightly).  A colluding clique 50/51
    // endorses itself heavily and nobody else endorses it.
    std::vector<Feedback> feedbacks;
    Timestamp t = 1;
    for (EntityId c = 100; c < 120; ++c) {
        for (EntityId s = 1; s <= 3; ++s) feedbacks.push_back(fb(t++, s, c, true));
    }
    for (int i = 0; i < 200; ++i) {
        feedbacks.push_back(fb(t++, 50, 51, true));
        feedbacks.push_back(fb(t++, 51, 50, true));
    }
    const std::vector<EntityId> anchors{100, 101, 102};
    const auto result = EigenTrust::compute(feedbacks, {}, anchors);
    // The clique's mutual endorsements cannot pull in teleport mass that
    // only flows through the pre-trusted honest clients.
    EXPECT_GT(result.score(1), result.score(50));
    EXPECT_GT(result.score(1), result.score(51));
}

TEST(EigenTrust, MixedFeedbackNetsOut) {
    // Client 9 rates server 1: 5 positives, 2 negatives -> net +3;
    // server 2: 2 positives, 2 negatives -> net 0 (no edge).
    std::vector<Feedback> feedbacks;
    Timestamp t = 1;
    for (int i = 0; i < 5; ++i) feedbacks.push_back(fb(t++, 1, 9, true));
    for (int i = 0; i < 2; ++i) feedbacks.push_back(fb(t++, 1, 9, false));
    for (int i = 0; i < 2; ++i) feedbacks.push_back(fb(t++, 2, 9, true));
    for (int i = 0; i < 2; ++i) feedbacks.push_back(fb(t++, 2, 9, false));
    const std::vector<EntityId> anchors{9};
    const auto result = EigenTrust::compute(feedbacks, {}, anchors);
    EXPECT_GT(result.score(1), result.score(2));
}

TEST(EigenTrust, DeterministicAcrossRuns) {
    stats::Rng rng{62};
    std::vector<Feedback> feedbacks;
    for (int i = 0; i < 300; ++i) {
        feedbacks.push_back(fb(i + 1,
                               static_cast<EntityId>(1 + rng.uniform_int(std::uint64_t{5})),
                               static_cast<EntityId>(10 + rng.uniform_int(std::uint64_t{20})),
                               rng.bernoulli(0.7)));
    }
    const auto a = EigenTrust::compute(feedbacks);
    const auto b = EigenTrust::compute(feedbacks);
    for (const auto& [id, score] : a.scores()) {
        ASSERT_DOUBLE_EQ(score, b.score(id));
    }
}

}  // namespace
}  // namespace hpr::repsys
