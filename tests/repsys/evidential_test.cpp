// Unit tests for evidential (Dempster-Shafer) trust (repsys/evidential.h).

#include "repsys/evidential.h"

#include <gtest/gtest.h>

namespace hpr::repsys {
namespace {

Feedback fb(Timestamp t, Rating r) { return Feedback{t, 1, 2, r}; }

void expect_valid(const BeliefMass& m) {
    EXPECT_GE(m.trust, 0.0);
    EXPECT_GE(m.distrust, 0.0);
    EXPECT_GE(m.uncertainty, -1e-12);
    EXPECT_NEAR(m.trust + m.distrust + m.uncertainty, 1.0, 1e-12);
}

TEST(Evidential, NoEvidenceIsVacuous) {
    const BeliefMass m = belief_from_counts(0, 0, 0);
    EXPECT_EQ(m.trust, 0.0);
    EXPECT_EQ(m.distrust, 0.0);
    EXPECT_EQ(m.uncertainty, 1.0);
    EXPECT_EQ(m.expected_trust(), 0.5);
}

TEST(Evidential, CountsMapToMasses) {
    const BeliefMass m = belief_from_counts(8, 1, 1);
    expect_valid(m);
    EXPECT_NEAR(m.trust, 0.8, 1e-12);
    EXPECT_NEAR(m.distrust, 0.1, 1e-12);
    EXPECT_NEAR(m.uncertainty, 0.1, 1e-12);
    EXPECT_NEAR(m.expected_trust(), 0.85, 1e-12);
}

TEST(Evidential, DiscountShiftsMassToUncertainty) {
    const BeliefMass crisp = belief_from_counts(9, 1, 0, 0.0);
    const BeliefMass hedged = belief_from_counts(9, 1, 0, 0.5);
    expect_valid(hedged);
    EXPECT_NEAR(hedged.trust, 0.5 * crisp.trust, 1e-12);
    EXPECT_GT(hedged.uncertainty, crisp.uncertainty);
    EXPECT_THROW((void)belief_from_counts(1, 0, 0, 1.5), std::invalid_argument);
}

TEST(Evidential, FeedbackOverloadCountsRatings) {
    const std::vector<Feedback> feedbacks{
        fb(1, Rating::kPositive), fb(2, Rating::kPositive),
        fb(3, Rating::kNegative), fb(4, Rating::kNeutral)};
    const BeliefMass m = belief_from_feedbacks(feedbacks);
    EXPECT_NEAR(m.trust, 0.5, 1e-12);
    EXPECT_NEAR(m.distrust, 0.25, 1e-12);
    EXPECT_NEAR(m.uncertainty, 0.25, 1e-12);
}

TEST(Evidential, CombiningWithVacuousIsIdentity) {
    const BeliefMass m = belief_from_counts(7, 2, 1);
    const BeliefMass vacuous;
    const BeliefMass combined = combine(m, vacuous);
    EXPECT_NEAR(combined.trust, m.trust, 1e-12);
    EXPECT_NEAR(combined.distrust, m.distrust, 1e-12);
    EXPECT_NEAR(combined.uncertainty, m.uncertainty, 1e-12);
}

TEST(Evidential, CombinationIsCommutative) {
    const BeliefMass a = belief_from_counts(8, 1, 1);
    const BeliefMass b = belief_from_counts(3, 5, 2);
    const BeliefMass ab = combine(a, b);
    const BeliefMass ba = combine(b, a);
    expect_valid(ab);
    EXPECT_NEAR(ab.trust, ba.trust, 1e-12);
    EXPECT_NEAR(ab.distrust, ba.distrust, 1e-12);
}

TEST(Evidential, AgreementReinforcesBelief) {
    const BeliefMass witness = belief_from_counts(7, 1, 2);
    const BeliefMass combined = combine(witness, witness);
    expect_valid(combined);
    EXPECT_GT(combined.trust, witness.trust);
    EXPECT_LT(combined.uncertainty, witness.uncertainty);
}

TEST(Evidential, ConflictErodesCertainty) {
    const BeliefMass pro = belief_from_counts(8, 1, 1);
    const BeliefMass contra = belief_from_counts(1, 8, 1);
    const BeliefMass combined = combine(pro, contra);
    expect_valid(combined);
    // Opposing evidence cancels toward a middling expected trust.
    EXPECT_NEAR(combined.expected_trust(), 0.5, 0.1);
}

TEST(Evidential, TotalConflictThrows) {
    BeliefMass certain_yes;
    certain_yes.trust = 1.0;
    certain_yes.uncertainty = 0.0;
    BeliefMass certain_no;
    certain_no.distrust = 1.0;
    certain_no.uncertainty = 0.0;
    EXPECT_THROW((void)combine(certain_yes, certain_no), std::invalid_argument);
}

TEST(Evidential, ExpectedTrustTracksEvidenceRatio) {
    // With no neutrals and no discount, expected trust ~ positive ratio.
    const BeliefMass m = belief_from_counts(90, 10, 0);
    EXPECT_NEAR(m.expected_trust(), 0.9, 1e-12);
}

}  // namespace
}  // namespace hpr::repsys
