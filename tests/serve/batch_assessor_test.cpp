// Equivalence suite for the parallel serving core (serve/batch_assessor.h).
//
// The load-bearing claim: the thread pool decides only WHICH thread
// assesses a server, never WHAT the assessment computes — so BatchAssessor
// must reproduce the seed sequential path (one TwoPhaseAssessor walking
// store.history(id) server by server) bit for bit, at any thread count.

#include "serve/batch_assessor.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/two_phase.h"
#include "repsys/store.h"
#include "repsys/trust.h"
#include "stats/rng.h"

namespace hpr::serve {
namespace {

std::shared_ptr<stats::Calibrator> shared_cal() {
    static auto cal = core::make_calibrator(core::BehaviorTestConfig{});
    return cal;
}

std::shared_ptr<const repsys::TrustFunction> beta_trust() {
    return std::shared_ptr<const repsys::TrustFunction>{
        repsys::make_trust_function("beta")};
}

core::TwoPhaseConfig assessment_config() {
    core::TwoPhaseConfig config;
    config.mode = core::ScreeningMode::kMulti;
    config.test.bonferroni = true;
    config.test.collect_details = true;
    return config;
}

/// A population every verdict class shows up in: honest servers of
/// varying quality, one mid-stream quality drop, one newcomer too short
/// to screen.
repsys::FeedbackStore mixed_store() {
    repsys::FeedbackStore store{8};
    struct Spec {
        repsys::EntityId id;
        std::size_t length;
        double p;
        bool drops;
    };
    const std::vector<Spec> specs{
        {1, 800, 0.97, false}, {2, 600, 0.85, false}, {3, 700, 0.95, true},
        {4, 500, 0.70, false}, {5, 12, 0.90, false},  {6, 900, 0.92, true},
    };
    std::vector<repsys::Feedback> batch;
    for (const auto& spec : specs) {
        stats::Rng rng{0xabcd00ULL + spec.id};
        for (std::size_t i = 0; i < spec.length; ++i) {
            const double p =
                (spec.drops && i >= spec.length / 2) ? spec.p * 0.5 : spec.p;
            batch.push_back(repsys::Feedback{
                static_cast<repsys::Timestamp>(i + 1), spec.id,
                static_cast<repsys::EntityId>(100 + i % 23),
                rng.bernoulli(p) ? repsys::Rating::kPositive
                                 : repsys::Rating::kNegative});
        }
    }
    store.submit(batch);
    return store;
}

void expect_identical(const core::Assessment& got, const core::Assessment& want) {
    ASSERT_EQ(got.verdict, want.verdict);
    ASSERT_EQ(got.trust.has_value(), want.trust.has_value());
    if (want.trust) {
        ASSERT_DOUBLE_EQ(*got.trust, *want.trust);
    }
    ASSERT_EQ(got.screening.passed, want.screening.passed);
    ASSERT_EQ(got.screening.sufficient, want.screening.sufficient);
    ASSERT_EQ(got.screening.stages_run, want.screening.stages_run);
    ASSERT_EQ(got.screening.failed_suffix_length,
              want.screening.failed_suffix_length);
    ASSERT_DOUBLE_EQ(got.screening.min_margin, want.screening.min_margin);
    ASSERT_EQ(got.screening.details.size(), want.screening.details.size());
    for (std::size_t s = 0; s < want.screening.details.size(); ++s) {
        ASSERT_DOUBLE_EQ(got.screening.details[s].distance,
                         want.screening.details[s].distance);
        ASSERT_DOUBLE_EQ(got.screening.details[s].threshold,
                         want.screening.details[s].threshold);
        ASSERT_DOUBLE_EQ(got.screening.details[s].p_hat,
                         want.screening.details[s].p_hat);
    }
}

TEST(BatchAssessor, MatchesSequentialTwoPhasePath) {
    const repsys::FeedbackStore store = mixed_store();
    const core::TwoPhaseAssessor sequential{assessment_config(), beta_trust(),
                                            shared_cal()};
    BatchAssessorConfig config;
    config.assessment = assessment_config();
    config.threads = 4;
    const BatchAssessor batch{config, beta_trust(), shared_cal()};

    const auto results = batch.assess_all(store);
    const auto servers = store.servers();
    ASSERT_EQ(results.size(), servers.size());
    bool saw_suspicious = false;
    bool saw_assessed = false;
    for (std::size_t i = 0; i < servers.size(); ++i) {
        ASSERT_EQ(results[i].server, servers[i]);
        const auto reference = sequential.assess(store.history(servers[i]));
        expect_identical(results[i].assessment, reference);
        saw_suspicious |= reference.verdict == core::Verdict::kSuspicious;
        saw_assessed |= reference.verdict == core::Verdict::kAssessed;
    }
    // The fixture must actually exercise both verdict branches.
    EXPECT_TRUE(saw_suspicious);
    EXPECT_TRUE(saw_assessed);
}

TEST(BatchAssessor, ThreadCountIsInvisibleInResults) {
    const repsys::FeedbackStore store = mixed_store();
    BatchAssessorConfig config;
    config.assessment = assessment_config();
    config.threads = 1;
    const BatchAssessor one{config, beta_trust(), shared_cal()};
    const auto reference = one.assess_all(store);
    for (const std::size_t threads : {2u, 3u, 8u}) {
        config.threads = threads;
        const BatchAssessor many{config, beta_trust(), shared_cal()};
        ASSERT_EQ(many.threads(), threads);
        const auto results = many.assess_all(store);
        ASSERT_EQ(results.size(), reference.size());
        for (std::size_t i = 0; i < reference.size(); ++i) {
            ASSERT_EQ(results[i].server, reference[i].server);
            expect_identical(results[i].assessment, reference[i].assessment);
        }
    }
}

TEST(BatchAssessor, ResultsFollowRequestOrder) {
    const repsys::FeedbackStore store = mixed_store();
    BatchAssessorConfig config;
    config.assessment = assessment_config();
    config.threads = 2;
    const BatchAssessor assessor{config, beta_trust(), shared_cal()};
    const std::vector<repsys::EntityId> request{5, 1, 6, 1, 3};
    const auto results = assessor.assess(store, request);
    ASSERT_EQ(results.size(), request.size());
    for (std::size_t i = 0; i < request.size(); ++i) {
        EXPECT_EQ(results[i].server, request[i]);
    }
    // The duplicated server assesses identically both times.
    expect_identical(results[1].assessment, results[3].assessment);
}

TEST(BatchAssessor, UnknownServerThrowsOutOfRange) {
    const repsys::FeedbackStore store = mixed_store();
    BatchAssessorConfig config;
    config.assessment = assessment_config();
    config.threads = 2;
    const BatchAssessor assessor{config, beta_trust(), shared_cal()};
    EXPECT_THROW((void)assessor.assess(store, {1, 999}), std::out_of_range);
}

TEST(BatchAssessor, NullTrustFunctionRejected) {
    EXPECT_THROW(BatchAssessor(BatchAssessorConfig{}, nullptr, shared_cal()),
                 std::invalid_argument);
}

TEST(BatchAssessor, EmptyRequestYieldsEmptyResult) {
    const repsys::FeedbackStore store = mixed_store();
    BatchAssessorConfig config;
    config.threads = 2;
    const BatchAssessor assessor{config, beta_trust(), shared_cal()};
    EXPECT_TRUE(assessor.assess(store, {}).empty());
}

// --- incremental mode ------------------------------------------------------

/// Streams a whole tape through observe() and ingests it into the store.
void stream(repsys::FeedbackStore& store, BatchAssessor& assessor,
            repsys::EntityId server, std::size_t length, double p_before,
            double p_after) {
    stats::Rng rng{0x5eedULL + server};
    for (std::size_t i = 0; i < length; ++i) {
        const double p = i < length / 2 ? p_before : p_after;
        const repsys::Feedback feedback{
            static_cast<repsys::Timestamp>(i + 1), server,
            static_cast<repsys::EntityId>(300 + i % 7),
            rng.bernoulli(p) ? repsys::Rating::kPositive
                             : repsys::Rating::kNegative};
        store.submit(feedback);
        assessor.observe(feedback);
    }
}

TEST(BatchAssessorIncremental, ShortcutsFromStandingScreenerState) {
    repsys::FeedbackStore store{4};
    BatchAssessorConfig config;
    config.assessment = assessment_config();
    config.threads = 2;
    config.incremental = true;
    BatchAssessor assessor{config, beta_trust(), shared_cal()};

    stream(store, assessor, 1, 800, 0.96, 0.96);  // honest throughout
    stream(store, assessor, 2, 800, 0.96, 0.05);  // flips mid-stream
    stream(store, assessor, 3, 15, 0.90, 0.90);   // too short to judge
    ASSERT_EQ(assessor.tracked_streams(), 3u);
    ASSERT_EQ(assessor.stream_state(1), core::StreamState::kClear);
    ASSERT_EQ(assessor.stream_state(2), core::StreamState::kSuspicious);
    ASSERT_EQ(assessor.stream_state(3), core::StreamState::kInsufficient);
    ASSERT_EQ(assessor.stream_state(99), core::StreamState::kInsufficient);

    const auto results = assessor.assess(store, {1, 2, 3});

    // Clear stream: phase 1 answered from the screener, phase 2 still the
    // real trust function on the real history.
    EXPECT_EQ(results[0].assessment.verdict, core::Verdict::kAssessed);
    ASSERT_TRUE(results[0].assessment.trust.has_value());
    EXPECT_DOUBLE_EQ(
        *results[0].assessment.trust,
        assessor.assessor().trust_function().evaluate(store.history(1).view()));

    // Suspicious stream: rejected without a rescan, no trust value.
    EXPECT_EQ(results[1].assessment.verdict, core::Verdict::kSuspicious);
    EXPECT_FALSE(results[1].assessment.trust.has_value());
    EXPECT_FALSE(results[1].assessment.screening.passed);
    EXPECT_TRUE(results[1].assessment.screening.sufficient);

    // Insufficient stream: falls through to the full two-phase scan.
    const core::TwoPhaseAssessor sequential{assessment_config(), beta_trust(),
                                            shared_cal()};
    expect_identical(results[2].assessment, sequential.assess(store.history(3)));
}

TEST(BatchAssessorIncremental, StreamInfoMirrorsTheLiveScreener) {
    repsys::FeedbackStore store{4};
    BatchAssessorConfig config;
    config.assessment = assessment_config();
    config.incremental = true;
    config.screener_horizon = 8;
    BatchAssessor assessor{config, beta_trust(), shared_cal()};

    stream(store, assessor, 1, 400, 0.95, 0.95);
    const auto info = assessor.stream_info(1);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->state, assessor.stream_state(1));
    EXPECT_EQ(info->transactions, 400u);
    const std::size_t m = config.assessment.test.base.window_size;
    EXPECT_EQ(info->windows, 400u / m);
    EXPECT_EQ(info->horizon, 8u);
    EXPECT_LE(info->retained_windows, 8u);
    EXPECT_GT(info->evaluations, 0u);
    EXPECT_GT(info->p_hat, 0.5);
    EXPECT_LE(info->p_hat, 1.0);
    EXPECT_GT(info->memory_bytes, 0u);

    // Never-observed servers and a disabled bank answer nullopt.
    EXPECT_FALSE(assessor.stream_info(99).has_value());
    BatchAssessorConfig batch_only;
    batch_only.assessment = assessment_config();
    batch_only.incremental = false;
    const BatchAssessor oracle{batch_only, beta_trust(), shared_cal()};
    EXPECT_FALSE(oracle.stream_info(1).has_value());
}

TEST(BatchAssessorIncremental, ObserveIsNoOpWhenDisabled) {
    repsys::FeedbackStore store{4};
    BatchAssessorConfig config;
    config.assessment = assessment_config();
    config.threads = 1;
    config.incremental = false;  // opt out of the streaming default
    BatchAssessor assessor{config, beta_trust(), shared_cal()};
    assessor.observe(repsys::Feedback{1, 1, 2, repsys::Rating::kPositive});
    EXPECT_EQ(assessor.tracked_streams(), 0u);
    EXPECT_EQ(assessor.stream_state(1), core::StreamState::kInsufficient);
    EXPECT_EQ(assessor.stream_memory_bytes(), 0u);
}

TEST(BatchAssessorIncremental, StreamingIsTheDefaultServingMode) {
    const BatchAssessorConfig config;
    EXPECT_TRUE(config.incremental);
    EXPECT_GT(config.screener_horizon, 0u);  // bounded out of the box

    BatchAssessorConfig used = config;
    used.assessment = assessment_config();
    used.threads = 1;
    BatchAssessor assessor{used, beta_trust(), shared_cal()};
    assessor.observe(repsys::Feedback{1, 7, 2, repsys::Rating::kPositive});
    EXPECT_EQ(assessor.tracked_streams(), 1u);
    EXPECT_GT(assessor.stream_memory_bytes(), 0u);
}

TEST(BatchAssessorIncremental, AssessBatchIsTheOracleAndIgnoresTheBank) {
    // Store history: honest.  Streamed history: an all-bad alternation
    // that flags the screener.  assess() must follow the stream,
    // assess_batch() must follow the store.
    repsys::FeedbackStore store{4};
    stats::Rng rng{77};
    for (int i = 0; i < 600; ++i) {
        store.submit(repsys::Feedback{static_cast<repsys::Timestamp>(i + 1), 1, 2,
                                      rng.bernoulli(0.95)
                                          ? repsys::Rating::kPositive
                                          : repsys::Rating::kNegative});
    }
    BatchAssessorConfig config;
    config.assessment = assessment_config();
    config.threads = 1;
    BatchAssessor assessor{config, beta_trust(), shared_cal()};
    std::size_t fed = 0;
    while (assessor.stream_state(1) != core::StreamState::kSuspicious &&
           fed < 2000) {
        const bool good = fed / 10 % 2 == 0;  // alternating windows
        assessor.observe(repsys::Feedback{static_cast<repsys::Timestamp>(fed + 1),
                                          1, 2,
                                          good ? repsys::Rating::kPositive
                                               : repsys::Rating::kNegative});
        ++fed;
    }
    ASSERT_EQ(assessor.stream_state(1), core::StreamState::kSuspicious);

    const auto streaming = assessor.assess(store, {1});
    EXPECT_EQ(streaming[0].assessment.verdict, core::Verdict::kSuspicious);
    const auto oracle = assessor.assess_batch(store, {1});
    EXPECT_EQ(oracle[0].assessment.verdict, core::Verdict::kAssessed);
    // And the oracle stays bit-identical to the sequential assessor.
    const core::TwoPhaseAssessor sequential{assessment_config(), beta_trust(),
                                            shared_cal()};
    expect_identical(oracle[0].assessment, sequential.assess(store.history(1)));
}

TEST(BatchAssessorIncremental, StoreEvictionReleasesScreeners) {
    repsys::FeedbackStore store{4};
    BatchAssessorConfig config;
    config.assessment = assessment_config();
    config.threads = 1;
    BatchAssessor assessor{config, beta_trust(), shared_cal()};
    for (repsys::EntityId server = 1; server <= 6; ++server) {
        // Servers 1-3 have only old feedback; 4-6 have fresh feedback too.
        store.submit(repsys::Feedback{1, server, 9, repsys::Rating::kPositive});
        if (server > 3) {
            store.submit(repsys::Feedback{50, server, 9, repsys::Rating::kPositive});
        }
        assessor.observe(repsys::Feedback{1, server, 9, repsys::Rating::kPositive});
    }
    ASSERT_EQ(assessor.tracked_streams(), 6u);

    std::vector<repsys::EntityId> forgotten;
    (void)store.evict_before(10, &forgotten);
    EXPECT_EQ(forgotten, (std::vector<repsys::EntityId>{1, 2, 3}));
    EXPECT_EQ(assessor.drop_streams(forgotten), 3u);
    EXPECT_EQ(assessor.tracked_streams(), 3u);
    EXPECT_EQ(assessor.stream_state(1), core::StreamState::kInsufficient);

    // evict_streams reconciles against the store directly: nothing stale
    // remains now, so it drops nothing.
    EXPECT_EQ(assessor.evict_streams(store), 0u);
    store.evict_before(100);  // forget everyone
    EXPECT_EQ(assessor.evict_streams(store), 3u);
    EXPECT_EQ(assessor.tracked_streams(), 0u);
}

TEST(BatchAssessorIncremental, HorizonBoundsStreamMemory) {
    BatchAssessorConfig config;
    config.assessment = assessment_config();
    config.threads = 1;
    config.screener_horizon = 8;
    BatchAssessor assessor{config, beta_trust(), shared_cal()};
    stats::Rng rng{78};
    const auto feed = [&](std::size_t count, repsys::Timestamp start) {
        for (std::size_t i = 0; i < count; ++i) {
            assessor.observe(repsys::Feedback{
                start + static_cast<repsys::Timestamp>(i), 1, 2,
                rng.bernoulli(0.9) ? repsys::Rating::kPositive
                                   : repsys::Rating::kNegative});
        }
    };
    feed(100, 1);
    const std::size_t bytes_young = assessor.stream_memory_bytes();
    ASSERT_GT(bytes_young, 0u);
    feed(10000, 101);
    EXPECT_EQ(assessor.stream_memory_bytes(), bytes_young)
        << "a horizon-bounded stream must not grow with age";
}

}  // namespace
}  // namespace hpr::serve
