// Stress test: decision tracing at sample rate 1.0 while parallel batch
// assessment hammers the sharded store.  Proves the TraceRing's
// multi-producer push keeps its conservation law (pushed == evicted +
// drained + resident) and that every record that survives the race still
// round-trips the JSONL schema — no torn or corrupt records.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/two_phase.h"
#include "obs/trace.h"
#include "repsys/store.h"
#include "repsys/trust.h"
#include "serve/batch_assessor.h"
#include "stats/calibrate.h"
#include "stats/rng.h"

namespace hpr::obs {
namespace {

/// Restores the process-wide tracer's knobs on scope exit, so this suite
/// cannot leak tracing state into other tests in the binary.
class TracerGuard {
public:
    TracerGuard()
        : enabled_(default_tracer().active()),
          rate_(default_tracer().sample_rate()) {}
    ~TracerGuard() {
        default_tracer().set_enabled(enabled_);
        default_tracer().set_sample_rate(rate_);
    }

private:
    bool enabled_;
    double rate_;
};

TEST(TraceStress, RingConservesRecordsUnderParallelAssessment) {
    const TracerGuard guard;
    Tracer& tracer = default_tracer();
    (void)tracer.ring().drain();  // start from an empty ring
    tracer.set_sample_rate(1.0);
    tracer.set_enabled(true);
    const std::uint64_t pushed_before = tracer.ring().pushed();
    const std::uint64_t evicted_before = tracer.ring().evicted();

    // A population big enough that repeated assess_all rounds overflow the
    // default 256-record ring, so eviction accounting is exercised too.
    constexpr std::size_t kServers = 24;
    constexpr std::size_t kPerServer = 400;
    repsys::FeedbackStore store{8};
    for (repsys::EntityId s = 1; s <= kServers; ++s) {
        stats::Rng rng{0x7aceULL + s};
        std::vector<repsys::Feedback> tape;
        const double p = s % 5 == 0 ? 0.55 : 0.93;
        for (std::size_t i = 0; i < kPerServer; ++i) {
            tape.push_back(repsys::Feedback{
                static_cast<repsys::Timestamp>(i + 1), s,
                static_cast<repsys::EntityId>(700 + i % 11),
                rng.bernoulli(p) ? repsys::Rating::kPositive
                                 : repsys::Rating::kNegative});
        }
        store.submit(tape);
    }

    serve::BatchAssessorConfig config;
    config.assessment.mode = core::ScreeningMode::kMulti;
    config.threads = 4;
    const serve::BatchAssessor assessor{
        config,
        std::shared_ptr<const repsys::TrustFunction>{
            repsys::make_trust_function("beta")},
        core::make_calibrator(config.assessment.test.base)};

    // Writers keep extending the population while assessment rounds run
    // concurrently — every assess() call traces one DecisionRecord.  The
    // round count is sized so pushed records exceed the 256-slot ring and
    // wrap-around eviction happens under the race.
    std::vector<std::thread> pool;
    for (std::size_t w = 0; w < 2; ++w) {
        pool.emplace_back([&store, w] {
            const auto server = static_cast<repsys::EntityId>(kServers + 1 + w);
            for (std::size_t i = 0; i < 800; ++i) {
                store.submit(repsys::Feedback{
                    static_cast<repsys::Timestamp>(i + 1), server,
                    static_cast<repsys::EntityId>(900 + w),
                    repsys::Rating::kPositive});
            }
        });
    }
    for (std::size_t a = 0; a < 3; ++a) {
        pool.emplace_back([&] {
            for (int round = 0; round < 4; ++round) {
                const auto results = assessor.assess_all(store);
                ASSERT_GE(results.size(), kServers);
            }
        });
    }
    for (auto& worker : pool) worker.join();

    // Conservation: every record ever pushed is either still resident,
    // was evicted by wrap-around, or is in this drain.
    const auto records = tracer.ring().drain();
    const std::uint64_t pushed = tracer.ring().pushed() - pushed_before;
    const std::uint64_t evicted = tracer.ring().evicted() - evicted_before;
    EXPECT_EQ(tracer.ring().size(), 0u);
    EXPECT_EQ(pushed, evicted + records.size());
    // 3 assessors x 4 rounds x >= kServers servers, all sampled — more
    // than the ring holds, so some eviction must have been counted.
    EXPECT_GE(pushed, 12u * kServers);
    EXPECT_GT(evicted, 0u);
    EXPECT_GT(records.size(), 0u);

    // No torn records: every survivor carries a full, schema-valid
    // evidence payload and round-trips the JSONL codec field for field.
    for (const auto& record : records) {
        EXPECT_EQ(record.source, "two_phase");
        EXPECT_GT(record.server, 0u);
        EXPECT_FALSE(record.verdict.empty());
        const std::string line = to_jsonl(record);
        DecisionRecord parsed;
        ASSERT_TRUE(from_jsonl(line, parsed)) << line;
        EXPECT_EQ(parsed.trace_id, record.trace_id);
        EXPECT_EQ(parsed.source, record.source);
        EXPECT_EQ(parsed.server, record.server);
        EXPECT_EQ(parsed.verdict, record.verdict);
        EXPECT_EQ(parsed.trust, record.trust);
        EXPECT_EQ(parsed.mode, record.mode);
        EXPECT_EQ(parsed.window_size, record.window_size);
        EXPECT_EQ(parsed.history_length, record.history_length);
        EXPECT_EQ(parsed.p_hat, record.p_hat);
        EXPECT_EQ(parsed.min_margin, record.min_margin);
        EXPECT_EQ(parsed.failed, record.failed);
        EXPECT_EQ(parsed.stages, record.stages);
    }
}

TEST(TraceStress, DisabledTracerStaysSilentUnderConcurrency) {
    const TracerGuard guard;
    Tracer& tracer = default_tracer();
    tracer.set_enabled(false);
    (void)tracer.ring().drain();
    const std::uint64_t pushed_before = tracer.ring().pushed();

    repsys::FeedbackStore store{4};
    for (repsys::EntityId s = 1; s <= 4; ++s) {
        std::vector<repsys::Feedback> tape;
        for (std::size_t i = 0; i < 200; ++i) {
            tape.push_back(repsys::Feedback{
                static_cast<repsys::Timestamp>(i + 1), s,
                static_cast<repsys::EntityId>(800 + s),
                repsys::Rating::kPositive});
        }
        store.submit(tape);
    }
    serve::BatchAssessorConfig config;
    config.assessment.mode = core::ScreeningMode::kMulti;
    config.threads = 4;
    const serve::BatchAssessor assessor{
        config,
        std::shared_ptr<const repsys::TrustFunction>{
            repsys::make_trust_function("beta")},
        core::make_calibrator(config.assessment.test.base)};
    (void)assessor.assess_all(store);

    EXPECT_EQ(tracer.ring().pushed(), pushed_before);
    EXPECT_EQ(tracer.ring().size(), 0u);
}

}  // namespace
}  // namespace hpr::obs
