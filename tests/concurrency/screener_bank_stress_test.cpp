// Multi-threaded stress tests for the incremental screener bank inside
// serve::BatchAssessor, meant to run under -DHPR_SANITIZE=thread and
// address as well as plain builds.  Observers stream disjoint server
// populations while assessment callers and eviction churn hammer the
// same lock-striped bank; afterwards conservation invariants are
// asserted: no lost streams, exact eviction accounting, and screener
// states that match a single-threaded replay of each surviving tape.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/online.h"
#include "repsys/store.h"
#include "repsys/trust.h"
#include "serve/batch_assessor.h"
#include "stats/calibrate.h"
#include "stats/rng.h"

namespace hpr::serve {
namespace {

constexpr std::size_t kThreads = 8;

std::shared_ptr<stats::Calibrator> shared_cal() {
    static auto cal = core::make_calibrator(core::BehaviorTestConfig{});
    return cal;
}

std::shared_ptr<const repsys::TrustFunction> beta_trust() {
    return std::shared_ptr<const repsys::TrustFunction>{
        repsys::make_trust_function("beta")};
}

BatchAssessorConfig bank_config() {
    BatchAssessorConfig config;
    config.assessment.mode = core::ScreeningMode::kMulti;
    config.assessment.test.bonferroni = true;
    config.threads = 2;
    config.screener_horizon = 8;
    return config;
}

repsys::Feedback fb(repsys::Timestamp t, repsys::EntityId server, bool good) {
    return repsys::Feedback{t, server, static_cast<repsys::EntityId>(900 + t % 7),
                            good ? repsys::Rating::kPositive
                                 : repsys::Rating::kNegative};
}

std::vector<bool> make_outcomes(repsys::EntityId server, std::size_t length) {
    stats::Rng rng{0x5c4ee4e4ULL + server};
    const double p = 0.55 + 0.4 * rng.uniform();
    std::vector<bool> outcomes;
    outcomes.reserve(length);
    for (std::size_t i = 0; i < length; ++i) outcomes.push_back(rng.bernoulli(p));
    return outcomes;
}

// 8 observer threads stream disjoint server populations into one bank;
// every stream's final state must equal a single-threaded replay of the
// same tape, and the bank must account for every stream exactly once.
TEST(ScreenerBankStress, DisjointObserversMatchSequentialReplay) {
    constexpr std::size_t kServers = 64;
    constexpr std::size_t kPerServer = 250;
    const auto config = bank_config();
    BatchAssessor bank{config, beta_trust(), shared_cal()};

    std::vector<std::thread> pool;
    for (std::size_t t = 0; t < kThreads; ++t) {
        pool.emplace_back([&, t] {
            for (repsys::EntityId s = 1; s <= kServers; ++s) {
                if (s % kThreads != t % kThreads) continue;
                const auto outcomes = make_outcomes(s, kPerServer);
                for (std::size_t i = 0; i < outcomes.size(); ++i) {
                    bank.observe(fb(static_cast<repsys::Timestamp>(i + 1), s,
                                    outcomes[i]));
                }
            }
        });
    }
    for (auto& worker : pool) worker.join();

    ASSERT_EQ(bank.tracked_streams(), kServers);
    EXPECT_GT(bank.stream_memory_bytes(), 0u);
    for (repsys::EntityId s = 1; s <= kServers; ++s) {
        core::OnlineScreenerConfig screener_config;
        screener_config.test = config.assessment.test;
        screener_config.patience = config.patience;
        screener_config.recovery = config.recovery;
        screener_config.max_windows = config.screener_horizon;
        core::OnlineScreener replay{screener_config, shared_cal()};
        for (const bool good : make_outcomes(s, kPerServer)) replay.observe(good);
        ASSERT_EQ(bank.stream_state(s), replay.state()) << "server " << s;
    }
}

// Observers, assessment callers, and eviction churn run concurrently.
// The bank must stay consistent: dropped counts sum to exactly the
// number of evicted servers, surviving streams replay correctly, and
// assess() keeps answering throughout (TSan/ASan validate the rest).
TEST(ScreenerBankStress, ObserversAssessorsAndEvictionChurn) {
    constexpr std::size_t kServers = 48;      // 6 per observer thread
    constexpr std::size_t kPerServer = 400;
    constexpr std::size_t kEvictServers = 16; // churned by the evictor
    const auto config = bank_config();
    BatchAssessor bank{config, beta_trust(), shared_cal()};

    // A store for the assessment callers: modest honest histories, plus
    // rows for the churned servers so assess() can always resolve them.
    repsys::FeedbackStore store{8};
    std::vector<repsys::EntityId> all_servers;
    {
        std::vector<repsys::Feedback> seed;
        for (repsys::EntityId s = 1; s <= kServers; ++s) {
            all_servers.push_back(s);
            stats::Rng rng{0xfeedULL + s};
            for (std::size_t i = 0; i < 60; ++i) {
                seed.push_back(fb(static_cast<repsys::Timestamp>(i + 1), s,
                                  rng.bernoulli(0.9)));
            }
        }
        store.submit(seed);
    }

    std::atomic<bool> stop{false};
    std::atomic<std::size_t> total_dropped{0};
    std::vector<std::thread> pool;

    // 5 observer threads over disjoint non-churned servers.
    constexpr std::size_t kObservers = 5;
    for (std::size_t t = 0; t < kObservers; ++t) {
        pool.emplace_back([&, t] {
            for (repsys::EntityId s = kEvictServers + 1; s <= kServers; ++s) {
                if ((s - kEvictServers - 1) % kObservers != t) continue;
                const auto outcomes = make_outcomes(s, kPerServer);
                for (std::size_t i = 0; i < outcomes.size(); ++i) {
                    bank.observe(fb(static_cast<repsys::Timestamp>(i + 1), s,
                                    outcomes[i]));
                }
            }
        });
    }
    // 2 assessment callers: streaming-first batches racing the observers.
    for (std::size_t t = 0; t < 2; ++t) {
        pool.emplace_back([&] {
            while (!stop.load(std::memory_order_relaxed)) {
                const auto results = bank.assess(store, all_servers);
                EXPECT_EQ(results.size(), all_servers.size());
            }
        });
    }
    // 1 evictor: keeps re-creating and dropping the churn population.
    pool.emplace_back([&] {
        std::vector<repsys::EntityId> churn;
        for (repsys::EntityId s = 1; s <= kEvictServers; ++s) churn.push_back(s);
        for (int round = 0; round < 40; ++round) {
            for (const auto s : churn) {
                for (std::size_t i = 0; i < 25; ++i) {
                    bank.observe(fb(static_cast<repsys::Timestamp>(
                                        round * 25 + i + 1),
                                    s, i % 5 != 0));
                }
            }
            total_dropped.fetch_add(bank.drop_streams(churn),
                                    std::memory_order_relaxed);
        }
    });

    // Join the bounded workers, then release the assess loops.
    pool[0].join();
    for (std::size_t t = 1; t < kObservers; ++t) pool[t].join();
    pool.back().join();
    stop.store(true, std::memory_order_relaxed);
    for (std::size_t t = kObservers; t < kObservers + 2; ++t) pool[t].join();

    // Conservation: every churn round re-created kEvictServers streams and
    // dropped them again, so exactly 40 * kEvictServers drops happened and
    // only the observer-owned streams survive.
    EXPECT_EQ(total_dropped.load(), 40u * kEvictServers);
    EXPECT_EQ(bank.tracked_streams(), kServers - kEvictServers);
    for (repsys::EntityId s = kEvictServers + 1; s <= kServers; ++s) {
        core::OnlineScreenerConfig screener_config;
        screener_config.test = config.assessment.test;
        screener_config.patience = config.patience;
        screener_config.recovery = config.recovery;
        screener_config.max_windows = config.screener_horizon;
        core::OnlineScreener replay{screener_config, shared_cal()};
        for (const bool good : make_outcomes(s, kPerServer)) replay.observe(good);
        ASSERT_EQ(bank.stream_state(s), replay.state()) << "server " << s;
    }
}

}  // namespace
}  // namespace hpr::serve
