// Scrape-during-ingest stress for the introspection daemon, meant to run
// under -DHPR_SANITIZE=thread and address as well as plain builds.  Eight
// threads hammer the live tree — ingest writers, an assessment caller,
// direct tree readers, and real HTTP scrapers through the epoll server —
// while the pages they read are rendered from the same lock-striped
// state the writers mutate.  Sanitizers validate the synchronization;
// the assertions validate that every scrape kept answering.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "net/endpoints.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "obs/introspection.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "repsys/store.h"
#include "repsys/trust.h"
#include "serve/batch_assessor.h"
#include "stats/calibrate.h"
#include "stats/rng.h"

namespace hpr::net {
namespace {

std::shared_ptr<stats::Calibrator> shared_cal() {
    static auto cal = core::make_calibrator(core::BehaviorTestConfig{});
    return cal;
}

repsys::Feedback fb(repsys::Timestamp t, repsys::EntityId server, bool good) {
    return repsys::Feedback{t, server, static_cast<repsys::EntityId>(900 + t % 7),
                            good ? repsys::Rating::kPositive
                                 : repsys::Rating::kNegative};
}

// 2 ingest writers + 1 assessment caller + 2 direct tree readers +
// 3 HTTP scrapers = 8 threads over one shared daemon state.
TEST(IntrospectionStress, ScrapersStayConsistentDuringIngest) {
    constexpr std::size_t kServers = 24;
    constexpr std::size_t kPerServer = 300;

    repsys::FeedbackStore store{8};
    serve::BatchAssessorConfig config;
    config.assessment.mode = core::ScreeningMode::kMulti;
    config.assessment.test.bonferroni = true;
    config.threads = 2;
    config.screener_horizon = 8;
    serve::BatchAssessor assessor{
        config,
        std::shared_ptr<const repsys::TrustFunction>{
            repsys::make_trust_function("beta")},
        shared_cal()};
    obs::Tracer tracer{{.ring_capacity = 128, .enabled = true}};
    tracer.ring().push([] {
        obs::DecisionRecord record;
        record.trace_id = 1;
        record.source = "online_screener";
        record.server = 1;
        record.verdict = "clear";
        return record;
    }());

    obs::IntrospectionTree tree;
    IntrospectionSources sources;
    sources.registry = &obs::default_registry();
    sources.tracer = &tracer;
    sources.store = &store;
    sources.assessor = &assessor;
    sources.calibrator = shared_cal();
    register_introspection(tree, sources);

    HttpServer server{{}, make_http_handler(tree)};
    server.start();
    const std::uint16_t port = server.port();

    // Seed every server so the assessment caller can always resolve its
    // whole batch; the writers continue each history past the seed.
    constexpr std::size_t kSeed = 10;
    std::vector<repsys::EntityId> all_servers;
    {
        std::vector<repsys::Feedback> seed;
        for (repsys::EntityId s = 1; s <= kServers; ++s) {
            all_servers.push_back(s);
            for (std::size_t i = 0; i < kSeed; ++i) {
                seed.push_back(
                    fb(static_cast<repsys::Timestamp>(i + 1), s, true));
            }
        }
        store.submit(seed);
    }

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> scrapes{0};
    std::atomic<std::uint64_t> scrape_failures{0};
    std::atomic<std::uint64_t> tree_reads{0};
    std::vector<std::thread> pool;

    // 2 ingest writers over disjoint servers: store + screener bank.
    for (std::size_t t = 0; t < 2; ++t) {
        pool.emplace_back([&, t] {
            for (repsys::EntityId s = 1; s <= kServers; ++s) {
                if (s % 2 != t) continue;
                stats::Rng rng{0x1157ULL + s};
                for (std::size_t i = 0; i < kPerServer; ++i) {
                    const auto feedback = fb(
                        static_cast<repsys::Timestamp>(kSeed + i + 1), s,
                        rng.bernoulli(0.93));
                    store.submit(feedback);
                    assessor.observe(feedback);
                }
            }
        });
    }
    // 1 assessment caller racing the writers.
    pool.emplace_back([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            const auto results = assessor.assess(store, all_servers);
            EXPECT_EQ(results.size(), all_servers.size());
        }
    });
    // 2 direct tree readers (the transport-free path).
    for (std::size_t t = 0; t < 2; ++t) {
        pool.emplace_back([&] {
            const char* const targets[] = {"/servers", "/store", "/traces?n=8",
                                           "/metrics", "/servers/1"};
            std::size_t i = 0;
            do {  // at least one read each, even if the writers finish first
                const auto page = tree.get(targets[i++ % 5]);
                EXPECT_TRUE(page.status == 200 || page.status == 404);
                tree_reads.fetch_add(1, std::memory_order_relaxed);
            } while (!stop.load(std::memory_order_relaxed));
        });
    }
    // 3 HTTP scrapers through the real epoll server.
    for (std::size_t t = 0; t < 3; ++t) {
        pool.emplace_back([&, t] {
            const char* const targets[] = {"/metrics", "/servers?limit=8",
                                           "/metrics.json", "/healthz",
                                           "/traces?n=4", "/store",
                                           "/calibration"};
            std::size_t i = t;
            do {  // at least one scrape each, even if the writers finish first
                const auto result =
                    http_get("127.0.0.1", port, targets[i++ % 7], 5.0);
                if (!result || result->status != 200 || result->body.empty()) {
                    scrape_failures.fetch_add(1, std::memory_order_relaxed);
                } else {
                    scrapes.fetch_add(1, std::memory_order_relaxed);
                }
            } while (!stop.load(std::memory_order_relaxed));
        });
    }

    // Writers are bounded; join them, then release the loops.
    pool[0].join();
    pool[1].join();
    stop.store(true, std::memory_order_relaxed);
    for (std::size_t t = 2; t < pool.size(); ++t) pool[t].join();
    server.stop();

    EXPECT_EQ(store.server_count(), kServers);
    EXPECT_EQ(store.size(), kServers * (kSeed + kPerServer));
    EXPECT_EQ(assessor.tracked_streams(), kServers);
    EXPECT_GT(scrapes.load(), 0u);
    EXPECT_GT(tree_reads.load(), 0u);
    EXPECT_EQ(scrape_failures.load(), 0u);

    // A final quiescent scrape agrees with the settled state.
    const auto page = tree.get("/servers");
    EXPECT_NE(page.body.find("# servers=" + std::to_string(kServers)),
              std::string::npos);
}

}  // namespace
}  // namespace hpr::net
