// Multi-threaded stress tests for the sharded FeedbackStore, meant to run
// under -DHPR_SANITIZE=thread as well as plain builds.  Each test hammers
// the store from 8 threads and then asserts conservation invariants: total
// size, per-server time ordering, no lost or duplicated feedback.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "core/two_phase.h"
#include "repsys/store.h"
#include "repsys/trust.h"
#include "serve/batch_assessor.h"
#include "stats/calibrate.h"
#include "stats/rng.h"

namespace hpr::repsys {
namespace {

constexpr std::size_t kThreads = 8;

Feedback fb(Timestamp t, EntityId server, bool good) {
    return Feedback{t, server, static_cast<EntityId>(500 + t % 13),
                    good ? Rating::kPositive : Rating::kNegative};
}

/// Per-server tape for a thread-owned server (owner = server % kThreads).
std::vector<Feedback> make_tape(EntityId server, std::size_t length) {
    stats::Rng rng{0xc0ffeeULL + server};
    std::vector<Feedback> tape;
    tape.reserve(length);
    for (std::size_t i = 0; i < length; ++i) {
        tape.push_back(fb(static_cast<Timestamp>(i + 1), server,
                          rng.bernoulli(0.9)));
    }
    return tape;
}

TEST(StoreConcurrency, ConcurrentSubmitConservesEveryFeedback) {
    constexpr std::size_t kServers = 64;
    constexpr std::size_t kPerServer = 300;
    FeedbackStore store{16};
    std::map<EntityId, std::vector<Feedback>> expected;
    for (EntityId s = 1; s <= kServers; ++s) {
        expected[s] = make_tape(s, kPerServer);
    }

    // Thread t owns servers with s % kThreads == t (disjoint ownership
    // keeps per-server submission time-ordered); even servers arrive one
    // feedback at a time, odd servers in 97-feedback batches, so both
    // submit paths run concurrently against shared shards.
    std::vector<std::thread> pool;
    for (std::size_t t = 0; t < kThreads; ++t) {
        pool.emplace_back([&, t] {
            for (EntityId s = 1; s <= kServers; ++s) {
                if (s % kThreads != t) continue;
                const auto& tape = expected.at(s);
                if (s % 2 == 0) {
                    for (const auto& feedback : tape) store.submit(feedback);
                } else {
                    std::vector<Feedback> batch;
                    for (const auto& feedback : tape) {
                        batch.push_back(feedback);
                        if (batch.size() == 97) {
                            store.submit(batch);
                            batch.clear();
                        }
                    }
                    if (!batch.empty()) store.submit(batch);
                }
            }
        });
    }
    for (auto& worker : pool) worker.join();

    ASSERT_EQ(store.size(), kServers * kPerServer);
    ASSERT_EQ(store.server_count(), kServers);
    const auto servers = store.servers();
    ASSERT_EQ(servers.size(), kServers);
    for (const auto server : servers) {
        // Bit-identical to the tape: nothing lost, duplicated or reordered.
        ASSERT_EQ(store.history(server).feedbacks(), expected.at(server))
            << "server " << server;
    }
}

TEST(StoreConcurrency, SnapshotsStayConsistentUnderConcurrentWrites) {
    constexpr std::size_t kWriters = 4;
    constexpr std::size_t kReaders = 4;
    constexpr std::size_t kPerServer = 2000;
    FeedbackStore store{8};
    // One server per writer; every reader polls all of them.
    std::atomic<bool> done{false};
    std::vector<std::thread> pool;
    for (std::size_t w = 0; w < kWriters; ++w) {
        pool.emplace_back([&, w] {
            const auto server = static_cast<EntityId>(w + 1);
            stats::Rng rng{0xfaceULL + w};
            for (std::size_t i = 0; i < kPerServer; ++i) {
                store.submit(fb(static_cast<Timestamp>(i + 1), server,
                                rng.bernoulli(0.9)));
            }
        });
    }
    std::atomic<std::size_t> snapshots_checked{0};
    for (std::size_t r = 0; r < kReaders; ++r) {
        pool.emplace_back([&] {
            while (!done.load(std::memory_order_acquire)) {
                for (const auto server : store.servers()) {
                    const TransactionHistory snapshot =
                        store.history_snapshot(server);
                    // A snapshot is always a valid time-ordered prefix of
                    // the writer's tape, whatever instant it was taken at.
                    ASSERT_LE(snapshot.size(), kPerServer);
                    ASSERT_LE(snapshot.good_count(), snapshot.size());
                    for (std::size_t i = 1; i < snapshot.size(); ++i) {
                        ASSERT_LE(snapshot[i - 1].time, snapshot[i].time);
                        ASSERT_EQ(snapshot[i].time,
                                  static_cast<Timestamp>(i + 1));
                    }
                    snapshots_checked.fetch_add(1, std::memory_order_relaxed);
                }
                ASSERT_LE(store.size(), kWriters * kPerServer);
            }
        });
    }
    for (std::size_t w = 0; w < kWriters; ++w) pool[w].join();
    done.store(true, std::memory_order_release);
    for (std::size_t r = 0; r < kReaders; ++r) pool[kWriters + r].join();

    EXPECT_EQ(store.size(), kWriters * kPerServer);
    EXPECT_GT(snapshots_checked.load(), 0u);
}

TEST(StoreConcurrency, EvictionInterleavedWithIngestConserves) {
    constexpr std::size_t kWriters = 6;
    constexpr std::size_t kPerServer = 1500;
    FeedbackStore store{8};
    std::atomic<std::size_t> evicted_total{0};
    std::vector<std::thread> pool;
    for (std::size_t w = 0; w < kWriters; ++w) {
        pool.emplace_back([&, w] {
            const auto server = static_cast<EntityId>(w + 1);
            for (std::size_t i = 0; i < kPerServer; ++i) {
                store.submit(fb(static_cast<Timestamp>(i + 1), server, true));
            }
        });
    }
    pool.emplace_back([&] {
        // Retention sweeps racing the writers; each returns how much it
        // actually removed.
        for (int sweep = 0; sweep < 20; ++sweep) {
            evicted_total.fetch_add(store.evict_before(100),
                                    std::memory_order_relaxed);
        }
    });
    for (auto& worker : pool) worker.join();

    const std::size_t final_removed = store.evict_before(100);
    evicted_total.fetch_add(final_removed, std::memory_order_relaxed);
    // Conservation: every submitted feedback is either still resident or
    // was counted by exactly one eviction sweep.
    EXPECT_EQ(store.size() + evicted_total.load(), kWriters * kPerServer);
    // Exactly the t < 100 prefix is gone from every server.
    for (const auto server : store.servers()) {
        const auto& history = store.history(server);
        ASSERT_EQ(history.size(), kPerServer - 99);
        ASSERT_EQ(history[0].time, 100);
    }
}

TEST(StoreConcurrency, AssessmentRacesIngestSafely) {
    // Writers extend a live population while a BatchAssessor repeatedly
    // assesses the servers that existed at the start — the serving-path
    // race the sharded store exists to make safe.
    constexpr std::size_t kServers = 12;
    constexpr std::size_t kWarm = 200;
    constexpr std::size_t kExtra = 1200;
    FeedbackStore store{8};
    for (EntityId s = 1; s <= kServers; ++s) {
        std::vector<Feedback> warm;
        for (std::size_t i = 0; i < kWarm; ++i) {
            warm.push_back(fb(static_cast<Timestamp>(i + 1), s, i % 10 != 0));
        }
        store.submit(warm);
    }

    serve::BatchAssessorConfig config;
    config.assessment.mode = core::ScreeningMode::kMulti;
    config.threads = 4;
    const serve::BatchAssessor assessor{
        config,
        std::shared_ptr<const repsys::TrustFunction>{
            repsys::make_trust_function("beta")},
        core::make_calibrator(config.assessment.test.base)};
    const std::vector<EntityId> population = store.servers();

    std::atomic<bool> done{false};
    std::vector<std::thread> pool;
    for (std::size_t w = 0; w < 4; ++w) {
        pool.emplace_back([&, w] {
            stats::Rng rng{0xdeadULL + w};
            for (std::size_t i = 0; i < kExtra; ++i) {
                const auto server =
                    static_cast<EntityId>(1 + (w * kServers / 4) + i % (kServers / 4));
                store.submit(fb(static_cast<Timestamp>(kWarm + i + 1), server,
                                rng.bernoulli(0.9)));
            }
        });
    }
    std::atomic<std::size_t> batches{0};
    for (std::size_t a = 0; a < 2; ++a) {
        pool.emplace_back([&] {
            while (!done.load(std::memory_order_acquire)) {
                const auto results = assessor.assess(store, population);
                ASSERT_EQ(results.size(), population.size());
                for (std::size_t i = 0; i < results.size(); ++i) {
                    ASSERT_EQ(results[i].server, population[i]);
                }
                batches.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    for (std::size_t w = 0; w < 4; ++w) pool[w].join();
    done.store(true, std::memory_order_release);
    for (std::size_t a = 0; a < 2; ++a) pool[4 + a].join();

    EXPECT_GT(batches.load(), 0u);
    EXPECT_EQ(store.size(), kServers * kWarm + 4 * kExtra);
    // The post-race store is still fully assessable and deterministic.
    const auto after = assessor.assess(store, population);
    const auto again = assessor.assess(store, population);
    for (std::size_t i = 0; i < after.size(); ++i) {
        ASSERT_EQ(after[i].assessment.verdict, again[i].assessment.verdict);
    }
}

}  // namespace
}  // namespace hpr::repsys
