// Flight recorder under fire (obs/flightrecorder.h): writer threads
// hammering the sampled registry, reader threads querying the ring, a
// watchdog evaluating, and black-box publishes — all while the sampler
// thread ticks at an aggressive cadence.  The assertions are about
// invariants (monotone sequences, consistent snapshots, no torn
// reads), not timing.

#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/flightrecorder.h"
#include "obs/watchdog.h"

namespace hpr::obs {
namespace {

TEST(FlightRecorderStress, ConcurrentWritersReadersAndSampler) {
    Registry registry;
    Counter& events = registry.counter("stress_events_total", "stress");
    Gauge& depth = registry.gauge("stress_depth", "stress");
    Histogram& latency =
        registry.histogram("stress_latency_seconds", "stress", {0.001, 0.1});

    FlightRecorder recorder{{.interval_seconds = 0.001, .capacity = 32},
                            registry};
    Watchdog watchdog{{}, registry};
    recorder.set_on_sample(
        [&watchdog](const FlightRecorder& rec, const RecorderSnapshot&) {
            watchdog.evaluate(rec);
        });
    recorder.start();

    std::atomic<bool> stop{false};
    std::vector<std::thread> workers;
    // Writers mutate the registry the sampler is visiting.
    for (int w = 0; w < 3; ++w) {
        workers.emplace_back([&] {
            std::uint64_t i = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                events.increment();
                depth.set(static_cast<std::int64_t>(i % 100));
                latency.observe(0.0005);
                ++i;
            }
        });
    }
    // Readers race the sampler on the ring.
    std::atomic<bool> invariant_ok{true};
    for (int r = 0; r < 2; ++r) {
        workers.emplace_back([&] {
            while (!stop.load(std::memory_order_relaxed)) {
                const std::vector<RecorderSnapshot> snapshots =
                    recorder.snapshots();
                for (std::size_t i = 1; i < snapshots.size(); ++i) {
                    if (snapshots[i].sequence != snapshots[i - 1].sequence + 1) {
                        invariant_ok.store(false);
                    }
                }
                (void)recorder.series("stress_events_total", 8);
                (void)recorder.metric_names();
                (void)watchdog.last_verdict();
            }
        });
    }

    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    stop.store(true);
    for (std::thread& worker : workers) worker.join();
    recorder.stop();

    EXPECT_TRUE(invariant_ok.load());
    EXPECT_GE(recorder.samples_taken(), 3u);
    EXPECT_LE(recorder.size(), 32u);
    EXPECT_EQ(watchdog.evaluations(), recorder.samples_taken());

    // The final ring is coherent: counter values never decrease along it.
    const std::vector<RecorderSnapshot> final_ring = recorder.snapshots();
    std::uint64_t last_value = 0;
    for (const RecorderSnapshot& snapshot : final_ring) {
        for (const auto& [name, point] : snapshot.points) {
            if (name != "stress_events_total") continue;
            EXPECT_GE(point.value, last_value);
            last_value = point.value;
        }
    }
}

TEST(FlightRecorderStress, PublishRacesRecorderTicks) {
    Registry registry;
    Counter& events = registry.counter("stress_pub_total", "stress");
    FlightRecorder recorder{{.interval_seconds = 0.001, .capacity = 16},
                            registry};

    const std::string path = testing::TempDir() + "blackbox_stress_" +
                             std::to_string(::getpid());
    BlackBox& box = BlackBox::instance();
    ASSERT_TRUE(box.arm(path, 1 << 20));
    recorder.set_on_sample(
        [](const FlightRecorder& rec, const RecorderSnapshot&) {
            BlackBox::instance().publish(render_blackbox(rec, nullptr, nullptr));
        });
    recorder.start();

    std::atomic<bool> stop{false};
    std::thread writer{[&] {
        while (!stop.load(std::memory_order_relaxed)) events.increment();
    }};
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    stop.store(true);
    writer.join();
    recorder.stop();

    EXPECT_GE(box.publishes(), recorder.samples_taken());
    EXPECT_GT(box.staged_bytes(), 0u);
    box.disarm();
    std::remove(path.c_str());
}

}  // namespace
}  // namespace hpr::obs
