// Ingest-under-fire stress for the network write path, meant to run
// under -DHPR_SANITIZE=thread and address as well as plain builds.
// Eight threads share one live daemon: three HTTP ingest writers over
// disjoint server populations, two /assess + /ingest/stats scrapers, a
// direct batch-assessment caller, an eviction churner, and a vandal
// that declares large bodies and disconnects mid-transfer.  Sanitizers
// validate the synchronization; the assertions validate the two
// conservation laws of the gate and the store:
//
//  * records: every record acknowledged with 200 is either resident in
//    the store or was evicted — none lost, none duplicated;
//  * budget: after quiescence the gate's pending charge is zero and
//    released == admitted, even though many connections died mid-body.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "net/endpoints.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "net/ingest.h"
#include "obs/introspection.h"
#include "repsys/store.h"
#include "repsys/trust.h"
#include "serve/batch_assessor.h"

namespace hpr::net {
namespace {

TEST(IngestStress, ConservationHoldsUnderConcurrentChurn) {
    constexpr std::size_t kWriters = 3;
    constexpr std::size_t kRoundsPerWriter = 40;
    constexpr std::size_t kRecordsPerBatch = 20;
    constexpr std::size_t kServersPerWriter = 4;

    repsys::FeedbackStore store{8};
    serve::BatchAssessorConfig assessor_config;
    assessor_config.threads = 2;
    assessor_config.screener_horizon = 8;
    serve::BatchAssessor assessor{
        assessor_config,
        std::shared_ptr<const repsys::TrustFunction>{
            repsys::make_trust_function("beta")}};

    IngestService service{store, assessor};
    obs::IntrospectionTree tree;
    IntrospectionSources sources;
    sources.store = &store;
    sources.assessor = &assessor;
    register_introspection(tree, sources);
    register_ingest(tree, service);

    HttpServerConfig http;
    http.ingest_gate = &service.gate();
    HttpServer server{http, make_http_handler(tree, &service)};
    server.start();
    const std::uint16_t port = server.port();

    // One logical clock for every record: per-server timestamps are then
    // strictly increasing by construction, and the evictor can advance a
    // cutoff that is coherent across writers.
    std::atomic<repsys::Timestamp> clock{0};

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> acknowledged_records{0};
    std::atomic<std::uint64_t> writer_failures{0};
    std::atomic<std::uint64_t> evicted_records{0};
    std::atomic<std::uint64_t> scrape_answers{0};
    std::atomic<std::uint64_t> abandoned_connections{0};
    std::vector<std::thread> pool;

    // 3 HTTP ingest writers over disjoint server id ranges.
    for (std::size_t w = 0; w < kWriters; ++w) {
        pool.emplace_back([&, w] {
            for (std::size_t round = 0; round < kRoundsPerWriter; ++round) {
                const auto server_id = static_cast<repsys::EntityId>(
                    100 + w * kServersPerWriter + round % kServersPerWriter);
                std::string body;
                for (std::size_t i = 0; i < kRecordsPerBatch; ++i) {
                    const repsys::Timestamp t =
                        clock.fetch_add(1, std::memory_order_relaxed) + 1;
                    body += std::to_string(server_id) + ' ' +
                            std::to_string(t) + ' ' +
                            (i % 5 == 0 ? "0" : "1") + '\n';
                }
                const auto posted =
                    http_post("127.0.0.1", port, "/ingest", body, 10.0);
                if (posted && posted->status == 200) {
                    acknowledged_records.fetch_add(
                        kRecordsPerBatch, std::memory_order_relaxed);
                    EXPECT_EQ(posted->body,
                              "accepted=" +
                                  std::to_string(kRecordsPerBatch) + '\n');
                } else {
                    writer_failures.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }

    // 2 HTTP scrapers: /assess over the writers' servers + gate stats.
    for (std::size_t t = 0; t < 2; ++t) {
        pool.emplace_back([&, t] {
            std::size_t i = t;
            do {  // at least one scrape even if the writers win the race
                const auto server_id = 100 + i % (kWriters * kServersPerWriter);
                const auto target =
                    i % 3 == 2 ? std::string{"/ingest/stats"}
                               : "/assess?server=" + std::to_string(server_id);
                const auto page = http_get("127.0.0.1", port, target, 10.0);
                // 404 is legal: the server may be unborn or just evicted.
                if (page && (page->status == 200 || page->status == 404)) {
                    scrape_answers.fetch_add(1, std::memory_order_relaxed);
                }
                ++i;
            } while (!stop.load(std::memory_order_relaxed));
        });
    }

    // 1 direct assessment caller racing ingest and eviction.
    pool.emplace_back([&] {
        do {
            for (std::size_t s = 0; s < kWriters * kServersPerWriter; ++s) {
                try {
                    const auto results = assessor.assess(
                        store, {static_cast<repsys::EntityId>(100 + s)});
                    EXPECT_EQ(results.size(), 1u);
                } catch (const std::out_of_range&) {
                    // Evicted or not yet born — legal at any moment.
                }
            }
        } while (!stop.load(std::memory_order_relaxed));
    });

    // 1 eviction churner: advance a retention cutoff behind the clock
    // and keep the screener bank synchronized with the store.
    pool.emplace_back([&] {
        do {
            const repsys::Timestamp cutoff =
                clock.load(std::memory_order_relaxed) / 2;
            std::vector<repsys::EntityId> forgotten;
            evicted_records.fetch_add(store.evict_before(cutoff, &forgotten),
                                      std::memory_order_relaxed);
            assessor.drop_streams(forgotten);
            std::this_thread::sleep_for(std::chrono::milliseconds{5});
        } while (!stop.load(std::memory_order_relaxed));
    });

    // 1 vandal: declare a large body, deliver a fragment, vanish.  Each
    // admission charge must come back when the connection dies.
    pool.emplace_back([&] {
        do {
            const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
            if (fd < 0) break;
            sockaddr_in address{};
            address.sin_family = AF_INET;
            address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
            address.sin_port = htons(port);
            if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                          sizeof address) == 0) {
                const std::string partial =
                    "POST /ingest HTTP/1.1\r\nHost: x\r\n"
                    "Content-Length: 5000\r\n\r\n999 1 1\n";
                (void)::send(fd, partial.data(), partial.size(), MSG_NOSIGNAL);
                abandoned_connections.fetch_add(1, std::memory_order_relaxed);
            }
            ::close(fd);  // FIN mid-body: the server sees EOF, not a batch
            std::this_thread::sleep_for(std::chrono::milliseconds{2});
        } while (!stop.load(std::memory_order_relaxed));
    });

    // Writers are bounded; join them, then release the loops.
    for (std::size_t w = 0; w < kWriters; ++w) pool[w].join();
    stop.store(true, std::memory_order_relaxed);
    for (std::size_t t = kWriters; t < pool.size(); ++t) pool[t].join();

    // Drain: the vandal's last connections may still be in the server's
    // maps; the gate must return every charge as they die.
    for (int i = 0; i < 500 && service.gate().pending() != 0; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds{10});
    }
    EXPECT_EQ(service.gate().pending(), 0u);
    server.stop();
    EXPECT_EQ(service.gate().released_records(),
              service.gate().admitted_records());

    // Record conservation: every acknowledged record is resident or
    // evicted; nothing lost, nothing duplicated.
    EXPECT_EQ(writer_failures.load(), 0u);
    EXPECT_EQ(acknowledged_records.load(),
              store.size() + evicted_records.load());
    EXPECT_EQ(acknowledged_records.load(),
              kWriters * kRoundsPerWriter * kRecordsPerBatch);
    EXPECT_EQ(service.accepted_records(), acknowledged_records.load());

    // The battlefield was real: scrapes answered, connections died.
    EXPECT_GT(scrape_answers.load(), 0u);
    EXPECT_GT(abandoned_connections.load(), 0u);

    // The vandal's phantom server never materialized.
    EXPECT_FALSE(store.contains(999));
}

}  // namespace
}  // namespace hpr::net
