// Multi-threaded stress tests for the shared reference-model cache
// (stats/reference_cache.h), meant to run under -DHPR_SANITIZE=thread as
// well as plain builds.  Eight threads hammer a small cache through hits,
// misses, single-flight joins and batch evictions, and every returned
// model is checked for bit-exact correctness on the spot.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "stats/reference_cache.h"
#include "stats/rng.h"

namespace hpr::stats {
namespace {

constexpr std::size_t kThreads = 8;

TEST(ReferenceCacheStress, ConcurrentMixedLookupsStayExact) {
    // Capacity far below the key space, so the run continuously evicts
    // while readers hold shared locks and stamp bumps race the scans.
    ReferenceModelCache cache{64};
    constexpr std::size_t kLookups = 4000;
    constexpr std::uint64_t kTotal = 499;  // prime: every key is distinct
    std::atomic<std::size_t> failures{0};
    std::vector<std::thread> pool;
    pool.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        pool.emplace_back([&, t] {
            Rng rng{0x5eedULL + t};
            for (std::size_t i = 0; i < kLookups; ++i) {
                // Zipf-ish reuse: half the lookups hit a small hot set so
                // hits, misses and evictions all stay in play.
                const std::uint64_t good =
                    rng.bernoulli(0.5) ? rng.uniform_int(std::uint64_t{16})
                                       : rng.uniform_int(kTotal + 1);
                const auto model = cache.reference(10, good, kTotal);
                const double expected =
                    static_cast<double>(good) / static_cast<double>(kTotal);
                if (model == nullptr || model->n() != 10 ||
                    model->p() != expected ||
                    model->pmf_span().size() != 11) {
                    failures.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }
    for (auto& worker : pool) worker.join();
    EXPECT_EQ(failures.load(), 0u);
    const auto stats = cache.stats();
    EXPECT_EQ(stats.hits + stats.misses + stats.single_flight_joins,
              kThreads * kLookups);
    EXPECT_LE(stats.entries, cache.capacity());
    EXPECT_EQ(stats.in_flight, 0u);
    EXPECT_GT(stats.evictions, 0u);
}

TEST(ReferenceCacheStress, ColdKeyStampedeConstructsOnce) {
    for (int round = 0; round < 20; ++round) {
        ReferenceModelCache cache{16};
        std::atomic<std::size_t> ready{0};
        std::vector<std::shared_ptr<const Binomial>> models(kThreads);
        std::vector<std::thread> pool;
        pool.reserve(kThreads);
        for (std::size_t t = 0; t < kThreads; ++t) {
            pool.emplace_back([&, t] {
                ready.fetch_add(1, std::memory_order_acq_rel);
                while (ready.load(std::memory_order_acquire) < kThreads) {
                    // spin: release all threads into the lookup together
                }
                models[t] = cache.reference(10, 173 + round, 200 + round);
            });
        }
        for (auto& worker : pool) worker.join();
        // Single-flight: exactly one construction; everyone else joined
        // the flight or hit the landed entry, and all share one object.
        const auto stats = cache.stats();
        EXPECT_EQ(stats.misses, 1u) << "round " << round;
        EXPECT_EQ(stats.hits + stats.single_flight_joins, kThreads - 1);
        for (const auto& model : models) {
            ASSERT_NE(model, nullptr);
            EXPECT_EQ(model.get(), models.front().get());
        }
    }
}

TEST(ReferenceCacheStress, ClearRacesLookupsSafely) {
    ReferenceModelCache cache{64};
    std::atomic<bool> stop{false};
    std::atomic<std::size_t> failures{0};
    std::vector<std::thread> pool;
    pool.reserve(kThreads);
    for (std::size_t t = 0; t + 1 < kThreads; ++t) {
        pool.emplace_back([&, t] {
            Rng rng{0xabcdULL + t};
            while (!stop.load(std::memory_order_acquire)) {
                const std::uint64_t good = rng.uniform_int(std::uint64_t{97});
                const auto model = cache.reference(10, good, 97);
                const double expected = static_cast<double>(good) / 97.0;
                if (model == nullptr || model->p() != expected) {
                    failures.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }
    pool.emplace_back([&] {
        for (int i = 0; i < 200; ++i) {
            cache.clear();
            std::this_thread::yield();
        }
        stop.store(true, std::memory_order_release);
    });
    for (auto& worker : pool) worker.join();
    EXPECT_EQ(failures.load(), 0u);
    EXPECT_EQ(cache.stats().in_flight, 0u);
}

}  // namespace
}  // namespace hpr::stats
