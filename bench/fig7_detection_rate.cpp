// Reproduces paper Fig. 7: detection rate vs. attack-window size N.
// A periodic attacker keeps its reputation ~0.9 by launching 0.1*N
// attacks within every N transactions (randomly placed inside each
// window).  Small N forces a rigid, underdispersed pattern that the
// distribution test catches almost surely; as N grows the pattern
// approaches an honest Bernoulli stream and the rate decays toward the
// false-positive floor — the paper's "desirable property": an attacker
// forced to look honest effectively is honest.
//
// The honest false-positive rate is printed alongside as the floor.

#include "bench_common.h"
#include "sim/detection.h"

int main() {
    const auto cal = hpr::core::make_calibrator({});
    const std::vector<double> windows{10, 20, 30, 40, 50, 60, 70, 80};

    hpr::bench::Series multi{"scheme2 detection", {}};
    hpr::bench::Series single{"scheme1 detection", {}};
    hpr::bench::Series floor{"honest FP floor", {}};
    for (const double n : windows) {
        hpr::sim::DetectionConfig config;
        config.attack_window = static_cast<std::size_t>(n);
        config.attack_fraction = 0.1;
        config.history_size = 800;
        config.trials = 200;
        config.seed = 5000 + static_cast<std::uint64_t>(n);

        config.use_multi = true;
        multi.values.push_back(hpr::sim::detection_rate(config, cal));
        floor.values.push_back(hpr::sim::false_positive_rate(0.9, config, cal));
        config.use_multi = false;
        single.values.push_back(hpr::sim::detection_rate(config, cal));
    }
    hpr::bench::print_figure("Fig.7  detection rate vs attack window size",
                             "attack_window", windows, {multi, single, floor});
    std::printf("\n(0.1*N attacks per N transactions, history 800, 200 trials/point)\n");
    hpr::bench::print_metrics();
    return 0;
}
