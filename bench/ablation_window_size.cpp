// Ablation: the transaction-window size m.
//
// The paper fixes m = 10 without discussion.  This bench sweeps m and
// reports, at each size, the periodic-attack detection rate (N = 20
// attack window), the honest false-positive rate, and the calibrated
// threshold — exposing the trade-off: small windows react faster but
// have a coarse support (higher thresholds); large windows smooth the
// statistics but need long histories before enough windows exist.

#include "bench_common.h"
#include "sim/detection.h"

int main() {
    const std::vector<double> window_sizes{5, 10, 20, 25, 40};

    hpr::bench::Series detection{"detect(N=20)", {}};
    hpr::bench::Series detection40{"detect(N=40)", {}};
    hpr::bench::Series fp{"honest FP", {}};
    hpr::bench::Series eps{"epsilon(k=40)", {}};

    for (const double m : window_sizes) {
        hpr::core::MultiTestConfig test;
        test.base.window_size = static_cast<std::uint32_t>(m);
        const auto cal = hpr::core::make_calibrator(test.base);

        hpr::sim::DetectionConfig config;
        config.test = test;
        config.history_size = 800;
        config.trials = 150;
        config.seed = 8800 + static_cast<std::uint64_t>(m);

        config.attack_window = 20;
        detection.values.push_back(hpr::sim::detection_rate(config, cal));
        config.attack_window = 40;
        detection40.values.push_back(hpr::sim::detection_rate(config, cal));
        fp.values.push_back(hpr::sim::false_positive_rate(0.9, config, cal));
        eps.values.push_back(
            cal->threshold(40, static_cast<std::uint32_t>(m), 0.9));
    }
    hpr::bench::print_figure(
        "Ablation  window size m (multi-testing, history 800)", "window_size",
        window_sizes, {detection, detection40, fp, eps});
    std::printf("\n(the paper's choice m=10 balances reaction time against "
                "support coarseness)\n");
    hpr::bench::print_metrics();
    return 0;
}
