// Reproduces paper Fig. 3: cost of attackers (good transactions needed to
// land 20 bad ones) vs. the size of the preparation history, under the
// AVERAGE trust function — plain, with single behavior testing (Scheme 1)
// and with multi-testing (Scheme 2).
//
// Expected shape (paper §5.1):
//  * "average"            — cost falls to ~0 once prep >= ~400-600
//                           (hibernating attack succeeds);
//  * "scheme1+average"    — higher cost, but decreasing as prep grows;
//  * "scheme2+average"    — roughly constant cost, the highest at large
//                           prep sizes.

#include "bench_common.h"
#include "sim/attack_cost.h"

namespace {

constexpr std::size_t kTrials = 20;

std::size_t g_lockouts = 0;  // runs where the attacker never reached 20 attacks

double median_cost(hpr::core::ScreeningMode mode, std::size_t prep,
                   const std::shared_ptr<hpr::stats::Calibrator>& cal) {
    hpr::sim::AttackCostConfig config;
    config.prep_size = prep;
    config.prep_trust = 0.95;
    config.target_attacks = 20;
    config.trust_threshold = 0.9;
    config.trust_spec = "average";
    config.screening = mode;
    config.seed = 1000 + prep;
    config.max_attack_steps = 20000;
    const auto series = hpr::sim::run_attack_cost_trials(config, kTrials, cal);
    g_lockouts += series.unreached_runs;
    return series.median_cost();
}

}  // namespace

int main() {
    const auto cal = hpr::core::make_calibrator({});
    const std::vector<double> preps{100, 200, 300, 400, 500, 600, 700, 800};

    hpr::bench::Series plain{"average", {}};
    hpr::bench::Series scheme1{"scheme1+average", {}};
    hpr::bench::Series scheme2{"scheme2+average", {}};
    for (const double prep : preps) {
        const auto p = static_cast<std::size_t>(prep);
        plain.values.push_back(median_cost(hpr::core::ScreeningMode::kNone, p, cal));
        scheme1.values.push_back(median_cost(hpr::core::ScreeningMode::kSingle, p, cal));
        scheme2.values.push_back(median_cost(hpr::core::ScreeningMode::kMulti, p, cal));
    }
    hpr::bench::print_figure(
        "Fig.3  attacker cost vs initial history (average trust function)",
        "prep_size", preps, {plain, scheme1, scheme2});
    std::printf("\n(20 attacks, trust threshold 0.9, prep trust 0.95, window 10, "
                "%zu trials/point; median costs)\n",
                kTrials);
    std::printf("(runs where screening locked the attacker out entirely: %zu)\n",
                g_lockouts);
    hpr::bench::print_metrics();
    return 0;
}
