// Ablation: the Wald-Wolfowitz runs test next to the paper's
// distribution test.
//
// The paper (§3.1) relates honest-player screening to pseudo-random
// sequence testing (NIST SP 800-22) but rejects those suites because they
// need the success probability.  The runs test does not (it conditions on
// the outcome counts), so it is the natural calibration-free competitor.
// This bench compares detection across attack families and the honest
// false-positive floor — showing where the two statistics overlap, where
// each is blind, and why the library ships the runs test as a
// supplementary signal rather than a replacement.

#include <functional>

#include "bench_common.h"
#include "core/multi_test.h"
#include "core/runs_test.h"
#include "sim/generators.h"

namespace {

using namespace hpr;

struct Workload {
    const char* label;
    std::function<std::vector<std::uint8_t>(stats::Rng&)> make;
};

}  // namespace

int main() {
    const auto cal = core::make_calibrator({});
    const core::BehaviorTest window_single{{}, cal};
    const core::MultiTest window_multi{{}, cal};
    const core::RunsTest runs;

    const std::vector<Workload> workloads{
        {"honest p=0.9",
         [](stats::Rng& rng) { return sim::honest_outcomes(800, 0.9, rng); }},
        {"periodic N=10",
         [](stats::Rng& rng) { return sim::periodic_outcomes(800, 10, 0.1, rng); }},
        {"periodic N=40",
         [](stats::Rng& rng) { return sim::periodic_outcomes(800, 40, 0.1, rng); }},
        {"hibernating 770+30",
         [](stats::Rng& rng) {
             auto o = sim::honest_outcomes(770, 0.93, rng);
             o.insert(o.end(), 30, std::uint8_t{0});
             return o;
         }},
        {"strict alternation",
         [](stats::Rng&) {
             std::vector<std::uint8_t> o;
             for (int i = 0; i < 800; ++i) o.push_back(i % 5 != 0 ? 1 : 0);
             return o;
         }},
    };

    std::printf("=== Ablation  flagging rate per screen (150 trials, history 800) "
                "===\n");
    std::printf("%-22s %14s %14s %14s\n", "workload", "single (window)",
                "multi (window)", "runs test");
    constexpr int kTrials = 150;
    for (const Workload& workload : workloads) {
        int by_single = 0;
        int by_multi = 0;
        int by_runs = 0;
        stats::Rng rng{static_cast<std::uint64_t>(workload.label[0]) * 131};
        for (int t = 0; t < kTrials; ++t) {
            const auto outcomes = workload.make(rng);
            const std::span<const std::uint8_t> view{outcomes};
            if (!window_single.test(view).passed) ++by_single;
            if (!window_multi.test(view).passed) ++by_multi;
            if (!runs.test(view).passed) ++by_runs;
        }
        std::printf("%-22s %14.3f %14.3f %14.3f\n", workload.label,
                    static_cast<double>(by_single) / kTrials,
                    static_cast<double>(by_multi) / kTrials,
                    static_cast<double>(by_runs) / kTrials);
    }
    std::printf("\n(the runs test needs no Monte-Carlo calibration; it sees "
                "spacing anomalies, the window tests see count anomalies)\n");
    hpr::bench::print_metrics();
    return 0;
}
