// Serving-core throughput: concurrent ingest into the sharded
// FeedbackStore and parallel batch assessment over serve::BatchAssessor,
// at 1/2/4/8 threads.
//
//   build/bench/serving_throughput [--quick]
//
// Two lanes, each swept over the thread counts:
//
//   ingest  — a time-ordered feedback tape for the whole population is
//             split across T submitting threads (disjoint server ranges,
//             so per-server time ordering is preserved by construction);
//             each thread submits per-shard-grouped batches.  Reported
//             as feedbacks/s.
//   assess  — serve::BatchAssessor::assess_all fans the population
//             across a T-executor pool, each worker screening a
//             snapshot-consistent history copy.  Reported as
//             assessments/s.
//
// Correctness is checked inside the bench: every ingest lane must
// reproduce the 1-thread store bit-identically (per-server sizes and
// good counts), and every assessment lane must produce the 1-thread
// verdict sequence exactly — the pool decides only who computes, never
// what.  Calibration is warmed by an unmeasured pass first, so the
// lanes measure screening, not Monte-Carlo warm-up.  On hosts with >= 8
// hardware threads the full run enforces the >= 3x scaling budget at 8
// threads; elsewhere (and in --quick smoke mode) the ratio is reported
// only.  Ends with the obs registry dump so the shard-occupancy and
// contention counters land in CI logs.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "hpr.h"

using namespace hpr;

namespace {

struct Workload {
    std::vector<std::vector<repsys::Feedback>> per_server;  // index = server - 1
    std::size_t total = 0;
};

/// Deterministic population tape: honest-ish servers with per-server
/// quality in [0.60, 0.98]; every 11th server drops quality mid-stream
/// (the Fig. 7 style regime change batch assessment must still flag).
Workload make_workload(std::size_t servers, std::size_t history) {
    Workload w;
    w.per_server.resize(servers);
    for (std::size_t s = 0; s < servers; ++s) {
        stats::Rng rng{0xbe7c0ffeULL + s};
        const double p = 0.60 + 0.38 * rng.uniform();
        const bool drops = (s % 11) == 10;
        auto& tape = w.per_server[s];
        tape.reserve(history);
        for (std::size_t i = 0; i < history; ++i) {
            const double p_now = (drops && i >= history / 2) ? p * 0.55 : p;
            tape.push_back(repsys::Feedback{
                static_cast<repsys::Timestamp>(i + 1),
                static_cast<repsys::EntityId>(s + 1),
                static_cast<repsys::EntityId>(1000 + rng.uniform_int(std::uint64_t{97})),
                rng.bernoulli(p_now) ? repsys::Rating::kPositive
                                     : repsys::Rating::kNegative});
        }
        w.total += tape.size();
    }
    return w;
}

/// Per-server (size, good-count) digest: lanes must agree bit-for-bit.
std::uint64_t store_digest(const repsys::FeedbackStore& store) {
    std::uint64_t digest = 1469598103934665603ULL;  // FNV offset basis
    const auto mix = [&digest](std::uint64_t value) {
        digest ^= value;
        digest *= 1099511628211ULL;
    };
    for (const auto server : store.servers()) {
        const auto& history = store.history(server);
        mix(server);
        mix(history.size());
        mix(history.good_count());
    }
    return digest;
}

/// Ingest the tape on `threads` submitters (disjoint server ranges, batch
/// submits of up to 512 feedbacks).  Returns elapsed seconds.
double run_ingest(const Workload& workload, repsys::FeedbackStore& store,
                  std::size_t threads) {
    const std::size_t servers = workload.per_server.size();
    const obs::Stopwatch watch;
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            const std::size_t begin = servers * t / threads;
            const std::size_t end = servers * (t + 1) / threads;
            std::vector<repsys::Feedback> batch;
            batch.reserve(512);
            for (std::size_t s = begin; s < end; ++s) {
                for (const auto& feedback : workload.per_server[s]) {
                    batch.push_back(feedback);
                    if (batch.size() == 512) {
                        store.submit(batch);
                        batch.clear();
                    }
                }
            }
            if (!batch.empty()) store.submit(batch);
        });
    }
    for (auto& worker : pool) worker.join();
    return watch.seconds();
}

}  // namespace

int main(int argc, char** argv) {
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else {
            std::fprintf(stderr, "usage: %s [--quick]\n", argv[0]);
            return 2;
        }
    }
    const std::size_t servers = quick ? 128 : 1000;
    const std::size_t history = quick ? 120 : 400;
    const std::size_t shards = 32;
    const std::vector<double> thread_counts{1, 2, 4, 8};

    std::printf("serving_throughput: %zu servers x %zu feedbacks, %zu shards%s\n",
                servers, history, shards, quick ? " (quick)" : "");
    const Workload workload = make_workload(servers, history);

    // --- ingest lanes -----------------------------------------------------
    bench::Series ingest_rate{"ingest_fps", {}};
    repsys::FeedbackStore store{shards};  // the 1-thread lane's store survives
    std::uint64_t reference_digest = 0;
    for (const double threads : thread_counts) {
        repsys::FeedbackStore lane_store{shards};
        const double seconds =
            run_ingest(workload, lane_store, static_cast<std::size_t>(threads));
        ingest_rate.values.push_back(static_cast<double>(workload.total) / seconds);
        if (lane_store.size() != workload.total) {
            std::fprintf(stderr, "FAIL: ingest lane t=%g lost feedbacks (%zu != %zu)\n",
                         threads, lane_store.size(), workload.total);
            return 1;
        }
        const std::uint64_t digest = store_digest(lane_store);
        if (threads == 1.0) {
            reference_digest = digest;
            store = std::move(lane_store);
        } else if (digest != reference_digest) {
            std::fprintf(stderr, "FAIL: ingest lane t=%g digest mismatch\n", threads);
            return 1;
        }
    }

    // --- assessment lanes -------------------------------------------------
    serve::BatchAssessorConfig config;
    config.assessment.mode = core::ScreeningMode::kMulti;
    config.assessment.test.bonferroni = true;
    const auto calibrator = core::make_calibrator(config.assessment.test.base);
    const auto trust = std::shared_ptr<const repsys::TrustFunction>{
        repsys::make_trust_function("beta")};
    {
        // Unmeasured warm pass: every calibration key the ladder can hit
        // is computed once here, so the lanes below measure screening.
        config.threads = 0;
        const serve::BatchAssessor warm{config, trust, calibrator};
        (void)warm.assess_all(store);
    }
    bench::Series assess_rate{"assess_aps", {}};
    std::vector<std::string> reference_verdicts;
    for (const double threads : thread_counts) {
        config.threads = static_cast<std::size_t>(threads);
        const serve::BatchAssessor assessor{config, trust, calibrator};
        const obs::Stopwatch watch;
        const auto results = assessor.assess_all(store);
        const double seconds = watch.seconds();
        assess_rate.values.push_back(static_cast<double>(results.size()) / seconds);
        std::vector<std::string> verdicts;
        verdicts.reserve(results.size());
        for (const auto& r : results) {
            verdicts.emplace_back(core::to_string(r.assessment.verdict));
        }
        if (threads == 1.0) {
            reference_verdicts = std::move(verdicts);
        } else if (verdicts != reference_verdicts) {
            std::fprintf(stderr, "FAIL: assessment lane t=%g verdict drift\n", threads);
            return 1;
        }
    }

    bench::print_figure("serving throughput (feedbacks/s, assessments/s)",
                        "threads", thread_counts, {ingest_rate, assess_rate});
    const double speedup = assess_rate.values.back() / assess_rate.values.front();
    const std::size_t suspicious = [&] {
        std::size_t count = 0;
        for (const auto& v : reference_verdicts) count += v == std::string{"suspicious"};
        return count;
    }();
    std::printf("\nassess speedup at 8 threads: %.2fx (%zu hardware threads); "
                "%zu/%zu suspicious\n",
                speedup, static_cast<std::size_t>(std::thread::hardware_concurrency()),
                suspicious, reference_verdicts.size());
    if (!quick && std::thread::hardware_concurrency() >= 8 && speedup < 3.0) {
        std::fprintf(stderr,
                     "FAIL: 8-thread assessment speedup %.2fx below the 3x budget\n",
                     speedup);
        return 1;
    }

    bench::print_metrics();
    return 0;
}
