// Ablation: the library's two additions on top of the paper's scheme.
//
// 1. Family-wise (Bonferroni) correction for multi-testing: the paper's
//    per-stage 95% confidence lets the false-positive rate grow with the
//    number of suffix stages (i.e., with history length).  The corrected
//    variant holds the family-wise rate near 5% at a modest detection
//    cost.
// 2. Drift-tolerant (change-point segmented) testing: an honest server
//    whose uncontrollable quality shifts is flagged by the static pooled
//    test but passes the adaptive test, which still catches rigid
//    manipulation.

#include "bench_common.h"
#include "core/changepoint.h"
#include "sim/detection.h"
#include "sim/generators.h"

namespace {

using namespace hpr;

void bonferroni_ablation() {
    const std::vector<double> history_sizes{200, 400, 800, 1600, 3200};
    bench::Series fp_plain{"FP plain", {}};
    bench::Series fp_corrected{"FP bonferroni", {}};
    bench::Series det_plain{"detect(N=10) plain", {}};
    bench::Series det_corrected{"detect(N=10) bonf.", {}};

    const auto cal = core::make_calibrator({});
    for (const double n : history_sizes) {
        sim::DetectionConfig config;
        config.history_size = static_cast<std::size_t>(n);
        config.attack_window = 10;
        config.trials = 150;
        config.seed = 9400 + static_cast<std::uint64_t>(n);

        config.test.bonferroni = false;
        fp_plain.values.push_back(sim::false_positive_rate(0.9, config, cal));
        det_plain.values.push_back(sim::detection_rate(config, cal));
        config.test.bonferroni = true;
        fp_corrected.values.push_back(sim::false_positive_rate(0.9, config, cal));
        det_corrected.values.push_back(sim::detection_rate(config, cal));
    }
    bench::print_figure(
        "Ablation  family-wise correction (multi-testing, honest p=0.9)",
        "history_size", history_sizes,
        {fp_plain, fp_corrected, det_plain, det_corrected});
}

void adaptive_ablation() {
    const auto cal = core::make_calibrator({});
    const core::BehaviorTest static_test{{}, cal};
    const core::AdaptiveBehaviorTest adaptive{{}, {}, cal};
    stats::Rng rng{9500};

    const std::vector<double> drops{0.95, 0.9, 0.85, 0.8, 0.7};
    bench::Series static_fp{"static flags", {}};
    bench::Series adaptive_fp{"adaptive flags", {}};
    constexpr int kTrials = 60;
    for (const double p2 : drops) {
        int static_flags = 0;
        int adaptive_flags = 0;
        for (int t = 0; t < kTrials; ++t) {
            auto outcomes = sim::honest_outcomes(400, 0.95, rng);
            const auto tail = sim::honest_outcomes(400, p2, rng);
            outcomes.insert(outcomes.end(), tail.begin(), tail.end());
            const std::span<const std::uint8_t> view{outcomes};
            if (!static_test.test(view).passed) ++static_flags;
            if (!adaptive.test(view).passed) ++adaptive_flags;
        }
        static_fp.values.push_back(static_cast<double>(static_flags) / kTrials);
        adaptive_fp.values.push_back(static_cast<double>(adaptive_flags) / kTrials);
    }
    bench::print_figure(
        "Ablation  drift tolerance (honest quality shift 0.95 -> x, 400+400 txs)",
        "second_regime_p", drops, {static_fp, adaptive_fp});

    // Rigid manipulation must still be caught by the adaptive test.
    int caught = 0;
    constexpr int kAttackTrials = 40;
    for (int t = 0; t < kAttackTrials; ++t) {
        const auto outcomes = sim::periodic_outcomes(600, 10, 0.1, rng);
        if (!adaptive.test(std::span<const std::uint8_t>{outcomes}).passed) ++caught;
    }
    std::printf("\nadaptive test still catches rigid N=10 periodic attack: "
                "%.0f%% of %d trials\n",
                100.0 * caught / kAttackTrials, kAttackTrials);
}

}  // namespace

int main() {
    bonferroni_ablation();
    adaptive_ablation();
    hpr::bench::print_metrics();
    return 0;
}
