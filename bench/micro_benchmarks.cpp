// Google-benchmark microbenchmarks for the library's hot paths: the
// binomial pmf construction, window reduction, single and multi behavior
// tests, the issuer re-ordering of collusion-resilient testing, and the
// trust-function accumulators.  These complement the figure benches
// (fig3..fig9) with per-operation cost visibility.

#include <benchmark/benchmark.h>

#include <string>
#include <thread>
#include <vector>

#include "core/changepoint.h"
#include "core/collusion.h"
#include "core/multi_test.h"
#include "core/online.h"
#include "repsys/eigentrust.h"
#include "repsys/trust.h"
#include "sim/generators.h"
#include "sim/gossip.h"
#include "sim/overlay.h"
#include "stats/distance.h"
#include "stats/empirical.h"
#include "stats/reference_cache.h"

namespace {

using namespace hpr;  // NOLINT: bench file, keep call sites readable

std::shared_ptr<stats::Calibrator> shared_cal() {
    static auto cal = core::make_calibrator(core::BehaviorTestConfig{});
    return cal;
}

std::vector<std::uint8_t> outcomes_of(std::size_t n) {
    stats::Rng rng{n * 2654435761u + 7};
    return sim::honest_outcomes(n, 0.9, rng);
}

repsys::TransactionHistory history_of(std::size_t n, std::uint32_t clients) {
    stats::Rng rng{n * 40503u + 11};
    return sim::honest_history(n, 0.9, rng, 1, sim::ClientIdScheme{100, clients});
}

void BM_BinomialConstruct(benchmark::State& state) {
    const auto n = static_cast<std::uint32_t>(state.range(0));
    for (auto _ : state) {
        const stats::Binomial b{n, 0.9};
        benchmark::DoNotOptimize(b.pmf_table().data());
    }
}
BENCHMARK(BM_BinomialConstruct)->Arg(10)->Arg(50)->Arg(200);

void BM_ReferenceModelCached(benchmark::State& state) {
    // Steady-state cost of fetching a reference model from the shared
    // cache (shared-lock map hit + recency stamp) vs BM_BinomialConstruct,
    // which is what every ladder stage paid before the cache existed.
    // Cycles 64 distinct exact-rational keys so the map lookup is real.
    const auto n = static_cast<std::uint32_t>(state.range(0));
    stats::ReferenceModelCache cache{1024};
    std::uint64_t i = 0;
    for (auto _ : state) {
        const std::uint64_t good = 800 + (i++ & 63);
        benchmark::DoNotOptimize(cache.reference(n, good, 1000).get());
    }
}
BENCHMARK(BM_ReferenceModelCached)->Arg(10)->Arg(50)->Arg(200);

void BM_ReferenceModelUncached(benchmark::State& state) {
    // The miss path: every iteration constructs and caches a never-seen
    // key (the cache is cleared once it nears capacity, off the clock).
    const auto n = static_cast<std::uint32_t>(state.range(0));
    stats::ReferenceModelCache cache{1 << 20};
    std::uint64_t i = 0;
    for (auto _ : state) {
        if ((i & 0xffff) == 0xffff) {
            state.PauseTiming();
            cache.clear();
            state.ResumeTiming();
        }
        benchmark::DoNotOptimize(cache.reference(n, ++i, 1ULL << 52).get());
    }
}
BENCHMARK(BM_ReferenceModelUncached)->Arg(10)->Arg(50)->Arg(200);

void BM_DistanceKernel(benchmark::State& state) {
    // The branch-free distance kernels over a counts table and a cached
    // pmf span: range(0) = support size (window size m), range(1) =
    // DistanceKind.  This is the per-stage cost after the reference model
    // is a cache hit.
    const auto n = static_cast<std::uint32_t>(state.range(0));
    const auto kind = static_cast<stats::DistanceKind>(state.range(1));
    const stats::Binomial reference{n, 0.9};
    stats::Rng rng{99};
    stats::EmpiricalDistribution counts{n};
    for (int i = 0; i < 200; ++i) counts.add(reference.sample(rng));
    for (auto _ : state) {
        benchmark::DoNotOptimize(stats::distance(counts, reference, kind));
    }
    state.SetLabel(stats::to_string(kind));
}
BENCHMARK(BM_DistanceKernel)
    ->ArgsProduct({{10, 50, 200},
                   {static_cast<long>(stats::DistanceKind::kL1),
                    static_cast<long>(stats::DistanceKind::kL2),
                    static_cast<long>(stats::DistanceKind::kChiSquare),
                    static_cast<long>(stats::DistanceKind::kKolmogorovSmirnov)}});

void BM_BinomialSample(benchmark::State& state) {
    const stats::Binomial b{10, 0.9};
    stats::Rng rng{12345};
    for (auto _ : state) {
        benchmark::DoNotOptimize(b.sample(rng));
    }
}
BENCHMARK(BM_BinomialSample);

void BM_WindowStats(benchmark::State& state) {
    const auto outcomes = outcomes_of(static_cast<std::size_t>(state.range(0)));
    const std::span<const std::uint8_t> view{outcomes};
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::compute_window_stats(view, 10).good_total);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WindowStats)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_SingleBehaviorTest(benchmark::State& state) {
    const core::BehaviorTest tester{{}, shared_cal()};
    const auto outcomes = outcomes_of(static_cast<std::size_t>(state.range(0)));
    const std::span<const std::uint8_t> view{outcomes};
    (void)tester.test(view);  // warm calibration
    for (auto _ : state) {
        benchmark::DoNotOptimize(tester.test(view).passed);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SingleBehaviorTest)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_MultiBehaviorTest(benchmark::State& state) {
    core::MultiTestConfig config;
    config.stop_on_failure = false;
    const core::MultiTest tester{config, shared_cal()};
    const auto outcomes = outcomes_of(static_cast<std::size_t>(state.range(0)));
    const std::span<const std::uint8_t> view{outcomes};
    (void)tester.test(view);  // warm calibration
    for (auto _ : state) {
        benchmark::DoNotOptimize(tester.test(view).passed);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MultiBehaviorTest)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_CalibrationColdKey(benchmark::State& state) {
    // Wall time of one cold Monte-Carlo calibration (1000 replications)
    // with a given worker-pool size: range(0) = window count (the key's
    // cost driver), range(1) = threads.  The chunk-seeded scheme makes
    // the resulting threshold bit-identical across thread counts, so the
    // 1-vs-N rows measure pure scaling of the same computation.
    stats::CalibrationConfig config;
    config.windows_grid_ratio = 1.0;
    config.threads = static_cast<std::size_t>(state.range(1));
    for (auto _ : state) {
        state.PauseTiming();
        stats::Calibrator calibrator{config};
        state.ResumeTiming();
        benchmark::DoNotOptimize(
            calibrator.threshold(static_cast<std::size_t>(state.range(0)), 10, 0.9));
    }
    state.SetLabel(std::to_string(state.range(1)) + " thread(s)");
}
BENCHMARK(BM_CalibrationColdKey)
    ->ArgsProduct({{10, 100, 1000}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_PrecalibrateGrid(benchmark::State& state) {
    // Warm-start fan-out: the full fig9-style grid (geometric window grid
    // to 512, p̂ in [0.85, 0.95]) across a pool of range(0) threads.
    core::BehaviorTestConfig test_config;
    test_config.calibration_threads = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        const auto calibrator = core::make_calibrator(test_config);
        state.ResumeTiming();
        benchmark::DoNotOptimize(
            core::warm_calibration(*calibrator, 10, 512, 0.85, 0.95));
    }
    state.SetLabel(std::to_string(state.range(0)) + " thread(s)");
}
BENCHMARK(BM_PrecalibrateGrid)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_CalibrationSingleFlight(benchmark::State& state) {
    // range(0) client threads all missing the SAME cold key: single-flight
    // dedup means the whole stampede costs ~one Monte-Carlo run.
    const auto contenders = static_cast<std::size_t>(state.range(0));
    stats::CalibrationConfig config;
    config.windows_grid_ratio = 1.0;
    config.threads = 1;  // isolate dedup from chunk parallelism
    for (auto _ : state) {
        state.PauseTiming();
        stats::Calibrator calibrator{config};
        state.ResumeTiming();
        std::vector<std::thread> clients;
        clients.reserve(contenders);
        for (std::size_t t = 0; t < contenders; ++t) {
            clients.emplace_back(
                [&calibrator] { benchmark::DoNotOptimize(calibrator.threshold(500, 10, 0.9)); });
        }
        for (auto& client : clients) client.join();
        state.PauseTiming();
        if (calibrator.compute_count() != 1) {
            state.SkipWithError("single-flight failed to deduplicate");
        }
        state.ResumeTiming();
    }
    state.SetLabel(std::to_string(contenders) + " contending threads, 1 MC run");
}
BENCHMARK(BM_CalibrationSingleFlight)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ReorderByIssuer(benchmark::State& state) {
    const auto history = history_of(static_cast<std::size_t>(state.range(0)), 64);
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::reorder_by_issuer(history.view()).size());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReorderByIssuer)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_TrustAccumulator(benchmark::State& state) {
    static const char* kSpecs[] = {"average", "weighted:0.5", "beta", "decay:0.98"};
    const auto trust = repsys::make_trust_function(
        kSpecs[static_cast<std::size_t>(state.range(0))]);
    stats::Rng rng{777};
    const auto acc = trust->make_accumulator();
    for (auto _ : state) {
        acc->update(rng.bernoulli(0.9));
        benchmark::DoNotOptimize(acc->value());
    }
    state.SetLabel(trust->name());
}
BENCHMARK(BM_TrustAccumulator)->DenseRange(0, 3);

void BM_OnlineScreenerObserve(benchmark::State& state) {
    core::OnlineScreener screener{{}, shared_cal()};
    stats::Rng rng{31};
    for (int i = 0; i < 500; ++i) screener.observe(rng.bernoulli(0.9));
    for (auto _ : state) {
        screener.observe(rng.bernoulli(0.9));
        benchmark::DoNotOptimize(screener.state());
    }
}
BENCHMARK(BM_OnlineScreenerObserve);

void BM_ChangePointDetect(benchmark::State& state) {
    const core::ChangePointDetector detector;
    stats::Rng rng{32};
    auto outcomes = sim::honest_outcomes(static_cast<std::size_t>(state.range(0)) / 2,
                                         0.95, rng);
    const auto tail = sim::honest_outcomes(
        static_cast<std::size_t>(state.range(0)) / 2, 0.7, rng);
    outcomes.insert(outcomes.end(), tail.begin(), tail.end());
    const std::span<const std::uint8_t> view{outcomes};
    for (auto _ : state) {
        benchmark::DoNotOptimize(detector.detect(view).size());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChangePointDetect)->Arg(1000)->Arg(10000);

void BM_EigenTrustCompute(benchmark::State& state) {
    stats::Rng rng{33};
    std::vector<repsys::Feedback> feedbacks;
    for (std::int64_t i = 0; i < state.range(0); ++i) {
        feedbacks.push_back(repsys::Feedback{
            i + 1, static_cast<repsys::EntityId>(1 + rng.uniform_int(std::uint64_t{32})),
            static_cast<repsys::EntityId>(100 + rng.uniform_int(std::uint64_t{200})),
            rng.bernoulli(0.85) ? repsys::Rating::kPositive
                                : repsys::Rating::kNegative});
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(repsys::EigenTrust::compute(feedbacks).iterations());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EigenTrustCompute)->Arg(1000)->Arg(10000);

void BM_OverlayPublish(benchmark::State& state) {
    sim::OverlayConfig config;
    config.nodes = static_cast<std::size_t>(state.range(0));
    sim::FeedbackOverlay overlay{config};
    repsys::Timestamp time = 1;
    stats::Rng rng{34};
    for (auto _ : state) {
        benchmark::DoNotOptimize(overlay.publish(repsys::Feedback{
            time++, static_cast<repsys::EntityId>(rng.uniform_int(std::uint64_t{500})),
            9, repsys::Rating::kPositive}));
    }
}
BENCHMARK(BM_OverlayPublish)->Arg(64)->Arg(1024);

void BM_OverlayLookup(benchmark::State& state) {
    sim::OverlayConfig config;
    config.nodes = static_cast<std::size_t>(state.range(0));
    sim::FeedbackOverlay overlay{config};
    for (repsys::Timestamp t = 1; t <= 1000; ++t) {
        overlay.publish(repsys::Feedback{
            t, static_cast<repsys::EntityId>(t % 100), 9, repsys::Rating::kPositive});
    }
    stats::Rng rng{35};
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            overlay.lookup(static_cast<repsys::EntityId>(rng.uniform_int(std::uint64_t{100})))
                .size());
    }
}
BENCHMARK(BM_OverlayLookup)->Arg(64)->Arg(1024);

void BM_GossipRound(benchmark::State& state) {
    std::vector<double> values(static_cast<std::size_t>(state.range(0)));
    stats::Rng rng{36};
    for (auto& v : values) v = rng.uniform();
    sim::GossipNetwork network{values};
    for (auto _ : state) {
        network.step();
        benchmark::DoNotOptimize(network.rounds());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GossipRound)->Arg(128)->Arg(2048);

}  // namespace

BENCHMARK_MAIN();
