// Reproduces paper Fig. 5: cost of attackers WITH COLLUSION (genuine good
// services to non-colluders needed to land 20 bad transactions) vs. the
// preparation-history size, under the AVERAGE trust function.
//
// Setup (paper §5.2): 100 potential clients, 5 colluders, arrival model
// a1 = 0.5, a2 = 0.9, a3 = 0.2; preparation entirely through colluders.
//
// Expected shape:
//  * "average"            — zero genuine goods (colluders pay everything);
//  * "scheme1+average"    — collusion-resilient single testing: cost
//                           decreases with prep size;
//  * "scheme2+average"    — collusion-resilient multi-testing: near-
//                           constant substantial cost.

#include "bench_common.h"
#include "sim/collusion_cost.h"

namespace {

constexpr std::size_t kTrials = 8;

std::size_t g_lockouts = 0;  // runs where the attacker never reached 20 attacks

double median_cost(hpr::core::ScreeningMode mode, std::size_t prep,
                   const std::shared_ptr<hpr::stats::Calibrator>& cal) {
    hpr::sim::CollusionCostConfig config;
    config.prep_size = prep;
    config.prep_trust = 0.95;
    config.target_attacks = 20;
    config.trust_threshold = 0.9;
    config.trust_spec = "average";
    config.screening = mode;
    config.seed = 3000 + prep;
    config.max_attack_steps = 20000;
    const auto series = hpr::sim::run_collusion_cost_trials(config, kTrials, cal);
    g_lockouts += series.unreached_runs;
    return series.median_cost();
}

}  // namespace

int main() {
    const auto cal = hpr::core::make_calibrator({});
    const std::vector<double> preps{100, 200, 300, 400, 500, 600, 700, 800};

    hpr::bench::Series plain{"average", {}};
    hpr::bench::Series scheme1{"scheme1+average", {}};
    hpr::bench::Series scheme2{"scheme2+average", {}};
    for (const double prep : preps) {
        const auto p = static_cast<std::size_t>(prep);
        plain.values.push_back(median_cost(hpr::core::ScreeningMode::kNone, p, cal));
        scheme1.values.push_back(median_cost(hpr::core::ScreeningMode::kSingle, p, cal));
        scheme2.values.push_back(median_cost(hpr::core::ScreeningMode::kMulti, p, cal));
    }
    hpr::bench::print_figure(
        "Fig.5  attacker cost with collusion vs initial history (average trust)",
        "prep_size", preps, {plain, scheme1, scheme2});
    std::printf("\n(100 clients, 5 colluders, a1=0.5 a2=0.9 a3=0.2, 20 attacks, "
                "threshold 0.9, %zu trials/point; median costs)\n",
                kTrials);
    std::printf("(runs where screening locked the attacker out entirely: %zu)\n",
                g_lockouts);
    hpr::bench::print_metrics();
    return 0;
}
