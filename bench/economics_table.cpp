// Attack-economics table: converts the measured attack costs of Figs. 3
// and 5 into money terms (paper §3.1's "short affiliations are not
// cost-effective" argument made quantitative).
//
// For each defense configuration the strategic-attacker experiment is run
// (prep 600 @ 0.95, 20 attacks, threshold 0.9), and the table prices the
// campaign under unit costs: good service = 1, fake feedback = 0.1,
// attack gain = 3, join = 0.  The last column is the membership fee that
// would deter a cheat-and-run identity that needs ~30 goods to build a
// screenable reputation.

#include <cstdio>

#include "bench_common.h"
#include "sim/attack_cost.h"
#include "sim/collusion_cost.h"
#include "sim/economics.h"

namespace {

using namespace hpr;

struct Row {
    const char* label;
    core::ScreeningMode mode;
    bool collusion;
};

}  // namespace

int main() {
    const auto cal = core::make_calibrator({});
    sim::AttackEconomics economics;
    economics.good_service_cost = 1.0;
    economics.fake_feedback_cost = 0.1;
    economics.attack_gain = 3.0;

    const std::vector<Row> rows{
        {"average only", core::ScreeningMode::kNone, false},
        {"scheme1 + average", core::ScreeningMode::kSingle, false},
        {"scheme2 + average", core::ScreeningMode::kMulti, false},
        {"collusion: average only", core::ScreeningMode::kNone, true},
        {"collusion: scheme1", core::ScreeningMode::kSingle, true},
        {"collusion: scheme2", core::ScreeningMode::kMulti, true},
    };

    std::printf("=== Attack economics (prep 600, 20 attacks, gain 3/attack, "
                "good costs 1, fake costs 0.1) ===\n");
    std::printf("%-26s %10s %8s %14s %12s\n", "defense", "goods", "fakes",
                "profit(20 atk)", "break-even");
    for (const Row& row : rows) {
        double goods = 0.0;
        double fakes = 0.0;
        if (row.collusion) {
            sim::CollusionCostConfig config;
            config.prep_size = 600;
            config.screening = row.mode;
            config.seed = 6500;
            config.max_attack_steps = 20000;
            const auto series = sim::run_collusion_cost_trials(config, 8, cal);
            goods = series.median_cost();
            fakes = series.fakes.mean();
        } else {
            sim::AttackCostConfig config;
            config.prep_size = 600;
            config.screening = row.mode;
            config.seed = 6500;
            config.max_attack_steps = 20000;
            const auto series = sim::run_attack_cost_trials(config, 12, cal);
            goods = series.median_cost();
        }
        const double profit = sim::campaign_profit(
            economics, 20, static_cast<std::size_t>(goods),
            static_cast<std::size_t>(fakes));
        const std::size_t break_even = sim::break_even_attacks(
            economics, static_cast<std::size_t>(goods),
            static_cast<std::size_t>(fakes));
        std::printf("%-26s %10.0f %8.0f %14.1f %12zu\n", row.label, goods, fakes,
                    profit, break_even);
    }

    std::printf("\ncheat-and-run deterrence: membership fee needed so one bad "
                "transaction never pays:\n");
    for (const std::size_t prep_goods : {0u, 10u, 30u, 60u}) {
        std::printf("  prep of %2zu genuine goods -> fee >= %.1f\n", prep_goods,
                    sim::deterrent_join_cost(economics, prep_goods));
    }
    hpr::bench::print_metrics();
    return 0;
}
