#ifndef HPR_BENCH_COMMON_H
#define HPR_BENCH_COMMON_H

// Shared output helpers for the figure-reproduction benches.  Every bench
// prints one table whose rows/series mirror what the paper's figure
// plots, in a grep-friendly "fig<k>: <x> <series>=<value> ..." format
// plus a human-readable aligned table, and finishes with a snapshot of
// the process-wide metrics registry so operational counters (calibration
// hits/misses, screening verdicts, pool queue behavior) land next to the
// figure's timings in the same log.

#include <cstdio>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"

namespace hpr::bench {

struct Series {
    std::string name;
    std::vector<double> values;  // one per x point
};

/// Print a figure table: header line, then one row per x value.
inline void print_figure(const std::string& figure, const std::string& x_label,
                         const std::vector<double>& xs,
                         const std::vector<Series>& series) {
    std::printf("\n=== %s ===\n", figure.c_str());
    std::printf("%-18s", x_label.c_str());
    for (const Series& s : series) std::printf("%20s", s.name.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < xs.size(); ++i) {
        std::printf("%-18g", xs[i]);
        for (const Series& s : series) {
            if (i < s.values.size()) {
                std::printf("%20.3f", s.values[i]);
            } else {
                std::printf("%20s", "-");
            }
        }
        std::printf("\n");
    }
    std::fflush(stdout);
}

/// Dump the process-wide metrics registry (Prometheus text) accumulated
/// while the bench ran.  Call once at the end of main so every fig /
/// ablation bench reports counters alongside its timings.
inline void print_metrics(const char* heading = "metrics accumulated by this bench") {
    std::printf("\n--- %s ---\n%s", heading,
                hpr::obs::to_prometheus(hpr::obs::default_registry()).c_str());
    std::fflush(stdout);
}

}  // namespace hpr::bench

#endif  // HPR_BENCH_COMMON_H
