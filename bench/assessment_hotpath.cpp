// Assessment hot path: screen-only cost of multi-testing a server
// population, with the reference-model cache off (fresh Binomial table
// per ladder stage), cold (first pass fills the cache) and warm
// (steady-state, every stage hits), at 1/2/4/8 screening threads.
//
//   build/bench/assessment_hotpath [--smoke] [--out BENCH_5.json]
//
// Calibration is warmed by an unmeasured pass first, so every lane
// measures pure screening: the window-count ladder, the reference model
// (constructed or fetched), and the distance kernel.  Correctness is
// checked inside the bench: every lane — any cache state, any thread
// count — must reproduce the uncached 1-thread screening digest
// bit-for-bit (verdicts, stage counts, margins, and the failing stage's
// distance/threshold/p̂ bit patterns all feed the digest), because the
// cache keys on the *exact* rational p̂ and the kernels are shared by
// every path.  On hosts with >= 8 hardware threads the full run enforces
// the >= 2x steady-state (warm vs uncached) budget at 8 threads;
// elsewhere (and under --smoke) the ratio is reported only.  Results are
// also written as machine-readable JSON (default BENCH_5.json), and the
// bench ends with the obs registry dump so the hpr_refmodel_cache_*
// counters land in CI logs.

#include <bit>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "hpr.h"

using namespace hpr;

namespace {

/// Deterministic population: honest-ish outcome tapes with per-server
/// quality in [0.60, 0.98]; every 11th server drops quality mid-stream,
/// so the digest covers failing ladders too.
std::vector<std::vector<std::uint8_t>> make_population(std::size_t servers,
                                                       std::size_t history) {
    std::vector<std::vector<std::uint8_t>> tapes(servers);
    for (std::size_t s = 0; s < servers; ++s) {
        stats::Rng rng{0xa55e55edULL + s};
        const double p = 0.60 + 0.38 * rng.uniform();
        const bool drops = (s % 11) == 10;
        auto& tape = tapes[s];
        tape.reserve(history);
        for (std::size_t i = 0; i < history; ++i) {
            const double p_now = (drops && i >= history / 2) ? p * 0.55 : p;
            tape.push_back(rng.bernoulli(p_now) ? 1 : 0);
        }
    }
    return tapes;
}

std::uint64_t fnv_mix(std::uint64_t digest, std::uint64_t value) noexcept {
    digest ^= value;
    return digest * 1099511628211ULL;
}

/// One server's screening folded to a word: verdict bits, stage count,
/// the min margin's bit pattern, and — when a stage failed — the failing
/// stage's distance, threshold and p̂ bit patterns.  A single ULP of
/// drift anywhere in the ladder changes the digest.
std::uint64_t result_digest(const core::MultiTestResult& result) noexcept {
    std::uint64_t d = 1469598103934665603ULL;  // FNV offset basis
    d = fnv_mix(d, static_cast<std::uint64_t>(result.passed));
    d = fnv_mix(d, static_cast<std::uint64_t>(result.sufficient));
    d = fnv_mix(d, result.stages_run);
    d = fnv_mix(d, std::bit_cast<std::uint64_t>(result.min_margin));
    d = fnv_mix(d, result.failed_suffix_length.value_or(0));
    if (result.failure) {
        d = fnv_mix(d, std::bit_cast<std::uint64_t>(result.failure->distance));
        d = fnv_mix(d, std::bit_cast<std::uint64_t>(result.failure->threshold));
        d = fnv_mix(d, std::bit_cast<std::uint64_t>(result.failure->p_hat));
    }
    return d;
}

/// Screen the whole population on `threads` workers (disjoint contiguous
/// server ranges).  Per-server digests land at their server's index, so
/// the combined digest is independent of the thread count by
/// construction; only bit-level result drift can change it.  Returns
/// elapsed seconds.
double run_screen(const core::MultiTest& tester,
                  const std::vector<std::vector<std::uint8_t>>& tapes,
                  std::size_t threads, std::uint64_t& digest_out) {
    const std::size_t servers = tapes.size();
    std::vector<std::uint64_t> digests(servers, 0);
    const obs::Stopwatch watch;
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            const std::size_t begin = servers * t / threads;
            const std::size_t end = servers * (t + 1) / threads;
            for (std::size_t s = begin; s < end; ++s) {
                digests[s] = result_digest(
                    tester.test(std::span<const std::uint8_t>{tapes[s]}));
            }
        });
    }
    for (auto& worker : pool) worker.join();
    const double seconds = watch.seconds();
    std::uint64_t digest = 1469598103934665603ULL;
    for (const std::uint64_t d : digests) digest = fnv_mix(digest, d);
    digest_out = digest;
    return seconds;
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    const char* out_path = "BENCH_5.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--smoke] [--out <path>]\n", argv[0]);
            return 2;
        }
    }
    const std::size_t servers = smoke ? 128 : 1000;
    const std::size_t history = smoke ? 120 : 400;
    const std::vector<double> thread_counts{1, 2, 4, 8};

    core::MultiTestConfig config;
    config.bonferroni = true;
    std::printf("assessment_hotpath: %zu servers x %zu outcomes, m=%u%s\n", servers,
                history, config.base.window_size, smoke ? " (smoke)" : "");
    const auto tapes = make_population(servers, history);

    // One calibrator for every lane, warmed by an unmeasured uncached
    // pass: the lanes below never pay Monte-Carlo cost.
    const auto calibrator = core::make_calibrator(config.base);
    config.base.use_reference_cache = false;
    const core::MultiTest uncached{config, calibrator};
    {
        std::uint64_t ignored = 0;
        (void)run_screen(uncached, tapes, 1, ignored);
    }

    // The ladder touches ~servers * stages distinct exact-rational keys;
    // a private cache sized above that working set keeps the warm lane
    // eviction-free (the default capacity is tuned for serving, not for
    // screening a whole population in one sweep).
    const auto cache = std::make_shared<stats::ReferenceModelCache>(std::size_t{1}
                                                                    << 16);

    bench::Series uncached_aps{"uncached_aps", {}};
    bench::Series cold_aps{"cold_aps", {}};
    bench::Series warm_aps{"warm_aps", {}};
    std::uint64_t reference_digest = 0;
    bool digests_match = true;
    const auto population = static_cast<double>(servers);
    for (const double threads : thread_counts) {
        const auto t = static_cast<std::size_t>(threads);

        std::uint64_t uncached_digest = 0;
        const double uncached_s = run_screen(uncached, tapes, t, uncached_digest);
        uncached_aps.values.push_back(population / uncached_s);
        if (threads == 1.0) reference_digest = uncached_digest;

        // Cold lane: a fresh tester *and* an emptied cache, so every
        // stage takes the miss path (construct + insert, single-flight).
        cache->clear();
        config.base.use_reference_cache = true;
        config.base.reference_cache = cache;
        const core::MultiTest cached{config, calibrator};
        std::uint64_t cold_digest = 0;
        const double cold_s = run_screen(cached, tapes, t, cold_digest);
        cold_aps.values.push_back(population / cold_s);

        // Warm lane: same cache, now holding the full working set.
        std::uint64_t warm_digest = 0;
        const double warm_s = run_screen(cached, tapes, t, warm_digest);
        warm_aps.values.push_back(population / warm_s);

        for (const std::uint64_t digest : {uncached_digest, cold_digest, warm_digest}) {
            if (digest != reference_digest) {
                digests_match = false;
                std::fprintf(stderr, "FAIL: digest drift at t=%g\n", threads);
            }
        }
    }

    bench::print_figure("assessment hot path (screenings/s)", "threads",
                        thread_counts, {uncached_aps, cold_aps, warm_aps});
    std::vector<double> warm_speedup;
    for (std::size_t i = 0; i < thread_counts.size(); ++i) {
        warm_speedup.push_back(warm_aps.values[i] / uncached_aps.values[i]);
    }
    const double steady_state = warm_speedup.back();
    const auto stats = cache->stats();
    std::printf("\nwarm-cache speedup vs uncached: 1t=%.2fx 8t=%.2fx "
                "(%zu hardware threads)\n",
                warm_speedup.front(), steady_state,
                static_cast<std::size_t>(std::thread::hardware_concurrency()));
    std::printf("cache: %llu hits, %llu misses, %llu joins, %llu evictions, "
                "%zu entries\n",
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses),
                static_cast<unsigned long long>(stats.single_flight_joins),
                static_cast<unsigned long long>(stats.evictions), stats.entries);

    if (std::FILE* out = std::fopen(out_path, "w")) {
        std::fprintf(out,
                     "{\n"
                     "  \"bench\": \"assessment_hotpath\",\n"
                     "  \"smoke\": %s,\n"
                     "  \"hardware_threads\": %zu,\n"
                     "  \"servers\": %zu,\n"
                     "  \"history\": %zu,\n"
                     "  \"window_size\": %u,\n",
                     smoke ? "true" : "false",
                     static_cast<std::size_t>(std::thread::hardware_concurrency()),
                     servers, history, config.base.window_size);
        const auto print_array = [out](const char* name,
                                       const std::vector<double>& values) {
            std::fprintf(out, "  \"%s\": [", name);
            for (std::size_t i = 0; i < values.size(); ++i) {
                std::fprintf(out, "%s%.3f", i == 0 ? "" : ", ", values[i]);
            }
            std::fprintf(out, "],\n");
        };
        print_array("threads", thread_counts);
        print_array("uncached_aps", uncached_aps.values);
        print_array("cold_aps", cold_aps.values);
        print_array("warm_aps", warm_aps.values);
        print_array("warm_speedup", warm_speedup);
        std::fprintf(out,
                     "  \"steady_state_speedup\": %.3f,\n"
                     "  \"digests_match\": %s,\n"
                     "  \"reference_digest\": \"0x%016llx\",\n"
                     "  \"cache\": {\"hits\": %llu, \"misses\": %llu, "
                     "\"single_flight_joins\": %llu, \"evictions\": %llu, "
                     "\"entries\": %zu}\n"
                     "}\n",
                     steady_state, digests_match ? "true" : "false",
                     static_cast<unsigned long long>(reference_digest),
                     static_cast<unsigned long long>(stats.hits),
                     static_cast<unsigned long long>(stats.misses),
                     static_cast<unsigned long long>(stats.single_flight_joins),
                     static_cast<unsigned long long>(stats.evictions), stats.entries);
        std::fclose(out);
        std::printf("wrote %s\n", out_path);
    } else {
        std::fprintf(stderr, "FAIL: cannot write %s\n", out_path);
        return 1;
    }

    if (!digests_match) return 1;
    if (!smoke && std::thread::hardware_concurrency() >= 8 && steady_state < 2.0) {
        std::fprintf(stderr,
                     "FAIL: 8-thread steady-state speedup %.2fx below the 2x budget\n",
                     steady_state);
        return 1;
    }

    bench::print_metrics();
    return 0;
}
