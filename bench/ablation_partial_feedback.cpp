// Ablation: partial feedback retrieval.
//
// Paper §2: "In practice, our scheme can be equally applied to systems
// where only portions of feedbacks can be retrieved."  The paper never
// quantifies this, so this bench does: detection and false-positive rates
// of multi-testing when the assessor only sees an independent `fraction`
// sample of each server's log (the FeedbackStore::sample_history model of
// bandwidth-limited retrieval).
//
// Expectation: iid subsampling preserves honest binomial structure (FP
// flat), while attack signatures survive proportionally — rigid patterns
// blur as the sample thins, so detection decays gracefully with the
// retrieval fraction rather than collapsing.

#include "bench_common.h"
#include "core/multi_test.h"
#include "sim/generators.h"

namespace {

using namespace hpr;

/// Detection/FP with a Bernoulli(fraction) retrieval filter per feedback.
double flagged_rate(double fraction, bool attack, std::size_t trials,
                    const std::shared_ptr<stats::Calibrator>& cal) {
    const core::MultiTest tester{{}, cal};
    stats::Rng rng{static_cast<std::uint64_t>(fraction * 1000) + (attack ? 1 : 0)};
    std::size_t flagged = 0;
    for (std::size_t t = 0; t < trials; ++t) {
        const auto full = attack ? sim::periodic_outcomes(1600, 10, 0.1, rng)
                                 : sim::honest_outcomes(1600, 0.9, rng);
        std::vector<std::uint8_t> sampled;
        for (const auto o : full) {
            if (rng.bernoulli(fraction)) sampled.push_back(o);
        }
        if (!tester.test(std::span<const std::uint8_t>{sampled}).passed) ++flagged;
    }
    return static_cast<double>(flagged) / static_cast<double>(trials);
}

}  // namespace

int main() {
    const auto cal = core::make_calibrator({});
    const std::vector<double> fractions{1.0, 0.8, 0.6, 0.4, 0.2};

    hpr::bench::Series detect{"detect(N=10)", {}};
    hpr::bench::Series fp{"honest FP", {}};
    for (const double fraction : fractions) {
        detect.values.push_back(flagged_rate(fraction, true, 150, cal));
        fp.values.push_back(flagged_rate(fraction, false, 150, cal));
    }
    hpr::bench::print_figure(
        "Ablation  partial feedback retrieval (history 1600, N=10 attack)",
        "retrieval_fraction", fractions, {detect, fp});
    std::printf("\n(iid subsampling keeps honest structure intact; rigid attack "
                "signatures blur as the sample thins)\n");
    hpr::bench::print_metrics();
    return 0;
}
