// Defense shootout: end-to-end marketplace comparison of phase-2 trust
// functions with and without phase-1 screening.
//
// A fixed seller population (three honest tiers, a hibernating attacker,
// a periodic attacker) serves 1200 buyer requests under each defense.
// The metric is the number of bad transactions buyers suffer — the
// quantity every other figure is a proxy for.  Expected: every trust
// function improves when Scheme 2 screening is bolted on (the paper's
// core claim: screening composes with any trust function).

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "sim/market.h"

namespace {

using namespace hpr;

std::size_t run_market(const std::string& trust_spec, core::ScreeningMode mode,
                       const std::shared_ptr<stats::Calibrator>& cal) {
    core::TwoPhaseConfig config;
    config.mode = mode;
    config.test.bonferroni = true;
    const auto assessor = std::make_shared<const core::TwoPhaseAssessor>(
        config,
        std::shared_ptr<const repsys::TrustFunction>{
            repsys::make_trust_function(trust_spec)},
        cal);

    sim::MarketConfig market_config;
    market_config.steps = 1200;
    market_config.trust_threshold = 0.85;
    market_config.bootstrap_per_server = 80;
    market_config.exploration = 0.03;
    market_config.seed = 20250705;

    sim::Marketplace market{market_config, assessor};
    market.add_server(std::make_unique<sim::HonestStrategy>(0.97));
    market.add_server(std::make_unique<sim::HonestStrategy>(0.93));
    market.add_server(std::make_unique<sim::HonestStrategy>(0.90));
    market.add_server(std::make_unique<sim::HibernatingStrategy>(80, 0.96));
    market.add_server(std::make_unique<sim::PeriodicStrategy>(20, 2));
    market.run();
    return market.total_bad_suffered();
}

}  // namespace

int main() {
    const auto cal = core::make_calibrator({});
    const std::vector<std::string> trust_specs{"average", "weighted:0.5", "beta",
                                               "decay:0.98", "trustguard"};

    std::printf("=== Marketplace shootout: bad transactions suffered by buyers "
                "(1200 requests) ===\n");
    std::printf("%-14s %12s %12s %12s\n", "trust fn", "no screen", "scheme1",
                "scheme2");
    for (const auto& spec : trust_specs) {
        const std::size_t none = run_market(spec, core::ScreeningMode::kNone, cal);
        const std::size_t single = run_market(spec, core::ScreeningMode::kSingle, cal);
        const std::size_t multi = run_market(spec, core::ScreeningMode::kMulti, cal);
        std::printf("%-14s %12zu %12zu %12zu\n", spec.c_str(), none, single, multi);
    }
    std::printf("\n(population: honest 0.97/0.93/0.90, hibernating attacker, "
                "periodic 2-in-20 attacker; threshold 0.85, 3%% exploration)\n");
    hpr::bench::print_metrics();
    return 0;
}
