// Streaming steady state: proves the horizon-bounded OnlineScreener is
// flat in time and memory no matter how old its stream gets, and that
// bounding costs no verdict fidelity over the retained horizon.
//
//   build/bench/streaming_steady_state [--smoke] [--out BENCH_6.json]
//
// Three phases, each with its budget enforced (exit 1 on violation):
//
//  1. **Flat latency.**  One horizon-H screener ingests a 100x-longer
//     stream than its horizon; median per-feedback latency is measured
//     right after the ring first fills ("early") and again at 100x the
//     stream age ("late").  Budget: late/early <= 1.25.  The unbounded
//     screener (max_windows = 0) runs the same stream to 10x as the
//     contrast lane — its ladder deepens with the stream, so its ratio
//     is reported (and should be visibly worse), not budgeted.
//  2. **Bounded memory.**  A serve::BatchAssessor screener bank tracks
//     >= 100k server ids; a subset then receives 100x more traffic.
//     Budget: the bank's resident bytes are *identical* before and
//     after (rings are reserved at construction and never regrow), and
//     eviction releases exactly the dropped streams.
//  3. **Zero divergence.**  Fuzzed streams (honest, marginal, and
//     mid-stream cheats) check that (a) bounded == unbounded verdicts,
//     states, and p-hat while the stream still fits the horizon, and
//     (b) once wrapped, every bounded evaluation equals batch
//     MultiTest over the newest H*m outcomes.  Budget: zero mismatches.
//
// Calibration is warmed (and the latency streams pre-run unmeasured)
// first, so the measured lanes never pay Monte-Carlo cost.  Results are
// written as machine-readable JSON (default BENCH_6.json) and the bench
// ends with the obs registry dump so the hpr_serving_screener_* gauges
// land in CI logs.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <span>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "hpr.h"

using namespace hpr;

namespace {

double median(std::vector<double> values) {
    if (values.empty()) return 0.0;
    std::sort(values.begin(), values.end());
    return values[values.size() / 2];
}

/// Deterministic outcome tape: Bernoulli(p) until `flip_at` (0 = never),
/// Bernoulli(p_after) from there on.
std::vector<std::uint8_t> make_tape(std::uint64_t seed, std::size_t length,
                                    double p, std::size_t flip_at,
                                    double p_after) {
    stats::Rng rng{seed};
    std::vector<std::uint8_t> tape;
    tape.reserve(length);
    for (std::size_t i = 0; i < length; ++i) {
        const double p_now = (flip_at != 0 && i >= flip_at) ? p_after : p;
        tape.push_back(rng.bernoulli(p_now) ? 1 : 0);
    }
    return tape;
}

/// Feed tape[begin, end) into the screener, timing each window-sized
/// chunk; returns the median per-feedback latency in nanoseconds.
double measured_feed(core::OnlineScreener& screener,
                     const std::vector<std::uint8_t>& tape, std::size_t begin,
                     std::size_t end, std::uint32_t m) {
    std::vector<double> chunk_ns;
    chunk_ns.reserve((end - begin) / m);
    for (std::size_t at = begin; at + m <= end; at += m) {
        const obs::Stopwatch watch;
        for (std::size_t i = 0; i < m; ++i) screener.observe(tape[at + i] != 0);
        chunk_ns.push_back(watch.seconds() * 1e9 / static_cast<double>(m));
    }
    return median(std::move(chunk_ns));
}

/// Feed tape[begin, end) without timing.
void feed(core::OnlineScreener& screener, const std::vector<std::uint8_t>& tape,
          std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) screener.observe(tape[i] != 0);
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    const char* out_path = "BENCH_6.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--smoke] [--out <path>]\n", argv[0]);
            return 2;
        }
    }

    core::OnlineScreenerConfig screener_config;
    screener_config.test.bonferroni = true;
    const std::uint32_t m = screener_config.test.base.window_size;
    const std::size_t horizon = smoke ? 16 : 64;  // windows
    const std::size_t age_multiplier = 100;       // late stream age vs early
    const std::size_t horizon_tx = horizon * m;
    screener_config.max_windows = horizon;

    std::printf("streaming_steady_state: horizon=%zu windows, m=%u, "
                "late stream age=%zux%s\n",
                horizon, m, age_multiplier, smoke ? " (smoke)" : "");

    // One calibrator for every lane; warm the whole (windows x p) grid
    // the ladders below can touch, plus the contrast lane's deep ladder.
    const auto calibrator = core::make_calibrator(screener_config.test.base);
    const std::size_t unbounded_windows = horizon * 10;
    {
        const obs::Stopwatch watch;
        const std::size_t warmed =
            core::warm_calibration(*calibrator, m, unbounded_windows, 0.30, 1.0);
        std::printf("warm start: %zu calibration keys in %.1fs\n", warmed,
                    watch.seconds());
    }

    bool all_budgets_met = true;

    // ---- Phase 1: flat latency ------------------------------------------
    // Early = the `horizon` windows right after the ring first fills;
    // late = the same measurement at 100x the stream age.
    const std::size_t early_begin = horizon_tx;
    const std::size_t early_end = 2 * horizon_tx;
    const std::size_t late_end = age_multiplier * horizon_tx;
    const std::size_t late_begin = late_end - horizon_tx;
    const auto latency_tape = make_tape(0x57ead1ULL, late_end, 0.92, 0, 0.0);

    // Unmeasured pre-run: identical stream, so the measured lanes hit
    // every calibration and reference-model key warm.
    {
        core::OnlineScreener warmup{screener_config, calibrator};
        feed(warmup, latency_tape, 0, late_end);
    }
    core::OnlineScreener bounded{screener_config, calibrator};
    feed(bounded, latency_tape, 0, early_begin);
    const double bounded_early_ns =
        measured_feed(bounded, latency_tape, early_begin, early_end, m);
    feed(bounded, latency_tape, early_end, late_begin);
    const double bounded_late_ns =
        measured_feed(bounded, latency_tape, late_begin, late_end, m);
    const double bounded_ratio = bounded_late_ns / bounded_early_ns;

    // Contrast lane: the unbounded screener's ladder deepens with the
    // stream, so 10x the stream age is already enough to see the drift.
    core::OnlineScreenerConfig unbounded_config = screener_config;
    unbounded_config.max_windows = 0;
    const std::size_t contrast_end = unbounded_windows * m;
    {
        core::OnlineScreener warmup{unbounded_config, calibrator};
        feed(warmup, latency_tape, 0, contrast_end);
    }
    core::OnlineScreener unbounded{unbounded_config, calibrator};
    feed(unbounded, latency_tape, 0, early_begin);
    const double unbounded_early_ns =
        measured_feed(unbounded, latency_tape, early_begin, early_end, m);
    feed(unbounded, latency_tape, early_end, contrast_end - horizon_tx);
    const double unbounded_late_ns = measured_feed(
        unbounded, latency_tape, contrast_end - horizon_tx, contrast_end, m);
    const double unbounded_ratio = unbounded_late_ns / unbounded_early_ns;

    std::printf("\nper-feedback latency (median ns):\n"
                "  bounded   early=%.0f late(%zux)=%.0f ratio=%.3f (budget <= 1.25)\n"
                "  unbounded early=%.0f late(10x)=%.0f ratio=%.3f (contrast)\n",
                bounded_early_ns, age_multiplier, bounded_late_ns, bounded_ratio,
                unbounded_early_ns, unbounded_late_ns, unbounded_ratio);
    std::printf("  memory: bounded=%zu bytes (constant), unbounded=%zu bytes "
                "at 10x age\n",
                bounded.memory_bytes(), unbounded.memory_bytes());
    if (!(bounded_ratio <= 1.25)) {
        std::fprintf(stderr,
                     "FAIL: bounded late/early latency ratio %.3f exceeds 1.25\n",
                     bounded_ratio);
        all_budgets_met = false;
    }

    // ---- Phase 2: bounded memory across a large screener bank -----------
    const std::size_t bank_servers = smoke ? 5000 : 100000;
    const std::size_t hot_servers = smoke ? 64 : 128;
    serve::BatchAssessorConfig serve_config;
    serve_config.assessment.test = screener_config.test;
    serve_config.screener_horizon = horizon;
    serve_config.threads = 1;
    serve::BatchAssessor bank{
        serve_config,
        std::shared_ptr<const repsys::TrustFunction>{
            repsys::make_trust_function("beta")},
        calibrator};
    stats::Rng bank_rng{0xbadc0ffeULL};
    const auto observe_n = [&](repsys::EntityId server, std::size_t count,
                               repsys::Timestamp start) {
        for (std::size_t i = 0; i < count; ++i) {
            bank.observe(repsys::Feedback{start + static_cast<repsys::Timestamp>(i),
                                          server, 1,
                                          bank_rng.bernoulli(0.9)
                                              ? repsys::Rating::kPositive
                                              : repsys::Rating::kNegative});
        }
    };
    // Short streams: two complete windows per server (below min_windows,
    // so this sweep measures pure ingest + ring footprint).
    for (std::size_t s = 0; s < bank_servers; ++s) {
        observe_n(static_cast<repsys::EntityId>(s + 1), 2 * m, 1);
    }
    const std::size_t bytes_short = bank.stream_memory_bytes();
    const std::size_t tracked_short = bank.tracked_streams();
    // A hot subset then lives 100x longer (well past ring wrap-around).
    for (std::size_t s = 0; s < hot_servers; ++s) {
        observe_n(static_cast<repsys::EntityId>(s + 1), age_multiplier * 2 * m,
                  2 * m + 1);
    }
    const std::size_t bytes_long = bank.stream_memory_bytes();
    const std::size_t per_stream =
        tracked_short == 0 ? 0 : bytes_short / tracked_short;
    std::printf("\nscreener bank: %zu streams, %zu bytes (%zu/stream); after "
                "%zu streams aged %zux: %zu bytes\n",
                tracked_short, bytes_short, per_stream, hot_servers,
                age_multiplier, bytes_long);
    if (tracked_short != bank_servers || bytes_long != bytes_short) {
        std::fprintf(stderr,
                     "FAIL: bank memory not bounded (%zu -> %zu bytes)\n",
                     bytes_short, bytes_long);
        all_budgets_met = false;
    }
    // Eviction churn: retention on the store side must release exactly
    // the forgotten servers' screeners.
    std::size_t evicted_streams = 0;
    {
        repsys::FeedbackStore store;
        const std::size_t evict_servers = smoke ? 500 : 1000;
        for (std::size_t s = 0; s < evict_servers; ++s) {
            store.submit(repsys::Feedback{1, static_cast<repsys::EntityId>(s + 1),
                                          1, repsys::Rating::kPositive});
        }
        std::vector<repsys::EntityId> forgotten;
        (void)store.evict_before(2, &forgotten);
        evicted_streams = bank.drop_streams(forgotten);
        const std::size_t expected = bank_servers - evict_servers;
        std::printf("eviction: forgot %zu servers, released %zu screeners, "
                    "%zu streams remain\n",
                    forgotten.size(), evicted_streams, bank.tracked_streams());
        if (evicted_streams != forgotten.size() ||
            bank.tracked_streams() != expected) {
            std::fprintf(stderr, "FAIL: eviction did not release the bank\n");
            all_budgets_met = false;
        }
    }
    (void)bank.stream_memory_bytes();  // republish the bytes gauge post-eviction

    // ---- Phase 3: zero divergence ---------------------------------------
    // (a) bounded == unbounded while the stream fits the horizon;
    // (b) once wrapped, bounded evaluations == batch MultiTest over the
    //     newest horizon*m outcomes.
    const std::size_t fuzz_streams = smoke ? 12 : 100;
    const std::size_t fuzz_tx = 3 * horizon_tx;
    const core::MultiTest oracle{screener_config.test, calibrator};
    std::size_t horizon_mismatches = 0;
    std::size_t oracle_divergences = 0;
    std::size_t oracle_checks = 0;
    stats::Rng fuzz_rng{0xd1fefe11ULL};
    for (std::size_t run = 0; run < fuzz_streams; ++run) {
        const double p = 0.55 + 0.43 * fuzz_rng.uniform();
        const bool cheats = run % 3 == 2;
        const std::size_t flip_at = cheats ? fuzz_tx / 2 : 0;
        const auto tape =
            make_tape(0xfadedULL + run, fuzz_tx, p, flip_at, p * 0.55);
        core::OnlineScreener ring{screener_config, calibrator};
        core::OnlineScreener full{unbounded_config, calibrator};
        for (std::size_t i = 0; i < fuzz_tx; ++i) {
            const bool good = tape[i] != 0;
            ring.observe(good);
            if (i < horizon_tx) {
                full.observe(good);
                if (ring.state() != full.state() ||
                    ring.p_hat() != full.p_hat() ||
                    ring.last_evaluation_passed() !=
                        full.last_evaluation_passed()) {
                    ++horizon_mismatches;
                }
            }
            const bool window_edge = (i + 1) % m == 0;
            if (window_edge && i + 1 >= horizon_tx) {
                ++oracle_checks;
                const auto batch = oracle.test(std::span<const std::uint8_t>{
                    tape.data() + (i + 1 - horizon_tx), horizon_tx});
                if (batch.passed != ring.last_evaluation_passed()) {
                    ++oracle_divergences;
                }
            }
        }
    }
    std::printf("\ndivergence: %zu streams x %zu tx, %zu within-horizon "
                "mismatches, %zu/%zu oracle divergences\n",
                fuzz_streams, fuzz_tx, horizon_mismatches, oracle_divergences,
                oracle_checks);
    if (horizon_mismatches != 0 || oracle_divergences != 0) {
        std::fprintf(stderr, "FAIL: bounded screener diverged\n");
        all_budgets_met = false;
    }

    if (std::FILE* out = std::fopen(out_path, "w")) {
        std::fprintf(
            out,
            "{\n"
            "  \"bench\": \"streaming_steady_state\",\n"
            "  \"smoke\": %s,\n"
            "  \"hardware_threads\": %zu,\n"
            "  \"window_size\": %u,\n"
            "  \"horizon_windows\": %zu,\n"
            "  \"age_multiplier\": %zu,\n"
            "  \"latency\": {\n"
            "    \"bounded_early_ns\": %.1f,\n"
            "    \"bounded_late_ns\": %.1f,\n"
            "    \"bounded_late_early_ratio\": %.3f,\n"
            "    \"ratio_budget\": 1.25,\n"
            "    \"unbounded_early_ns\": %.1f,\n"
            "    \"unbounded_late_ns\": %.1f,\n"
            "    \"unbounded_late_early_ratio\": %.3f,\n"
            "    \"bounded_screener_bytes\": %zu,\n"
            "    \"unbounded_screener_bytes_10x\": %zu\n"
            "  },\n"
            "  \"memory\": {\n"
            "    \"bank_servers\": %zu,\n"
            "    \"bytes_short_streams\": %zu,\n"
            "    \"bytes_after_100x_subset\": %zu,\n"
            "    \"bytes_per_stream\": %zu,\n"
            "    \"bounded\": %s,\n"
            "    \"evicted_streams\": %zu\n"
            "  },\n"
            "  \"divergence\": {\n"
            "    \"fuzz_streams\": %zu,\n"
            "    \"stream_tx\": %zu,\n"
            "    \"within_horizon_mismatches\": %zu,\n"
            "    \"oracle_checks\": %zu,\n"
            "    \"oracle_divergences\": %zu\n"
            "  },\n"
            "  \"all_budgets_met\": %s\n"
            "}\n",
            smoke ? "true" : "false",
            static_cast<std::size_t>(std::thread::hardware_concurrency()), m,
            horizon, age_multiplier, bounded_early_ns, bounded_late_ns,
            bounded_ratio, unbounded_early_ns, unbounded_late_ns,
            unbounded_ratio, bounded.memory_bytes(), unbounded.memory_bytes(),
            bank_servers, bytes_short, bytes_long, per_stream,
            bytes_long == bytes_short ? "true" : "false", evicted_streams,
            fuzz_streams, fuzz_tx, horizon_mismatches, oracle_checks,
            oracle_divergences, all_budgets_met ? "true" : "false");
        std::fclose(out);
        std::printf("wrote %s\n", out_path);
    } else {
        std::fprintf(stderr, "FAIL: cannot write %s\n", out_path);
        return 1;
    }

    bench::print_metrics();
    return all_budgets_met ? 0 : 1;
}
