// Reproduces paper Fig. 9: running time of behavior testing vs. the
// initial-history size (100 000 .. 800 000 transactions).
//
// The paper reports that single-behavior testing is O(n) and that the
// optimized multi-testing of §5.5 — which reuses intermediate window
// statistics across suffixes — is O(n) as well, so both curves grow
// linearly and screening even huge histories is fast.  The naive
// O(n^2/step) multi-testing is included as an ablation on smaller inputs
// to show the quadratic blow-up the optimization removes.
//
// Calibration thresholds are warmed up before timing (the paper's Fig. 9
// measures the testing algorithm; threshold calibration is a memoized
// one-time cost shared by every test).

#include <chrono>
#include <functional>

#include "bench_common.h"
#include "core/multi_test.h"
#include "sim/generators.h"

namespace {

using Clock = std::chrono::steady_clock;

double time_ms(const std::function<void()>& body, int repetitions) {
    // One untimed warm-up populates calibration caches.
    body();
    const auto start = Clock::now();
    for (int r = 0; r < repetitions; ++r) body();
    const auto elapsed = Clock::now() - start;
    return std::chrono::duration<double, std::milli>(elapsed).count() / repetitions;
}

}  // namespace

int main() {
    const auto cal = hpr::core::make_calibrator({});
    const hpr::core::BehaviorTest single{{}, cal};
    hpr::core::MultiTestConfig multi_config;
    multi_config.stop_on_failure = false;  // time the full scan
    const hpr::core::MultiTest multi{multi_config, cal};

    // Warm the calibration cache explicitly (and time it): one
    // pool-parallel sweep over every key the suffix ladders below can
    // touch, instead of paying cold Monte-Carlo runs mid-measurement.
    {
        const auto warm_begin = Clock::now();
        const std::size_t warmed = hpr::core::warm_calibration(
            *cal, 10, cal->config().windows_cap, 0.85, 0.95);
        const double warm_s =
            std::chrono::duration<double>(Clock::now() - warm_begin).count();
        std::printf("calibration warm start: %zu keys in %.1fs on %zu threads "
                    "(%zu Monte-Carlo runs)\n\n",
                    warmed, warm_s, cal->threads(), cal->compute_count());
    }

    hpr::stats::Rng rng{6001};

    {
        const std::vector<double> sizes{100000, 200000, 300000, 400000,
                                        500000, 600000, 700000, 800000};
        hpr::bench::Series single_ms{"single test (ms)", {}};
        hpr::bench::Series multi_ms{"multi opt (ms)", {}};
        for (const double n : sizes) {
            const auto outcomes =
                hpr::sim::honest_outcomes(static_cast<std::size_t>(n), 0.9, rng);
            const std::span<const std::uint8_t> view{outcomes};
            single_ms.values.push_back(
                time_ms([&] { (void)single.test(view); }, 5));
            multi_ms.values.push_back(time_ms([&] { (void)multi.test(view); }, 5));
        }
        hpr::bench::print_figure(
            "Fig.9  behavior-testing time vs history size (O(n) algorithms)",
            "history_size", sizes, {single_ms, multi_ms});
    }

    {
        // Ablation: naive multi-testing re-counts every suffix — quadratic.
        const std::vector<double> sizes{10000, 20000, 40000, 80000};
        hpr::bench::Series naive_ms{"multi naive (ms)", {}};
        hpr::bench::Series opt_ms{"multi opt (ms)", {}};
        for (const double n : sizes) {
            const auto outcomes =
                hpr::sim::honest_outcomes(static_cast<std::size_t>(n), 0.9, rng);
            const std::span<const std::uint8_t> view{outcomes};
            naive_ms.values.push_back(
                time_ms([&] { (void)multi.test_naive(view); }, 1));
            opt_ms.values.push_back(time_ms([&] { (void)multi.test(view); }, 1));
        }
        hpr::bench::print_figure(
            "Fig.9 (ablation)  naive O(n^2) vs optimized O(n) multi-testing",
            "history_size", sizes, {naive_ms, opt_ms});
    }
    std::printf("\n(window 10, step 20, warmed calibration cache, means of repeated runs)\n");
    hpr::bench::print_metrics();
    return 0;
}
