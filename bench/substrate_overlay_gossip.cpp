// Substrate benchmarks: the decentralized feedback machinery the paper's
// §2 availability assumption rests on.
//
//  * Overlay routing: greedy finger routing over a consistent-hash ring
//    — worst/mean lookup hops must grow logarithmically in network size
//    (the P-Grid-style "special data organization scheme" of [11]).
//  * Overlay availability: fraction of server logs still retrievable as
//    nodes crash, per replication factor.
//  * Gossip aggregation: push-sum rounds to agreement vs. network size
//    (the decentralized aggregation of [17]).

#include <cmath>

#include "bench_common.h"
#include "sim/gossip.h"
#include "sim/overlay.h"
#include "stats/rng.h"

namespace {

using namespace hpr;

void routing_bench() {
    const std::vector<double> sizes{16, 64, 256, 1024, 4096};
    bench::Series mean_hops{"mean hops", {}};
    bench::Series worst_hops{"worst hops", {}};
    bench::Series log2n{"log2(n)", {}};
    for (const double n : sizes) {
        sim::OverlayConfig config;
        config.nodes = static_cast<std::size_t>(n);
        config.replication = 1;
        const sim::FeedbackOverlay overlay{config};
        stats::Rng rng{config.nodes};
        double total = 0.0;
        std::size_t worst = 0;
        constexpr int kLookups = 500;
        for (int i = 0; i < kLookups; ++i) {
            (void)overlay.lookup(static_cast<repsys::EntityId>(rng()));
            total += static_cast<double>(overlay.last_hops());
            worst = std::max(worst, overlay.last_hops());
        }
        mean_hops.values.push_back(total / kLookups);
        worst_hops.values.push_back(static_cast<double>(worst));
        log2n.values.push_back(std::log2(n));
    }
    bench::print_figure("Substrate  overlay lookup hops vs network size", "nodes",
                        sizes, {mean_hops, worst_hops, log2n});
}

void availability_bench() {
    const std::vector<double> failure_fractions{0.0, 0.1, 0.2, 0.3, 0.4, 0.5};
    std::vector<bench::Series> series;
    for (const std::size_t replication : {1u, 3u, 5u}) {
        bench::Series s{"repl=" + std::to_string(replication), {}};
        for (const double fail : failure_fractions) {
            sim::OverlayConfig config;
            config.nodes = 128;
            config.replication = replication;
            sim::FeedbackOverlay overlay{config};
            constexpr repsys::EntityId kServers = 200;
            for (repsys::EntityId srv = 1; srv <= kServers; ++srv) {
                overlay.publish(repsys::Feedback{1, srv, 9999,
                                                 repsys::Rating::kPositive});
            }
            stats::Rng rng{static_cast<std::uint64_t>(fail * 100) + replication};
            const auto to_kill = static_cast<std::size_t>(fail * 128);
            std::vector<std::size_t> order(128);
            for (std::size_t i = 0; i < 128; ++i) order[i] = i;
            rng.shuffle(order);
            for (std::size_t i = 0; i < to_kill; ++i) overlay.fail_node(order[i]);
            std::size_t alive_logs = 0;
            for (repsys::EntityId srv = 1; srv <= kServers; ++srv) {
                if (!overlay.lookup(srv).empty()) ++alive_logs;
            }
            s.values.push_back(static_cast<double>(alive_logs) / kServers);
        }
        series.push_back(std::move(s));
    }
    bench::print_figure(
        "Substrate  feedback-log availability vs node failures (128 nodes)",
        "failed_fraction", failure_fractions, series);
}

void gossip_bench() {
    const std::vector<double> sizes{8, 32, 128, 512, 2048};
    bench::Series rounds{"rounds to 1e-6", {}};
    bench::Series error{"final max error", {}};
    for (const double n : sizes) {
        std::vector<double> shard_ratios;
        stats::Rng rng{static_cast<std::uint64_t>(n)};
        for (std::size_t i = 0; i < static_cast<std::size_t>(n); ++i) {
            shard_ratios.push_back(0.8 + 0.2 * rng.uniform());
        }
        sim::GossipConfig config;
        config.tolerance = 1e-6;
        sim::GossipNetwork network{shard_ratios, config,
                                   static_cast<std::uint64_t>(n) + 1};
        rounds.values.push_back(static_cast<double>(network.run()));
        error.values.push_back(network.max_error());
    }
    bench::print_figure(
        "Substrate  push-sum gossip rounds to agreement vs network size", "nodes",
        sizes, {rounds, error});
}

}  // namespace

int main() {
    routing_bench();
    availability_bench();
    gossip_bench();
    hpr::bench::print_metrics();
    return 0;
}
