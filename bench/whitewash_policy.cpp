// Newcomer-policy study: whitewashing vs. the §7 trade-off.
//
// Behavior testing cannot screen short histories, so a whitewashing
// attacker (honest for `prep` transactions, a burst of cheats, then a
// fresh identity — §3.1's cheat-and-run in a loop) slides under it
// forever.  The paper's answer is policy, not statistics: treat
// newcomers as high-risk, or price identities.  This bench quantifies
// the policy knob: bad transactions suffered and honest-newcomer
// starvation under the lenient (trust-value) vs strict (reject
// newcomers) client policy, across whitewash cycle lengths.

#include <memory>

#include "bench_common.h"
#include "sim/market.h"

namespace {

using namespace hpr;

struct Outcome {
    double bad_suffered;
    double whitewasher_share;  // fraction of post-bootstrap traffic it captured
};

Outcome run(std::size_t prep, sim::NewcomerPolicy policy,
            const std::shared_ptr<stats::Calibrator>& cal) {
    core::TwoPhaseConfig config;
    config.mode = core::ScreeningMode::kMulti;
    config.test.bonferroni = true;
    const auto assessor = std::make_shared<const core::TwoPhaseAssessor>(
        config,
        std::shared_ptr<const repsys::TrustFunction>{
            repsys::make_trust_function("average")},
        cal);

    sim::MarketConfig market_config;
    market_config.steps = 1000;
    market_config.trust_threshold = 0.85;
    market_config.bootstrap_per_server = 60;
    market_config.exploration = 0.08;
    market_config.newcomer_policy = policy;
    market_config.seed = 77000 + prep;

    sim::Marketplace market{market_config, assessor};
    market.add_server(std::make_unique<sim::HonestStrategy>(0.95));
    market.add_server(std::make_unique<sim::HonestStrategy>(0.92));
    const auto ww =
        market.add_server(std::make_unique<sim::WhitewashStrategy>(prep, 5, 0.96));
    market.run();

    const auto reports = market.report();
    double total_tx = 0.0;
    for (const auto& [id, r] : reports) total_tx += static_cast<double>(r.transactions);
    Outcome outcome;
    outcome.bad_suffered = static_cast<double>(market.total_bad_suffered());
    outcome.whitewasher_share =
        total_tx == 0.0
            ? 0.0
            : static_cast<double>(reports.at(ww).transactions) / total_tx;
    return outcome;
}

}  // namespace

int main() {
    const auto cal = core::make_calibrator({});
    const std::vector<double> preps{10, 20, 35, 60, 100};

    hpr::bench::Series bad_lenient{"bad (lenient)", {}};
    hpr::bench::Series bad_strict{"bad (strict)", {}};
    hpr::bench::Series share_lenient{"ww share (lenient)", {}};
    hpr::bench::Series share_strict{"ww share (strict)", {}};
    for (const double prep : preps) {
        const auto p = static_cast<std::size_t>(prep);
        const Outcome lenient = run(p, sim::NewcomerPolicy::kTrustValue, cal);
        const Outcome strict = run(p, sim::NewcomerPolicy::kReject, cal);
        bad_lenient.values.push_back(lenient.bad_suffered);
        bad_strict.values.push_back(strict.bad_suffered);
        share_lenient.values.push_back(lenient.whitewasher_share);
        share_strict.values.push_back(strict.whitewasher_share);
    }
    hpr::bench::print_figure(
        "Policy study  whitewashing attacker vs newcomer policy",
        "whitewash_prep", preps,
        {bad_lenient, bad_strict, share_lenient, share_strict});
    std::printf("\n(strict policy starves short-lived identities at the price of "
                "also starving honest newcomers - the paper's §7 trade-off)\n");
    hpr::bench::print_metrics();
    return 0;
}
