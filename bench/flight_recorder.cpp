// Flight-recorder interference: does the sampler thread (plus the
// watchdog evaluating and the black-box re-staging its dump every
// tick) perturb the assessment hot path?
//
//   build/bench/flight_recorder [--smoke] [--budget <percent>]
//                               [--out BENCH_8.json]
//
// The deployment shape under test is examples/reputation_server
// --listen --record-interval --blackbox: one process answering
// assessments while a recorder thread snapshots the full registry on a
// fixed cadence, the watchdog derives health signals from the ring,
// and every tick re-serializes the forensic payload into the
// black-box staging buffer.  The design claim is that all of that is
// off-path — one Registry::visit per tick on a dedicated thread, locks
// held only long enough to copy — so recording must not move the
// assess tail.
//
// Method: a population is ingested and calibration fully warmed, then
// the main thread times assess() calls over a fixed server sample in
// alternating baseline / recording segments (A/B/A/B..., pooled per
// lane, so slow host drift lands in both lanes equally).  During
// recording segments the recorder ticks at an aggressive 10ms cadence
// — 100x the production default — with the watchdog and black-box
// publish wired into the per-tick hook.  Self-checks: the recorder
// must actually have ticked during its lane, every tick must have
// evaluated the watchdog and re-staged the black-box, and the staged
// bytes must be non-empty.  On hosts with >= 8 hardware threads the
// full run enforces the overhead budget p99(recording) <=
// (1 + budget) x p99(baseline), default 2%; elsewhere (and under
// --smoke) the ratio is reported only.  Over-budget measurements
// re-measure (up to 5 attempts): a genuine regression inflates every
// attempt, a transiently loaded host does not.  Results land in
// BENCH_8.json.

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "hpr.h"

using namespace hpr;

namespace {

double p99_us(std::vector<double> seconds) {
    if (seconds.empty()) return 0.0;
    std::sort(seconds.begin(), seconds.end());
    const std::size_t index =
        static_cast<std::size_t>(0.99 * static_cast<double>(seconds.size() - 1));
    return seconds[index] * 1e6;
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    double budget_percent = 2.0;
    const char* out_path = "BENCH_8.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc) {
            budget_percent = std::atof(argv[++i]);
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--budget <percent>] "
                         "[--out <path>]\n",
                         argv[0]);
            return 2;
        }
    }
    const std::size_t servers = smoke ? 64 : 512;
    const std::size_t history = smoke ? 120 : 300;
    const std::size_t segments = smoke ? 4 : 12;  // per lane, interleaved
    const std::size_t calls_per_segment = smoke ? 10 : 50;
    const std::size_t sample_size = 64;
    const double record_interval = 0.01;  // 100x the production default

    std::printf("flight_recorder: %zu servers x %zu feedbacks, %zu+%zu "
                "alternating segments x %zu assess calls, %.0fms recorder "
                "cadence%s\n",
                servers, history, segments, segments, calls_per_segment,
                record_interval * 1e3, smoke ? " (smoke)" : "");

    // --- population + warmed serving layer --------------------------------
    repsys::FeedbackStore store{32};
    for (std::size_t s = 0; s < servers; ++s) {
        stats::Rng rng{0xf11e57ULL + s};
        const double p = 0.65 + 0.33 * rng.uniform();
        std::vector<repsys::Feedback> tape;
        tape.reserve(history);
        for (std::size_t i = 0; i < history; ++i) {
            tape.push_back(repsys::Feedback{
                static_cast<repsys::Timestamp>(i + 1),
                static_cast<repsys::EntityId>(s + 1),
                static_cast<repsys::EntityId>(
                    5000 + rng.uniform_int(std::uint64_t{97})),
                rng.bernoulli(p) ? repsys::Rating::kPositive
                                 : repsys::Rating::kNegative});
        }
        store.submit(tape);
    }

    serve::BatchAssessorConfig config;
    config.assessment.mode = core::ScreeningMode::kMulti;
    config.assessment.test.bonferroni = true;
    const auto calibrator = core::make_calibrator(config.assessment.test.base);
    serve::BatchAssessor assessor{
        config,
        std::shared_ptr<const repsys::TrustFunction>{
            repsys::make_trust_function("beta")},
        calibrator};
    (void)assessor.assess_all(store);  // unmeasured calibration warm-up

    obs::default_tracer().set_enabled(true);  // trace frames in the payload

    // --- the full self-observation stack, exactly as the daemon wires it --
    obs::FlightRecorder recorder{{.interval_seconds = record_interval,
                                  .capacity = 256}};
    obs::Watchdog watchdog;
    const std::string blackbox_path =
        std::string{"/tmp/flight_recorder_bench_"} + std::to_string(::getpid());
    obs::BlackBox& blackbox = obs::BlackBox::instance();
    if (!blackbox.arm(blackbox_path)) {
        std::fprintf(stderr, "FAIL: cannot arm black-box at %s\n",
                     blackbox_path.c_str());
        return 1;
    }
    recorder.set_on_sample([&watchdog, &blackbox](
                               const obs::FlightRecorder& rec,
                               const obs::RecorderSnapshot&) {
        watchdog.evaluate(rec);
        blackbox.publish(obs::render_blackbox(rec, &watchdog,
                                              &obs::default_tracer()));
    });

    // --- alternating measurement segments ---------------------------------
    std::vector<repsys::EntityId> sample;
    for (std::size_t i = 0; i < sample_size; ++i) {
        sample.push_back(
            static_cast<repsys::EntityId>(1 + (i * 7919) % servers));
    }

    std::vector<double> baseline_lat, recording_lat;
    std::uint64_t ticks_during_lane = 0;
    std::uint64_t trickle_clock = history;
    std::uint64_t trickle_server = 0;
    bool short_result = false;
    const auto measure = [&] {
        baseline_lat.clear();
        recording_lat.clear();
        ticks_during_lane = 0;
        for (std::size_t segment = 0; segment < 2 * segments; ++segment) {
            const bool recording = segment % 2 == 1;
            const std::uint64_t ticks_before = recorder.samples_taken();
            if (recording) recorder.start();
            auto& lane = recording ? recording_lat : baseline_lat;
            for (std::size_t call = 0; call < calls_per_segment; ++call) {
                // One feedback of live ingest per call, outside the
                // timed region: a serving daemon's hpr_store_ingest_total
                // never sits still, and without the trickle the watchdog
                // correctly reports an ingest stall mid-bench.
                store.submit(repsys::Feedback{
                    static_cast<repsys::Timestamp>(++trickle_clock),
                    static_cast<repsys::EntityId>(1 + trickle_server++ %
                                                          servers),
                    static_cast<repsys::EntityId>(5001),
                    repsys::Rating::kPositive});
                const obs::Stopwatch watch;
                const auto results = assessor.assess(store, sample);
                lane.push_back(watch.seconds());
                if (results.size() != sample.size()) short_result = true;
            }
            if (recording) {
                recorder.stop();
                ticks_during_lane += recorder.samples_taken() - ticks_before;
            }
        }
    };

    // Several attempts: a genuine hot-path regression inflates every
    // attempt and still fails, a transient burst of host load clears on
    // re-measurement after a short pause.
    const double budget_ratio = 1.0 + budget_percent / 100.0;
    const unsigned hw = std::thread::hardware_concurrency();
    const bool enforce = !smoke && hw >= 8;
    constexpr int kAttempts = 5;
    double p99_base = 0.0;
    double p99_record = 0.0;
    double ratio = 0.0;
    for (int attempt = 1; attempt <= kAttempts; ++attempt) {
        measure();
        p99_base = p99_us(baseline_lat);
        p99_record = p99_us(recording_lat);
        ratio = p99_base > 0.0 ? p99_record / p99_base : 0.0;
        if (!enforce || ratio <= budget_ratio) break;
        if (attempt < kAttempts) {
            std::printf("  over budget (ratio %.3f > %.3f); re-measuring "
                        "(%d/%d)\n",
                        ratio, budget_ratio, attempt, kAttempts);
            std::this_thread::sleep_for(std::chrono::milliseconds(500));
        }
    }

    // --- self-checks ------------------------------------------------------
    bool ok = true;
    if (short_result) {
        std::fprintf(stderr, "FAIL: short assess result\n");
        ok = false;
    }
    if (ticks_during_lane == 0) {
        std::fprintf(stderr,
                     "FAIL: recorder never ticked during its lane\n");
        ok = false;
    }
    if (watchdog.evaluations() != recorder.samples_taken()) {
        std::fprintf(stderr,
                     "FAIL: %llu watchdog evaluations for %llu recorder "
                     "ticks\n",
                     static_cast<unsigned long long>(watchdog.evaluations()),
                     static_cast<unsigned long long>(recorder.samples_taken()));
        ok = false;
    }
    if (blackbox.publishes() != recorder.samples_taken() ||
        blackbox.staged_bytes() == 0) {
        std::fprintf(stderr,
                     "FAIL: black-box staged %zu bytes over %llu publishes\n",
                     blackbox.staged_bytes(),
                     static_cast<unsigned long long>(blackbox.publishes()));
        ok = false;
    }
    // The assess_p99 signal is a latency judgement and shares the
    // overhead budget's host-load caveat (a 1-core runner timeshares the
    // sampler thread with the hot path), so it only fails where the
    // budget is enforced.  Any OTHER signal firing — collapsed caches, a
    // phantom ingest stall — means the watchdog wiring itself is wrong
    // and fails everywhere, smoke included.
    for (const obs::HealthSignal& signal : watchdog.last_verdict().signals) {
        if (!signal.firing) continue;
        if (signal.name == "assess_p99" && !enforce) {
            std::printf("  health signal %s firing (report-only): %s\n",
                        signal.name.c_str(), signal.detail.c_str());
            continue;
        }
        std::fprintf(stderr, "FAIL: health signal %s firing: %s\n",
                     signal.name.c_str(), signal.detail.c_str());
        ok = false;
    }

    const double overhead_percent = (ratio - 1.0) * 100.0;
    std::printf("\nassess p99: baseline %.1fus, recording %.1fus "
                "(ratio %.3f = %+.2f%%, budget %.2f%% %s on %u hardware "
                "threads)\n",
                p99_base, p99_record, ratio, overhead_percent, budget_percent,
                enforce ? "ENFORCED" : "report-only", hw);
    std::printf("recorder: %llu ticks (%llu during measured lane), %zu "
                "retained; watchdog: %llu evaluations, %s; black-box: %llu "
                "publishes, %zu bytes staged\n",
                static_cast<unsigned long long>(recorder.samples_taken()),
                static_cast<unsigned long long>(ticks_during_lane),
                recorder.size(),
                static_cast<unsigned long long>(watchdog.evaluations()),
                watchdog.last_verdict().healthy ? "healthy" : "DEGRADED",
                static_cast<unsigned long long>(blackbox.publishes()),
                blackbox.staged_bytes());
    if (enforce && ratio > budget_ratio) {
        std::fprintf(stderr,
                     "FAIL: recorder interference %+.2f%% exceeds the %.2f%% "
                     "budget\n",
                     overhead_percent, budget_percent);
        ok = false;
    }

    const std::uint64_t publishes = blackbox.publishes();
    const std::size_t staged = blackbox.staged_bytes();
    blackbox.disarm();

    if (std::FILE* out = std::fopen(out_path, "w")) {
        std::fprintf(
            out,
            "{\n"
            "  \"bench\": \"flight_recorder\",\n"
            "  \"smoke\": %s,\n"
            "  \"hardware_threads\": %u,\n"
            "  \"servers\": %zu,\n"
            "  \"history\": %zu,\n"
            "  \"segments_per_lane\": %zu,\n"
            "  \"assess_calls_per_segment\": %zu,\n"
            "  \"sample_size\": %zu,\n"
            "  \"record_interval_seconds\": %.3f,\n"
            "  \"latency\": {\n"
            "    \"assess_p99_baseline_us\": %.1f,\n"
            "    \"assess_p99_recording_us\": %.1f,\n"
            "    \"overhead_percent\": %.2f,\n"
            "    \"budget_percent\": %.2f,\n"
            "    \"budget_enforced\": %s\n"
            "  },\n"
            "  \"recorder\": {\n"
            "    \"ticks\": %llu,\n"
            "    \"ticks_during_lane\": %llu,\n"
            "    \"watchdog_evaluations\": %llu,\n"
            "    \"healthy\": %s,\n"
            "    \"blackbox_publishes\": %llu,\n"
            "    \"blackbox_staged_bytes\": %zu\n"
            "  },\n"
            "  \"all_budgets_met\": %s\n"
            "}\n",
            smoke ? "true" : "false", hw, servers, history, segments,
            calls_per_segment, sample_size, record_interval, p99_base,
            p99_record, overhead_percent, budget_percent,
            enforce ? "true" : "false",
            static_cast<unsigned long long>(recorder.samples_taken()),
            static_cast<unsigned long long>(ticks_during_lane),
            static_cast<unsigned long long>(watchdog.evaluations()),
            watchdog.last_verdict().healthy ? "true" : "false",
            static_cast<unsigned long long>(publishes), staged,
            ok ? "true" : "false");
        std::fclose(out);
        std::printf("wrote %s\n", out_path);
    } else {
        std::fprintf(stderr, "FAIL: cannot write %s\n", out_path);
        ok = false;
    }
    std::remove(blackbox_path.c_str());

    bench::print_metrics();
    return ok ? 0 : 1;
}
