// Ingest-pipeline overload: what does the write path do when clients
// outrun the admission budget?
//
//   build/bench/ingest_pipeline [--smoke] [--out BENCH_9.json]
//
// The deployment shape under test is examples/reputation_server with
// --ingest-budget: feedback batches arrive over POST /ingest, are
// charged against the IngestGate at header-parse time, land all-or-
// nothing in the sharded store, stream into the screener bank, and are
// immediately visible to GET /assess.  The design claims are:
//
//  * a single well-behaved client is never shed — its batches fit the
//    budget and it only ever has one request in flight;
//  * once concurrent clients hold overlapping in-flight bodies (2, 4,
//    8 clients = 2x/4x/8x the single-client admission pressure), the
//    gate sheds the excess with 429 instead of buffering without
//    bound — shed rate grows with the client count while accepted
//    requests keep completing;
//  * conservation: every record acknowledged with 200 is in the store
//    exactly once — overload sheds requests, never halves of them.
//
// Method: per phase (1/2/4/8 clients), each client streams its batches
// in two writes with a small pause between them — the half-received-
// body overlap a real uplink produces — then reads the response; on
// 200 it times a follow-up /assess for one of its servers.  Shed
// requests are counted, not retried.  Self-checks: no malformed
// responses, zero gate charge and released == admitted after
// quiescence, client-side accepted records == store size ==
// service-side accepted counter, and (full runs) the 2-client phase
// must shed.  On hosts with >= 8 hardware threads the full run also
// enforces the single-client latency budgets: accepted-ingest p99 <=
// 200ms, assess p99 <= 50ms; elsewhere they are reported only.
// Results land in BENCH_9.json.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "hpr.h"

using namespace hpr;

namespace {

double percentile_us(std::vector<double>& seconds, double q) {
    if (seconds.empty()) return 0.0;
    std::sort(seconds.begin(), seconds.end());
    const std::size_t index = static_cast<std::size_t>(
        q * static_cast<double>(seconds.size() - 1));
    return seconds[index] * 1e6;
}

/// POST `body` to /ingest, streaming it in two halves with a pause in
/// between (so concurrent clients genuinely overlap in the server's
/// event loop), then read the full response.  Returns the HTTP status,
/// or -1 on transport failure.
int streaming_post(std::uint16_t port, const std::string& body,
                   int mid_body_pause_ms) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    address.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                  sizeof address) != 0) {
        ::close(fd);
        return -1;
    }
    timeval timeout{30, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
    const std::string head =
        "POST /ingest HTTP/1.1\r\nHost: bench\r\nContent-Length: " +
        std::to_string(body.size()) + "\r\n\r\n";
    const std::string first = head + body.substr(0, body.size() / 2);
    const std::string second = body.substr(body.size() / 2);
    const auto send_all = [fd](const std::string& bytes) {
        std::size_t written = 0;
        while (written < bytes.size()) {
            const ssize_t sent = ::send(fd, bytes.data() + written,
                                        bytes.size() - written, MSG_NOSIGNAL);
            if (sent <= 0) return false;
            written += static_cast<std::size_t>(sent);
        }
        return true;
    };
    bool sent_ok = send_all(first);
    if (sent_ok) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds{mid_body_pause_ms});
        // A shed request was already answered during the pause and the
        // server is draining us; a failed second write is fine then.
        (void)send_all(second);
    }
    std::string response;
    char buffer[4096];
    ssize_t n;
    while ((n = ::recv(fd, buffer, sizeof buffer, 0)) > 0) {
        response.append(buffer, static_cast<std::size_t>(n));
    }
    ::close(fd);
    if (!sent_ok || response.rfind("HTTP/1.1 ", 0) != 0) return -1;
    return std::atoi(response.c_str() + 9);
}

struct PhaseResult {
    std::size_t clients = 0;
    std::size_t requests = 0;
    std::size_t accepted = 0;
    std::size_t shed = 0;
    std::size_t failures = 0;
    double wall_seconds = 0.0;
    double ingest_p50_us = 0.0;
    double ingest_p99_us = 0.0;
    double assess_p99_us = 0.0;
    double accepted_records_per_s = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    const char* out_path = "BENCH_9.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--smoke] [--out <path>]\n", argv[0]);
            return 2;
        }
    }

    // One batch is sized to ~55% of the budget in estimated records: a
    // lone client (sequential, one request in flight) always fits, two
    // overlapping in-flight bodies cross the soft watermark and the
    // later large request is shed.
    constexpr std::size_t kBudgetRecords = 50000;
    constexpr std::size_t kRecordsPerBatch = 11000;
    const std::size_t requests_per_client = smoke ? 3 : 30;
    const int pause_ms = smoke ? 2 : 3;
    const std::vector<std::size_t> client_counts{1, 2, 4, 8};

    std::printf("ingest_pipeline: %zu-record batches against a %zu-record "
                "gate budget, %zu requests/client, phases 1/2/4/8 clients%s\n",
                kRecordsPerBatch, kBudgetRecords, requests_per_client,
                smoke ? " (smoke)" : "");

    repsys::FeedbackStore store{32};
    serve::BatchAssessorConfig assessor_config;
    assessor_config.threads = 2;
    assessor_config.screener_horizon = 16;
    serve::BatchAssessor assessor{
        assessor_config,
        std::shared_ptr<const repsys::TrustFunction>{
            repsys::make_trust_function("beta")}};

    net::IngestServiceConfig service_config;
    service_config.max_records_per_request = 2 * kRecordsPerBatch;
    service_config.gate.pending_budget = kBudgetRecords;
    net::IngestService service{store, assessor, service_config};

    obs::IntrospectionTree tree;
    net::IntrospectionSources sources;
    sources.registry = &obs::default_registry();
    sources.store = &store;
    sources.assessor = &assessor;
    net::register_introspection(tree, sources);
    net::register_ingest(tree, service);

    net::HttpServerConfig http;
    http.ingest_gate = &service.gate();
    net::HttpServer server{http, net::make_http_handler(tree, &service)};
    server.start();
    const std::uint16_t port = server.port();

    std::atomic<repsys::Timestamp> clock{0};
    std::atomic<std::uint64_t> acknowledged_records{0};

    std::vector<PhaseResult> phases;
    for (const std::size_t clients : client_counts) {
        const std::uint64_t shed_before = service.gate().shed_total();
        std::mutex merge_mutex;
        std::vector<double> ingest_lat, assess_lat;
        std::size_t accepted = 0, shed = 0, failures = 0;

        const auto phase_start = std::chrono::steady_clock::now();
        std::vector<std::thread> pool;
        for (std::size_t c = 0; c < clients; ++c) {
            pool.emplace_back([&, c] {
                std::vector<double> my_ingest, my_assess;
                std::size_t my_accepted = 0, my_shed = 0, my_failures = 0;
                bool server_live = false;  // first accepted batch seen?
                const auto server_id = static_cast<repsys::EntityId>(
                    1000 + clients * 100 + c);
                for (std::size_t r = 0; r < requests_per_client; ++r) {
                    std::string body;
                    body.reserve(kRecordsPerBatch * 16);
                    for (std::size_t i = 0; i < kRecordsPerBatch; ++i) {
                        const repsys::Timestamp t =
                            clock.fetch_add(1, std::memory_order_relaxed) + 1;
                        body += std::to_string(server_id) + ' ' +
                                std::to_string(t) + ' ' +
                                (i % 8 == 0 ? "0" : "1") + '\n';
                    }
                    const obs::Stopwatch watch;
                    const int status = streaming_post(port, body, pause_ms);
                    const double seconds = watch.seconds();
                    if (status == 200) {
                        ++my_accepted;
                        my_ingest.push_back(seconds);
                        acknowledged_records.fetch_add(
                            kRecordsPerBatch, std::memory_order_relaxed);
                        server_live = true;
                    } else if (status == 429) {
                        ++my_shed;
                    } else {
                        ++my_failures;
                    }
                    if (server_live) {
                        const obs::Stopwatch assess_watch;
                        const auto page = net::http_get(
                            "127.0.0.1", port,
                            "/assess?server=" + std::to_string(server_id),
                            30.0);
                        if (page && page->status == 200) {
                            my_assess.push_back(assess_watch.seconds());
                        } else {
                            ++my_failures;
                        }
                    }
                }
                const std::lock_guard<std::mutex> lock{merge_mutex};
                ingest_lat.insert(ingest_lat.end(), my_ingest.begin(),
                                  my_ingest.end());
                assess_lat.insert(assess_lat.end(), my_assess.begin(),
                                  my_assess.end());
                accepted += my_accepted;
                shed += my_shed;
                failures += my_failures;
            });
        }
        for (std::thread& t : pool) t.join();
        const double wall = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - phase_start)
                                .count();

        PhaseResult result;
        result.clients = clients;
        result.requests = clients * requests_per_client;
        result.accepted = accepted;
        result.shed = shed;
        result.failures = failures;
        result.wall_seconds = wall;
        result.ingest_p50_us = percentile_us(ingest_lat, 0.50);
        result.ingest_p99_us = percentile_us(ingest_lat, 0.99);
        result.assess_p99_us = percentile_us(assess_lat, 0.99);
        result.accepted_records_per_s =
            wall > 0.0 ? static_cast<double>(accepted * kRecordsPerBatch) / wall
                       : 0.0;
        phases.push_back(result);

        std::printf("phase %zu clients: %zu/%zu accepted, %zu shed "
                    "(gate delta %llu), %zu failures; ingest p50 %.0fus "
                    "p99 %.0fus, assess p99 %.0fus, %.0f rec/s\n",
                    clients, accepted, result.requests, shed,
                    static_cast<unsigned long long>(service.gate().shed_total() -
                                                    shed_before),
                    failures, result.ingest_p50_us, result.ingest_p99_us,
                    result.assess_p99_us, result.accepted_records_per_s);
    }

    // Quiesce, then audit the conservation laws.
    for (int i = 0; i < 500 && service.gate().pending() != 0; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds{10});
    }
    server.stop();

    bool ok = true;
    if (service.gate().pending() != 0) {
        std::fprintf(stderr, "FAIL: gate still holds %zu pending records\n",
                     service.gate().pending());
        ok = false;
    }
    if (service.gate().released_records() != service.gate().admitted_records()) {
        std::fprintf(stderr,
                     "FAIL: gate leak — admitted %llu records, released %llu\n",
                     static_cast<unsigned long long>(
                         service.gate().admitted_records()),
                     static_cast<unsigned long long>(
                         service.gate().released_records()));
        ok = false;
    }
    const std::uint64_t acknowledged = acknowledged_records.load();
    if (store.size() != acknowledged ||
        service.accepted_records() != acknowledged) {
        std::fprintf(stderr,
                     "FAIL: conservation — clients acknowledged %llu records, "
                     "store holds %zu, service counted %llu\n",
                     static_cast<unsigned long long>(acknowledged),
                     store.size(),
                     static_cast<unsigned long long>(service.accepted_records()));
        ok = false;
    }
    std::size_t total_failures = 0;
    for (const PhaseResult& phase : phases) total_failures += phase.failures;
    if (total_failures != 0) {
        std::fprintf(stderr, "FAIL: %zu malformed/failed exchanges\n",
                     total_failures);
        ok = false;
    }
    if (!smoke && phases.size() >= 2 && phases[1].shed == 0) {
        std::fprintf(stderr,
                     "FAIL: 2-client overload shed nothing — the gate never "
                     "pushed back\n");
        ok = false;
    }

    const unsigned hw = std::thread::hardware_concurrency();
    const bool enforce_latency = !smoke && hw >= 8;
    const double ingest_budget_us = 200000.0;
    const double assess_budget_us = 50000.0;
    if (enforce_latency && !phases.empty()) {
        if (phases[0].ingest_p99_us > ingest_budget_us) {
            std::fprintf(stderr,
                         "FAIL: 1-client accepted-ingest p99 %.0fus exceeds "
                         "%.0fus\n",
                         phases[0].ingest_p99_us, ingest_budget_us);
            ok = false;
        }
        if (phases[0].assess_p99_us > assess_budget_us) {
            std::fprintf(stderr,
                         "FAIL: 1-client assess p99 %.0fus exceeds %.0fus\n",
                         phases[0].assess_p99_us, assess_budget_us);
            ok = false;
        }
    }

    std::vector<double> xs;
    bench::Series accepted_series{"accepted", {}};
    bench::Series shed_series{"shed", {}};
    bench::Series p99_series{"ingest_p99_ms", {}};
    for (const PhaseResult& phase : phases) {
        xs.push_back(static_cast<double>(phase.clients));
        accepted_series.values.push_back(static_cast<double>(phase.accepted));
        shed_series.values.push_back(static_cast<double>(phase.shed));
        p99_series.values.push_back(phase.ingest_p99_us / 1000.0);
    }
    bench::print_figure("ingest pipeline under overload", "clients", xs,
                        {accepted_series, shed_series, p99_series});

    if (std::FILE* out = std::fopen(out_path, "w")) {
        std::fprintf(out,
                     "{\n"
                     "  \"bench\": \"ingest_pipeline\",\n"
                     "  \"smoke\": %s,\n"
                     "  \"hardware_threads\": %u,\n"
                     "  \"gate_budget_records\": %zu,\n"
                     "  \"records_per_batch\": %zu,\n"
                     "  \"requests_per_client\": %zu,\n"
                     "  \"phases\": [\n",
                     smoke ? "true" : "false", hw, kBudgetRecords,
                     kRecordsPerBatch, requests_per_client);
        for (std::size_t i = 0; i < phases.size(); ++i) {
            const PhaseResult& phase = phases[i];
            std::fprintf(
                out,
                "    {\"clients\": %zu, \"requests\": %zu, "
                "\"accepted\": %zu, \"shed\": %zu, \"failures\": %zu, "
                "\"shed_rate\": %.3f, \"wall_seconds\": %.3f, "
                "\"ingest_p50_us\": %.0f, \"ingest_p99_us\": %.0f, "
                "\"assess_p99_us\": %.0f, "
                "\"accepted_records_per_s\": %.0f}%s\n",
                phase.clients, phase.requests, phase.accepted, phase.shed,
                phase.failures,
                phase.requests > 0 ? static_cast<double>(phase.shed) /
                                         static_cast<double>(phase.requests)
                                   : 0.0,
                phase.wall_seconds, phase.ingest_p50_us, phase.ingest_p99_us,
                phase.assess_p99_us, phase.accepted_records_per_s,
                i + 1 < phases.size() ? "," : "");
        }
        std::fprintf(
            out,
            "  ],\n"
            "  \"conservation\": {\n"
            "    \"acknowledged_records\": %llu,\n"
            "    \"store_records\": %zu,\n"
            "    \"service_accepted_records\": %llu,\n"
            "    \"gate_admitted_records\": %llu,\n"
            "    \"gate_released_records\": %llu,\n"
            "    \"gate_pending_after_quiesce\": %zu\n"
            "  },\n"
            "  \"budgets\": {\n"
            "    \"two_client_shed_required\": %s,\n"
            "    \"ingest_p99_budget_us\": %.0f,\n"
            "    \"assess_p99_budget_us\": %.0f,\n"
            "    \"latency_budgets_enforced\": %s\n"
            "  },\n"
            "  \"all_budgets_met\": %s\n"
            "}\n",
            static_cast<unsigned long long>(acknowledged), store.size(),
            static_cast<unsigned long long>(service.accepted_records()),
            static_cast<unsigned long long>(service.gate().admitted_records()),
            static_cast<unsigned long long>(service.gate().released_records()),
            service.gate().pending(), smoke ? "false" : "true",
            ingest_budget_us, assess_budget_us,
            enforce_latency ? "true" : "false", ok ? "true" : "false");
        std::fclose(out);
        std::printf("wrote %s\n", out_path);
    } else {
        std::fprintf(stderr, "FAIL: cannot write %s\n", out_path);
        ok = false;
    }

    bench::print_metrics();
    return ok ? 0 : 1;
}
