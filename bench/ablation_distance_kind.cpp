// Ablation: the distribution-distance functional.
//
// The paper uses the L1 norm (§3.2).  This bench swaps in L2, total
// variation and Kolmogorov-Smirnov (with thresholds recalibrated per
// functional by the same Monte-Carlo machinery) and reports detection
// and false-positive rates — showing the scheme's power is not an L1
// artifact.

#include "bench_common.h"
#include "sim/detection.h"

int main() {
    const std::vector<hpr::stats::DistanceKind> kinds{
        hpr::stats::DistanceKind::kL1,
        hpr::stats::DistanceKind::kL2,
        hpr::stats::DistanceKind::kTotalVariation,
        hpr::stats::DistanceKind::kKolmogorovSmirnov,
    };
    const std::vector<double> attack_windows{10, 20, 40, 80};

    std::vector<hpr::bench::Series> series;
    for (const auto kind : kinds) {
        hpr::core::MultiTestConfig test;
        test.base.distance = kind;
        const auto cal = hpr::core::make_calibrator(test.base);

        hpr::bench::Series s{std::string{"detect("} + hpr::stats::to_string(kind) + ")",
                             {}};
        double fp = 0.0;
        for (const double n : attack_windows) {
            hpr::sim::DetectionConfig config;
            config.test = test;
            config.attack_window = static_cast<std::size_t>(n);
            config.history_size = 800;
            config.trials = 150;
            config.seed = 9100 + static_cast<std::uint64_t>(n);
            s.values.push_back(hpr::sim::detection_rate(config, cal));
            if (n == attack_windows.front()) {
                fp = hpr::sim::false_positive_rate(0.9, config, cal);
            }
        }
        std::printf("%-4s honest-FP floor: %.3f\n", hpr::stats::to_string(kind), fp);
        series.push_back(std::move(s));
    }
    hpr::bench::print_figure(
        "Ablation  distance functional (detection rate vs attack window)",
        "attack_window", attack_windows, series);
    std::printf("\n(each functional is calibrated to its own 95%% null "
                "quantile; the paper's L1 is not special)\n");
    hpr::bench::print_metrics();
    return 0;
}
