// Reproduces paper Fig. 8: the calibrated 95%-confidence L1 distribution-
// distance threshold (epsilon) vs. the initial-history size.  The paper
// observes that the distance "converges very quickly as the initial
// history size increases": with more windows the null distance
// distribution concentrates, so epsilon falls steeply at first and then
// flattens.
//
// Calibration here uses an exact (ungridded) per-k Monte-Carlo run so the
// curve is smooth; the library's default geometric bucketing is a
// performance feature benchmarked in Fig. 9 instead.

#include "bench_common.h"
#include "stats/calibrate.h"

int main() {
    hpr::stats::CalibrationConfig config;
    config.windows_grid_ratio = 1.0;  // exact per-k calibration for the plot
    config.replications = 2000;
    hpr::stats::Calibrator calibrator{config};

    const std::vector<double> sizes{100,  200,  300,  400,  600,  800,
                                    1000, 1500, 2000, 3000, 4000, 6000};
    constexpr std::uint32_t kWindow = 10;

    hpr::bench::Series p90{"epsilon (p=0.90)", {}};
    hpr::bench::Series p95{"epsilon (p=0.95)", {}};
    hpr::bench::Series p80{"epsilon (p=0.80)", {}};
    for (const double n : sizes) {
        const auto k = static_cast<std::size_t>(n) / kWindow;
        p90.values.push_back(calibrator.threshold(k, kWindow, 0.90));
        p95.values.push_back(calibrator.threshold(k, kWindow, 0.95));
        p80.values.push_back(calibrator.threshold(k, kWindow, 0.80));
    }
    hpr::bench::print_figure(
        "Fig.8  95%-confidence distribution-distance threshold vs history size",
        "history_size", sizes, {p90, p95, p80});
    std::printf("\n(window 10, 2000 Monte-Carlo replications per point, exact "
                "per-k calibration)\n");
    hpr::bench::print_metrics();
    return 0;
}
