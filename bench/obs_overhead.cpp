// Instrumentation-overhead budget check for the assessment hot path.
//
//   build/bench/obs_overhead [--quick] [--budget <percent>]
//
// Measures TwoPhaseAssessor::assess on a large warmed history three ways:
//
//   baseline   — the exact pre-instrumentation pipeline, hand-inlined
//                from uninstrumented components (MultiTest::test + trust
//                evaluation + the verdict decision): what assess() cost
//                before src/obs/ existed, i.e. "instrumentation compiled
//                out";
//   enabled    — assess() with the metrics registry recording (the
//                production default);
//   disabled   — assess() with the global kill switch off (every site
//                reduced to a relaxed load + branch).
//
// Rounds of the contenders are interleaved (A B C A B C ...) so slow
// drift (thermal, scheduler) hits all three alike, and each contender is
// summarized by its MINIMUM round time — the standard noise-robust
// estimator, since noise only ever adds time.  Exits nonzero when the
// enabled-vs-baseline overhead exceeds the budget (default 2%), making
// this binary a CI guard: instrumentation added to the hot path later
// must stay inside the budget or fail the build visibly.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_common.h"
#include "core/multi_test.h"
#include "core/two_phase.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "repsys/trust.h"
#include "sim/generators.h"

namespace {

using namespace hpr;

constexpr std::size_t kHistorySize = 20000;

}  // namespace

int main(int argc, char** argv) {
    bool quick = false;
    double budget_percent = 2.0;
    for (int a = 1; a < argc; ++a) {
        if (std::strcmp(argv[a], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[a], "--budget") == 0 && a + 1 < argc) {
            budget_percent = std::atof(argv[++a]);
        } else {
            std::fprintf(stderr, "usage: %s [--quick] [--budget <percent>]\n",
                         argv[0]);
            return 2;
        }
    }

    // One shared calibrator so every contender answers thresholds from
    // the same warmed cache; an honest history so the full suffix ladder
    // runs (the most instrumentation-dense path: one threshold lookup —
    // and thus one cache-hit counter bump — per ladder stage).
    const auto calibrator = core::make_calibrator({});
    stats::Rng rng{97};
    const auto history = sim::honest_history(kHistorySize, 0.9, rng);
    const auto feedbacks = history.view();

    const std::shared_ptr<const repsys::TrustFunction> trust{
        repsys::make_trust_function("beta")};
    core::TwoPhaseConfig config;
    config.test.stop_on_failure = false;  // deterministic full-ladder work
    const core::TwoPhaseAssessor assessor{config, trust, calibrator};

    // The pre-instrumentation pipeline, reconstructed from components that
    // carry no obs sites of their own: screening + trust + verdict.
    core::MultiTestConfig multi_config = config.test;
    const core::MultiTest multi{multi_config, calibrator};
    const auto baseline_assess = [&] {
        core::Assessment assessment;
        assessment.screening = multi.test(feedbacks);
        if (!assessment.screening.passed) {
            assessment.verdict = core::Verdict::kSuspicious;
            return assessment;
        }
        assessment.trust = trust->evaluate(feedbacks);
        assessment.verdict = assessment.screening.sufficient
                                 ? core::Verdict::kAssessed
                                 : core::Verdict::kInsufficientHistory;
        return assessment;
    };

    // Warm the calibration cache and fault in every code path once.
    (void)baseline_assess();
    if (assessor.assess(feedbacks).verdict != baseline_assess().verdict) {
        std::fprintf(stderr, "verdict mismatch between assess() and baseline\n");
        return 2;
    }

    const int rounds = quick ? 7 : 15;
    const int iterations = quick ? 3 : 8;
    double baseline_s = 1e300;
    double enabled_s = 1e300;
    double disabled_s = 1e300;
    volatile bool sink = false;  // keep the assessments observable
    for (int r = 0; r < rounds; ++r) {
        {
            const obs::Stopwatch watch;
            for (int i = 0; i < iterations; ++i) sink = baseline_assess().acceptable(0.5);
            baseline_s = std::min(baseline_s, watch.seconds() / iterations);
        }
        {
            obs::set_enabled(true);
            const obs::Stopwatch watch;
            for (int i = 0; i < iterations; ++i) {
                sink = assessor.assess(feedbacks).acceptable(0.5);
            }
            enabled_s = std::min(enabled_s, watch.seconds() / iterations);
        }
        {
            obs::set_enabled(false);
            const obs::Stopwatch watch;
            for (int i = 0; i < iterations; ++i) {
                sink = assessor.assess(feedbacks).acceptable(0.5);
            }
            disabled_s = std::min(disabled_s, watch.seconds() / iterations);
            obs::set_enabled(true);
        }
    }
    (void)sink;

    const double enabled_overhead = (enabled_s / baseline_s - 1.0) * 100.0;
    const double disabled_overhead = (disabled_s / baseline_s - 1.0) * 100.0;
    std::printf("=== obs overhead on TwoPhaseAssessor::assess "
                "(%zu-transaction history, %d rounds x %d iters, min) ===\n",
                kHistorySize, rounds, iterations);
    std::printf("  baseline (uninstrumented pipeline): %10.3f ms\n",
                baseline_s * 1e3);
    std::printf("  instrumentation enabled:            %10.3f ms  (%+.2f%%)\n",
                enabled_s * 1e3, enabled_overhead);
    std::printf("  instrumentation disabled (switch):  %10.3f ms  (%+.2f%%)\n",
                disabled_s * 1e3, disabled_overhead);
    std::printf("  budget: %.2f%%\n", budget_percent);
    hpr::bench::print_metrics();

    if (enabled_overhead > budget_percent) {
        std::fprintf(stderr,
                     "FAIL: enabled instrumentation overhead %.2f%% exceeds the "
                     "%.2f%% budget\n",
                     enabled_overhead, budget_percent);
        return 1;
    }
    std::printf("\nPASS: overhead within budget\n");
    return 0;
}
