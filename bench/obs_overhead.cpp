// Instrumentation-overhead budget check for the assessment hot path.
//
//   build/bench/obs_overhead [--quick] [--budget <percent>]
//
// Measures TwoPhaseAssessor::assess on a large warmed history four ways:
//
//   baseline   — the exact pre-instrumentation pipeline, hand-inlined
//                from uninstrumented components (MultiTest::test + trust
//                evaluation + the verdict decision): what assess() cost
//                before src/obs/ existed, i.e. "instrumentation compiled
//                out";
//   metrics    — assess() with the metrics registry recording and the
//                decision tracer inactive (the production default);
//   +tracing   — assess() with metrics AND the decision tracer sampling
//                every assessment (rate 1.0, per-stage spans off): the
//                full evidence record built and committed to the ring;
//   disabled   — assess() with the global kill switch off (every metric
//                and trace site reduced to a relaxed load + branch).
//
// Rounds of the contenders are interleaved (A B C D | B C D A | ...) and
// each round yields one PAIRED ratio per contender against that same
// round's baseline — the pairing cancels slow drift (thermal, frequency
// scaling) because the four lanes of one round run back-to-back within
// ~10 ms, and rotating which lane goes first cancels the within-round
// drift a fixed order would turn into systematic bias.
// Each lane runs enough iterations (~10 ms) that frequent small noise
// (interrupts, host jitter) averages into numerator and denominator of
// a ratio alike and cancels; the MEDIAN over rounds then discards the
// occasional round a long scheduler burst hit.  When the result still
// lands over budget the whole measurement retries (up to 5 attempts,
// pausing briefly between them): a genuine regression inflates every
// attempt, a transiently loaded host does not.
// Exits nonzero when the metrics-vs-baseline OR the combined
// metrics+tracing-vs-baseline overhead exceeds the budget (default 2%)
// on every attempt, making this binary a CI guard: instrumentation
// added to the hot path later must stay inside the budget or fail the
// build visibly.

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/multi_test.h"
#include "core/two_phase.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "repsys/trust.h"
#include "sim/generators.h"

namespace {

using namespace hpr;

constexpr std::size_t kHistorySize = 20000;

}  // namespace

int main(int argc, char** argv) {
    bool quick = false;
    double budget_percent = 2.0;
    for (int a = 1; a < argc; ++a) {
        if (std::strcmp(argv[a], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[a], "--budget") == 0 && a + 1 < argc) {
            budget_percent = std::atof(argv[++a]);
        } else {
            std::fprintf(stderr, "usage: %s [--quick] [--budget <percent>]\n",
                         argv[0]);
            return 2;
        }
    }

    // One shared calibrator so every contender answers thresholds from
    // the same warmed cache; an honest history so the full suffix ladder
    // runs (the most instrumentation-dense path: one threshold lookup —
    // and thus one cache-hit counter bump — per ladder stage, and one
    // StageEvidence append per stage when traced).
    const auto calibrator = core::make_calibrator({});
    stats::Rng rng{97};
    const auto history = sim::honest_history(kHistorySize, 0.9, rng);
    const auto feedbacks = history.view();

    const std::shared_ptr<const repsys::TrustFunction> trust{
        repsys::make_trust_function("beta")};
    core::TwoPhaseConfig config;
    config.test.stop_on_failure = false;  // deterministic full-ladder work
    const core::TwoPhaseAssessor assessor{config, trust, calibrator};

    // The pre-instrumentation pipeline, reconstructed from components that
    // carry no obs sites of their own: screening + trust + verdict.
    core::MultiTestConfig multi_config = config.test;
    const core::MultiTest multi{multi_config, calibrator};
    const auto baseline_assess = [&] {
        core::Assessment assessment;
        assessment.screening = multi.test(feedbacks);
        if (!assessment.screening.passed) {
            assessment.verdict = core::Verdict::kSuspicious;
            return assessment;
        }
        assessment.trust = trust->evaluate(feedbacks);
        assessment.verdict = assessment.screening.sufficient
                                 ? core::Verdict::kAssessed
                                 : core::Verdict::kInsufficientHistory;
        return assessment;
    };

    // Warm the calibration cache and fault in every code path once, then
    // clear the carried-over counts so the printed metrics reflect the
    // measured rounds only.
    (void)baseline_assess();
    if (assessor.assess(feedbacks).verdict != baseline_assess().verdict) {
        std::fprintf(stderr, "verdict mismatch between assess() and baseline\n");
        return 2;
    }
    obs::default_registry().reset_for_tests();

    obs::Tracer& tracer = obs::default_tracer();
    tracer.set_sample_rate(1.0);
    tracer.set_span_stages(false);

    const int rounds = quick ? 12 : 24;
    const int iterations = quick ? 4 : 8;
    std::vector<double> baseline_rounds;
    std::vector<double> metrics_rounds;
    std::vector<double> traced_rounds;
    std::vector<double> disabled_rounds;
    volatile bool sink = false;  // keep the assessments observable
    const auto time_instrumented = [&] {
        const obs::Stopwatch watch;
        for (int i = 0; i < iterations; ++i) {
            sink = assessor.assess(feedbacks).acceptable(0.5);
        }
        return watch.seconds() / iterations;
    };
    const std::function<void()> lanes[4] = {
        [&] {
            const obs::Stopwatch watch;
            for (int i = 0; i < iterations; ++i) sink = baseline_assess().acceptable(0.5);
            baseline_rounds.push_back(watch.seconds() / iterations);
        },
        [&] {
            obs::set_enabled(true);
            tracer.set_enabled(false);
            metrics_rounds.push_back(time_instrumented());
        },
        [&] {
            obs::set_enabled(true);
            tracer.set_enabled(true);
            traced_rounds.push_back(time_instrumented());
            tracer.set_enabled(false);
            (void)tracer.ring().drain();  // no carry-over between rounds
        },
        [&] {
            obs::set_enabled(false);
            tracer.set_enabled(true);  // must be neutralized by the kill switch
            disabled_rounds.push_back(time_instrumented());
            tracer.set_enabled(false);
            obs::set_enabled(true);
        },
    };
    // One measurement pass; attempts below retry it when the host was
    // too loaded to resolve a sub-percent effect.
    double metrics_overhead = 0.0;
    double traced_overhead = 0.0;
    const auto measure = [&] {
        baseline_rounds.clear();
        metrics_rounds.clear();
        traced_rounds.clear();
        disabled_rounds.clear();
        for (int r = 0; r < rounds; ++r) {
            for (int k = 0; k < 4; ++k) lanes[(r + k) % 4]();
        }

        std::vector<double> metrics_ratios;
        std::vector<double> traced_ratios;
        std::vector<double> disabled_ratios;
        for (std::size_t r = 0; r < baseline_rounds.size(); ++r) {
            metrics_ratios.push_back(metrics_rounds[r] / baseline_rounds[r]);
            traced_ratios.push_back(traced_rounds[r] / baseline_rounds[r]);
            disabled_ratios.push_back(disabled_rounds[r] / baseline_rounds[r]);
        }

        const auto median = [](std::vector<double>& samples) {
            const std::size_t mid = samples.size() / 2;
            std::nth_element(samples.begin(),
                             samples.begin() + static_cast<std::ptrdiff_t>(mid),
                             samples.end());
            return samples[mid];
        };
        const double baseline_s = median(baseline_rounds);
        const double metrics_s = baseline_s * median(metrics_ratios);
        const double traced_s = baseline_s * median(traced_ratios);
        const double disabled_s = baseline_s * median(disabled_ratios);
        metrics_overhead = (metrics_s / baseline_s - 1.0) * 100.0;
        traced_overhead = (traced_s / baseline_s - 1.0) * 100.0;
        const double disabled_overhead = (disabled_s / baseline_s - 1.0) * 100.0;
        std::printf("=== obs overhead on TwoPhaseAssessor::assess "
                    "(%zu-transaction history, %d rounds x %d iters, median of "
                    "paired round ratios) ===\n",
                    kHistorySize, rounds, iterations);
        std::printf("  baseline (uninstrumented pipeline): %10.3f ms\n",
                    baseline_s * 1e3);
        std::printf("  metrics enabled, tracer off:        %10.3f ms  (%+.2f%%)\n",
                    metrics_s * 1e3, metrics_overhead);
        std::printf("  metrics + tracing (sample 1.0):     %10.3f ms  (%+.2f%%)\n",
                    traced_s * 1e3, traced_overhead);
        std::printf("  instrumentation disabled (switch):  %10.3f ms  (%+.2f%%)\n",
                    disabled_s * 1e3, disabled_overhead);
        std::printf("  budget: %.2f%%\n", budget_percent);
    };

    // Several attempts: a genuine hot-path regression inflates every
    // round of every attempt and still fails, while a transient burst of
    // host load (which can shift sub-second medians by several percent)
    // clears on a re-measurement after a short pause.  Only the budget
    // decision retries; the printed numbers are whichever attempt
    // decided it.
    constexpr int kAttempts = 5;
    for (int attempt = 1; attempt <= kAttempts; ++attempt) {
        measure();
        if (metrics_overhead <= budget_percent && traced_overhead <= budget_percent) {
            hpr::bench::print_metrics();
            std::printf("\nPASS: overhead within budget\n");
            return 0;
        }
        if (attempt < kAttempts) {
            std::printf("  over budget (metrics %+.2f%%, traced %+.2f%%); "
                        "re-measuring (%d/%d)\n",
                        metrics_overhead, traced_overhead, attempt, kAttempts);
            std::this_thread::sleep_for(std::chrono::milliseconds(500));
        }
    }
    hpr::bench::print_metrics();
    if (metrics_overhead > budget_percent) {
        std::fprintf(stderr,
                     "FAIL: metrics instrumentation overhead %.2f%% exceeds the "
                     "%.2f%% budget\n",
                     metrics_overhead, budget_percent);
    }
    if (traced_overhead > budget_percent) {
        std::fprintf(stderr,
                     "FAIL: combined metrics+tracing overhead %.2f%% exceeds the "
                     "%.2f%% budget\n",
                     traced_overhead, budget_percent);
    }
    return 1;
}
