// Introspection-daemon interference: does a live scraper hammering the
// epoll front-end perturb the assessment hot path?
//
//   build/bench/introspection_daemon [--smoke] [--out BENCH_7.json]
//
// The deployment shape under test is examples/reputation_server
// --listen: one process ingesting feedback, answering assessments, AND
// serving its introspection tree (/metrics, /servers, /traces, /store)
// to a monitoring scraper.  The daemon's design claim is that scrapes
// are isolated — one event-loop thread, snapshot-read endpoints, at
// most one shard/stripe lock held at a time — so scraping must not
// move the assessment tail.
//
// Method: a population is ingested and calibration fully warmed, then a
// background thread keeps streaming fresh feedback (store.submit +
// assessor.observe) for the whole run while the main thread times
// assess() calls over a fixed server sample.  Segments alternate
// baseline / scraping (A/B/A/B..., pooled per lane, so slow drift in
// the host lands in both lanes equally); during scraping segments a
// client thread loops over every endpoint through net::http_get as
// fast as the server answers.  Self-checks: every scrape must return
// 200 with a non-empty body, /metrics must contain the serving
// counters, and the scrape lane must have completed scrapes.  On hosts
// with >= 8 hardware threads the full run enforces the interference
// budget p99(scrape) <= 1.25 x p99(baseline); elsewhere (and under
// --smoke) the ratio is reported only.  Results land in BENCH_7.json.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "hpr.h"

using namespace hpr;

namespace {

double p99_us(std::vector<double>& seconds) {
    if (seconds.empty()) return 0.0;
    std::sort(seconds.begin(), seconds.end());
    const std::size_t index =
        static_cast<std::size_t>(0.99 * static_cast<double>(seconds.size() - 1));
    return seconds[index] * 1e6;
}

struct ScraperStats {
    std::uint64_t scrapes = 0;
    std::uint64_t bytes = 0;
    std::uint64_t failures = 0;
};

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    const char* out_path = "BENCH_7.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--smoke] [--out <path>]\n", argv[0]);
            return 2;
        }
    }
    const std::size_t servers = smoke ? 64 : 512;
    const std::size_t history = smoke ? 120 : 300;
    const std::size_t segments = smoke ? 4 : 10;  // per lane, interleaved
    const std::size_t calls_per_segment = smoke ? 10 : 50;
    const std::size_t sample_size = 64;

    std::printf("introspection_daemon: %zu servers x %zu feedbacks, "
                "%zu+%zu alternating segments x %zu assess calls%s\n",
                servers, history, segments, segments, calls_per_segment,
                smoke ? " (smoke)" : "");

    // --- population + warmed serving layer --------------------------------
    repsys::FeedbackStore store{32};
    for (std::size_t s = 0; s < servers; ++s) {
        stats::Rng rng{0xdaeb0a7dULL + s};
        const double p = 0.65 + 0.33 * rng.uniform();
        std::vector<repsys::Feedback> tape;
        tape.reserve(history);
        for (std::size_t i = 0; i < history; ++i) {
            tape.push_back(repsys::Feedback{
                static_cast<repsys::Timestamp>(i + 1),
                static_cast<repsys::EntityId>(s + 1),
                static_cast<repsys::EntityId>(5000 + rng.uniform_int(std::uint64_t{97})),
                rng.bernoulli(p) ? repsys::Rating::kPositive
                                 : repsys::Rating::kNegative});
        }
        store.submit(tape);
    }

    serve::BatchAssessorConfig config;
    config.assessment.mode = core::ScreeningMode::kMulti;
    config.assessment.test.bonferroni = true;
    const auto calibrator = core::make_calibrator(config.assessment.test.base);
    serve::BatchAssessor assessor{
        config,
        std::shared_ptr<const repsys::TrustFunction>{
            repsys::make_trust_function("beta")},
        calibrator};
    (void)assessor.assess_all(store);  // unmeasured calibration warm-up

    obs::default_tracer().set_enabled(true);  // /traces must have content

    // --- the daemon front-end over the live sources -----------------------
    obs::IntrospectionTree tree;
    net::IntrospectionSources sources;
    sources.registry = &obs::default_registry();
    sources.tracer = &obs::default_tracer();
    sources.store = &store;
    sources.assessor = &assessor;
    sources.calibrator = calibrator;
    net::register_introspection(tree, sources);
    net::HttpServer server{{}, net::make_http_handler(tree)};
    server.start();
    const std::uint16_t port = server.port();

    // --- background ingest for the whole run ------------------------------
    std::atomic<bool> run_ingest{true};
    std::thread ingest([&] {
        stats::Rng rng{0x1497e57ULL};
        std::size_t tick = 0;
        while (run_ingest.load(std::memory_order_acquire)) {
            const auto id = static_cast<repsys::EntityId>(
                1 + (tick % servers));
            const repsys::Feedback feedback{
                static_cast<repsys::Timestamp>(history + 1 + tick / servers),
                id,
                static_cast<repsys::EntityId>(5000 + rng.uniform_int(std::uint64_t{97})),
                rng.bernoulli(0.9) ? repsys::Rating::kPositive
                                   : repsys::Rating::kNegative};
            store.submit(feedback);
            assessor.observe(feedback);
            ++tick;
            if (tick % 64 == 0) {
                std::this_thread::sleep_for(std::chrono::microseconds{200});
            }
        }
    });

    // --- scraper thread, gated per segment --------------------------------
    const std::vector<std::string> targets{
        "/metrics", "/servers?limit=32", "/metrics.json", "/traces?n=64",
        "/store"};
    std::atomic<bool> scrape_active{false};
    std::atomic<bool> scrape_shutdown{false};
    ScraperStats scraper_stats;
    bool metrics_body_ok = false;
    std::thread scraper([&] {
        std::size_t next = 0;
        while (!scrape_shutdown.load(std::memory_order_acquire)) {
            if (!scrape_active.load(std::memory_order_acquire)) {
                std::this_thread::sleep_for(std::chrono::microseconds{100});
                continue;
            }
            const std::string& target = targets[next++ % targets.size()];
            const auto result = net::http_get("127.0.0.1", port, target);
            if (!result || result->status != 200 || result->body.empty()) {
                ++scraper_stats.failures;
                continue;
            }
            if (target == "/metrics" &&
                result->body.find("hpr_serving_batches_total") !=
                    std::string::npos) {
                metrics_body_ok = true;
            }
            ++scraper_stats.scrapes;
            scraper_stats.bytes += result->body.size();
        }
    });

    // --- alternating measurement segments ---------------------------------
    std::vector<repsys::EntityId> sample;
    for (std::size_t i = 0; i < sample_size; ++i) {
        sample.push_back(static_cast<repsys::EntityId>(
            1 + (i * 7919) % servers));
    }
    std::vector<double> baseline_lat, scrape_lat;
    for (std::size_t segment = 0; segment < 2 * segments; ++segment) {
        const bool scraping = segment % 2 == 1;
        scrape_active.store(scraping, std::memory_order_release);
        if (scraping) {
            // Let the scraper actually start before timing.
            std::this_thread::sleep_for(std::chrono::milliseconds{2});
        }
        auto& lane = scraping ? scrape_lat : baseline_lat;
        for (std::size_t call = 0; call < calls_per_segment; ++call) {
            const obs::Stopwatch watch;
            const auto results = assessor.assess(store, sample);
            lane.push_back(watch.seconds());
            if (results.size() != sample.size()) {
                std::fprintf(stderr, "FAIL: short assess result\n");
                return 1;
            }
        }
        scrape_active.store(false, std::memory_order_release);
    }

    scrape_shutdown.store(true, std::memory_order_release);
    scraper.join();
    run_ingest.store(false, std::memory_order_release);
    ingest.join();
    server.stop();

    // --- self-checks ------------------------------------------------------
    bool ok = true;
    if (scraper_stats.scrapes == 0) {
        std::fprintf(stderr, "FAIL: scrape lane completed zero scrapes\n");
        ok = false;
    }
    if (scraper_stats.failures != 0) {
        std::fprintf(stderr, "FAIL: %llu scrapes failed (non-200 or empty)\n",
                     static_cast<unsigned long long>(scraper_stats.failures));
        ok = false;
    }
    if (!metrics_body_ok) {
        std::fprintf(stderr,
                     "FAIL: /metrics never contained hpr_serving_batches_total\n");
        ok = false;
    }

    const double p99_base = p99_us(baseline_lat);
    const double p99_scrape = p99_us(scrape_lat);
    const double ratio = p99_base > 0.0 ? p99_scrape / p99_base : 0.0;
    const double budget = 1.25;
    const unsigned hw = std::thread::hardware_concurrency();
    const bool enforce = !smoke && hw >= 8;

    std::printf("\nassess p99: baseline %.1fus, under scrape %.1fus "
                "(ratio %.3f, budget %.2fx %s on %u hardware threads)\n",
                p99_base, p99_scrape, ratio, budget,
                enforce ? "ENFORCED" : "report-only", hw);
    std::printf("scraper: %llu scrapes, %llu bytes, %llu failures; "
                "server counters: %llu responses, %llu rejected, "
                "%llu malformed\n",
                static_cast<unsigned long long>(scraper_stats.scrapes),
                static_cast<unsigned long long>(scraper_stats.bytes),
                static_cast<unsigned long long>(scraper_stats.failures),
                static_cast<unsigned long long>(server.requests_served()),
                static_cast<unsigned long long>(server.rejected_connections()),
                static_cast<unsigned long long>(server.malformed_requests()));
    if (enforce && ratio > budget) {
        std::fprintf(stderr,
                     "FAIL: scrape interference %.3fx exceeds the %.2fx budget\n",
                     ratio, budget);
        ok = false;
    }

    if (std::FILE* out = std::fopen(out_path, "w")) {
        std::fprintf(
            out,
            "{\n"
            "  \"bench\": \"introspection_daemon\",\n"
            "  \"smoke\": %s,\n"
            "  \"hardware_threads\": %u,\n"
            "  \"servers\": %zu,\n"
            "  \"history\": %zu,\n"
            "  \"segments_per_lane\": %zu,\n"
            "  \"assess_calls_per_segment\": %zu,\n"
            "  \"sample_size\": %zu,\n"
            "  \"latency\": {\n"
            "    \"assess_p99_baseline_us\": %.1f,\n"
            "    \"assess_p99_scraping_us\": %.1f,\n"
            "    \"interference_ratio\": %.3f,\n"
            "    \"ratio_budget\": %.2f,\n"
            "    \"budget_enforced\": %s\n"
            "  },\n"
            "  \"scraper\": {\n"
            "    \"scrapes\": %llu,\n"
            "    \"bytes\": %llu,\n"
            "    \"failures\": %llu,\n"
            "    \"responses_served\": %llu,\n"
            "    \"rejected_connections\": %llu,\n"
            "    \"malformed_requests\": %llu\n"
            "  },\n"
            "  \"all_budgets_met\": %s\n"
            "}\n",
            smoke ? "true" : "false", hw, servers, history, segments,
            calls_per_segment, sample_size, p99_base, p99_scrape, ratio,
            budget, enforce ? "true" : "false",
            static_cast<unsigned long long>(scraper_stats.scrapes),
            static_cast<unsigned long long>(scraper_stats.bytes),
            static_cast<unsigned long long>(scraper_stats.failures),
            static_cast<unsigned long long>(server.requests_served()),
            static_cast<unsigned long long>(server.rejected_connections()),
            static_cast<unsigned long long>(server.malformed_requests()),
            ok ? "true" : "false");
        std::fclose(out);
        std::printf("wrote %s\n", out_path);
    } else {
        std::fprintf(stderr, "FAIL: cannot write %s\n", out_path);
        ok = false;
    }

    bench::print_metrics();
    return ok ? 0 : 1;
}
