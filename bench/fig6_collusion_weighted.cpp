// Reproduces paper Fig. 6: cost of attackers WITH COLLUSION vs. the
// preparation-history size, under the WEIGHTED (EWMA, lambda = 0.5)
// trust function.  Same setup and expected shapes as Fig. 5 (see
// fig5_collusion_average.cpp), with the EWMA in phase 2.

#include "bench_common.h"
#include "sim/collusion_cost.h"

namespace {

constexpr std::size_t kTrials = 8;

std::size_t g_lockouts = 0;  // runs where the attacker never reached 20 attacks

double median_cost(hpr::core::ScreeningMode mode, std::size_t prep,
                   const std::shared_ptr<hpr::stats::Calibrator>& cal) {
    hpr::sim::CollusionCostConfig config;
    config.prep_size = prep;
    config.prep_trust = 0.95;
    config.target_attacks = 20;
    config.trust_threshold = 0.9;
    config.trust_spec = "weighted:0.5";
    config.screening = mode;
    config.seed = 4000 + prep;
    config.max_attack_steps = 20000;
    const auto series = hpr::sim::run_collusion_cost_trials(config, kTrials, cal);
    g_lockouts += series.unreached_runs;
    return series.median_cost();
}

}  // namespace

int main() {
    const auto cal = hpr::core::make_calibrator({});
    const std::vector<double> preps{100, 200, 300, 400, 500, 600, 700, 800};

    hpr::bench::Series plain{"weighted", {}};
    hpr::bench::Series scheme1{"scheme1+weighted", {}};
    hpr::bench::Series scheme2{"scheme2+weighted", {}};
    for (const double prep : preps) {
        const auto p = static_cast<std::size_t>(prep);
        plain.values.push_back(median_cost(hpr::core::ScreeningMode::kNone, p, cal));
        scheme1.values.push_back(median_cost(hpr::core::ScreeningMode::kSingle, p, cal));
        scheme2.values.push_back(median_cost(hpr::core::ScreeningMode::kMulti, p, cal));
    }
    hpr::bench::print_figure(
        "Fig.6  attacker cost with collusion vs initial history (weighted trust)",
        "prep_size", preps, {plain, scheme1, scheme2});
    std::printf("\n(100 clients, 5 colluders, a1=0.5 a2=0.9 a3=0.2, 20 attacks, "
                "threshold 0.9, %zu trials/point; median costs)\n",
                kTrials);
    std::printf("(runs where screening locked the attacker out entirely: %zu)\n",
                g_lockouts);
    hpr::bench::print_metrics();
    return 0;
}
