#include "repsys/htrust.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace hpr::repsys {

std::size_t h_index(std::vector<std::size_t> scores) {
    std::sort(scores.begin(), scores.end(), std::greater<>());
    std::size_t h = 0;
    while (h < scores.size() && scores[h] >= h + 1) ++h;
    return h;
}

HTrustResult h_trust(std::span<const Feedback> feedbacks) {
    std::unordered_map<EntityId, std::size_t> positives_by_client;
    HTrustResult result;
    for (const Feedback& f : feedbacks) {
        if (f.good()) {
            ++positives_by_client[f.client];
            ++result.positives;
        }
    }
    result.supporters = positives_by_client.size();
    std::vector<std::size_t> scores;
    scores.reserve(positives_by_client.size());
    for (const auto& [client, count] : positives_by_client) scores.push_back(count);
    result.h = h_index(std::move(scores));
    if (result.positives > 0) {
        const double ceiling = std::floor(std::sqrt(static_cast<double>(result.positives)));
        result.normalized = ceiling > 0.0 ? static_cast<double>(result.h) / ceiling : 0.0;
        result.normalized = std::min(result.normalized, 1.0);
    }
    return result;
}

}  // namespace hpr::repsys
