#include "repsys/evidential.h"

#include <stdexcept>

namespace hpr::repsys {

BeliefMass belief_from_counts(std::uint64_t positives, std::uint64_t negatives,
                              std::uint64_t neutrals, double discount) {
    if (!(discount >= 0.0 && discount <= 1.0)) {
        throw std::invalid_argument("belief_from_counts: discount must be in [0, 1]");
    }
    const std::uint64_t total = positives + negatives + neutrals;
    BeliefMass mass;
    if (total == 0) return mass;  // vacuous belief: all uncertainty
    const double n = static_cast<double>(total);
    const double reliability = 1.0 - discount;
    mass.trust = reliability * static_cast<double>(positives) / n;
    mass.distrust = reliability * static_cast<double>(negatives) / n;
    mass.uncertainty = 1.0 - mass.trust - mass.distrust;
    return mass;
}

BeliefMass belief_from_feedbacks(std::span<const Feedback> feedbacks,
                                 double discount) {
    std::uint64_t positives = 0;
    std::uint64_t negatives = 0;
    std::uint64_t neutrals = 0;
    for (const Feedback& f : feedbacks) {
        switch (f.rating) {
            case Rating::kPositive: ++positives; break;
            case Rating::kNegative: ++negatives; break;
            case Rating::kNeutral: ++neutrals; break;
        }
    }
    return belief_from_counts(positives, negatives, neutrals, discount);
}

BeliefMass combine(const BeliefMass& a, const BeliefMass& b) {
    // Conflict: mass assigned to contradictory intersections.
    const double conflict = a.trust * b.distrust + a.distrust * b.trust;
    const double normalizer = 1.0 - conflict;
    if (normalizer <= 0.0) {
        throw std::invalid_argument("combine: sources are in total conflict");
    }
    BeliefMass out;
    out.trust = (a.trust * b.trust + a.trust * b.uncertainty +
                 a.uncertainty * b.trust) /
                normalizer;
    out.distrust = (a.distrust * b.distrust + a.distrust * b.uncertainty +
                    a.uncertainty * b.distrust) /
                   normalizer;
    out.uncertainty = (a.uncertainty * b.uncertainty) / normalizer;
    return out;
}

}  // namespace hpr::repsys
