#ifndef HPR_REPSYS_TRUST_H
#define HPR_REPSYS_TRUST_H

/// \file trust.h
/// Trust functions (paper §2): mappings from a server's feedback history
/// to a trust value in [0, 1], interpreted as the predicted probability
/// that the next transaction will be satisfactory.
///
/// Two interfaces are provided:
///  * TrustFunction::evaluate — whole-history evaluation;
///  * TrustFunction::make_accumulator — an O(1)-per-feedback streaming
///    evaluator, used by simulated strategic attackers that must score
///    hypothetical futures thousands of times per run.
///
/// Implementations:
///  * AverageTrust   — good/total ratio (paper's first baseline; [13]
///    argues this simple form is often the most cost-effective).
///  * WeightedTrust  — EWMA  R_t = λ f_t + (1-λ) R_{t-1}  (paper's second
///    baseline, from Fan-Tan-Whinston [15]).
///  * BetaTrust      — posterior mean (g+1)/(g+b+2) of the Beta reputation
///    system (Ismail & Josang [16]).
///  * DecayTrust     — geometric time-decay weights w_i ∝ γ^(n-i),
///    Σw_i = 1 (the decay-factor family of [14, 18, 19]).

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "repsys/history.h"
#include "repsys/types.h"

namespace hpr::repsys {

/// Streaming trust evaluator. Feed outcomes oldest-first.
class TrustAccumulator {
public:
    virtual ~TrustAccumulator() = default;

    /// Incorporate the next transaction outcome.
    virtual void update(bool good) = 0;

    /// Current trust value in [0, 1].
    [[nodiscard]] virtual double value() const = 0;

    /// Deep copy — lets a strategic attacker branch a hypothetical future
    /// off its real history in O(1).
    [[nodiscard]] virtual std::unique_ptr<TrustAccumulator> clone() const = 0;
};

/// A trust function: 2^F x V -> [0, 1] in the paper's notation.
class TrustFunction {
public:
    virtual ~TrustFunction() = default;

    /// Human-readable name ("average", "weighted(0.5)", ...).
    [[nodiscard]] virtual std::string name() const = 0;

    /// Fresh streaming evaluator starting from the prior trust value.
    [[nodiscard]] virtual std::unique_ptr<TrustAccumulator> make_accumulator() const = 0;

    /// Trust value of a feedback sequence (oldest first).
    [[nodiscard]] double evaluate(std::span<const Feedback> feedbacks) const;

    /// Trust value of a whole history.
    [[nodiscard]] double evaluate(const TransactionHistory& history) const {
        return evaluate(history.view());
    }
};

/// good / total; prior when the history is empty.
class AverageTrust final : public TrustFunction {
public:
    explicit AverageTrust(double prior = 0.5);

    [[nodiscard]] std::string name() const override { return "average"; }
    [[nodiscard]] std::unique_ptr<TrustAccumulator> make_accumulator() const override;

private:
    double prior_;
};

/// R_t = lambda * f_t + (1 - lambda) * R_{t-1}.
class WeightedTrust final : public TrustFunction {
public:
    /// \throws std::invalid_argument unless lambda in (0, 1] and
    /// initial in [0, 1].
    explicit WeightedTrust(double lambda = 0.5, double initial = 0.5);

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] std::unique_ptr<TrustAccumulator> make_accumulator() const override;

    [[nodiscard]] double lambda() const noexcept { return lambda_; }

private:
    double lambda_;
    double initial_;
};

/// Posterior mean of Beta(g + 1, b + 1).
class BetaTrust final : public TrustFunction {
public:
    [[nodiscard]] std::string name() const override { return "beta"; }
    [[nodiscard]] std::unique_ptr<TrustAccumulator> make_accumulator() const override;
};

/// PID-style trust after TrustGuard (Srivatsa, Xiong & Liu, WWW 2005 —
/// paper reference [10]):
///
///   R_t = alpha * current + beta * integral + gamma * derivative
///
/// where `current` is the mean feedback over the most recent window,
/// `integral` the long-run average, and `derivative` the recent change in
/// window means (clamped into [0,1] at the end).  The derivative term
/// punishes *sudden* behavior swings — TrustGuard's answer to the same
/// oscillation attacks the paper screens out statistically; the two
/// approaches are natural baselines for one another.
class TrustGuardTrust final : public TrustFunction {
public:
    /// \param alpha,beta,gamma  component weights (alpha + beta expected
    ///        ~1; gamma weighs the damping term, typically negative-free
    ///        since the derivative is signed)
    /// \param window            transactions per "current" window
    /// \throws std::invalid_argument if window == 0 or alpha/beta < 0.
    TrustGuardTrust(double alpha = 0.5, double beta = 0.4, double gamma = 0.1,
                    std::size_t window = 10);

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] std::unique_ptr<TrustAccumulator> make_accumulator() const override;

private:
    double alpha_;
    double beta_;
    double gamma_;
    std::size_t window_;
};

/// Normalized geometric decay: trust = (sum gamma^(n-i) f_i) / (sum gamma^(n-i)).
class DecayTrust final : public TrustFunction {
public:
    /// \throws std::invalid_argument unless gamma in (0, 1].
    explicit DecayTrust(double gamma = 0.98, double prior = 0.5);

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] std::unique_ptr<TrustAccumulator> make_accumulator() const override;

    [[nodiscard]] double gamma() const noexcept { return gamma_; }

private:
    double gamma_;
    double prior_;
};

/// Build a trust function from a textual spec:
///   "average" | "average:<prior>" | "weighted" | "weighted:<lambda>"
///   | "beta" | "decay" | "decay:<gamma>" | "trustguard"
/// \throws std::invalid_argument on unknown specs.
[[nodiscard]] std::unique_ptr<TrustFunction> make_trust_function(const std::string& spec);

/// Specs make_trust_function accepts (for CLI help and tests).
[[nodiscard]] std::vector<std::string> known_trust_functions();

}  // namespace hpr::repsys

#endif  // HPR_REPSYS_TRUST_H
