#ifndef HPR_REPSYS_HISTORY_H
#define HPR_REPSYS_HISTORY_H

/// \file history.h
/// A server's transaction history: the time-ordered sequence of feedbacks
/// it has received.  This is the object both phases of the paper's
/// two-phase assessment consume.
///
/// The history maintains a prefix-sum of good transactions so that the
/// good count of any index range — and therefore any window statistic —
/// is an O(1) query.  That is what makes the O(n) behavior testing of
/// §5.5 possible without re-walking the feedback list.

#include <cstddef>
#include <span>
#include <vector>

#include "repsys/types.h"

namespace hpr::repsys {

class TransactionHistory {
public:
    TransactionHistory() = default;

    /// Build from a feedback sequence.
    /// \throws std::invalid_argument if timestamps are not non-decreasing.
    explicit TransactionHistory(std::vector<Feedback> feedbacks);

    /// Append one feedback.
    /// \throws std::invalid_argument if its timestamp precedes the last one.
    void append(const Feedback& feedback);

    /// Append a feedback with an auto-assigned timestamp (last + 1).
    void append(EntityId server, EntityId client, Rating rating);

    /// Remove the most recent feedback (used to roll back hypothetical
    /// transactions in strategic-attacker simulations).
    /// \throws std::logic_error when empty.
    void pop_back();

    [[nodiscard]] std::size_t size() const noexcept { return feedbacks_.size(); }
    [[nodiscard]] bool empty() const noexcept { return feedbacks_.empty(); }

    [[nodiscard]] const Feedback& operator[](std::size_t i) const noexcept {
        return feedbacks_[i];
    }

    [[nodiscard]] const std::vector<Feedback>& feedbacks() const noexcept {
        return feedbacks_;
    }

    /// View of the whole history, oldest first.
    [[nodiscard]] std::span<const Feedback> view() const noexcept { return feedbacks_; }

    /// View of the most recent `count` feedbacks (all of them if fewer).
    [[nodiscard]] std::span<const Feedback> recent(std::size_t count) const noexcept;

    /// Number of good transactions in the half-open index range [begin, end).
    /// \throws std::out_of_range on an invalid range.
    [[nodiscard]] std::size_t good_count(std::size_t begin, std::size_t end) const;

    /// Number of good transactions in the whole history. O(1).
    [[nodiscard]] std::size_t good_count() const noexcept {
        return good_prefix_.empty() ? 0 : good_prefix_.back();
    }

    /// Fraction of good transactions; 0 when empty.
    [[nodiscard]] double good_ratio() const noexcept {
        return feedbacks_.empty() ? 0.0
                                  : static_cast<double>(good_count()) /
                                        static_cast<double>(feedbacks_.size());
    }

    /// Number of distinct clients that have ever left feedback.
    [[nodiscard]] std::size_t distinct_clients() const;

    /// Number of distinct clients whose latest feedback is positive —
    /// the server's "supporter base" of paper §4.
    [[nodiscard]] std::size_t supporter_base() const;

private:
    std::vector<Feedback> feedbacks_;
    std::vector<std::size_t> good_prefix_;  ///< good_prefix_[i] = goods in [0, i]
};

}  // namespace hpr::repsys

#endif  // HPR_REPSYS_HISTORY_H
