#include "repsys/io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace hpr::repsys {
namespace {

constexpr const char* kHeader = "time,server,client,rating";

std::vector<std::string> split_fields(const std::string& line) {
    std::vector<std::string> fields;
    std::string field;
    std::istringstream in{line};
    while (std::getline(in, field, ',')) fields.push_back(field);
    return fields;
}

}  // namespace

void write_csv(std::ostream& out, const std::vector<Feedback>& feedbacks) {
    out << kHeader << '\n';
    for (const Feedback& f : feedbacks) {
        out << f.time << ',' << f.server << ',' << f.client << ','
            << to_string(f.rating) << '\n';
    }
}

void save_csv(const std::string& path, const TransactionHistory& history) {
    std::ofstream out{path};
    if (!out) {
        throw std::runtime_error("save_csv: cannot open '" + path + "' for writing");
    }
    write_csv(out, history.feedbacks());
    if (!out) {
        throw std::runtime_error("save_csv: write to '" + path + "' failed");
    }
}

std::vector<Feedback> read_csv(std::istream& in) {
    std::vector<Feedback> feedbacks;
    std::string line;
    std::size_t line_no = 0;
    bool saw_header = false;
    while (std::getline(in, line)) {
        ++line_no;
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.empty()) continue;
        if (!saw_header) {
            if (line != kHeader) {
                throw std::runtime_error("read_csv: line 1 must be the header '" +
                                         std::string{kHeader} + "'");
            }
            saw_header = true;
            continue;
        }
        const auto fields = split_fields(line);
        if (fields.size() != 4) {
            throw std::runtime_error("read_csv: line " + std::to_string(line_no) +
                                     ": expected 4 fields, got " +
                                     std::to_string(fields.size()));
        }
        try {
            Feedback f;
            f.time = std::stoll(fields[0]);
            f.server = static_cast<EntityId>(std::stoul(fields[1]));
            f.client = static_cast<EntityId>(std::stoul(fields[2]));
            f.rating = rating_from_string(fields[3]);
            feedbacks.push_back(f);
        } catch (const std::exception& e) {
            throw std::runtime_error("read_csv: line " + std::to_string(line_no) +
                                     ": " + e.what());
        }
    }
    return feedbacks;
}

TransactionHistory load_csv(const std::string& path) {
    std::ifstream in{path};
    if (!in) {
        throw std::runtime_error("load_csv: cannot open '" + path + "'");
    }
    return TransactionHistory{read_csv(in)};
}

}  // namespace hpr::repsys
