#include "repsys/history.h"

#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace hpr::repsys {

TransactionHistory::TransactionHistory(std::vector<Feedback> feedbacks)
    : feedbacks_(std::move(feedbacks)) {
    good_prefix_.reserve(feedbacks_.size());
    std::size_t running = 0;
    Timestamp last_time = feedbacks_.empty() ? 0 : feedbacks_.front().time;
    for (const Feedback& f : feedbacks_) {
        if (f.time < last_time) {
            throw std::invalid_argument(
                "TransactionHistory: feedbacks must be time-ordered");
        }
        last_time = f.time;
        running += f.good() ? 1 : 0;
        good_prefix_.push_back(running);
    }
}

void TransactionHistory::append(const Feedback& feedback) {
    if (!feedbacks_.empty() && feedback.time < feedbacks_.back().time) {
        throw std::invalid_argument(
            "TransactionHistory::append: timestamp precedes the last feedback");
    }
    feedbacks_.push_back(feedback);
    good_prefix_.push_back(good_count() + (feedback.good() ? 1 : 0));
}

void TransactionHistory::append(EntityId server, EntityId client, Rating rating) {
    const Timestamp next_time = feedbacks_.empty() ? 1 : feedbacks_.back().time + 1;
    append(Feedback{next_time, server, client, rating});
}

void TransactionHistory::pop_back() {
    if (feedbacks_.empty()) {
        throw std::logic_error("TransactionHistory::pop_back: history is empty");
    }
    feedbacks_.pop_back();
    good_prefix_.pop_back();
}

std::span<const Feedback> TransactionHistory::recent(std::size_t count) const noexcept {
    const std::size_t n = feedbacks_.size();
    const std::size_t take = count < n ? count : n;
    return std::span<const Feedback>{feedbacks_.data() + (n - take), take};
}

std::size_t TransactionHistory::good_count(std::size_t begin, std::size_t end) const {
    if (begin > end || end > feedbacks_.size()) {
        throw std::out_of_range("TransactionHistory::good_count: invalid range");
    }
    if (begin == end) return 0;
    const std::size_t upto_end = good_prefix_[end - 1];
    const std::size_t upto_begin = begin == 0 ? 0 : good_prefix_[begin - 1];
    return upto_end - upto_begin;
}

std::size_t TransactionHistory::distinct_clients() const {
    std::unordered_set<EntityId> clients;
    clients.reserve(feedbacks_.size());
    for (const Feedback& f : feedbacks_) clients.insert(f.client);
    return clients.size();
}

std::size_t TransactionHistory::supporter_base() const {
    std::unordered_map<EntityId, bool> latest_good;
    latest_good.reserve(feedbacks_.size());
    for (const Feedback& f : feedbacks_) latest_good[f.client] = f.good();
    std::size_t supporters = 0;
    for (const auto& [client, good] : latest_good) {
        if (good) ++supporters;
    }
    return supporters;
}

}  // namespace hpr::repsys
