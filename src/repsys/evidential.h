#ifndef HPR_REPSYS_EVIDENTIAL_H
#define HPR_REPSYS_EVIDENTIAL_H

/// \file evidential.h
/// Evidential (Dempster-Shafer) trust, after Yu & Singh's "An evidential
/// model of distributed reputation management" (AAMAS 2002 — paper
/// reference [9]).
///
/// Ratings from {positive, neutral, negative} are treated as evidence for
/// the frames T (trustworthy), ¬T, and Θ (uncertainty).  A server's
/// recent ratings induce a basic probability assignment
///   m(T) = pos/n,  m(¬T) = neg/n,  m(Θ) = neu/n  (+ discounting),
/// and independent sources (e.g. different witnesses) combine with
/// Dempster's rule.  The scalar trust value exposed to the two-phase
/// framework is the pignistic probability  m(T) + m(Θ)/2.

#include <cstdint>
#include <span>

#include "repsys/types.h"

namespace hpr::repsys {

/// A basic probability assignment over {T, ¬T, Θ}.
struct BeliefMass {
    double trust = 0.0;        ///< m(T)
    double distrust = 0.0;     ///< m(¬T)
    double uncertainty = 1.0;  ///< m(Θ); the three sum to 1

    /// Pignistic scalar: the uncertainty mass splits evenly.
    [[nodiscard]] double expected_trust() const noexcept {
        return trust + 0.5 * uncertainty;
    }
};

/// Build a belief mass from rating counts, with `discount` of every
/// observation's mass diverted to uncertainty (models unreliable
/// witnesses; 0 = fully reliable).
/// \throws std::invalid_argument unless discount is in [0, 1].
[[nodiscard]] BeliefMass belief_from_counts(std::uint64_t positives,
                                            std::uint64_t negatives,
                                            std::uint64_t neutrals,
                                            double discount = 0.0);

/// Belief mass of a feedback sequence (kNeutral feeds uncertainty).
[[nodiscard]] BeliefMass belief_from_feedbacks(std::span<const Feedback> feedbacks,
                                               double discount = 0.0);

/// Dempster's rule of combination for two independent sources.
/// \throws std::invalid_argument when the sources fully contradict
/// (normalization mass is zero).
[[nodiscard]] BeliefMass combine(const BeliefMass& a, const BeliefMass& b);

}  // namespace hpr::repsys

#endif  // HPR_REPSYS_EVIDENTIAL_H
