#include "repsys/types.h"

#include <stdexcept>

namespace hpr::repsys {

Rating rating_from_string(const std::string& name) {
    if (name == "positive") return Rating::kPositive;
    if (name == "negative") return Rating::kNegative;
    if (name == "neutral") return Rating::kNeutral;
    throw std::invalid_argument("rating_from_string: unknown rating '" + name + "'");
}

}  // namespace hpr::repsys
