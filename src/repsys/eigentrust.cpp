#include "repsys/eigentrust.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace hpr::repsys {

EigenTrust EigenTrust::compute(std::span<const Feedback> feedbacks,
                               EigenTrustConfig config,
                               std::span<const EntityId> pre_trusted) {
    if (!(config.teleport > 0.0 && config.teleport <= 1.0)) {
        throw std::invalid_argument("EigenTrust: teleport must be in (0, 1]");
    }
    if (config.max_iterations == 0) {
        throw std::invalid_argument("EigenTrust: need at least one iteration");
    }
    if (feedbacks.empty()) {
        throw std::invalid_argument("EigenTrust: no feedbacks");
    }

    // Dense node indexing over every entity seen.
    std::unordered_map<EntityId, std::size_t> index;
    std::vector<EntityId> ids;
    const auto node_of = [&](EntityId id) {
        const auto [it, inserted] = index.try_emplace(id, ids.size());
        if (inserted) ids.push_back(id);
        return it->second;
    };
    for (const Feedback& f : feedbacks) {
        node_of(f.client);
        node_of(f.server);
    }
    const std::size_t n = ids.size();

    // Local trust s_ij = max(0, satisfied - unsatisfied).
    std::unordered_map<std::uint64_t, double> local;
    local.reserve(feedbacks.size());
    for (const Feedback& f : feedbacks) {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(node_of(f.client)) << 32) |
            static_cast<std::uint64_t>(node_of(f.server));
        local[key] += f.good() ? 1.0 : -1.0;
    }

    // Row-normalized sparse matrix in CSR-ish triplet form.
    struct Edge {
        std::size_t from;
        std::size_t to;
        double weight;
    };
    std::vector<Edge> edges;
    edges.reserve(local.size());
    std::vector<double> row_sum(n, 0.0);
    for (const auto& [key, value] : local) {
        if (value <= 0.0) continue;
        const auto from = static_cast<std::size_t>(key >> 32);
        row_sum[from] += value;
    }
    for (const auto& [key, value] : local) {
        if (value <= 0.0) continue;
        const auto from = static_cast<std::size_t>(key >> 32);
        const auto to = static_cast<std::size_t>(key & 0xffffffffULL);
        edges.push_back(Edge{from, to, value / row_sum[from]});
    }

    // Teleport prior: uniform over the pre-trusted set, else over all.
    std::vector<double> prior(n, 0.0);
    std::size_t anchors = 0;
    for (const EntityId id : pre_trusted) {
        const auto it = index.find(id);
        if (it != index.end()) {
            prior[it->second] += 1.0;
            ++anchors;
        }
    }
    if (anchors == 0) {
        std::fill(prior.begin(), prior.end(), 1.0 / static_cast<double>(n));
    } else {
        for (double& v : prior) v /= static_cast<double>(anchors);
    }

    // Power iteration on t = (1 - a) C^T t + a p.  Mass from nodes with no
    // outgoing trust (dangling) is redistributed to the prior, keeping t a
    // distribution.
    std::vector<bool> dangling(n, true);
    for (const Edge& e : edges) dangling[e.from] = false;

    std::vector<double> t = prior;
    if (anchors == 0) {
        // prior was already uniform; keep t = prior.
    }
    std::vector<double> next(n, 0.0);
    EigenTrust result;
    for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
        std::fill(next.begin(), next.end(), 0.0);
        double dangling_mass = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            if (dangling[i]) dangling_mass += t[i];
        }
        for (const Edge& e : edges) next[e.to] += (1.0 - config.teleport) * t[e.from] * e.weight;
        for (std::size_t i = 0; i < n; ++i) {
            next[i] += (config.teleport + (1.0 - config.teleport) * dangling_mass) *
                       prior[i];
        }
        double delta = 0.0;
        for (std::size_t i = 0; i < n; ++i) delta += std::fabs(next[i] - t[i]);
        t.swap(next);
        result.iterations_ = iter + 1;
        if (delta < config.tolerance) {
            result.converged_ = true;
            break;
        }
    }

    for (std::size_t i = 0; i < n; ++i) result.scores_.emplace(ids[i], t[i]);
    return result;
}

double EigenTrust::score(EntityId entity) const {
    const auto it = scores_.find(entity);
    return it == scores_.end() ? 0.0 : it->second;
}

std::vector<EntityId> EigenTrust::ranking() const {
    std::vector<EntityId> ids;
    ids.reserve(scores_.size());
    for (const auto& [id, score] : scores_) ids.push_back(id);
    std::sort(ids.begin(), ids.end(), [this](EntityId a, EntityId b) {
        const double sa = scores_.at(a);
        const double sb = scores_.at(b);
        if (sa != sb) return sa > sb;
        return a < b;
    });
    return ids;
}

}  // namespace hpr::repsys
