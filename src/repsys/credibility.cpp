#include "repsys/credibility.h"

#include <stdexcept>

namespace hpr::repsys {

double CredibilityWeightedTrust::evaluate(
    std::span<const Feedback> feedbacks,
    const std::map<EntityId, double>& credibility, const CredibilityConfig& config) {
    double weight = 0.0;
    double weighted_good = 0.0;
    for (const Feedback& f : feedbacks) {
        const auto it = credibility.find(f.client);
        const double w =
            it == credibility.end() ? config.default_credibility : it->second;
        weight += w;
        if (f.good()) weighted_good += w;
    }
    return weight <= 0.0 ? config.prior : weighted_good / weight;
}

std::map<EntityId, double> CredibilityWeightedTrust::compute(
    const FeedbackStore& store, CredibilityConfig config) {
    if (config.iterations == 0) {
        throw std::invalid_argument(
            "CredibilityWeightedTrust: need at least one iteration");
    }
    if (!(config.default_credibility >= 0.0 && config.default_credibility <= 1.0) ||
        !(config.prior >= 0.0 && config.prior <= 1.0)) {
        throw std::invalid_argument(
            "CredibilityWeightedTrust: defaults must be in [0, 1]");
    }
    std::map<EntityId, double> trust;
    for (std::size_t round = 0; round < config.iterations; ++round) {
        std::map<EntityId, double> next;
        for (const EntityId server : store.servers()) {
            next[server] =
                evaluate(store.history(server).view(), trust, config);
        }
        trust = std::move(next);
    }
    return trust;
}

}  // namespace hpr::repsys
