#include "repsys/trust.h"

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <stdexcept>

namespace hpr::repsys {
namespace {

class AverageAccumulator final : public TrustAccumulator {
public:
    explicit AverageAccumulator(double prior) : prior_(prior) {}

    void update(bool good) override {
        ++total_;
        if (good) ++good_;
    }

    [[nodiscard]] double value() const override {
        return total_ == 0 ? prior_
                           : static_cast<double>(good_) / static_cast<double>(total_);
    }

    [[nodiscard]] std::unique_ptr<TrustAccumulator> clone() const override {
        return std::make_unique<AverageAccumulator>(*this);
    }

private:
    double prior_;
    std::uint64_t good_ = 0;
    std::uint64_t total_ = 0;
};

class WeightedAccumulator final : public TrustAccumulator {
public:
    WeightedAccumulator(double lambda, double initial)
        : lambda_(lambda), value_(initial) {}

    void update(bool good) override {
        value_ = lambda_ * (good ? 1.0 : 0.0) + (1.0 - lambda_) * value_;
    }

    [[nodiscard]] double value() const override { return value_; }

    [[nodiscard]] std::unique_ptr<TrustAccumulator> clone() const override {
        return std::make_unique<WeightedAccumulator>(*this);
    }

private:
    double lambda_;
    double value_;
};

class BetaAccumulator final : public TrustAccumulator {
public:
    void update(bool good) override {
        if (good) {
            ++good_;
        } else {
            ++bad_;
        }
    }

    [[nodiscard]] double value() const override {
        return (static_cast<double>(good_) + 1.0) /
               (static_cast<double>(good_ + bad_) + 2.0);
    }

    [[nodiscard]] std::unique_ptr<TrustAccumulator> clone() const override {
        return std::make_unique<BetaAccumulator>(*this);
    }

private:
    std::uint64_t good_ = 0;
    std::uint64_t bad_ = 0;
};

class TrustGuardAccumulator final : public TrustAccumulator {
public:
    TrustGuardAccumulator(double alpha, double beta, double gamma, std::size_t window)
        : alpha_(alpha), beta_(beta), gamma_(gamma), window_(window) {}

    void update(bool good) override {
        const double value = good ? 1.0 : 0.0;
        ++total_;
        integral_sum_ += value;
        current_window_sum_ += value;
        if (++current_window_fill_ == window_) {
            previous_window_mean_ = last_window_mean_;
            last_window_mean_ = current_window_sum_ / static_cast<double>(window_);
            has_window_ = true;
            current_window_sum_ = 0.0;
            current_window_fill_ = 0;
        }
    }

    [[nodiscard]] double value() const override {
        if (total_ == 0) return 0.5;
        const double integral = integral_sum_ / static_cast<double>(total_);
        // "Current" is the latest complete window when one exists, else
        // the partial window so newcomers still get a reading.
        const double current =
            has_window_ ? last_window_mean_
                        : current_window_sum_ /
                              static_cast<double>(current_window_fill_);
        const double derivative = has_window_ && previous_window_mean_ >= 0.0
                                      ? last_window_mean_ - previous_window_mean_
                                      : 0.0;
        const double raw = alpha_ * current + beta_ * integral + gamma_ * derivative;
        return std::min(1.0, std::max(0.0, raw));
    }

    [[nodiscard]] std::unique_ptr<TrustAccumulator> clone() const override {
        return std::make_unique<TrustGuardAccumulator>(*this);
    }

private:
    double alpha_;
    double beta_;
    double gamma_;
    std::size_t window_;
    std::uint64_t total_ = 0;
    double integral_sum_ = 0.0;
    double current_window_sum_ = 0.0;
    std::size_t current_window_fill_ = 0;
    double last_window_mean_ = 0.0;
    double previous_window_mean_ = -1.0;  // sentinel: no previous window yet
    bool has_window_ = false;
};

class DecayAccumulator final : public TrustAccumulator {
public:
    DecayAccumulator(double gamma, double prior) : gamma_(gamma), prior_(prior) {}

    void update(bool good) override {
        numerator_ = gamma_ * numerator_ + (good ? 1.0 : 0.0);
        denominator_ = gamma_ * denominator_ + 1.0;
    }

    [[nodiscard]] double value() const override {
        return denominator_ == 0.0 ? prior_ : numerator_ / denominator_;
    }

    [[nodiscard]] std::unique_ptr<TrustAccumulator> clone() const override {
        return std::make_unique<DecayAccumulator>(*this);
    }

private:
    double gamma_;
    double prior_;
    double numerator_ = 0.0;
    double denominator_ = 0.0;
};

}  // namespace

double TrustFunction::evaluate(std::span<const Feedback> feedbacks) const {
    const auto acc = make_accumulator();
    for (const Feedback& f : feedbacks) acc->update(f.good());
    return acc->value();
}

AverageTrust::AverageTrust(double prior) : prior_(prior) {
    if (!(prior >= 0.0 && prior <= 1.0)) {
        throw std::invalid_argument("AverageTrust: prior must be in [0, 1]");
    }
}

std::unique_ptr<TrustAccumulator> AverageTrust::make_accumulator() const {
    return std::make_unique<AverageAccumulator>(prior_);
}

WeightedTrust::WeightedTrust(double lambda, double initial)
    : lambda_(lambda), initial_(initial) {
    if (!(lambda > 0.0 && lambda <= 1.0)) {
        throw std::invalid_argument("WeightedTrust: lambda must be in (0, 1]");
    }
    if (!(initial >= 0.0 && initial <= 1.0)) {
        throw std::invalid_argument("WeightedTrust: initial must be in [0, 1]");
    }
}

std::string WeightedTrust::name() const {
    std::ostringstream out;
    out << "weighted(" << lambda_ << ")";
    return out.str();
}

std::unique_ptr<TrustAccumulator> WeightedTrust::make_accumulator() const {
    return std::make_unique<WeightedAccumulator>(lambda_, initial_);
}

std::unique_ptr<TrustAccumulator> BetaTrust::make_accumulator() const {
    return std::make_unique<BetaAccumulator>();
}

TrustGuardTrust::TrustGuardTrust(double alpha, double beta, double gamma,
                                 std::size_t window)
    : alpha_(alpha), beta_(beta), gamma_(gamma), window_(window) {
    if (window_ == 0) {
        throw std::invalid_argument("TrustGuardTrust: window must be positive");
    }
    if (alpha_ < 0.0 || beta_ < 0.0) {
        throw std::invalid_argument(
            "TrustGuardTrust: alpha and beta must be non-negative");
    }
}

std::string TrustGuardTrust::name() const {
    std::ostringstream out;
    out << "trustguard(" << alpha_ << "," << beta_ << "," << gamma_ << ")";
    return out.str();
}

std::unique_ptr<TrustAccumulator> TrustGuardTrust::make_accumulator() const {
    return std::make_unique<TrustGuardAccumulator>(alpha_, beta_, gamma_, window_);
}

DecayTrust::DecayTrust(double gamma, double prior) : gamma_(gamma), prior_(prior) {
    if (!(gamma > 0.0 && gamma <= 1.0)) {
        throw std::invalid_argument("DecayTrust: gamma must be in (0, 1]");
    }
    if (!(prior >= 0.0 && prior <= 1.0)) {
        throw std::invalid_argument("DecayTrust: prior must be in [0, 1]");
    }
}

std::string DecayTrust::name() const {
    std::ostringstream out;
    out << "decay(" << gamma_ << ")";
    return out.str();
}

std::unique_ptr<TrustAccumulator> DecayTrust::make_accumulator() const {
    return std::make_unique<DecayAccumulator>(gamma_, prior_);
}

std::unique_ptr<TrustFunction> make_trust_function(const std::string& spec) {
    const auto colon = spec.find(':');
    const std::string kind = spec.substr(0, colon);
    const bool has_param = colon != std::string::npos;
    double param = 0.0;
    if (has_param) {
        try {
            param = std::stod(spec.substr(colon + 1));
        } catch (const std::exception&) {
            throw std::invalid_argument("make_trust_function: bad parameter in '" +
                                        spec + "'");
        }
    }
    if (kind == "average") {
        return has_param ? std::make_unique<AverageTrust>(param)
                         : std::make_unique<AverageTrust>();
    }
    if (kind == "weighted") {
        return has_param ? std::make_unique<WeightedTrust>(param)
                         : std::make_unique<WeightedTrust>();
    }
    if (kind == "beta") {
        return std::make_unique<BetaTrust>();
    }
    if (kind == "decay") {
        return has_param ? std::make_unique<DecayTrust>(param)
                         : std::make_unique<DecayTrust>();
    }
    if (kind == "trustguard") {
        return std::make_unique<TrustGuardTrust>();
    }
    throw std::invalid_argument("make_trust_function: unknown spec '" + spec + "'");
}

std::vector<std::string> known_trust_functions() {
    return {"average",       "average:<prior>", "weighted", "weighted:<lambda>",
            "beta",          "decay",           "decay:<gamma>",
            "trustguard"};
}

}  // namespace hpr::repsys
