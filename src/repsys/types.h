#ifndef HPR_REPSYS_TYPES_H
#define HPR_REPSYS_TYPES_H

/// \file types.h
/// Core vocabulary of the reputation system (paper §2): entities,
/// timestamps, ratings and the feedback tuple (t, s, c, r).

#include <cstdint>
#include <string>

namespace hpr::repsys {

/// Opaque identifier of an entity (server or client).
using EntityId = std::uint32_t;

/// Logical transaction time. The library only relies on ordering, so any
/// monotonically increasing counter works (wall clock, sequence number...).
using Timestamp = std::int64_t;

/// Client rating of a single transaction.  The paper's core model is
/// binary {positive, negative}; kNeutral exists for the multinomial
/// extension of §3.1 and is treated as "not good" by binary code paths.
enum class Rating : std::uint8_t {
    kNegative = 0,
    kPositive = 1,
    kNeutral = 2,
};

[[nodiscard]] constexpr bool is_good(Rating r) noexcept { return r == Rating::kPositive; }

[[nodiscard]] constexpr const char* to_string(Rating r) noexcept {
    switch (r) {
        case Rating::kNegative: return "negative";
        case Rating::kPositive: return "positive";
        case Rating::kNeutral: return "neutral";
    }
    return "unknown";
}

/// Parse a rating from its to_string() form.
/// \throws std::invalid_argument for unknown names.
[[nodiscard]] Rating rating_from_string(const std::string& name);

/// A feedback is a statement issued by the client about the quality of a
/// server in a single transaction: the tuple (t, s, c, r) of paper §2.
struct Feedback {
    Timestamp time = 0;
    EntityId server = 0;
    EntityId client = 0;
    Rating rating = Rating::kPositive;

    [[nodiscard]] bool good() const noexcept { return is_good(rating); }

    friend bool operator==(const Feedback&, const Feedback&) = default;
};

}  // namespace hpr::repsys

#endif  // HPR_REPSYS_TYPES_H
