#ifndef HPR_REPSYS_EIGENTRUST_H
#define HPR_REPSYS_EIGENTRUST_H

/// \file eigentrust.h
/// EigenTrust global reputation (Kamvar, Schlosser & Garcia-Molina,
/// "EigenRep/EigenTrust", WWW 2003 — paper reference [3]), implemented as
/// a related-work baseline.
///
/// Each client i keeps a local trust value s_ij for server j (satisfied
/// minus unsatisfied transactions, clamped at 0).  Rows are normalized to
/// c_ij, and the global trust vector is the stationary distribution of
/// the walk  t = (1 - a) C^T t + a p,  where p is uniform over a
/// pre-trusted set and `a` the teleport weight that guarantees
/// convergence and collusion damping.
///
/// Like every pure trust *function*, EigenTrust is still phase-2 material:
/// it ranks peers but cannot tell an honest 90%-good server from an
/// attacker engineering a 90% history — which is exactly the gap the
/// paper's phase-1 screening fills.

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "repsys/types.h"

namespace hpr::repsys {

/// EigenTrust parameters.
struct EigenTrustConfig {
    double teleport = 0.15;     ///< weight `a` of the pre-trusted prior
    std::size_t max_iterations = 200;
    double tolerance = 1e-12;   ///< L1 convergence threshold
};

/// Global trust scores computed from a feedback set.
class EigenTrust {
public:
    /// Build from feedbacks.  Every entity that appears (as server or
    /// client) becomes a node; each feedback contributes +1 (positive) or
    /// -1 (negative/neutral) to the issuing client's local trust in the
    /// server.  `pre_trusted` entities anchor the teleport prior; when
    /// empty, the prior is uniform over all nodes.
    /// \throws std::invalid_argument on bad config or empty input.
    static EigenTrust compute(std::span<const Feedback> feedbacks,
                              EigenTrustConfig config = {},
                              std::span<const EntityId> pre_trusted = {});

    /// Global trust of an entity; 0 for unknown ids.
    [[nodiscard]] double score(EntityId entity) const;

    /// All scores (sum to 1), keyed by entity id.
    [[nodiscard]] const std::map<EntityId, double>& scores() const noexcept {
        return scores_;
    }

    /// Entity ids sorted by descending global trust.
    [[nodiscard]] std::vector<EntityId> ranking() const;

    /// Iterations the power method used.
    [[nodiscard]] std::size_t iterations() const noexcept { return iterations_; }

    /// Whether the iteration met the tolerance before max_iterations.
    [[nodiscard]] bool converged() const noexcept { return converged_; }

private:
    std::map<EntityId, double> scores_;
    std::size_t iterations_ = 0;
    bool converged_ = false;
};

}  // namespace hpr::repsys

#endif  // HPR_REPSYS_EIGENTRUST_H
