#ifndef HPR_REPSYS_CREDIBILITY_H
#define HPR_REPSYS_CREDIBILITY_H

/// \file credibility.h
/// Credibility-weighted trust, in the spirit of PeerTrust (Xiong & Liu —
/// paper reference [7]): a feedback counts proportionally to the
/// credibility of its issuer, where an issuer's credibility is its own
/// trust value in the system.  The fixed point is computed by iterating
/// over a FeedbackStore: start every entity at a default credibility,
/// recompute every server's weighted trust, use those values as the next
/// round's credibilities.
///
/// This is the classic *feedback-filtering* answer to collusion and a
/// useful baseline next to the paper's §4 *behavior-testing* answer: it
/// discounts raters the system distrusts, whereas the paper's scheme
/// keeps all feedback but demands the aggregate stays statistically
/// consistent.

#include <map>
#include <span>

#include "repsys/store.h"
#include "repsys/types.h"

namespace hpr::repsys {

/// Parameters of the credibility fixed-point computation.
struct CredibilityConfig {
    std::size_t iterations = 3;        ///< fixed-point rounds
    double default_credibility = 0.5;  ///< credibility of never-rated issuers
    double prior = 0.5;                ///< trust of servers with zero weight
};

/// Credibility-weighted trust evaluation.
class CredibilityWeightedTrust {
public:
    /// Weighted trust of one feedback sequence under a given credibility
    /// assignment: sum(cred(c_i) * good_i) / sum(cred(c_i)); the prior
    /// when total weight is zero.
    [[nodiscard]] static double evaluate(
        std::span<const Feedback> feedbacks,
        const std::map<EntityId, double>& credibility, const CredibilityConfig& config);

    /// Fixed-point trust for every server in the store.
    /// \throws std::invalid_argument on a degenerate config.
    [[nodiscard]] static std::map<EntityId, double> compute(
        const FeedbackStore& store, CredibilityConfig config = {});
};

}  // namespace hpr::repsys

#endif  // HPR_REPSYS_CREDIBILITY_H
