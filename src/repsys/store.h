#ifndef HPR_REPSYS_STORE_H
#define HPR_REPSYS_STORE_H

/// \file store.h
/// Feedback storage substrate.
///
/// The paper (§2) assumes "all the transaction feedbacks are available for
/// trust assessment (e.g., through a central server as in online auction
/// communities, or through special data organization schemes in P2P
/// systems)".  FeedbackStore is that component: a registry that ingests
/// feedbacks for many servers, serves per-server histories for assessment,
/// answers time-range and client queries, and persists to / restores from
/// a directory of CSV logs.
///
/// The store is **sharded and thread-safe**: server ids map onto N
/// lock-striped shards through a splitmix64 mix, so concurrent submitters
/// of different servers almost never contend, and a batch submit groups
/// its feedbacks per shard to take each shard lock exactly once.  The
/// concurrency contract, per method:
///
///  * `submit` (single and batch), `evict_before`, `contains`,
///    `history_snapshot`, `servers`, `between`, `issued_by`,
///    `sample_history`, `size`, `server_count`, `save` — safe to call
///    from any number of threads concurrently;
///  * `history()` returns a reference into the store.  The referenced
///    history has a stable address (shard maps are node-based) but is NOT
///    safe to read while another thread appends to or evicts *the same
///    server* — concurrent readers must use `history_snapshot()`, which
///    copies under the shard lock and is consistent by construction;
///  * multi-shard readers (`servers`, `size`, `issued_by`, `save`) lock
///    one shard at a time, so their result is per-shard consistent: a
///    feedback submitted concurrently may or may not be included, but
///    every included per-server history is a valid prefix of the log.
///
/// Batch ingest is all-or-nothing *per shard*: each shard's slice of the
/// batch is validated (per-server time ordering, including order within
/// the batch itself) before any of it is applied, so a mid-batch
/// out-of-order timestamp rejects that entire shard's slice.  Shards are
/// processed in ascending shard-index order; slices applied to earlier
/// shards before the failing one stay applied (the exception reports the
/// first violation).
///
/// It also supports the paper's practical note that "our scheme can be
/// equally applied to systems where only portions of feedbacks can be
/// retrieved": `sample_history` returns a deterministic subsample of a
/// server's history for bandwidth-limited deployments.
///
/// Shard occupancy and lock contention are exported through the obs
/// registry (`hpr_store_shards`, `hpr_store_shard_occupancy_max`,
/// `hpr_store_shard_contention_total` — docs/scaling.md).

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "repsys/history.h"
#include "repsys/types.h"
#include "stats/rng.h"

namespace hpr::repsys {

/// Thrown by FeedbackStore::ingest_batch when a batch is inadmissible:
/// carries the smallest offending batch index so a protocol front-end
/// can answer "line N is wrong" instead of a bare parse failure.
class BatchRejected : public std::invalid_argument {
public:
    BatchRejected(std::size_t index, const std::string& what)
        : std::invalid_argument(what), index_(index) {}

    /// 0-based position of the first offending feedback in the batch.
    [[nodiscard]] std::size_t index() const noexcept { return index_; }

private:
    std::size_t index_;
};

/// In-memory feedback registry for a population of servers, lock-striped
/// across shards for concurrent ingest and assessment.
class FeedbackStore {
public:
    /// Default shard count: enough stripes that 8 submitting threads
    /// rarely collide, cheap enough that single-threaded callers do not
    /// notice the extra indirection.
    static constexpr std::size_t kDefaultShards = 16;

    /// \param shard_count  lock stripes (>= 1; clamped up to 1).
    explicit FeedbackStore(std::size_t shard_count = kDefaultShards);

    /// Deep copy (locks each source shard in turn; the copy is private to
    /// the caller and needs no locks until shared).
    FeedbackStore(const FeedbackStore& other);
    FeedbackStore& operator=(const FeedbackStore& other);
    FeedbackStore(FeedbackStore&& other) noexcept;
    FeedbackStore& operator=(FeedbackStore&& other) noexcept;

    /// Ingest one feedback (routed to the feedback's server).
    /// \throws std::invalid_argument if it is older than the server's
    /// latest recorded feedback (per-server logs are time-ordered).
    void submit(const Feedback& feedback);

    /// Ingest a batch: feedbacks are grouped per shard in one pass and
    /// each shard lock is taken exactly once.  Validation is
    /// all-or-nothing per shard (see the file comment).
    void submit(const std::vector<Feedback>& feedbacks);

    /// Ingest a batch all-or-nothing across the WHOLE batch (contrast
    /// submit(vector), which is all-or-nothing per shard): every target
    /// shard is locked in ascending index order, every slice is
    /// validated, and only a fully admissible batch is applied — on
    /// rejection the store is byte-identical to its pre-call state.
    /// This is the network ingest path's transaction contract: a request
    /// either lands completely or not at all, no matter how its records
    /// spread across shards.
    /// \throws BatchRejected carrying the smallest offending batch index
    ///         (a feedback older than its server's latest recorded time,
    ///         counting earlier feedbacks of this very batch).
    void ingest_batch(const std::vector<Feedback>& feedbacks);

    /// Number of servers with at least one feedback.
    [[nodiscard]] std::size_t server_count() const noexcept {
        return static_cast<std::size_t>(
            server_count_.load(std::memory_order_relaxed));
    }

    /// Total feedbacks across all servers.
    [[nodiscard]] std::size_t size() const noexcept {
        return total_.load(std::memory_order_relaxed);
    }

    /// Number of lock stripes.
    [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }

    /// The shard a server id maps to (stable for the store's lifetime;
    /// exposed for tests and for shard-aware batch planning).
    [[nodiscard]] std::size_t shard_of(EntityId server) const noexcept {
        std::uint64_t state = static_cast<std::uint64_t>(server) + 0x517cc1b727220a95ULL;
        return stats::splitmix64(state) % shards_.size();
    }

    /// Ids of all known servers, ascending.
    [[nodiscard]] std::vector<EntityId> servers() const;

    /// Whether any feedback exists for `server`.
    [[nodiscard]] bool contains(EntityId server) const;

    /// Length of a server's history without copying it (one shard lock);
    /// std::nullopt for unknown servers.  The check-and-read is atomic,
    /// unlike a contains()/history() pair racing eviction.
    [[nodiscard]] std::optional<std::size_t> history_length(EntityId server) const;

    /// Point-in-time occupancy of one shard (see shard_occupancy()).
    struct ShardOccupancy {
        std::size_t servers = 0;    ///< server logs living on this shard
        std::size_t feedbacks = 0;  ///< feedbacks across those logs
    };

    /// Per-shard occupancy, locking one shard at a time (the same
    /// per-shard consistency as servers()/size()).  Feeds the live
    /// `/store` introspection page; the registry's
    /// hpr_store_shard_occupancy_max gauge is this table's maximum.
    [[nodiscard]] std::vector<ShardOccupancy> shard_occupancy() const;

    /// Full history of a server, by reference.  Stable address, but not
    /// safe against concurrent mutation of the same server — concurrent
    /// readers use history_snapshot().
    /// \throws std::out_of_range for unknown servers.
    [[nodiscard]] const TransactionHistory& history(EntityId server) const;

    /// Consistent copy of a server's history, taken under the shard lock:
    /// always a valid time-ordered prefix-complete log, no matter what
    /// other threads are submitting or evicting.
    /// \throws std::out_of_range for unknown servers.
    [[nodiscard]] TransactionHistory history_snapshot(EntityId server) const;

    /// Feedbacks of a server within [from, to] inclusive, time-ordered.
    /// Empty for unknown servers.
    [[nodiscard]] std::vector<Feedback> between(EntityId server, Timestamp from,
                                                Timestamp to) const;

    /// All feedbacks a given client ever issued (across servers),
    /// time-ordered (ties broken by server id).
    [[nodiscard]] std::vector<Feedback> issued_by(EntityId client) const;

    /// Deterministic subsample of a server's history: every feedback kept
    /// independently with probability `fraction` under the given seed,
    /// order preserved.  Models partial feedback retrieval.
    /// \throws std::invalid_argument unless fraction is in [0, 1].
    [[nodiscard]] std::vector<Feedback> sample_history(EntityId server,
                                                       double fraction,
                                                       std::uint64_t seed) const;

    /// Drop every feedback strictly older than `cutoff` (retention).
    /// Returns the number of feedbacks removed.  Servers left empty are
    /// forgotten entirely; when `forgotten` is non-null their ids are
    /// appended to it (ascending), so callers keeping per-server derived
    /// state — e.g. serve::BatchAssessor's streaming screener bank — can
    /// drop exactly the streams whose history the store no longer holds.
    std::size_t evict_before(Timestamp cutoff,
                             std::vector<EntityId>* forgotten = nullptr);

    /// Persist one `<server>.csv` per server into `directory` (created if
    /// missing). \throws std::runtime_error on I/O failure.
    void save(const std::string& directory) const;

    /// Load a store persisted with save().
    /// \throws std::runtime_error on I/O or parse failure.
    [[nodiscard]] static FeedbackStore load(const std::string& directory,
                                            std::size_t shard_count = kDefaultShards);

private:
    /// One lock stripe: a mutex and the logs of every server that hashes
    /// onto it.  Heap-allocated so the store stays movable.
    struct Shard {
        mutable std::mutex mutex;
        std::map<EntityId, TransactionHistory> logs;
    };

    /// Lock a shard, counting contended acquisitions.
    [[nodiscard]] std::unique_lock<std::mutex> lock_shard(const Shard& shard) const;

    [[nodiscard]] Shard& shard_for(EntityId server) noexcept {
        return *shards_[shard_of(server)];
    }
    [[nodiscard]] const Shard& shard_for(EntityId server) const noexcept {
        return *shards_[shard_of(server)];
    }

    /// Publish the mutation-level gauges (last writer wins, like the
    /// pre-sharding store: exact for the one-store-per-process shape).
    void publish_level_metrics() const;

    std::vector<std::unique_ptr<Shard>> shards_;
    std::atomic<std::size_t> total_{0};
    std::atomic<std::int64_t> server_count_{0};
};

}  // namespace hpr::repsys

#endif  // HPR_REPSYS_STORE_H
