#ifndef HPR_REPSYS_STORE_H
#define HPR_REPSYS_STORE_H

/// \file store.h
/// Feedback storage substrate.
///
/// The paper (§2) assumes "all the transaction feedbacks are available for
/// trust assessment (e.g., through a central server as in online auction
/// communities, or through special data organization schemes in P2P
/// systems)".  FeedbackStore is that component: a registry that ingests
/// feedbacks for many servers, serves per-server histories for assessment,
/// answers time-range and client queries, and persists to / restores from
/// a directory of CSV logs.
///
/// It also supports the paper's practical note that "our scheme can be
/// equally applied to systems where only portions of feedbacks can be
/// retrieved": `sample_history` returns a deterministic subsample of a
/// server's history for bandwidth-limited deployments.

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "repsys/history.h"
#include "repsys/types.h"
#include "stats/rng.h"

namespace hpr::repsys {

/// In-memory feedback registry for a population of servers.
class FeedbackStore {
public:
    /// Ingest one feedback (routed to the feedback's server).
    /// \throws std::invalid_argument if it is older than the server's
    /// latest recorded feedback (per-server logs are time-ordered).
    void submit(const Feedback& feedback);

    /// Ingest a batch (each routed independently).
    void submit(const std::vector<Feedback>& feedbacks);

    /// Number of servers with at least one feedback.
    [[nodiscard]] std::size_t server_count() const noexcept { return logs_.size(); }

    /// Total feedbacks across all servers.
    [[nodiscard]] std::size_t size() const noexcept { return total_; }

    /// Ids of all known servers, ascending.
    [[nodiscard]] std::vector<EntityId> servers() const;

    /// Whether any feedback exists for `server`.
    [[nodiscard]] bool contains(EntityId server) const noexcept {
        return logs_.find(server) != logs_.end();
    }

    /// Full history of a server.
    /// \throws std::out_of_range for unknown servers.
    [[nodiscard]] const TransactionHistory& history(EntityId server) const;

    /// Feedbacks of a server within [from, to] inclusive, time-ordered.
    /// Empty for unknown servers.
    [[nodiscard]] std::vector<Feedback> between(EntityId server, Timestamp from,
                                                Timestamp to) const;

    /// All feedbacks a given client ever issued (across servers),
    /// time-ordered (ties broken by server id).
    [[nodiscard]] std::vector<Feedback> issued_by(EntityId client) const;

    /// Deterministic subsample of a server's history: every feedback kept
    /// independently with probability `fraction` under the given seed,
    /// order preserved.  Models partial feedback retrieval.
    /// \throws std::invalid_argument unless fraction is in [0, 1].
    [[nodiscard]] std::vector<Feedback> sample_history(EntityId server,
                                                       double fraction,
                                                       std::uint64_t seed) const;

    /// Drop every feedback strictly older than `cutoff` (retention).
    /// Returns the number of feedbacks removed.  Servers left empty are
    /// forgotten entirely.
    std::size_t evict_before(Timestamp cutoff);

    /// Persist one `<server>.csv` per server into `directory` (created if
    /// missing). \throws std::runtime_error on I/O failure.
    void save(const std::string& directory) const;

    /// Load a store persisted with save().
    /// \throws std::runtime_error on I/O or parse failure.
    [[nodiscard]] static FeedbackStore load(const std::string& directory);

private:
    std::map<EntityId, TransactionHistory> logs_;
    std::size_t total_ = 0;
};

}  // namespace hpr::repsys

#endif  // HPR_REPSYS_STORE_H
