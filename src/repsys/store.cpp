#include "repsys/store.h"

#include <algorithm>
#include <filesystem>
#include <stdexcept>

#include "obs/metrics.h"
#include "repsys/io.h"

namespace hpr::repsys {

namespace {

/// Ingest-path metrics, shared by every store in the process.  The level
/// gauges are written last-writer-wins per mutation, which is exact for
/// the intended deployment shape (one store per serving process); the
/// history-length gauge is a high-water mark across all entities.
struct StoreMetrics {
    obs::Counter& ingested;
    obs::Counter& evicted;
    obs::Gauge& servers;
    obs::Gauge& history_length_max;
};

StoreMetrics& store_metrics() {
    auto& registry = obs::default_registry();
    static StoreMetrics metrics{
        registry.counter("hpr_store_ingest_total", "Feedbacks accepted into a store"),
        registry.counter("hpr_store_evicted_total",
                         "Feedbacks dropped by retention eviction"),
        registry.gauge("hpr_store_servers", "Servers with at least one feedback"),
        registry.gauge("hpr_store_history_length_max",
                       "High-water mark of a single server's history length"),
    };
    return metrics;
}

}  // namespace

void FeedbackStore::submit(const Feedback& feedback) {
    TransactionHistory& log = logs_[feedback.server];
    log.append(feedback);
    ++total_;
    StoreMetrics& metrics = store_metrics();
    metrics.ingested.increment();
    metrics.servers.set(static_cast<std::int64_t>(logs_.size()));
    metrics.history_length_max.set_max(static_cast<std::int64_t>(log.size()));
}

void FeedbackStore::submit(const std::vector<Feedback>& feedbacks) {
    for (const Feedback& f : feedbacks) submit(f);
}

std::vector<EntityId> FeedbackStore::servers() const {
    std::vector<EntityId> ids;
    ids.reserve(logs_.size());
    for (const auto& [server, log] : logs_) ids.push_back(server);
    return ids;
}

const TransactionHistory& FeedbackStore::history(EntityId server) const {
    const auto it = logs_.find(server);
    if (it == logs_.end()) {
        throw std::out_of_range("FeedbackStore::history: unknown server " +
                                std::to_string(server));
    }
    return it->second;
}

std::vector<Feedback> FeedbackStore::between(EntityId server, Timestamp from,
                                             Timestamp to) const {
    std::vector<Feedback> result;
    if (from > to) return result;
    const auto it = logs_.find(server);
    if (it == logs_.end()) return result;
    const auto& feedbacks = it->second.feedbacks();
    // Per-server logs are time-ordered: binary-search the range bounds.
    const auto lower = std::lower_bound(
        feedbacks.begin(), feedbacks.end(), from,
        [](const Feedback& f, Timestamp t) { return f.time < t; });
    const auto upper = std::upper_bound(
        feedbacks.begin(), feedbacks.end(), to,
        [](Timestamp t, const Feedback& f) { return t < f.time; });
    result.assign(lower, upper);
    return result;
}

std::vector<Feedback> FeedbackStore::issued_by(EntityId client) const {
    std::vector<Feedback> result;
    for (const auto& [server, log] : logs_) {
        for (const Feedback& f : log.feedbacks()) {
            if (f.client == client) result.push_back(f);
        }
    }
    std::stable_sort(result.begin(), result.end(),
                     [](const Feedback& a, const Feedback& b) {
                         if (a.time != b.time) return a.time < b.time;
                         return a.server < b.server;
                     });
    return result;
}

std::vector<Feedback> FeedbackStore::sample_history(EntityId server, double fraction,
                                                    std::uint64_t seed) const {
    if (!(fraction >= 0.0 && fraction <= 1.0)) {
        throw std::invalid_argument(
            "FeedbackStore::sample_history: fraction must be in [0, 1]");
    }
    std::vector<Feedback> result;
    const auto it = logs_.find(server);
    if (it == logs_.end()) return result;
    stats::Rng rng{seed ^ (static_cast<std::uint64_t>(server) * 0x9e3779b9ULL)};
    for (const Feedback& f : it->second.feedbacks()) {
        if (rng.bernoulli(fraction)) result.push_back(f);
    }
    return result;
}

std::size_t FeedbackStore::evict_before(Timestamp cutoff) {
    std::size_t removed = 0;
    for (auto it = logs_.begin(); it != logs_.end();) {
        const auto& feedbacks = it->second.feedbacks();
        const auto keep_from = std::lower_bound(
            feedbacks.begin(), feedbacks.end(), cutoff,
            [](const Feedback& f, Timestamp t) { return f.time < t; });
        const auto dropped = static_cast<std::size_t>(keep_from - feedbacks.begin());
        if (dropped > 0) {
            removed += dropped;
            std::vector<Feedback> kept{keep_from, feedbacks.end()};
            if (kept.empty()) {
                it = logs_.erase(it);
                continue;
            }
            it->second = TransactionHistory{std::move(kept)};
        }
        ++it;
    }
    total_ -= removed;
    store_metrics().evicted.increment(removed);
    store_metrics().servers.set(static_cast<std::int64_t>(logs_.size()));
    return removed;
}

void FeedbackStore::save(const std::string& directory) const {
    std::error_code ec;
    std::filesystem::create_directories(directory, ec);
    if (ec) {
        throw std::runtime_error("FeedbackStore::save: cannot create '" + directory +
                                 "': " + ec.message());
    }
    for (const auto& [server, log] : logs_) {
        const auto path =
            (std::filesystem::path{directory} / (std::to_string(server) + ".csv"))
                .string();
        save_csv(path, log);
    }
}

FeedbackStore FeedbackStore::load(const std::string& directory) {
    FeedbackStore store;
    if (!std::filesystem::is_directory(directory)) {
        throw std::runtime_error("FeedbackStore::load: '" + directory +
                                 "' is not a directory");
    }
    for (const auto& entry : std::filesystem::directory_iterator(directory)) {
        if (!entry.is_regular_file() || entry.path().extension() != ".csv") continue;
        TransactionHistory log = load_csv(entry.path().string());
        store.total_ += log.size();
        if (log.empty()) continue;
        store.logs_.emplace(log[0].server, std::move(log));
    }
    return store;
}

}  // namespace hpr::repsys
