#include "repsys/store.h"

#include <algorithm>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "repsys/io.h"

namespace hpr::repsys {

namespace {

/// Ingest-path metrics, shared by every store in the process.  The level
/// gauges are written last-writer-wins per mutation, which is exact for
/// the intended deployment shape (one store per serving process); the
/// history-length and shard-occupancy gauges are high-water marks.
struct StoreMetrics {
    obs::Counter& ingested;
    obs::Counter& evicted;
    obs::Counter& shard_contention;
    obs::Gauge& servers;
    obs::Gauge& history_length_max;
    obs::Gauge& shards;
    obs::Gauge& shard_occupancy_max;
};

StoreMetrics& store_metrics() {
    auto& registry = obs::default_registry();
    static StoreMetrics metrics{
        registry.counter("hpr_store_ingest_total", "Feedbacks accepted into a store"),
        registry.counter("hpr_store_evicted_total",
                         "Feedbacks dropped by retention eviction"),
        registry.counter("hpr_store_shard_contention_total",
                         "Shard lock acquisitions that found the lock held"),
        registry.gauge("hpr_store_servers", "Servers with at least one feedback"),
        registry.gauge("hpr_store_history_length_max",
                       "High-water mark of a single server's history length"),
        registry.gauge("hpr_store_shards", "Lock stripes of the store"),
        registry.gauge("hpr_store_shard_occupancy_max",
                       "High-water mark of servers resident in a single shard"),
    };
    return metrics;
}

}  // namespace

FeedbackStore::FeedbackStore(std::size_t shard_count) {
    if (shard_count == 0) shard_count = 1;
    shards_.reserve(shard_count);
    for (std::size_t i = 0; i < shard_count; ++i) {
        shards_.push_back(std::make_unique<Shard>());
    }
    store_metrics().shards.set(static_cast<std::int64_t>(shard_count));
}

FeedbackStore::FeedbackStore(const FeedbackStore& other)
    : FeedbackStore(other.shards_.size()) {
    std::size_t total = 0;
    std::int64_t servers = 0;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        const auto lock = lock_shard(*other.shards_[i]);
        shards_[i]->logs = other.shards_[i]->logs;
        servers += static_cast<std::int64_t>(shards_[i]->logs.size());
        for (const auto& [server, log] : shards_[i]->logs) total += log.size();
    }
    total_.store(total, std::memory_order_relaxed);
    server_count_.store(servers, std::memory_order_relaxed);
}

FeedbackStore& FeedbackStore::operator=(const FeedbackStore& other) {
    if (this != &other) {
        FeedbackStore copy{other};
        *this = std::move(copy);
    }
    return *this;
}

FeedbackStore::FeedbackStore(FeedbackStore&& other) noexcept
    : shards_(std::move(other.shards_)),
      total_(other.total_.load(std::memory_order_relaxed)),
      server_count_(other.server_count_.load(std::memory_order_relaxed)) {
    other.shards_.clear();
    other.total_.store(0, std::memory_order_relaxed);
    other.server_count_.store(0, std::memory_order_relaxed);
}

FeedbackStore& FeedbackStore::operator=(FeedbackStore&& other) noexcept {
    if (this != &other) {
        shards_ = std::move(other.shards_);
        total_.store(other.total_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
        server_count_.store(other.server_count_.load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
        other.shards_.clear();
        other.total_.store(0, std::memory_order_relaxed);
        other.server_count_.store(0, std::memory_order_relaxed);
    }
    return *this;
}

std::unique_lock<std::mutex> FeedbackStore::lock_shard(const Shard& shard) const {
    std::unique_lock<std::mutex> lock{shard.mutex, std::try_to_lock};
    if (!lock.owns_lock()) {
        store_metrics().shard_contention.increment();
        lock.lock();
    }
    return lock;
}

void FeedbackStore::publish_level_metrics() const {
    StoreMetrics& metrics = store_metrics();
    metrics.servers.set(server_count_.load(std::memory_order_relaxed));
}

void FeedbackStore::submit(const Feedback& feedback) {
    Shard& shard = shard_for(feedback.server);
    std::size_t log_size = 0;
    std::size_t shard_servers = 0;
    {
        const auto lock = lock_shard(shard);
        auto [it, inserted] = shard.logs.try_emplace(feedback.server);
        it->second.append(feedback);  // throws on time regression, state intact
        log_size = it->second.size();
        shard_servers = shard.logs.size();
        if (inserted) server_count_.fetch_add(1, std::memory_order_relaxed);
        total_.fetch_add(1, std::memory_order_relaxed);
    }
    StoreMetrics& metrics = store_metrics();
    metrics.ingested.increment();
    metrics.history_length_max.set_max(static_cast<std::int64_t>(log_size));
    metrics.shard_occupancy_max.set_max(static_cast<std::int64_t>(shard_servers));
    publish_level_metrics();
}

void FeedbackStore::submit(const std::vector<Feedback>& feedbacks) {
    if (feedbacks.empty()) return;
    // One routing pass: per-shard index lists, batch order preserved.
    std::vector<std::vector<std::size_t>> groups(shards_.size());
    for (std::size_t i = 0; i < feedbacks.size(); ++i) {
        groups[shard_of(feedbacks[i].server)].push_back(i);
    }
    StoreMetrics& metrics = store_metrics();
    std::size_t max_log = 0;
    std::size_t max_occupancy = 0;
    for (std::size_t s = 0; s < groups.size(); ++s) {
        const auto& group = groups[s];
        if (group.empty()) continue;
        Shard& shard = *shards_[s];
        const auto lock = lock_shard(shard);
        // Validate the whole slice before touching the shard: a feedback
        // must not precede its server's latest time, counting both the
        // resident log and earlier feedbacks of this very batch.
        std::map<EntityId, Timestamp> pending_last;
        for (const std::size_t i : group) {
            const Feedback& f = feedbacks[i];
            auto [it, inserted] = pending_last.try_emplace(f.server);
            if (inserted) {
                const auto log = shard.logs.find(f.server);
                if (log == shard.logs.end() || log->second.empty()) {
                    it->second = f.time;  // first feedback sets the clock
                } else {
                    it->second = log->second.feedbacks().back().time;
                }
            }
            if (f.time < it->second) {
                throw std::invalid_argument(
                    "FeedbackStore::submit: batch feedback at t=" +
                    std::to_string(f.time) + " precedes server " +
                    std::to_string(f.server) + "'s latest feedback at t=" +
                    std::to_string(it->second) +
                    " (shard slice rejected whole)");
            }
            it->second = f.time;
        }
        // Apply: validated above, so no append can throw mid-slice.
        std::size_t new_servers = 0;
        for (const std::size_t i : group) {
            const Feedback& f = feedbacks[i];
            auto [it, inserted] = shard.logs.try_emplace(f.server);
            if (inserted) ++new_servers;
            it->second.append(f);
            if (it->second.size() > max_log) max_log = it->second.size();
        }
        if (shard.logs.size() > max_occupancy) max_occupancy = shard.logs.size();
        total_.fetch_add(group.size(), std::memory_order_relaxed);
        if (new_servers > 0) {
            server_count_.fetch_add(static_cast<std::int64_t>(new_servers),
                                    std::memory_order_relaxed);
        }
        metrics.ingested.increment(group.size());
    }
    metrics.history_length_max.set_max(static_cast<std::int64_t>(max_log));
    metrics.shard_occupancy_max.set_max(static_cast<std::int64_t>(max_occupancy));
    publish_level_metrics();
}

void FeedbackStore::ingest_batch(const std::vector<Feedback>& feedbacks) {
    if (feedbacks.empty()) return;
    std::vector<std::vector<std::size_t>> groups(shards_.size());
    for (std::size_t i = 0; i < feedbacks.size(); ++i) {
        groups[shard_of(feedbacks[i].server)].push_back(i);
    }
    // Lock every target shard, ascending.  Single-shard writers take one
    // lock and concurrent ingest_batch calls lock in the same order, so
    // holding several stripes at once cannot deadlock.
    std::vector<std::unique_lock<std::mutex>> locks;
    for (std::size_t s = 0; s < groups.size(); ++s) {
        if (!groups[s].empty()) locks.push_back(lock_shard(*shards_[s]));
    }
    // Validate everything before touching anything.  The offending index
    // reported is the smallest across the whole batch, not the first one
    // some shard happened to see.
    std::size_t offender = feedbacks.size();
    std::string error;
    for (std::size_t s = 0; s < groups.size(); ++s) {
        const auto& group = groups[s];
        if (group.empty()) continue;
        const Shard& shard = *shards_[s];
        std::map<EntityId, Timestamp> pending_last;
        for (const std::size_t i : group) {
            const Feedback& f = feedbacks[i];
            auto [it, inserted] = pending_last.try_emplace(f.server);
            if (inserted) {
                const auto log = shard.logs.find(f.server);
                if (log == shard.logs.end() || log->second.empty()) {
                    it->second = f.time;
                } else {
                    it->second = log->second.feedbacks().back().time;
                }
            }
            if (f.time < it->second) {
                if (i < offender) {
                    offender = i;
                    error = "FeedbackStore::ingest_batch: feedback " +
                            std::to_string(i) + " at t=" +
                            std::to_string(f.time) + " precedes server " +
                            std::to_string(f.server) +
                            "'s latest feedback at t=" +
                            std::to_string(it->second) +
                            " (whole batch rejected)";
                }
                break;  // later offenders in this shard cannot be smaller
            }
            it->second = f.time;
        }
    }
    if (offender < feedbacks.size()) throw BatchRejected(offender, error);

    // Apply: validated above, so no append can throw mid-batch.
    StoreMetrics& metrics = store_metrics();
    std::size_t max_log = 0;
    std::size_t max_occupancy = 0;
    std::int64_t new_servers = 0;
    for (std::size_t s = 0; s < groups.size(); ++s) {
        const auto& group = groups[s];
        if (group.empty()) continue;
        Shard& shard = *shards_[s];
        for (const std::size_t i : group) {
            const Feedback& f = feedbacks[i];
            auto [it, inserted] = shard.logs.try_emplace(f.server);
            if (inserted) ++new_servers;
            it->second.append(f);
            if (it->second.size() > max_log) max_log = it->second.size();
        }
        if (shard.logs.size() > max_occupancy) max_occupancy = shard.logs.size();
    }
    total_.fetch_add(feedbacks.size(), std::memory_order_relaxed);
    if (new_servers > 0) {
        server_count_.fetch_add(new_servers, std::memory_order_relaxed);
    }
    metrics.ingested.increment(feedbacks.size());
    metrics.history_length_max.set_max(static_cast<std::int64_t>(max_log));
    metrics.shard_occupancy_max.set_max(static_cast<std::int64_t>(max_occupancy));
    publish_level_metrics();
}

std::vector<EntityId> FeedbackStore::servers() const {
    std::vector<EntityId> ids;
    ids.reserve(server_count());
    for (const auto& shard : shards_) {
        const auto lock = lock_shard(*shard);
        for (const auto& [server, log] : shard->logs) ids.push_back(server);
    }
    std::sort(ids.begin(), ids.end());
    return ids;
}

bool FeedbackStore::contains(EntityId server) const {
    const Shard& shard = shard_for(server);
    const auto lock = lock_shard(shard);
    return shard.logs.find(server) != shard.logs.end();
}

std::optional<std::size_t> FeedbackStore::history_length(EntityId server) const {
    const Shard& shard = shard_for(server);
    const auto lock = lock_shard(shard);
    const auto it = shard.logs.find(server);
    if (it == shard.logs.end()) return std::nullopt;
    return it->second.size();
}

std::vector<FeedbackStore::ShardOccupancy> FeedbackStore::shard_occupancy() const {
    std::vector<ShardOccupancy> occupancy(shards_.size());
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        const auto lock = lock_shard(*shards_[i]);
        occupancy[i].servers = shards_[i]->logs.size();
        for (const auto& [server, log] : shards_[i]->logs) {
            occupancy[i].feedbacks += log.size();
        }
    }
    return occupancy;
}

const TransactionHistory& FeedbackStore::history(EntityId server) const {
    const Shard& shard = shard_for(server);
    const auto lock = lock_shard(shard);
    const auto it = shard.logs.find(server);
    if (it == shard.logs.end()) {
        throw std::out_of_range("FeedbackStore::history: unknown server " +
                                std::to_string(server));
    }
    return it->second;  // node-stable; see the concurrency contract
}

TransactionHistory FeedbackStore::history_snapshot(EntityId server) const {
    const Shard& shard = shard_for(server);
    const auto lock = lock_shard(shard);
    const auto it = shard.logs.find(server);
    if (it == shard.logs.end()) {
        throw std::out_of_range("FeedbackStore::history_snapshot: unknown server " +
                                std::to_string(server));
    }
    return it->second;  // copied while the lock is held
}

std::vector<Feedback> FeedbackStore::between(EntityId server, Timestamp from,
                                             Timestamp to) const {
    std::vector<Feedback> result;
    if (from > to) return result;
    const Shard& shard = shard_for(server);
    const auto lock = lock_shard(shard);
    const auto it = shard.logs.find(server);
    if (it == shard.logs.end()) return result;
    const auto& feedbacks = it->second.feedbacks();
    // Per-server logs are time-ordered: binary-search the range bounds.
    const auto lower = std::lower_bound(
        feedbacks.begin(), feedbacks.end(), from,
        [](const Feedback& f, Timestamp t) { return f.time < t; });
    const auto upper = std::upper_bound(
        feedbacks.begin(), feedbacks.end(), to,
        [](Timestamp t, const Feedback& f) { return t < f.time; });
    result.assign(lower, upper);
    return result;
}

std::vector<Feedback> FeedbackStore::issued_by(EntityId client) const {
    std::vector<Feedback> result;
    for (const auto& shard : shards_) {
        const auto lock = lock_shard(*shard);
        for (const auto& [server, log] : shard->logs) {
            for (const Feedback& f : log.feedbacks()) {
                if (f.client == client) result.push_back(f);
            }
        }
    }
    std::stable_sort(result.begin(), result.end(),
                     [](const Feedback& a, const Feedback& b) {
                         if (a.time != b.time) return a.time < b.time;
                         return a.server < b.server;
                     });
    return result;
}

std::vector<Feedback> FeedbackStore::sample_history(EntityId server, double fraction,
                                                    std::uint64_t seed) const {
    if (!(fraction >= 0.0 && fraction <= 1.0)) {
        throw std::invalid_argument(
            "FeedbackStore::sample_history: fraction must be in [0, 1]");
    }
    std::vector<Feedback> result;
    const Shard& shard = shard_for(server);
    const auto lock = lock_shard(shard);
    const auto it = shard.logs.find(server);
    if (it == shard.logs.end()) return result;
    stats::Rng rng{seed ^ (static_cast<std::uint64_t>(server) * 0x9e3779b9ULL)};
    for (const Feedback& f : it->second.feedbacks()) {
        if (rng.bernoulli(fraction)) result.push_back(f);
    }
    return result;
}

std::size_t FeedbackStore::evict_before(Timestamp cutoff,
                                        std::vector<EntityId>* forgotten) {
    std::size_t removed = 0;
    std::int64_t forgotten_count = 0;
    std::vector<EntityId> emptied;
    for (const auto& shard_ptr : shards_) {
        Shard& shard = *shard_ptr;
        const auto lock = lock_shard(shard);
        for (auto it = shard.logs.begin(); it != shard.logs.end();) {
            const auto& feedbacks = it->second.feedbacks();
            const auto keep_from = std::lower_bound(
                feedbacks.begin(), feedbacks.end(), cutoff,
                [](const Feedback& f, Timestamp t) { return f.time < t; });
            const auto dropped =
                static_cast<std::size_t>(keep_from - feedbacks.begin());
            if (dropped > 0) {
                removed += dropped;
                std::vector<Feedback> kept{keep_from, feedbacks.end()};
                if (kept.empty()) {
                    if (forgotten != nullptr) emptied.push_back(it->first);
                    it = shard.logs.erase(it);
                    ++forgotten_count;
                    continue;
                }
                it->second = TransactionHistory{std::move(kept)};
            }
            ++it;
        }
    }
    if (forgotten != nullptr) {
        std::sort(emptied.begin(), emptied.end());
        forgotten->insert(forgotten->end(), emptied.begin(), emptied.end());
    }
    total_.fetch_sub(removed, std::memory_order_relaxed);
    if (forgotten_count > 0) {
        server_count_.fetch_sub(forgotten_count, std::memory_order_relaxed);
    }
    store_metrics().evicted.increment(removed);
    publish_level_metrics();
    return removed;
}

void FeedbackStore::save(const std::string& directory) const {
    std::error_code ec;
    std::filesystem::create_directories(directory, ec);
    if (ec) {
        throw std::runtime_error("FeedbackStore::save: cannot create '" + directory +
                                 "': " + ec.message());
    }
    for (const auto& shard : shards_) {
        const auto lock = lock_shard(*shard);
        for (const auto& [server, log] : shard->logs) {
            const auto path =
                (std::filesystem::path{directory} / (std::to_string(server) + ".csv"))
                    .string();
            save_csv(path, log);
        }
    }
}

FeedbackStore FeedbackStore::load(const std::string& directory,
                                  std::size_t shard_count) {
    FeedbackStore store{shard_count};
    if (!std::filesystem::is_directory(directory)) {
        throw std::runtime_error("FeedbackStore::load: '" + directory +
                                 "' is not a directory");
    }
    for (const auto& entry : std::filesystem::directory_iterator(directory)) {
        if (!entry.is_regular_file() || entry.path().extension() != ".csv") continue;
        TransactionHistory log = load_csv(entry.path().string());
        if (log.empty()) continue;
        const EntityId server = log[0].server;
        Shard& shard = store.shard_for(server);
        store.total_.fetch_add(log.size(), std::memory_order_relaxed);
        store.server_count_.fetch_add(1, std::memory_order_relaxed);
        shard.logs.emplace(server, std::move(log));
    }
    return store;
}

}  // namespace hpr::repsys
