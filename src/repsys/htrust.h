#ifndef HPR_REPSYS_HTRUST_H
#define HPR_REPSYS_HTRUST_H

/// \file htrust.h
/// H-Trust: h-index-based group reputation, after Zhao & Li's "H-Trust: a
/// robust and lightweight group reputation system" (ICDCS workshops 2008
/// — paper reference [21]).
///
/// A server's H-score is the largest h such that at least h distinct
/// clients each contributed at least h positive feedbacks.  Like the
/// bibliometric h-index it is inherently resistant to single-source
/// inflation: one colluder filing a thousand fake positives raises the
/// score by at most one, and k colluders by at most k — the breadth of
/// the supporter base matters as much as the volume, which is the same
/// intuition the paper's §4 collusion test exploits from a different
/// angle.

#include <cstddef>
#include <span>
#include <vector>

#include "repsys/types.h"

namespace hpr::repsys {

/// The h-index of a score multiset: the largest h with at least h entries
/// >= h.  O(n log n).
[[nodiscard]] std::size_t h_index(std::vector<std::size_t> scores);

/// H-Trust evaluation of a feedback sequence.
struct HTrustResult {
    std::size_t h = 0;             ///< the H-score
    std::size_t supporters = 0;    ///< distinct clients with >= 1 positive
    std::size_t positives = 0;     ///< total positive feedbacks

    /// H-score normalized to [0, 1] against its ceiling floor(sqrt(positives)):
    /// 1 means support is spread as broadly as the volume allows.
    double normalized = 0.0;
};

/// Compute the H-score from per-client positive-feedback counts.
[[nodiscard]] HTrustResult h_trust(std::span<const Feedback> feedbacks);

}  // namespace hpr::repsys

#endif  // HPR_REPSYS_HTRUST_H
