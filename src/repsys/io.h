#ifndef HPR_REPSYS_IO_H
#define HPR_REPSYS_IO_H

/// \file io.h
/// CSV persistence for feedback logs, so the examples and any downstream
/// tooling can move transaction histories in and out of the library.
///
/// Format (one feedback per line, header required):
///   time,server,client,rating
///   1,42,7,positive
///   2,42,9,negative

#include <iosfwd>
#include <string>
#include <vector>

#include "repsys/history.h"
#include "repsys/types.h"

namespace hpr::repsys {

/// Serialize feedbacks as CSV (with header) to a stream.
void write_csv(std::ostream& out, const std::vector<Feedback>& feedbacks);

/// Serialize a history's feedbacks as CSV to a file.
/// \throws std::runtime_error if the file cannot be opened.
void save_csv(const std::string& path, const TransactionHistory& history);

/// Parse feedbacks from a CSV stream.
/// \throws std::runtime_error on malformed lines (with line number).
[[nodiscard]] std::vector<Feedback> read_csv(std::istream& in);

/// Load a history from a CSV file.
/// \throws std::runtime_error if the file cannot be opened or parsed, or
/// std::invalid_argument if feedbacks are not time-ordered.
[[nodiscard]] TransactionHistory load_csv(const std::string& path);

}  // namespace hpr::repsys

#endif  // HPR_REPSYS_IO_H
