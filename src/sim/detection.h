#ifndef HPR_SIM_DETECTION_H
#define HPR_SIM_DETECTION_H

/// \file detection.h
/// Detection-rate experiment of paper §5.3 (Fig. 7) and the matching
/// false-positive measurement on honest players.

#include <cstdint>
#include <memory>

#include "core/multi_test.h"
#include "stats/calibrate.h"

namespace hpr::sim {

/// Parameters of the detection-rate experiment.
struct DetectionConfig {
    std::size_t attack_window = 10;  ///< N: 0.1*N attacks per N transactions
    double attack_fraction = 0.1;    ///< keeps reputation ~0.9 as in the paper
    std::size_t history_size = 800;  ///< transactions per trial
    std::size_t trials = 200;
    std::uint64_t seed = 7;

    core::MultiTestConfig test{};
    bool use_multi = true;  ///< multi-testing (Scheme 2) vs single test
};

/// Fraction of periodic-attack histories flagged suspicious.
[[nodiscard]] double detection_rate(
    const DetectionConfig& config,
    const std::shared_ptr<stats::Calibrator>& calibrator = nullptr);

/// Fraction of honest Bernoulli(p) histories flagged suspicious
/// (should stay near 1 - confidence for the single test).
[[nodiscard]] double false_positive_rate(
    double p, const DetectionConfig& config,
    const std::shared_ptr<stats::Calibrator>& calibrator = nullptr);

}  // namespace hpr::sim

#endif  // HPR_SIM_DETECTION_H
