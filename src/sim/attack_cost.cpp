#include "sim/attack_cost.h"

#include "sim/generators.h"
#include "stats/calibrate.h"

namespace hpr::sim {

double AttackCostSeries::median_cost() const {
    if (cost_samples.empty()) return 0.0;
    return stats::empirical_quantile(cost_samples, 0.5);
}

AttackCostResult run_attack_cost(const AttackCostConfig& config,
                                 const std::shared_ptr<stats::Calibrator>& calibrator) {
    stats::Rng rng{config.seed};
    constexpr repsys::EntityId kServer = 1;
    const ClientIdScheme clients{};

    core::TwoPhaseConfig assessor_config;
    assessor_config.test = config.test;
    assessor_config.mode = config.screening;
    const std::shared_ptr<const repsys::TrustFunction> trust{
        repsys::make_trust_function(config.trust_spec)};
    const core::TwoPhaseAssessor assessor{
        assessor_config, trust,
        calibrator ? calibrator : core::make_calibrator(config.test.base)};

    // Preparation phase: behave as an honest player with trust prep_trust.
    repsys::TransactionHistory history =
        honest_history(config.prep_size, config.prep_trust, rng, kServer, clients);
    auto trust_acc = trust->make_accumulator();
    for (const repsys::Feedback& f : history.feedbacks()) trust_acc->update(f.good());

    AttackCostResult result;
    std::size_t tx_index = history.size();
    while (result.attacks_completed < config.target_attacks &&
           result.attack_steps < config.max_attack_steps) {
        ++result.attack_steps;
        const repsys::EntityId client = clients.client_for(tx_index++);

        // (a) Would a victim accept the attacker right now?
        const bool victim_accepts =
            trust_acc->value() >= config.trust_threshold &&
            assessor.screen(history.view()).passed;

        bool cheat = false;
        if (victim_accepts) {
            // (b) Does the history stay consistent with the honest-player
            // model once the bad transaction is appended?
            history.append(kServer, client, repsys::Rating::kNegative);
            cheat = assessor.screen(history.view()).passed;
            if (!cheat) history.pop_back();
        }

        if (cheat) {
            trust_acc->update(false);
            ++result.attacks_completed;
        } else {
            history.append(kServer, client, repsys::Rating::kPositive);
            trust_acc->update(true);
            ++result.good_transactions;
        }
    }
    result.reached_target = result.attacks_completed >= config.target_attacks;
    result.final_trust = trust_acc->value();
    return result;
}

AttackCostSeries run_attack_cost_trials(
    AttackCostConfig config, std::size_t trials,
    const std::shared_ptr<stats::Calibrator>& calibrator) {
    AttackCostSeries series;
    const std::uint64_t base_seed = config.seed;
    for (std::size_t t = 0; t < trials; ++t) {
        config.seed = base_seed + t;
        const AttackCostResult run = run_attack_cost(config, calibrator);
        series.cost.add(static_cast<double>(run.good_transactions));
        series.cost_samples.push_back(static_cast<double>(run.good_transactions));
        if (!run.reached_target) ++series.unreached_runs;
    }
    return series;
}

}  // namespace hpr::sim
