#include "sim/p2p.h"

#include <stdexcept>
#include <vector>

namespace hpr::sim {

DecentralizedReputationSystem::DecentralizedReputationSystem(
    P2PConfig config, std::shared_ptr<stats::Calibrator> calibrator)
    : config_(config), overlay_(config.overlay), rng_(config.seed) {
    if (!(config_.retrieval_fraction > 0.0 && config_.retrieval_fraction <= 1.0)) {
        throw std::invalid_argument(
            "DecentralizedReputationSystem: retrieval_fraction must be in (0, 1]");
    }
    assessor_ = std::make_unique<const core::TwoPhaseAssessor>(
        config_.assessment,
        std::shared_ptr<const repsys::TrustFunction>{
            repsys::make_trust_function(config_.trust_spec)},
        calibrator ? std::move(calibrator)
                   : core::make_calibrator(config_.assessment.test.base));
}

std::size_t DecentralizedReputationSystem::record(const repsys::Feedback& feedback) {
    return overlay_.publish(feedback);
}

core::Assessment DecentralizedReputationSystem::assess(repsys::EntityId server) {
    const std::vector<repsys::Feedback> log = overlay_.lookup(server);
    if (config_.retrieval_fraction >= 1.0) {
        return assessor_->assess(std::span<const repsys::Feedback>{log});
    }
    std::vector<repsys::Feedback> sampled;
    sampled.reserve(log.size());
    for (const repsys::Feedback& f : log) {
        if (rng_.bernoulli(config_.retrieval_fraction)) sampled.push_back(f);
    }
    return assessor_->assess(std::span<const repsys::Feedback>{sampled});
}

ConsensusResult DecentralizedReputationSystem::gossip_trust(repsys::EntityId server,
                                                            std::size_t peers) {
    if (peers == 0) {
        throw std::invalid_argument("gossip_trust: need at least one peer");
    }
    const std::vector<repsys::Feedback> log = overlay_.lookup(server);
    if (log.empty()) {
        throw std::invalid_argument("gossip_trust: no feedback for server");
    }
    // Each peer holds a random local view; sums = its good count, weights
    // = its view size.  Weighted push-sum then agrees on the global ratio.
    std::vector<double> sums(peers, 0.0);
    std::vector<double> weights(peers, 0.0);
    std::size_t total_good = 0;
    for (const repsys::Feedback& f : log) {
        const auto peer = static_cast<std::size_t>(rng_.uniform_int(peers));
        weights[peer] += 1.0;
        if (f.good()) {
            sums[peer] += 1.0;
            ++total_good;
        }
    }
    GossipNetwork network{std::move(sums), std::move(weights), GossipConfig{},
                          config_.seed ^ (static_cast<std::uint64_t>(server) << 17)};
    ConsensusResult result;
    result.rounds = network.run();
    result.converged = network.converged();
    result.value = network.estimate(0);
    result.exact =
        static_cast<double>(total_good) / static_cast<double>(log.size());
    return result;
}

}  // namespace hpr::sim
