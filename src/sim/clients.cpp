#include "sim/clients.h"

#include <algorithm>
#include <stdexcept>

namespace hpr::sim {

ClientPool::ClientPool(std::size_t count, repsys::EntityId first_id,
                       ClientArrivalParams params)
    : first_id_(first_id), params_(params), states_(count, State::kNew) {
    if (count == 0) {
        throw std::invalid_argument("ClientPool: need at least one client");
    }
}

double ClientPool::arrival_probability(State s, double reputation) const noexcept {
    const double p = std::clamp(reputation, 0.0, 1.0);
    switch (s) {
        case State::kNew: return params_.a_new * p;
        case State::kLastGood: return params_.a_good * p;
        case State::kLastBad: return params_.a_bad * p;
    }
    return 0.0;
}

std::vector<repsys::EntityId> ClientPool::arrivals(double reputation,
                                                   stats::Rng& rng) const {
    std::vector<repsys::EntityId> requesting;
    for (std::size_t i = 0; i < states_.size(); ++i) {
        if (rng.bernoulli(arrival_probability(states_[i], reputation))) {
            requesting.push_back(first_id_ + static_cast<repsys::EntityId>(i));
        }
    }
    return requesting;
}

void ClientPool::record(repsys::EntityId client, bool good) {
    if (!contains(client)) {
        throw std::out_of_range("ClientPool::record: client not in pool");
    }
    states_[client - first_id_] = good ? State::kLastGood : State::kLastBad;
}

ClientPool::State ClientPool::state(repsys::EntityId client) const {
    if (!contains(client)) {
        throw std::out_of_range("ClientPool::state: client not in pool");
    }
    return states_[client - first_id_];
}

std::size_t ClientPool::satisfied_clients() const noexcept {
    return static_cast<std::size_t>(
        std::count(states_.begin(), states_.end(), State::kLastGood));
}

}  // namespace hpr::sim
