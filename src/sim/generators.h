#ifndef HPR_SIM_GENERATORS_H
#define HPR_SIM_GENERATORS_H

/// \file generators.h
/// Synthetic transaction-history generators for the behavior patterns the
/// paper discusses: honest players (§3.1), hibernating and periodic
/// attackers (§3), and cheat-and-run attackers (§3.1).  Used by the test
/// suite, the benchmark harness and the examples.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "repsys/history.h"
#include "repsys/types.h"
#include "stats/rng.h"

namespace hpr::sim {

/// Client-id assignment for generated feedback: ids cycle through
/// [first_client, first_client + pool). One client per transaction.
struct ClientIdScheme {
    repsys::EntityId first_client = 100;
    std::uint32_t pool = 50;

    [[nodiscard]] repsys::EntityId client_for(std::size_t index) const noexcept {
        return first_client + static_cast<repsys::EntityId>(index % pool);
    }
};

/// History of an honest player with trust value p: outcomes are iid
/// Bernoulli(p) (paper §3.1).
[[nodiscard]] repsys::TransactionHistory honest_history(std::size_t n, double p,
                                                        stats::Rng& rng,
                                                        repsys::EntityId server = 1,
                                                        ClientIdScheme clients = {});

/// Periodic attack pattern (paper §5.3): within every block of
/// `attack_window` transactions, `attack_fraction * attack_window` bad
/// transactions are placed at uniformly random positions; the rest are
/// good.  With attack_window = 10, fraction 0.1 this is "one attack every
/// ten transactions" — rigid and detectable; larger windows randomize the
/// pattern toward honest-looking behavior.
[[nodiscard]] repsys::TransactionHistory periodic_attack_history(
    std::size_t n, std::size_t attack_window, double attack_fraction,
    stats::Rng& rng, repsys::EntityId server = 1, ClientIdScheme clients = {});

/// Hibernating attack (paper §3): `prep` honest-like transactions with
/// trust value prep_trust, followed by `attack` consecutive bad ones.
[[nodiscard]] repsys::TransactionHistory hibernating_history(
    std::size_t prep, std::size_t attack, double prep_trust, stats::Rng& rng,
    repsys::EntityId server = 1, ClientIdScheme clients = {});

/// Cheat-and-run (paper §3.1): a short honest-looking affiliation of
/// `honest_n` transactions ending in a single bad transaction.
[[nodiscard]] repsys::TransactionHistory cheat_and_run_history(
    std::size_t honest_n, double prep_trust, stats::Rng& rng,
    repsys::EntityId server = 1, ClientIdScheme clients = {});

/// Raw outcome sequence (1 = good) of an honest player; cheaper than a
/// full feedback history for statistics-only code paths.
[[nodiscard]] std::vector<std::uint8_t> honest_outcomes(std::size_t n, double p,
                                                        stats::Rng& rng);

/// Raw outcome sequence of a periodic attack (see periodic_attack_history).
[[nodiscard]] std::vector<std::uint8_t> periodic_outcomes(std::size_t n,
                                                          std::size_t attack_window,
                                                          double attack_fraction,
                                                          stats::Rng& rng);

/// Honest player whose uncontrollable quality drifts linearly from
/// p_start to p_end across the sequence (the "dynamic cases" of §3.1 —
/// the workload AdaptiveBehaviorTest exists for).
[[nodiscard]] std::vector<std::uint8_t> drifting_outcomes(std::size_t n,
                                                          double p_start,
                                                          double p_end,
                                                          stats::Rng& rng);

}  // namespace hpr::sim

#endif  // HPR_SIM_GENERATORS_H
