#include "sim/generators.h"

#include <algorithm>
#include <stdexcept>

namespace hpr::sim {
namespace {

repsys::TransactionHistory from_outcomes(const std::vector<std::uint8_t>& outcomes,
                                         repsys::EntityId server,
                                         ClientIdScheme clients) {
    std::vector<repsys::Feedback> feedbacks;
    feedbacks.reserve(outcomes.size());
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        feedbacks.push_back(repsys::Feedback{
            static_cast<repsys::Timestamp>(i + 1), server, clients.client_for(i),
            outcomes[i] != 0 ? repsys::Rating::kPositive : repsys::Rating::kNegative});
    }
    return repsys::TransactionHistory{std::move(feedbacks)};
}

}  // namespace

std::vector<std::uint8_t> honest_outcomes(std::size_t n, double p, stats::Rng& rng) {
    if (!(p >= 0.0 && p <= 1.0)) {
        throw std::invalid_argument("honest_outcomes: p must be in [0, 1]");
    }
    std::vector<std::uint8_t> outcomes(n);
    for (auto& o : outcomes) o = rng.bernoulli(p) ? 1 : 0;
    return outcomes;
}

std::vector<std::uint8_t> periodic_outcomes(std::size_t n, std::size_t attack_window,
                                            double attack_fraction, stats::Rng& rng) {
    if (attack_window == 0) {
        throw std::invalid_argument("periodic_outcomes: attack window must be > 0");
    }
    if (!(attack_fraction >= 0.0 && attack_fraction <= 1.0)) {
        throw std::invalid_argument("periodic_outcomes: fraction must be in [0, 1]");
    }
    std::vector<std::uint8_t> outcomes(n, 1);
    const auto attacks_per_block = static_cast<std::size_t>(
        attack_fraction * static_cast<double>(attack_window));
    std::vector<std::size_t> positions(attack_window);
    for (std::size_t block = 0; block < n; block += attack_window) {
        const std::size_t block_len = std::min(attack_window, n - block);
        if (block_len < attack_window) break;  // leave a trailing partial block good
        positions.resize(attack_window);
        for (std::size_t i = 0; i < attack_window; ++i) positions[i] = i;
        rng.shuffle(positions);
        for (std::size_t a = 0; a < attacks_per_block; ++a) {
            outcomes[block + positions[a]] = 0;
        }
    }
    return outcomes;
}

std::vector<std::uint8_t> drifting_outcomes(std::size_t n, double p_start,
                                            double p_end, stats::Rng& rng) {
    if (!(p_start >= 0.0 && p_start <= 1.0) || !(p_end >= 0.0 && p_end <= 1.0)) {
        throw std::invalid_argument("drifting_outcomes: probabilities in [0, 1]");
    }
    std::vector<std::uint8_t> outcomes(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double t =
            n <= 1 ? 0.0 : static_cast<double>(i) / static_cast<double>(n - 1);
        outcomes[i] = rng.bernoulli(p_start + (p_end - p_start) * t) ? 1 : 0;
    }
    return outcomes;
}

repsys::TransactionHistory honest_history(std::size_t n, double p, stats::Rng& rng,
                                          repsys::EntityId server,
                                          ClientIdScheme clients) {
    return from_outcomes(honest_outcomes(n, p, rng), server, clients);
}

repsys::TransactionHistory periodic_attack_history(std::size_t n,
                                                   std::size_t attack_window,
                                                   double attack_fraction,
                                                   stats::Rng& rng,
                                                   repsys::EntityId server,
                                                   ClientIdScheme clients) {
    return from_outcomes(periodic_outcomes(n, attack_window, attack_fraction, rng),
                         server, clients);
}

repsys::TransactionHistory hibernating_history(std::size_t prep, std::size_t attack,
                                               double prep_trust, stats::Rng& rng,
                                               repsys::EntityId server,
                                               ClientIdScheme clients) {
    std::vector<std::uint8_t> outcomes = honest_outcomes(prep, prep_trust, rng);
    outcomes.insert(outcomes.end(), attack, std::uint8_t{0});
    return from_outcomes(outcomes, server, clients);
}

repsys::TransactionHistory cheat_and_run_history(std::size_t honest_n,
                                                 double prep_trust, stats::Rng& rng,
                                                 repsys::EntityId server,
                                                 ClientIdScheme clients) {
    std::vector<std::uint8_t> outcomes = honest_outcomes(honest_n, prep_trust, rng);
    outcomes.push_back(0);
    return from_outcomes(outcomes, server, clients);
}

}  // namespace hpr::sim
