#ifndef HPR_SIM_P2P_H
#define HPR_SIM_P2P_H

/// \file p2p.h
/// The fully decentralized deployment of the two-phase framework — the
/// composition the paper's §2 sketches for P2P systems: feedback lives in
/// a structured overlay ([11]-style, sim/overlay.h), assessments are made
/// from overlay-retrieved (possibly partial) logs, and peers agree on
/// global trust values by push-sum gossip ([17], sim/gossip.h) without
/// any central server.

#include <cstdint>
#include <memory>
#include <string>

#include "core/two_phase.h"
#include "repsys/types.h"
#include "sim/gossip.h"
#include "sim/overlay.h"
#include "stats/calibrate.h"

namespace hpr::sim {

/// Configuration of the decentralized reputation system.
struct P2PConfig {
    OverlayConfig overlay{};
    core::TwoPhaseConfig assessment{};
    std::string trust_spec = "average";

    /// Fraction of a server's log a client actually retrieves before
    /// assessing (bandwidth-limited retrieval; §2 "systems where only
    /// portions of feedbacks can be retrieved").
    double retrieval_fraction = 1.0;

    std::uint64_t seed = 1;
};

/// Outcome of a gossip consensus round on one server's trust.
struct ConsensusResult {
    double value = 0.0;     ///< agreed global good-ratio
    double exact = 0.0;     ///< the centrally computed ratio (ground truth)
    std::size_t rounds = 0;
    bool converged = false;
};

/// A reputation system with no central component.
class DecentralizedReputationSystem {
public:
    /// \throws std::invalid_argument on bad retrieval_fraction or trust spec.
    explicit DecentralizedReputationSystem(
        P2PConfig config = {}, std::shared_ptr<stats::Calibrator> calibrator = nullptr);

    /// Publish one feedback into the overlay (replicated).
    /// \returns replicas written.
    std::size_t record(const repsys::Feedback& feedback);

    /// Assess a server from its overlay-retrieved log: lookup, subsample
    /// to the configured retrieval fraction, run the two-phase assessor.
    [[nodiscard]] core::Assessment assess(repsys::EntityId server);

    /// Routing hops of the most recent record()/assess().
    [[nodiscard]] std::size_t last_hops() const noexcept { return overlay_.last_hops(); }

    /// Decentralized agreement on a server's good-ratio: the retrieved
    /// log is partitioned across `peers` local views and weighted
    /// push-sum runs to consensus.
    /// \throws std::invalid_argument if peers == 0 or the log is empty.
    [[nodiscard]] ConsensusResult gossip_trust(repsys::EntityId server,
                                               std::size_t peers);

    /// Crash-stop an overlay node.
    void fail_node(std::size_t index) { overlay_.fail_node(index); }

    [[nodiscard]] const FeedbackOverlay& overlay() const noexcept { return overlay_; }
    [[nodiscard]] const core::TwoPhaseAssessor& assessor() const noexcept {
        return *assessor_;
    }

private:
    P2PConfig config_;
    FeedbackOverlay overlay_;
    std::unique_ptr<const core::TwoPhaseAssessor> assessor_;
    stats::Rng rng_;
};

}  // namespace hpr::sim

#endif  // HPR_SIM_P2P_H
