#include "sim/market.h"

#include <sstream>
#include <stdexcept>

namespace hpr::sim {

HonestStrategy::HonestStrategy(double p) : p_(p) {
    if (!(p >= 0.0 && p <= 1.0)) {
        throw std::invalid_argument("HonestStrategy: p must be in [0, 1]");
    }
}

bool HonestStrategy::serve_well(std::size_t, const repsys::TransactionHistory&,
                                stats::Rng& rng) {
    return rng.bernoulli(p_);
}

std::string HonestStrategy::name() const {
    std::ostringstream out;
    out << "honest(" << p_ << ")";
    return out.str();
}

PeriodicStrategy::PeriodicStrategy(std::size_t window, std::size_t attacks_per_window)
    : window_(window), attacks_(attacks_per_window) {
    if (window_ == 0 || attacks_ > window_) {
        throw std::invalid_argument("PeriodicStrategy: need 0 < attacks <= window");
    }
}

bool PeriodicStrategy::serve_well(std::size_t tx_index,
                                  const repsys::TransactionHistory&, stats::Rng&) {
    return (tx_index % window_) >= attacks_;
}

std::string PeriodicStrategy::name() const {
    std::ostringstream out;
    out << "periodic(" << attacks_ << "/" << window_ << ")";
    return out.str();
}

HibernatingStrategy::HibernatingStrategy(std::size_t prep, double p)
    : prep_(prep), p_(p) {
    if (!(p >= 0.0 && p <= 1.0)) {
        throw std::invalid_argument("HibernatingStrategy: p must be in [0, 1]");
    }
}

bool HibernatingStrategy::serve_well(std::size_t tx_index,
                                     const repsys::TransactionHistory&,
                                     stats::Rng& rng) {
    return tx_index < prep_ && rng.bernoulli(p_);
}

std::string HibernatingStrategy::name() const {
    std::ostringstream out;
    out << "hibernating(prep=" << prep_ << ", p=" << p_ << ")";
    return out.str();
}

WhitewashStrategy::WhitewashStrategy(std::size_t prep, std::size_t attacks, double p)
    : prep_(prep), attacks_(attacks), p_(p) {
    if (attacks_ == 0) {
        throw std::invalid_argument("WhitewashStrategy: need at least one attack");
    }
    if (!(p >= 0.0 && p <= 1.0)) {
        throw std::invalid_argument("WhitewashStrategy: p must be in [0, 1]");
    }
}

bool WhitewashStrategy::serve_well(std::size_t tx_index,
                                   const repsys::TransactionHistory&,
                                   stats::Rng& rng) {
    return tx_index < prep_ && rng.bernoulli(p_);
}

bool WhitewashStrategy::reset_identity(const repsys::TransactionHistory& own_history) {
    // The identity is spent once its attack budget has been cashed in.
    if (own_history.size() >= prep_ + attacks_) {
        ++resets_;
        return true;
    }
    return false;
}

std::string WhitewashStrategy::name() const {
    std::ostringstream out;
    out << "whitewash(prep=" << prep_ << ", attacks=" << attacks_ << ")";
    return out.str();
}

StrategicStrategy::StrategicStrategy(
    std::shared_ptr<const core::TwoPhaseAssessor> assessor, double threshold)
    : assessor_(std::move(assessor)), threshold_(threshold) {
    if (!assessor_) {
        throw std::invalid_argument("StrategicStrategy: assessor must not be null");
    }
}

bool StrategicStrategy::serve_well(std::size_t, const repsys::TransactionHistory& own,
                                   stats::Rng&) {
    // Would a victim accept right now?
    const core::Assessment current = assessor_->assess(own);
    if (!current.acceptable(threshold_)) return true;
    // Would the history including the bad transaction stay consistent?
    repsys::TransactionHistory hypothetical = own;
    hypothetical.append(own.empty() ? 1 : own[0].server, /*client=*/0,
                        repsys::Rating::kNegative);
    if (!assessor_->screen(hypothetical.view()).passed) return true;
    ++attacks_;
    return false;
}

std::string StrategicStrategy::name() const {
    std::ostringstream out;
    out << "strategic(threshold=" << threshold_ << ")";
    return out.str();
}

Marketplace::Marketplace(MarketConfig config,
                         std::shared_ptr<const core::TwoPhaseAssessor> assessor)
    : config_(config), assessor_(std::move(assessor)), rng_(config.seed) {
    if (!assessor_) {
        throw std::invalid_argument("Marketplace: assessor must not be null");
    }
}

repsys::EntityId Marketplace::add_server(std::unique_ptr<ServerStrategy> strategy) {
    if (!strategy) {
        throw std::invalid_argument("Marketplace::add_server: null strategy");
    }
    const auto id = static_cast<repsys::EntityId>(servers_.size() + 1);
    servers_.push_back(Server{id, std::move(strategy), {}, 0, 0, 0, 0});
    return id;
}

void Marketplace::transact(Server& server, repsys::EntityId client,
                           bool count_metrics) {
    const bool good = server.strategy->serve_well(server.tx_count, server.history, rng_);
    server.history.append(server.id, client,
                          good ? repsys::Rating::kPositive : repsys::Rating::kNegative);
    ++server.tx_count;
    ++server.lifetime_tx;
    if (!good) {
        ++server.bad_served;
        if (count_metrics) ++total_bad_suffered_;
    }
    if (server.strategy->reset_identity(server.history)) {
        // Whitewash: the record vanishes with the old identity.
        server.history = repsys::TransactionHistory{};
        server.tx_count = 0;
        ++server.identity_resets;
    }
}

void Marketplace::run() {
    if (servers_.empty()) {
        throw std::logic_error("Marketplace::run: no servers registered");
    }
    // Bootstrap: give every server a screenable history.  Bad transactions
    // suffered here do not count toward the headline metric — the paper's
    // threat model assumes attackers already hold a history (§5.1).
    for (std::size_t i = 0; i < config_.bootstrap_per_server; ++i) {
        for (Server& server : servers_) {
            transact(server, next_client_++, /*count_metrics=*/false);
        }
    }

    for (std::size_t step = 0; step < config_.steps; ++step) {
        const repsys::EntityId client = next_client_++;
        // Some clients do not consult the reputation system at all.
        if (config_.exploration > 0.0 && rng_.bernoulli(config_.exploration)) {
            Server& chosen = servers_[rng_.uniform_int(servers_.size())];
            transact(chosen, client, /*count_metrics=*/true);
            continue;
        }
        // The client assesses every server and picks uniformly among the
        // acceptable ones (all acceptable servers look equally good at the
        // threshold; uniform choice avoids a winner-takes-all artifact).
        std::vector<Server*> acceptable;
        for (Server& server : servers_) {
            const core::Assessment assessment = assessor_->assess(server.history);
            if (assessment.verdict == core::Verdict::kSuspicious) {
                ++server.rejected_screen;
                continue;
            }
            if (assessment.verdict == core::Verdict::kInsufficientHistory &&
                config_.newcomer_policy == NewcomerPolicy::kReject) {
                ++server.rejected_newcomer;
                continue;
            }
            if (!assessment.trust || *assessment.trust < config_.trust_threshold) {
                ++server.rejected_trust;
                continue;
            }
            acceptable.push_back(&server);
        }
        if (acceptable.empty()) {
            ++unserved_requests_;
            continue;
        }
        Server& chosen = *acceptable[rng_.uniform_int(acceptable.size())];
        transact(chosen, client, /*count_metrics=*/true);
    }
}

std::map<repsys::EntityId, ServerReport> Marketplace::report() const {
    std::map<repsys::EntityId, ServerReport> reports;
    for (const Server& server : servers_) {
        ServerReport r;
        r.strategy = server.strategy->name();
        r.transactions = server.lifetime_tx;
        r.bad_served = server.bad_served;
        r.rejected_screen = server.rejected_screen;
        r.rejected_trust = server.rejected_trust;
        r.rejected_newcomer = server.rejected_newcomer;
        r.identity_resets = server.identity_resets;
        const core::Assessment assessment = assessor_->assess(server.history);
        r.suspicious = assessment.verdict == core::Verdict::kSuspicious;
        r.final_trust = assessment.trust.value_or(0.0);
        reports.emplace(server.id, std::move(r));
    }
    return reports;
}

const repsys::TransactionHistory& Marketplace::history_of(repsys::EntityId id) const {
    for (const Server& server : servers_) {
        if (server.id == id) return server.history;
    }
    throw std::out_of_range("Marketplace::history_of: unknown server id");
}

}  // namespace hpr::sim
