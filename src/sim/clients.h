#ifndef HPR_SIM_CLIENTS_H
#define HPR_SIM_CLIENTS_H

/// \file clients.h
/// Probabilistic client-arrival model of paper §5.2.
///
/// At each simulation step, a client requests service from server s with
/// probability a_i * p where p is the server's current reputation and a_i
/// depends on the client's relationship to s:
///   a1 — the client has never transacted with s
///   a2 — the client's most recent transaction with s was good
///   a3 — the client's most recent transaction with s was bad
/// The paper's experiments use a1 = 0.5, a2 = 0.9, a3 = 0.2.

#include <cstddef>
#include <vector>

#include "repsys/types.h"
#include "stats/rng.h"

namespace hpr::sim {

/// Arrival-probability multipliers.
struct ClientArrivalParams {
    double a_new = 0.5;   ///< a1: never transacted
    double a_good = 0.9;  ///< a2: last transaction was good
    double a_bad = 0.2;   ///< a3: last transaction was bad
};

/// A population of potential clients with per-client interaction memory.
class ClientPool {
public:
    /// Clients get ids first_id .. first_id + count - 1.
    /// \throws std::invalid_argument if count is 0.
    ClientPool(std::size_t count, repsys::EntityId first_id,
               ClientArrivalParams params = {});

    [[nodiscard]] std::size_t size() const noexcept { return states_.size(); }
    [[nodiscard]] repsys::EntityId first_id() const noexcept { return first_id_; }
    [[nodiscard]] repsys::EntityId last_id() const noexcept {
        return first_id_ + static_cast<repsys::EntityId>(states_.size()) - 1;
    }
    [[nodiscard]] bool contains(repsys::EntityId client) const noexcept {
        return client >= first_id_ && client <= last_id();
    }

    /// Clients requesting service this round, given the server's current
    /// reputation (clamped to [0, 1]).
    [[nodiscard]] std::vector<repsys::EntityId> arrivals(double reputation,
                                                         stats::Rng& rng) const;

    /// Record the outcome of a transaction with `client`.
    /// \throws std::out_of_range for ids outside the pool.
    void record(repsys::EntityId client, bool good);

    /// Last-interaction state used by the arrival model.
    enum class State : std::uint8_t { kNew, kLastGood, kLastBad };

    [[nodiscard]] State state(repsys::EntityId client) const;

    /// Number of clients whose last transaction was good.
    [[nodiscard]] std::size_t satisfied_clients() const noexcept;

private:
    [[nodiscard]] double arrival_probability(State s, double reputation) const noexcept;

    repsys::EntityId first_id_;
    ClientArrivalParams params_;
    std::vector<State> states_;
};

}  // namespace hpr::sim

#endif  // HPR_SIM_CLIENTS_H
