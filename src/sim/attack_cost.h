#ifndef HPR_SIM_ATTACK_COST_H
#define HPR_SIM_ATTACK_COST_H

/// \file attack_cost.h
/// The attack-cost experiment of paper §5.1 (Figs. 3 and 4).
///
/// A strategic attacker first builds a preparation history of `prep_size`
/// transactions behaving like an honest player with trust value
/// `prep_trust` (0.95 in the paper).  It then tries to land
/// `target_attacks` bad transactions (20 in the paper) while staying
/// acceptable to victims whose trust threshold is `trust_threshold` (0.9).
///
/// The attacker knows the defense.  Before each transaction it checks:
///   (a) would a victim accept right now?  — the current history passes
///       the configured screening and its trust value is >= threshold;
///   (b) would the history *including* the planned bad transaction remain
///       consistent with the honest-player model?  — so future victims
///       keep accepting (the "considers the resulting transaction history
///       H'" rule of §5.1).
/// If both hold it cheats; otherwise it provides a good service.  The
/// experiment's metric is the number of good transactions the attacker is
/// forced to provide during the attack phase before landing all
/// `target_attacks` bad ones.

#include <cstdint>
#include <memory>
#include <string>

#include "core/two_phase.h"
#include "stats/calibrate.h"
#include "stats/moments.h"

namespace hpr::sim {

/// Parameters of one attack-cost run.
struct AttackCostConfig {
    std::size_t prep_size = 400;       ///< transactions in the preparation phase
    double prep_trust = 0.95;          ///< honest-like trust value during prep
    std::size_t target_attacks = 20;   ///< bad transactions the attacker wants
    double trust_threshold = 0.9;      ///< victims' acceptance threshold

    core::ScreeningMode screening = core::ScreeningMode::kNone;
    core::MultiTestConfig test{};      ///< behavior-testing parameters
    std::string trust_spec = "average";  ///< phase-2 trust function

    std::size_t max_attack_steps = 100000;  ///< safety cap on the attack phase
    std::uint64_t seed = 1;
};

/// Outcome of one attack-cost run.
struct AttackCostResult {
    std::size_t good_transactions = 0;  ///< goods the attacker had to provide
    std::size_t attacks_completed = 0;  ///< bad transactions landed
    bool reached_target = false;        ///< all target_attacks landed within the cap
    std::size_t attack_steps = 0;       ///< total attack-phase transactions
    double final_trust = 0.0;           ///< trust value when the run ended
};

/// Run one seeded attack-cost simulation.
[[nodiscard]] AttackCostResult run_attack_cost(
    const AttackCostConfig& config,
    const std::shared_ptr<stats::Calibrator>& calibrator = nullptr);

/// Aggregate of repeated runs with consecutive seeds.
struct AttackCostSeries {
    stats::RunningMoments cost;        ///< good transactions per run
    std::vector<double> cost_samples;  ///< per-run costs (for medians)
    std::size_t unreached_runs = 0;    ///< runs that hit max_attack_steps

    /// Median cost — the figure statistic.  A small fraction of screened
    /// runs lock the attacker out entirely (cost ~ max_attack_steps, i.e.
    /// effectively infinite); the median reports the typical attack cost
    /// while `unreached_runs` reports the lockouts.
    [[nodiscard]] double median_cost() const;
};

/// Run `trials` simulations (seeds seed, seed+1, ...) and aggregate.
[[nodiscard]] AttackCostSeries run_attack_cost_trials(
    AttackCostConfig config, std::size_t trials,
    const std::shared_ptr<stats::Calibrator>& calibrator = nullptr);

}  // namespace hpr::sim

#endif  // HPR_SIM_ATTACK_COST_H
