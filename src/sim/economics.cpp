#include "sim/economics.h"

#include <cmath>
#include <limits>

namespace hpr::sim {

double campaign_profit(const AttackEconomics& economics, std::size_t attacks,
                       std::size_t goods, std::size_t fakes) {
    return static_cast<double>(attacks) * economics.attack_gain -
           static_cast<double>(goods) * economics.good_service_cost -
           static_cast<double>(fakes) * economics.fake_feedback_cost -
           economics.join_cost;
}

double cheat_and_run_profit(const AttackEconomics& economics,
                            std::size_t prep_goods) {
    return campaign_profit(economics, 1, prep_goods, 0);
}

double deterrent_join_cost(const AttackEconomics& economics,
                           std::size_t prep_goods) {
    // profit = gain - prep*good_cost - join <= 0  <=>  join >= gain - prep*cost.
    AttackEconomics zero_join = economics;
    zero_join.join_cost = 0.0;
    const double profit_without_join = cheat_and_run_profit(zero_join, prep_goods);
    return profit_without_join <= 0.0 ? 0.0 : profit_without_join;
}

std::size_t break_even_attacks(const AttackEconomics& economics, std::size_t goods,
                               std::size_t fakes) {
    if (!(economics.attack_gain > 0.0)) {
        return std::numeric_limits<std::size_t>::max();
    }
    const double expenses =
        static_cast<double>(goods) * economics.good_service_cost +
        static_cast<double>(fakes) * economics.fake_feedback_cost +
        economics.join_cost;
    if (expenses <= 0.0) return 0;
    return static_cast<std::size_t>(std::ceil(expenses / economics.attack_gain));
}

}  // namespace hpr::sim
