#ifndef HPR_SIM_GOSSIP_H
#define HPR_SIM_GOSSIP_H

/// \file gossip.h
/// Push-sum gossip aggregation for decentralized reputation.
///
/// The paper assumes feedback is globally available (§2) and cites
/// gossip-based reputation aggregation in unstructured P2P networks
/// (Zhou & Hwang — reference [17]) as the decentralized way to get
/// there.  This module provides that substrate: every node starts with
/// its local estimate of a server's trust (e.g. the good-ratio of the
/// feedback shard it stores), and push-sum rounds (Kempe, Dobra &
/// Gehrke) converge every node's estimate to the global average with no
/// coordinator — each node keeps a (sum, weight) pair, halves it every
/// round, and ships one half to a uniformly random peer.  Mass
/// conservation makes the ratio sum/weight converge exponentially fast.
///
/// Crash-stop failures are modeled: a failed node freezes (neither sends
/// nor receives); the mass it holds is lost to the average, bounding the
/// residual error the tests and bench measure.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "stats/rng.h"

namespace hpr::sim {

/// Gossip protocol parameters.
struct GossipConfig {
    double tolerance = 1e-9;      ///< convergence: max spread of estimates
    std::size_t max_rounds = 10000;  ///< safety cap
};

/// A push-sum gossip network over `values.size()` nodes.
class GossipNetwork {
public:
    /// \param values  each node's initial local value
    /// \throws std::invalid_argument if values is empty or config is bad.
    GossipNetwork(std::vector<double> values, GossipConfig config = {},
                  std::uint64_t seed = 99);

    /// Weighted variant: node i contributes (sums[i], weights[i]) and the
    /// network converges to Σ sums / Σ weights at every node.  This is
    /// how peers holding differently-sized feedback shards agree on a
    /// global good-ratio: sums = local good counts, weights = local
    /// transaction counts.
    /// \throws std::invalid_argument on size mismatch, empty input,
    /// negative weights or all-zero total weight.
    GossipNetwork(std::vector<double> sums, std::vector<double> weights,
                  GossipConfig config = {}, std::uint64_t seed = 99);

    [[nodiscard]] std::size_t size() const noexcept { return sum_.size(); }

    /// Average of the initial values over *live* nodes' initial shares —
    /// the fixed point with no failures.
    [[nodiscard]] double true_average() const noexcept { return true_average_; }

    /// A node's current estimate sum/weight.
    /// \throws std::out_of_range for bad node indices.
    [[nodiscard]] double estimate(std::size_t node) const;

    /// Largest |estimate - true average| over live nodes.
    [[nodiscard]] double max_error() const;

    /// Largest estimate spread (max - min) over live nodes.
    [[nodiscard]] double spread() const;

    /// Execute one gossip round (every live node ships half its mass to a
    /// uniformly random live peer).
    void step();

    /// Run rounds until the live-node spread drops below the tolerance or
    /// max_rounds is hit; returns rounds executed.
    std::size_t run();

    /// Rounds executed so far.
    [[nodiscard]] std::size_t rounds() const noexcept { return rounds_; }

    /// Whether the last run() met the tolerance.
    [[nodiscard]] bool converged() const noexcept { return converged_; }

    /// Crash-stop a node: it freezes with whatever mass it holds.
    /// \throws std::out_of_range for bad node indices.
    void fail_node(std::size_t node);

    [[nodiscard]] std::size_t live_nodes() const noexcept { return live_count_; }

private:
    GossipConfig config_;
    stats::Rng rng_;
    std::vector<double> sum_;
    std::vector<double> weight_;
    std::vector<bool> alive_;
    std::size_t live_count_;
    double true_average_ = 0.0;
    std::size_t rounds_ = 0;
    bool converged_ = false;
};

}  // namespace hpr::sim

#endif  // HPR_SIM_GOSSIP_H
