#include "sim/overlay.h"

#include <algorithm>
#include <stdexcept>

#include "stats/rng.h"

namespace hpr::sim {
namespace {

/// Clockwise ring distance from a to b in the full 64-bit key space
/// (unsigned wrap-around does exactly the right thing).
constexpr std::uint64_t ring_distance(std::uint64_t a, std::uint64_t b) noexcept {
    return b - a;
}

}  // namespace

FeedbackOverlay::FeedbackOverlay(OverlayConfig config)
    : config_(config), live_count_(config.nodes) {
    if (config_.nodes == 0) {
        throw std::invalid_argument("FeedbackOverlay: need at least one node");
    }
    if (config_.replication == 0 || config_.replication > config_.nodes) {
        throw std::invalid_argument(
            "FeedbackOverlay: need 1 <= replication <= nodes");
    }
    // Random ring placement; re-draw collisions so ids are unique.
    stats::Rng rng{config_.seed};
    std::vector<std::uint64_t> ids;
    ids.reserve(config_.nodes);
    while (ids.size() < config_.nodes) {
        const std::uint64_t candidate = rng();
        if (std::find(ids.begin(), ids.end(), candidate) == ids.end()) {
            ids.push_back(candidate);
        }
    }
    std::sort(ids.begin(), ids.end());
    ring_.resize(ids.size());
    for (std::size_t i = 0; i < ids.size(); ++i) ring_[i].id = ids[i];

    // Chord-style fingers: for each node, the successor of id + 2^j.
    fingers_.resize(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i) {
        std::vector<std::size_t> unique;
        for (int j = 0; j < 64; ++j) {
            const std::uint64_t point = ring_[i].id + (std::uint64_t{1} << j);
            const std::size_t target = successor_index(point);
            if (target != i &&
                std::find(unique.begin(), unique.end(), target) == unique.end()) {
                unique.push_back(target);
            }
        }
        fingers_[i] = std::move(unique);
    }
}

std::size_t FeedbackOverlay::successor_index(std::uint64_t point) const {
    // ring_ is sorted by id; the successor wraps past the largest id.
    std::size_t lo = 0;
    std::size_t hi = ring_.size();
    while (lo < hi) {
        const std::size_t mid = (lo + hi) / 2;
        if (ring_[mid].id < point) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    return lo == ring_.size() ? 0 : lo;
}

std::size_t FeedbackOverlay::route(std::size_t from, std::uint64_t point) const {
    const std::size_t target = successor_index(point);
    std::size_t current = from;
    std::size_t hops = 0;
    while (current != target) {
        const std::uint64_t remaining = ring_distance(ring_[current].id,
                                                      ring_[target].id);
        // Greedy: the finger that covers the most ring distance without
        // overshooting the target; fall back to the immediate successor.
        std::size_t next = (current + 1) % ring_.size();
        std::uint64_t best = ring_distance(ring_[current].id, ring_[next].id);
        if (best > remaining) best = 0;  // successor overshoots; fingers must decide
        for (const std::size_t f : fingers_[current]) {
            const std::uint64_t advance = ring_distance(ring_[current].id,
                                                        ring_[f].id);
            if (advance <= remaining && advance > best) {
                best = advance;
                next = f;
            }
        }
        if (next == current) break;  // defensive: cannot make progress
        current = next;
        ++hops;
    }
    last_hops_ = hops;
    return target;
}

std::vector<std::size_t> FeedbackOverlay::replica_set(std::uint64_t point) const {
    std::vector<std::size_t> replicas;
    std::size_t index = successor_index(point);
    for (std::size_t scanned = 0;
         scanned < ring_.size() && replicas.size() < config_.replication;
         ++scanned, index = (index + 1) % ring_.size()) {
        if (ring_[index].alive) replicas.push_back(index);
    }
    return replicas;
}

std::uint64_t FeedbackOverlay::anchor_of(repsys::EntityId server) const {
    std::uint64_t state = 0x9e3779b97f4a7c15ULL ^ server;
    return stats::splitmix64(state);
}

std::size_t FeedbackOverlay::publish(const repsys::Feedback& feedback) {
    const std::uint64_t point = anchor_of(feedback.server);
    (void)route(0, point);
    const auto replicas = replica_set(point);
    for (const std::size_t index : replicas) {
        // Per-server shards stay time-ordered because publishes arrive in
        // time order; enforce the invariant defensively.
        auto& shard = ring_[index].shards[feedback.server];
        if (!shard.empty() && shard.back().time > feedback.time) {
            throw std::invalid_argument(
                "FeedbackOverlay::publish: feedbacks must arrive time-ordered");
        }
        shard.push_back(feedback);
    }
    return replicas.size();
}

std::vector<repsys::Feedback> FeedbackOverlay::lookup(repsys::EntityId server) const {
    const std::uint64_t point = anchor_of(server);
    (void)route(0, point);
    for (const std::size_t index : replica_set(point)) {
        const auto it = ring_[index].shards.find(server);
        if (it != ring_[index].shards.end()) return it->second;
    }
    return {};
}

void FeedbackOverlay::fail_node(std::size_t index) {
    if (index >= ring_.size()) {
        throw std::out_of_range("FeedbackOverlay::fail_node: bad index");
    }
    if (ring_[index].alive) {
        ring_[index].alive = false;
        ring_[index].shards.clear();  // crash-stop: its replicas are gone
        --live_count_;
    }
}

std::vector<std::size_t> FeedbackOverlay::load() const {
    std::vector<std::size_t> result(ring_.size(), 0);
    for (std::size_t i = 0; i < ring_.size(); ++i) {
        for (const auto& [server, shard] : ring_[i].shards) {
            result[i] += shard.size();
        }
    }
    return result;
}

}  // namespace hpr::sim
