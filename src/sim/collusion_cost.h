#ifndef HPR_SIM_COLLUSION_COST_H
#define HPR_SIM_COLLUSION_COST_H

/// \file collusion_cost.h
/// The collusion attack-cost experiment of paper §5.2 (Figs. 5 and 6).
///
/// Among `n_clients` potential clients, `n_colluders` collude with the
/// attacker.  During the preparation phase the attacker transacts only
/// with its colluders, who file feedback that mimics an honest player
/// with trust value `prep_trust`.  During the attack phase the attacker
/// chooses, each step, among three actions:
///   1. cheat an arriving non-colluder client,
///   2. ask a colluder for a fake positive feedback (almost free), or
///   3. provide a genuine good service to an arriving client.
/// It consults the defense (trust function + collusion-resilient behavior
/// testing) before acting, exactly like the strategic attacker of §5.1.
/// The cost metric is the number of *genuine* good services provided to
/// non-colluders before `target_attacks` bad transactions land.

#include <cstdint>
#include <memory>
#include <string>

#include "core/two_phase.h"
#include "sim/clients.h"
#include "stats/calibrate.h"
#include "stats/moments.h"

namespace hpr::sim {

/// Parameters of one collusion-cost run.
struct CollusionCostConfig {
    std::size_t prep_size = 400;
    double prep_trust = 0.95;
    std::size_t target_attacks = 20;
    double trust_threshold = 0.9;

    std::size_t n_clients = 100;   ///< total potential clients (incl. colluders)
    std::size_t n_colluders = 5;
    ClientArrivalParams arrivals{};  ///< a1 = 0.5, a2 = 0.9, a3 = 0.2 in the paper

    core::ScreeningMode screening = core::ScreeningMode::kNone;
    core::MultiTestConfig test{};
    std::string trust_spec = "average";

    std::size_t max_attack_steps = 100000;
    std::uint64_t seed = 1;
};

/// Outcome of one collusion-cost run.
struct CollusionCostResult {
    std::size_t genuine_goods = 0;    ///< good services to non-colluders (the cost)
    std::size_t fake_positives = 0;   ///< colluder-issued fake feedbacks used
    std::size_t attacks_completed = 0;
    bool reached_target = false;
    std::size_t attack_steps = 0;
    double final_trust = 0.0;
    std::size_t supporter_base = 0;   ///< distinct clients with positive last feedback
};

/// Run one seeded collusion-cost simulation.
[[nodiscard]] CollusionCostResult run_collusion_cost(
    const CollusionCostConfig& config,
    const std::shared_ptr<stats::Calibrator>& calibrator = nullptr);

/// Aggregate of repeated runs with consecutive seeds.
struct CollusionCostSeries {
    stats::RunningMoments cost;        ///< genuine good services per run
    stats::RunningMoments fakes;       ///< fake positives per run
    std::vector<double> cost_samples;  ///< per-run costs (for medians)
    std::size_t unreached_runs = 0;

    /// Median genuine-goods cost (robust to attacker-lockout runs; see
    /// AttackCostSeries::median_cost).
    [[nodiscard]] double median_cost() const;
};

[[nodiscard]] CollusionCostSeries run_collusion_cost_trials(
    CollusionCostConfig config, std::size_t trials,
    const std::shared_ptr<stats::Calibrator>& calibrator = nullptr);

}  // namespace hpr::sim

#endif  // HPR_SIM_COLLUSION_COST_H
