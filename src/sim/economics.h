#ifndef HPR_SIM_ECONOMICS_H
#define HPR_SIM_ECONOMICS_H

/// \file economics.h
/// Attack economics.
///
/// The paper's threat model (§3.1) excludes cheat-and-run attacks and
/// points at the standard countermeasure: "increase the cost of joining a
/// system in the first place (e.g., requiring certified IDs or membership
/// fees) so that short affiliations with a system are not cost-effective."
/// This module makes that argument quantitative: given per-action costs
/// and gains, it prices an attack campaign under a given defense and
/// computes the minimum join cost that makes cheat-and-run unprofitable —
/// the number a deployment actually needs to pick its membership fee.

#include <cstddef>

namespace hpr::sim {

/// Unit costs and gains of the attacker's actions (arbitrary currency).
struct AttackEconomics {
    double join_cost = 0.0;        ///< one-time cost of a new identity
    double good_service_cost = 1.0;  ///< cost of providing one genuine good service
    double fake_feedback_cost = 0.1; ///< cost of one colluder-issued fake positive
    double attack_gain = 10.0;     ///< profit of one successful bad transaction
};

/// Profit of a campaign: `attacks` successful bad transactions funded by
/// `goods` genuine good services and `fakes` fake feedbacks, on one
/// identity.  Negative means the defense priced the attack out.
[[nodiscard]] double campaign_profit(const AttackEconomics& economics,
                                     std::size_t attacks, std::size_t goods,
                                     std::size_t fakes = 0);

/// Profit of one cheat-and-run cycle: join, provide `prep_goods` genuine
/// goods to build a usable reputation, land one bad transaction, abandon
/// the identity.
[[nodiscard]] double cheat_and_run_profit(const AttackEconomics& economics,
                                          std::size_t prep_goods);

/// Smallest join cost that makes a cheat-and-run cycle with `prep_goods`
/// preparation unprofitable (<= 0 profit), holding other costs fixed.
[[nodiscard]] double deterrent_join_cost(const AttackEconomics& economics,
                                         std::size_t prep_goods);

/// Break-even number of attacks: how many successful bad transactions a
/// campaign must land before it turns profitable, given its good/fake
/// expenditure.  Returns SIZE_MAX when even infinitely many attacks never
/// break even (attack_gain <= 0).
[[nodiscard]] std::size_t break_even_attacks(const AttackEconomics& economics,
                                             std::size_t goods, std::size_t fakes = 0);

}  // namespace hpr::sim

#endif  // HPR_SIM_ECONOMICS_H
