#ifndef HPR_SIM_OVERLAY_H
#define HPR_SIM_OVERLAY_H

/// \file overlay.h
/// A structured-overlay feedback directory.
///
/// In P2P deployments the paper's feedback-availability assumption (§2)
/// is met by "special data organization schemes" such as P-Grid
/// (reference [11]).  This module implements the equivalent substrate as
/// a consistent-hashing ring with finger-table routing (Chord-style):
/// the feedback log of server s lives on the `replication` ring
/// successors of hash(s); lookups route greedily halving the remaining
/// ring distance, so hop counts are O(log nodes); crash-stop failures
/// lose one replica while lookups keep working off the survivors.
///
/// The simplification versus a real deployment: membership is fixed at
/// construction plus explicit fail_node calls (no churn-time data
/// migration) — enough to measure availability and routing cost, which
/// is what the evaluation substrate needs.

#include <cstdint>
#include <map>
#include <vector>

#include "repsys/types.h"

namespace hpr::sim {

/// Overlay parameters.
struct OverlayConfig {
    std::size_t nodes = 64;
    std::size_t replication = 3;  ///< replicas per server log
    std::uint64_t seed = 7;       ///< node-id placement seed
};

/// Consistent-hashing feedback directory with finger routing.
class FeedbackOverlay {
public:
    /// \throws std::invalid_argument on a degenerate config.
    explicit FeedbackOverlay(OverlayConfig config = {});

    [[nodiscard]] std::size_t nodes() const noexcept { return ring_.size(); }
    [[nodiscard]] std::size_t live_nodes() const noexcept { return live_count_; }

    /// Store a feedback on the `replication` live successors of
    /// hash(feedback.server).
    /// \returns the number of replicas actually written (may be less than
    /// `replication` when too few nodes survive).
    std::size_t publish(const repsys::Feedback& feedback);

    /// Collect a server's feedbacks from the first reachable replica,
    /// time-ordered.  Empty when no replica survives.
    [[nodiscard]] std::vector<repsys::Feedback> lookup(repsys::EntityId server) const;

    /// Routing hops of the most recent lookup()/publish() (greedy finger
    /// routing from a deterministic entry node).
    [[nodiscard]] std::size_t last_hops() const noexcept { return last_hops_; }

    /// Crash-stop the node at ring position `index` (0-based, by ring
    /// order). Its stored feedbacks are lost.
    /// \throws std::out_of_range for bad indices.
    void fail_node(std::size_t index);

    /// Feedbacks stored per ring position (load-balance visibility).
    [[nodiscard]] std::vector<std::size_t> load() const;

    /// The ring point a server's log is anchored at (exposed for tests).
    [[nodiscard]] std::uint64_t anchor_of(repsys::EntityId server) const;

private:
    struct Node {
        std::uint64_t id;   ///< ring position
        bool alive = true;
        std::map<repsys::EntityId, std::vector<repsys::Feedback>> shards;
    };

    /// Index of the first node (by ring order) whose id >= point (wraps).
    [[nodiscard]] std::size_t successor_index(std::uint64_t point) const;

    /// Greedy finger routing from `from` toward the successor of `point`;
    /// counts hops in last_hops_.
    [[nodiscard]] std::size_t route(std::size_t from, std::uint64_t point) const;

    /// Indices of the first `replication` live nodes at/after point.
    [[nodiscard]] std::vector<std::size_t> replica_set(std::uint64_t point) const;

    OverlayConfig config_;
    std::vector<Node> ring_;  ///< sorted by id
    std::vector<std::vector<std::size_t>> fingers_;  ///< per node: 2^j jumps
    std::size_t live_count_;
    mutable std::size_t last_hops_ = 0;
};

}  // namespace hpr::sim

#endif  // HPR_SIM_OVERLAY_H
