#include "sim/collusion_cost.h"

#include <stdexcept>

#include "stats/calibrate.h"

namespace hpr::sim {

double CollusionCostSeries::median_cost() const {
    if (cost_samples.empty()) return 0.0;
    return stats::empirical_quantile(cost_samples, 0.5);
}

CollusionCostResult run_collusion_cost(
    const CollusionCostConfig& config,
    const std::shared_ptr<stats::Calibrator>& calibrator) {
    if (config.n_colluders == 0 || config.n_colluders >= config.n_clients) {
        throw std::invalid_argument(
            "run_collusion_cost: need 0 < n_colluders < n_clients");
    }
    stats::Rng rng{config.seed};
    constexpr repsys::EntityId kServer = 1;
    // Colluders get ids 2 .. 1+n_colluders; honest clients follow.
    const repsys::EntityId first_colluder = 2;
    const auto first_honest =
        static_cast<repsys::EntityId>(first_colluder + config.n_colluders);
    ClientPool honest_pool{config.n_clients - config.n_colluders, first_honest,
                           config.arrivals};

    core::TwoPhaseConfig assessor_config;
    assessor_config.test = config.test;
    assessor_config.mode = config.screening;
    // §4: with collusion in the threat model, screening runs on the
    // issuer-reordered sequence.
    assessor_config.collusion_resilient = config.screening != core::ScreeningMode::kNone;
    const std::shared_ptr<const repsys::TrustFunction> trust{
        repsys::make_trust_function(config.trust_spec)};
    const core::TwoPhaseAssessor assessor{
        assessor_config, trust,
        calibrator ? calibrator : core::make_calibrator(config.test.base)};

    // Preparation phase: only colluder feedback, mimicking an honest
    // player with trust value prep_trust.
    repsys::TransactionHistory history;
    for (std::size_t i = 0; i < config.prep_size; ++i) {
        const auto colluder = static_cast<repsys::EntityId>(
            first_colluder + (i % config.n_colluders));
        history.append(kServer, colluder,
                       rng.bernoulli(config.prep_trust) ? repsys::Rating::kPositive
                                                        : repsys::Rating::kNegative);
    }
    auto trust_acc = trust->make_accumulator();
    for (const repsys::Feedback& f : history.feedbacks()) trust_acc->update(f.good());

    CollusionCostResult result;
    while (result.attacks_completed < config.target_attacks &&
           result.attack_steps < config.max_attack_steps) {
        ++result.attack_steps;
        const double reputation = trust_acc->value();
        const auto arriving = honest_pool.arrivals(reputation, rng);

        // Action 1: cheat an arriving non-colluder, if the victim would
        // accept and the resulting history stays consistent.
        if (!arriving.empty()) {
            const bool victim_accepts = reputation >= config.trust_threshold &&
                                        assessor.screen(history.view()).passed;
            if (victim_accepts) {
                const repsys::EntityId victim =
                    arriving[rng.uniform_int(arriving.size())];
                history.append(kServer, victim, repsys::Rating::kNegative);
                if (assessor.screen(history.view()).passed) {
                    trust_acc->update(false);
                    honest_pool.record(victim, false);
                    ++result.attacks_completed;
                    continue;
                }
                history.pop_back();
            }
        }

        // Action 2: a colluder's fake positive feedback, if it keeps the
        // history consistent (it always does without screening).
        {
            const auto colluder = static_cast<repsys::EntityId>(
                first_colluder + rng.uniform_int(config.n_colluders));
            history.append(kServer, colluder, repsys::Rating::kPositive);
            if (assessor.screen(history.view()).passed) {
                trust_acc->update(true);
                ++result.fake_positives;
                continue;
            }
            history.pop_back();
        }

        // Action 3: forced to provide a genuine good service.
        if (!arriving.empty()) {
            const repsys::EntityId client = arriving[rng.uniform_int(arriving.size())];
            history.append(kServer, client, repsys::Rating::kPositive);
            trust_acc->update(true);
            honest_pool.record(client, true);
            ++result.genuine_goods;
        }
        // No arrivals and no safe fake: the step passes without a
        // transaction (the attacker waits for clients).
    }
    result.reached_target = result.attacks_completed >= config.target_attacks;
    result.final_trust = trust_acc->value();
    result.supporter_base = history.supporter_base();
    return result;
}

CollusionCostSeries run_collusion_cost_trials(
    CollusionCostConfig config, std::size_t trials,
    const std::shared_ptr<stats::Calibrator>& calibrator) {
    CollusionCostSeries series;
    const std::uint64_t base_seed = config.seed;
    for (std::size_t t = 0; t < trials; ++t) {
        config.seed = base_seed + t;
        const CollusionCostResult run = run_collusion_cost(config, calibrator);
        series.cost.add(static_cast<double>(run.genuine_goods));
        series.cost_samples.push_back(static_cast<double>(run.genuine_goods));
        series.fakes.add(static_cast<double>(run.fake_positives));
        if (!run.reached_target) ++series.unreached_runs;
    }
    return series;
}

}  // namespace hpr::sim
