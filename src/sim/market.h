#ifndef HPR_SIM_MARKET_H
#define HPR_SIM_MARKET_H

/// \file market.h
/// A small marketplace simulation that puts the two-phase assessor to
/// work end-to-end: a population of servers (honest and adversarial)
/// serves a stream of clients who pick providers using a configurable
/// assessor.  Used by the examples and integration tests to measure how
/// many bad transactions clients suffer with and without behavior
/// testing — the qualitative claim behind the paper's evaluation.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/two_phase.h"
#include "repsys/history.h"
#include "stats/rng.h"

namespace hpr::sim {

/// How a server decides to serve its next transaction.
class ServerStrategy {
public:
    virtual ~ServerStrategy() = default;

    /// Whether transaction number `tx_index` (0-based, counted per server)
    /// is served well.  `own_history` is the server's feedback record so
    /// far; adaptive strategies may consult it.
    [[nodiscard]] virtual bool serve_well(std::size_t tx_index,
                                          const repsys::TransactionHistory& own_history,
                                          stats::Rng& rng) = 0;

    /// Whether the server abandons its identity and re-registers fresh
    /// (whitewashing, paper §3.1's cheat-and-run discussion).  Checked
    /// after every transaction; a reset clears the history and the
    /// per-identity transaction counter.
    [[nodiscard]] virtual bool reset_identity(
        const repsys::TransactionHistory& own_history) {
        (void)own_history;
        return false;
    }

    [[nodiscard]] virtual std::string name() const = 0;
};

/// Honest player: good with fixed probability p (paper §3.1).
class HonestStrategy final : public ServerStrategy {
public:
    explicit HonestStrategy(double p);
    [[nodiscard]] bool serve_well(std::size_t, const repsys::TransactionHistory&,
                                  stats::Rng& rng) override;
    [[nodiscard]] std::string name() const override;

private:
    double p_;
};

/// Periodic attacker: in every block of `window` transactions the first
/// `attacks_per_window` are bad (paper §3, "Periodic Attacks").
class PeriodicStrategy final : public ServerStrategy {
public:
    PeriodicStrategy(std::size_t window, std::size_t attacks_per_window);
    [[nodiscard]] bool serve_well(std::size_t tx_index,
                                  const repsys::TransactionHistory&,
                                  stats::Rng&) override;
    [[nodiscard]] std::string name() const override;

private:
    std::size_t window_;
    std::size_t attacks_;
};

/// Hibernating attacker: honest (with probability p) for the first
/// `prep` transactions, always bad afterwards (paper §3, "Hibernating
/// Attack").
class HibernatingStrategy final : public ServerStrategy {
public:
    HibernatingStrategy(std::size_t prep, double p);
    [[nodiscard]] bool serve_well(std::size_t tx_index,
                                  const repsys::TransactionHistory&,
                                  stats::Rng& rng) override;
    [[nodiscard]] std::string name() const override;

private:
    std::size_t prep_;
    double p_;
};

/// Whitewashing attacker: behaves honestly (probability p) for `prep`
/// transactions, cheats for the next `attacks` transactions, then dumps
/// the identity and re-registers — the cheat-and-run cycle of §3.1 run in
/// a loop.  Only join friction or a strict newcomer policy deters it.
class WhitewashStrategy final : public ServerStrategy {
public:
    WhitewashStrategy(std::size_t prep, std::size_t attacks, double p);
    [[nodiscard]] bool serve_well(std::size_t tx_index,
                                  const repsys::TransactionHistory&,
                                  stats::Rng& rng) override;
    [[nodiscard]] bool reset_identity(
        const repsys::TransactionHistory& own_history) override;
    [[nodiscard]] std::string name() const override;

    /// Identities consumed so far (resets performed).
    [[nodiscard]] std::size_t identities_used() const noexcept { return resets_; }

private:
    std::size_t prep_;
    std::size_t attacks_;
    double p_;
    std::size_t resets_ = 0;
};

/// The strategic attacker of §5.1 as a marketplace participant: before
/// every transaction it consults the *defender's own* assessor — it
/// cheats exactly when the history including the planned bad transaction
/// would still pass screening and its current trust clears the victims'
/// threshold; otherwise it serves well.  Plugging the very assessor the
/// market uses into this strategy simulates a fully informed adversary.
class StrategicStrategy final : public ServerStrategy {
public:
    /// \param assessor   the defense the attacker knows (not owned)
    /// \param threshold  the victims' trust threshold
    /// \throws std::invalid_argument if assessor is null.
    StrategicStrategy(std::shared_ptr<const core::TwoPhaseAssessor> assessor,
                      double threshold);

    [[nodiscard]] bool serve_well(std::size_t tx_index,
                                  const repsys::TransactionHistory& own_history,
                                  stats::Rng& rng) override;
    [[nodiscard]] std::string name() const override;

    /// Bad transactions it has landed.
    [[nodiscard]] std::size_t attacks_landed() const noexcept { return attacks_; }

private:
    std::shared_ptr<const core::TwoPhaseAssessor> assessor_;
    double threshold_;
    std::size_t attacks_ = 0;
};

/// Client policy toward servers whose histories are too short to screen
/// (paper §7: "service providers with short histories are widely
/// considered high-risk groups").
enum class NewcomerPolicy : std::uint8_t {
    kTrustValue,  ///< accept newcomers whose trust value clears the threshold
    kReject,      ///< refuse every unscreenable server
};

/// Per-server tallies after a simulation.
struct ServerReport {
    std::string strategy;
    std::size_t transactions = 0;      ///< transactions actually served
    std::size_t bad_served = 0;        ///< bad transactions clients suffered
    std::size_t rejected_screen = 0;   ///< selections vetoed by phase-1 screening
    std::size_t rejected_trust = 0;    ///< selections vetoed by the trust threshold
    std::size_t rejected_newcomer = 0; ///< selections vetoed by the newcomer policy
    std::size_t identity_resets = 0;   ///< whitewashing re-registrations
    double final_trust = 0.0;          ///< trust value at the end (0 if suspicious)
    bool suspicious = false;           ///< flagged by screening at the end
};

/// Marketplace configuration.
struct MarketConfig {
    std::size_t steps = 2000;          ///< client requests to simulate
    double trust_threshold = 0.9;
    std::size_t bootstrap_per_server = 60;  ///< warm-up transactions per server

    /// Probability that a client ignores the assessor and picks any
    /// server uniformly.  Models buyers who do not consult reputation;
    /// also the recovery channel for honest servers a noisy screening
    /// verdict would otherwise freeze out forever (their histories only
    /// evolve — and clear — if somebody still transacts with them).
    double exploration = 0.0;

    /// How clients treat unscreenably short histories.
    NewcomerPolicy newcomer_policy = NewcomerPolicy::kTrustValue;

    std::uint64_t seed = 42;
};

/// The marketplace. Servers are registered with a strategy; each step one
/// client request arrives, a server is chosen uniformly among candidates
/// the assessor accepts, and the transaction + feedback is recorded.
class Marketplace {
public:
    Marketplace(MarketConfig config, std::shared_ptr<const core::TwoPhaseAssessor> assessor);

    /// Register a server; returns its id.
    repsys::EntityId add_server(std::unique_ptr<ServerStrategy> strategy);

    /// Run the simulation: bootstrap every server with
    /// bootstrap_per_server transactions (so histories are screenable),
    /// then `steps` client requests.
    void run();

    /// Per-server outcome report (keyed by server id).
    [[nodiscard]] std::map<repsys::EntityId, ServerReport> report() const;

    /// Bad transactions suffered by clients across all servers
    /// (bootstrap excluded).
    [[nodiscard]] std::size_t total_bad_suffered() const noexcept {
        return total_bad_suffered_;
    }

    /// Requests that found no acceptable server.
    [[nodiscard]] std::size_t unserved_requests() const noexcept {
        return unserved_requests_;
    }

    [[nodiscard]] const repsys::TransactionHistory& history_of(repsys::EntityId id) const;

private:
    struct Server {
        repsys::EntityId id;
        std::unique_ptr<ServerStrategy> strategy;
        repsys::TransactionHistory history;
        std::size_t tx_count = 0;      ///< per-identity (resets on whitewash)
        std::size_t lifetime_tx = 0;   ///< across identities
        std::size_t bad_served = 0;
        std::size_t rejected_screen = 0;
        std::size_t rejected_trust = 0;
        std::size_t rejected_newcomer = 0;
        std::size_t identity_resets = 0;
    };

    void transact(Server& server, repsys::EntityId client, bool count_metrics);

    MarketConfig config_;
    std::shared_ptr<const core::TwoPhaseAssessor> assessor_;
    std::vector<Server> servers_;
    stats::Rng rng_;
    std::size_t total_bad_suffered_ = 0;
    std::size_t unserved_requests_ = 0;
    repsys::EntityId next_client_ = 1000;
};

}  // namespace hpr::sim

#endif  // HPR_SIM_MARKET_H
