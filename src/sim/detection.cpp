#include "sim/detection.h"

#include "sim/generators.h"

namespace hpr::sim {
namespace {

template <typename MakeOutcomes>
double flagged_fraction(const DetectionConfig& config,
                        const std::shared_ptr<stats::Calibrator>& calibrator,
                        MakeOutcomes make_outcomes) {
    const core::MultiTest tester{
        config.test,
        calibrator ? calibrator : core::make_calibrator(config.test.base)};
    stats::Rng rng{config.seed};
    std::size_t flagged = 0;
    for (std::size_t t = 0; t < config.trials; ++t) {
        const std::vector<std::uint8_t> outcomes = make_outcomes(rng);
        const std::span<const std::uint8_t> view{outcomes};
        const bool passed = config.use_multi
                                ? tester.test(view).passed
                                : tester.single().test(view).passed;
        if (!passed) ++flagged;
    }
    return config.trials == 0
               ? 0.0
               : static_cast<double>(flagged) / static_cast<double>(config.trials);
}

}  // namespace

double detection_rate(const DetectionConfig& config,
                      const std::shared_ptr<stats::Calibrator>& calibrator) {
    return flagged_fraction(config, calibrator, [&](stats::Rng& rng) {
        return periodic_outcomes(config.history_size, config.attack_window,
                                 config.attack_fraction, rng);
    });
}

double false_positive_rate(double p, const DetectionConfig& config,
                           const std::shared_ptr<stats::Calibrator>& calibrator) {
    return flagged_fraction(config, calibrator, [&](stats::Rng& rng) {
        return honest_outcomes(config.history_size, p, rng);
    });
}

}  // namespace hpr::sim
