#include "sim/gossip.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace hpr::sim {

GossipNetwork::GossipNetwork(std::vector<double> values, GossipConfig config,
                             std::uint64_t seed)
    : GossipNetwork(std::move(values),
                    std::vector<double>{},  // filled with 1s below
                    config, seed) {}

GossipNetwork::GossipNetwork(std::vector<double> sums, std::vector<double> weights,
                             GossipConfig config, std::uint64_t seed)
    : config_(config),
      rng_(seed),
      sum_(std::move(sums)),
      weight_(std::move(weights)),
      alive_(sum_.size(), true),
      live_count_(sum_.size()) {
    if (sum_.empty()) {
        throw std::invalid_argument("GossipNetwork: need at least one node");
    }
    if (weight_.empty()) {
        weight_.assign(sum_.size(), 1.0);
    }
    if (weight_.size() != sum_.size()) {
        throw std::invalid_argument("GossipNetwork: sums/weights size mismatch");
    }
    if (!(config_.tolerance > 0.0)) {
        throw std::invalid_argument("GossipNetwork: tolerance must be positive");
    }
    double total_sum = 0.0;
    double total_weight = 0.0;
    for (const double w : weight_) {
        if (w < 0.0) {
            throw std::invalid_argument("GossipNetwork: weights must be >= 0");
        }
        total_weight += w;
    }
    if (total_weight <= 0.0) {
        throw std::invalid_argument("GossipNetwork: total weight must be positive");
    }
    for (const double s : sum_) total_sum += s;
    true_average_ = total_sum / total_weight;
}

double GossipNetwork::estimate(std::size_t node) const {
    if (node >= sum_.size()) {
        throw std::out_of_range("GossipNetwork::estimate: bad node index");
    }
    return weight_[node] > 0.0 ? sum_[node] / weight_[node] : 0.0;
}

double GossipNetwork::max_error() const {
    double worst = 0.0;
    for (std::size_t i = 0; i < sum_.size(); ++i) {
        if (!alive_[i]) continue;
        worst = std::max(worst, std::abs(estimate(i) - true_average_));
    }
    return worst;
}

double GossipNetwork::spread() const {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < sum_.size(); ++i) {
        if (!alive_[i]) continue;
        const double e = estimate(i);
        lo = std::min(lo, e);
        hi = std::max(hi, e);
    }
    return live_count_ == 0 ? 0.0 : hi - lo;
}

void GossipNetwork::step() {
    if (live_count_ <= 1) {
        ++rounds_;
        return;
    }
    // Buffer incoming mass so the round is synchronous (classic push-sum).
    std::vector<double> incoming_sum(sum_.size(), 0.0);
    std::vector<double> incoming_weight(sum_.size(), 0.0);
    for (std::size_t i = 0; i < sum_.size(); ++i) {
        if (!alive_[i]) continue;
        // Pick a uniformly random live peer other than i.
        std::size_t target = i;
        do {
            target = static_cast<std::size_t>(rng_.uniform_int(sum_.size()));
        } while (target == i || !alive_[target]);
        sum_[i] *= 0.5;
        weight_[i] *= 0.5;
        incoming_sum[target] += sum_[i];
        incoming_weight[target] += weight_[i];
    }
    for (std::size_t i = 0; i < sum_.size(); ++i) {
        sum_[i] += incoming_sum[i];
        weight_[i] += incoming_weight[i];
    }
    ++rounds_;
}

std::size_t GossipNetwork::run() {
    const std::size_t start = rounds_;
    converged_ = spread() <= config_.tolerance;
    while (!converged_ && rounds_ - start < config_.max_rounds) {
        step();
        converged_ = spread() <= config_.tolerance;
    }
    return rounds_ - start;
}

void GossipNetwork::fail_node(std::size_t node) {
    if (node >= alive_.size()) {
        throw std::out_of_range("GossipNetwork::fail_node: bad node index");
    }
    if (alive_[node]) {
        alive_[node] = false;
        --live_count_;
    }
}

}  // namespace hpr::sim
