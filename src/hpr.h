#ifndef HPR_HPR_H
#define HPR_HPR_H

/// \file hpr.h
/// Umbrella header for the Honest-Player Reputation library.
///
/// The library reproduces Zhang, Wei & Yu, "On the Modeling of Honest
/// Players in Reputation Systems" (ICDCS 2008 / JCST 2009):
///  * hpr::obs     — in-process metrics registry, timers and exporters;
///  * hpr::stats   — distributions, distances, Monte-Carlo calibration;
///  * hpr::repsys  — feedbacks, histories, trust functions;
///  * hpr::core    — behavior testing and the two-phase assessor;
///  * hpr::serve   — sharded-store batch assessment (the serving core);
///  * hpr::net     — the epoll introspection daemon front-end;
///  * hpr::sim     — workload generators and the paper's experiments.

#include "core/behavior_test.h"
#include "core/category.h"
#include "core/changepoint.h"
#include "core/collusion.h"
#include "core/config.h"
#include "core/multi_test.h"
#include "core/multidim.h"
#include "core/multinomial_test.h"
#include "core/online.h"
#include "core/report.h"
#include "core/runs_test.h"
#include "core/scratch.h"
#include "core/temporal.h"
#include "core/two_phase.h"
#include "core/window_stats.h"
#include "net/endpoints.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "net/ingest.h"
#include "obs/buildinfo.h"
#include "obs/export.h"
#include "obs/flightrecorder.h"
#include "obs/introspection.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "repsys/credibility.h"
#include "repsys/eigentrust.h"
#include "repsys/evidential.h"
#include "repsys/history.h"
#include "repsys/htrust.h"
#include "repsys/io.h"
#include "repsys/store.h"
#include "repsys/trust.h"
#include "repsys/types.h"
#include "serve/batch_assessor.h"
#include "sim/attack_cost.h"
#include "sim/clients.h"
#include "sim/collusion_cost.h"
#include "sim/detection.h"
#include "sim/economics.h"
#include "sim/generators.h"
#include "sim/gossip.h"
#include "sim/market.h"
#include "sim/overlay.h"
#include "sim/p2p.h"
#include "stats/beta.h"
#include "stats/binomial.h"
#include "stats/bounds.h"
#include "stats/calibrate.h"
#include "stats/distance.h"
#include "stats/empirical.h"
#include "stats/moments.h"
#include "stats/multinomial.h"
#include "stats/normal.h"
#include "stats/reference_cache.h"
#include "stats/rng.h"

#endif  // HPR_HPR_H
