#ifndef HPR_STATS_EMPIRICAL_H
#define HPR_STATS_EMPIRICAL_H

/// \file empirical.h
/// Empirical distributions over a small integer support {0..max_value}.
///
/// Behavior testing (paper §3.2) reduces a transaction history to the
/// multiset of per-window good-transaction counts {G_1..G_k}, each in
/// {0..m}.  This class holds that multiset as a count histogram and
/// supports O(1) incremental insertion/removal — the key operation behind
/// the O(n) optimized multi-testing of §5.5.

#include <cstdint>
#include <vector>

namespace hpr::stats {

/// Count histogram over {0..max_value} with lazily computed pmf views.
class EmpiricalDistribution {
public:
    /// Empty distribution with support {0..max_value}.
    explicit EmpiricalDistribution(std::uint32_t max_value);

    /// Build directly from samples.
    /// \throws std::invalid_argument if any sample exceeds max_value.
    EmpiricalDistribution(std::uint32_t max_value,
                          const std::vector<std::uint32_t>& samples);

    /// Largest representable value (window size m in behavior testing).
    [[nodiscard]] std::uint32_t max_value() const noexcept {
        return static_cast<std::uint32_t>(counts_.size() - 1);
    }

    /// Number of samples currently recorded.
    [[nodiscard]] std::uint64_t size() const noexcept { return total_; }
    [[nodiscard]] bool empty() const noexcept { return total_ == 0; }

    /// Record one observation of `value`.
    /// \throws std::invalid_argument if value exceeds max_value.
    void add(std::uint32_t value);

    /// Remove one previously recorded observation of `value`.
    /// \throws std::logic_error if no such observation is recorded.
    void remove(std::uint32_t value);

    /// Raw count of observations equal to `value` (0 beyond support).
    [[nodiscard]] std::uint64_t count(std::uint32_t value) const noexcept {
        return value < counts_.size() ? counts_[value] : 0;
    }

    /// Empirical probability of `value`; 0 when the distribution is empty.
    [[nodiscard]] double pmf(std::uint32_t value) const noexcept {
        if (total_ == 0 || value >= counts_.size()) return 0.0;
        return static_cast<double>(counts_[value]) / static_cast<double>(total_);
    }

    /// Sum of all recorded sample values (e.g. total good transactions).
    [[nodiscard]] std::uint64_t value_sum() const noexcept { return value_sum_; }

    /// Sample mean; 0 when empty.
    [[nodiscard]] double mean() const noexcept {
        return total_ == 0 ? 0.0
                           : static_cast<double>(value_sum_) / static_cast<double>(total_);
    }

    /// Unbiased sample variance; 0 when fewer than two samples.
    [[nodiscard]] double variance() const noexcept;

    /// Normalized pmf over the full support (size max_value + 1).
    [[nodiscard]] std::vector<double> pmf_table() const;

    /// Raw counts over the full support (size max_value + 1).
    [[nodiscard]] const std::vector<std::uint64_t>& count_table() const noexcept {
        return counts_;
    }

    /// Merge another distribution over the same support into this one.
    /// \throws std::invalid_argument on support mismatch.
    void merge(const EmpiricalDistribution& other);

    /// Drop all recorded samples (support is preserved).
    void clear() noexcept;

    /// Drop all samples AND retarget the support to {0..max_value},
    /// reusing the existing buffer when it is large enough.  The
    /// scratch-arena primitive of the assessment hot path: a thread-local
    /// histogram is reset per use instead of reallocated.
    void reset(std::uint32_t max_value);

private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    std::uint64_t value_sum_ = 0;
    std::uint64_t value_sq_sum_ = 0;
};

}  // namespace hpr::stats

#endif  // HPR_STATS_EMPIRICAL_H
