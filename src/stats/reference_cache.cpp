#include "stats/reference_cache.h"

#include <algorithm>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "obs/metrics.h"

namespace hpr::stats {

namespace {

/// Reference-model cache metrics, shared by every instance in the process.
struct CacheMetrics {
    obs::Counter& hits;
    obs::Counter& misses;
    obs::Counter& evictions;
    obs::Gauge& entries;
};

CacheMetrics& cache_metrics() {
    auto& registry = obs::default_registry();
    static CacheMetrics metrics{
        registry.counter("hpr_refmodel_cache_hits_total",
                         "Reference-model lookups answered from the cache"),
        registry.counter("hpr_refmodel_cache_misses_total",
                         "Reference-model lookups that constructed a Binomial table"),
        registry.counter("hpr_refmodel_cache_evictions_total",
                         "Reference models dropped by the LRU capacity bound"),
        registry.gauge("hpr_refmodel_cache_entries",
                       "Reference models currently resident across all caches"),
    };
    return metrics;
}

}  // namespace

ReferenceModelCache::ReferenceModelCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
    // Sized up front: a rehash mid-fill would stall every reader behind
    // the exclusive lock for the whole bucket migration.
    cache_.reserve(capacity_ + 1);
}

ReferenceModelCache::Key ReferenceModelCache::make_key(std::uint32_t m,
                                                       std::uint64_t good,
                                                       std::uint64_t total) {
    if (good > total) {
        throw std::invalid_argument(
            "ReferenceModelCache: good count exceeds total transactions");
    }
    if (total == 0) return Key{m, 0, 1};
    const std::uint64_t g = std::gcd(good, total);
    return Key{m, good / g, total / g};
}

std::shared_ptr<const Binomial> ReferenceModelCache::reference(std::uint32_t m,
                                                               std::uint64_t good,
                                                               std::uint64_t total) {
    const Key key = make_key(m, good, total);
    {
        const std::shared_lock lock{mutex_};
        if (const auto it = cache_.find(key); it != cache_.end()) {
            it->second.last_used.store(next_stamp(), std::memory_order_relaxed);
            hits_.fetch_add(1, std::memory_order_relaxed);
            cache_metrics().hits.increment();
            return it->second.model;
        }
    }

    std::promise<std::shared_ptr<const Binomial>> promise;
    std::shared_future<std::shared_ptr<const Binomial>> flight;
    bool leader = false;
    {
        const std::unique_lock lock{mutex_};
        // Re-check: the key may have landed between the two locks.
        if (const auto it = cache_.find(key); it != cache_.end()) {
            it->second.last_used.store(next_stamp(), std::memory_order_relaxed);
            hits_.fetch_add(1, std::memory_order_relaxed);
            cache_metrics().hits.increment();
            return it->second.model;
        }
        if (const auto it = inflight_.find(key); it != inflight_.end()) {
            flight = it->second;  // join the construction already under way
            joins_.fetch_add(1, std::memory_order_relaxed);
        } else {
            leader = true;
            flight = promise.get_future().share();
            inflight_.emplace(key, flight);
        }
    }
    if (!leader) return flight.get();  // rethrows the leader's failure, if any

    try {
        // IEEE-754 division is correctly rounded, so the reduced rational
        // num/den yields the identical double a caller would have computed
        // as good/total — the cached model is bit-for-bit the fresh one.
        const double p = static_cast<double>(key.num) / static_cast<double>(key.den);
        auto model = std::make_shared<const Binomial>(m, p);
        {
            const std::unique_lock lock{mutex_};
            cache_.emplace(std::piecewise_construct, std::forward_as_tuple(key),
                           std::forward_as_tuple(model, next_stamp()));
            inflight_.erase(key);
            misses_.fetch_add(1, std::memory_order_relaxed);
            cache_metrics().misses.increment();
            cache_metrics().entries.add(1);
            evict_excess_locked();
        }
        promise.set_value(model);
        return model;
    } catch (...) {
        {
            const std::unique_lock lock{mutex_};
            inflight_.erase(key);  // let a later caller retry the key
        }
        promise.set_exception(std::current_exception());
        throw;
    }
}

void ReferenceModelCache::evict_excess_locked() {
    if (cache_.size() <= capacity_) return;
    // Evict in one pass down to ~7/8 of capacity.  Dropping exactly one
    // LRU victim per insert would cost an O(capacity) stamp scan per miss
    // — quadratic for a caller whose working set exceeds the capacity
    // (one long suffix ladder can touch more keys than fit).  Batching
    // the scan amortizes eviction to O(1) per insert.  Stamp order is the
    // recency order: stamps are unique (a monotone tick) and hits cannot
    // race this scan (they share the mutex we hold exclusively).
    const std::size_t target = capacity_ - capacity_ / 8;
    const std::size_t excess = cache_.size() - target;
    std::vector<std::uint64_t> stamps;
    stamps.reserve(cache_.size());
    for (const auto& [key, entry] : cache_) {
        stamps.push_back(entry.last_used.load(std::memory_order_relaxed));
    }
    const auto nth = stamps.begin() + static_cast<std::ptrdiff_t>(excess) - 1;
    std::nth_element(stamps.begin(), nth, stamps.end());
    const std::uint64_t cutoff = *nth;
    std::size_t evicted = 0;
    for (auto it = cache_.begin(); it != cache_.end() && evicted < excess;) {
        if (it->second.last_used.load(std::memory_order_relaxed) <= cutoff) {
            it = cache_.erase(it);
            ++evicted;
        } else {
            ++it;
        }
    }
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    cache_metrics().evictions.increment(evicted);
    cache_metrics().entries.sub(static_cast<std::int64_t>(evicted));
}

ReferenceModelCacheStats ReferenceModelCache::stats() const {
    const std::shared_lock lock{mutex_};
    ReferenceModelCacheStats snapshot;
    snapshot.hits = hits_.load(std::memory_order_relaxed);
    snapshot.misses = misses_.load(std::memory_order_relaxed);
    snapshot.single_flight_joins = joins_.load(std::memory_order_relaxed);
    snapshot.evictions = evictions_.load(std::memory_order_relaxed);
    snapshot.in_flight = inflight_.size();
    snapshot.entries = cache_.size();
    return snapshot;
}

void ReferenceModelCache::clear() {
    const std::unique_lock lock{mutex_};
    cache_metrics().entries.sub(static_cast<std::int64_t>(cache_.size()));
    cache_.clear();
}

ReferenceModelCache& ReferenceModelCache::process_wide() {
    static auto* cache = new ReferenceModelCache{};  // leaked: see header
    return *cache;
}

}  // namespace hpr::stats
