#include "stats/binomial.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace hpr::stats {

double log_gamma(double x) {
    int sign = 0;
    return ::lgamma_r(x, &sign);
}

double log_choose(std::uint32_t n, std::uint32_t k) {
    if (k > n) return -std::numeric_limits<double>::infinity();
    return log_gamma(static_cast<double>(n) + 1.0) -
           log_gamma(static_cast<double>(k) + 1.0) -
           log_gamma(static_cast<double>(n - k) + 1.0);
}

Binomial::Binomial(std::uint32_t n, double p) : n_(n), p_(p) {
    if (!(p >= 0.0 && p <= 1.0)) {
        throw std::invalid_argument("Binomial: p must be in [0, 1]");
    }
    pmf_.resize(n_ + 1, 0.0);
    cdf_.resize(n_ + 1, 0.0);
    if (p == 0.0) {
        pmf_[0] = 1.0;
    } else if (p == 1.0) {
        pmf_[n_] = 1.0;
    } else {
        const double log_p = std::log(p);
        const double log_q = std::log1p(-p);
        for (std::uint32_t k = 0; k <= n_; ++k) {
            pmf_[k] = std::exp(log_choose(n_, k) + static_cast<double>(k) * log_p +
                               static_cast<double>(n_ - k) * log_q);
        }
        // Normalize away the tiny drift from exp/lgamma round-off so that
        // distance computations against empirical pmfs are exact at 0.
        double total = 0.0;
        for (double v : pmf_) total += v;
        if (total > 0.0) {
            for (double& v : pmf_) v /= total;
        }
    }
    double acc = 0.0;
    for (std::uint32_t k = 0; k <= n_; ++k) {
        acc += pmf_[k];
        cdf_[k] = std::min(acc, 1.0);
    }
    cdf_[n_] = 1.0;
    // Upper tail accumulated downward from k = n: each sf_[k] is a sum of
    // same-signed terms at its own magnitude, never a cancellation against
    // 1.0, so P(X >= k) stays relatively accurate deep into the tail.
    sf_.resize(n_ + 1, 0.0);
    double tail = 0.0;
    for (std::uint32_t k = n_ + 1; k-- > 0;) {
        tail += pmf_[k];
        sf_[k] = std::min(tail, 1.0);
    }
    sf_[0] = 1.0;
}

double Binomial::log_pmf(std::uint32_t k) const {
    if (k > n_) return -std::numeric_limits<double>::infinity();
    if (p_ == 0.0) {
        return k == 0 ? 0.0 : -std::numeric_limits<double>::infinity();
    }
    if (p_ == 1.0) {
        return k == n_ ? 0.0 : -std::numeric_limits<double>::infinity();
    }
    return log_choose(n_, k) + static_cast<double>(k) * std::log(p_) +
           static_cast<double>(n_ - k) * std::log1p(-p_);
}

std::uint32_t Binomial::quantile(double q) const {
    if (!(q >= 0.0 && q <= 1.0)) {
        throw std::invalid_argument("Binomial::quantile: q must be in [0, 1]");
    }
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), q);
    if (it == cdf_.end()) return n_;
    return static_cast<std::uint32_t>(it - cdf_.begin());
}

std::uint32_t Binomial::sample(Rng& rng) const {
    const double u = rng.uniform();
    const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end()) return n_;
    return static_cast<std::uint32_t>(it - cdf_.begin());
}

std::vector<std::uint32_t> Binomial::sample(Rng& rng, std::size_t count) const {
    std::vector<std::uint32_t> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) out.push_back(sample(rng));
    return out;
}

}  // namespace hpr::stats
