#ifndef HPR_STATS_BETA_H
#define HPR_STATS_BETA_H

/// \file beta.h
/// The Beta distribution, used by the Beta reputation baseline
/// (Ismail & Josang, "The beta reputation system", Bled 2002 — paper
/// reference [16]).  A server with g positive and b negative feedbacks has
/// posterior Beta(g + 1, b + 1) over its trust value; the reputation score
/// is the posterior mean.

#include <cstdint>

namespace hpr::stats {

/// Natural log of the Beta function B(a, b).
[[nodiscard]] double log_beta(double a, double b);

/// Regularized incomplete beta function I_x(a, b) via the continued
/// fraction of Lentz's method.  Accurate to ~1e-12 over (0,1).
[[nodiscard]] double reg_incomplete_beta(double a, double b, double x);

/// Beta(a, b) distribution with a, b > 0.
class Beta {
public:
    /// \throws std::invalid_argument unless a > 0 and b > 0.
    Beta(double a, double b);

    [[nodiscard]] double a() const noexcept { return a_; }
    [[nodiscard]] double b() const noexcept { return b_; }

    [[nodiscard]] double mean() const noexcept { return a_ / (a_ + b_); }
    [[nodiscard]] double variance() const noexcept {
        const double s = a_ + b_;
        return a_ * b_ / (s * s * (s + 1.0));
    }

    /// Probability density at x in [0, 1].
    [[nodiscard]] double pdf(double x) const;

    /// P(X <= x).
    [[nodiscard]] double cdf(double x) const;

    /// Inverse cdf by bisection (monotone, so exact to tolerance).
    [[nodiscard]] double quantile(double q) const;

private:
    double a_;
    double b_;
};

/// Two-sided confidence interval for a Bernoulli success probability.
struct Interval {
    double lower = 0.0;
    double upper = 1.0;

    [[nodiscard]] double width() const noexcept { return upper - lower; }
    [[nodiscard]] bool contains(double p) const noexcept {
        return p >= lower && p <= upper;
    }
};

/// Clopper-Pearson (exact) confidence interval for p from `successes` out
/// of `trials`, at the given confidence level.  Uses the Beta-quantile
/// formulation:  lower = Beta(s, n-s+1).quantile(alpha/2),
///               upper = Beta(s+1, n-s).quantile(1-alpha/2).
/// Guaranteed coverage >= confidence (conservative), which suits trust
/// values: the interval never overstates certainty about a server.
/// \throws std::invalid_argument if successes > trials, trials == 0, or
/// confidence is outside (0, 1).
[[nodiscard]] Interval clopper_pearson(std::uint64_t successes, std::uint64_t trials,
                                       double confidence = 0.95);

}  // namespace hpr::stats

#endif  // HPR_STATS_BETA_H
