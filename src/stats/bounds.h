#ifndef HPR_STATS_BOUNDS_H
#define HPR_STATS_BOUNDS_H

/// \file bounds.h
/// Concentration bounds behind the paper's Lemma 3.1.
///
/// Lemma 3.1 states that for any ε, δ there is an N such that a history
/// longer than N has P(p̂ - p >= ε) < δ, by Bernoulli's law of large
/// numbers.  Hoeffding's inequality makes the N explicit:
///     P(|p̂ - p| >= ε) <= 2 exp(-2 n ε²),
/// so n >= ln(2/δ) / (2 ε²) suffices.  Deployments use this to size the
/// minimum screenable history for a target estimation accuracy.

#include <cstdint>

namespace hpr::stats {

/// Hoeffding two-sided tail bound on the mean of n Bernoulli trials:
/// an upper bound on P(|p̂ - p| >= epsilon).
/// \throws std::invalid_argument unless epsilon > 0 and n > 0.
[[nodiscard]] double hoeffding_bound(std::uint64_t n, double epsilon);

/// The explicit N of Lemma 3.1: the smallest n with
/// hoeffding_bound(n, epsilon) <= delta.
/// \throws std::invalid_argument unless epsilon > 0 and delta in (0, 1).
[[nodiscard]] std::uint64_t lemma31_min_history(double epsilon, double delta);

}  // namespace hpr::stats

#endif  // HPR_STATS_BOUNDS_H
