#ifndef HPR_STATS_BINOMIAL_H
#define HPR_STATS_BINOMIAL_H

/// \file binomial.h
/// The binomial distribution B(n, p).
///
/// This is the statistical heart of the honest-player model (paper §3.1):
/// the number of good transactions among n independent transactions of an
/// honest server with trust value p follows B(n, p).  Behavior testing
/// compares empirical window statistics against this distribution.

#include <cstdint>
#include <span>
#include <vector>

#include "stats/rng.h"

namespace hpr::stats {

/// Natural log of Γ(x), thread-safe.  std::lgamma writes the
/// process-global `signgam` on glibc — a data race when concurrent
/// assessment threads evaluate tail bounds — so every lgamma use in the
/// library goes through this lgamma_r-backed wrapper instead.
[[nodiscard]] double log_gamma(double x);

/// Natural log of the binomial coefficient C(n, k).
[[nodiscard]] double log_choose(std::uint32_t n, std::uint32_t k);

/// An immutable binomial distribution B(n, p) with precomputed pmf table.
///
/// The support is the small integer range {0..n} (n is a transaction
/// window size in this library, typically 10..100), so an explicit pmf
/// table is both the fastest and the clearest representation.
class Binomial {
public:
    /// \throws std::invalid_argument if p is outside [0, 1].
    Binomial(std::uint32_t n, double p);

    [[nodiscard]] std::uint32_t n() const noexcept { return n_; }
    [[nodiscard]] double p() const noexcept { return p_; }

    /// P(X = k); 0 for k > n.
    [[nodiscard]] double pmf(std::uint32_t k) const noexcept {
        return k <= n_ ? pmf_[k] : 0.0;
    }

    /// log P(X = k); -inf for impossible outcomes.
    [[nodiscard]] double log_pmf(std::uint32_t k) const;

    /// P(X <= k); 1 for k >= n.
    [[nodiscard]] double cdf(std::uint32_t k) const noexcept {
        return k < n_ ? cdf_[k] : 1.0;
    }

    /// P(X >= k), read from a dedicated upper-tail table accumulated from
    /// the top of the pmf.  The naive 1 - cdf(k-1) form loses all relative
    /// precision once the tail drops below ~1e-16 (catastrophic
    /// cancellation against a cdf that has rounded to 1); summing the pmf
    /// from the top keeps deep tails accurate to their own scale.
    [[nodiscard]] double survival(std::uint32_t k) const noexcept {
        return k <= n_ ? sf_[k] : 0.0;
    }

    /// Smallest k with P(X <= k) >= q, for q in [0, 1].
    [[nodiscard]] std::uint32_t quantile(double q) const;

    [[nodiscard]] double mean() const noexcept { return static_cast<double>(n_) * p_; }
    [[nodiscard]] double variance() const noexcept {
        return static_cast<double>(n_) * p_ * (1.0 - p_);
    }

    /// Full pmf table over {0..n} (size n+1).
    [[nodiscard]] const std::vector<double>& pmf_table() const noexcept { return pmf_; }

    /// Borrowed contiguous views of the precomputed tables.  The distance
    /// kernels (stats/distance.h) consume these directly, so shared cached
    /// models (stats/reference_cache.h) are read without any copy.
    [[nodiscard]] std::span<const double> pmf_span() const noexcept {
        return {pmf_.data(), pmf_.size()};
    }
    [[nodiscard]] std::span<const double> cdf_span() const noexcept {
        return {cdf_.data(), cdf_.size()};
    }
    /// survival_span()[k] = P(X >= k).
    [[nodiscard]] std::span<const double> survival_span() const noexcept {
        return {sf_.data(), sf_.size()};
    }

    /// Draw one variate (inversion from the precomputed cdf; O(log n)).
    [[nodiscard]] std::uint32_t sample(Rng& rng) const;

    /// Draw `count` variates.
    [[nodiscard]] std::vector<std::uint32_t> sample(Rng& rng, std::size_t count) const;

private:
    std::uint32_t n_;
    double p_;
    std::vector<double> pmf_;  ///< pmf_[k] = P(X = k), k in {0..n}
    std::vector<double> cdf_;  ///< cdf_[k] = P(X <= k), k in {0..n}
    std::vector<double> sf_;   ///< sf_[k] = P(X >= k), summed from the top
};

/// One Bernoulli(p) outcome per call without building a Binomial object.
[[nodiscard]] inline bool bernoulli_trial(Rng& rng, double p) noexcept {
    return rng.bernoulli(p);
}

}  // namespace hpr::stats

#endif  // HPR_STATS_BINOMIAL_H
