#include "stats/beta.h"

#include <cmath>
#include <stdexcept>

#include "stats/binomial.h"

namespace hpr::stats {
namespace {

/// Continued-fraction evaluation for the regularized incomplete beta
/// function (Numerical-Recipes-style modified Lentz algorithm).
double beta_continued_fraction(double a, double b, double x) {
    constexpr int kMaxIterations = 300;
    constexpr double kEpsilon = 1e-15;
    constexpr double kTiny = 1e-300;

    const double qab = a + b;
    const double qap = a + 1.0;
    const double qam = a - 1.0;
    double c = 1.0;
    double d = 1.0 - qab * x / qap;
    if (std::fabs(d) < kTiny) d = kTiny;
    d = 1.0 / d;
    double h = d;
    for (int m = 1; m <= kMaxIterations; ++m) {
        const auto dm = static_cast<double>(m);
        const double m2 = 2.0 * dm;
        double aa = dm * (b - dm) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < kTiny) d = kTiny;
        c = 1.0 + aa / c;
        if (std::fabs(c) < kTiny) c = kTiny;
        d = 1.0 / d;
        h *= d * c;
        aa = -(a + dm) * (qab + dm) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < kTiny) d = kTiny;
        c = 1.0 + aa / c;
        if (std::fabs(c) < kTiny) c = kTiny;
        d = 1.0 / d;
        const double del = d * c;
        h *= del;
        if (std::fabs(del - 1.0) < kEpsilon) break;
    }
    return h;
}

}  // namespace

double log_beta(double a, double b) {
    return log_gamma(a) + log_gamma(b) - log_gamma(a + b);
}

double reg_incomplete_beta(double a, double b, double x) {
    if (x <= 0.0) return 0.0;
    if (x >= 1.0) return 1.0;
    const double log_front = a * std::log(x) + b * std::log1p(-x) - log_beta(a, b);
    const double front = std::exp(log_front);
    // Use the symmetry relation to keep the continued fraction convergent.
    if (x < (a + 1.0) / (a + b + 2.0)) {
        return front * beta_continued_fraction(a, b, x) / a;
    }
    return 1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b;
}

Beta::Beta(double a, double b) : a_(a), b_(b) {
    if (!(a > 0.0) || !(b > 0.0)) {
        throw std::invalid_argument("Beta: shape parameters must be positive");
    }
}

double Beta::pdf(double x) const {
    if (x < 0.0 || x > 1.0) return 0.0;
    if (x == 0.0) {
        if (a_ < 1.0) return 0.0;  // density diverges; define boundary as 0
        if (a_ == 1.0) return b_;
        return 0.0;
    }
    if (x == 1.0) {
        if (b_ < 1.0) return 0.0;
        if (b_ == 1.0) return a_;
        return 0.0;
    }
    return std::exp((a_ - 1.0) * std::log(x) + (b_ - 1.0) * std::log1p(-x) -
                    log_beta(a_, b_));
}

double Beta::cdf(double x) const { return reg_incomplete_beta(a_, b_, x); }

double Beta::quantile(double q) const {
    if (!(q >= 0.0 && q <= 1.0)) {
        throw std::invalid_argument("Beta::quantile: q must be in [0, 1]");
    }
    if (q == 0.0) return 0.0;
    if (q == 1.0) return 1.0;
    double lo = 0.0;
    double hi = 1.0;
    for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (cdf(mid) < q) {
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo < 1e-14) break;
    }
    return 0.5 * (lo + hi);
}

Interval clopper_pearson(std::uint64_t successes, std::uint64_t trials,
                         double confidence) {
    if (trials == 0) {
        throw std::invalid_argument("clopper_pearson: need at least one trial");
    }
    if (successes > trials) {
        throw std::invalid_argument("clopper_pearson: successes exceed trials");
    }
    if (!(confidence > 0.0 && confidence < 1.0)) {
        throw std::invalid_argument("clopper_pearson: confidence must be in (0, 1)");
    }
    const double alpha = 1.0 - confidence;
    const auto s = static_cast<double>(successes);
    const auto n = static_cast<double>(trials);
    Interval interval;
    interval.lower =
        successes == 0 ? 0.0 : Beta{s, n - s + 1.0}.quantile(alpha / 2.0);
    interval.upper =
        successes == trials ? 1.0 : Beta{s + 1.0, n - s}.quantile(1.0 - alpha / 2.0);
    return interval;
}

}  // namespace hpr::stats
