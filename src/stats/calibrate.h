#ifndef HPR_STATS_CALIBRATE_H
#define HPR_STATS_CALIBRATE_H

/// \file calibrate.h
/// Monte-Carlo calibration of distribution-distance thresholds.
///
/// The behavior test (paper §3.2) accepts a history iff the L1 distance
/// between the empirical window-count distribution and B(m, p̂) is below a
/// threshold ε chosen for a target confidence (95% by default).  Deriving
/// the exact distribution of the distance is intractable, so — exactly as
/// the paper does — ε is estimated empirically: generate many sets of k
/// iid samples from B(m, p̂), measure their distances to B(m, p̂), and take
/// the confidence-quantile of those distances.
///
/// Calibration cost dominates screening, so the Calibrator memoizes the
/// full sorted null-distance sample per key (k-bucket, m, p̂-bucket).
/// Storing the whole sample instead of a single quantile lets callers ask
/// for any confidence level against one cached simulation — multi-testing
/// uses this for its family-wise (Bonferroni) correction.
///
/// Two quantizations keep the key space small; both err on the
/// conservative side (a slightly *larger* ε, hence fewer false alarms):
///  * p̂ is rounded to a 1/p_grid grid;
///  * the window count k is capped at windows_cap and rounded *down* onto
///    a geometric grid (ratio windows_grid_ratio).  The null distance
///    shrinks as k grows, so evaluating at a smaller k over-estimates ε.
/// This is what makes repeated screening of growing histories O(1)
/// amortized — the enabler of the O(n) multi-test timing of §5.5 / Fig. 9.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "stats/binomial.h"
#include "stats/distance.h"
#include "stats/rng.h"

namespace hpr::stats {

/// Tuning knobs for threshold calibration.
struct CalibrationConfig {
    double confidence = 0.95;          ///< default quantile of the null distances
    std::size_t replications = 1000;   ///< Monte-Carlo sample sets per key
    DistanceKind kind = DistanceKind::kL1;
    std::uint32_t p_grid = 256;        ///< p̂ is quantized to multiples of 1/p_grid
    std::uint64_t seed = 0x5ca1ab1eULL;  ///< base seed; each key derives its own stream

    /// Window counts above this cap reuse the cap's null sample.
    std::size_t windows_cap = 2048;

    /// Geometric grid ratio for window-count bucketing (k is rounded DOWN
    /// to the nearest grid point, conservatively inflating ε).  Set to 1.0
    /// for exact per-k calibration.
    double windows_grid_ratio = 1.15;
};

/// Memoizing Monte-Carlo calibrator. Thread-safe.
class Calibrator {
public:
    explicit Calibrator(CalibrationConfig config = {});

    /// Threshold ε at the calibrator's default confidence.
    ///
    /// \param windows  number of window samples k (must be >= 1)
    /// \param m        window size (transactions per window)
    /// \param p_hat    estimated trust value in [0, 1]
    /// \throws std::invalid_argument on out-of-range arguments.
    [[nodiscard]] double threshold(std::size_t windows, std::uint32_t m, double p_hat);

    /// Threshold ε at an explicit confidence in (0, 1).  Uses the same
    /// cached null sample as any other confidence for the key.
    [[nodiscard]] double threshold(std::size_t windows, std::uint32_t m, double p_hat,
                                   double confidence);

    /// The full sorted null-distance sample for a key (useful for plotting
    /// Fig. 8-style curves and for tests).
    [[nodiscard]] const std::vector<double>& null_distances(std::size_t windows,
                                                            std::uint32_t m,
                                                            double p_hat);

    [[nodiscard]] const CalibrationConfig& config() const noexcept { return config_; }

    /// The bucketed window count actually used for a requested k.
    [[nodiscard]] std::size_t effective_windows(std::size_t windows) const;

    /// Number of distinct keys calibrated so far.
    [[nodiscard]] std::size_t cache_size() const;

    /// Drop all memoized null samples.
    void clear_cache();

    /// Persist the memoized null samples so a later process can skip the
    /// Monte-Carlo warm-up (useful for deployments screening at startup).
    /// \throws std::runtime_error on I/O failure.
    void save_cache(const std::string& path) const;

    /// Merge null samples persisted by save_cache() into this cache.
    /// The file's calibration parameters (distance kind, replications,
    /// p-grid, seed) must match this calibrator's, otherwise the stored
    /// samples would answer a different question.
    /// \throws std::runtime_error on I/O/parse failure or config mismatch.
    void load_cache(const std::string& path);

private:
    struct Key {
        std::uint64_t windows;
        std::uint32_t m;
        std::uint32_t p_bucket;
        auto operator<=>(const Key&) const = default;
    };

    [[nodiscard]] Key make_key(std::size_t windows, std::uint32_t m, double p_hat) const;
    [[nodiscard]] std::vector<double> compute_null(const Key& key) const;
    [[nodiscard]] const std::vector<double>& null_for(const Key& key);

    CalibrationConfig config_;
    mutable std::mutex mutex_;
    std::map<Key, std::vector<double>> cache_;
};

/// Empirical quantile (linear interpolation between order statistics) of an
/// unsorted sample. \throws std::invalid_argument if values is empty.
[[nodiscard]] double empirical_quantile(std::vector<double> values, double q);

/// Quantile of an already-sorted sample (no copy).
[[nodiscard]] double sorted_quantile(const std::vector<double>& sorted, double q);

}  // namespace hpr::stats

#endif  // HPR_STATS_CALIBRATE_H
